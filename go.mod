module lorm

go 1.22
