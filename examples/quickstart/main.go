// Quickstart: the smallest useful LORM deployment.
//
// Builds a LORM grid of 256 peers over a Cycloid of dimension 6, announces
// a few resources, and resolves one exact and one multi-attribute range
// query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lorm/internal/core"
	"lorm/internal/resource"
)

func main() {
	// 1. Declare the globally known attribute types: name and value domain.
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},  // MHz
		resource.Attribute{Name: "memory", Min: 0, Max: 8192}, // MB
	)

	// 2. Build the LORM system on a Cycloid DHT of dimension 6
	//    (capacity 6·2^6 = 384 nodes) and add 256 peers.
	sys, err := core.New(core.Config{D: 6, Schema: schema})
	if err != nil {
		log.Fatal(err)
	}
	addrs := make([]string, 256)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("peer-%03d", i)
	}
	if err := sys.AddNodes(addrs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LORM up: %d peers, constant-degree overlay\n\n", sys.NodeCount())

	// 3. Peers announce their available resources — the paper's
	//    ⟨attribute, value, ip_addr⟩ tuples, stored under
	//    rescID = (ℋ(value), H(attribute)).
	announcements := []resource.Info{
		{Attr: "cpu", Value: 1800, Owner: "10.0.0.1"},
		{Attr: "memory", Value: 2048, Owner: "10.0.0.1"},
		{Attr: "cpu", Value: 3000, Owner: "10.0.0.2"},
		{Attr: "memory", Value: 512, Owner: "10.0.0.2"},
		{Attr: "cpu", Value: 1200, Owner: "10.0.0.3"},
		{Attr: "memory", Value: 4096, Owner: "10.0.0.3"},
	}
	for _, in := range announcements {
		cost, err := sys.Register(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %v in %d hops\n", in, cost.Hops)
	}

	// 4. Exact query: who has exactly a 1.8 GHz CPU?
	res, err := sys.Discover(resource.Query{
		Subs:      []resource.SubQuery{{Attr: "cpu", Low: 1800, High: 1800}},
		Requester: "10.0.0.99",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact cpu=1800:   owners=%v   (%s)\n", res.Owners, res.Cost)

	// 5. Multi-attribute range query: 1.5–3.2 GHz CPU AND ≥ 2 GB memory.
	//    Sub-queries resolve in parallel and join on the owner address.
	res, err = sys.Discover(resource.Query{
		Subs: []resource.SubQuery{
			{Attr: "cpu", Low: 1500, High: 3200},
			{Attr: "memory", Low: 2048, High: 8192},
		},
		Requester: "10.0.0.99",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range cpu∧memory: owners=%v   (%s)\n", res.Owners, res.Cost)
	fmt.Println("\nonly 10.0.0.1 satisfies both sub-queries — the database-style join at work")
}
