// Gridscheduler: a batch job scheduler on top of LORM resource discovery —
// the workload the paper's introduction motivates.
//
// A fleet of heterogeneous machines announces CPU, memory, disk and
// bandwidth capacities into the LORM directory. A stream of jobs then
// arrives, each with multi-attribute range requirements ("≥ 2 GHz CPU,
// ≥ 4 GB RAM, ≥ 100 Mbit/s"); the scheduler discovers candidate machines
// through the DHT, places each job on the least-loaded candidate, and
// reports placement quality and discovery cost.
//
//	go run ./examples/gridscheduler
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lorm/internal/core"
	"lorm/internal/resource"
)

type machine struct {
	addr      string
	cpu       float64 // MHz
	memory    float64 // MB
	disk      float64 // GB
	bandwidth float64 // Mbit/s
	jobs      int
}

type job struct {
	name                                  string
	minCPU, minMem, minDisk, minBandwidth float64
}

func main() {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 4000},
		resource.Attribute{Name: "memory", Min: 128, Max: 16384},
		resource.Attribute{Name: "disk", Min: 10, Max: 4000},
		resource.Attribute{Name: "bandwidth", Min: 10, Max: 1000},
	)
	sys, err := core.New(core.Config{D: 7, Schema: schema}) // capacity 896
	if err != nil {
		log.Fatal(err)
	}
	peers := make([]string, 512)
	for i := range peers {
		peers[i] = fmt.Sprintf("dht-peer-%03d", i)
	}
	if err := sys.AddNodes(peers); err != nil {
		log.Fatal(err)
	}

	// Announce a heterogeneous fleet: three site profiles.
	rng := rand.New(rand.NewSource(42))
	fleet := make(map[string]*machine)
	profile := []struct {
		prefix             string
		cpu, mem, disk, bw float64
		jitter             float64
		count              int
	}{
		{"hpc", 3600, 16384, 2000, 1000, 0.1, 12}, // compute nodes
		{"std", 2400, 8192, 500, 300, 0.25, 30},   // commodity servers
		{"edge", 1200, 2048, 100, 50, 0.4, 18},    // edge boxes
	}
	totalHops := 0
	for _, p := range profile {
		for i := 0; i < p.count; i++ {
			m := &machine{
				addr:      fmt.Sprintf("%s-%02d.grid.example", p.prefix, i),
				cpu:       p.cpu * (1 - p.jitter*rng.Float64()),
				memory:    p.mem * (1 - p.jitter*rng.Float64()),
				disk:      p.disk * (1 - p.jitter*rng.Float64()),
				bandwidth: p.bw * (1 - p.jitter*rng.Float64()),
			}
			fleet[m.addr] = m
			for attr, v := range map[string]float64{
				"cpu": m.cpu, "memory": m.memory, "disk": m.disk, "bandwidth": m.bandwidth,
			} {
				cost, err := sys.Register(resource.Info{Attr: attr, Value: v, Owner: m.addr})
				if err != nil {
					log.Fatal(err)
				}
				totalHops += cost.Hops
			}
		}
	}
	fmt.Printf("fleet announced: %d machines × 4 attributes in %d total hops (%.1f per announcement)\n\n",
		len(fleet), totalHops, float64(totalHops)/float64(4*len(fleet)))

	// Schedule a batch of jobs.
	jobs := []job{
		{"genome-assembly", 3000, 12000, 1000, 500},
		{"mc-simulation", 2000, 4096, 50, 50},
		{"video-transcode", 1800, 2048, 200, 100},
		{"web-crawl", 800, 1024, 50, 200},
		{"matrix-solve", 2800, 8192, 100, 100},
		{"log-aggregation", 1000, 2048, 400, 300},
		{"ml-training", 3200, 14000, 500, 400},
		{"backup-sync", 400, 512, 1500, 150},
	}
	placed, failed := 0, 0
	var discoverHops, discoverVisited int
	for _, j := range jobs {
		q := resource.Query{
			Subs: []resource.SubQuery{
				{Attr: "cpu", Low: j.minCPU, High: 4000},
				{Attr: "memory", Low: j.minMem, High: 16384},
				{Attr: "disk", Low: j.minDisk, High: 4000},
				{Attr: "bandwidth", Low: j.minBandwidth, High: 1000},
			},
			Requester: "scheduler.grid.example",
		}
		res, err := sys.Discover(q)
		if err != nil {
			log.Fatal(err)
		}
		discoverHops += res.Cost.Hops
		discoverVisited += res.Cost.Visited
		if len(res.Owners) == 0 {
			fmt.Printf("%-16s NO machine satisfies %v\n", j.name, q)
			failed++
			continue
		}
		// Least-loaded placement among candidates.
		best := res.Owners[0]
		for _, o := range res.Owners[1:] {
			if fleet[o].jobs < fleet[best].jobs {
				best = o
			}
		}
		fleet[best].jobs++
		placed++
		fmt.Printf("%-16s → %-22s (%d candidates, %d hops, %d directories consulted)\n",
			j.name, best, len(res.Owners), res.Cost.Hops, res.Cost.Visited)
	}

	fmt.Printf("\nplaced %d/%d jobs; discovery averaged %.1f hops and %.1f visited directories per job\n",
		placed, len(jobs), float64(discoverHops)/float64(len(jobs)), float64(discoverVisited)/float64(len(jobs)))
	fmt.Println("\nload after placement (machines with jobs):")
	for _, p := range profile {
		for i := 0; i < p.count; i++ {
			addr := fmt.Sprintf("%s-%02d.grid.example", p.prefix, i)
			if m := fleet[addr]; m.jobs > 0 {
				fmt.Printf("  %-22s %d job(s)\n", addr, m.jobs)
			}
		}
	}
	if failed > 0 {
		fmt.Printf("%d job(s) had no feasible machine — as expected for the largest requests\n", failed)
	}
}
