// Churnstorm: LORM in a highly dynamic grid (the paper's Section V.C).
//
// A 500-peer LORM deployment serves a continuous query load while nodes
// join and depart as Poisson processes — first gently (R = 0.1), then in a
// storm (R = 2.0, one join and one departure every half second). The demo
// shows the three properties the paper reports: zero query failures, no
// information loss across handovers, and hop counts indistinguishable from
// the static deployment.
//
//	go run ./examples/churnstorm
package main

import (
	"fmt"
	"log"

	"lorm/internal/churn"
	"lorm/internal/core"
	"lorm/internal/sim"
	"lorm/internal/stats"
	"lorm/internal/workload"
)

func main() {
	schema := workload.ParetoSchema(16, 500, 1.5)
	sys, err := core.New(core.Config{D: 7, Schema: schema}) // capacity 896
	if err != nil {
		log.Fatal(err)
	}
	addrs := make([]string, 500)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("peer-%03d", i)
	}
	if err := sys.AddNodes(addrs); err != nil {
		log.Fatal(err)
	}

	gen := workload.NewGenerator(schema, 1.5)
	const pieces = 16 * 80
	for _, in := range gen.Announcements(workload.Split(99, 0), 80) {
		if _, err := sys.Register(in); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("deployment: %d peers, %d resource-information pieces\n\n", sys.NodeCount(), pieces)

	baseline := measure(sys, gen, 0, nil, nil)
	fmt.Printf("static baseline:        %5.2f hops/query, %d failures\n", baseline.hopMean, baseline.failures)

	for _, rate := range []float64{0.1, 0.5, 2.0} {
		var sched sim.Scheduler
		proc, err := churn.New(sys, &sched, churn.Config{Rate: rate, Rng: workload.Split(99, int(rate*10))})
		if err != nil {
			log.Fatal(err)
		}
		proc.Start()
		r := measure(sys, gen, rate, &sched, proc)
		total := 0
		for _, sz := range sys.DirectorySizes() {
			total += sz
		}
		fmt.Printf("churn R=%.1f:            %5.2f hops/query, %d failures, %d joins, %d departures, %d/%d pieces intact\n",
			rate, r.hopMean, r.failures, proc.Joins, proc.Departures, total, pieces)
		if total != pieces {
			log.Fatalf("information lost under churn: %d != %d", total, pieces)
		}
	}
	fmt.Println("\nhop costs stay flat across churn rates and no query ever fails —")
	fmt.Println("graceful handover plus periodic self-organization keep the directory complete.")
}

type result struct {
	hopMean  float64
	failures int
}

// measure issues 400 3-attribute queries; under churn they are interleaved
// with the membership events on the virtual clock.
func measure(sys *core.System, gen *workload.Generator, rate float64, sched *sim.Scheduler, proc *churn.Process) result {
	qrng := workload.Split(1234, int(rate*100))
	hops := &stats.Collector{}
	failures := 0
	const queries = 400
	issue := func(i int) {
		q := gen.ExactQuery(qrng, 3, fmt.Sprintf("req-%d", i))
		if res, err := sys.Discover(q); err != nil {
			failures++
		} else {
			hops.AddInt(res.Cost.Hops)
		}
	}
	if sched == nil {
		for i := 0; i < queries; i++ {
			issue(i)
		}
	} else {
		for i := 0; i < queries; i++ {
			i := i
			sched.At(float64(i)*0.25, func() { issue(i) }) // 4 queries/sec for 100s
		}
		sched.RunUntil(float64(queries)*0.25 + 1)
	}
	return result{hopMean: hops.Summary().Mean, failures: failures}
}
