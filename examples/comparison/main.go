// Comparison: every registered system side by side on one workload.
//
// Builds LORM, Mercury, SWORD, MAAN and ART over the same 384 peers, registers
// an identical Bounded-Pareto workload in each, and prints a compact
// version of the paper's evaluation: directory balance (Figures 3(b)–(d)),
// non-range hop costs (Figure 4) and range-query visited nodes (Figure 5),
// next to the Theorem 4.x predictions.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"lorm/internal/analysis"
	"lorm/internal/discovery"
	"lorm/internal/stats"
	"lorm/internal/systemtest"
	"lorm/internal/workload"
)

func main() {
	const (
		d    = 6
		n    = 384 // complete Cycloid at d=6
		m    = 24  // attributes
		k    = 100 // pieces per attribute
		seed = 7
	)
	schema := workload.ParetoSchema(m, 500, 1.5)
	dep, err := systemtest.Build(schema, n, systemtest.Options{D: d, Bits: 18, CompleteLORM: true})
	if err != nil {
		log.Fatal(err)
	}
	gen := workload.NewGenerator(schema, 1.5)
	fmt.Printf("registering %d pieces in each of 4 systems...\n", m*k)
	for _, in := range gen.Announcements(workload.Split(seed, 0), k) {
		if err := dep.RegisterEverywhere(in); err != nil {
			log.Fatal(err)
		}
	}
	ap := analysis.Params{N: n, M: m, K: k, D: d}

	// Directory balance.
	tbl := stats.NewTable("Directory size per node (Figures 3(b)-(d))",
		"avg", "p01", "p99", "max")
	fmt.Println()
	fmt.Println("directory size per node        avg     p01     p99     max")
	for _, sys := range dep.Systems() {
		s := stats.SummarizeInts(sys.DirectorySizes())
		fmt.Printf("  %-26s %6.1f  %6.1f  %6.1f  %6.0f\n", sys.Name(), s.Mean, s.P01, s.P99, s.Max)
		tbl.AddRow(s.Mean, s.P01, s.P99, s.Max)
	}
	fmt.Printf("  theorem 4.2: MAAN stores 2× everyone's total; 4.4: SWORD p99 ≈ d× LORM's\n")

	// Query costs over a shared query set.
	qrng := workload.Split(seed, 1)
	const queries = 200
	type agg struct{ hops, visited int }
	exact := map[string]*agg{}
	ranged := map[string]*agg{}
	for _, sys := range dep.Systems() {
		exact[sys.Name()] = &agg{}
		ranged[sys.Name()] = &agg{}
	}
	for i := 0; i < queries; i++ {
		eq := gen.ExactQuery(qrng, 3, fmt.Sprintf("req-%d", i))
		rq := gen.RangeQuery(qrng, 3, 0.5, fmt.Sprintf("req-%d", i))
		for _, sys := range dep.Systems() {
			res, err := sys.Discover(eq)
			if err != nil {
				log.Fatal(err)
			}
			exact[sys.Name()].hops += res.Cost.Hops
			res, err = sys.Discover(rq)
			if err != nil {
				log.Fatal(err)
			}
			ranged[sys.Name()].visited += res.Cost.Visited
		}
	}

	fmt.Println()
	fmt.Println("3-attribute queries (200 each)   hops/exact-query    visited/range-query")
	for _, sys := range dep.Systems() {
		name := sys.Name()
		fmt.Printf("  %-26s %12.1f %20.1f\n", name,
			float64(exact[name].hops)/queries, float64(ranged[name].visited)/queries)
	}
	fmt.Println()
	fmt.Println("theorem predictions for this configuration:")
	for _, name := range []string{"maan", "lorm", "mercury", "sword"} {
		fmt.Printf("  %-10s %6.1f hops (non-range), %7.1f visited (range)\n",
			name, analysis.NonRangeHops(ap, name, 3), analysis.RangeVisitedNodes(ap, name, 3))
	}

	// Structure overhead.
	fmt.Println()
	fmt.Println("outlinks per node (Figure 3(a)):")
	for _, sys := range dep.Systems() {
		s := stats.SummarizeInts(sys.OutlinkCounts())
		fmt.Printf("  %-10s %7.1f\n", sys.Name(), s.Mean)
	}
	fmt.Printf("  theorem 4.1: LORM improves Mercury's structure overhead by ≥ m = %d×\n", m)

	// Every system must agree with the brute-force oracle.
	verify(dep, gen, seed)
}

func verify(dep *systemtest.Deployment, gen *workload.Generator, seed int64) {
	qrng := workload.Split(seed, 2)
	for i := 0; i < 50; i++ {
		q := gen.RangeQuery(qrng, 2, 0.5, "verifier")
		want, err := dep.Oracle.Discover(q)
		if err != nil {
			log.Fatal(err)
		}
		for _, sys := range dep.Systems() {
			got, err := sys.Discover(q)
			if err != nil {
				log.Fatalf("%s: %v", sys.Name(), err)
			}
			if !sameOwners(got, want) {
				log.Fatalf("%s disagrees with oracle on %v", sys.Name(), q)
			}
		}
	}
	fmt.Println("\nverified: all five systems return exactly the brute-force oracle's answers on 50 random range queries")
}

func sameOwners(a, b *discovery.Result) bool {
	if len(a.Owners) != len(b.Owners) {
		return false
	}
	for i := range a.Owners {
		if a.Owners[i] != b.Owners[i] {
			return false
		}
	}
	return true
}
