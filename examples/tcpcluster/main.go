// Tcpcluster: resource discovery over real sockets.
//
// Starts a LORM gateway on a loopback TCP port (the same server that
// cmd/lormnode runs), then drives it from three concurrent clients: two
// provider sites streaming announcements and one requester resolving
// multi-attribute range queries — all through the length-prefixed JSON
// wire protocol of internal/transport.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"lorm/internal/core"
	"lorm/internal/resource"
	"lorm/internal/transport"
)

func main() {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 4000},
		resource.Attribute{Name: "memory", Min: 128, Max: 16384},
	)
	sys, err := core.New(core.Config{D: 6, Schema: schema})
	if err != nil {
		log.Fatal(err)
	}
	addrs := make([]string, 128)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("peer-%03d", i)
	}
	if err := sys.AddNodes(addrs); err != nil {
		log.Fatal(err)
	}

	srv, err := transport.NewServer(sys, "127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("gateway listening on %s\n", srv.Addr())

	// Two provider sites announce concurrently over their own connections.
	var wg sync.WaitGroup
	for site := 0; site < 2; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			cli, err := transport.Dial(srv.Addr(), time.Second)
			if err != nil {
				log.Fatal(err)
			}
			defer cli.Close()
			for i := 0; i < 20; i++ {
				owner := fmt.Sprintf("site%d-host%02d", site, i)
				cpu := float64(800 + site*400 + i*120)
				mem := float64(1024 + site*2048 + i*512)
				if _, err := cli.Register(resource.Info{Attr: "cpu", Value: cpu, Owner: owner}); err != nil {
					log.Fatal(err)
				}
				if _, err := cli.Register(resource.Info{Attr: "memory", Value: mem, Owner: owner}); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("site %d announced 20 hosts over TCP\n", site)
		}(site)
	}
	wg.Wait()

	// The requester resolves queries over its own connection.
	cli, err := transport.Dial(srv.Addr(), time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	st, err := cli.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngateway stats: %d peers, %d pieces stored, avg directory %.2f\n",
		st.Nodes, st.TotalPieces, st.AvgDir)

	queries := []struct {
		desc string
		subs []resource.SubQuery
	}{
		{"big machines: cpu ≥ 2500 ∧ mem ≥ 6144", []resource.SubQuery{
			{Attr: "cpu", Low: 2500, High: 4000},
			{Attr: "memory", Low: 6144, High: 16384},
		}},
		{"small machines: cpu ≤ 1200", []resource.SubQuery{
			{Attr: "cpu", Low: 100, High: 1200},
		}},
	}
	for _, q := range queries {
		owners, matches, cost, err := cli.Discover(q.subs, "tcp-requester")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n  %d matching pieces, %d qualifying hosts (%s)\n", q.desc, len(matches), len(owners), cost)
		for i, o := range owners {
			if i == 5 {
				fmt.Printf("  ... and %d more\n", len(owners)-5)
				break
			}
			fmt.Printf("  %s\n", o)
		}
	}

	// Membership change over the wire, then confirm the deployment grew.
	if err := cli.AddNode("late-joiner"); err != nil {
		log.Fatal(err)
	}
	st, err = cli.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter remote join: %d peers — discovery keeps working across membership changes\n", st.Nodes)
}
