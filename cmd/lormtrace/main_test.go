package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lorm/internal/tracing"
)

// writeSpanFile writes a small, hand-built two-trace span set: a lorm
// discover with two steps, a maan register with one, plus a client root.
func writeSpanFile(t *testing.T) string {
	t.Helper()
	c := tracing.NewCollector(32)
	for _, sp := range []tracing.Span{
		{Trace: 0x10, Span: 0x11, System: "client", Kind: tracing.ClientKind, Name: "discover", Start: 0, Dur: 9000},
		{Trace: 0x10, Span: 0x12, Parent: 0x11, System: "lorm", Kind: "discover", Name: "discover",
			Tag: "req-1", Start: 1000, Dur: 7000, Hops: 2, Visited: 1, Remote: true},
		{Trace: 0x10, Span: 0x13, Parent: 0x12, System: "lorm", Name: "finger-forward", Addr: "cyc-1", Start: 2000},
		{Trace: 0x10, Span: 0x14, Parent: 0x12, System: "lorm", Name: "directory-visit", Addr: "cyc-2", Start: 5000},
		{Trace: 0x20, Span: 0x21, System: "maan", Kind: "register", Name: "register",
			Tag: "own-1", Start: 0, Dur: 3000, Hops: 1},
		{Trace: 0x20, Span: 0x22, Parent: 0x21, System: "maan", Name: "finger-forward", Addr: "chd-9", Start: 1500},
	} {
		c.Add(sp)
	}
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := c.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummaryAndTop(t *testing.T) {
	path := writeSpanFile(t)
	var out bytes.Buffer
	if err := run([]string{"-top", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"operation latency", "lorm", "discover", "maan", "register",
		"critical-path attribution", "(tail)", "finger-forward",
		"slowest 2 operations", "tag=req-1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary output missing %q:\n%s", want, text)
		}
	}
}

// TestRunChromeExport validates the Chrome trace-event JSON shape: a
// traceEvents array whose phases are X (ops, with dur), i (step instants,
// thread scope) and M (process metadata naming each system).
func TestRunChromeExport(t *testing.T) {
	path := writeSpanFile(t)
	cpath := filepath.Join(t.TempDir(), "chrome.json")
	var out bytes.Buffer
	if err := run([]string{"-chrome", cpath, path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	phases := map[string]int{}
	procNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Phase]++
		switch ev.Phase {
		case "X":
			if ev.Dur <= 0 {
				t.Errorf("complete event %q has no duration", ev.Name)
			}
		case "i":
			if ev.Scope != "t" {
				t.Errorf("instant %q scope %q, want t", ev.Name, ev.Scope)
			}
		case "M":
			if name, _ := ev.Args["name"].(string); name != "" {
				procNames[name] = true
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
		if ev.Phase != "M" && ev.PID == 0 {
			t.Errorf("event %q has no pid", ev.Name)
		}
	}
	if phases["X"] != 3 || phases["i"] != 3 {
		t.Fatalf("phase counts %v, want 3 X and 3 i", phases)
	}
	for _, sys := range []string{"client", "lorm", "maan"} {
		if !procNames[sys] {
			t.Errorf("no process_name metadata for system %q", sys)
		}
	}
}

// TestRunPathsMode feeds TraceSink text lines through -paths.
func TestRunPathsMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	lines := "system=lorm op=discover tag=r1 hops=2 visited=1 msgs=3 path=f:a,w:b,v:c\n" +
		"system=sword op=discover tag=r2 hops=1 visited=1 msgs=2 path=f:a,v:b\n"
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-paths", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"hop counts", "lorm", "sword", "range-walk", "directory-visit"} {
		if !strings.Contains(text, want) {
			t.Errorf("paths output missing %q:\n%s", want, text)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("missing file argument accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &out); err == nil {
		t.Fatal("empty span file accepted")
	}
}
