// Command lormtrace analyzes collected trace spans: where operation time
// goes, per system and per routing reason.
//
// Input is the span JSONL written by `lormsim -trace-spans`, a `lormnode
// serve` /trace endpoint, or any tracing.Collector flush. Modes:
//
//	lormtrace spans.jsonl                  # latency breakdown + critical-path summary
//	lormtrace -top 10 spans.jsonl          # the 10 slowest operations, span by span
//	lormtrace -chrome trace.json spans.jsonl  # Chrome trace-event JSON for Perfetto
//	lormtrace -paths trace.txt             # analyze TraceSink text lines instead
//
// The Chrome output loads directly in https://ui.perfetto.dev (or
// chrome://tracing): one process row per system, one thread row per trace,
// op spans as complete events and routing steps as instants.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"lorm/internal/routing"
	"lorm/internal/stats"
	"lorm/internal/tracing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lormtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lormtrace", flag.ContinueOnError)
	chrome := fs.String("chrome", "", "also write Chrome trace-event JSON (Perfetto-loadable) to this file")
	top := fs.Int("top", 0, "print the N slowest operations span by span")
	paths := fs.Bool("paths", false, "input is TraceSink text lines (lormsim -trace) instead of span JSONL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: lormtrace [-chrome out.json] [-top N] [-paths] FILE")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	if *paths {
		return summarizePaths(f, out)
	}
	spans, err := tracing.ReadSpans(f)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans in %s", fs.Arg(0))
	}
	summarize(spans, out)
	if *top > 0 {
		printTop(spans, *top, out)
	}
	if *chrome != "" {
		cf, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		defer cf.Close()
		n, err := writeChrome(spans, cf)
		if err != nil {
			return fmt.Errorf("chrome export: %w", err)
		}
		fmt.Fprintf(out, "\nchrome trace: %d events written to %s (load in https://ui.perfetto.dev)\n", n, *chrome)
	}
	return nil
}

// sysKind groups op spans by (system, kind) for the latency table.
type sysKind struct{ system, kind string }

// summarize prints the two core tables: per-system/per-kind op latency
// quantiles, and per-system/per-reason step counts with gap-attributed
// time (how much of the ops' critical path elapsed leading into each
// reason's steps).
func summarize(spans []tracing.Span, out io.Writer) {
	ops := make(map[sysKind][]float64) // durations in µs
	byParent := make(map[uint64][]tracing.Span)
	var opSpans []tracing.Span
	for _, sp := range spans {
		if sp.IsOp() {
			ops[sysKind{sp.System, sp.Kind}] = append(ops[sysKind{sp.System, sp.Kind}], float64(sp.Dur)/1e3)
			opSpans = append(opSpans, sp)
		} else {
			byParent[sp.Parent] = append(byParent[sp.Parent], sp)
		}
	}

	fmt.Fprintf(out, "operation latency (µs), %d op spans\n", len(opSpans))
	fmt.Fprintf(out, "%-10s %-10s %8s %10s %10s %10s %10s\n", "system", "op", "count", "p50", "p99", "max", "mean")
	for _, k := range sortedKeys(ops) {
		s := stats.Summarize(ops[k])
		fmt.Fprintf(out, "%-10s %-10s %8d %10.1f %10.1f %10.1f %10.1f\n",
			k.system, k.kind, s.N, s.P50, s.P99, s.Max, s.Mean)
	}

	// Critical-path attribution: within each op, sort the step instants by
	// time and attribute each inter-event gap to the step that ended it
	// (the gap is the time spent reaching that step); the remainder from
	// the last step to op end is the tail (join + reply assembly).
	type reasonAgg struct {
		count int
		ns    int64
	}
	attr := make(map[string]map[string]*reasonAgg) // system -> reason -> agg
	addGap := func(system, reason string, ns int64) {
		m := attr[system]
		if m == nil {
			m = make(map[string]*reasonAgg)
			attr[system] = m
		}
		a := m[reason]
		if a == nil {
			a = &reasonAgg{}
			m[reason] = a
		}
		a.count++
		a.ns += ns
	}
	for _, op := range opSpans {
		steps := append([]tracing.Span(nil), byParent[op.Span]...)
		sort.Slice(steps, func(i, j int) bool { return steps[i].Start < steps[j].Start })
		prev := op.Start
		for _, st := range steps {
			addGap(op.System, st.Name, st.Start-prev)
			prev = st.Start
		}
		addGap(op.System, "(tail)", op.Start+op.Dur-prev)
	}
	fmt.Fprintf(out, "\ncritical-path attribution (time elapsed reaching each step, by reason)\n")
	fmt.Fprintf(out, "%-10s %-18s %10s %12s %12s\n", "system", "reason", "steps", "total µs", "mean µs")
	for _, system := range sortedStrKeys(attr) {
		m := attr[system]
		for _, reason := range sortedStrKeys(m) {
			a := m[reason]
			fmt.Fprintf(out, "%-10s %-18s %10d %12.1f %12.1f\n",
				system, reason, a.count, float64(a.ns)/1e3, float64(a.ns)/1e3/float64(a.count))
		}
	}
}

// printTop lists the n slowest ops with their step timelines.
func printTop(spans []tracing.Span, n int, out io.Writer) {
	byParent := make(map[uint64][]tracing.Span)
	var opSpans []tracing.Span
	for _, sp := range spans {
		if sp.IsOp() {
			opSpans = append(opSpans, sp)
		} else {
			byParent[sp.Parent] = append(byParent[sp.Parent], sp)
		}
	}
	sort.Slice(opSpans, func(i, j int) bool { return opSpans[i].Dur > opSpans[j].Dur })
	if n > len(opSpans) {
		n = len(opSpans)
	}
	fmt.Fprintf(out, "\nslowest %d operations\n", n)
	for _, op := range opSpans[:n] {
		fmt.Fprintf(out, "%s %s/%s tag=%s trace=%016x hops=%d visited=%d remote=%v\n",
			time.Duration(op.Dur), op.System, op.Kind, op.Tag, op.Trace, op.Hops, op.Visited, op.Remote)
		steps := append([]tracing.Span(nil), byParent[op.Span]...)
		sort.Slice(steps, func(i, j int) bool { return steps[i].Start < steps[j].Start })
		for _, st := range steps {
			fmt.Fprintf(out, "  +%-12s %-16s %s\n", time.Duration(st.Start-op.Start), st.Name, st.Addr)
		}
	}
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format", the array-of-events variant Perfetto and chrome://tracing load).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`    // instant scope
	Cat   string         `json:"cat,omitempty"`  // event category
	Args  map[string]any `json:"args,omitempty"` // free-form detail
}

// writeChrome exports spans as Chrome trace events: one pid per system
// (named via metadata events), one tid per trace, op spans as "X" complete
// events and steps as thread-scoped "i" instants.
func writeChrome(spans []tracing.Span, w io.Writer) (int, error) {
	pids := make(map[string]int)
	pid := func(system string) int {
		id, ok := pids[system]
		if !ok {
			id = len(pids) + 1
			pids[system] = id
		}
		return id
	}
	events := make([]chromeEvent, 0, len(spans)+4)
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name,
			TS:   float64(sp.Start) / 1e3,
			PID:  pid(sp.System),
			TID:  sp.Trace,
			Cat:  sp.System,
		}
		if sp.IsOp() {
			ev.Phase = "X"
			ev.Dur = float64(sp.Dur) / 1e3
			ev.Args = map[string]any{
				"trace":   fmt.Sprintf("%016x", sp.Trace),
				"tag":     sp.Tag,
				"hops":    sp.Hops,
				"visited": sp.Visited,
				"remote":  sp.Remote,
			}
		} else {
			ev.Phase = "i"
			ev.Scope = "t"
			ev.Args = map[string]any{"addr": sp.Addr}
		}
		events = append(events, ev)
	}
	// Name the per-system process rows.
	for system, id := range pids {
		events = append(events, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   id,
			Args:  map[string]any{"name": system},
		})
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return 0, err
	}
	return len(events), nil
}

// summarizePaths analyzes TraceSink text lines (the -trace format) with the
// shared routing.ParseTraceLine decoder: untimed, but it still yields hop
// distributions and per-reason step counts.
func summarizePaths(r io.Reader, out io.Writer) error {
	lines, err := readTraceLines(r)
	if err != nil {
		return err
	}
	if len(lines) == 0 {
		return fmt.Errorf("no trace lines in input")
	}
	hops := make(map[sysKind][]float64)
	reasons := make(map[string]map[string]int)
	for _, tl := range lines {
		k := sysKind{tl.System, string(tl.Op)}
		hops[k] = append(hops[k], float64(tl.Cost.Hops))
		m := reasons[tl.System]
		if m == nil {
			m = make(map[string]int)
			reasons[tl.System] = m
		}
		for _, st := range tl.Path {
			m[st.Reason.String()]++
		}
	}
	fmt.Fprintf(out, "hop counts, %d trace lines (untimed path format)\n", len(lines))
	fmt.Fprintf(out, "%-10s %-10s %8s %10s %10s %10s\n", "system", "op", "count", "p50", "p99", "max")
	for _, k := range sortedKeys(hops) {
		s := stats.Summarize(hops[k])
		fmt.Fprintf(out, "%-10s %-10s %8d %10.1f %10.1f %10.1f\n", k.system, k.kind, s.N, s.P50, s.P99, s.Max)
	}
	fmt.Fprintf(out, "\nstep counts by reason\n")
	for _, system := range sortedStrKeys(reasons) {
		for _, reason := range sortedStrKeys(reasons[system]) {
			fmt.Fprintf(out, "%-10s %-18s %10d\n", system, reason, reasons[system][reason])
		}
	}
	return nil
}

// readTraceLines decodes every nonempty line with routing.ParseTraceLine.
func readTraceLines(r io.Reader) ([]routing.TraceLine, error) {
	var lines []routing.TraceLine
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			line := string(data[start:i])
			start = i + 1
			if len(line) == 0 {
				continue
			}
			tl, err := routing.ParseTraceLine(line)
			if err != nil {
				return nil, err
			}
			lines = append(lines, tl)
		}
	}
	return lines, nil
}

func sortedKeys(m map[sysKind][]float64) []sysKind {
	keys := make([]sysKind, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].system != keys[j].system {
			return keys[i].system < keys[j].system
		}
		return keys[i].kind < keys[j].kind
	})
	return keys
}

func sortedStrKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
