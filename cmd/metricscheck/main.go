// Command metricscheck validates a metrics snapshot produced by
// `lormsim -metrics-out`: the JSON must parse into a metrics.Snapshot and
// the routing op counters and directory index counters must show actual
// traffic. With -crash it
// additionally requires the failure-injection families (lookup detours,
// query failures, crash and lost-entry counters) and that crashes actually
// occurred. CI runs it after short simulations to catch regressions in the
// observability pipeline.
//
// Usage: metricscheck [-crash] <snapshot.json>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lorm/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("metricscheck", flag.ContinueOnError)
	crash := fs.Bool("crash", false, "require the crash-churn failure counters (snapshot from lormsim -crash-rate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: metricscheck [-crash] <snapshot.json>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("snapshot does not parse: %w", err)
	}
	if len(snap.Families) == 0 {
		return fmt.Errorf("snapshot has no metric families")
	}
	ops, ok := snap.Family("lorm_ops_total")
	if !ok {
		return fmt.Errorf("family lorm_ops_total missing")
	}
	total := ops.Total()
	if total <= 0 {
		return fmt.Errorf("lorm_ops_total is zero: no routing ops were observed")
	}
	bySystem := map[string]float64{}
	for _, m := range ops.Metrics {
		bySystem[m.Labels["system"]] += m.Value
	}
	for _, want := range []string{"lorm", "maan", "mercury", "sword"} {
		if bySystem[want] == 0 {
			return fmt.Errorf("no ops recorded for system %q", want)
		}
	}
	fmt.Printf("metricscheck: %d families, %.0f routing ops (lorm=%.0f maan=%.0f mercury=%.0f sword=%.0f)\n",
		len(snap.Families), total, bySystem["lorm"], bySystem["maan"], bySystem["mercury"], bySystem["sword"])
	if err := checkDirectory(&snap); err != nil {
		return err
	}
	if *crash {
		return checkCrash(&snap)
	}
	return nil
}

// checkDirectory validates the directory-index families: any run that
// observed routing ops must also have registered pieces into directories
// and served range matches from them.
func checkDirectory(snap *metrics.Snapshot) error {
	for _, name := range []string{
		"directory_adds_total",
		"directory_matches_total",
	} {
		f, ok := snap.Family(name)
		if !ok {
			return fmt.Errorf("directory counter family %s missing", name)
		}
		if f.Total() <= 0 {
			return fmt.Errorf("%s is zero: the directory index saw no traffic", name)
		}
	}
	return nil
}

// checkCrash validates the failure-injection families a crash-churn run
// must produce: every counter family exists, crashes were actually applied
// and entries actually lost (the experiment is pointless otherwise).
func checkCrash(snap *metrics.Snapshot) error {
	for _, name := range []string{
		"chord_lookup_detours_total",
		"cycloid_lookup_detours_total",
		"chord_query_failures_total",
		"cycloid_query_failures_total",
		"churn_crashes_total",
		"churn_lost_entries_total",
	} {
		if _, ok := snap.Family(name); !ok {
			return fmt.Errorf("failure counter family %s missing", name)
		}
	}
	value := func(name string) float64 {
		f, _ := snap.Family(name)
		return f.Total()
	}
	crashes := value("churn_crashes_total")
	if crashes <= 0 {
		return fmt.Errorf("churn_crashes_total is zero: no crashes were injected")
	}
	lost := value("churn_lost_entries_total")
	if lost <= 0 {
		return fmt.Errorf("churn_lost_entries_total is zero: crashes destroyed nothing")
	}
	detours := value("chord_lookup_detours_total") + value("cycloid_lookup_detours_total")
	fmt.Printf("metricscheck: crash counters ok (%.0f crashes, %.0f entries lost, %.0f lookup detours)\n",
		crashes, lost, detours)
	return nil
}
