// Command metricscheck validates a metrics snapshot produced by
// `lormsim -metrics-out`: the JSON must parse into a metrics.Snapshot and
// the routing op counters and directory index counters must show actual
// traffic. With -crash it
// additionally requires the failure-injection families (lookup detours,
// query failures, crash and lost-entry counters) and that crashes actually
// occurred. With -load it requires the loadbalance migration counters and
// cross-checks them against the directory handover counters they must stay
// consistent with. With -membership it requires the gossip-membership and
// network-fault families of a partition run and cross-checks the detector
// ledger (replies never exceed shuffles, confirmations and clears never
// exceed suspicions) and the fault window (window failures reconcile with
// the overlays' query-failure counters). With -art it requires the ART trie
// counters and cross-checks them against the fabric: descent steps equal
// the trie-descent-labeled step counts exactly and never exceed ART's total
// steps, and every bucket split handed its sub-interval over exactly once.
// With -replication it requires the replication-layer
// counters and cross-checks them against the fabric's reason-labeled step
// counts. With -trace it requires the tracing families and cross-checks
// them against the fabric op counters: every finished op is either sampled
// or dropped, exactly, per system, and every slow-op detection produced
// exactly one slow-op dump. CI runs it after short simulations to catch
// regressions in the observability pipeline.
//
// -transport is a standalone mode for snapshots produced by cmd/lormcluster
// (one merged document covering the driver process and every gateway): it
// skips the four-system simulation checks and instead validates the
// pipelined-transport ledger — pipelined calls happened, nothing is left
// in flight, the observed in-flight peak respects the configured window,
// and every operation accepted inside a batch frame was dispatched exactly
// once.
//
// Usage: metricscheck [-crash] [-load] [-membership] [-art] [-replication] [-trace] [-transport] <snapshot.json>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lorm/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("metricscheck", flag.ContinueOnError)
	crash := fs.Bool("crash", false, "require the crash-churn failure counters (snapshot from lormsim -crash-rate)")
	load := fs.Bool("load", false, "require the load-balance migration counters (snapshot from lormsim -load-out)")
	member := fs.Bool("membership", false, "require the gossip-membership and netfault counters (snapshot from lormsim -partition)")
	artCheck := fs.Bool("art", false, "require the ART trie counters and cross-check them against the fabric step counts (snapshot from lormsim -art-out)")
	replication := fs.Bool("replication", false, "require the replication counters (snapshot from lormsim -hotkey-out)")
	trace := fs.Bool("trace", false, "require the tracing counters and cross-check them against the fabric op totals (snapshot from lormsim -trace-spans -metrics-out)")
	transport := fs.Bool("transport", false, "validate only the pipelined-transport ledger (snapshot from lormcluster -metrics-out)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: metricscheck [-crash] [-load] [-membership] [-art] [-replication] [-trace] [-transport] <snapshot.json>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("snapshot does not parse: %w", err)
	}
	if len(snap.Families) == 0 {
		return fmt.Errorf("snapshot has no metric families")
	}
	if *transport {
		// Cluster snapshots cover one serving system driven over TCP, not
		// the four-system simulation, so the base checks don't apply.
		return checkTransport(&snap)
	}
	ops, ok := snap.Family("lorm_ops_total")
	if !ok {
		return fmt.Errorf("family lorm_ops_total missing")
	}
	total := ops.Total()
	if total <= 0 {
		return fmt.Errorf("lorm_ops_total is zero: no routing ops were observed")
	}
	bySystem := map[string]float64{}
	for _, m := range ops.Metrics {
		bySystem[m.Labels["system"]] += m.Value
	}
	for _, want := range []string{"lorm", "maan", "mercury", "sword", "art"} {
		if bySystem[want] == 0 {
			return fmt.Errorf("no ops recorded for system %q", want)
		}
	}
	fmt.Printf("metricscheck: %d families, %.0f routing ops (lorm=%.0f maan=%.0f mercury=%.0f sword=%.0f art=%.0f)\n",
		len(snap.Families), total, bySystem["lorm"], bySystem["maan"], bySystem["mercury"], bySystem["sword"], bySystem["art"])
	if err := checkDirectory(&snap); err != nil {
		return err
	}
	if *crash {
		if err := checkCrash(&snap); err != nil {
			return err
		}
	}
	if *load {
		if err := checkLoad(&snap); err != nil {
			return err
		}
	}
	if *member {
		if err := checkMembership(&snap); err != nil {
			return err
		}
	}
	if *artCheck {
		if err := checkART(&snap); err != nil {
			return err
		}
	}
	if *replication {
		if err := checkReplication(&snap); err != nil {
			return err
		}
	}
	if *trace {
		return checkTrace(&snap)
	}
	return nil
}

// checkTransport validates the pipelined-transport ledger of a merged
// cluster snapshot: pipelined calls were actually dispatched, every
// in-flight slot was released (the gauge settles to zero once the run
// drains), the observed in-flight peak never exceeded the configured
// window, and per batch verb the operations accepted inside batch frames
// equal the items individually dispatched — no item silently skipped or
// double-run.
func checkTransport(snap *metrics.Snapshot) error {
	value := func(name string) (float64, error) {
		f, ok := snap.Family(name)
		if !ok {
			return 0, fmt.Errorf("transport family %s missing", name)
		}
		return f.Total(), nil
	}
	calls, err := value("transport_pipeline_calls_total")
	if err != nil {
		return err
	}
	if calls <= 0 {
		return fmt.Errorf("transport_pipeline_calls_total is zero: no pipelined calls ran")
	}
	inflight, err := value("transport_pipeline_inflight")
	if err != nil {
		return err
	}
	if inflight != 0 {
		return fmt.Errorf("transport_pipeline_inflight is %.0f after the run: a window slot leaked", inflight)
	}
	peak, err := value("transport_pipeline_inflight_peak")
	if err != nil {
		return err
	}
	slots, err := value("transport_pipeline_window_slots")
	if err != nil {
		return err
	}
	if peak > slots {
		return fmt.Errorf("in-flight peak (%.0f) exceeds configured window slots (%.0f)", peak, slots)
	}
	perVerb := func(name string) (map[string]float64, error) {
		f, ok := snap.Family(name)
		if !ok {
			return nil, fmt.Errorf("transport family %s missing", name)
		}
		by := map[string]float64{}
		for _, m := range f.Metrics {
			by[m.Labels["verb"]] += m.Value
		}
		return by, nil
	}
	ops, err := perVerb("transport_batch_ops_total")
	if err != nil {
		return err
	}
	dispatched, err := perVerb("transport_batch_dispatched_total")
	if err != nil {
		return err
	}
	var totalBatched float64
	for _, verb := range []string{"registerbatch", "discoverbatch"} {
		if ops[verb] != dispatched[verb] {
			return fmt.Errorf("verb %s: batched ops (%.0f) != dispatched items (%.0f)",
				verb, ops[verb], dispatched[verb])
		}
		totalBatched += ops[verb]
	}
	if totalBatched <= 0 {
		return fmt.Errorf("batch counters are zero: no batch verbs ran")
	}
	breaks, _ := value("transport_pipeline_breaks_total")
	fmt.Printf("metricscheck: transport counters ok (%.0f pipelined calls, peak %.0f ≤ window %.0f, %.0f batched ops == dispatched, %.0f pipe breaks)\n",
		calls, peak, slots, totalBatched, breaks)
	return nil
}

// checkTrace validates the tracing families against the fabric's own op
// accounting. The tracer increments exactly one of sampled/dropped per
// finished op, so per system — and in total — the two must sum to the
// fabric's lorm_ops_total exactly. Slow-op detections and slow-op dumps
// are incremented together, so those totals must match exactly too.
func checkTrace(snap *metrics.Snapshot) error {
	perSystem := func(name string) (map[string]float64, error) {
		f, ok := snap.Family(name)
		if !ok {
			return nil, fmt.Errorf("tracing counter family %s missing", name)
		}
		by := map[string]float64{}
		for _, m := range f.Metrics {
			by[m.Labels["system"]] += m.Value
		}
		return by, nil
	}
	sampled, err := perSystem("tracing_spans_sampled_total")
	if err != nil {
		return err
	}
	dropped, err := perSystem("tracing_spans_dropped_total")
	if err != nil {
		return err
	}
	slow, err := perSystem("tracing_slow_ops_total")
	if err != nil {
		return err
	}
	dumps, err := perSystem("tracing_slow_op_dumps_total")
	if err != nil {
		return err
	}
	ops, err := perSystem("lorm_ops_total")
	if err != nil {
		return err
	}
	var totalSampled, totalDropped, totalOps, totalSlow, totalDumps float64
	for _, system := range []string{"lorm", "maan", "mercury", "sword", "art"} {
		s, d, o := sampled[system], dropped[system], ops[system]
		if s+d != o {
			return fmt.Errorf("system %s: sampled (%.0f) + dropped (%.0f) != fabric ops (%.0f): the tracer missed or double-counted operations",
				system, s, d, o)
		}
		if sl, du := slow[system], dumps[system]; sl != du {
			return fmt.Errorf("system %s: slow ops (%.0f) != slow-op dumps (%.0f)", system, sl, du)
		}
		totalSampled += s
		totalDropped += d
		totalOps += o
		totalSlow += slow[system]
		totalDumps += dumps[system]
	}
	if totalSampled+totalDropped != totalOps {
		return fmt.Errorf("sampled (%.0f) + dropped (%.0f) != fabric ops (%.0f) in total",
			totalSampled, totalDropped, totalOps)
	}
	if totalSampled <= 0 {
		return fmt.Errorf("tracing_spans_sampled_total is zero: no operations were sampled")
	}
	fmt.Printf("metricscheck: tracing counters ok (%.0f sampled + %.0f dropped = %.0f ops; %.0f slow ops, %.0f dumps)\n",
		totalSampled, totalDropped, totalOps, totalSlow, totalDumps)
	return nil
}

// checkMembership validates the gossip-membership and network-fault
// families a partition run must produce, and cross-checks the invariants
// that tie them together: a shuffle either completes with a reply or times
// out, every suspicion closure (clear or confirmation) consumed an opened
// suspicion, every partition formed was healed, and query failures observed
// inside the fault window must be explainable — if any occurred, the
// overlays' own unreachable-hop counters must have fired too.
func checkMembership(snap *metrics.Snapshot) error {
	value := func(name string) (float64, error) {
		f, ok := snap.Family(name)
		if !ok {
			return 0, fmt.Errorf("membership counter family %s missing", name)
		}
		return f.Total(), nil
	}
	vals := map[string]float64{}
	for _, name := range []string{
		"membership_shuffles_total",
		"membership_shuffle_replies_total",
		"membership_shuffle_timeouts_total",
		"membership_suspicions_total",
		"membership_suspicions_cleared_total",
		"membership_confirms_total",
		"netfault_partitions_started_total",
		"netfault_partitions_healed_total",
		"netfault_blocked_messages_total",
		"netfault_window_query_checks_total",
		"netfault_window_query_failures_total",
	} {
		v, err := value(name)
		if err != nil {
			return err
		}
		vals[name] = v
	}
	shuffles := vals["membership_shuffles_total"]
	if shuffles <= 0 {
		return fmt.Errorf("membership_shuffles_total is zero: the gossip layer never ran")
	}
	if replies := vals["membership_shuffle_replies_total"]; replies > shuffles {
		return fmt.Errorf("membership_shuffle_replies_total (%.0f) exceeds shuffles (%.0f)", replies, shuffles)
	}
	sus := vals["membership_suspicions_total"]
	if sus <= 0 {
		return fmt.Errorf("membership_suspicions_total is zero: the fault window suspected nobody")
	}
	if closed := vals["membership_suspicions_cleared_total"] + vals["membership_confirms_total"]; closed > sus {
		return fmt.Errorf("suspicion closures (%.0f cleared + %.0f confirmed) exceed suspicions opened (%.0f)",
			vals["membership_suspicions_cleared_total"], vals["membership_confirms_total"], sus)
	}
	started := vals["netfault_partitions_started_total"]
	if started <= 0 {
		return fmt.Errorf("netfault_partitions_started_total is zero: no partition was injected")
	}
	if healed := vals["netfault_partitions_healed_total"]; healed != started {
		return fmt.Errorf("netfault_partitions_healed_total (%.0f) != started (%.0f): a partition never healed",
			healed, started)
	}
	checks := vals["netfault_window_query_checks_total"]
	fails := vals["netfault_window_query_failures_total"]
	if checks <= 0 {
		return fmt.Errorf("netfault_window_query_checks_total is zero: no query ran inside the fault window")
	}
	if fails > checks {
		return fmt.Errorf("window query failures (%.0f) exceed window query checks (%.0f)", fails, checks)
	}
	// Window failures come from unreachable hops; when any occurred, the
	// overlays must have recorded unreachable-successor failures too (the
	// converse does not hold exactly: one failed range query can contain
	// several sub-lookup failures, and oracle-mismatch failures record none).
	overlayFails := 0.0
	for _, name := range []string{"chord_query_failures_total", "cycloid_query_failures_total"} {
		if f, ok := snap.Family(name); ok {
			overlayFails += f.Total()
		}
	}
	if fails > 0 && overlayFails <= 0 {
		return fmt.Errorf("window query failures (%.0f) with zero overlay query failures: failure attribution broken", fails)
	}
	if vals["netfault_blocked_messages_total"] <= 0 {
		return fmt.Errorf("netfault_blocked_messages_total is zero: the partition blocked nothing")
	}
	fmt.Printf("metricscheck: membership counters ok (%.0f shuffles, %.0f suspicions, %.0f cleared, %.0f confirms; %.0f/%.0f window failures, %.0f partitions healed)\n",
		shuffles, sus, vals["membership_suspicions_cleared_total"], vals["membership_confirms_total"],
		fails, checks, started)
	return nil
}

// checkART validates the ART trie families and cross-checks them against
// the fabric's labeled step counts. The trie router increments its descent
// counter exactly once per trie-descent forward, so art_descent_steps_total
// must equal the trie-descent-labeled steps of system "art" exactly — and
// can never exceed ART's total steps (descents are a subset of its hops).
// Splits and handovers are tied one-to-one: a bucket split hands its upper
// sub-interval to exactly one sibling. Trie rebuilds must have happened at
// least once, because every deployment build triggers one.
func checkART(snap *metrics.Snapshot) error {
	value := func(name string) (float64, error) {
		f, ok := snap.Family(name)
		if !ok {
			return 0, fmt.Errorf("art counter family %s missing", name)
		}
		return f.Total(), nil
	}
	vals := map[string]float64{}
	for _, name := range []string{
		"art_descent_steps_total",
		"art_descent_fallbacks_total",
		"art_trie_rebuilds_total",
		"art_bucket_splits_total",
		"art_bucket_handovers_total",
	} {
		v, err := value(name)
		if err != nil {
			return err
		}
		vals[name] = v
	}
	steps, ok := snap.Family("lorm_op_steps_total")
	if !ok {
		return fmt.Errorf("family lorm_op_steps_total missing")
	}
	var descentSteps, artSteps float64
	for _, m := range steps.Metrics {
		if m.Labels["system"] != "art" {
			continue
		}
		artSteps += m.Value
		if m.Labels["reason"] == "trie-descent" {
			descentSteps += m.Value
		}
	}
	descents := vals["art_descent_steps_total"]
	if descents <= 0 {
		return fmt.Errorf("art_descent_steps_total is zero: the trie router never descended")
	}
	if descents != descentSteps {
		return fmt.Errorf("art_descent_steps_total (%.0f) != trie-descent steps (%.0f): every descent must record exactly one labeled forward",
			descents, descentSteps)
	}
	if descentSteps > artSteps {
		return fmt.Errorf("trie-descent steps (%.0f) exceed ART's total steps (%.0f)", descentSteps, artSteps)
	}
	if rebuilds := vals["art_trie_rebuilds_total"]; rebuilds <= 0 {
		return fmt.Errorf("art_trie_rebuilds_total is zero: the trie view was never built")
	}
	splits := vals["art_bucket_splits_total"]
	if handovers := vals["art_bucket_handovers_total"]; splits != handovers {
		return fmt.Errorf("art_bucket_splits_total (%.0f) != art_bucket_handovers_total (%.0f): a split must hand over exactly once",
			splits, handovers)
	}
	fmt.Printf("metricscheck: art counters ok (%.0f descents == labeled steps, ≤ %.0f total art steps; %.0f fallbacks, %.0f rebuilds, %.0f splits == handovers)\n",
		descents, artSteps, vals["art_descent_fallbacks_total"], vals["art_trie_rebuilds_total"], splits)
	return nil
}

// checkReplication validates the replication-layer families a hot-key run
// must produce, and cross-checks them against the fabric's reason-labeled
// step counts: every replica read hit records exactly one replica-read
// probe forward, so the two counters must agree exactly; Repair and hot-key
// promotion place copies without routing an operation, so replicas placed
// must be at least the replicate-reason steps.
func checkReplication(snap *metrics.Snapshot) error {
	value := func(name string) (float64, error) {
		f, ok := snap.Family(name)
		if !ok {
			return 0, fmt.Errorf("replication counter family %s missing", name)
		}
		return f.Total(), nil
	}
	vals := map[string]float64{}
	for _, name := range []string{
		"replication_replicas_placed_total",
		"replication_replicas_dropped_total",
		"replication_replica_read_hits_total",
		"replication_hotkey_promotions_total",
		"replication_hotkey_demotions_total",
	} {
		v, err := value(name)
		if err != nil {
			return err
		}
		vals[name] = v
	}
	steps, ok := snap.Family("lorm_op_steps_total")
	if !ok {
		return fmt.Errorf("family lorm_op_steps_total missing")
	}
	byReason := map[string]float64{}
	for _, m := range steps.Metrics {
		byReason[m.Labels["reason"]] += m.Value
	}
	promotions := vals["replication_hotkey_promotions_total"]
	if promotions <= 0 {
		return fmt.Errorf("replication_hotkey_promotions_total is zero: no key-groups were promoted")
	}
	placed := vals["replication_replicas_placed_total"]
	if placed <= 0 {
		return fmt.Errorf("replication_replicas_placed_total is zero despite %.0f promotions", promotions)
	}
	hits := vals["replication_replica_read_hits_total"]
	if hits <= 0 {
		return fmt.Errorf("replication_replica_read_hits_total is zero: no reads were served by replicas")
	}
	if probes := byReason["replica-read"]; hits != probes {
		return fmt.Errorf("replication_replica_read_hits_total (%.0f) != replica-read steps (%.0f): every planned read must record exactly one probe forward",
			hits, probes)
	}
	if replicates := byReason["replicate"]; placed < replicates {
		return fmt.Errorf("replication_replicas_placed_total (%.0f) below replicate steps (%.0f): placement accounting out of sync",
			placed, replicates)
	}
	fmt.Printf("metricscheck: replication counters ok (%.0f placed, %.0f dropped, %.0f replica read hits, %.0f promotions, %.0f demotions)\n",
		placed, vals["replication_replicas_dropped_total"], hits, promotions,
		vals["replication_hotkey_demotions_total"])
	return nil
}

// checkDirectory validates the directory-index families: any run that
// observed routing ops must also have registered pieces into directories
// and served range matches from them.
func checkDirectory(snap *metrics.Snapshot) error {
	for _, name := range []string{
		"directory_adds_total",
		"directory_matches_total",
	} {
		f, ok := snap.Family(name)
		if !ok {
			return fmt.Errorf("directory counter family %s missing", name)
		}
		if f.Total() <= 0 {
			return fmt.Errorf("%s is zero: the directory index saw no traffic", name)
		}
	}
	return nil
}

// checkLoad validates the load-balance migration families a rebalancing
// run must produce, and cross-checks them against the directory and
// overlay counters they are definitionally tied to: every migration is
// exactly one chord/cycloid boundary move, each boundary move performs at
// most one TakeRange, and every entry the migrator moves was handed over
// by a directory (other handover paths — churn departures — only add to
// the directory side).
func checkLoad(snap *metrics.Snapshot) error {
	value := func(name string) (float64, error) {
		f, ok := snap.Family(name)
		if !ok {
			return 0, fmt.Errorf("load-balance counter family %s missing", name)
		}
		return f.Total(), nil
	}
	var vals = map[string]float64{}
	for _, name := range []string{
		"loadbalance_passes_total",
		"loadbalance_migrations_total",
		"loadbalance_entries_moved_total",
		"loadbalance_blocked_hotspots_total",
		"chord_boundary_moves_total",
		"cycloid_boundary_moves_total",
		"directory_take_ranges_total",
		"directory_entries_handed_over_total",
	} {
		v, err := value(name)
		if err != nil {
			return err
		}
		vals[name] = v
	}
	passes := vals["loadbalance_passes_total"]
	migrations := vals["loadbalance_migrations_total"]
	movedEntries := vals["loadbalance_entries_moved_total"]
	if passes <= 0 {
		return fmt.Errorf("loadbalance_passes_total is zero: no rebalance pass ran")
	}
	if migrations <= 0 {
		return fmt.Errorf("loadbalance_migrations_total is zero: the rebalance passes moved nothing")
	}
	if movedEntries <= 0 {
		return fmt.Errorf("loadbalance_entries_moved_total is zero despite %0.f migrations", migrations)
	}
	if moves := vals["chord_boundary_moves_total"] + vals["cycloid_boundary_moves_total"]; migrations != moves {
		return fmt.Errorf("loadbalance_migrations_total (%.0f) != chord+cycloid boundary moves (%.0f): migration accounting out of sync",
			migrations, moves)
	}
	if takes := vals["directory_take_ranges_total"]; migrations > takes {
		return fmt.Errorf("loadbalance_migrations_total (%.0f) exceeds directory_take_ranges_total (%.0f)",
			migrations, takes)
	}
	if handed := vals["directory_entries_handed_over_total"]; movedEntries > handed {
		return fmt.Errorf("loadbalance_entries_moved_total (%.0f) exceeds directory_entries_handed_over_total (%.0f)",
			movedEntries, handed)
	}
	fmt.Printf("metricscheck: load counters ok (%.0f passes, %.0f migrations, %.0f entries moved, %.0f blocked hotspots)\n",
		passes, migrations, movedEntries, vals["loadbalance_blocked_hotspots_total"])
	return nil
}

// checkCrash validates the failure-injection families a crash-churn run
// must produce: every counter family exists, crashes were actually applied
// and entries actually lost (the experiment is pointless otherwise).
func checkCrash(snap *metrics.Snapshot) error {
	for _, name := range []string{
		"chord_lookup_detours_total",
		"cycloid_lookup_detours_total",
		"chord_query_failures_total",
		"cycloid_query_failures_total",
		"churn_crashes_total",
		"churn_lost_entries_total",
	} {
		if _, ok := snap.Family(name); !ok {
			return fmt.Errorf("failure counter family %s missing", name)
		}
	}
	value := func(name string) float64 {
		f, _ := snap.Family(name)
		return f.Total()
	}
	crashes := value("churn_crashes_total")
	if crashes <= 0 {
		return fmt.Errorf("churn_crashes_total is zero: no crashes were injected")
	}
	lost := value("churn_lost_entries_total")
	if lost <= 0 {
		return fmt.Errorf("churn_lost_entries_total is zero: crashes destroyed nothing")
	}
	detours := value("chord_lookup_detours_total") + value("cycloid_lookup_detours_total")
	fmt.Printf("metricscheck: crash counters ok (%.0f crashes, %.0f entries lost, %.0f lookup detours)\n",
		crashes, lost, detours)
	return nil
}
