// Command metricscheck validates a metrics snapshot produced by
// `lormsim -metrics-out`: the JSON must parse into a metrics.Snapshot and
// the routing op counters must show actual traffic. CI runs it after a
// short simulation to catch regressions in the observability pipeline.
//
// Usage: metricscheck <snapshot.json>
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"lorm/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: metricscheck <snapshot.json>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("snapshot does not parse: %w", err)
	}
	if len(snap.Families) == 0 {
		return fmt.Errorf("snapshot has no metric families")
	}
	ops, ok := snap.Family("lorm_ops_total")
	if !ok {
		return fmt.Errorf("family lorm_ops_total missing")
	}
	total := ops.Total()
	if total <= 0 {
		return fmt.Errorf("lorm_ops_total is zero: no routing ops were observed")
	}
	bySystem := map[string]float64{}
	for _, m := range ops.Metrics {
		bySystem[m.Labels["system"]] += m.Value
	}
	for _, want := range []string{"lorm", "maan", "mercury", "sword"} {
		if bySystem[want] == 0 {
			return fmt.Errorf("no ops recorded for system %q", want)
		}
	}
	fmt.Printf("metricscheck: %d families, %.0f routing ops (lorm=%.0f maan=%.0f mercury=%.0f sword=%.0f)\n",
		len(snap.Families), total, bySystem["lorm"], bySystem["maan"], bySystem["mercury"], bySystem["sword"])
	return nil
}
