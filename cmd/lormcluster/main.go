// Command lormcluster benchmarks the transport against a real many-process
// cluster: it spawns N `lormnode serve` gateways on loopback TCP, drives an
// open-loop announce/query mix from M concurrent clients through the
// pipelined client, and reports per-op latency quantiles and throughput.
//
// The load is open-loop: every operation has a scheduled arrival time on a
// fixed timetable derived from -rate, and its latency is measured from that
// scheduled arrival — not from when the client got around to sending it —
// so queueing delay under overload is charged to the result instead of
// silently omitted.
//
// Output:
//   - cluster_latency.csv / cluster_throughput.csv under -out
//   - a BENCH_cluster.json-style baseline document at -json
//     (validated by `benchdump -check`)
//   - a merged metrics snapshot (driver + every gateway) at -metrics-out
//     (validated by `metricscheck -transport`)
//
// Example:
//
//	lormcluster -nodes 8 -clients 64 -rate 5000
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lorm/internal/experiments"
	"lorm/internal/metrics"
	"lorm/internal/resource"
	"lorm/internal/transport"
)

// attrDomain mirrors the default lormnode schema; announced values and
// query ranges are drawn from these domains.
type attrDomain struct {
	name     string
	min, max float64
}

var domains = []attrDomain{
	{"cpu", 100, 3200},
	{"mem", 0, 8192},
	{"disk", 1, 2000},
}

const schemaSpec = "cpu:100:3200,mem:0:8192,disk:1:2000"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lormcluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lormcluster", flag.ContinueOnError)
	def := experiments.DefaultCluster()
	nodes := fs.Int("nodes", def.Nodes, "gateway processes to spawn")
	peers := fs.Int("peers", def.Peers, "simulated peers inside each gateway")
	system := fs.String("system", def.System, "discovery system: lorm, mercury, sword, maan, art")
	clients := fs.Int("clients", def.Clients, "concurrent driver clients")
	window := fs.Int("window", def.Window, "pipelined in-flight window per client")
	rate := fs.Float64("rate", def.Rate, "open-loop arrival rate, operations/second across the driver")
	duration := fs.Duration("duration", def.Duration, "open-loop phase length")
	announceFrac := fs.Float64("announce-frac", def.AnnounceFrac, "fraction of operations that are announces")
	batch := fs.Int("batch", def.BatchSize, "operations per batch frame (1 uses singular verbs)")
	hopLatency := fs.Duration("hop-latency", def.HopLatency, "per-overlay-message delay each gateway emulates")
	seed := fs.Int64("seed", def.Seed, "workload randomness seed")
	nodeBin := fs.String("node-bin", "lormnode", "path to the lormnode binary")
	outDir := fs.String("out", ".", "directory for latency/throughput CSVs")
	jsonOut := fs.String("json", "", "write the baseline JSON document here (empty skips)")
	metricsOut := fs.String("metrics-out", "", "write the merged driver+gateway metrics snapshot here (empty skips)")
	compare := fs.Bool("compare", true, "run the closed-loop window=1 vs window=N pipeline comparison")
	compareCallers := fs.Int("compare-callers", 8, "concurrent callers in the pipeline comparison")
	compareDuration := fs.Duration("compare-duration", 3*time.Second, "length of each pipeline comparison run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := experiments.ClusterParams{
		Nodes: *nodes, Peers: *peers, System: *system,
		Clients: *clients, Window: *window, Rate: *rate,
		Duration: *duration, AnnounceFrac: *announceFrac,
		BatchSize: *batch, HopLatency: *hopLatency, Seed: *seed,
	}
	if err := params.Validate(); err != nil {
		return err
	}

	cluster, err := spawnCluster(*nodeBin, params)
	if err != nil {
		return err
	}
	defer cluster.stop()
	fmt.Fprintf(os.Stderr, "lormcluster: %d gateways up (%s, %d peers each, hop latency %v)\n",
		len(cluster.addrs), params.System, params.Peers, params.HopLatency)

	rec, wall, err := driveOpenLoop(cluster.addrs, params)
	if err != nil {
		return err
	}

	var cmp *comparison
	if *compare {
		cmp, err = runComparison(cluster.addrs[0], *compareCallers, params.Window, *compareDuration, params.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lormcluster: pipeline comparison window=1 %.0f ops/s, window=%d %.0f ops/s (%.1fx)\n",
			1/cmp.secPerOpLow(), cmp.WindowHigh, 1/cmp.secPerOpHigh(), cmp.Speedup)
	}

	summaries := rec.summarize(wall)
	if err := writeCSVs(*outDir, summaries); err != nil {
		return err
	}
	if *jsonOut != "" {
		if err := writeBaseline(*jsonOut, params, summaries, cmp); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := writeMergedMetrics(*metricsOut, cluster.metricsAddrs); err != nil {
			return err
		}
	}

	for _, s := range summaries {
		fmt.Printf("%-9s ops=%-7d fail=%-4d p50=%.0fµs p99=%.0fµs p999=%.0fµs throughput=%.0f ops/s\n",
			s.Op, s.Count, s.Failures, s.P50us, s.P99us, s.P999us, s.OpsPerSec)
	}
	var failures int
	for _, s := range summaries {
		failures += s.Failures
	}
	if failures > 0 {
		return fmt.Errorf("%d operations failed", failures)
	}
	return nil
}

// ---- cluster process management ----

type cluster struct {
	procs        []*exec.Cmd
	addrs        []string
	metricsAddrs []string
	dir          string
}

// spawnCluster launches params.Nodes lormnode gateways on port 0 and waits
// for each to publish its bound addresses through addr files.
func spawnCluster(nodeBin string, params experiments.ClusterParams) (*cluster, error) {
	dir, err := os.MkdirTemp("", "lormcluster-")
	if err != nil {
		return nil, err
	}
	c := &cluster{dir: dir}
	for i := 0; i < params.Nodes; i++ {
		addrFile := filepath.Join(dir, fmt.Sprintf("node%d.addr", i))
		maddrFile := filepath.Join(dir, fmt.Sprintf("node%d.maddr", i))
		cmd := exec.Command(nodeBin, "serve",
			"-listen", "127.0.0.1:0",
			"-system", params.System,
			"-nodes", strconv.Itoa(params.Peers),
			"-attrs", schemaSpec,
			"-metrics-listen", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-metrics-addr-file", maddrFile,
			"-hop-latency", params.HopLatency.String(),
			"-log-level", "warn",
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			c.stop()
			return nil, fmt.Errorf("spawn gateway %d: %w", i, err)
		}
		c.procs = append(c.procs, cmd)
	}
	for i := 0; i < params.Nodes; i++ {
		addr, err := waitForAddrFile(filepath.Join(dir, fmt.Sprintf("node%d.addr", i)), 30*time.Second)
		if err != nil {
			c.stop()
			return nil, fmt.Errorf("gateway %d did not come up: %w", i, err)
		}
		maddr, err := waitForAddrFile(filepath.Join(dir, fmt.Sprintf("node%d.maddr", i)), 30*time.Second)
		if err != nil {
			c.stop()
			return nil, fmt.Errorf("gateway %d metrics endpoint did not come up: %w", i, err)
		}
		c.addrs = append(c.addrs, addr)
		c.metricsAddrs = append(c.metricsAddrs, maddr)
	}
	return c, nil
}

func (c *cluster) stop() {
	for _, cmd := range c.procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, cmd := range c.procs {
		cmd.Wait()
	}
	if c.dir != "" {
		os.RemoveAll(c.dir)
	}
}

// waitForAddrFile polls for the atomically-renamed addr file lormnode
// writes once its listener is bound.
func waitForAddrFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		b, err := os.ReadFile(path)
		if addr := strings.TrimSpace(string(b)); err == nil && addr != "" {
			return addr, nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("addr file %s empty", path)
			}
			return "", err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// ---- workload generation ----

// frame is one scheduled batch of homogeneous operations.
type frame struct {
	announce bool
	infos    []resource.Info
	queries  []transport.BatchQuery
}

// genFrame draws one announce or query frame from the client's seeded
// randomness. Queries span two attributes with ranges covering about a
// quarter of each domain, the multi-attribute shape the paper measures.
func genFrame(r *rand.Rand, announceFrac float64, size, clientIdx, seq int) frame {
	if r.Float64() < announceFrac {
		f := frame{announce: true}
		for i := 0; i < size; i++ {
			d := domains[r.Intn(len(domains))]
			f.infos = append(f.infos, resource.Info{
				Attr:  d.name,
				Value: d.min + r.Float64()*(d.max-d.min),
				Owner: fmt.Sprintf("site-%d-%d-%d", clientIdx, seq, i),
			})
		}
		return f
	}
	f := frame{}
	requester := fmt.Sprintf("req-%d", clientIdx)
	for i := 0; i < size; i++ {
		f.queries = append(f.queries, transport.BatchQuery{
			Subs:      []resource.SubQuery{rangeQuery(r, domains[0]), rangeQuery(r, domains[1])},
			Requester: requester,
		})
	}
	return f
}

// rangeQuery draws a range covering ~25% of d's domain, clamped to it.
func rangeQuery(r *rand.Rand, d attrDomain) resource.SubQuery {
	width := 0.25 * (d.max - d.min)
	lo := d.min + r.Float64()*(d.max-d.min-width)
	return resource.SubQuery{Attr: d.name, Low: lo, High: lo + width}
}

// ---- open-loop driver ----

var latencyVec = metrics.Default().HistogramVec("cluster_op_latency_us",
	"open-loop operation latency from scheduled arrival to completion, microseconds", "op")

// recorder accumulates per-op latency samples and failure counts.
type recorder struct {
	mu   sync.Mutex
	lat  map[string][]float64 // microseconds
	fail map[string]int
}

func newRecorder() *recorder {
	return &recorder{lat: make(map[string][]float64), fail: make(map[string]int)}
}

// record charges one frame's outcome: every op in the frame completed (or
// failed) when its frame did, so the frame latency is recorded once per op.
func (rec *recorder) record(op string, n, failed int, latency time.Duration) {
	us := float64(latency.Microseconds())
	h := latencyVec.With(op)
	rec.mu.Lock()
	for i := 0; i < n; i++ {
		rec.lat[op] = append(rec.lat[op], us)
		h.Observe(us)
	}
	rec.fail[op] += failed
	rec.mu.Unlock()
}

// opSummary is the per-op result row.
type opSummary struct {
	Op        string  `json:"op"`
	Count     int     `json:"count"`
	Failures  int     `json:"failures"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
	P999us    float64 `json:"p999_us"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

func (rec *recorder) summarize(wall time.Duration) []opSummary {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var out []opSummary
	for _, op := range []string{"announce", "query"} {
		lat := rec.lat[op]
		out = append(out, opSummary{
			Op:        op,
			Count:     len(lat),
			Failures:  rec.fail[op],
			P50us:     quantile(lat, 0.50),
			P99us:     quantile(lat, 0.99),
			P999us:    quantile(lat, 0.999),
			OpsPerSec: float64(len(lat)) / wall.Seconds(),
		})
	}
	return out
}

// quantile returns the nearest-rank q-quantile of samples (unsorted ok).
func quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// driveOpenLoop runs the announce/query mix: each client dials one gateway
// with a pipelined connection and issues frames on its fixed timetable.
func driveOpenLoop(addrs []string, params experiments.ClusterParams) (*recorder, time.Duration, error) {
	conns := make([]*transport.Client, params.Clients)
	for i := range conns {
		cli, err := transport.DialOptions(addrs[i%len(addrs)], transport.Options{
			Window:      params.Window,
			CallTimeout: 30 * time.Second,
		})
		if err != nil {
			for _, c := range conns[:i] {
				c.Close()
			}
			return nil, 0, fmt.Errorf("dial gateway: %w", err)
		}
		conns[i] = cli
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	rec := newRecorder()
	// Per-client frame interval: rate is ops/s across the driver, each
	// frame carries BatchSize ops, and Clients clients share the load.
	frameInterval := time.Duration(float64(params.BatchSize) / (params.Rate / float64(params.Clients)) * float64(time.Second))
	start := time.Now()
	end := start.Add(params.Duration)

	var wg sync.WaitGroup       // issuing clients
	var inflight sync.WaitGroup // dispatched frames
	for ci := 0; ci < params.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(params.Seed + int64(ci)))
			cli := conns[ci]
			// Stagger clients across one interval so arrivals spread
			// instead of pulsing in lockstep.
			offset := frameInterval * time.Duration(ci) / time.Duration(params.Clients)
			for n := 0; ; n++ {
				due := start.Add(offset + time.Duration(n)*frameInterval)
				if due.After(end) {
					return
				}
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				f := genFrame(r, params.AnnounceFrac, params.BatchSize, ci, n)
				inflight.Add(1)
				go func(due time.Time, f frame) {
					defer inflight.Done()
					issueFrame(cli, f, due, rec)
				}(due, f)
			}
		}(ci)
	}
	wg.Wait()
	inflight.Wait()
	wall := time.Since(start)
	return rec, wall, nil
}

// issueFrame sends one frame and records its outcome; latency runs from the
// scheduled arrival `due`, charging queueing delay to the measurement.
func issueFrame(cli *transport.Client, f frame, due time.Time, rec *recorder) {
	op, n := "query", len(f.queries)
	if f.announce {
		op, n = "announce", len(f.infos)
	}
	var results []transport.BatchResult
	var err error
	switch {
	case f.announce && n == 1:
		_, err = cli.Register(f.infos[0])
	case f.announce:
		results, err = cli.RegisterBatch(f.infos)
	case n == 1:
		_, _, _, err = cli.Discover(f.queries[0].Subs, f.queries[0].Requester)
	default:
		results, err = cli.DiscoverBatch(f.queries)
	}
	failed := 0
	if err != nil {
		failed = n
	} else {
		for _, r := range results {
			if !r.OK {
				failed++
			}
		}
	}
	rec.record(op, n, failed, time.Since(due))
}

// ---- closed-loop pipeline comparison ----

// comparison is the window=1 vs window=N closed-loop result: the same
// caller count and workload against the same gateway, so the ratio
// isolates what request pipelining buys.
type comparison struct {
	Callers       int     `json:"callers"`
	WindowLow     int     `json:"window_low"`
	WindowHigh    int     `json:"window_high"`
	OpsPerSecLow  float64 `json:"ops_per_sec_low"`
	OpsPerSecHigh float64 `json:"ops_per_sec_high"`
	Speedup       float64 `json:"speedup"`
}

func (c *comparison) secPerOpLow() float64  { return 1 / c.OpsPerSecLow }
func (c *comparison) secPerOpHigh() float64 { return 1 / c.OpsPerSecHigh }

func runComparison(addr string, callers, window int, dur time.Duration, seed int64) (*comparison, error) {
	low, err := measureClosedLoop(addr, callers, 1, dur, seed)
	if err != nil {
		return nil, err
	}
	high, err := measureClosedLoop(addr, callers, window, dur, seed)
	if err != nil {
		return nil, err
	}
	return &comparison{
		Callers:       callers,
		WindowLow:     1,
		WindowHigh:    window,
		OpsPerSecLow:  low,
		OpsPerSecHigh: high,
		Speedup:       high / low,
	}, nil
}

// measureClosedLoop runs `callers` goroutines issuing back-to-back
// discovers over one shared connection for dur and returns ops/second.
func measureClosedLoop(addr string, callers, window int, dur time.Duration, seed int64) (float64, error) {
	cli, err := transport.DialOptions(addr, transport.Options{Window: window, CallTimeout: 30 * time.Second})
	if err != nil {
		return 0, err
	}
	defer cli.Close()
	var ops atomic.Int64
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(i)))
			requester := fmt.Sprintf("cmp-%d", i)
			for time.Now().Before(deadline) {
				subs := []resource.SubQuery{rangeQuery(r, domains[0]), rangeQuery(r, domains[1])}
				if _, _, _, err := cli.Discover(subs, requester); err != nil {
					errc <- err
					return
				}
				ops.Add(1)
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return 0, fmt.Errorf("comparison discover: %w", err)
	default:
	}
	return float64(ops.Load()) / time.Since(start).Seconds(), nil
}

// ---- outputs ----

func writeCSVs(dir string, summaries []opSummary) error {
	lat := [][]string{{"op", "count", "failures", "p50_us", "p99_us", "p999_us"}}
	thr := [][]string{{"op", "ops", "ops_per_sec"}}
	for _, s := range summaries {
		lat = append(lat, []string{s.Op, strconv.Itoa(s.Count), strconv.Itoa(s.Failures),
			fmt.Sprintf("%.1f", s.P50us), fmt.Sprintf("%.1f", s.P99us), fmt.Sprintf("%.1f", s.P999us)})
		thr = append(thr, []string{s.Op, strconv.Itoa(s.Count), fmt.Sprintf("%.1f", s.OpsPerSec)})
	}
	if err := writeCSV(filepath.Join(dir, "cluster_latency.csv"), lat); err != nil {
		return err
	}
	return writeCSV(filepath.Join(dir, "cluster_throughput.csv"), thr)
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// baseline is the BENCH_cluster.json document layout, the third committed
// benchmark baseline next to BENCH.json and BENCH_figures.json.
type baseline struct {
	GeneratedUnix int64                     `json:"generated_unix"`
	Params        experiments.ClusterParams `json:"params"`
	Ops           map[string]opSummary      `json:"ops"`
	Comparison    *comparison               `json:"pipeline_comparison,omitempty"`
}

func writeBaseline(path string, params experiments.ClusterParams, summaries []opSummary, cmp *comparison) error {
	doc := baseline{
		GeneratedUnix: time.Now().Unix(),
		Params:        params,
		Ops:           make(map[string]opSummary, len(summaries)),
		Comparison:    cmp,
	}
	for _, s := range summaries {
		doc.Ops[s.Op] = s
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeMergedMetrics merges the driver's own registry snapshot with every
// gateway's /metrics?format=json document into one cluster-wide snapshot,
// the input `metricscheck -transport` validates.
func writeMergedMetrics(path string, metricsAddrs []string) error {
	merged := metrics.Default().Snapshot()
	client := &http.Client{Timeout: 10 * time.Second}
	for _, addr := range metricsAddrs {
		resp, err := client.Get("http://" + addr + "/metrics?format=json")
		if err != nil {
			return fmt.Errorf("scrape %s: %w", addr, err)
		}
		var snap metrics.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("scrape %s: %w", addr, err)
		}
		merged = merged.Merge(snap)
	}
	b, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
