package main

import (
	"encoding/csv"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestQuantileNearestRank(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1) // 1..100
	}
	// Shuffle to prove quantile sorts a copy.
	r := rand.New(rand.NewSource(7))
	r.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })

	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 50},
		{0.99, 99},
		{0.999, 100},
	}
	for _, tc := range cases {
		if got := quantile(samples, tc.q); got != tc.want {
			t.Errorf("quantile(1..100, %g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(nil) = %g, want 0", got)
	}
	if got := quantile([]float64{42}, 0.999); got != 42 {
		t.Errorf("quantile([42], 0.999) = %g, want 42", got)
	}
}

func TestRangeQueryStaysInDomain(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range domains {
		for i := 0; i < 1000; i++ {
			q := rangeQuery(r, d)
			if q.Low < d.min || q.High > d.max || q.Low > q.High {
				t.Fatalf("%s: query [%g,%g] outside domain [%g,%g]", d.name, q.Low, q.High, d.min, d.max)
			}
			if !q.IsRange() {
				t.Fatalf("%s: query [%g,%g] degenerated to a point", d.name, q.Low, q.High)
			}
		}
	}
}

func TestGenFrameMixAndShape(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	announces := 0
	const frames, size = 2000, 8
	for i := 0; i < frames; i++ {
		f := genFrame(r, 0.3, size, 5, i)
		if f.announce {
			announces++
			if len(f.infos) != size || len(f.queries) != 0 {
				t.Fatalf("announce frame carries %d infos, %d queries", len(f.infos), len(f.queries))
			}
			for _, in := range f.infos {
				if in.Owner == "" || in.Attr == "" {
					t.Fatalf("announce item missing owner or attr: %+v", in)
				}
			}
		} else {
			if len(f.queries) != size || len(f.infos) != 0 {
				t.Fatalf("query frame carries %d queries, %d infos", len(f.queries), len(f.infos))
			}
			for _, q := range f.queries {
				if len(q.Subs) != 2 || q.Requester == "" {
					t.Fatalf("query item malformed: %+v", q)
				}
			}
		}
	}
	frac := float64(announces) / frames
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("announce fraction %.3f far from configured 0.3", frac)
	}
}

func TestGenFrameDeterministicPerSeed(t *testing.T) {
	a := rand.New(rand.NewSource(9))
	b := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		fa := genFrame(a, 0.5, 4, 1, i)
		fb := genFrame(b, 0.5, 4, 1, i)
		if fa.announce != fb.announce || len(fa.infos) != len(fb.infos) || len(fa.queries) != len(fb.queries) {
			t.Fatalf("frame %d diverged under identical seeds", i)
		}
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	summaries := []opSummary{
		{Op: "announce", Count: 30, Failures: 0, P50us: 100, P99us: 500, P999us: 900, OpsPerSec: 3},
		{Op: "query", Count: 70, Failures: 1, P50us: 200, P99us: 700, P999us: 1100, OpsPerSec: 7},
	}
	if err := writeCSVs(dir, summaries); err != nil {
		t.Fatal(err)
	}
	for name, wantRows := range map[string]int{"cluster_latency.csv": 3, "cluster_throughput.csv": 3} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != wantRows {
			t.Errorf("%s: %d rows, want %d", name, len(rows), wantRows)
		}
	}
}
