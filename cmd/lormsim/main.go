// Command lormsim regenerates the paper's evaluation figures.
//
// Usage:
//
//	lormsim -exp all                 # every figure, standard preset
//	lormsim -exp fig5 -preset paper  # one figure at full paper scale
//	lormsim -exp fig3a,fig4 -format csv
//	lormsim -crash-rate 0.4          # crash-churn sweep (beyond the paper)
//	lormsim -load-out results_load.txt  # load-distribution + rebalance sweep
//	lormsim -hotkey-out results_hotkey.txt  # hot-key replication sweep
//	lormsim -partition 30 -partition-heal 45  # healing partition + flash crowd
//	lormsim -art-out results_art.txt  # ART sub-logarithmic scaling sweep
//
// Experiments: fig3a, fig3b, fig3c, fig3d, fig3e, fig4a, fig4b, fig5a,
// fig5b, fig6a, fig6b, all, plus the opt-in extras theorems, worstcase,
// ablations, crash, load, hotkey, partition and art. Presets: quick,
// standard, paper.
// Individual knobs (-n, -m, -k, -d, -seed, ...) override the preset.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"lorm/internal/experiments"
	"lorm/internal/metrics"
	"lorm/internal/routing"
	"lorm/internal/stats"
	"lorm/internal/tracing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lormsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("lormsim", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "comma-separated experiments: fig3a fig3b fig3c fig3d fig3e fig4a fig4b fig5a fig5b fig6a fig6b all theorems worstcase ablations crash load hotkey partition art")
		preset  = fs.String("preset", "standard", "parameter preset: quick, standard, paper")
		format  = fs.String("format", "text", "output format: text, csv")
		nFlag   = fs.Int("n", 0, "override node count")
		dFlag   = fs.Int("d", 0, "override Cycloid dimension")
		mFlag   = fs.Int("m", 0, "override attribute count")
		kFlag   = fs.Int("k", 0, "override pieces per attribute")
		rqFlag  = fs.Int("range-queries", 0, "override range queries per point")
		cqFlag  = fs.Int("churn-queries", 0, "override churn queries per rate")
		seed    = fs.Int64("seed", 0, "override RNG seed")
		trace   = fs.String("trace", "", "write per-discover hop-path trace lines to this file")
		mout    = fs.String("metrics-out", "", "write the final metrics snapshot (JSON) to this file")
		crRate  = fs.Float64("crash-rate", 0, "fault-arrival rate for the crash experiment; setting it implies -exp crash")
		crFrac  = fs.Float64("crash-frac", 0, "probability a fault is an abrupt crash instead of a graceful departure (default 0.5)")
		loadOut = fs.String("load-out", "", "write the load-distribution tables to this file; setting it implies -exp load")
		rebal   = fs.Bool("rebalance", true, "run the item-migration pass in the load experiment and report post-rebalance load factors")
		hotOut  = fs.String("hotkey-out", "", "write the hot-key replication sweep tables to this file; setting it implies -exp hotkey")
		artOut  = fs.String("art-out", "", "write the ART scaling-sweep table to this file; setting it implies -exp art")
		partAt  = fs.Float64("partition", 0, "form a healing network partition at this virtual time; setting it implies -exp partition")
		partHl  = fs.Float64("partition-heal", 0, "heal the partition at this virtual time (must exceed -partition; default sweeps the preset durations)")
		burst   = fs.Int("join-burst", 0, "flash-crowd join-burst size for the partition experiment; setting it implies -exp partition")
		randSuc = fs.Bool("random-successors", false, "use ReCord-style randomized fingers in the Chord-based systems for the partition experiment; setting it implies -exp partition")
		partOut = fs.String("partition-out", "", "write the partition/flash-crowd tables to this file; setting it implies -exp partition")
		spans   = fs.String("trace-spans", "", "write timed trace spans (JSONL, the cmd/lormtrace input) to this file")
		sample  = fs.Float64("trace-sample", 1, "head-sampling probability for -trace-spans (deterministic in -seed)")
		slowMS  = fs.Float64("slow-ms", 0, "dump sampled operations at least this many milliseconds long to stderr (0 disables)")
		logLvl  = fs.String("log-level", "warn", "minimum stderr event-log level: debug, info, warn, error (debug shows churn joins/departures)")
		logJSON = fs.Bool("log-json", false, "emit event logs as structured JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLvl)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLvl, err)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	var p experiments.Params
	switch *preset {
	case "quick":
		p = experiments.Quick()
	case "standard":
		p = experiments.Standard()
	case "paper":
		p = experiments.Paper()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if *nFlag > 0 {
		p.N = *nFlag
	}
	if *dFlag > 0 {
		p.D = *dFlag
	}
	if *mFlag > 0 {
		p.M = *mFlag
	}
	if *kFlag > 0 {
		p.K = *kFlag
	}
	if *rqFlag > 0 {
		p.RangeQueries = *rqFlag
	}
	if *cqFlag > 0 {
		p.ChurnQueries = *cqFlag
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *crRate > 0 {
		p.CrashRates = []float64{*crRate}
	}
	if *crFrac > 0 {
		p.CrashFraction = *crFrac
	}
	if *partAt > 0 {
		p.PartitionAt = *partAt
	}
	if *partHl > 0 {
		if *partHl <= p.PartitionAt {
			return fmt.Errorf("-partition-heal %g must be later than -partition %g", *partHl, p.PartitionAt)
		}
		p.PartitionDurations = []float64{*partHl - p.PartitionAt}
	}
	if *burst > 0 {
		p.JoinBursts = []int{*burst}
	}
	p.RandomSuccessors = *randSuc
	// Membership events (churn joins/departures at Debug, crashes at Info)
	// flow through the same leveled handler as every other event line.
	p.Logger = logger
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		sink := routing.NewTraceSink(f, routing.OpDiscover)
		p.TraceObserver = sink
		defer func() {
			fmt.Fprintf(os.Stderr, "[lormsim] trace: %d discover operations written to %s\n",
				sink.Lines(), *trace)
			if err := sink.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "[lormsim] trace write error: %v\n", err)
			}
		}()
	}
	if *mout != "" {
		obs := routing.NewMetricsObserver(metrics.Default())
		p.MetricsObserver = obs
		// Heartbeat: one stderr line every few seconds with the running op
		// total, so long paper-scale runs show signs of life.
		hbDone := make(chan struct{})
		go func() {
			tick := time.NewTicker(5 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-hbDone:
					return
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "[lormsim] metrics: %d routing ops observed\n", obs.TotalOps())
				}
			}
		}()
		defer func() {
			close(hbDone)
			f, ferr := os.Create(*mout)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "[lormsim] metrics-out: %v\n", ferr)
				return
			}
			defer f.Close()
			if werr := metrics.Default().WriteJSONSnapshot(f); werr != nil {
				fmt.Fprintf(os.Stderr, "[lormsim] metrics-out: %v\n", werr)
				return
			}
			fmt.Fprintf(os.Stderr, "[lormsim] metrics: %d routing ops; snapshot written to %s\n",
				obs.TotalOps(), *mout)
		}()
	}

	if *spans != "" || *slowMS > 0 {
		tracer := tracing.New(tracing.Config{
			Seed:          p.Seed,
			SampleRate:    *sample,
			SlowThreshold: time.Duration(*slowMS * float64(time.Millisecond)),
			SlowLog:       os.Stderr,
		})
		p.SpanObserver = tracer
		defer func() {
			col := tracer.Collector()
			if evicted := col.Evicted(); evicted > 0 {
				fmt.Fprintf(os.Stderr, "[lormsim] trace-spans: collector full, %d spans evicted (cap %d)\n",
					evicted, col.Cap())
			}
			if *spans == "" {
				return
			}
			f, ferr := os.Create(*spans)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "[lormsim] trace-spans: %v\n", ferr)
				return
			}
			defer f.Close()
			if werr := col.WriteJSONL(f); werr != nil {
				fmt.Fprintf(os.Stderr, "[lormsim] trace-spans: %v\n", werr)
				return
			}
			fmt.Fprintf(os.Stderr, "[lormsim] trace-spans: %d spans written to %s (sample %g)\n",
				col.Len(), *spans, *sample)
		}()
	}

	expSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			expSet = true
		}
	})
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	partitionImplied := *partAt > 0 || *burst > 0 || *randSuc || *partOut != ""
	if !expSet && (*crRate > 0 || *loadOut != "" || *hotOut != "" || *artOut != "" || partitionImplied) {
		// -crash-rate, -load-out, -hotkey-out, -art-out or a partition flag
		// alone means "run that experiment", not the default -exp all on top
		// of it.
		want = map[string]bool{}
	}
	if *crRate > 0 {
		want["crash"] = true
	}
	if *loadOut != "" {
		want["load"] = true
	}
	if *hotOut != "" {
		want["hotkey"] = true
	}
	if *artOut != "" {
		want["art"] = true
	}
	if partitionImplied {
		want["partition"] = true
	}
	all := want["all"]
	need := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	emit := func(tables ...*stats.Table) {
		for _, t := range tables {
			if t == nil {
				continue
			}
			if *format == "csv" {
				fmt.Fprintf(out, "# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Fprintln(out, t.Text())
			}
		}
	}
	timed := func(name string, fn func() error) error {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "[lormsim] running %s (preset %s, n=%d, m=%d, k=%d)...\n",
			name, *preset, p.N, p.M, p.K)
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(os.Stderr, "[lormsim] %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if need("fig3a") {
		if err := timed("fig3a", func() error {
			tbl, err := experiments.Fig3a(p)
			if err != nil {
				return err
			}
			emit(tbl)
			return nil
		}); err != nil {
			return err
		}
	}

	// The remaining static figures share one populated environment.
	var env *experiments.Env
	getEnv := func() (*experiments.Env, error) {
		if env != nil {
			return env, nil
		}
		var err error
		err = timed("environment build+register", func() error {
			env, err = experiments.NewEnv(p)
			return err
		})
		return env, err
	}

	if need("fig3b", "fig3c", "fig3d", "fig3e") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		b, c, d, e3 := experiments.Fig3bcd(e)
		if all || want["fig3b"] {
			emit(b)
		}
		if all || want["fig3c"] {
			emit(c)
		}
		if all || want["fig3d"] {
			emit(d)
		}
		if all || want["fig3e"] {
			emit(e3)
		}
	}

	if need("fig4a", "fig4b") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		if err := timed("fig4", func() error {
			avg, total, err := experiments.Fig4(e)
			if err != nil {
				return err
			}
			if all || want["fig4a"] {
				emit(avg)
			}
			if all || want["fig4b"] {
				emit(total)
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if need("fig5a", "fig5b") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		if err := timed("fig5", func() error {
			total, avg, err := experiments.Fig5(e)
			if err != nil {
				return err
			}
			if all || want["fig5a"] {
				emit(total)
			}
			if all || want["fig5b"] {
				emit(avg)
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if need("theorems") && !all { // opt-in: not part of -exp all
		e, err := getEnv()
		if err != nil {
			return err
		}
		if err := timed("theorems", func() error {
			tbl, err := experiments.TheoremCheck(e)
			if err != nil {
				return err
			}
			emit(tbl)
			return nil
		}); err != nil {
			return err
		}
	}

	if need("worstcase") && !all { // opt-in: not part of -exp all
		e, err := getEnv()
		if err != nil {
			return err
		}
		if err := timed("worstcase", func() error {
			tbl, err := experiments.WorstCase(e)
			if err != nil {
				return err
			}
			emit(tbl)
			return nil
		}); err != nil {
			return err
		}
	}

	if need("ablations") && !all { // opt-in: not part of -exp all
		if err := timed("ablations", func() error {
			dim, err := experiments.AblationDimension(p, nil)
			if err != nil {
				return err
			}
			width, err := experiments.AblationRangeWidth(p, nil)
			if err != nil {
				return err
			}
			skew, err := experiments.AblationSkew(p, nil)
			if err != nil {
				return err
			}
			emit(dim, width, skew)
			return nil
		}); err != nil {
			return err
		}
	}

	if need("crash") && !all { // opt-in: not part of -exp all
		if err := timed("crash", func() error {
			failTbl, lostTbl, err := experiments.Fig6bCrash(p)
			if err != nil {
				return err
			}
			emit(failTbl, lostTbl)
			return nil
		}); err != nil {
			return err
		}
	}

	if need("load") && !all { // opt-in: not part of -exp all
		if err := timed("load", func() error {
			tables, err := experiments.LoadBalance(p, *rebal)
			if err != nil {
				return err
			}
			if *loadOut == "" {
				emit(tables...)
				return nil
			}
			f, err := os.Create(*loadOut)
			if err != nil {
				return err
			}
			defer f.Close()
			for _, t := range tables {
				if *format == "csv" {
					fmt.Fprintf(f, "# %s\n%s\n", t.Title, t.CSV())
				} else {
					fmt.Fprintln(f, t.Text())
				}
			}
			fmt.Fprintf(os.Stderr, "[lormsim] load: %d tables written to %s\n", len(tables), *loadOut)
			return nil
		}); err != nil {
			return err
		}
	}

	if need("partition") && !all { // opt-in: not part of -exp all
		if err := timed("partition", func() error {
			tables, err := experiments.Partition(p)
			if err != nil {
				return err
			}
			if *partOut == "" {
				emit(tables...)
				return nil
			}
			f, err := os.Create(*partOut)
			if err != nil {
				return err
			}
			defer f.Close()
			for _, t := range tables {
				if *format == "csv" {
					fmt.Fprintf(f, "# %s\n%s\n", t.Title, t.CSV())
				} else {
					fmt.Fprintln(f, t.Text())
				}
			}
			fmt.Fprintf(os.Stderr, "[lormsim] partition: %d tables written to %s\n", len(tables), *partOut)
			return nil
		}); err != nil {
			return err
		}
	}

	if need("hotkey") && !all { // opt-in: not part of -exp all
		if err := timed("hotkey", func() error {
			factor, gini, err := experiments.HotKey(p)
			if err != nil {
				return err
			}
			if *hotOut == "" {
				emit(factor, gini)
				return nil
			}
			f, err := os.Create(*hotOut)
			if err != nil {
				return err
			}
			defer f.Close()
			for _, t := range []*stats.Table{factor, gini} {
				if *format == "csv" {
					fmt.Fprintf(f, "# %s\n%s\n", t.Title, t.CSV())
				} else {
					fmt.Fprintln(f, t.Text())
				}
			}
			fmt.Fprintf(os.Stderr, "[lormsim] hotkey: tables written to %s\n", *hotOut)
			return nil
		}); err != nil {
			return err
		}
	}

	if need("art") && !all { // opt-in: not part of -exp all
		if err := timed("art", func() error {
			tbl, err := experiments.ARTSweep(p)
			if err != nil {
				return err
			}
			if *artOut == "" {
				emit(tbl)
				return nil
			}
			f, err := os.Create(*artOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if *format == "csv" {
				fmt.Fprintf(f, "# %s\n%s\n", tbl.Title, tbl.CSV())
			} else {
				fmt.Fprintln(f, tbl.Text())
			}
			fmt.Fprintf(os.Stderr, "[lormsim] art: table written to %s\n", *artOut)
			return nil
		}); err != nil {
			return err
		}
	}

	if need("fig6a", "fig6b") {
		if err := timed("fig6", func() error {
			hops, visited, err := experiments.Fig6(p)
			if err != nil {
				return err
			}
			if all || want["fig6a"] {
				emit(hops)
			}
			if all || want["fig6b"] {
				emit(visited)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
