package main

import (
	"os"
	"strings"
	"testing"
)

// run the CLI end to end at the quick preset, capturing stdout through a
// temp file.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "lormsim-out-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunFig3aQuickText(t *testing.T) {
	out := runCLI(t, "-exp", "fig3a", "-preset", "quick")
	if !strings.Contains(out, "Figure 3(a)") || !strings.Contains(out, "analysis_gt_lorm") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunFig4CSV(t *testing.T) {
	out := runCLI(t, "-exp", "fig4a", "-preset", "quick", "-format", "csv")
	if !strings.Contains(out, "attrs,maan,lorm,mercury,sword") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few CSV lines: %d", len(lines))
	}
}

func TestRunOverrides(t *testing.T) {
	out := runCLI(t, "-exp", "fig5b", "-preset", "quick",
		"-n", "160", "-d", "5", "-m", "8", "-k", "20", "-range-queries", "10", "-seed", "5")
	if !strings.Contains(out, "n=160") {
		t.Fatalf("override not applied:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	f, _ := os.CreateTemp(t.TempDir(), "out")
	defer f.Close()
	if err := run([]string{"-preset", "warp9"}, f); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := run([]string{"-badflag"}, f); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTheoremsQuick(t *testing.T) {
	out := runCLI(t, "-exp", "theorems", "-preset", "quick")
	if !strings.Contains(out, "Theorems 4.1-4.10") {
		t.Fatalf("theorem table missing:\n%s", out)
	}
}
