package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lorm/internal/metrics"
	"lorm/internal/routing"
	"lorm/internal/tracing"
)

// run the CLI end to end at the quick preset, capturing stdout through a
// temp file.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "lormsim-out-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunFig3aQuickText(t *testing.T) {
	out := runCLI(t, "-exp", "fig3a", "-preset", "quick")
	if !strings.Contains(out, "Figure 3(a)") || !strings.Contains(out, "analysis_gt_lorm") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunFig4CSV(t *testing.T) {
	out := runCLI(t, "-exp", "fig4a", "-preset", "quick", "-format", "csv")
	if !strings.Contains(out, "attrs,lorm,mercury,sword,maan,art") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few CSV lines: %d", len(lines))
	}
}

func TestRunOverrides(t *testing.T) {
	out := runCLI(t, "-exp", "fig5b", "-preset", "quick",
		"-n", "160", "-d", "5", "-m", "8", "-k", "20", "-range-queries", "10", "-seed", "5")
	if !strings.Contains(out, "n=160") {
		t.Fatalf("override not applied:\n%s", out)
	}
}

// TestTraceConsistency runs fig4a with -trace and verifies, for every
// traced operation of every system, that the recorded hop path re-derives
// the reported cost: forwards (f/w/r steps) sum to hops, visits (v steps)
// to visited, and msgs = hops + visited.
func TestTraceConsistency(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.txt")
	runCLI(t, "-exp", "fig4a", "-preset", "quick", "-trace", tracePath)
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty trace")
	}
	systems := map[string]bool{}
	for _, line := range lines {
		tl, err := routing.ParseTraceLine(line)
		if err != nil {
			t.Fatalf("malformed trace line: %v: %q", err, line)
		}
		if tl.Op != routing.OpDiscover {
			t.Fatalf("fig4a trace carries non-discover op %q: %q", tl.Op, line)
		}
		systems[tl.System] = true
		if tl.Cost.Messages != tl.Cost.Hops+tl.Cost.Visited {
			t.Fatalf("msgs %d != hops %d + visited %d: %q",
				tl.Cost.Messages, tl.Cost.Hops, tl.Cost.Visited, line)
		}
		if got := routing.CostOfPath(tl.Path); got != tl.Cost {
			t.Fatalf("path re-derives %+v, header says %+v: %q", got, tl.Cost, line)
		}
	}
	for _, want := range []string{"lorm", "mercury", "sword", "maan", "art"} {
		if !systems[want] {
			t.Errorf("no trace lines from system %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	f, _ := os.CreateTemp(t.TempDir(), "out")
	defer f.Close()
	if err := run([]string{"-preset", "warp9"}, f); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := run([]string{"-badflag"}, f); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTheoremsQuick(t *testing.T) {
	out := runCLI(t, "-exp", "theorems", "-preset", "quick")
	if !strings.Contains(out, "Theorems 4.1-4.10") {
		t.Fatalf("theorem table missing:\n%s", out)
	}
}

// TestMetricsOut runs fig4a with -metrics-out and verifies the snapshot
// parses and carries discover ops for every registered system.
func TestMetricsOut(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "metrics.json")
	runCLI(t, "-exp", "fig4a", "-preset", "quick", "-metrics-out", mpath)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	ops, ok := snap.Family("lorm_ops_total")
	if !ok {
		t.Fatal("lorm_ops_total missing from snapshot")
	}
	if ops.Total() <= 0 {
		t.Fatal("no routing ops recorded")
	}
	bySystem := map[string]float64{}
	for _, m := range ops.Metrics {
		bySystem[m.Labels["system"]] += m.Value
	}
	for _, want := range []string{"lorm", "mercury", "sword", "maan", "art"} {
		if bySystem[want] == 0 {
			t.Errorf("no ops recorded for system %q", want)
		}
	}
}

// TestTraceSpansOut runs fig4a with -trace-spans at full sampling and
// verifies the span JSONL parses, covers every registered system, and keeps every
// step span parented under an op span of the same trace.
func TestTraceSpansOut(t *testing.T) {
	spath := filepath.Join(t.TempDir(), "spans.jsonl")
	runCLI(t, "-exp", "fig4a", "-preset", "quick", "-trace-spans", spath)
	f, err := os.Open(spath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := tracing.ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans written")
	}
	ops := map[uint64]tracing.Span{} // op span ID -> span
	systems := map[string]bool{}
	for _, sp := range spans {
		if sp.IsOp() {
			ops[sp.Span] = sp
			systems[sp.System] = true
		}
	}
	for _, want := range []string{"lorm", "mercury", "sword", "maan", "art"} {
		if !systems[want] {
			t.Errorf("no op spans from system %q", want)
		}
	}
	for _, sp := range spans {
		if sp.IsOp() {
			continue
		}
		parent, ok := ops[sp.Parent]
		if !ok {
			t.Fatalf("step span %016x has no op parent %016x", sp.Span, sp.Parent)
		}
		if parent.Trace != sp.Trace {
			t.Fatalf("step trace %016x != parent trace %016x", sp.Trace, parent.Trace)
		}
	}
}
