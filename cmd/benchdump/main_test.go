package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: lorm/internal/directory
BenchmarkDirMatch/100-8     18106612        61.48 ns/op       0 B/op       0 allocs/op
BenchmarkDirMatch/10k-8      5170892       229.6 ns/op        0 B/op       0 allocs/op
BenchmarkDirAdd-8             493651      8291 ns/op       6099 B/op       0 allocs/op
BenchmarkFigX-8                    3      1000 ns/op          4.5 lorm-hops
PASS
ok      lorm/internal/directory 18.351s
`
	results, err := parseBenchOutput(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	if results[0].Name != "BenchmarkDirMatch/100-8" || results[0].NsPerOp != 61.48 {
		t.Fatalf("first result wrong: %+v", results[0])
	}
	if results[2].BytesPerOp != 6099 || results[2].AllocsPerOp != 0 {
		t.Fatalf("memory columns wrong: %+v", results[2])
	}
	if results[3].Extra["lorm-hops"] != 4.5 {
		t.Fatalf("custom metric not captured: %+v", results[3])
	}
}

func TestCheckFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dd := &DirectoryDump{
		GeneratedBy: "benchdump",
		Benchmarks: []BenchResult{
			{Name: "BenchmarkDirMatch/100-8", Iterations: 1, NsPerOp: 61},
			{Name: "BenchmarkDirMatch/10k-8", Iterations: 1, NsPerOp: 230},
			{Name: "BenchmarkDirMatch/1M-8", Iterations: 1, NsPerOp: 11646},
			{Name: "BenchmarkDirMatchInterp/100-8", Iterations: 1, NsPerOp: 60},
			{Name: "BenchmarkDirMatchInterp/10k-8", Iterations: 1, NsPerOp: 200},
			{Name: "BenchmarkDirMatchInterp/1M-8", Iterations: 1, NsPerOp: 9000},
			{Name: "BenchmarkDirAdd-8", Iterations: 1, NsPerOp: 8291},
			{Name: "BenchmarkDirTakeRange-8", Iterations: 1, NsPerOp: 741162},
		},
	}
	fd := &FiguresDump{
		GeneratedBy: "benchdump",
		Preset:      "quick",
		Figures: []FigureResult{
			{Figure: "fig3a", Metrics: map[string]float64{"lorm-outlinks": 7}},
			{Figure: "fig3b", Metrics: map[string]float64{"lorm-avg-dir": 1}},
			{Figure: "fig4a", Metrics: map[string]float64{"lorm-hops-1attr": 3}},
			{Figure: "fig5a", Metrics: map[string]float64{"lorm-total-visited": 9}},
			{Figure: "fig6a", Metrics: map[string]float64{"lorm-churn-hops": 4}},
			{Figure: "load", Metrics: map[string]float64{"sword-load-factor": 25}},
		},
	}
	cb := validClusterBaseline()
	dj := filepath.Join(dir, "BENCH_directory.json")
	fj := filepath.Join(dir, "BENCH_figures.json")
	cj := filepath.Join(dir, "BENCH_cluster.json")
	aj := filepath.Join(dir, "results_art.txt")
	if err := writeJSON(dj, dd); err != nil {
		t.Fatal(err)
	}
	if err := writeJSON(fj, fd); err != nil {
		t.Fatal(err)
	}
	if err := writeJSON(cj, cb); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aj, []byte(validARTSweep), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkFiles(dj, fj, cj, aj); err != nil {
		t.Fatalf("round-trip check failed: %v", err)
	}

	// A truncated benchmark list must fail the check.
	dd.Benchmarks = dd.Benchmarks[:2]
	if err := writeJSON(dj, dd); err != nil {
		t.Fatal(err)
	}
	if err := checkFiles(dj, fj, cj, aj); err == nil {
		t.Fatal("check passed with missing benchmarks")
	}
}

// validARTSweep is a minimal results_art.txt in the lormsim text format
// that satisfies checkARTResults: sizes strictly increasing, every hop
// column positive, and the art column sub-logarithmic against the rest.
const validARTSweep = `== ART scaling: average hops per exact query vs network size ==
   analysis_chord = log2(n)/2, the Chord lookup reference
  n    lorm  mercury  sword   maan    art  analysis_chord
128   4.980    4.350  4.310  8.780  2.200           3.500
256   6.980    4.710  4.920  9.600  2.400               4
512  10.200    5.210  5.490  10.650 2.630           4.500
`

func TestCheckARTResultsRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) string {
		path := filepath.Join(dir, "results_art.txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if err := checkARTResults(write(validARTSweep)); err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	cases := []struct {
		name    string
		content string
	}{
		{"missing header", "== title ==\n1 2 3\n"},
		{"one row", "  n  lorm  mercury  sword  maan  art  analysis_chord\n128 4 4 4 8 2 3.5\n"},
		{"sizes not increasing", "  n  lorm  mercury  sword  maan  art  analysis_chord\n256 4 4 4 8 2 4\n128 5 5 5 9 2.2 3.5\n"},
		{"zero hop cell", "  n  lorm  mercury  sword  maan  art  analysis_chord\n128 4 4 4 8 0 3.5\n256 5 5 5 9 2.2 4\n"},
		{"art not sub-log", "  n  lorm  mercury  sword  maan  art  analysis_chord\n128 4 4 4 8 2 3.5\n256 5 5 5 9 6 4\n"},
		{"missing art column", "  n  lorm  mercury  sword  maan  analysis_chord\n128 4 4 4 8 3.5\n256 5 5 5 9 4\n"},
	}
	for _, tc := range cases {
		if err := checkARTResults(write(tc.content)); err == nil {
			t.Errorf("%s: checkARTResults accepted the file", tc.name)
		}
	}
}

// validClusterBaseline builds a clusterBaseline that passes checkCluster.
func validClusterBaseline() *clusterBaseline {
	cb := &clusterBaseline{Ops: map[string]struct {
		Count    int     `json:"count"`
		Failures int     `json:"failures"`
		P50us    float64 `json:"p50_us"`
		P99us    float64 `json:"p99_us"`
		P999us   float64 `json:"p999_us"`
	}{
		"announce": {Count: 100, P50us: 1000, P99us: 2000, P999us: 3000},
		"query":    {Count: 200, P50us: 1500, P99us: 2500, P999us: 3500},
	}}
	cb.Params.Nodes = 4
	cb.Params.Clients = 8
	cb.Comparison = &struct {
		Callers int     `json:"callers"`
		Speedup float64 `json:"speedup"`
	}{Callers: 8, Speedup: 4.5}
	return cb
}

func TestCheckClusterRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(mutate func(*clusterBaseline)) string {
		cb := validClusterBaseline()
		mutate(cb)
		path := filepath.Join(dir, "BENCH_cluster.json")
		if err := writeJSON(path, cb); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if err := checkCluster(write(func(cb *clusterBaseline) {})); err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*clusterBaseline)
	}{
		{"query failures", func(cb *clusterBaseline) {
			s := cb.Ops["query"]
			s.Failures = 3
			cb.Ops["query"] = s
		}},
		{"missing op", func(cb *clusterBaseline) { delete(cb.Ops, "announce") }},
		{"unordered quantiles", func(cb *clusterBaseline) {
			s := cb.Ops["announce"]
			s.P99us = s.P50us / 2
			cb.Ops["announce"] = s
		}},
		{"speedup below 2x", func(cb *clusterBaseline) { cb.Comparison.Speedup = 1.4 }},
		{"missing comparison", func(cb *clusterBaseline) { cb.Comparison = nil }},
		{"zero nodes", func(cb *clusterBaseline) { cb.Params.Nodes = 0 }},
	}
	for _, tc := range cases {
		if err := checkCluster(write(tc.mutate)); err == nil {
			t.Errorf("%s: checkCluster accepted the document", tc.name)
		}
	}
}
