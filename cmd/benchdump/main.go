// Command benchdump makes the repository's performance trajectory
// machine-readable. It produces two JSON baselines at the repo root:
//
//   - BENCH_directory.json — the directory-index microbenchmarks
//     (ns/op, B/op, allocs/op per benchmark), gathered by running
//     `go test -run ^$ -bench <pattern> -benchmem` and parsing its output;
//   - BENCH_figures.json — headline metrics of every evaluation figure at
//     the Quick preset plus wall-clock generation time, gathered in-process.
//
// A third baseline, BENCH_cluster.json, is written by cmd/lormcluster (a
// real many-process run, not something benchdump can regenerate in-process);
// `benchdump -check` validates it alongside the other two, including the
// ≥2x pipelined-vs-serialized client speedup claim. It also re-parses the
// results_art.txt sweep (written by `lormsim -art-out`) and re-asserts the
// ART headline: hop columns present for every system, sizes strictly
// increasing, and ART sub-logarithmic against every O(log n) curve.
//
// The figure metric values are deterministic (fixed preset seed), so
// regenerating BENCH_figures.json changes only the timing fields; the
// microbenchmark timings vary with the machine. CI regenerates both files
// and runs `benchdump -check` so the tooling cannot silently rot.
//
// Usage:
//
//	benchdump                      # write both baselines to .
//	benchdump -benchtime 1x        # fast smoke (CI)
//	benchdump -skip-figures        # microbenchmarks only
//	benchdump -check               # validate existing baselines parse
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lorm/internal/experiments"
	"lorm/internal/stats"
)

// BenchResult is one parsed `go test -bench` line.
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"` // custom b.ReportMetric units
}

// DirectoryDump is the BENCH_directory.json document.
type DirectoryDump struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	Package     string        `json:"package"`
	BenchTime   string        `json:"benchtime"`
	Benchmarks  []BenchResult `json:"benchmarks"`
}

// FigureResult is one evaluation figure's headline metrics.
type FigureResult struct {
	Figure  string             `json:"figure"`
	Millis  float64            `json:"ms"`
	Metrics map[string]float64 `json:"metrics"`
}

// FiguresDump is the BENCH_figures.json document.
type FiguresDump struct {
	GeneratedBy string         `json:"generated_by"`
	Preset      string         `json:"preset"`
	Figures     []FigureResult `json:"figures"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdump", flag.ContinueOnError)
	var (
		dir         = fs.String("dir", ".", "directory to write/read the BENCH_*.json files")
		pattern     = fs.String("bench", "Dir", "benchmark name pattern passed to go test -bench")
		pkg         = fs.String("pkg", "./internal/directory/", "package holding the microbenchmarks")
		benchtime   = fs.String("benchtime", "1s", "go test -benchtime value (use 1x for a smoke run)")
		check       = fs.Bool("check", false, "validate the existing baseline files instead of regenerating")
		skipFigures = fs.Bool("skip-figures", false, "skip BENCH_figures.json (microbenchmarks only)")
		skipBench   = fs.Bool("skip-bench", false, "skip BENCH_directory.json (figures only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dirJSON := filepath.Join(*dir, "BENCH_directory.json")
	figJSON := filepath.Join(*dir, "BENCH_figures.json")
	clusterJSON := filepath.Join(*dir, "BENCH_cluster.json")
	artTXT := filepath.Join(*dir, "results_art.txt")

	if *check {
		return checkFiles(dirJSON, figJSON, clusterJSON, artTXT)
	}

	if !*skipBench {
		dump, err := runBench(*pkg, *pattern, *benchtime)
		if err != nil {
			return err
		}
		if err := writeJSON(dirJSON, dump); err != nil {
			return err
		}
		fmt.Printf("benchdump: %s (%d benchmarks)\n", dirJSON, len(dump.Benchmarks))
	}
	if !*skipFigures {
		dump, err := runFigures()
		if err != nil {
			return err
		}
		if err := writeJSON(figJSON, dump); err != nil {
			return err
		}
		fmt.Printf("benchdump: %s (%d figures)\n", figJSON, len(dump.Figures))
	}
	return nil
}

// runBench shells out to go test and parses the benchmark lines.
func runBench(pkg, pattern, benchtime string) (*DirectoryDump, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime, pkg)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, out.String())
	}
	results, err := parseBenchOutput(out.String())
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("go test -bench %q produced no benchmark lines", pattern)
	}
	return &DirectoryDump{
		GeneratedBy: "benchdump",
		GoVersion:   runtime.Version(),
		Package:     pkg,
		BenchTime:   benchtime,
		Benchmarks:  results,
	}, nil
}

// parseBenchOutput extracts BenchmarkXxx result lines of the form
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   0 allocs/op   3.2 custom-unit
//
// tolerating any mix of standard and custom (b.ReportMetric) units.
func parseBenchOutput(s string) ([]BenchResult, error) {
	var results []BenchResult
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX ... FAIL" shapes
		}
		r := BenchResult{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[unit] = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// runFigures regenerates every evaluation figure at the Quick preset and
// records headline metrics (the same cells the figure-level benchmarks in
// bench_test.go report) plus wall-clock time.
func runFigures() (*FiguresDump, error) {
	p := experiments.Quick()
	dump := &FiguresDump{GeneratedBy: "benchdump", Preset: "quick"}

	start := time.Now()
	fig3a, err := experiments.Fig3a(p)
	if err != nil {
		return nil, fmt.Errorf("fig3a: %w", err)
	}
	last3a := len(fig3a.Rows) - 1
	dump.Figures = append(dump.Figures, FigureResult{
		Figure: "fig3a",
		Millis: float64(time.Since(start).Microseconds()) / 1000,
		Metrics: map[string]float64{
			"mercury-outlinks": fig3a.Column("mercury")[last3a],
			"lorm-outlinks":    fig3a.Column("lorm")[last3a],
		},
	})

	envStart := time.Now()
	env, err := experiments.NewEnv(p)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}
	envMillis := float64(time.Since(envStart).Microseconds()) / 1000
	dump.Figures = append(dump.Figures, FigureResult{
		Figure:  "env-build",
		Millis:  envMillis,
		Metrics: map[string]float64{"nodes": float64(p.N), "pieces": float64(p.M * p.K)},
	})

	start = time.Now()
	b, c, d, e := experiments.Fig3bcd(env)
	ms3 := float64(time.Since(start).Microseconds()) / 1000
	dump.Figures = append(dump.Figures,
		FigureResult{Figure: "fig3b", Millis: ms3, Metrics: map[string]float64{
			"maan-avg-dir": b.Column("maan")[1], "lorm-avg-dir": b.Column("lorm")[1]}},
		FigureResult{Figure: "fig3c", Millis: 0, Metrics: map[string]float64{
			"sword-p99-dir": c.Column("sword")[2], "lorm-p99-dir": c.Column("lorm")[2]}},
		FigureResult{Figure: "fig3d", Millis: 0, Metrics: map[string]float64{
			"mercury-p99-dir": d.Column("mercury")[2], "lorm-p99-dir": d.Column("lorm")[2]}},
		FigureResult{Figure: "fig3e", Millis: 0, Metrics: map[string]float64{
			"art-avg-dir": e.Column("art")[1], "lorm-avg-dir": e.Column("lorm")[1]}},
	)

	start = time.Now()
	avg4, total4, err := experiments.Fig4(env)
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	ms4 := float64(time.Since(start).Microseconds()) / 1000
	last4 := len(total4.Rows) - 1
	dump.Figures = append(dump.Figures,
		FigureResult{Figure: "fig4a", Millis: ms4, Metrics: map[string]float64{
			"maan-hops-1attr": avg4.Column("maan")[0], "lorm-hops-1attr": avg4.Column("lorm")[0]}},
		FigureResult{Figure: "fig4b", Millis: 0, Metrics: map[string]float64{
			"maan-total-hops": total4.Column("maan")[last4], "lorm-total-hops": total4.Column("lorm")[last4]}},
	)

	start = time.Now()
	total5, avg5, err := experiments.Fig5(env)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	ms5 := float64(time.Since(start).Microseconds()) / 1000
	dump.Figures = append(dump.Figures,
		FigureResult{Figure: "fig5a", Millis: ms5, Metrics: map[string]float64{
			"mercury-total-visited": total5.Column("mercury")[0], "lorm-total-visited": total5.Column("lorm")[0]}},
		FigureResult{Figure: "fig5b", Millis: 0, Metrics: map[string]float64{
			"sword-visited-1attr": avg5.Column("sword")[0], "lorm-visited-1attr": avg5.Column("lorm")[0]}},
	)

	start = time.Now()
	hops6, visited6, err := experiments.Fig6(p)
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	ms6 := float64(time.Since(start).Microseconds()) / 1000
	dump.Figures = append(dump.Figures,
		FigureResult{Figure: "fig6a", Millis: ms6, Metrics: map[string]float64{
			"lorm-churn-hops": hops6.Column("lorm")[0], "failures": hops6.Column("failures")[0]}},
		FigureResult{Figure: "fig6b", Millis: 0, Metrics: map[string]float64{
			"lorm-churn-visited": visited6.Column("lorm")[0], "mercury-churn-visited": visited6.Column("mercury")[0]}},
	)

	start = time.Now()
	loadTables, err := experiments.LoadBalance(p, true)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	msLoad := float64(time.Since(start).Microseconds()) / 1000
	factor := loadTables[0]
	dump.Figures = append(dump.Figures, FigureResult{
		Figure: "load",
		Millis: msLoad,
		Metrics: map[string]float64{
			"sword-load-factor":      factor.Column("sword")[0],
			"lorm-load-factor":       factor.Column("lorm")[0],
			"lorm-load-factor-rebal": factor.Column("lorm_rebal")[0],
		},
	})
	return dump, nil
}

// clusterBaseline mirrors the BENCH_cluster.json layout cmd/lormcluster
// emits; only the fields the checker validates are declared, so the two
// commands can evolve their documents independently.
type clusterBaseline struct {
	Params struct {
		Nodes   int `json:"Nodes"`
		Clients int `json:"Clients"`
	} `json:"params"`
	Ops map[string]struct {
		Count    int     `json:"count"`
		Failures int     `json:"failures"`
		P50us    float64 `json:"p50_us"`
		P99us    float64 `json:"p99_us"`
		P999us   float64 `json:"p999_us"`
	} `json:"ops"`
	Comparison *struct {
		Callers int     `json:"callers"`
		Speedup float64 `json:"speedup"`
	} `json:"pipeline_comparison"`
}

// checkCluster validates one BENCH_cluster.json document: both op classes
// measured with zero failures and ordered latency quantiles, and the
// pipelined client at least 2x faster than the serialized window=1 client
// — the headline claim of the transport work, so a regression fails CI.
func checkCluster(path string) error {
	var cb clusterBaseline
	if err := readJSON(path, &cb); err != nil {
		return err
	}
	if cb.Params.Nodes < 1 || cb.Params.Clients < 1 {
		return fmt.Errorf("%s: implausible params %+v", path, cb.Params)
	}
	for _, op := range []string{"announce", "query"} {
		s, ok := cb.Ops[op]
		if !ok {
			return fmt.Errorf("%s: op %q missing", path, op)
		}
		if s.Count <= 0 {
			return fmt.Errorf("%s: op %q recorded no operations", path, op)
		}
		if s.Failures != 0 {
			return fmt.Errorf("%s: op %q has %d failures", path, op, s.Failures)
		}
		if !(s.P50us > 0 && s.P50us <= s.P99us && s.P99us <= s.P999us) {
			return fmt.Errorf("%s: op %q quantiles not ordered: p50=%g p99=%g p999=%g",
				path, op, s.P50us, s.P99us, s.P999us)
		}
	}
	if cb.Comparison == nil {
		return fmt.Errorf("%s: pipeline_comparison missing", path)
	}
	if cb.Comparison.Speedup < 2 {
		return fmt.Errorf("%s: pipelined speedup %.2fx below the required 2x at %d callers",
			path, cb.Comparison.Speedup, cb.Comparison.Callers)
	}
	return nil
}

// parseResultsTable reconstructs a stats.Table from the text format
// `lormsim` writes: a `== title ==` line, indented notes, then a
// whitespace-aligned header row followed by numeric rows. The header is
// recognized as the first line whose leading field is a column name rather
// than a number; everything before it is title/notes.
func parseResultsTable(path string) (*stats.Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tbl *stats.Table
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "==") {
			continue
		}
		if tbl == nil {
			if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
				if fields[0] == "n" || fields[0] == "attrs" || fields[0] == "rate" || fields[0] == "stat" {
					tbl = stats.NewTable(path, fields...)
				}
				continue // a note line, or the header we just consumed
			}
			return nil, fmt.Errorf("%s: data row %q before any header", path, sc.Text())
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad cell %q in row %q", path, f, sc.Text())
			}
			row[i] = v
		}
		if len(row) != len(tbl.Columns) {
			return nil, fmt.Errorf("%s: row %q has %d cells, header has %d columns",
				path, sc.Text(), len(row), len(tbl.Columns))
		}
		tbl.AddRow(row...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tbl == nil {
		return nil, fmt.Errorf("%s: no table header found", path)
	}
	return tbl, nil
}

// checkARTResults re-validates a written results_art.txt sweep: every hop
// column present and positive, network sizes strictly increasing, and the
// ART sub-logarithmic assertion still holding on the file as written — so
// a stale or hand-edited sweep cannot claim the headline result.
func checkARTResults(path string) error {
	tbl, err := parseResultsTable(path)
	if err != nil {
		return err
	}
	sizes := tbl.Column("n")
	if len(sizes) < 2 {
		return fmt.Errorf("%s: sweep has %d rows, need at least 2", path, len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			return fmt.Errorf("%s: network sizes not strictly increasing at row %d (%.0f after %.0f)",
				path, i, sizes[i], sizes[i-1])
		}
	}
	for _, col := range tbl.Columns[1:] {
		vals := tbl.Column(col)
		if len(vals) != len(sizes) {
			return fmt.Errorf("%s: column %s missing", path, col)
		}
		for i, v := range vals {
			if v <= 0 {
				return fmt.Errorf("%s: column %s row %d is %.3f, want > 0", path, col, i, v)
			}
		}
	}
	if err := experiments.ARTSubLogAssert(tbl); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// checkFiles validates that the baselines exist, parse, and are non-empty
// — the CI guard against the perf tooling rotting silently.
func checkFiles(dirJSON, figJSON, clusterJSON, artTXT string) error {
	var dd DirectoryDump
	if err := readJSON(dirJSON, &dd); err != nil {
		return err
	}
	if len(dd.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", dirJSON)
	}
	names := make(map[string]bool, len(dd.Benchmarks))
	for _, b := range dd.Benchmarks {
		if b.Name == "" || b.NsPerOp <= 0 {
			return fmt.Errorf("%s: malformed benchmark entry %+v", dirJSON, b)
		}
		// Strip the -<GOMAXPROCS> suffix so checks are machine-independent.
		names[strings.Split(b.Name, "-")[0]] = true
	}
	for _, want := range []string{
		"BenchmarkDirMatch/100", "BenchmarkDirMatch/10k", "BenchmarkDirMatch/1M",
		"BenchmarkDirMatchInterp/100", "BenchmarkDirMatchInterp/10k", "BenchmarkDirMatchInterp/1M",
		"BenchmarkDirAdd", "BenchmarkDirTakeRange",
	} {
		if !names[want] {
			return fmt.Errorf("%s: benchmark %s missing", dirJSON, want)
		}
	}

	var fd FiguresDump
	if err := readJSON(figJSON, &fd); err != nil {
		return err
	}
	if len(fd.Figures) == 0 {
		return fmt.Errorf("%s: no figures recorded", figJSON)
	}
	figs := make(map[string]bool, len(fd.Figures))
	for _, f := range fd.Figures {
		if len(f.Metrics) == 0 {
			return fmt.Errorf("%s: figure %s has no metrics", figJSON, f.Figure)
		}
		figs[f.Figure] = true
	}
	for _, want := range []string{"fig3a", "fig3b", "fig4a", "fig5a", "fig6a", "load"} {
		if !figs[want] {
			return fmt.Errorf("%s: figure %s missing", figJSON, want)
		}
	}
	if err := checkCluster(clusterJSON); err != nil {
		return err
	}
	if err := checkARTResults(artTXT); err != nil {
		return err
	}

	fmt.Printf("benchdump: %s (%d benchmarks), %s (%d figures), %s and %s parse\n",
		dirJSON, len(dd.Benchmarks), figJSON, len(fd.Figures), clusterJSON, artTXT)
	return nil
}

func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readJSON(path string, v interface{}) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s does not parse: %w", path, err)
	}
	return nil
}
