// Command lormnode runs a grid resource-discovery gateway over real TCP
// and ships the matching client operations.
//
// A gateway hosts a discovery deployment (LORM by default; Mercury, SWORD
// and MAAN are available for comparison) and serves the wire protocol of
// internal/transport. Providers announce resources and requesters resolve
// multi-attribute range queries remotely:
//
//	lormnode serve -listen 127.0.0.1:7400 -system lorm -d 8 -nodes 512 \
//	        -attrs cpu:100:3200,mem:0:8192,disk:1:2000
//	lormnode register -gateway 127.0.0.1:7400 -attr cpu -value 2000 -owner site-a
//	lormnode query    -gateway 127.0.0.1:7400 -q "cpu:1500:3200,mem:2048:8192"
//	lormnode stats    -gateway 127.0.0.1:7400
//	lormnode addnode  -gateway 127.0.0.1:7400 -node newpeer-01
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lorm/internal/art"
	"lorm/internal/core"
	"lorm/internal/discovery"
	"lorm/internal/emulate"
	"lorm/internal/maan"
	"lorm/internal/mercury"
	"lorm/internal/metrics"
	"lorm/internal/resource"
	"lorm/internal/routing"
	"lorm/internal/sword"
	"lorm/internal/tracing"
	"lorm/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "register":
		err = cmdRegister(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "addnode":
		err = cmdMembership(os.Args[2:], true)
	case "removenode":
		err = cmdMembership(os.Args[2:], false)
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lormnode:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lormnode <serve|register|query|stats|addnode|removenode> [flags]

serve      run a gateway:      -listen ADDR -system lorm|mercury|sword|maan -d N -nodes N -attrs SPEC
                               [-metrics-listen ADDR]  HTTP: /metrics (Prometheus; ?format=json),
                                                       /healthz, /debug/pprof/*
register   announce a resource: -gateway ADDR -attr NAME -value V -owner ADDR
query      resolve a query:     -gateway ADDR -q "attr:lo:hi,attr:lo:hi" [-requester NAME]
stats      deployment summary:  -gateway ADDR
addnode    join a node:         -gateway ADDR -node NAME
removenode depart a node:       -gateway ADDR -node NAME

attribute spec: name:min:max[,name:min:max...]`)
}

// parseAttrs parses "cpu:100:3200,mem:0:8192" into a schema.
func parseAttrs(spec string) (*resource.Schema, error) {
	var attrs []resource.Attribute
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("attribute spec %q: want name:min:max", part)
		}
		min, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("attribute %s: bad min: %w", fields[0], err)
		}
		max, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("attribute %s: bad max: %w", fields[0], err)
		}
		attrs = append(attrs, resource.Attribute{Name: fields[0], Min: min, Max: max})
	}
	return resource.NewSchema(attrs...)
}

// parseQuery parses "cpu:1500:3200,mem:4096:4096" into sub-queries; a
// two-field form "cpu:1500" is an exact query.
func parseQuery(spec string) ([]resource.SubQuery, error) {
	var subs []resource.SubQuery
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("query spec %q: want attr:value or attr:lo:hi", part)
		}
		lo, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("query %s: bad bound: %w", fields[0], err)
		}
		hi := lo
		if len(fields) == 3 {
			hi, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("query %s: bad bound: %w", fields[0], err)
			}
		}
		if lo > hi {
			return nil, fmt.Errorf("query %s: inverted bounds %g > %g", fields[0], lo, hi)
		}
		subs = append(subs, resource.SubQuery{Attr: fields[0], Low: lo, High: hi})
	}
	return subs, nil
}

// fitDimension picks the smallest Cycloid dimension whose capacity d·2^d
// leaves headroom over the peer count; running far below capacity
// degenerates the cube-connected-cycles structure.
func fitDimension(nodes int) int {
	for d := 2; d <= 20; d++ {
		if d*(1<<uint(d)) >= nodes*2 {
			return d
		}
	}
	return 20
}

func buildSystem(name string, d int, bits uint, schema *resource.Schema, nodes int, logger *slog.Logger) (discovery.System, error) {
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("peer-%04d", i)
	}
	switch name {
	case "lorm":
		sys, err := core.New(core.Config{D: d, Schema: schema, Logger: logger})
		if err != nil {
			return nil, err
		}
		return sys, sys.AddNodes(addrs)
	case "mercury":
		sys, err := mercury.New(mercury.Config{Bits: bits, Schema: schema, Logger: logger})
		if err != nil {
			return nil, err
		}
		return sys, sys.AddNodes(addrs)
	case "sword":
		sys, err := sword.New(sword.Config{Bits: bits, Schema: schema, Logger: logger})
		if err != nil {
			return nil, err
		}
		return sys, sys.AddNodes(addrs)
	case "maan":
		sys, err := maan.New(maan.Config{Bits: bits, Schema: schema, Logger: logger})
		if err != nil {
			return nil, err
		}
		return sys, sys.AddNodes(addrs)
	case "art":
		sys, err := art.New(art.Config{Bits: bits, Schema: schema, Logger: logger})
		if err != nil {
			return nil, err
		}
		return sys, sys.AddNodes(addrs)
	}
	return nil, fmt.Errorf("unknown system %q", name)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7400", "TCP listen address")
	system := fs.String("system", "lorm", "discovery system: lorm, mercury, sword, maan, art")
	d := fs.Int("d", 0, "Cycloid dimension (lorm); 0 auto-sizes to the peer count")
	bits := fs.Uint("bits", 20, "Chord identifier bits (mercury/sword/maan)")
	nodes := fs.Int("nodes", 256, "number of simulated peers in the deployment")
	attrs := fs.String("attrs", "cpu:100:3200,mem:0:8192,disk:1:2000", "attribute schema")
	mlisten := fs.String("metrics-listen", "", "serve /metrics, /healthz, /trace and /debug/pprof on this HTTP address")
	addrFile := fs.String("addr-file", "", "write the bound gateway address to this file once listening (for port-0 spawners like lormcluster)")
	maddrFile := fs.String("metrics-addr-file", "", "write the bound observability HTTP address to this file once listening")
	hopLatency := fs.Duration("hop-latency", 0, "emulate this much wide-area delay per overlay message (0 disables)")
	logJSON := fs.Bool("log-json", false, "emit logs as structured JSON instead of text")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	sample := fs.Float64("trace-sample", 0, "head-sampling probability for distributed tracing (0 disables, 1 samples everything)")
	slowMS := fs.Float64("slow-ms", 0, "dump sampled operations at least this many milliseconds long to the log (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := buildLogger(os.Stderr, *logJSON, *logLevel)
	if err != nil {
		return err
	}
	schema, err := parseAttrs(*attrs)
	if err != nil {
		return err
	}
	if *d == 0 {
		*d = fitDimension(*nodes)
	}
	sys, err := buildSystem(*system, *d, *bits, schema, *nodes, logger)
	if err != nil {
		return err
	}
	// The tracer is always attached (so /trace and the tracing counter
	// families exist); the sampling rate decides whether it records spans.
	tracer := tracing.New(tracing.Config{
		Seed:          time.Now().UnixNano(),
		SampleRate:    *sample,
		SlowThreshold: time.Duration(*slowMS * float64(time.Millisecond)),
		SlowLog:       os.Stderr,
	})
	if inst, ok := sys.(routing.Instrumented); ok {
		if f := inst.RoutingFabric(); f != nil {
			f.Observe(tracer)
		}
	}
	// Wide-area emulation wraps the system after tracer attachment so spans
	// keep observing the raw fabric; the served verbs pay the per-message
	// delay a real grid deployment would.
	served := emulate.WithHopLatency(sys, *hopLatency)
	srv, err := transport.NewServer(served, *listen, logger)
	if err != nil {
		return err
	}
	logger.Info("serving", "system", sys.Name(), "peers", sys.NodeCount(),
		"attributes", schema.Len(), "addr", srv.Addr(), "trace_sample", *sample,
		"hop_latency", *hopLatency)
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, srv.Addr()); err != nil {
			srv.Close()
			return err
		}
	}
	if *mlisten != "" {
		msrv, maddr, err := startMetricsServer(*mlisten, tracer)
		if err != nil {
			srv.Close()
			return err
		}
		defer msrv.Close()
		logger.Info("observability endpoint up", "metrics", "http://"+maddr+"/metrics", "trace", "http://"+maddr+"/trace")
		if *maddrFile != "" {
			if err := writeAddrFile(*maddrFile, maddr); err != nil {
				srv.Close()
				return err
			}
		}
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	return srv.Close()
}

// writeAddrFile publishes a bound address for a spawning process: written
// to a temp file first and renamed into place so a watcher never reads a
// partial address.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// buildLogger assembles the serve logger: leveled, structured, text or JSON
// on w — the single handler every component (transport server, slow-op
// dumps' neighbor lines, membership events) logs through.
func buildLogger(w *os.File, asJSON bool, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if asJSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h), nil
}

// startMetricsServer binds the observability HTTP endpoint: the process
// metrics registry (Prometheus text, or JSON via ?format=json), a liveness
// probe, the collected trace spans as JSONL (the cmd/lormtrace input
// format), and the runtime profiler. Returns the server and the bound
// address (addr may carry port 0).
func startMetricsServer(addr string, tracer *tracing.Tracer) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Default().Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		tracer.Collector().WriteJSONL(w)
	})
	// Mount pprof explicitly: the side-effect registration in net/http/pprof
	// targets http.DefaultServeMux, which this server does not use.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

func dial(fs *flag.FlagSet) (*transport.Client, *string) {
	gateway := fs.String("gateway", "127.0.0.1:7400", "gateway address")
	return nil, gateway
}

func cmdRegister(args []string) error {
	fs := flag.NewFlagSet("register", flag.ContinueOnError)
	_, gateway := dial(fs)
	attr := fs.String("attr", "", "attribute name")
	value := fs.Float64("value", 0, "attribute value")
	owner := fs.String("owner", "", "owner address to advertise")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *attr == "" || *owner == "" {
		return fmt.Errorf("register needs -attr and -owner")
	}
	cli, err := transport.Dial(*gateway, 3*time.Second)
	if err != nil {
		return err
	}
	defer cli.Close()
	cost, err := cli.Register(resource.Info{Attr: *attr, Value: *value, Owner: *owner})
	if err != nil {
		return err
	}
	fmt.Printf("registered <%s, %g, %s> (%s)\n", *attr, *value, *owner, cost)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	_, gateway := dial(fs)
	q := fs.String("q", "", "query spec: attr:lo:hi[,attr:lo:hi...]")
	requester := fs.String("requester", "cli", "requester identity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *q == "" {
		return fmt.Errorf("query needs -q")
	}
	subs, err := parseQuery(*q)
	if err != nil {
		return err
	}
	cli, err := transport.Dial(*gateway, 3*time.Second)
	if err != nil {
		return err
	}
	defer cli.Close()
	owners, matches, cost, err := cli.Discover(subs, *requester)
	if err != nil {
		return err
	}
	fmt.Printf("query cost: %s\n", cost)
	fmt.Printf("matching pieces: %d\n", len(matches))
	if len(owners) == 0 {
		fmt.Println("no owner satisfies every sub-query")
		return nil
	}
	fmt.Println("owners satisfying all sub-queries:")
	for _, o := range owners {
		fmt.Printf("  %s\n", o)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	_, gateway := dial(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cli, err := transport.Dial(*gateway, 3*time.Second)
	if err != nil {
		return err
	}
	defer cli.Close()
	st, err := cli.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("system: %s\nnodes: %d\nattributes: %d\npieces stored: %d\navg directory: %.2f\nmax directory: %d\n",
		st.System, st.Nodes, st.Attributes, st.TotalPieces, st.AvgDir, st.MaxDir)
	if st.Metrics != nil {
		fmt.Printf("routing ops observed: %d\n", st.Metrics.TotalOps)
		for _, sm := range st.Metrics.Systems {
			fmt.Printf("  %-8s ops: %-6d p50 hops: %-5.1f p99 hops: %.1f\n",
				sm.System, sm.Ops, sm.P50Hops, sm.P99Hops)
		}
		fmt.Printf("lookup detours: %d\nquery failures: %d\ncrashes injected: %d\nentries lost to crashes: %d\n",
			st.Metrics.LookupDetours, st.Metrics.QueryFailures, st.Metrics.Crashes, st.Metrics.LostEntries)
		fmt.Printf("directory adds: %d\ndirectory matches: %d\ndirectory entries handed over: %d\n",
			st.Metrics.DirAdds, st.Metrics.DirMatches, st.Metrics.DirHandovers)
	}
	return nil
}

func cmdMembership(args []string, add bool) error {
	name := "removenode"
	if add {
		name = "addnode"
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	_, gateway := dial(fs)
	node := fs.String("node", "", "peer name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node == "" {
		return fmt.Errorf("%s needs -node", name)
	}
	cli, err := transport.Dial(*gateway, 3*time.Second)
	if err != nil {
		return err
	}
	defer cli.Close()
	if add {
		if err := cli.AddNode(*node); err != nil {
			return err
		}
		fmt.Printf("node %s joined\n", *node)
		return nil
	}
	if err := cli.RemoveNode(*node); err != nil {
		return err
	}
	fmt.Printf("node %s departed gracefully\n", *node)
	return nil
}
