package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"lorm/internal/metrics"
	"lorm/internal/resource"
	"lorm/internal/routing"
	"lorm/internal/tracing"
	"lorm/internal/transport"
)

func TestParseAttrs(t *testing.T) {
	s, err := parseAttrs("cpu:100:3200,mem:0:8192")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	a, ok := s.Lookup("mem")
	if !ok || a.Min != 0 || a.Max != 8192 {
		t.Fatalf("mem = %+v, %v", a, ok)
	}
	for _, bad := range []string{
		"",                // empty
		"cpu",             // missing bounds
		"cpu:1",           // missing max
		"cpu:x:100",       // bad min
		"cpu:1:y",         // bad max
		"cpu:100:1",       // inverted
		"cpu:1:2,cpu:1:2", // duplicate
	} {
		if _, err := parseAttrs(bad); err == nil {
			t.Errorf("parseAttrs(%q) accepted", bad)
		}
	}
}

func TestParseQuery(t *testing.T) {
	subs, err := parseQuery("cpu:1500:3200,mem:4096")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("subs = %v", subs)
	}
	if !subs[0].IsRange() || subs[0].Low != 1500 || subs[0].High != 3200 {
		t.Fatalf("range sub = %+v", subs[0])
	}
	if subs[1].IsRange() || subs[1].Low != 4096 {
		t.Fatalf("exact sub = %+v", subs[1])
	}
	for _, bad := range []string{"", "cpu", "cpu:a", "cpu:1:2:3", "cpu:1:b"} {
		if _, err := parseQuery(bad); err == nil {
			t.Errorf("parseQuery(%q) accepted", bad)
		}
	}
}

func TestFitDimension(t *testing.T) {
	cases := map[int]int{
		1:    2, // capacity 8 ≥ 2
		4:    2, // 8 ≥ 8
		50:   5, // 5·32 = 160 ≥ 100
		256:  7, // 7·128 = 896 ≥ 512 (6·64 = 384 is too small)
		2048: 9, // 9·512 = 4608 ≥ 4096
	}
	for nodes, want := range cases {
		if got := fitDimension(nodes); got != want {
			t.Errorf("fitDimension(%d) = %d, want %d", nodes, got, want)
		}
	}
	// Always leaves 2× headroom (within the d ≤ 20 cap).
	for _, nodes := range []int{1, 10, 100, 1000, 10000} {
		d := fitDimension(nodes)
		if cap := d * (1 << uint(d)); cap < 2*nodes {
			t.Errorf("fitDimension(%d) = %d with capacity %d < 2n", nodes, d, cap)
		}
	}
}

func TestBuildSystemVariants(t *testing.T) {
	schema, err := parseAttrs("cpu:100:3200")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lorm", "mercury", "sword", "maan", "art"} {
		sys, err := buildSystem(name, 5, 16, schema, 16, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sys.Name() != name {
			t.Fatalf("built %q, want %q", sys.Name(), name)
		}
		if sys.NodeCount() != 16 {
			t.Fatalf("%s NodeCount = %d", name, sys.NodeCount())
		}
	}
	if _, err := buildSystem("kazaa", 5, 16, schema, 4, nil); err == nil {
		t.Fatal("unknown system accepted")
	}
}

// FuzzParseQuery: arbitrary query specs must never panic, only error.
func FuzzParseQuery(f *testing.F) {
	f.Add("cpu:1500:3200,mem:4096")
	f.Add("::::")
	f.Add("")
	f.Add("a:1")
	f.Add("a:2:1") // inverted bounds must be rejected
	f.Fuzz(func(t *testing.T, spec string) {
		subs, err := parseQuery(spec)
		if err == nil && len(subs) == 0 {
			t.Fatalf("parseQuery(%q) returned no subs and no error", spec)
		}
		for _, s := range subs {
			if err == nil && s.Low > s.High {
				t.Fatalf("parseQuery(%q) produced inverted bounds %+v", spec, s)
			}
		}
	})
}

// TestMetricsEndpoint boots a gateway plus the observability HTTP server
// and scrapes it the way an operator would with curl: /metrics must be
// valid Prometheus text carrying series for all four systems, /healthz
// must answer 200, and pprof must be mounted.
func TestMetricsEndpoint(t *testing.T) {
	schema, err := parseAttrs("cpu:100:3200,mem:0:8192")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := buildSystem("lorm", 5, 16, schema, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	tracer := tracing.New(tracing.Config{SampleRate: 1, Seed: 7})
	if inst, ok := sys.(routing.Instrumented); ok {
		inst.RoutingFabric().Observe(tracer)
	} else {
		t.Fatal("lorm system is not routing.Instrumented")
	}
	gw, err := transport.NewServer(sys, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// Push one op through the gateway so counters move.
	cli, err := transport.Dial(gw.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Register(resource.Info{Attr: "cpu", Value: 2000, Owner: "site-a"}); err != nil {
		t.Fatal(err)
	}

	msrv, maddr, err := startMetricsServer("127.0.0.1:0", tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer msrv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get("http://" + maddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "# TYPE lorm_ops_total counter") {
		t.Fatalf("missing TYPE line:\n%s", body)
	}
	for _, want := range []string{"lorm", "mercury", "sword", "maan"} {
		if !strings.Contains(body, `system="`+want+`"`) {
			t.Errorf("/metrics has no series for system %q", want)
		}
	}
	if !strings.Contains(body, "transport_requests_total") {
		t.Error("/metrics missing transport families")
	}

	code, body, ctype = get("/metrics?format=json")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metrics?format=json status %d type %q", code, ctype)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	if fam, ok := snap.Family("lorm_ops_total"); !ok || fam.Total() <= 0 {
		t.Fatalf("JSON snapshot has no recorded ops (ok=%v)", ok)
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body, _ = get("/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	spans, err := tracing.ReadSpans(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/trace body does not parse as span JSONL: %v", err)
	}
	foundOp := false
	for _, sp := range spans {
		if sp.IsOp() && sp.System == "lorm" && sp.Kind == "register" {
			foundOp = true
		}
	}
	if !foundOp {
		t.Fatalf("/trace has no lorm register op span among %d spans", len(spans))
	}
	if code, _, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}
