package main

import (
	"testing"
)

func TestParseAttrs(t *testing.T) {
	s, err := parseAttrs("cpu:100:3200,mem:0:8192")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	a, ok := s.Lookup("mem")
	if !ok || a.Min != 0 || a.Max != 8192 {
		t.Fatalf("mem = %+v, %v", a, ok)
	}
	for _, bad := range []string{
		"",                // empty
		"cpu",             // missing bounds
		"cpu:1",           // missing max
		"cpu:x:100",       // bad min
		"cpu:1:y",         // bad max
		"cpu:100:1",       // inverted
		"cpu:1:2,cpu:1:2", // duplicate
	} {
		if _, err := parseAttrs(bad); err == nil {
			t.Errorf("parseAttrs(%q) accepted", bad)
		}
	}
}

func TestParseQuery(t *testing.T) {
	subs, err := parseQuery("cpu:1500:3200,mem:4096")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("subs = %v", subs)
	}
	if !subs[0].IsRange() || subs[0].Low != 1500 || subs[0].High != 3200 {
		t.Fatalf("range sub = %+v", subs[0])
	}
	if subs[1].IsRange() || subs[1].Low != 4096 {
		t.Fatalf("exact sub = %+v", subs[1])
	}
	for _, bad := range []string{"", "cpu", "cpu:a", "cpu:1:2:3", "cpu:1:b"} {
		if _, err := parseQuery(bad); err == nil {
			t.Errorf("parseQuery(%q) accepted", bad)
		}
	}
}

func TestFitDimension(t *testing.T) {
	cases := map[int]int{
		1:    2, // capacity 8 ≥ 2
		4:    2, // 8 ≥ 8
		50:   5, // 5·32 = 160 ≥ 100
		256:  7, // 7·128 = 896 ≥ 512 (6·64 = 384 is too small)
		2048: 9, // 9·512 = 4608 ≥ 4096
	}
	for nodes, want := range cases {
		if got := fitDimension(nodes); got != want {
			t.Errorf("fitDimension(%d) = %d, want %d", nodes, got, want)
		}
	}
	// Always leaves 2× headroom (within the d ≤ 20 cap).
	for _, nodes := range []int{1, 10, 100, 1000, 10000} {
		d := fitDimension(nodes)
		if cap := d * (1 << uint(d)); cap < 2*nodes {
			t.Errorf("fitDimension(%d) = %d with capacity %d < 2n", nodes, d, cap)
		}
	}
}

func TestBuildSystemVariants(t *testing.T) {
	schema, err := parseAttrs("cpu:100:3200")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lorm", "mercury", "sword", "maan"} {
		sys, err := buildSystem(name, 5, 16, schema, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sys.Name() != name {
			t.Fatalf("built %q, want %q", sys.Name(), name)
		}
		if sys.NodeCount() != 16 {
			t.Fatalf("%s NodeCount = %d", name, sys.NodeCount())
		}
	}
	if _, err := buildSystem("kazaa", 5, 16, schema, 4); err == nil {
		t.Fatal("unknown system accepted")
	}
}

// FuzzParseQuery: arbitrary query specs must never panic, only error.
func FuzzParseQuery(f *testing.F) {
	f.Add("cpu:1500:3200,mem:4096")
	f.Add("::::")
	f.Add("")
	f.Add("a:1")
	f.Add("a:2:1") // inverted bounds must be rejected
	f.Fuzz(func(t *testing.T, spec string) {
		subs, err := parseQuery(spec)
		if err == nil && len(subs) == 0 {
			t.Fatalf("parseQuery(%q) returned no subs and no error", spec)
		}
		for _, s := range subs {
			if err == nil && s.Low > s.High {
				t.Fatalf("parseQuery(%q) produced inverted bounds %+v", spec, s)
			}
		}
	})
}
