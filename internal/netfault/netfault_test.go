package netfault

import "testing"

func TestPartitionReachability(t *testing.T) {
	p := NewPlane(1)
	if !p.Reachable("a", "b") {
		t.Fatal("fresh plane must be fully connected")
	}
	if err := p.StartPartition("minority", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		from, to string
		want     bool
	}{
		{"a", "b", true},  // same side
		{"c", "d", true},  // same side (majority)
		{"a", "c", false}, // across the cut
		{"c", "a", false}, // across the cut, reverse
		{"a", "a", true},  // self-delivery
	} {
		if got := p.Reachable(tc.from, tc.to); got != tc.want {
			t.Errorf("Reachable(%s,%s) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
		if got := p.Deliver(tc.from, tc.to); got != tc.want {
			t.Errorf("Deliver(%s,%s) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
	if !p.PartitionActive() {
		t.Fatal("PartitionActive must report the formed set")
	}
	if err := p.StartPartition("minority", []string{"x"}); err == nil {
		t.Fatal("duplicate partition name must be rejected")
	}
	if err := p.StartPartition("other", []string{"a"}); err == nil {
		t.Fatal("a node may belong to at most one active set")
	}
	if !p.Heal("minority") {
		t.Fatal("heal of an active set must succeed")
	}
	if p.Heal("minority") {
		t.Fatal("double heal must report false")
	}
	if !p.Reachable("a", "c") || p.PartitionActive() {
		t.Fatal("healing must restore full connectivity")
	}
	if started, healed := p.Partitions(); started != 1 || healed != 1 {
		t.Fatalf("lifecycle tallies = (%d, %d), want (1, 1)", started, healed)
	}
}

func TestBlackholeIsDirected(t *testing.T) {
	p := NewPlane(1)
	p.Blackhole("a", "b")
	if p.Reachable("a", "b") {
		t.Fatal("blackholed direction must be dark")
	}
	if !p.Reachable("b", "a") {
		t.Fatal("reverse direction must stay up — the link is asymmetric")
	}
	p.ClearBlackhole("a", "b")
	if !p.Reachable("a", "b") {
		t.Fatal("cleared blackhole must restore the direction")
	}
}

func TestDropIsSeededAndBounded(t *testing.T) {
	if err := NewPlane(1).SetDrop(1.0); err == nil {
		t.Fatal("drop probability 1.0 must be rejected")
	}
	run := func(seed int64) []bool {
		p := NewPlane(seed)
		if err := p.SetDrop(0.5); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Deliver("a", "b")
		}
		return out
	}
	a, b := run(7), run(7)
	dropped := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must replay the same drop sequence")
		}
		if !a[i] {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("drop 0.5 over %d messages lost %d — model inactive or total", len(a), dropped)
	}
}

func TestIdlePlaneFastPathAfterFullHeal(t *testing.T) {
	p := NewPlane(1)
	p.Blackhole("a", "b")
	if err := p.StartPartition("s", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	p.ClearBlackhole("a", "b")
	p.Heal("s")
	if p.active.Load() != 0 {
		t.Fatalf("rule count = %d after clearing every rule, want 0 (fast path disabled)", p.active.Load())
	}
}
