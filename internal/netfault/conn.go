package netfault

import (
	"fmt"
	"net"
	"time"
)

// faultConn applies the plane's directed faults to the from→to direction
// of a real connection: writes into a blackholed or dropped link are
// swallowed (reported as successful, bytes vanish in flight), so the peer
// never sees the request and the caller's read runs into its deadline —
// exactly how an asymmetric link failure presents to a TCP client.
type faultConn struct {
	net.Conn
	p        *Plane
	from, to string
}

func (c *faultConn) Write(b []byte) (int, error) {
	if d := c.p.Delay(c.from, c.to); d > 0 {
		time.Sleep(time.Duration(d * float64(time.Second)))
	}
	if !c.p.Deliver(c.from, c.to) {
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// WrapConn subjects an established connection's from→to direction to the
// plane's faults. The reverse direction is untouched — pair two wraps to
// fault both ways.
func (p *Plane) WrapConn(c net.Conn, from, to string) net.Conn {
	return &faultConn{Conn: c, p: p, from: from, to: to}
}

// Dialer adapts the plane to the transport client's Options.Dialer seam:
// new connections from the named endpoint fail to establish while the
// from→to link is down (a SYN into a partition or blackhole never
// arrives), and established ones flow through WrapConn. The base dial
// does the real connecting; pass nil for net.DialTimeout.
func (p *Plane) Dialer(from string, base func(addr string, timeout time.Duration) (net.Conn, error)) func(addr string, timeout time.Duration) (net.Conn, error) {
	if base == nil {
		base = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if !p.Reachable(from, addr) {
			mBlockedMessages.Inc()
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: fmt.Errorf("netfault: %s cannot reach %s", from, addr)}
		}
		c, err := base(addr, timeout)
		if err != nil {
			return nil, err
		}
		return p.WrapConn(c, from, addr), nil
	}
}
