// Package netfault injects network-level faults under the overlays: named
// partition sets that form and heal on a schedule, directed one-way
// blackholes (asymmetric reachability), probabilistic message drop, and
// per-link added delay. A Plane implements discovery.Reachability, so the
// same object plugs into chord/cycloid lookups (via SetReachability), the
// membership gossip layer (via Deliver) and the transport client (via
// WrapConn/Dialer) — one seeded fault model, three seams.
//
// Unlike the faults package — whose Poisson plans kill processes — the
// Plane never touches membership: every node stays alive and keeps its
// directory; only messages between the wrong pairs of nodes stop flowing.
// That is exactly the failure class the paper's graceful-churn model cannot
// express, and it composes freely with crash plans (a run may partition the
// network while a faults.Plan crashes nodes inside it).
package netfault

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"

	"lorm/internal/discovery"
)

// Plane is one seeded network-fault model. The zero rule set is a perfect
// network: Reachable and Deliver answer true without taking the lock, so an
// idle Plane adds one atomic load to the lookup hot path.
type Plane struct {
	// active counts installed rules (partition groups, blackholes, drop
	// probability); the fast path checks it before locking.
	active atomic.Int64

	mu     sync.Mutex
	rng    *rand.Rand
	logger *slog.Logger
	// group maps a node address to the name of the partition set holding it;
	// nodes in different groups (or one grouped, one not) cannot exchange
	// messages. Membership in at most one named set keeps heal semantics
	// unambiguous.
	group      map[string]string
	partitions map[string][]string
	black      map[string]map[string]bool // black[from][to]: from→to messages vanish
	drop       float64                    // per-message drop probability
	delay      map[string]map[string]float64

	started, healed int // partition lifecycle tallies for reports
}

var _ discovery.Reachability = (*Plane)(nil)

// NewPlane creates a fault plane whose probabilistic draws (message drop)
// replay deterministically for the same seed.
func NewPlane(seed int64) *Plane {
	return &Plane{
		rng:        rand.New(rand.NewSource(seed)),
		group:      make(map[string]string),
		partitions: make(map[string][]string),
		black:      make(map[string]map[string]bool),
		delay:      make(map[string]map[string]float64),
	}
}

// SetLogger directs partition/blackhole lifecycle events (Info level) to
// the given logger; nil disables them.
func (p *Plane) SetLogger(l *slog.Logger) {
	p.mu.Lock()
	p.logger = l
	p.mu.Unlock()
}

// StartPartition isolates the named member set from the rest of the
// network: members keep full connectivity among themselves, every link
// crossing the set boundary goes dark in both directions. Starting a name
// that is already active is an error; nodes already held by another active
// partition set are rejected so each address belongs to at most one set.
func (p *Plane) StartPartition(name string, members []string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.partitions[name]; dup {
		return fmt.Errorf("netfault: partition %q already active", name)
	}
	for _, m := range members {
		if g, held := p.group[m]; held {
			return fmt.Errorf("netfault: node %s already in partition %q", m, g)
		}
	}
	set := append([]string(nil), members...)
	p.partitions[name] = set
	for _, m := range set {
		p.group[m] = name
	}
	p.started++
	mPartitionsStarted.Inc()
	p.active.Add(1)
	if p.logger != nil {
		p.logger.Info("netfault partition formed", "name", name, "members", len(set))
	}
	return nil
}

// Heal dissolves the named partition set, restoring full connectivity for
// its members. Healing an unknown name reports false.
func (p *Plane) Heal(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	set, ok := p.partitions[name]
	if !ok {
		return false
	}
	delete(p.partitions, name)
	for _, m := range set {
		delete(p.group, m)
	}
	p.healed++
	mPartitionsHealed.Inc()
	p.active.Add(-1)
	if p.logger != nil {
		p.logger.Info("netfault partition healed", "name", name, "members", len(set))
	}
	return true
}

// PartitionActive reports whether any named partition set is currently
// formed (experiments use it to classify query failures into the fault
// window).
func (p *Plane) PartitionActive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.partitions) > 0
}

// Partitions returns the lifetime started/healed tallies.
func (p *Plane) Partitions() (started, healed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.started, p.healed
}

// Blackhole makes every from→to message vanish while leaving the reverse
// direction intact — the asymmetric-link fault. Idempotent.
func (p *Plane) Blackhole(from, to string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.black[from] == nil {
		p.black[from] = make(map[string]bool)
	}
	if !p.black[from][to] {
		p.black[from][to] = true
		mBlackholes.Inc()
		p.active.Add(1)
		if p.logger != nil {
			p.logger.Info("netfault blackhole", "from", from, "to", to)
		}
	}
}

// ClearBlackhole removes a directed blackhole; clearing one that is not
// installed is a no-op.
func (p *Plane) ClearBlackhole(from, to string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.black[from][to] {
		delete(p.black[from], to)
		p.active.Add(-1)
		if p.logger != nil {
			p.logger.Info("netfault blackhole cleared", "from", from, "to", to)
		}
	}
}

// SetDrop sets the probability that an otherwise-deliverable message is
// dropped (0 disables). Drops are drawn from the plane's seeded RNG, so a
// run replays exactly.
func (p *Plane) SetDrop(prob float64) error {
	if prob < 0 || prob >= 1 {
		return fmt.Errorf("netfault: drop probability %v outside [0,1)", prob)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.drop == 0 && prob > 0 {
		p.active.Add(1)
	} else if p.drop > 0 && prob == 0 {
		p.active.Add(-1)
	}
	p.drop = prob
	return nil
}

// SetDelay installs an added one-way delay (virtual seconds) on the from→to
// link; 0 removes it. Delay never blocks delivery — consumers that model
// latency (the transport conn wrapper, future sim transports) read it via
// Delay.
func (p *Plane) SetDelay(from, to string, d float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d <= 0 {
		if p.delay[from] != nil {
			delete(p.delay[from], to)
		}
		return
	}
	if p.delay[from] == nil {
		p.delay[from] = make(map[string]float64)
	}
	p.delay[from][to] = d
}

// Delay returns the added one-way delay on the from→to link.
func (p *Plane) Delay(from, to string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delay[from][to]
}

// Reachable implements discovery.Reachability: the deterministic
// connectivity answer (partitions and blackholes; probabilistic drop is
// Deliver's business). A message from a node to itself is always
// deliverable.
func (p *Plane) Reachable(from, to string) bool {
	if p.active.Load() == 0 || from == to {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reachableLocked(from, to)
}

func (p *Plane) reachableLocked(from, to string) bool {
	if p.group[from] != p.group[to] {
		return false
	}
	return !p.black[from][to]
}

// Deliver decides the fate of one from→to message: false when the link is
// down (partition or blackhole — counted as blocked) or the seeded drop
// draw fires (counted as dropped). The gossip layer routes every shuffle
// request and reply through this predicate.
func (p *Plane) Deliver(from, to string) bool {
	if p.active.Load() == 0 || from == to {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.reachableLocked(from, to) {
		mBlockedMessages.Inc()
		return false
	}
	if p.drop > 0 && p.rng.Float64() < p.drop {
		mDroppedMessages.Inc()
		return false
	}
	return true
}
