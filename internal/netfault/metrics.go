package netfault

import "lorm/internal/metrics"

// Process-wide fault-plane counters, aggregated across every Plane in the
// process (the partition experiment runs one per system per sweep point).
var (
	mPartitionsStarted = metrics.Default().Counter("netfault_partitions_started_total",
		"named network partition sets formed by fault planes")
	mPartitionsHealed = metrics.Default().Counter("netfault_partitions_healed_total",
		"named network partition sets healed by fault planes")
	mBlackholes = metrics.Default().Counter("netfault_blackholes_total",
		"directed one-way blackholes installed by fault planes")
	mBlockedMessages = metrics.Default().Counter("netfault_blocked_messages_total",
		"messages blocked by an active partition or blackhole")
	mDroppedMessages = metrics.Default().Counter("netfault_dropped_messages_total",
		"messages dropped by the probabilistic loss model")
	mWindowQueryChecks = metrics.Default().Counter("netfault_window_query_checks_total",
		"queries issued while a partition window was active")
	mWindowQueryFailures = metrics.Default().Counter("netfault_window_query_failures_total",
		"queries that failed while a partition window was active")
)

// CountWindowQuery records one query issued during an active partition
// window; failed reports whether it erred or mismatched the oracle. The
// experiment driver owns the query loop, so the window attribution lives
// here rather than in the overlays — metricscheck reconciles these against
// the overlays' *_query_failures_total.
func CountWindowQuery(failed bool) {
	mWindowQueryChecks.Inc()
	if failed {
		mWindowQueryFailures.Inc()
	}
}
