package systemtest

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"lorm/internal/discovery"
	"lorm/internal/loadbalance"
	"lorm/internal/resource"
	"lorm/internal/workload"
)

// ownerMultiset reduces a per-attribute result to its sorted owner list
// with multiplicity — stronger than ownerSet: a rebalance pass moves
// entries between directories but must not duplicate or drop any, so even
// the multiplicities of each system's answers must survive it.
func ownerMultiset(infos []resource.Info) []string {
	out := make([]string, len(infos))
	for i, in := range infos {
		out[i] = in.Owner
	}
	sort.Strings(out)
	return out
}

// buildSkewedDeployment builds a sparse deployment (free Cycloid slots,
// several nodes per LORM cluster) and registers a Bounded-Pareto-skewed
// announcement workload so every system has genuine hotspots.
func buildSkewedDeployment(t *testing.T) (*Deployment, *workload.Generator) {
	t.Helper()
	schema := workload.ParetoSchema(8, 500, 1.5)
	dep, err := Build(schema, 96, Options{D: 6, Bits: 18})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(schema, 1.5)
	for _, in := range gen.SkewedAnnouncements(workload.Split(1005, 0), 40, 1.5) {
		if err := dep.RegisterEverywhere(in); err != nil {
			t.Fatal(err)
		}
	}
	return dep, gen
}

// fig5Queries generates the Figure 5 workload: multi-attribute range
// queries with 1..4 attributes and expected quarter-domain coverage.
func fig5Queries(gen *workload.Generator, count int) []resource.Query {
	qrng := workload.Split(1005, 1)
	queries := make([]resource.Query, 0, count)
	for i := 0; i < count; i++ {
		queries = append(queries, gen.RangeQuery(qrng, 1+i%4, 0.5, fmt.Sprintf("req-%04d", i)))
	}
	return queries
}

// The load-balance correctness property: a rebalance pass strictly reduces
// the max/mean load factor of the value-spreading systems (LORM, Mercury,
// MAAN, ART) and changes no query result — every answer after migration is
// identical, with multiplicity, to the unbalanced run and to the oracle.
// SWORD's pass must never increase its factor and must report its
// indivisible attribute pools as blocked.
func TestRebalancePreservesAnswers(t *testing.T) {
	dep, gen := buildSkewedDeployment(t)
	queries := fig5Queries(gen, 60)

	before := make(map[string][]*discovery.Result)
	for _, sys := range dep.Systems() {
		for qi, q := range queries {
			res, err := sys.Discover(q)
			if err != nil {
				t.Fatalf("%s pre-rebalance query %d: %v", sys.Name(), qi, err)
			}
			before[sys.Name()] = append(before[sys.Name()], res)
		}
	}

	pre := make(map[string]loadbalance.Report)
	for _, sys := range dep.Systems() {
		b := sys.(discovery.Balancer)
		pre[sys.Name()] = loadbalance.Analyze(b.DirectoryLoads(), 3)
		stats, err := b.Rebalance()
		if err != nil {
			t.Fatalf("%s rebalance: %v", sys.Name(), err)
		}
		post := loadbalance.Analyze(b.DirectoryLoads(), 3)
		if post.TotalEntries != pre[sys.Name()].TotalEntries {
			t.Fatalf("%s rebalance changed the entry total: %d -> %d",
				sys.Name(), pre[sys.Name()].TotalEntries, post.TotalEntries)
		}
		switch sys.Name() {
		case "lorm", "mercury", "maan", "art":
			if stats.Migrations == 0 {
				t.Errorf("%s performed no migrations on a skewed workload (%+v)", sys.Name(), stats)
			}
			if post.MaxMean >= pre[sys.Name()].MaxMean {
				t.Errorf("%s max/mean %0.3f did not improve (was %0.3f)",
					sys.Name(), post.MaxMean, pre[sys.Name()].MaxMean)
			}
		case "sword":
			if post.MaxMean > pre[sys.Name()].MaxMean {
				t.Errorf("sword max/mean grew: %0.3f -> %0.3f", pre[sys.Name()].MaxMean, post.MaxMean)
			}
			if stats.Blocked == 0 {
				t.Errorf("sword reported no blocked hotspots; its attribute pools are indivisible (%+v)", stats)
			}
		}
	}

	for _, sys := range dep.Systems() {
		for qi, q := range queries {
			got, err := sys.Discover(q)
			if err != nil {
				t.Fatalf("%s post-rebalance query %d: %v", sys.Name(), qi, err)
			}
			want := before[sys.Name()][qi]
			if !equalStrings(got.Owners, want.Owners) {
				t.Fatalf("%s query %d: owners changed by rebalance: %v -> %v",
					sys.Name(), qi, want.Owners, got.Owners)
			}
			for attr, infos := range want.PerAttr {
				if !equalStrings(ownerMultiset(got.PerAttr[attr]), ownerMultiset(infos)) {
					t.Fatalf("%s query %d attr %s: result multiset changed by rebalance: %v -> %v",
						sys.Name(), qi, attr, ownerMultiset(infos), ownerMultiset(got.PerAttr[attr]))
				}
			}
			oracle, err := dep.Oracle.Discover(q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalStrings(got.Owners, oracle.Owners) {
				t.Fatalf("%s query %d: owners %v, oracle %v", sys.Name(), qi, got.Owners, oracle.Owners)
			}
		}
	}
}

// Concurrency smoke for the migration path: queries race with rebalance
// passes on every system without data races or errors (a query may
// transiently observe an in-flight migration — that is churn semantics —
// but once the passes finish, answers must again match the oracle
// exactly).
func TestRebalanceConcurrentWithQueries(t *testing.T) {
	dep, gen := buildSkewedDeployment(t)
	queries := fig5Queries(gen, 40)

	var wg sync.WaitGroup
	errs := make(chan error, len(dep.Systems())*2)
	for _, sys := range dep.Systems() {
		sys := sys
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range queries {
				if _, err := sys.Discover(q); err != nil {
					errs <- fmt.Errorf("%s discover: %w", sys.Name(), err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := sys.(discovery.Balancer).Rebalance(); err != nil {
					errs <- fmt.Errorf("%s rebalance: %w", sys.Name(), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for qi, q := range queries[:10] {
		want, err := dep.Oracle.Discover(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range dep.Systems() {
			got, err := sys.Discover(q)
			if err != nil {
				t.Fatalf("%s settled query %d: %v", sys.Name(), qi, err)
			}
			if !equalStrings(got.Owners, want.Owners) {
				t.Fatalf("%s settled query %d: owners %v, oracle %v", sys.Name(), qi, got.Owners, want.Owners)
			}
		}
	}
}
