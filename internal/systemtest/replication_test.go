package systemtest

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"lorm/internal/discovery"
	"lorm/internal/loadbalance"
	"lorm/internal/replication"
	"lorm/internal/resource"
	"lorm/internal/routing"
	"lorm/internal/workload"
)

// hotSystem is what every system exposes on top of discovery.Replicated:
// a hot-key promotion pass driven by a traffic report.
type hotSystem interface {
	discovery.Replicated
	PromoteHot(visits []discovery.NodeLoad, opts replication.HotKeyOptions) int
}

// replicated asserts the whole deployment implements discovery.Replicated
// and returns the systems under that interface.
func replicated(t *testing.T, dep *Deployment) []discovery.Replicated {
	t.Helper()
	out := make([]discovery.Replicated, 0, 4)
	for _, sys := range dep.Systems() {
		rep, ok := sys.(discovery.Replicated)
		if !ok {
			t.Fatalf("%s does not implement discovery.Replicated", sys.Name())
		}
		out = append(out, rep)
	}
	return out
}

// checkOracle compares every system's answers on the query set against the
// brute-force oracle: joined owner set and per-attribute owner sets.
func checkOracle(t *testing.T, dep *Deployment, queries []resource.Query, when string) {
	t.Helper()
	for qi, q := range queries {
		want, err := dep.Oracle.Discover(q)
		if err != nil {
			t.Fatalf("oracle on query %d: %v", qi, err)
		}
		for _, sys := range dep.Systems() {
			got, err := sys.Discover(q)
			if err != nil {
				t.Fatalf("%s %s query %d: %v", sys.Name(), when, qi, err)
			}
			if !equalStrings(got.Owners, want.Owners) {
				t.Fatalf("%s %s query %d (%v): owners %v, oracle %v",
					sys.Name(), when, qi, q, got.Owners, want.Owners)
			}
			for attr, infos := range want.PerAttr {
				if !equalStrings(ownerSet(got.PerAttr[attr]), ownerSet(infos)) {
					t.Fatalf("%s %s query %d attr %s: owner set %v, oracle %v",
						sys.Name(), when, qi, attr, ownerSet(got.PerAttr[attr]), ownerSet(infos))
				}
			}
		}
	}
}

// The replication layer's central property, table-driven over all four
// systems as discovery.Replicated: with base factor r, Repair after any
// crash/join sequence that destroys fewer than r holders per round restores
// the holder invariant — every system keeps answering exactly like the
// oracle — and a second immediate Repair is a no-op (idempotence).
func TestRepairRestoresOracleAnswersAfterCrashAndJoin(t *testing.T) {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
		resource.Attribute{Name: "disk", Min: 1, Max: 2000},
	)
	dep, err := Build(schema, 96, Options{D: 6, Bits: 18})
	if err != nil {
		t.Fatal(err)
	}
	const factor = 3
	reps := replicated(t, dep)
	for _, rep := range reps {
		if err := rep.SetReplicas(0); err == nil {
			t.Fatalf("%s accepted replication factor 0", rep.Name())
		}
		if err := rep.SetReplicas(factor); err != nil {
			t.Fatalf("%s SetReplicas(%d): %v", rep.Name(), factor, err)
		}
		if got := rep.Replicas(); got != factor {
			t.Fatalf("%s Replicas() = %d, want %d", rep.Name(), got, factor)
		}
	}

	gen := workload.NewGenerator(schema, 1.5)
	rng := workload.Split(1006, 0)
	for _, in := range gen.Announcements(rng, 50) {
		if err := dep.RegisterEverywhere(in); err != nil {
			t.Fatal(err)
		}
	}
	// Registration placed every copy, so the holder invariant already
	// holds: the very first Repair must agree with Place and do nothing.
	for _, rep := range reps {
		if a, r := rep.Repair(); a != 0 || r != 0 {
			t.Fatalf("%s Repair after clean registration: (%d, %d), want (0, 0)", rep.Name(), a, r)
		}
	}

	qrng := workload.Split(1006, 1)
	queries := make([]resource.Query, 0, 30)
	for i := 0; i < 15; i++ {
		queries = append(queries,
			gen.ExactQuery(qrng, 1+i%3, fmt.Sprintf("req-%d", i)),
			gen.RangeQuery(qrng, 1+i%3, 0.5, fmt.Sprintf("req-r-%d", i)),
		)
	}
	checkOracle(t, dep, queries, "pre-fault")

	// Four rounds of faults. Each round crashes two nodes — fewer than the
	// factor, so no key-group can lose all its holders between repairs —
	// and joins one fresh node, which shifts holder chains around the new
	// ring position.
	for round := 0; round < 4; round++ {
		victims := dep.LORM.NodeAddrs()
		sort.Strings(victims)
		for v := 0; v < factor-1; v++ {
			victim := victims[(round*37+v*11)%len(victims)]
			for _, rep := range reps {
				cr, ok := rep.(discovery.Crashable)
				if !ok {
					t.Fatalf("%s does not implement discovery.Crashable", rep.Name())
				}
				if _, err := cr.FailNode(victim); err != nil {
					t.Fatalf("%s crash %s: %v", rep.Name(), victim, err)
				}
			}
			victims = dep.LORM.NodeAddrs()
			sort.Strings(victims)
		}
		joiner := fmt.Sprintf("joiner-%02d", round)
		for _, rep := range reps {
			if err := rep.(discovery.Dynamic).AddNode(joiner); err != nil {
				t.Fatalf("%s join %s: %v", rep.Name(), joiner, err)
			}
		}
		for _, rep := range reps {
			rep.(discovery.Dynamic).Maintain()
			rep.Repair()
			if a, r := rep.Repair(); a != 0 || r != 0 {
				t.Fatalf("%s round %d: second Repair not idempotent: (%d, %d)", rep.Name(), round, a, r)
			}
		}
		checkOracle(t, dep, queries, fmt.Sprintf("round %d", round))
	}
}

// Replica-aware reads under concurrency: promote hot keys on every system,
// then hammer the same queries from many goroutines (run with -race) and
// require every answer to stay oracle-exact while reads fan out over the
// replica holders.
func TestConcurrentReplicaReadsMatchOracle(t *testing.T) {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
	)
	const n = 64
	dep, err := Build(schema, n, Options{D: 6, Bits: 18})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(schema, 1.5)
	rng := workload.Split(1007, 0)
	infos := gen.Announcements(rng, 40)
	for _, in := range infos {
		if err := dep.RegisterEverywhere(in); err != nil {
			t.Fatal(err)
		}
	}

	// A skewed read mix: three announcements hammered as exact queries
	// (these become the hot keys) plus a couple of ranges for background.
	hot := make([]resource.Query, 0, 3)
	for i := 0; i < 3; i++ {
		in := infos[i*7]
		hot = append(hot, resource.Query{
			Subs:      []resource.SubQuery{{Attr: in.Attr, Low: in.Value, High: in.Value}},
			Requester: fmt.Sprintf("req-hot-%d", i),
		})
	}
	qrng := workload.Split(1007, 1)
	mixed := append([]resource.Query{}, hot...)
	for i := 0; i < 3; i++ {
		mixed = append(mixed, gen.RangeQuery(qrng, 1+i%2, 0.5, fmt.Sprintf("req-r-%d", i)))
	}

	addrs := Addresses(n)
	for _, sys := range dep.Systems() {
		hs, ok := sys.(hotSystem)
		if !ok {
			t.Fatalf("%s does not expose PromoteHot", sys.Name())
		}
		led := &loadbalance.Ledger{}
		sys.(routing.Instrumented).RoutingFabric().Observe(led)
		for i := 0; i < 60; i++ {
			for _, q := range hot {
				if _, err := sys.Discover(q); err != nil {
					t.Fatalf("%s warmup: %v", sys.Name(), err)
				}
			}
		}
		promoted := hs.PromoteHot(led.VisitLoads(addrs), replication.HotKeyOptions{Fanout: 3, Threshold: 1.2})
		if promoted == 0 {
			t.Fatalf("%s promoted no keys after a skewed warmup", sys.Name())
		}
	}

	// Oracle answers are fixed; compute them once up front.
	type expect struct {
		owners  []string
		perAttr map[string][]string
	}
	wants := make([]expect, len(mixed))
	for i, q := range mixed {
		res, err := dep.Oracle.Discover(q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = expect{owners: res.Owners, perAttr: map[string][]string{}}
		for attr, infos := range res.PerAttr {
			wants[i].perAttr[attr] = ownerSet(infos)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for qi, q := range mixed {
					for _, sys := range dep.Systems() {
						got, err := sys.Discover(q)
						if err != nil {
							errs <- fmt.Errorf("%s: %v", sys.Name(), err)
							return
						}
						if !equalStrings(got.Owners, wants[qi].owners) {
							errs <- fmt.Errorf("%s query %d: owners %v, oracle %v",
								sys.Name(), qi, got.Owners, wants[qi].owners)
							return
						}
						for attr, want := range wants[qi].perAttr {
							if !equalStrings(ownerSet(got.PerAttr[attr]), want) {
								errs <- fmt.Errorf("%s query %d attr %s: owner set %v, oracle %v",
									sys.Name(), qi, attr, ownerSet(got.PerAttr[attr]), want)
								return
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
