package systemtest

import (
	"fmt"
	"sort"
	"testing"

	"lorm/internal/discovery"
	"lorm/internal/resource"
	"lorm/internal/workload"
)

// ownerSet reduces a per-attribute result to its sorted unique owner set —
// the semantic content all systems must agree on (MAAN's dual storage can
// surface a piece through either index, so raw piece lists may differ in
// multiplicity but never in membership).
func ownerSet(infos []resource.Info) []string {
	seen := map[string]bool{}
	for _, in := range infos {
		seen[in.Owner] = true
	}
	out := make([]string, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The central correctness property of the whole comparison: on identical
// workloads, every DHT-based system returns exactly the brute-force
// oracle's answer — same joined owner set, same per-attribute owner sets —
// for exact, range, half-open and multi-attribute queries.
func TestAllSystemsMatchOracle(t *testing.T) {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
		resource.Attribute{Name: "disk", Min: 1, Max: 2000},
		resource.Attribute{Name: "bandwidth", Min: 1, Max: 1000},
	)
	dep, err := Build(schema, 128, Options{D: 6, Bits: 18})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(schema, 1.5)
	rng := workload.Split(1001, 0)
	for _, in := range gen.Announcements(rng, 60) {
		if err := dep.RegisterEverywhere(in); err != nil {
			t.Fatal(err)
		}
	}

	qrng := workload.Split(1001, 1)
	queries := make([]resource.Query, 0, 120)
	for i := 0; i < 40; i++ {
		queries = append(queries,
			gen.ExactQuery(qrng, 1+i%3, fmt.Sprintf("req-%d", i)),
			gen.RangeQuery(qrng, 1+i%4, 0.5, fmt.Sprintf("req-r-%d", i)),
			gen.HalfOpenRangeQuery(qrng, 1+i%2, fmt.Sprintf("req-h-%d", i)),
		)
	}

	for qi, q := range queries {
		want, err := dep.Oracle.Discover(q)
		if err != nil {
			t.Fatalf("oracle on query %d: %v", qi, err)
		}
		for _, sys := range dep.Systems() {
			got, err := sys.Discover(q)
			if err != nil {
				t.Fatalf("%s on query %d (%v): %v", sys.Name(), qi, q, err)
			}
			if !equalStrings(got.Owners, want.Owners) {
				t.Fatalf("%s query %d (%v): owners %v, oracle %v",
					sys.Name(), qi, q, got.Owners, want.Owners)
			}
			for attr, infos := range want.PerAttr {
				if !equalStrings(ownerSet(got.PerAttr[attr]), ownerSet(infos)) {
					t.Fatalf("%s query %d attr %s: owner set %v, oracle %v",
						sys.Name(), qi, attr, ownerSet(got.PerAttr[attr]), ownerSet(infos))
				}
			}
		}
	}
}

// Theorem 4.2 as an executable invariant: MAAN stores twice the pieces of
// LORM/Mercury/SWORD on the same workload.
func TestMAANStoresTwiceTheInformation(t *testing.T) {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
	)
	dep, err := Build(schema, 64, Options{D: 6, Bits: 18})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(schema, 1.5)
	rng := workload.Split(1002, 0)
	infos := gen.Announcements(rng, 50)
	for _, in := range infos {
		if err := dep.RegisterEverywhere(in); err != nil {
			t.Fatal(err)
		}
	}
	totals := map[string]int{}
	for _, sys := range dep.Systems() {
		sum := 0
		for _, sz := range sys.DirectorySizes() {
			sum += sz
		}
		totals[sys.Name()] = sum
	}
	n := len(infos)
	for _, name := range Names() {
		if name == "maan" {
			continue // dual registration, checked below
		}
		if totals[name] != n {
			t.Errorf("%s stores %d pieces, want %d", name, totals[name], n)
		}
	}
	if totals["maan"] != 2*n {
		t.Errorf("maan stores %d pieces, want %d (Theorem 4.2)", totals["maan"], 2*n)
	}
}

// SWORD's range queries visit exactly one node per attribute; LORM's stay
// within a cluster (≤ d+1); MAAN visits at least two nodes per attribute.
func TestVisitedNodeShapes(t *testing.T) {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
	)
	dep, err := Build(schema, 128, Options{D: 6, Bits: 18})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(schema, 1.5)
	rng := workload.Split(1003, 0)
	for _, in := range gen.Announcements(rng, 40) {
		if err := dep.RegisterEverywhere(in); err != nil {
			t.Fatal(err)
		}
	}
	qrng := workload.Split(1003, 1)
	for i := 0; i < 25; i++ {
		q := gen.RangeQuery(qrng, 2, 0.5, fmt.Sprintf("req-%d", i))
		check := func(sys discovery.System, pred func(v int) bool, desc string) {
			res, err := sys.Discover(q)
			if err != nil {
				t.Fatalf("%s: %v", sys.Name(), err)
			}
			if !pred(res.Cost.Visited) {
				t.Fatalf("%s visited %d nodes on %v, want %s", sys.Name(), res.Cost.Visited, q, desc)
			}
		}
		check(dep.SWORD, func(v int) bool { return v == 2 }, "exactly one per attribute")
		check(dep.LORM, func(v int) bool { return v >= 2 && v <= 2*(6+1) }, "within one cluster per attribute")
		check(dep.MAAN, func(v int) bool { return v >= 4 }, "at least two per attribute")
	}
}

// Churn equivalence: after joins and graceful departures with maintenance,
// all systems still answer exactly like the oracle.
func TestChurnPreservesAnswers(t *testing.T) {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
	)
	dep, err := Build(schema, 80, Options{D: 6, Bits: 18})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(schema, 1.5)
	rng := workload.Split(1004, 0)
	for _, in := range gen.Announcements(rng, 40) {
		if err := dep.RegisterEverywhere(in); err != nil {
			t.Fatal(err)
		}
	}
	var dynamics []discovery.Dynamic
	for _, sys := range dep.Systems() {
		dyn, ok := sys.(discovery.Dynamic)
		if !ok {
			t.Fatalf("%s does not support churn", sys.Name())
		}
		dynamics = append(dynamics, dyn)
	}
	for round := 0; round < 8; round++ {
		addr := fmt.Sprintf("churner-%02d", round)
		for _, dyn := range dynamics {
			if err := dyn.AddNode(addr); err != nil {
				t.Fatalf("%s add: %v", dyn.Name(), err)
			}
		}
		victims := dep.LORM.NodeAddrs()
		victim := victims[(round*53)%len(victims)]
		for _, dyn := range dynamics {
			if err := dyn.RemoveNode(victim); err != nil {
				t.Fatalf("%s remove %s: %v", dyn.Name(), victim, err)
			}
			dyn.Maintain()
		}
	}
	qrng := workload.Split(1004, 1)
	for i := 0; i < 20; i++ {
		q := gen.RangeQuery(qrng, 2, 0.5, fmt.Sprintf("req-%d", i))
		want, err := dep.Oracle.Discover(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range dep.Systems() {
			got, err := sys.Discover(q)
			if err != nil {
				t.Fatalf("%s post-churn: %v", sys.Name(), err)
			}
			if !equalStrings(got.Owners, want.Owners) {
				t.Fatalf("%s post-churn owners %v, oracle %v", sys.Name(), got.Owners, want.Owners)
			}
		}
	}
}

func TestBuildOptions(t *testing.T) {
	schema := resource.MustSchema(resource.Attribute{Name: "cpu", Min: 0, Max: 1})
	dep, err := Build(schema, 10, Options{D: 4, Bits: 16, SkipMercury: true})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Mercury != nil {
		t.Fatal("SkipMercury ignored")
	}
	if want := len(Names()) - 1; len(dep.Systems()) != want {
		t.Fatalf("Systems() = %d entries, want %d", len(dep.Systems()), want)
	}
	dep2, err := Build(schema, 0, Options{D: 4, CompleteLORM: true, SkipMercury: true})
	if err != nil {
		t.Fatal(err)
	}
	if dep2.LORM.NodeCount() != 64 {
		t.Fatalf("complete LORM has %d nodes, want 64", dep2.LORM.NodeCount())
	}
}

// String-described attributes flow through every system end to end: an
// "os" domain registered alongside numeric attributes, queried by exact
// description and by prefix range, must match the oracle everywhere.
func TestStringAttributesEndToEnd(t *testing.T) {
	osDom := resource.MustStringDomain("os",
		"windows", "linux-ubuntu", "linux-fedora", "linux-debian", "macos")
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		osDom.Attribute(),
	)
	dep, err := Build(schema, 64, Options{D: 6, Bits: 18})
	if err != nil {
		t.Fatal(err)
	}
	hosts := []struct {
		owner string
		cpu   float64
		os    string
	}{
		{"h1", 2000, "linux-ubuntu"},
		{"h2", 2400, "linux-fedora"},
		{"h3", 2800, "windows"},
		{"h4", 1000, "linux-debian"},
		{"h5", 3000, "macos"},
	}
	for _, h := range hosts {
		if err := dep.RegisterEverywhere(resource.Info{Attr: "cpu", Value: h.cpu, Owner: h.owner}); err != nil {
			t.Fatal(err)
		}
		if err := dep.RegisterEverywhere(resource.Info{Attr: "os", Value: osDom.MustEncode(h.os), Owner: h.owner}); err != nil {
			t.Fatal(err)
		}
	}
	linux, err := osDom.Prefix("linux-")
	if err != nil {
		t.Fatal(err)
	}
	q := resource.Query{
		Subs: []resource.SubQuery{
			{Attr: "cpu", Low: 1500, High: 3200},
			linux,
		},
		Requester: "r",
	}
	want, err := dep.Oracle.Discover(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Owners) != 2 || want.Owners[0] != "h1" || want.Owners[1] != "h2" {
		t.Fatalf("oracle owners = %v, want [h1 h2]", want.Owners)
	}
	for _, sys := range dep.Systems() {
		got, err := sys.Discover(q)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if !equalStrings(got.Owners, want.Owners) {
			t.Fatalf("%s: owners %v, want %v", sys.Name(), got.Owners, want.Owners)
		}
	}
}
