package systemtest

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lorm/internal/discovery"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// failLedger tracks which node addresses have crashed, stamped with a
// monotone epoch. The ordering discipline makes the dead-node assertion
// exact under full concurrency: a crash is recorded AFTER FailNode
// completes, and a query samples the epoch BEFORE it begins, so
// failedAt[addr] ≤ startEpoch proves the crash's snapshot publication
// happened-before the query loaded its view — such an address must never
// appear in that query's path.
type failLedger struct {
	mu       sync.RWMutex
	epoch    int64
	failedAt map[string]int64
}

func newFailLedger() *failLedger {
	return &failLedger{failedAt: make(map[string]int64)}
}

// recordCrash stamps addr as failed; call only after FailNode returned.
func (l *failLedger) recordCrash(addr string) {
	l.mu.Lock()
	l.epoch++
	l.failedAt[addr] = l.epoch
	l.mu.Unlock()
}

// now returns the current epoch; call before starting a query.
func (l *failLedger) now() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.epoch
}

// deadBefore reports whether addr crashed at or before the given epoch.
func (l *failLedger) deadBefore(addr string, epoch int64) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	e, ok := l.failedAt[addr]
	return ok && e <= epoch
}

// deadNodeObserver checks every routing step of tagged queries against the
// ledger. Steps of untagged ops (registrations, other tests) are ignored.
type deadNodeObserver struct {
	ledger *failLedger
	starts *sync.Map // query tag → start epoch

	mu         sync.Mutex
	violations []string
}

func (o *deadNodeObserver) NeedsPath() bool { return false }

func (o *deadNodeObserver) OpStep(op *routing.Op, st routing.Step) {
	v, ok := o.starts.Load(op.Tag)
	if !ok {
		return
	}
	if o.ledger.deadBefore(st.Addr, v.(int64)) {
		o.mu.Lock()
		if len(o.violations) < 16 {
			o.violations = append(o.violations,
				fmt.Sprintf("%s query %s stepped on dead node %s (%s)",
					op.System, op.Tag, st.Addr, st.Reason))
		}
		o.mu.Unlock()
	}
}

func (o *deadNodeObserver) OpFinished(*routing.Op, discovery.Cost) {}

// TestCrashStress hammers every Crashable system with concurrent Discover
// traffic while the main goroutine crashes nodes abruptly (FailNode — no
// handover), joins replacements and runs Maintain. Run under -race it
// proves the crash path is safe against concurrent lookups, and the
// epoch-tagged observer proves no query ever routes through or resolves to
// a node that was dead before the query began — the structural guarantee
// of the snapshot-based lookup path.
func TestCrashStress(t *testing.T) {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 0, Max: 100},
		resource.Attribute{Name: "mem", Min: 0, Max: 100},
	)
	dep, err := Build(schema, 64, Options{D: 6, Bits: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		info := resource.Info{
			Attr:  schema.Attributes()[i%2].Name,
			Value: float64(i * 2 % 100),
			Owner: fmt.Sprintf("owner-%02d", i),
		}
		if err := dep.RegisterEverywhere(info); err != nil {
			t.Fatal(err)
		}
	}

	for _, sys := range dep.Systems() {
		cr, ok := sys.(discovery.Crashable)
		if !ok {
			t.Fatalf("%s does not implement discovery.Crashable", sys.Name())
		}
		t.Run(sys.Name(), func(t *testing.T) {
			inst, ok := sys.(routing.Instrumented)
			if !ok {
				t.Fatalf("%s does not implement routing.Instrumented", sys.Name())
			}
			ledger := newFailLedger()
			obs := &deadNodeObserver{ledger: ledger, starts: &sync.Map{}}
			inst.RoutingFabric().Observe(obs)
			defer inst.RoutingFabric().Detach(obs)

			const (
				queryWorkers = 4
				crashCycles  = 20
			)
			var (
				wg        sync.WaitGroup
				done      = make(chan struct{})
				succeeded atomic.Int64
			)
			tolerable := func(err error) bool {
				return strings.Contains(err.Error(), "not a live member") ||
					strings.Contains(err.Error(), "exceeded")
			}
			for w := 0; w < queryWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-done:
							return
						default:
						}
						tag := fmt.Sprintf("crashreq-%d-%d", w, i)
						obs.starts.Store(tag, ledger.now())
						q := resource.Query{
							Requester: tag,
							Subs: []resource.SubQuery{
								{Attr: "cpu", Low: 10, High: 60},
								{Attr: "mem", Low: 20, High: 80},
							},
						}
						res, err := cr.Discover(q)
						obs.starts.Delete(tag)
						if err != nil {
							if !tolerable(err) {
								t.Errorf("Discover: %v", err)
								return
							}
							continue
						}
						if res.Cost.Messages != res.Cost.Hops+res.Cost.Visited {
							t.Errorf("cost invariant broken: %+v", res.Cost)
							return
						}
						succeeded.Add(1)
					}
				}(w)
			}

			// Crash, join a replacement, stabilize; keep going until queries
			// have demonstrably overlapped with the crashing.
			for c := 0; c < crashCycles || succeeded.Load() < queryWorkers; c++ {
				if c > 10000 {
					break // workers erred out; their t.Errorf reports why
				}
				addrs := cr.NodeAddrs()
				if len(addrs) < 16 {
					break
				}
				victim := addrs[(c*31+7)%len(addrs)]
				if _, err := cr.FailNode(victim); err != nil {
					t.Errorf("FailNode(%s): %v", victim, err)
					break
				}
				ledger.recordCrash(victim)
				cr.Maintain()
				if err := cr.AddNode(fmt.Sprintf("crash-%s-%03d", sys.Name(), c)); err != nil {
					t.Errorf("AddNode: %v", err)
					break
				}
				cr.Maintain()
			}
			close(done)
			wg.Wait()

			obs.mu.Lock()
			violations := obs.violations
			obs.mu.Unlock()
			for _, v := range violations {
				t.Error(v)
			}
			if succeeded.Load() == 0 {
				t.Fatal("no query succeeded during crash churn")
			}
			if ledger.now() == 0 {
				t.Fatal("no node was crashed")
			}
		})
	}
}
