package systemtest

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lorm/internal/discovery"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// TestChurnStress hammers every Dynamic system with concurrent Discover and
// Register traffic while a churn goroutine joins, removes and stabilizes
// nodes. Run under -race it proves the snapshot-based lookup path is safe
// against concurrent membership writes: lookups may legitimately fail with
// "not a live member" when their start node departs mid-query, but nothing
// may race, panic, or corrupt results.
func TestChurnStress(t *testing.T) {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 0, Max: 100},
		resource.Attribute{Name: "mem", Min: 0, Max: 100},
	)
	dep, err := Build(schema, 64, Options{D: 6, Bits: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		info := resource.Info{
			Attr:  schema.Attributes()[i%2].Name,
			Value: float64(i * 2 % 100),
			Owner: fmt.Sprintf("owner-%02d", i),
		}
		if err := dep.RegisterEverywhere(info); err != nil {
			t.Fatal(err)
		}
	}

	for _, sys := range dep.Systems() {
		dyn, ok := sys.(discovery.Dynamic)
		if !ok {
			t.Fatalf("%s does not implement discovery.Dynamic", sys.Name())
		}
		t.Run(sys.Name(), func(t *testing.T) {
			// Observers must be safe to drive from concurrent queries too.
			inst, ok := sys.(routing.Instrumented)
			if !ok {
				t.Fatalf("%s does not implement routing.Instrumented", sys.Name())
			}
			sink := routing.NewTraceSink(io.Discard)
			inst.RoutingFabric().Observe(sink)
			defer inst.RoutingFabric().Detach(sink)

			const (
				queryWorkers = 4
				churnCycles  = 25
			)
			var (
				wg        sync.WaitGroup
				done      = make(chan struct{})
				succeeded atomic.Int64
			)
			tolerable := func(err error) bool {
				return strings.Contains(err.Error(), "not a live member")
			}
			for w := 0; w < queryWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-done:
							return
						default:
						}
						q := resource.Query{
							Requester: fmt.Sprintf("req-%d-%d", w, i),
							Subs: []resource.SubQuery{
								{Attr: "cpu", Low: 10, High: 60},
								{Attr: "mem", Low: 20, High: 80},
							},
						}
						res, err := dyn.Discover(q)
						if err != nil {
							if !tolerable(err) {
								t.Errorf("Discover: %v", err)
								return
							}
							continue
						}
						if res.Cost.Messages != res.Cost.Hops+res.Cost.Visited {
							t.Errorf("cost invariant broken: %+v", res.Cost)
							return
						}
						succeeded.Add(1)
						if i%7 == 0 {
							info := resource.Info{Attr: "cpu", Value: float64(i % 100), Owner: q.Requester}
							if _, err := dyn.Register(info); err != nil && !tolerable(err) {
								t.Errorf("Register: %v", err)
								return
							}
						}
					}
				}(w)
			}

			// Churn for a fixed number of cycles, then keep churning until
			// queries have demonstrably overlapped with it (the workers may
			// not be scheduled before the first cycles complete).
			for c := 0; c < churnCycles || succeeded.Load() < queryWorkers; c++ {
				if c > 10000 {
					break // workers erred out; their t.Errorf reports why
				}
				addr := fmt.Sprintf("churn-%s-%03d", sys.Name(), c)
				if err := dyn.AddNode(addr); err != nil {
					t.Errorf("AddNode: %v", err)
					break
				}
				dyn.Maintain()
				if err := dyn.RemoveNode(addr); err != nil {
					t.Errorf("RemoveNode: %v", err)
					break
				}
				dyn.Maintain()
			}
			close(done)
			wg.Wait()
			if succeeded.Load() == 0 {
				t.Fatal("no query succeeded during churn")
			}
			if sink.Err() != nil {
				t.Fatalf("trace sink error: %v", sink.Err())
			}
			if sink.Lines() == 0 {
				t.Fatal("trace sink observed no operations")
			}
		})
	}
}
