// Package systemtest provides shared construction helpers for spinning up
// every registered discovery system — LORM, Mercury, SWORD, MAAN, ART —
// over identical node populations, plus the brute-force oracle. The
// cross-system equivalence tests, the experiment harness's smoke tests and
// the examples all build deployments through these helpers; the set of
// systems itself lives in the registry (registry.go).
package systemtest

import (
	"fmt"
	"math/rand"

	"lorm/internal/art"
	"lorm/internal/core"
	"lorm/internal/discovery"
	"lorm/internal/maan"
	"lorm/internal/mercury"
	"lorm/internal/resource"
	"lorm/internal/sword"
)

// Deployment bundles the registered systems plus the oracle, built over the
// same schema and node count. All holds them in registry order; the typed
// fields exist for tests that poke system-specific surfaces.
type Deployment struct {
	Schema  *resource.Schema
	N       int
	LORM    *core.System
	Mercury *mercury.System
	SWORD   *sword.System
	MAAN    *maan.System
	ART     *art.System
	Oracle  *discovery.Oracle

	All []discovery.System
}

// Addresses returns the canonical synthetic node addresses node-0000…
func Addresses(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%04d", i)
	}
	return out
}

// Options tunes a deployment.
type Options struct {
	// D is the Cycloid dimension for LORM (default 8).
	D int
	// Bits is the Chord identifier width (default 20).
	Bits uint
	// CompleteLORM populates every Cycloid slot instead of hashing the
	// shared addresses; n is then forced to d·2^d.
	CompleteLORM bool
	// SkipMercury elides the (m-ring) Mercury deployment when an
	// experiment does not need it — constructing m rings dominates setup
	// time for large m.
	SkipMercury bool
	// FingerRng, when non-nil, switches the Chord-based systems (SWORD,
	// MAAN, ART's fallback ring) to ReCord-style randomized finger
	// selection, each entry drawn uniformly from its finger interval
	// instead of taking the interval's first successor.
	FingerRng *rand.Rand
}

// Build constructs every registered (non-skipped) system over n shared node
// addresses.
func Build(schema *resource.Schema, n int, opts Options) (*Deployment, error) {
	if opts.D == 0 {
		opts.D = 8
	}
	if opts.Bits == 0 {
		opts.Bits = 20
	}
	d := &Deployment{Schema: schema, N: n, Oracle: discovery.NewOracle(schema)}
	addrs := Addresses(n)
	for _, spec := range registry {
		if spec.Skipped != nil && spec.Skipped(opts) {
			continue
		}
		sys, err := spec.Build(d, schema, addrs, opts)
		if err != nil {
			return nil, fmt.Errorf("systemtest: build %s: %w", spec.Name, err)
		}
		d.All = append(d.All, sys)
	}
	return d, nil
}

// Systems returns the constructed systems (excluding the oracle) in
// registry order, skipping any that were elided.
func (d *Deployment) Systems() []discovery.System {
	return append([]discovery.System(nil), d.All...)
}

// RegisterEverywhere registers the info in every system and the oracle.
func (d *Deployment) RegisterEverywhere(info resource.Info) error {
	if _, err := d.Oracle.Register(info); err != nil {
		return err
	}
	for _, s := range d.Systems() {
		if _, err := s.Register(info); err != nil {
			return fmt.Errorf("%s: %w", s.Name(), err)
		}
	}
	return nil
}
