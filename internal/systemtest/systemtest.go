// Package systemtest provides shared construction helpers for spinning up
// all four discovery systems — LORM, Mercury, SWORD, MAAN — over identical
// node populations, plus the brute-force oracle. The cross-system
// equivalence tests, the experiment harness's smoke tests and the examples
// all build deployments through these helpers.
package systemtest

import (
	"fmt"
	"math/rand"

	"lorm/internal/core"
	"lorm/internal/discovery"
	"lorm/internal/maan"
	"lorm/internal/mercury"
	"lorm/internal/resource"
	"lorm/internal/sword"
)

// Deployment bundles the four systems plus the oracle, built over the same
// schema and node count.
type Deployment struct {
	Schema  *resource.Schema
	N       int
	LORM    *core.System
	Mercury *mercury.System
	SWORD   *sword.System
	MAAN    *maan.System
	Oracle  *discovery.Oracle
}

// Addresses returns the canonical synthetic node addresses node-0000…
func Addresses(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%04d", i)
	}
	return out
}

// Options tunes a deployment.
type Options struct {
	// D is the Cycloid dimension for LORM (default 8).
	D int
	// Bits is the Chord identifier width (default 20).
	Bits uint
	// CompleteLORM populates every Cycloid slot instead of hashing the
	// shared addresses; n is then forced to d·2^d.
	CompleteLORM bool
	// SkipMercury elides the (m-ring) Mercury deployment when an
	// experiment does not need it — constructing m rings dominates setup
	// time for large m.
	SkipMercury bool
	// FingerRng, when non-nil, switches the Chord-based systems (SWORD,
	// MAAN) to ReCord-style randomized finger selection, each entry drawn
	// uniformly from its finger interval instead of taking the interval's
	// first successor.
	FingerRng *rand.Rand
}

// Build constructs all systems over n shared node addresses.
func Build(schema *resource.Schema, n int, opts Options) (*Deployment, error) {
	if opts.D == 0 {
		opts.D = 8
	}
	if opts.Bits == 0 {
		opts.Bits = 20
	}
	d := &Deployment{Schema: schema, N: n, Oracle: discovery.NewOracle(schema)}
	addrs := Addresses(n)

	l, err := core.New(core.Config{D: opts.D, Schema: schema})
	if err != nil {
		return nil, err
	}
	if opts.CompleteLORM {
		if err := l.PopulateComplete(); err != nil {
			return nil, err
		}
	} else if err := l.AddNodes(addrs); err != nil {
		return nil, err
	}
	d.LORM = l

	if !opts.SkipMercury {
		m, err := mercury.New(mercury.Config{Bits: opts.Bits, Schema: schema})
		if err != nil {
			return nil, err
		}
		if err := m.AddNodes(addrs); err != nil {
			return nil, err
		}
		d.Mercury = m
	}

	s, err := sword.New(sword.Config{Bits: opts.Bits, Schema: schema, FingerRng: opts.FingerRng})
	if err != nil {
		return nil, err
	}
	if err := s.AddNodes(addrs); err != nil {
		return nil, err
	}
	d.SWORD = s

	a, err := maan.New(maan.Config{Bits: opts.Bits, Schema: schema, FingerRng: opts.FingerRng})
	if err != nil {
		return nil, err
	}
	if err := a.AddNodes(addrs); err != nil {
		return nil, err
	}
	d.MAAN = a
	return d, nil
}

// Systems returns the constructed systems (excluding the oracle), skipping
// any that were elided.
func (d *Deployment) Systems() []discovery.System {
	out := []discovery.System{d.LORM}
	if d.Mercury != nil {
		out = append(out, d.Mercury)
	}
	out = append(out, d.SWORD, d.MAAN)
	return out
}

// RegisterEverywhere registers the info in every system and the oracle.
func (d *Deployment) RegisterEverywhere(info resource.Info) error {
	if _, err := d.Oracle.Register(info); err != nil {
		return err
	}
	for _, s := range d.Systems() {
		if _, err := s.Register(info); err != nil {
			return fmt.Errorf("%s: %w", s.Name(), err)
		}
	}
	return nil
}
