package systemtest

import (
	"lorm/internal/art"
	"lorm/internal/core"
	"lorm/internal/discovery"
	"lorm/internal/maan"
	"lorm/internal/mercury"
	"lorm/internal/resource"
	"lorm/internal/sword"
)

// SystemSpec is one entry of the deployment registry: everything the shared
// builder needs to construct and populate one discovery system. Adding a
// system to the comparison means appending one spec here — Build, the
// equivalence and replication property tests, and every registry-driven
// experiment table pick it up without further changes.
type SystemSpec struct {
	// Name is the system's discovery.System name ("lorm", "art", ...).
	Name string
	// Skipped reports whether the options elide this system from a build.
	Skipped func(Options) bool
	// Build constructs the system over the shared addresses, populates it,
	// and assigns the Deployment's typed field.
	Build func(d *Deployment, schema *resource.Schema, addrs []string, opts Options) (discovery.System, error)
}

// registry lists every system of the comparison in deployment (and table
// column) order: the paper's four, then ART, the sub-logarithmic fifth.
var registry = []SystemSpec{
	{
		Name: "lorm",
		Build: func(d *Deployment, schema *resource.Schema, addrs []string, opts Options) (discovery.System, error) {
			l, err := core.New(core.Config{D: opts.D, Schema: schema})
			if err != nil {
				return nil, err
			}
			if opts.CompleteLORM {
				if err := l.PopulateComplete(); err != nil {
					return nil, err
				}
			} else if err := l.AddNodes(addrs); err != nil {
				return nil, err
			}
			d.LORM = l
			return l, nil
		},
	},
	{
		Name:    "mercury",
		Skipped: func(opts Options) bool { return opts.SkipMercury },
		Build: func(d *Deployment, schema *resource.Schema, addrs []string, opts Options) (discovery.System, error) {
			m, err := mercury.New(mercury.Config{Bits: opts.Bits, Schema: schema})
			if err != nil {
				return nil, err
			}
			if err := m.AddNodes(addrs); err != nil {
				return nil, err
			}
			d.Mercury = m
			return m, nil
		},
	},
	{
		Name: "sword",
		Build: func(d *Deployment, schema *resource.Schema, addrs []string, opts Options) (discovery.System, error) {
			s, err := sword.New(sword.Config{Bits: opts.Bits, Schema: schema, FingerRng: opts.FingerRng})
			if err != nil {
				return nil, err
			}
			if err := s.AddNodes(addrs); err != nil {
				return nil, err
			}
			d.SWORD = s
			return s, nil
		},
	},
	{
		Name: "maan",
		Build: func(d *Deployment, schema *resource.Schema, addrs []string, opts Options) (discovery.System, error) {
			a, err := maan.New(maan.Config{Bits: opts.Bits, Schema: schema, FingerRng: opts.FingerRng})
			if err != nil {
				return nil, err
			}
			if err := a.AddNodes(addrs); err != nil {
				return nil, err
			}
			d.MAAN = a
			return a, nil
		},
	},
	{
		Name: "art",
		Build: func(d *Deployment, schema *resource.Schema, addrs []string, opts Options) (discovery.System, error) {
			t, err := art.New(art.Config{Bits: opts.Bits, Schema: schema, FingerRng: opts.FingerRng})
			if err != nil {
				return nil, err
			}
			if err := t.AddNodes(addrs); err != nil {
				return nil, err
			}
			d.ART = t
			return t, nil
		},
	},
}

// Registry returns a copy of the system registry in deployment order.
func Registry() []SystemSpec { return append([]SystemSpec(nil), registry...) }

// Names returns every registered system name in deployment order — the
// canonical column order of multi-system experiment tables.
func Names() []string {
	out := make([]string, len(registry))
	for i, spec := range registry {
		out[i] = spec.Name
	}
	return out
}
