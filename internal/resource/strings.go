package resource

import (
	"fmt"
	"math"
	"sort"
)

// StringDomain supports the paper's string-described attributes
// ("OS=Linux"): an enumerated, totally ordered set of descriptions is
// embedded into a numeric value domain, so the same locality-preserving
// machinery — and hence the same range walks — works for strings. The
// paper folds both cases together: "we use attribute value to represent
// the locality preserving hash value of both attribute value and attribute
// string description".
//
// Descriptions are sorted lexicographically and mapped to the ordinals
// 0..len-1; prefix range queries ("every linux-* variant") become ordinary
// numeric ranges over a contiguous ordinal run.
type StringDomain struct {
	attr   Attribute
	values []string
	index  map[string]int
}

// NewStringDomain builds a domain over the given descriptions. Duplicates
// are rejected; order of the input does not matter (the domain sorts).
func NewStringDomain(name string, descriptions []string) (*StringDomain, error) {
	if name == "" {
		return nil, fmt.Errorf("resource: string domain with empty name")
	}
	if len(descriptions) < 2 {
		return nil, fmt.Errorf("resource: string domain %q needs at least 2 descriptions", name)
	}
	sorted := append([]string(nil), descriptions...)
	sort.Strings(sorted)
	index := make(map[string]int, len(sorted))
	for i, s := range sorted {
		if s == "" {
			return nil, fmt.Errorf("resource: string domain %q has an empty description", name)
		}
		if _, dup := index[s]; dup {
			return nil, fmt.Errorf("resource: string domain %q has duplicate description %q", name, s)
		}
		index[s] = i
	}
	return &StringDomain{
		// The numeric domain is padded by ±0.5 so every ordinal sits strictly
		// inside it and Clamp never moves a legitimate encoding.
		attr:   Attribute{Name: name, Min: -0.5, Max: float64(len(sorted)-1) + 0.5},
		values: sorted,
		index:  index,
	}, nil
}

// MustStringDomain is NewStringDomain that panics on error.
func MustStringDomain(name string, descriptions ...string) *StringDomain {
	d, err := NewStringDomain(name, descriptions)
	if err != nil {
		panic(err)
	}
	return d
}

// Attribute returns the numeric attribute to register in a schema.
func (d *StringDomain) Attribute() Attribute { return d.attr }

// Len returns the number of descriptions.
func (d *StringDomain) Len() int { return len(d.values) }

// Values returns the descriptions in domain order (shared slice; do not
// modify).
func (d *StringDomain) Values() []string { return d.values }

// Encode maps a description to its numeric value.
func (d *StringDomain) Encode(s string) (float64, error) {
	i, ok := d.index[s]
	if !ok {
		return 0, fmt.Errorf("resource: %q is not in string domain %q", s, d.attr.Name)
	}
	return float64(i), nil
}

// MustEncode is Encode that panics on unknown descriptions.
func (d *StringDomain) MustEncode(s string) float64 {
	v, err := d.Encode(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Decode maps a numeric value back to the nearest description.
func (d *StringDomain) Decode(v float64) string {
	i := int(math.Round(v))
	if i < 0 {
		i = 0
	}
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Exact builds a sub-query matching exactly one description.
func (d *StringDomain) Exact(s string) (SubQuery, error) {
	v, err := d.Encode(s)
	if err != nil {
		return SubQuery{}, err
	}
	return SubQuery{Attr: d.attr.Name, Low: v, High: v}, nil
}

// Range builds a sub-query matching every description in the inclusive
// lexicographic interval [from, to].
func (d *StringDomain) Range(from, to string) (SubQuery, error) {
	lo, err := d.Encode(from)
	if err != nil {
		return SubQuery{}, err
	}
	hi, err := d.Encode(to)
	if err != nil {
		return SubQuery{}, err
	}
	if lo > hi {
		return SubQuery{}, fmt.Errorf("resource: string range %q..%q is inverted", from, to)
	}
	return SubQuery{Attr: d.attr.Name, Low: lo, High: hi}, nil
}

// Prefix builds a sub-query matching every description with the given
// prefix — the contiguous ordinal run property of the sorted domain.
func (d *StringDomain) Prefix(prefix string) (SubQuery, error) {
	lo := sort.SearchStrings(d.values, prefix)
	hi := lo
	for hi < len(d.values) && len(d.values[hi]) >= len(prefix) && d.values[hi][:len(prefix)] == prefix {
		hi++
	}
	if lo == hi {
		return SubQuery{}, fmt.Errorf("resource: no description in domain %q has prefix %q", d.attr.Name, prefix)
	}
	return SubQuery{Attr: d.attr.Name, Low: float64(lo), High: float64(hi - 1)}, nil
}
