// Package resource defines the grid resource model of the paper: attributes
// with globally known types and value domains, resource information 3-tuples
// ⟨a, δπ_a, ip_addr⟩, and multi-attribute range queries.
package resource

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute describes one globally known resource attribute type, e.g.
// "cpu" in MHz over [100, 3200] or "memory" in MB over [64, 8192]. Min and
// Max bound the value domain used by the locality-preserving hash.
//
// CDF, when set, is the (strictly monotone) cumulative distribution of the
// attribute's values. The locality-preserving hash then maps a value to
// its quantile rather than to its linear position — MAAN's "uniform
// locality preserving hashing" — so storage load stays balanced under
// skewed value distributions. A nil CDF means linear mapping.
type Attribute struct {
	Name string
	Min  float64
	Max  float64
	CDF  func(v float64) float64
}

// Frac maps a value to its position in [0, 1] within the domain: the
// quantile when a CDF is configured, the linear position otherwise. It is
// monotone in v — the property every range walk depends on.
func (a Attribute) Frac(v float64) float64 {
	v = a.Clamp(v)
	var f float64
	if a.CDF != nil {
		f = a.CDF(v)
	} else {
		f = (v - a.Min) / (a.Max - a.Min)
	}
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Quantile inverts Frac: it returns the value at position f ∈ [0, 1] of
// the domain. With a CDF it bisects (Frac is monotone); without one it is
// the linear interpolation.
func (a Attribute) Quantile(f float64) float64 {
	if f <= 0 {
		return a.Min
	}
	if f >= 1 {
		return a.Max
	}
	if a.CDF == nil {
		return a.Min + f*(a.Max-a.Min)
	}
	lo, hi := a.Min, a.Max
	for i := 0; i < 64 && hi-lo > 1e-12*(a.Max-a.Min); i++ {
		mid := lo + (hi-lo)/2
		if a.Frac(mid) < f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// Validate reports whether the attribute is well formed.
func (a Attribute) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("resource: attribute with empty name")
	}
	if !(a.Min < a.Max) {
		return fmt.Errorf("resource: attribute %q has invalid domain [%v, %v]", a.Name, a.Min, a.Max)
	}
	return nil
}

// Clamp restricts v to the attribute's value domain.
func (a Attribute) Clamp(v float64) float64 {
	if v < a.Min {
		return a.Min
	}
	if v > a.Max {
		return a.Max
	}
	return v
}

// Schema is the globally known set of attribute types, as assumed by the
// paper ("each resource is described by a set of attributes with globally
// known types"). Attribute order is stable: by insertion.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Duplicate names or
// invalid domains are reported as errors.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{index: make(map[string]int, len(attrs))}
	for _, a := range attrs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("resource: duplicate attribute %q", a.Name)
		}
		s.index[a.Name] = len(s.attrs)
		s.attrs = append(s.attrs, a)
	}
	if len(s.attrs) == 0 {
		return nil, fmt.Errorf("resource: schema must declare at least one attribute")
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for tests and examples.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// SyntheticSchema generates m attributes named attr000..attr(m-1), each with
// the value domain [0, span). It reproduces the paper's synthetic workload
// of m = 200 attribute types.
func SyntheticSchema(m int, span float64) *Schema {
	attrs := make([]Attribute, m)
	for i := range attrs {
		attrs[i] = Attribute{Name: fmt.Sprintf("attr%03d", i), Min: 0, Max: span}
	}
	return MustSchema(attrs...)
}

// Len returns the number of attributes m.
func (s *Schema) Len() int { return len(s.attrs) }

// Attributes returns the attributes in stable order. The returned slice is
// shared; callers must not modify it.
func (s *Schema) Attributes() []Attribute { return s.attrs }

// At returns the i-th attribute.
func (s *Schema) At(i int) Attribute { return s.attrs[i] }

// Lookup finds an attribute by name.
func (s *Schema) Lookup(name string) (Attribute, bool) {
	i, ok := s.index[name]
	if !ok {
		return Attribute{}, false
	}
	return s.attrs[i], true
}

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// Info is one piece of resource information: the paper's 3-tuple
// ⟨a, δπ_a, ip_addr(i)⟩ announcing that node Owner has Value of attribute
// Attr available.
type Info struct {
	Attr  string
	Value float64
	Owner string
}

func (in Info) String() string {
	return fmt.Sprintf("<%s, %g, %s>", in.Attr, in.Value, in.Owner)
}

// SubQuery is a query over one attribute. Low == High expresses an exact
// (non-range) query; Low < High expresses the range [Low, High], matching
// the paper's "1GHz ≤ CPU ≤ 1.8GHz" form.
type SubQuery struct {
	Attr string
	Low  float64
	High float64
}

// IsRange reports whether the sub-query covers more than a single value.
func (q SubQuery) IsRange() bool { return q.Low < q.High }

// Matches reports whether a value satisfies the sub-query.
func (q SubQuery) Matches(v float64) bool { return v >= q.Low && v <= q.High }

func (q SubQuery) String() string {
	if q.IsRange() {
		return fmt.Sprintf("%g<=%s<=%g", q.Low, q.Attr, q.High)
	}
	return fmt.Sprintf("%s=%g", q.Attr, q.Low)
}

// Query is a multi-attribute resource query: a set of sub-queries, one per
// attribute, resolved in parallel and joined on the owner address.
type Query struct {
	Subs      []SubQuery
	Requester string // ip_addr(j) of the requesting node
}

// Validate checks the query against a schema: every sub-query must name a
// known attribute (at most once) with a non-empty in-domain interval.
func (q Query) Validate(s *Schema) error {
	if len(q.Subs) == 0 {
		return fmt.Errorf("resource: empty query")
	}
	seen := make(map[string]bool, len(q.Subs))
	for _, sub := range q.Subs {
		a, ok := s.Lookup(sub.Attr)
		if !ok {
			return fmt.Errorf("resource: query on unknown attribute %q", sub.Attr)
		}
		if seen[sub.Attr] {
			return fmt.Errorf("resource: duplicate sub-query for attribute %q", sub.Attr)
		}
		seen[sub.Attr] = true
		if sub.Low > sub.High {
			return fmt.Errorf("resource: sub-query %v has inverted bounds", sub)
		}
		if sub.High < a.Min || sub.Low > a.Max {
			return fmt.Errorf("resource: sub-query %v outside domain [%v, %v]", sub, a.Min, a.Max)
		}
	}
	return nil
}

// IsRange reports whether any sub-query is a range.
func (q Query) IsRange() bool {
	for _, sub := range q.Subs {
		if sub.IsRange() {
			return true
		}
	}
	return false
}

func (q Query) String() string {
	parts := make([]string, len(q.Subs))
	for i, sub := range q.Subs {
		parts[i] = sub.String()
	}
	return strings.Join(parts, " AND ")
}

// JoinOwners performs the database-like "join" operation of the paper: it
// intersects the owner sets of each attribute's matches, returning the
// addresses of nodes that satisfy every sub-query, sorted for determinism.
func JoinOwners(perAttr map[string][]Info) []string {
	if len(perAttr) == 0 {
		return nil
	}
	var counts map[string]int
	first := true
	for _, infos := range perAttr {
		owners := make(map[string]bool, len(infos))
		for _, in := range infos {
			owners[in.Owner] = true
		}
		if first {
			counts = make(map[string]int, len(owners))
			for o := range owners {
				counts[o] = 1
			}
			first = false
			continue
		}
		for o := range owners {
			if _, ok := counts[o]; ok {
				counts[o]++
			}
		}
	}
	need := len(perAttr)
	var joined []string
	for o, c := range counts {
		if c == need {
			joined = append(joined, o)
		}
	}
	sort.Strings(joined)
	return joined
}
