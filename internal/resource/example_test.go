package resource_test

import (
	"fmt"

	"lorm/internal/resource"
)

// The database-like "join" of Section III: owners that satisfy every
// attribute's sub-query.
func ExampleJoinOwners() {
	perAttr := map[string][]resource.Info{
		"cpu": {
			{Attr: "cpu", Value: 1800, Owner: "10.0.0.1"},
			{Attr: "cpu", Value: 2400, Owner: "10.0.0.2"},
		},
		"memory": {
			{Attr: "memory", Value: 4096, Owner: "10.0.0.2"},
			{Attr: "memory", Value: 8192, Owner: "10.0.0.3"},
		},
	}
	fmt.Println(resource.JoinOwners(perAttr))
	// Output: [10.0.0.2]
}

// String-described attributes ("OS=Linux") ride the numeric machinery: the
// sorted domain turns prefix queries into contiguous ordinal ranges.
func ExampleStringDomain() {
	osDom := resource.MustStringDomain("os",
		"windows", "linux-ubuntu", "linux-fedora", "macos")
	sub, _ := osDom.Prefix("linux-")
	fmt.Printf("%s covers ordinals %g..%g\n", sub, sub.Low, sub.High)
	fmt.Println(osDom.Decode(osDom.MustEncode("macos")))
	// Output:
	// 0<=os<=1 covers ordinals 0..1
	// macos
}

func ExampleQuery_Validate() {
	schema := resource.MustSchema(resource.Attribute{Name: "cpu", Min: 100, Max: 3200})
	q := resource.Query{Subs: []resource.SubQuery{{Attr: "cpu", Low: 1000, High: 1800}}}
	fmt.Println(q.Validate(schema), q.IsRange())
	// Output: <nil> true
}
