package resource

import (
	"math"
	"testing"
	"testing/quick"
)

// A toy power-law CDF over [0, 100]: F(v) = sqrt(v/100).
func powAttr() Attribute {
	return Attribute{
		Name: "p", Min: 0, Max: 100,
		CDF: func(v float64) float64 { return math.Sqrt(v / 100) },
	}
}

func TestFracLinearWithoutCDF(t *testing.T) {
	a := Attribute{Name: "x", Min: 100, Max: 300}
	cases := map[float64]float64{100: 0, 200: 0.5, 300: 1, 50: 0, 400: 1}
	for v, want := range cases {
		if got := a.Frac(v); math.Abs(got-want) > 1e-12 {
			t.Errorf("Frac(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestFracUsesCDF(t *testing.T) {
	a := powAttr()
	if got := a.Frac(25); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Frac(25) = %v, want 0.5 (sqrt CDF)", got)
	}
	if a.Frac(-5) != 0 || a.Frac(200) != 1 {
		t.Error("Frac must clamp outside the domain")
	}
}

func TestQuantileInvertsFrac(t *testing.T) {
	for _, a := range []Attribute{powAttr(), {Name: "lin", Min: -10, Max: 10}} {
		for f := 0.0; f <= 1.0; f += 0.05 {
			v := a.Quantile(f)
			if v < a.Min || v > a.Max {
				t.Fatalf("%s: Quantile(%v) = %v outside domain", a.Name, f, v)
			}
			back := a.Frac(v)
			if math.Abs(back-f) > 1e-6 {
				t.Fatalf("%s: Frac(Quantile(%v)) = %v", a.Name, f, back)
			}
		}
	}
}

func TestQuantileEndpoints(t *testing.T) {
	a := powAttr()
	if a.Quantile(0) != a.Min || a.Quantile(-1) != a.Min {
		t.Error("Quantile at/below 0 should be Min")
	}
	if a.Quantile(1) != a.Max || a.Quantile(2) != a.Max {
		t.Error("Quantile at/above 1 should be Max")
	}
}

// Property: Frac is monotone for both linear and CDF attributes.
func TestFracMonotoneProperty(t *testing.T) {
	a := powAttr()
	f := func(x, y uint16) bool {
		vx, vy := float64(x)/655.35, float64(y)/655.35 // [0, 100]
		if vx > vy {
			vx, vy = vy, vx
		}
		return a.Frac(vx) <= a.Frac(vy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
