package resource

import (
	"reflect"
	"strings"
	"testing"
)

func TestAttributeValidate(t *testing.T) {
	cases := []struct {
		attr Attribute
		ok   bool
	}{
		{Attribute{Name: "cpu", Min: 0, Max: 3200}, true},
		{Attribute{Name: "", Min: 0, Max: 1}, false},
		{Attribute{Name: "x", Min: 1, Max: 1}, false},
		{Attribute{Name: "x", Min: 2, Max: 1}, false},
	}
	for _, c := range cases {
		err := c.attr.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) error=%v, want ok=%v", c.attr, err, c.ok)
		}
	}
}

func TestAttributeClamp(t *testing.T) {
	a := Attribute{Name: "mem", Min: 64, Max: 8192}
	if got := a.Clamp(10); got != 64 {
		t.Errorf("Clamp(10) = %v, want 64", got)
	}
	if got := a.Clamp(9000); got != 8192 {
		t.Errorf("Clamp(9000) = %v, want 8192", got)
	}
	if got := a.Clamp(1024); got != 1024 {
		t.Errorf("Clamp(1024) = %v, want 1024", got)
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should error")
	}
	if _, err := NewSchema(Attribute{Name: "a", Min: 0, Max: 1}, Attribute{Name: "a", Min: 0, Max: 1}); err == nil {
		t.Error("duplicate attribute should error")
	}
	if _, err := NewSchema(Attribute{Name: "a", Min: 3, Max: 1}); err == nil {
		t.Error("invalid domain should error")
	}
}

func TestSchemaLookupAndOrder(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "cpu", Min: 100, Max: 3200},
		Attribute{Name: "mem", Min: 64, Max: 8192},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.At(0).Name != "cpu" || s.At(1).Name != "mem" {
		t.Fatalf("attribute order not stable: %v", s.Attributes())
	}
	if a, ok := s.Lookup("mem"); !ok || a.Max != 8192 {
		t.Fatalf("Lookup(mem) = %+v, %v", a, ok)
	}
	if _, ok := s.Lookup("disk"); ok {
		t.Fatal("Lookup(disk) should miss")
	}
	if s.Index("mem") != 1 || s.Index("nope") != -1 {
		t.Fatalf("Index wrong: mem=%d nope=%d", s.Index("mem"), s.Index("nope"))
	}
}

func TestSyntheticSchema(t *testing.T) {
	s := SyntheticSchema(200, 500)
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	a := s.At(57)
	if a.Name != "attr057" || a.Min != 0 || a.Max != 500 {
		t.Fatalf("At(57) = %+v", a)
	}
}

func TestSubQuery(t *testing.T) {
	exact := SubQuery{Attr: "cpu", Low: 1800, High: 1800}
	if exact.IsRange() {
		t.Error("exact query reported as range")
	}
	if !exact.Matches(1800) || exact.Matches(1801) {
		t.Error("exact match wrong")
	}
	rng := SubQuery{Attr: "cpu", Low: 1000, High: 1800}
	if !rng.IsRange() {
		t.Error("range query not reported as range")
	}
	for v, want := range map[float64]bool{999: false, 1000: true, 1500: true, 1800: true, 1801: false} {
		if got := rng.Matches(v); got != want {
			t.Errorf("Matches(%v) = %v, want %v", v, got, want)
		}
	}
	if got := rng.String(); got != "1000<=cpu<=1800" {
		t.Errorf("String() = %q", got)
	}
}

func TestQueryValidate(t *testing.T) {
	s := MustSchema(Attribute{Name: "cpu", Min: 100, Max: 3200})
	cases := []struct {
		q  Query
		ok bool
	}{
		{Query{Subs: []SubQuery{{Attr: "cpu", Low: 1000, High: 1800}}}, true},
		{Query{}, false},
		{Query{Subs: []SubQuery{{Attr: "gpu", Low: 1, High: 2}}}, false},
		{Query{Subs: []SubQuery{{Attr: "cpu", Low: 2, High: 1}}}, false},
		{Query{Subs: []SubQuery{{Attr: "cpu", Low: 4000, High: 5000}}}, false},
		{Query{Subs: []SubQuery{{Attr: "cpu", Low: 1000, High: 1100}, {Attr: "cpu", Low: 1, High: 2}}}, false},
	}
	for i, c := range cases {
		err := c.q.Validate(s)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate(%v) error=%v, want ok=%v", i, c.q, err, c.ok)
		}
	}
}

func TestQueryIsRangeAndString(t *testing.T) {
	q := Query{Subs: []SubQuery{
		{Attr: "cpu", Low: 1800, High: 1800},
		{Attr: "mem", Low: 1024, High: 2048},
	}}
	if !q.IsRange() {
		t.Error("query with a range sub-query should be range")
	}
	if s := q.String(); !strings.Contains(s, " AND ") {
		t.Errorf("String() = %q, want AND-joined", s)
	}
	exact := Query{Subs: []SubQuery{{Attr: "cpu", Low: 1, High: 1}}}
	if exact.IsRange() {
		t.Error("all-exact query reported as range")
	}
}

func TestJoinOwners(t *testing.T) {
	perAttr := map[string][]Info{
		"cpu": {
			{Attr: "cpu", Value: 1800, Owner: "node-a"},
			{Attr: "cpu", Value: 2000, Owner: "node-b"},
			{Attr: "cpu", Value: 2000, Owner: "node-b"}, // duplicate piece
		},
		"mem": {
			{Attr: "mem", Value: 2048, Owner: "node-b"},
			{Attr: "mem", Value: 4096, Owner: "node-c"},
		},
	}
	if got := JoinOwners(perAttr); !reflect.DeepEqual(got, []string{"node-b"}) {
		t.Fatalf("JoinOwners = %v, want [node-b]", got)
	}
}

func TestJoinOwnersEdgeCases(t *testing.T) {
	if got := JoinOwners(nil); got != nil {
		t.Errorf("JoinOwners(nil) = %v, want nil", got)
	}
	one := map[string][]Info{"cpu": {{Owner: "z"}, {Owner: "a"}}}
	if got := JoinOwners(one); !reflect.DeepEqual(got, []string{"a", "z"}) {
		t.Errorf("single-attribute join = %v, want sorted owners", got)
	}
	disjoint := map[string][]Info{
		"cpu": {{Owner: "a"}},
		"mem": {{Owner: "b"}},
	}
	if got := JoinOwners(disjoint); len(got) != 0 {
		t.Errorf("disjoint join = %v, want empty", got)
	}
}

func TestInfoString(t *testing.T) {
	in := Info{Attr: "mem", Value: 2048, Owner: "10.0.0.7"}
	if got := in.String(); got != "<mem, 2048, 10.0.0.7>" {
		t.Errorf("String() = %q", got)
	}
}
