package resource

import (
	"testing"
)

func osDomain(t *testing.T) *StringDomain {
	t.Helper()
	d, err := NewStringDomain("os", []string{"windows", "linux-ubuntu", "linux-fedora", "macos", "freebsd"})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewStringDomainValidation(t *testing.T) {
	if _, err := NewStringDomain("", []string{"a", "b"}); err == nil {
		t.Error("empty name should error")
	}
	if _, err := NewStringDomain("os", []string{"solo"}); err == nil {
		t.Error("single description should error")
	}
	if _, err := NewStringDomain("os", []string{"a", "a"}); err == nil {
		t.Error("duplicate description should error")
	}
	if _, err := NewStringDomain("os", []string{"a", ""}); err == nil {
		t.Error("empty description should error")
	}
}

func TestStringDomainOrderAndRoundTrip(t *testing.T) {
	d := osDomain(t)
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Sorted lexicographically.
	vals := d.Values()
	for i := 1; i < len(vals); i++ {
		if vals[i-1] >= vals[i] {
			t.Fatalf("values not sorted: %v", vals)
		}
	}
	for _, s := range vals {
		v, err := d.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Decode(v); got != s {
			t.Fatalf("Decode(Encode(%q)) = %q", s, got)
		}
	}
	if _, err := d.Encode("plan9"); err == nil {
		t.Fatal("unknown description should error")
	}
	if got := d.Decode(-10); got != vals[0] {
		t.Fatalf("Decode below domain = %q", got)
	}
	if got := d.Decode(99); got != vals[len(vals)-1] {
		t.Fatalf("Decode above domain = %q", got)
	}
}

func TestStringDomainAttributeValid(t *testing.T) {
	d := osDomain(t)
	a := d.Attribute()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every encoding lies strictly inside the domain (Clamp is identity).
	for _, s := range d.Values() {
		v := d.MustEncode(s)
		if a.Clamp(v) != v {
			t.Fatalf("encoding of %q clamped", s)
		}
	}
}

func TestStringExactAndRange(t *testing.T) {
	d := osDomain(t)
	sub, err := d.Exact("macos")
	if err != nil {
		t.Fatal(err)
	}
	if sub.IsRange() || !sub.Matches(d.MustEncode("macos")) || sub.Matches(d.MustEncode("freebsd")) {
		t.Fatalf("Exact sub-query wrong: %+v", sub)
	}
	rng, err := d.Range("freebsd", "linux-ubuntu")
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, s := range d.Values() {
		if rng.Matches(d.MustEncode(s)) {
			hits++
		}
	}
	if hits != 3 { // freebsd, linux-fedora, linux-ubuntu
		t.Fatalf("range matched %d descriptions, want 3", hits)
	}
	if _, err := d.Range("macos", "freebsd"); err == nil {
		t.Fatal("inverted range should error")
	}
	if _, err := d.Range("plan9", "macos"); err == nil {
		t.Fatal("unknown bound should error")
	}
}

func TestStringPrefix(t *testing.T) {
	d := osDomain(t)
	sub, err := d.Prefix("linux-")
	if err != nil {
		t.Fatal(err)
	}
	var matched []string
	for _, s := range d.Values() {
		if sub.Matches(d.MustEncode(s)) {
			matched = append(matched, s)
		}
	}
	if len(matched) != 2 || matched[0] != "linux-fedora" || matched[1] != "linux-ubuntu" {
		t.Fatalf("prefix matched %v", matched)
	}
	if _, err := d.Prefix("plan9"); err == nil {
		t.Fatal("unmatched prefix should error")
	}
}

func TestMustStringDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustStringDomain should panic on invalid input")
		}
	}()
	MustStringDomain("os", "only-one")
}
