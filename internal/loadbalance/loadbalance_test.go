package loadbalance

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lorm/internal/chord"
	"lorm/internal/cycloid"
	"lorm/internal/directory"
	"lorm/internal/discovery"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

func TestLedgerChargesSteps(t *testing.T) {
	f := routing.NewFabric("test")
	var l Ledger
	f.Observe(&l)
	op := f.Begin(routing.OpDiscover, "q1")
	op.Forward("a", 1, routing.ReasonFingerForward)
	op.Forward("b", 2, routing.ReasonRangeWalk)
	op.Forward("a", 1, routing.ReasonDetour)
	op.Visit("b", 2)
	op.Visit("c", 3)
	op.Finish()
	if got := l.Tally("a"); got != (Tally{Forwards: 2}) {
		t.Fatalf("Tally(a) = %+v", got)
	}
	if got := l.Tally("b"); got != (Tally{Visits: 1, Forwards: 1}) {
		t.Fatalf("Tally(b) = %+v", got)
	}
	if got := l.Tally("c"); got != (Tally{Visits: 1}) || got.Total() != 1 {
		t.Fatalf("Tally(c) = %+v", got)
	}
	if got := l.Tally("missing"); got != (Tally{}) {
		t.Fatalf("Tally(missing) = %+v", got)
	}
	if l.NeedsPath() {
		t.Fatal("ledger must not force path recording")
	}
	if len(op.Path()) != 0 {
		t.Fatal("attaching only the ledger should keep ops counter-only")
	}
	snap := l.Snapshot()
	if len(snap) != 3 || snap["a"].Forwards != 2 {
		t.Fatalf("Snapshot = %v", snap)
	}
	vl := l.VisitLoads([]string{"a", "b", "c", "d"})
	want := []int{0, 1, 1, 0}
	for i, nl := range vl {
		if nl.Entries != want[i] {
			t.Fatalf("VisitLoads[%d] = %+v, want %d", i, nl, want[i])
		}
	}
	l.Reset()
	if got := l.Tally("a"); got != (Tally{}) {
		t.Fatalf("after Reset Tally(a) = %+v", got)
	}
}

func loadsOf(entries ...int) []discovery.NodeLoad {
	out := make([]discovery.NodeLoad, len(entries))
	for i, e := range entries {
		out[i] = discovery.NodeLoad{Addr: fmt.Sprintf("n%02d", i), Entries: e}
	}
	return out
}

func TestAnalyze(t *testing.T) {
	if rep := Analyze(nil, 3); rep.Nodes != 0 || rep.Gini != 0 {
		t.Fatalf("empty Analyze = %+v", rep)
	}
	rep := Analyze(loadsOf(5, 5, 5, 5), 2)
	if rep.MaxMean != 1 || rep.Gini != 0 || rep.MeanEntries != 5 || rep.TotalEntries != 20 {
		t.Fatalf("even Analyze = %+v", rep)
	}
	// One node holds everything: max/mean = n, Gini = (n-1)/n.
	rep = Analyze(loadsOf(0, 0, 0, 12), 2)
	if rep.MaxMean != 4 || math.Abs(rep.Gini-0.75) > 1e-12 {
		t.Fatalf("concentrated Analyze = %+v", rep)
	}
	if len(rep.Hotspots) != 2 || rep.Hotspots[0].Addr != "n03" || rep.Hotspots[0].Entries != 12 {
		t.Fatalf("Hotspots = %v", rep.Hotspots)
	}
	// Known Gini for {1,2,3,4}: 2·(1·1+2·2+3·3+4·4)/(4·10) − 5/4 = 0.25.
	rep = Analyze(loadsOf(4, 2, 1, 3), 1)
	if math.Abs(rep.Gini-0.25) > 1e-12 {
		t.Fatalf("Gini{1..4} = %v, want 0.25", rep.Gini)
	}
	if rep.Hotspots[0].Entries != 4 {
		t.Fatalf("Hotspots = %v", rep.Hotspots)
	}
	// topK larger than n clamps.
	if rep := Analyze(loadsOf(1, 2), 10); len(rep.Hotspots) != 2 {
		t.Fatalf("clamped Hotspots = %v", rep.Hotspots)
	}
}

// skewedRing builds a chord ring and piles extra entries into one node's
// key interval, spread over many key-groups so migration can split it.
func skewedRing(t *testing.T, nNodes, baseline, pileup int) *chord.Ring {
	t.Helper()
	r := chord.New(chord.Config{Bits: 20})
	addrs := make([]string, nNodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := r.AddBulk(addrs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	nodes := r.Nodes()
	for i := 0; i < baseline; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		e := directory.Entry{Key: key, Info: resource.Info{Attr: "a", Value: float64(i), Owner: "o"}}
		if _, err := r.Insert(nodes[0], key, e); err != nil {
			t.Fatal(err)
		}
	}
	// Pile entries into node[4]'s interval: keys spread uniformly between
	// its predecessor's ID (exclusive) and its own ID (inclusive).
	hot := nodes[4]
	pred := nodes[3]
	gap := r.Space().Clockwise(pred.ID, hot.ID)
	for i := 0; i < pileup; i++ {
		key := r.Space().Add(pred.ID, 1+rng.Uint64()%gap)
		e := directory.Entry{Key: key, Info: resource.Info{Attr: "a", Value: float64(i), Owner: "h"}}
		if _, err := r.Insert(nodes[0], key, e); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func chordTotal(r *chord.Ring) int {
	total := 0
	for _, sz := range r.DirectorySizes() {
		total += sz
	}
	return total
}

func TestRebalanceChordReducesImbalance(t *testing.T) {
	r := skewedRing(t, 16, 160, 400)
	m := chordMigrator{r: r}
	before := Analyze(m.Loads(), 3)
	if before.MaxMean < 2 {
		t.Fatalf("setup not skewed enough: %+v", before)
	}
	total := chordTotal(r)
	stats := RebalanceChord(r, Options{})
	if stats.Passes != 1 || stats.Migrations == 0 || stats.EntriesMoved == 0 {
		t.Fatalf("stats = %+v, want at least one migration", stats)
	}
	after := Analyze(m.Loads(), 3)
	if after.MaxMean >= before.MaxMean {
		t.Fatalf("max/mean did not improve: %.3f -> %.3f", before.MaxMean, after.MaxMean)
	}
	if after.Gini >= before.Gini {
		t.Fatalf("Gini did not improve: %.3f -> %.3f", before.Gini, after.Gini)
	}
	if got := chordTotal(r); got != total {
		t.Fatalf("entries not conserved: %d -> %d", total, got)
	}
	// Every entry still sits on its oracle owner.
	for _, n := range r.Nodes() {
		for _, e := range n.Dir.Snapshot() {
			owner, _ := r.OwnerOf(e.Key)
			if owner != n {
				t.Fatalf("entry key %d on %s, oracle owner %s", e.Key, n.Addr, owner.Addr)
			}
		}
	}
	// Lookups still resolve after the moves.
	rng := rand.New(rand.NewSource(78))
	nodes := r.Nodes()
	for i := 0; i < 200; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		route, err := r.Lookup(nodes[rng.Intn(len(nodes))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := r.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-rebalance Lookup(%d) mismatch", key)
		}
	}
}

// A single-key pileup (the SWORD attribute-pool shape) is indivisible: the
// planner must report it blocked, move nothing, and terminate.
func TestRebalanceChordSingleKeyPoolBlocked(t *testing.T) {
	r := chord.New(chord.Config{Bits: 20})
	addrs := make([]string, 10)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := r.AddBulk(addrs); err != nil {
		t.Fatal(err)
	}
	nodes := r.Nodes()
	key := nodes[5].ID // pool lands exactly on node 5
	for i := 0; i < 100; i++ {
		e := directory.Entry{Key: key, Info: resource.Info{Attr: "cpu", Value: float64(i), Owner: "o"}}
		if _, err := r.Insert(nodes[0], key, e); err != nil {
			t.Fatal(err)
		}
	}
	stats := RebalanceChord(r, Options{})
	if stats.Migrations != 0 || stats.EntriesMoved != 0 {
		t.Fatalf("indivisible pool migrated: %+v", stats)
	}
	if stats.Blocked == 0 {
		t.Fatalf("pool not reported blocked: %+v", stats)
	}
	if got := nodes[5].Dir.Len(); got != 100 {
		t.Fatalf("pool moved off its node: %d entries left", got)
	}
}

func TestRebalanceCycloidReducesImbalance(t *testing.T) {
	o := cycloid.MustNew(cycloid.Config{D: 6}) // capacity 384
	addrs := make([]string, 24)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := o.AddBulk(addrs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	nodes := o.Nodes()
	for i := 0; i < 150; i++ {
		key := o.IDOf(rng.Uint64() % o.Capacity())
		e := directory.Entry{Key: o.Pos(key), Info: resource.Info{Attr: "a", Value: float64(i), Owner: "o"}}
		if _, err := o.Insert(nodes[0], key, e); err != nil {
			t.Fatal(err)
		}
	}
	// Pile into node[7]'s interval.
	hot := nodes[7]
	pred := nodes[6]
	gap := (hot.Pos + o.Capacity() - pred.Pos) % o.Capacity()
	if gap < 2 {
		t.Skip("nodes adjacent; no splittable interval")
	}
	for i := 0; i < 300; i++ {
		pos := (pred.Pos + 1 + rng.Uint64()%gap) % o.Capacity()
		e := directory.Entry{Key: pos, Info: resource.Info{Attr: "a", Value: float64(i), Owner: "h"}}
		if _, err := o.Insert(nodes[0], o.IDOf(pos), e); err != nil {
			t.Fatal(err)
		}
	}
	m := cycloidMigrator{o: o}
	before := Analyze(m.Loads(), 3)
	stats := RebalanceCycloid(o, Options{})
	if stats.Migrations == 0 {
		t.Fatalf("no migrations: %+v (before %+v)", stats, before)
	}
	after := Analyze(m.Loads(), 3)
	if after.MaxMean >= before.MaxMean {
		t.Fatalf("max/mean did not improve: %.3f -> %.3f", before.MaxMean, after.MaxMean)
	}
	total := 0
	for _, sz := range o.DirectorySizes() {
		total += sz
	}
	if total != 450 {
		t.Fatalf("entries not conserved: %d", total)
	}
	for _, n := range o.Nodes() {
		for _, e := range n.Dir.Snapshot() {
			owner, _ := o.OwnerOf(o.IDOf(e.Key))
			if owner != n {
				t.Fatalf("entry key %d on %s, oracle owner %s", e.Key, n.Addr, owner.Addr)
			}
		}
	}
}

// On a complete cycloid overlay there is no free identifier anywhere, so
// every hotspot is structurally blocked.
func TestRebalanceCycloidCompleteOverlayBlocked(t *testing.T) {
	o := cycloid.MustNew(cycloid.Config{D: 4}) // 64 nodes, complete
	if err := o.AddComplete(); err != nil {
		t.Fatal(err)
	}
	nodes := o.Nodes()
	for i := 0; i < 64; i++ {
		e := directory.Entry{Key: nodes[3].Pos, Info: resource.Info{Attr: "a", Value: float64(i), Owner: "o"}}
		if _, err := o.Insert(nodes[0], nodes[3].ID, e); err != nil {
			t.Fatal(err)
		}
	}
	stats := RebalanceCycloid(o, Options{})
	if stats.Migrations != 0 || stats.Blocked == 0 {
		t.Fatalf("complete overlay rebalance = %+v, want blocked only", stats)
	}
}
