// Package loadbalance is the load-accounting and item-migration subsystem:
// a per-node traffic ledger fed by the routing fabric, an imbalance
// detector over per-node directory loads, and a neighbor item-migration
// planner that sheds key intervals from hotspot nodes to their ring
// neighbors through the chord/cycloid boundary-move primitives.
//
// The paper classifies SWORD as "centralized" because every value of an
// attribute lands on the single node owning H(attr); this package turns
// that footnote into a measurement. Storage load is reported per node
// (Report), and the migration planner operates at key-group granularity —
// all entries under one overlay key are indivisible, so a SWORD attribute
// pool can never be split between nodes and its hotspots show up as
// `blocked` in MigrationStats rather than being quietly balanced away.
package loadbalance

import (
	"sync"
	"sync/atomic"

	"lorm/internal/discovery"
	"lorm/internal/routing"
)

// Tally is one node's accumulated traffic: directory visits (the node
// checked its directory and replied) and routing forwards (the node relayed
// someone else's operation).
type Tally struct {
	Visits   uint64
	Forwards uint64
}

// Total returns the node's total message handling load.
func (t Tally) Total() uint64 { return t.Visits + t.Forwards }

// Ledger is a per-node traffic ledger. Attach it to a system's routing
// fabric (Fabric.Observe) and every operation's steps are charged to the
// nodes that served them. The record path is lock-free — one sync.Map probe
// plus one atomic add — and it reports NeedsPath() == false, so attaching a
// Ledger never forces hop-path recording on the lookup fast path. Reads are
// O(1) per node (two atomic loads, no locks).
type Ledger struct {
	m sync.Map // addr -> *tally
}

type tally struct {
	visits   atomic.Uint64
	forwards atomic.Uint64
}

func (l *Ledger) at(addr string) *tally {
	if t, ok := l.m.Load(addr); ok {
		return t.(*tally)
	}
	t, _ := l.m.LoadOrStore(addr, &tally{})
	return t.(*tally)
}

// OpStep implements routing.Observer: each step is charged to the node that
// handled it.
func (l *Ledger) OpStep(_ *routing.Op, st routing.Step) {
	t := l.at(st.Addr)
	if st.Reason.Forwards() {
		t.forwards.Add(1)
	} else {
		t.visits.Add(1)
	}
}

// OpFinished implements routing.Observer; the ledger accounts per step.
func (l *Ledger) OpFinished(*routing.Op, discovery.Cost) {}

// NeedsPath implements routing.PathSkipper: the ledger reads steps as they
// happen and never consults op.Path().
func (l *Ledger) NeedsPath() bool { return false }

// Tally returns one node's accumulated traffic. O(1).
func (l *Ledger) Tally(addr string) Tally {
	t, ok := l.m.Load(addr)
	if !ok {
		return Tally{}
	}
	tl := t.(*tally)
	return Tally{Visits: tl.visits.Load(), Forwards: tl.forwards.Load()}
}

// Snapshot returns every node's tally. Concurrent recording may be torn
// across nodes (each node's pair is read atomically).
func (l *Ledger) Snapshot() map[string]Tally {
	out := make(map[string]Tally)
	l.m.Range(func(k, v any) bool {
		tl := v.(*tally)
		out[k.(string)] = Tally{Visits: tl.visits.Load(), Forwards: tl.forwards.Load()}
		return true
	})
	return out
}

// VisitLoads converts the ledger's visit counts into the NodeLoad shape the
// detector consumes, so traffic imbalance is analyzable with the same
// Report as storage imbalance. Nodes in addrs with no recorded traffic
// report zero (they are part of the population, not missing data).
func (l *Ledger) VisitLoads(addrs []string) []discovery.NodeLoad {
	out := make([]discovery.NodeLoad, len(addrs))
	for i, a := range addrs {
		out[i] = discovery.NodeLoad{Addr: a, Entries: int(l.Tally(a).Visits)}
	}
	return out
}

// Reset zeroes every tally, keeping the node set.
func (l *Ledger) Reset() {
	l.m.Range(func(_, v any) bool {
		tl := v.(*tally)
		tl.visits.Store(0)
		tl.forwards.Store(0)
		return true
	})
}
