package loadbalance

import "lorm/internal/metrics"

// Process-wide rebalancing counters. Every pass over every system in the
// process aggregates here; cmd/metricscheck cross-checks them against the
// directory handover counters (each migrated entry also passed through
// directory.TakeRange, so entries_moved ≤ directory_entries_handed_over).
var (
	mPasses = metrics.Default().Counter("loadbalance_passes_total",
		"item-migration planner passes executed")
	mMigrations = metrics.Default().Counter("loadbalance_migrations_total",
		"neighbor item migrations (boundary moves) performed")
	mEntriesMoved = metrics.Default().Counter("loadbalance_entries_moved_total",
		"directory entries moved between nodes by rebalancing")
	mBlockedHotspots = metrics.Default().Counter("loadbalance_blocked_hotspots_total",
		"hotspot nodes the planner could not shed anything from")
)
