package loadbalance

import (
	"fmt"
	"io"
	"log/slog"
	"sort"

	"lorm/internal/chord"
	"lorm/internal/cycloid"
	"lorm/internal/directory"
	"lorm/internal/discovery"
)

// Options tunes one migration pass.
type Options struct {
	// Threshold is the max/mean load factor above which a node counts as a
	// hotspot worth shedding. Defaults to 1.2 — below that, a boundary move
	// churns entries for marginal gain.
	Threshold float64
	// MaxMigrations caps boundary moves per pass; ≤ 0 means 2× the node
	// count, enough for the greedy planner to converge on any one sample.
	MaxMigrations int
	// Logger, when non-nil, receives one structured Debug line per executed
	// boundary move and per blocked hotspot. Nil disables event logging.
	Logger *slog.Logger
}

func (o Options) withDefaults(nodes int) Options {
	if o.Threshold <= 0 {
		o.Threshold = 1.2
	}
	if o.MaxMigrations <= 0 {
		o.MaxMigrations = 2 * nodes
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// migrator abstracts the two overlays for the planner: the planner owns
// policy (which hotspot, how much), the adapter owns mechanics (which keys,
// which boundary move).
type migrator interface {
	// Loads returns every node's storage load in ring order.
	Loads() []discovery.NodeLoad
	// Shed plans both shed directions for the named node — a key-interval
	// prefix to its ring predecessor (the predecessor advances) or a suffix
	// to its ring successor (the node retreats) — under the per-direction
	// entry budgets, and executes the larger viable one. It returns the
	// number of entries actually moved; 0 means the node's key-groups fit
	// neither budget (an indivisible pileup).
	Shed(addr string, budgetPred, budgetSucc int) (int, error)
}

// runPass greedily sheds from the hottest node until every node is within
// threshold of the mean, every remaining hotspot is blocked, or the
// migration cap is reached. Each shed moves at most half the load gap to
// the receiving neighbor, so the receiver always stays strictly below the
// hotspot's old load — the global maximum never increases, and any
// successful shed from the maximum node strictly reduces it (entry totals
// are conserved, so the mean is untouched).
func runPass(m migrator, opts Options) discovery.MigrationStats {
	stats := discovery.MigrationStats{Passes: 1}
	mPasses.Inc()
	opts = opts.withDefaults(len(m.Loads()))
	blocked := make(map[string]bool)
	for stats.Migrations < opts.MaxMigrations {
		loads := m.Loads()
		n := len(loads)
		if n < 2 {
			break
		}
		total := 0
		for _, l := range loads {
			total += l.Entries
		}
		if total == 0 {
			break
		}
		mean := float64(total) / float64(n)
		hot := -1
		for i, l := range loads {
			if blocked[l.Addr] || float64(l.Entries) <= opts.Threshold*mean {
				continue
			}
			if hot < 0 || l.Entries > loads[hot].Entries ||
				(l.Entries == loads[hot].Entries && l.Addr < loads[hot].Addr) {
				hot = i
			}
		}
		if hot < 0 {
			break
		}
		h := loads[hot]
		budgetPred := (h.Entries - loads[(hot-1+n)%n].Entries) / 2
		budgetSucc := (h.Entries - loads[(hot+1)%n].Entries) / 2
		moved := 0
		var err error
		if budgetPred > 0 || budgetSucc > 0 {
			moved, err = m.Shed(h.Addr, budgetPred, budgetSucc)
		}
		if err != nil || moved == 0 {
			blocked[h.Addr] = true
			stats.Blocked++
			mBlockedHotspots.Inc()
			opts.Logger.Debug("migration blocked", "node", h.Addr,
				"entries", h.Entries, "mean", mean, "err", err)
			continue
		}
		stats.Migrations++
		stats.EntriesMoved += moved
		mMigrations.Inc()
		mEntriesMoved.Add(uint64(moved))
		opts.Logger.Debug("migration", "node", h.Addr, "moved", moved,
			"entries", h.Entries, "mean", mean)
	}
	return stats
}

// shedPlan picks the boundary for one node's key-groups under both budgets.
// Groups arrive in ring order starting just after the predecessor; ownID
// marks the group stored exactly at the node's own identifier (sheddable
// backward but never forward, since the forward boundary is the node ID
// itself). The returned booleans say whether each direction is viable;
// boundaries are expressed as the identifier the moving node ends up at.
func shedPlan(groups []directory.KeyCount, ownID uint64, budgetPred, budgetSucc int,
	fallbackRetreat uint64, haveFallback bool) (prefMoved int, prefBoundary uint64,
	sufMoved int, sufBoundary uint64) {
	cum := 0
	for _, g := range groups {
		if g.Key == ownID || cum+g.Count > budgetPred {
			break
		}
		cum += g.Count
		prefMoved, prefBoundary = cum, g.Key
	}
	cum = 0
	for k := len(groups) - 1; k >= 0; k-- {
		if cum+groups[k].Count > budgetSucc {
			if cum > 0 {
				sufMoved, sufBoundary = cum, groups[k].Key
			}
			break
		}
		cum += groups[k].Count
		if k == 0 {
			if haveFallback {
				sufMoved, sufBoundary = cum, fallbackRetreat
			} else if len(groups) > 1 {
				// No free identifier before the first group: it stays behind.
				sufMoved, sufBoundary = cum-groups[0].Count, groups[0].Key
			}
		}
	}
	return prefMoved, prefBoundary, sufMoved, sufBoundary
}

// --- Chord ---

type chordMigrator struct{ r *chord.Ring }

func (m chordMigrator) Loads() []discovery.NodeLoad {
	nodes := m.r.Nodes() // ascending ID == ring order
	out := make([]discovery.NodeLoad, len(nodes))
	for i, n := range nodes {
		out[i] = discovery.NodeLoad{Addr: n.Addr, Entries: n.Dir.Len()}
	}
	return out
}

func (m chordMigrator) Shed(addr string, budgetPred, budgetSucc int) (int, error) {
	n, ok := m.r.NodeByAddr(addr)
	if !ok {
		return 0, fmt.Errorf("loadbalance: unknown node %s", addr)
	}
	nodes := m.r.Nodes()
	if len(nodes) < 2 {
		return 0, nil
	}
	idx := -1
	for i, cand := range nodes {
		if cand == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("loadbalance: stale node %s", addr)
	}
	pred := nodes[(idx-1+len(nodes))%len(nodes)]
	groups := n.Dir.KeyCounts()
	if len(groups) == 0 {
		return 0, nil
	}
	sp := m.r.Space()
	sort.Slice(groups, func(a, b int) bool {
		return sp.Clockwise(pred.ID, groups[a].Key) < sp.Clockwise(pred.ID, groups[b].Key)
	})
	fallback := sp.Add(pred.ID, 1)
	prefMoved, prefBoundary, sufMoved, sufBoundary := shedPlan(
		groups, n.ID, budgetPred, budgetSucc, fallback, fallback != n.ID)
	switch {
	case prefMoved == 0 && sufMoved == 0:
		return 0, nil
	case prefMoved >= sufMoved:
		_, moved, err := m.r.Advance(pred, prefBoundary)
		return moved, err
	default:
		_, moved, err := m.r.Retreat(n, sufBoundary)
		return moved, err
	}
}

// RebalanceChord runs one item-migration pass over a chord ring.
func RebalanceChord(r *chord.Ring, opts Options) discovery.MigrationStats {
	return runPass(chordMigrator{r: r}, opts)
}

// --- Cycloid ---

type cycloidMigrator struct{ o *cycloid.Overlay }

func (m cycloidMigrator) Loads() []discovery.NodeLoad {
	nodes := m.o.Nodes() // ascending position == ring order
	out := make([]discovery.NodeLoad, len(nodes))
	for i, n := range nodes {
		out[i] = discovery.NodeLoad{Addr: n.Addr, Entries: n.Dir.Len()}
	}
	return out
}

func (m cycloidMigrator) Shed(addr string, budgetPred, budgetSucc int) (int, error) {
	n, ok := m.o.NodeByAddr(addr)
	if !ok {
		return 0, fmt.Errorf("loadbalance: unknown node %s", addr)
	}
	nodes := m.o.Nodes()
	if len(nodes) < 2 {
		return 0, nil
	}
	idx := -1
	for i, cand := range nodes {
		if cand == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("loadbalance: stale node %s", addr)
	}
	pred := nodes[(idx-1+len(nodes))%len(nodes)]
	groups := n.Dir.KeyCounts()
	if len(groups) == 0 {
		return 0, nil
	}
	ringCap := m.o.Capacity()
	cw := func(a, b uint64) uint64 { return (b + ringCap - a) % ringCap }
	sort.Slice(groups, func(a, b int) bool {
		return cw(pred.Pos, groups[a].Key) < cw(pred.Pos, groups[b].Key)
	})
	fallback := (pred.Pos + 1) % ringCap
	prefMoved, prefBoundary, sufMoved, sufBoundary := shedPlan(
		groups, n.Pos, budgetPred, budgetSucc, fallback, fallback != n.Pos)
	switch {
	case prefMoved == 0 && sufMoved == 0:
		return 0, nil
	case prefMoved >= sufMoved:
		_, moved, err := m.o.Advance(pred, prefBoundary)
		return moved, err
	default:
		_, moved, err := m.o.Retreat(n, sufBoundary)
		return moved, err
	}
}

// RebalanceCycloid runs one item-migration pass over a cycloid overlay.
// On a complete overlay (every slot populated — the paper's n = d·2^d
// operating point) no identifier between two ring neighbors is ever free,
// so every hotspot reports blocked; rebalancing LORM requires a sparse
// deployment.
func RebalanceCycloid(o *cycloid.Overlay, opts Options) discovery.MigrationStats {
	return runPass(cycloidMigrator{o: o}, opts)
}
