package loadbalance

import (
	"sort"

	"lorm/internal/discovery"
)

// Report is the imbalance detector's output over one load sample.
type Report struct {
	// Nodes is the population size.
	Nodes int
	// TotalEntries and MeanEntries describe the aggregate.
	TotalEntries int
	MeanEntries  float64
	// MaxEntries is the heaviest node's load; MaxMean is the max/mean load
	// factor — the paper-facing imbalance number (1.0 = perfectly even).
	MaxEntries int
	MaxMean    float64
	// Gini is the Gini coefficient of the load distribution in [0, 1):
	// 0 = perfectly even, (n-1)/n = one node holds everything.
	Gini float64
	// Hotspots is the top-k heaviest nodes, descending (ties broken by
	// address so the report is deterministic).
	Hotspots []discovery.NodeLoad
}

// Analyze computes the imbalance report for one load sample, keeping the
// topK heaviest nodes as hotspots. O(n log n) in the sample size.
func Analyze(loads []discovery.NodeLoad, topK int) Report {
	rep := Report{Nodes: len(loads)}
	if len(loads) == 0 {
		return rep
	}
	asc := append([]discovery.NodeLoad(nil), loads...)
	sort.Slice(asc, func(i, j int) bool {
		if asc[i].Entries != asc[j].Entries {
			return asc[i].Entries < asc[j].Entries
		}
		return asc[i].Addr < asc[j].Addr
	})
	total := 0
	weighted := 0 // Σ rank·load with ascending 1-based ranks, for Gini
	for i, l := range asc {
		total += l.Entries
		weighted += (i + 1) * l.Entries
	}
	n := len(asc)
	rep.TotalEntries = total
	rep.MeanEntries = float64(total) / float64(n)
	rep.MaxEntries = asc[n-1].Entries
	if total > 0 {
		rep.MaxMean = float64(rep.MaxEntries) / rep.MeanEntries
		rep.Gini = 2*float64(weighted)/(float64(n)*float64(total)) - float64(n+1)/float64(n)
	}
	if topK > n {
		topK = n
	}
	if topK > 0 {
		rep.Hotspots = make([]discovery.NodeLoad, topK)
		for i := 0; i < topK; i++ {
			rep.Hotspots[i] = asc[n-1-i]
		}
	}
	return rep
}
