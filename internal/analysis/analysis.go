// Package analysis implements the closed-form performance model of Section
// IV — Theorems 4.1 through 4.10 — exactly as the paper states them. The
// experiment harness overlays these "Analysis-…" curves on the measured
// results, reproducing the paper's analysis-vs-experiment figures.
//
// Model parameters follow the paper's notation:
//
//	n — number of nodes
//	m — number of resource attributes (or attributes per query)
//	k — information pieces per attribute
//	d — Cycloid dimension
package analysis

import "math"

// Params carries the model parameters of Section IV.
type Params struct {
	N int // nodes
	M int // resource attributes
	K int // pieces per attribute
	D int // Cycloid dimension
}

// Log2N returns log2(n), the Chord routing-table size the theorems use.
func (p Params) Log2N() float64 { return math.Log2(float64(p.N)) }

// --- Maintenance overhead (Section IV.A) -------------------------------

// Theorem41StructureOverheadRatio returns the factor by which LORM improves
// the structure maintenance overhead of multi-DHT methods (Mercury):
// m·log(n)/d ≥ m.
func Theorem41StructureOverheadRatio(p Params) float64 {
	return float64(p.M) * p.Log2N() / float64(p.D)
}

// MercuryOutlinks returns Mercury's per-node neighbor count m·log(n).
func MercuryOutlinks(p Params) float64 { return float64(p.M) * p.Log2N() }

// LORMOutlinks returns LORM's per-node neighbor count: Cycloid's constant
// degree (7 links).
func LORMOutlinks(Params) float64 { return 7 }

// AnalysisGreaterLORMOutlinks is the paper's "Analysis>LORM" curve of
// Figure 3(a): Mercury's measured outlinks divided by m, the upper bound
// Theorem 4.1 guarantees LORM improves upon.
func AnalysisGreaterLORMOutlinks(p Params, mercuryMeasured float64) float64 {
	return mercuryMeasured / float64(p.M)
}

// Theorem42TotalInfoRatio returns the ratio of MAAN's total resource
// information volume to everyone else's: exactly 2 (dual registration).
func Theorem42TotalInfoRatio(Params) float64 { return 2 }

// Theorem43DirectoryRatioMAAN returns the factor d·(1 + m/n) by which LORM
// reduces a directory node's information size versus MAAN.
func Theorem43DirectoryRatioMAAN(p Params) float64 {
	return float64(p.D) * (1 + float64(p.M)/float64(p.N))
}

// Theorem44DirectoryRatioSWORD returns the factor d by which LORM reduces
// a directory node's information size versus SWORD.
func Theorem44DirectoryRatioSWORD(p Params) float64 { return float64(p.D) }

// Theorem45BalanceRatioMercury returns the factor n/(d·m) by which Mercury
// achieves more balanced information distribution than LORM.
func Theorem45BalanceRatioMercury(p Params) float64 {
	return float64(p.N) / (float64(p.D) * float64(p.M))
}

// AvgDirectorySize returns the average pieces per node: total/n, where
// MAAN's total is doubled (Theorem 4.2).
func AvgDirectorySize(p Params, system string) float64 {
	total := float64(p.M) * float64(p.K)
	if system == "maan" {
		total *= 2
	}
	return total / float64(p.N)
}

// --- Efficiency of resource discovery (Section IV.B) --------------------

// Theorem47ContactedRatioMAANvsLORM returns log(n)/d, the factor by which
// LORM reduces MAAN's contacted nodes for non-range queries.
func Theorem47ContactedRatioMAANvsLORM(p Params) float64 {
	return p.Log2N() / float64(p.D)
}

// Theorem48ContactedRatioMAANvsChordSystems returns 2, the factor by which
// Mercury and SWORD reduce MAAN's contacted nodes for non-range queries.
func Theorem48ContactedRatioMAANvsChordSystems(Params) float64 { return 2 }

// NonRangeHops returns the model's expected logical hops for an mq-attribute
// non-range query, per the proofs of Theorems 4.7/4.8: one Chord lookup is
// log(n)/2 hops, one Cycloid lookup d hops, MAAN performs two lookups.
func NonRangeHops(p Params, system string, mq int) float64 {
	per := 0.0
	switch system {
	case "lorm":
		per = float64(p.D)
	case "mercury", "sword":
		per = p.Log2N() / 2
	case "maan":
		per = p.Log2N()
	}
	return float64(mq) * per
}

// AnalysisLORMHopsFromMAAN is the Figure 4 "Analysis-LORM" curve: MAAN's
// measured hops divided by log(n)/d (Theorem 4.7).
func AnalysisLORMHopsFromMAAN(p Params, maanMeasured float64) float64 {
	return maanMeasured / Theorem47ContactedRatioMAANvsLORM(p)
}

// AnalysisChordHopsFromMAAN is the Figure 4 "Analysis-SWORD/Mercury"
// curve: MAAN's measured hops divided by 2 (Theorem 4.8).
func AnalysisChordHopsFromMAAN(_ Params, maanMeasured float64) float64 {
	return maanMeasured / 2
}

// RangeVisitedNodes returns the model's visited directory nodes for an
// mq-attribute range query (proof of Theorem 4.9, average case):
// Mercury m(1+n/4), MAAN m(2+n/4), LORM m(1+d/4), SWORD m. The "art" case
// extends the model beyond the paper: ART's sector mapping confines an
// attribute to the n/m nodes of its value sector, so a quarter-domain range
// walks 1 + n/(4m) directories per attribute.
func RangeVisitedNodes(p Params, system string, mq int) float64 {
	per := 0.0
	switch system {
	case "mercury":
		per = 1 + float64(p.N)/4
	case "maan":
		per = 2 + float64(p.N)/4
	case "lorm":
		per = 1 + float64(p.D)/4
	case "sword":
		per = 1
	case "art":
		per = 1 + float64(p.N)/(4*float64(p.M))
	}
	return float64(mq) * per
}

// Theorem49SavingsVsSystemWide returns m(n-d)/4, the visited nodes LORM
// saves versus system-wide range discovery (Mercury, MAAN).
func Theorem49SavingsVsSystemWide(p Params, mq int) float64 {
	return float64(mq) * float64(p.N-p.D) / 4
}

// Theorem49SavingsSWORDvsLORM returns m·d/4, the visited nodes SWORD saves
// versus LORM.
func Theorem49SavingsSWORDvsLORM(p Params, mq int) float64 {
	return float64(mq) * float64(p.D) / 4
}

// Theorem410WorstCaseSavings returns m·n, the worst-case contacted nodes
// LORM saves versus system-wide range methods: m(log n + n) - m·log n.
func Theorem410WorstCaseSavings(p Params, mq int) float64 {
	return float64(mq) * float64(p.N)
}

// WorstCaseRangeContacted returns the worst-case contacted nodes of
// Theorem 4.10's proof: Mercury m(log n + n), MAAN m(2·log n + n),
// LORM m·d.
func WorstCaseRangeContacted(p Params, system string, mq int) float64 {
	switch system {
	case "mercury":
		return float64(mq) * (p.Log2N() + float64(p.N))
	case "maan":
		return float64(mq) * (2*p.Log2N() + float64(p.N))
	case "lorm":
		return float64(mq) * float64(p.D)
	case "sword":
		return float64(mq)
	}
	return 0
}
