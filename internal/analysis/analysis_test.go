package analysis

import (
	"math"
	"testing"
)

// The paper's operating point: n=2048, m=200, k=500, d=8, log2(n)=11.
var paper = Params{N: 2048, M: 200, K: 500, D: 8}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLog2N(t *testing.T) {
	if !almost(paper.Log2N(), 11) {
		t.Fatalf("log2(2048) = %v, want 11", paper.Log2N())
	}
}

// Section V quotes every one of these constants; assert them exactly.
func TestPaperQuotedConstants(t *testing.T) {
	// Theorem 4.1: ≥ m = 200; with log n = 11, d = 8 the ratio is 275.
	if got := Theorem41StructureOverheadRatio(paper); !almost(got, 200*11.0/8) {
		t.Errorf("Thm 4.1 ratio = %v, want 275", got)
	}
	if Theorem41StructureOverheadRatio(paper) < float64(paper.M) {
		t.Error("Thm 4.1: ratio must be ≥ m")
	}
	// Theorem 4.2: factor 2.
	if got := Theorem42TotalInfoRatio(paper); got != 2 {
		t.Errorf("Thm 4.2 = %v", got)
	}
	// Theorem 4.3: d(1+m/n) = 8·(1+200/2048) = 8.78125 (paper: 8.78).
	if got := Theorem43DirectoryRatioMAAN(paper); !almost(got, 8*(1+200.0/2048)) {
		t.Errorf("Thm 4.3 = %v, want 8.78125", got)
	}
	// Theorem 4.4: d = 8.
	if got := Theorem44DirectoryRatioSWORD(paper); got != 8 {
		t.Errorf("Thm 4.4 = %v", got)
	}
	// Theorem 4.5: n/(dm) = 2048/1600 = 1.28.
	if got := Theorem45BalanceRatioMercury(paper); !almost(got, 1.28) {
		t.Errorf("Thm 4.5 = %v, want 1.28", got)
	}
	// Theorem 4.7: log(n)/d = 11/8.
	if got := Theorem47ContactedRatioMAANvsLORM(paper); !almost(got, 11.0/8) {
		t.Errorf("Thm 4.7 = %v, want 11/8", got)
	}
	// Theorem 4.8: 2.
	if got := Theorem48ContactedRatioMAANvsChordSystems(paper); got != 2 {
		t.Errorf("Thm 4.8 = %v", got)
	}
}

// Section V.B: visited nodes per range query — 513m Mercury, 514m MAAN,
// 3m LORM, m SWORD.
func TestRangeVisitedNodesQuotedValues(t *testing.T) {
	cases := map[string]float64{
		"mercury": 513,
		"maan":    514,
		"lorm":    3,
		"sword":   1,
	}
	for system, want := range cases {
		if got := RangeVisitedNodes(paper, system, 1); !almost(got, want) {
			t.Errorf("RangeVisitedNodes(%s, 1) = %v, want %v", system, got, want)
		}
		if got := RangeVisitedNodes(paper, system, 5); !almost(got, 5*want) {
			t.Errorf("RangeVisitedNodes(%s, 5) = %v, want %v", system, got, 5*want)
		}
	}
	if got := RangeVisitedNodes(paper, "unknown", 1); got != 0 {
		t.Errorf("unknown system = %v, want 0", got)
	}
}

func TestTheorem49Savings(t *testing.T) {
	// m(n-d)/4 with m=1: (2048-8)/4 = 510.
	if got := Theorem49SavingsVsSystemWide(paper, 1); !almost(got, 510) {
		t.Errorf("Thm 4.9 system-wide savings = %v, want 510", got)
	}
	// Consistency: Mercury's visited minus LORM's visited ≥ savings.
	diff := RangeVisitedNodes(paper, "mercury", 1) - RangeVisitedNodes(paper, "lorm", 1)
	if diff < Theorem49SavingsVsSystemWide(paper, 1) {
		t.Errorf("Mercury-LORM visited diff %v below the theorem's bound", diff)
	}
	// SWORD saves m·d/4 = 2 versus LORM.
	if got := Theorem49SavingsSWORDvsLORM(paper, 1); !almost(got, 2) {
		t.Errorf("Thm 4.9 SWORD savings = %v, want 2", got)
	}
	if got := RangeVisitedNodes(paper, "lorm", 1) - RangeVisitedNodes(paper, "sword", 1); !almost(got, 2) {
		t.Errorf("LORM-SWORD visited diff = %v, want 2", got)
	}
}

func TestTheorem410WorstCase(t *testing.T) {
	if got := Theorem410WorstCaseSavings(paper, 3); !almost(got, 3*2048) {
		t.Errorf("Thm 4.10 savings = %v, want 6144", got)
	}
	mercury := WorstCaseRangeContacted(paper, "mercury", 1)
	maan := WorstCaseRangeContacted(paper, "maan", 1)
	lorm := WorstCaseRangeContacted(paper, "lorm", 1)
	if !(maan > mercury && mercury > lorm) {
		t.Errorf("worst-case ordering wrong: maan=%v mercury=%v lorm=%v", maan, mercury, lorm)
	}
	// Mercury's worst case minus LORM's is exactly the mn bound:
	// m(log n + n) - m·d... the theorem states savings vs m·log n.
	if got := mercury - float64(paper.N); !almost(got, paper.Log2N()) {
		t.Errorf("mercury worst case = %v, want log n + n", mercury)
	}
	if got := WorstCaseRangeContacted(paper, "sword", 4); !almost(got, 4) {
		t.Errorf("sword worst case = %v, want m", got)
	}
	if got := WorstCaseRangeContacted(paper, "unknown", 1); got != 0 {
		t.Errorf("unknown = %v", got)
	}
}

func TestNonRangeHops(t *testing.T) {
	// Per-attribute: LORM d=8, Chord systems 5.5, MAAN 11.
	if got := NonRangeHops(paper, "lorm", 1); !almost(got, 8) {
		t.Errorf("lorm hops = %v, want 8", got)
	}
	if got := NonRangeHops(paper, "mercury", 1); !almost(got, 5.5) {
		t.Errorf("mercury hops = %v, want 5.5", got)
	}
	if got := NonRangeHops(paper, "sword", 2); !almost(got, 11) {
		t.Errorf("sword 2-attr hops = %v, want 11", got)
	}
	if got := NonRangeHops(paper, "maan", 1); !almost(got, 11) {
		t.Errorf("maan hops = %v, want 11", got)
	}
	if got := NonRangeHops(paper, "unknown", 1); got != 0 {
		t.Errorf("unknown = %v", got)
	}
	// Ordering of Figure 4: MAAN > LORM > Mercury = SWORD.
	if !(NonRangeHops(paper, "maan", 3) > NonRangeHops(paper, "lorm", 3) &&
		NonRangeHops(paper, "lorm", 3) > NonRangeHops(paper, "mercury", 3)) {
		t.Error("Figure 4 ordering violated by the model")
	}
}

func TestAnalysisCurveHelpers(t *testing.T) {
	// "Analysis>LORM": Mercury's measured outlinks divided by m.
	if got := AnalysisGreaterLORMOutlinks(paper, 2600); !almost(got, 13) {
		t.Errorf("Analysis>LORM = %v, want 13", got)
	}
	// "Analysis-LORM" hops: MAAN measured / (11/8).
	if got := AnalysisLORMHopsFromMAAN(paper, 11); !almost(got, 8) {
		t.Errorf("Analysis-LORM = %v, want 8", got)
	}
	if got := AnalysisChordHopsFromMAAN(paper, 11); !almost(got, 5.5) {
		t.Errorf("Analysis-SWORD/Mercury = %v, want 5.5", got)
	}
}

func TestAvgDirectorySize(t *testing.T) {
	// Total pieces m·k = 100000 over 2048 nodes ≈ 48.83; MAAN doubled.
	want := 200.0 * 500 / 2048
	for _, system := range []string{"lorm", "mercury", "sword"} {
		if got := AvgDirectorySize(paper, system); !almost(got, want) {
			t.Errorf("AvgDirectorySize(%s) = %v, want %v", system, got, want)
		}
	}
	if got := AvgDirectorySize(paper, "maan"); !almost(got, 2*want) {
		t.Errorf("AvgDirectorySize(maan) = %v, want %v", got, 2*want)
	}
}

func TestOutlinkModels(t *testing.T) {
	if got := MercuryOutlinks(paper); !almost(got, 2200) {
		t.Errorf("MercuryOutlinks = %v, want 2200", got)
	}
	if got := LORMOutlinks(paper); got != 7 {
		t.Errorf("LORMOutlinks = %v, want 7", got)
	}
}
