package mercury

import "lorm/internal/discovery"

var _ discovery.NetAware = (*System)(nil)

// SetReachability implements discovery.NetAware: the plane fans out to
// every attribute hub — all hubs share the physical network, so a
// partition cuts the same node pairs in each of them.
func (s *System) SetReachability(r discovery.Reachability) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, hub := range s.hubs {
		hub.SetReachability(r)
	}
}
