package mercury

import (
	"sort"

	"lorm/internal/discovery"
	"lorm/internal/loadbalance"
)

var _ discovery.Balancer = (*System)(nil)

var _ discovery.Traced = (*System)(nil)

// DirectoryLoads implements discovery.Balancer: a physical node's load is
// the union of its per-hub directories (the same aggregation as
// DirectorySizes), in sorted address order.
func (s *System) DirectoryLoads() []discovery.NodeLoad {
	s.mu.RLock()
	defer s.mu.RUnlock()
	totals := make(map[string]int, len(s.addrs))
	for addr := range s.addrs {
		totals[addr] = 0
	}
	for h := range s.hubs {
		for addr, n := range s.byAddr[h] {
			totals[addr] += n.Dir.Len()
		}
	}
	out := make([]discovery.NodeLoad, 0, len(totals))
	for addr, entries := range totals {
		out = append(out, discovery.NodeLoad{Addr: addr, Entries: entries})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Rebalance implements discovery.Balancer: one item-migration pass per
// attribute hub. Each hub is its own Chord ring with its own load
// distribution, so imbalance is detected and shed hub by hub; a physical
// node hot on one attribute sheds that hub's interval without disturbing
// its placement in the others. Boundary moves replace node objects, so the
// per-hub address index is rebuilt afterward.
func (s *System) Rebalance() (discovery.MigrationStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var stats discovery.MigrationStats
	for h, hub := range s.hubs {
		stats.Add(loadbalance.RebalanceChord(hub, loadbalance.Options{}))
		idx := s.byAddr[h]
		for addr := range idx {
			delete(idx, addr)
		}
		for _, n := range hub.Nodes() {
			idx[n.Addr] = n
		}
	}
	return stats, nil
}
