package mercury

import (
	"fmt"
	"testing"

	"lorm/internal/resource"
	"lorm/internal/workload"
)

func testSchema() *resource.Schema {
	return resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
		resource.Attribute{Name: "disk", Min: 1, Max: 2000},
	)
}

func build(t testing.TB, n int) *System {
	t.Helper()
	s, err := New(Config{Bits: 18, Schema: testSchema()})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := s.AddNodes(addrs); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewNeedsSchema(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without schema should error")
	}
}

func TestOneHubPerAttribute(t *testing.T) {
	s := build(t, 40)
	for _, a := range testSchema().Attributes() {
		hub, ok := s.Hub(a.Name)
		if !ok || hub == nil {
			t.Fatalf("no hub for %s", a.Name)
		}
		if hub.Size() != 40 {
			t.Fatalf("hub %s has %d nodes, want 40", a.Name, hub.Size())
		}
	}
	if _, ok := s.Hub("gpu"); ok {
		t.Fatal("Hub for unknown attribute should miss")
	}
}

// Mercury's defining property: information of one attribute spreads over
// its hub by value, rather than pooling on one node.
func TestValueSpreading(t *testing.T) {
	s := build(t, 64)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(41, 0)
	a, _ := testSchema().Lookup("cpu")
	for i := 0; i < 200; i++ {
		v := gen.UniformValue(rng, a) // uniform so spread is visible
		in := resource.Info{Attr: "cpu", Value: v, Owner: fmt.Sprintf("o%03d", i)}
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	hub, _ := s.Hub("cpu")
	holders := 0
	for _, n := range hub.Nodes() {
		if n.Dir.Len() > 0 {
			holders++
		}
	}
	if holders < 20 {
		t.Fatalf("only %d hub nodes hold cpu pieces; Mercury should spread by value", holders)
	}
}

// Hub identifiers must differ across hubs for the same physical address —
// otherwise all hubs would be the same ring.
func TestHubsHaveIndependentIDs(t *testing.T) {
	s := build(t, 16)
	cpuHub, _ := s.Hub("cpu")
	memHub, _ := s.Hub("mem")
	same := 0
	for _, n := range cpuHub.Nodes() {
		m, ok := memHub.NodeByAddr(n.Addr)
		if !ok {
			t.Fatalf("address %s missing from mem hub", n.Addr)
		}
		if m.ID == n.ID {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/16 addresses share IDs across hubs; hubs must be independent", same)
	}
}

// A physical node's outlinks are the union of its per-hub tables: with m
// hubs they grow like m·log n (Theorem 4.1).
func TestOutlinksScaleWithHubCount(t *testing.T) {
	s := build(t, 64)
	counts := s.OutlinkCounts()
	if len(counts) != 64 {
		t.Fatalf("got %d counts, want 64", len(counts))
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	avg := sum / 64
	// 3 hubs × (≈ log2 64 + successor list) ≈ 3 × 8-ish. Expect well above
	// a single ring's count and roughly 3× it.
	if avg < 15 || avg > 45 {
		t.Fatalf("avg outlinks = %.1f, want ≈ 3 hubs × one-ring count", avg)
	}
}

func TestRegisterUnknownAttribute(t *testing.T) {
	s := build(t, 8)
	if _, err := s.Register(resource.Info{Attr: "gpu", Value: 1, Owner: "x"}); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	s := build(t, 8)
	if err := s.AddNodes([]string{"node-0001"}); err == nil {
		t.Fatal("duplicate bulk address should error")
	}
	if err := s.AddNode("node-0001"); err == nil {
		t.Fatal("duplicate join should error")
	}
}

func TestDirectorySizesAggregateAcrossHubs(t *testing.T) {
	s := build(t, 32)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(42, 0)
	infos := gen.Announcements(rng, 25)
	for _, in := range infos {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, sz := range s.DirectorySizes() {
		total += sz
	}
	if total != len(infos) {
		t.Fatalf("aggregated %d pieces, want %d", total, len(infos))
	}
}

func TestDynamics(t *testing.T) {
	s := build(t, 20)
	if s.Name() != "mercury" || s.NodeCount() != 20 {
		t.Fatal("metadata wrong")
	}
	if err := s.AddNode("newbie"); err != nil {
		t.Fatal(err)
	}
	if s.NodeCount() != 21 {
		t.Fatalf("NodeCount = %d after join", s.NodeCount())
	}
	for _, a := range testSchema().Attributes() {
		hub, _ := s.Hub(a.Name)
		if hub.Size() != 21 {
			t.Fatalf("hub %s size = %d after join, want 21", a.Name, hub.Size())
		}
	}
	if err := s.RemoveNode("newbie"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode("ghost"); err == nil {
		t.Fatal("removing unknown node should error")
	}
	s.Maintain()
	addrs := s.NodeAddrs()
	if len(addrs) != 20 {
		t.Fatalf("NodeAddrs = %d, want 20", len(addrs))
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i-1] >= addrs[i] {
			t.Fatal("NodeAddrs not sorted")
		}
	}
}

// Range queries walk the attribute's hub: visited counts scale with the
// covered mass fraction times hub size.
func TestRangeWalkScalesWithHubSize(t *testing.T) {
	s := build(t, 64)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(43, 0)
	a, _ := testSchema().Lookup("cpu")
	for i := 0; i < 50; i++ {
		in := resource.Info{Attr: "cpu", Value: gen.UniformValue(rng, a), Owner: fmt.Sprintf("o%d", i)}
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	// Full-domain range: must walk the whole hub ring (64 visited).
	res, err := s.Discover(resource.Query{
		Subs:      []resource.SubQuery{{Attr: "cpu", Low: a.Min, High: a.Max}},
		Requester: "r",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Visited != 64 {
		t.Fatalf("full-domain range visited %d nodes, want all 64", res.Cost.Visited)
	}
	if len(res.PerAttr["cpu"]) != 50 {
		t.Fatalf("full-domain range found %d pieces, want 50", len(res.PerAttr["cpu"]))
	}
	// Exact query: one visited node.
	res, err = s.Discover(resource.Query{
		Subs:      []resource.SubQuery{{Attr: "cpu", Low: 1000, High: 1000}},
		Requester: "r",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Visited != 1 {
		t.Fatalf("exact query visited %d nodes, want 1", res.Cost.Visited)
	}
}

func TestDiscoverValidates(t *testing.T) {
	s := build(t, 8)
	if _, err := s.Discover(resource.Query{}); err == nil {
		t.Fatal("empty query should error")
	}
	q := resource.Query{Subs: []resource.SubQuery{{Attr: "gpu", Low: 1, High: 2}}}
	if _, err := s.Discover(q); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestSchemaAccessor(t *testing.T) {
	s := build(t, 8)
	if s.Schema().Len() != 3 {
		t.Fatalf("Schema len = %d", s.Schema().Len())
	}
}

func TestMaintainAfterChurn(t *testing.T) {
	s := build(t, 24)
	for i := 0; i < 5; i++ {
		if err := s.AddNode(fmt.Sprintf("j%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	addrs := s.NodeAddrs()
	for i := 0; i < 5; i++ {
		if err := s.RemoveNode(addrs[i*3]); err != nil {
			t.Fatal(err)
		}
	}
	s.Maintain()
	// Hubs consistent afterwards: every hub same size.
	for _, a := range testSchema().Attributes() {
		hub, _ := s.Hub(a.Name)
		if hub.Size() != s.NodeCount() {
			t.Fatalf("hub %s size %d != NodeCount %d", a.Name, hub.Size(), s.NodeCount())
		}
	}
}
