package mercury

import (
	"lorm/internal/discovery"
	"lorm/internal/replication"
)

// Mercury replicates per attribute hub: each hub ring owns one Replicator
// over its own Placement, so a piece's copies land on the ring successors
// of its root INSIDE the attribute's hub — hub membership is the same
// physical node set, but each hub permutes it differently, so the replica
// neighbors of a node differ per attribute, exactly as its routing
// neighbors do.

var _ discovery.Replicated = (*System)(nil)

// SetReplicas configures the replication factor on every hub (minimum 1 =
// unreplicated). It affects subsequent Register calls; call Repair to bring
// previously stored entries up to the new factor.
func (s *System) SetReplicas(r int) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rep := range s.reps {
		if err := rep.SetFactor(r); err != nil {
			return err
		}
	}
	return nil
}

// Replicas returns the configured replication factor.
func (s *System) Replicas() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.reps) == 0 {
		return 1
	}
	return s.reps[0].Factor()
}

// Repair restores the replica invariant on every hub, summing the copies
// added and removed across hubs. It is idempotent.
func (s *System) Repair() (added, removed int) {
	s.mu.RLock()
	reps := append([]*replication.Replicator(nil), s.reps...)
	s.mu.RUnlock()
	for _, rep := range reps {
		a, r := rep.Repair()
		added += a
		removed += r
	}
	return added, removed
}

// PromoteHot promotes the hottest key-groups of every hub, driven by one
// physical-node traffic report: each hub's replicator checks which of its
// own roots map to hot physical nodes and promotes its most-read keys
// there. It returns the total number of keys promoted across hubs.
func (s *System) PromoteHot(visits []discovery.NodeLoad, opts replication.HotKeyOptions) int {
	s.mu.RLock()
	reps := append([]*replication.Replicator(nil), s.reps...)
	s.mu.RUnlock()
	promoted := 0
	for _, rep := range reps {
		promoted += rep.PromoteHot(visits, opts)
	}
	return promoted
}

// HubReplicator exposes one attribute hub's replication layer, for
// experiments and tests.
func (s *System) HubReplicator(attr string) (*replication.Replicator, bool) {
	h := s.hubOf(attr)
	if h < 0 {
		return nil, false
	}
	return s.reps[h], true
}
