// Package mercury implements the multi-DHT-based baseline of the paper,
// modeled on Mercury (Bharambe, Agrawal, Seshan [2]): one DHT "hub" per
// resource attribute, with the attribute's value — through the
// locality-preserving hash — as the key inside its hub. Per the paper's
// comparative setup the hubs are Chord rings, every physical node joins
// every hub, and the pointer-record optimization is disabled.
//
// Range queries route to the hub node owning the range's lower bound and
// walk ring successors until the upper bound's owner has answered; because
// an attribute's values spread over the hub's whole ring, a range covering
// a fraction f of the value domain visits about f·n nodes — the n/4
// average-case term of Theorem 4.9.
package mercury

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"lorm/internal/chord"
	"lorm/internal/directory"
	"lorm/internal/discovery"
	"lorm/internal/hashing"
	"lorm/internal/replication"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// Config parameterizes a Mercury deployment.
type Config struct {
	// Bits is the identifier width of every hub ring (default 20).
	Bits uint
	// SuccListLen is each hub's successor-list length.
	SuccListLen int
	// Schema is the globally known attribute set; one hub is created per
	// attribute.
	Schema *resource.Schema
	// Logger, when non-nil, receives structured replication lifecycle
	// events (hot-key promotion/demotion) at Debug level.
	Logger *slog.Logger
}

// System is a Mercury deployment: m parallel Chord hubs.
type System struct {
	schema *resource.Schema
	bits   uint
	fabric *routing.Fabric

	mu     sync.RWMutex
	hubs   []*chord.Ring             // parallel to schema order
	lph    []hashing.Locality        // per-attribute value hash
	reps   []*replication.Replicator // per-hub replica management
	byAddr []map[string]*chord.Node  // per-hub address index
	addrs  map[string]bool           // physical membership
}

var (
	_ discovery.System     = (*System)(nil)
	_ discovery.Dynamic    = (*System)(nil)
	_ discovery.Crashable  = (*System)(nil)
	_ routing.Instrumented = (*System)(nil)
)

// New creates an empty Mercury system with one hub per schema attribute.
func New(cfg Config) (*System, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("mercury: config needs a schema")
	}
	if cfg.Bits == 0 {
		cfg.Bits = 20
	}
	s := &System{
		schema: cfg.Schema,
		bits:   cfg.Bits,
		fabric: routing.NewFabric("mercury"),
		addrs:  make(map[string]bool),
	}
	for _, a := range cfg.Schema.Attributes() {
		hub := chord.New(chord.Config{Bits: cfg.Bits, SuccListLen: cfg.SuccListLen, Salt: "hub:" + a.Name})
		s.hubs = append(s.hubs, hub)
		s.lph = append(s.lph, hashing.NewLocalityFrom(hub.Space(), a))
		s.reps = append(s.reps, replication.NewReplicator(hub.Placement(), replication.WithLogger(cfg.Logger)))
		s.byAddr = append(s.byAddr, make(map[string]*chord.Node))
	}
	return s, nil
}

// AddNodes bulk-populates every hub with the given physical addresses.
func (s *System) AddNodes(addrs []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, addr := range addrs {
		if s.addrs[addr] {
			return fmt.Errorf("mercury: duplicate address %q", addr)
		}
		s.addrs[addr] = true
	}
	for h, hub := range s.hubs {
		if err := hub.AddBulk(addrs); err != nil {
			return err
		}
		for _, n := range hub.Nodes() {
			s.byAddr[h][n.Addr] = n
		}
	}
	return nil
}

// RoutingFabric implements routing.Instrumented.
func (s *System) RoutingFabric() *routing.Fabric { return s.fabric }

// hubOf returns the hub index for an attribute, or -1.
func (s *System) hubOf(attr string) int { return s.schema.Index(attr) }

// Name implements discovery.System.
func (s *System) Name() string { return "mercury" }

// Schema implements discovery.System.
func (s *System) Schema() *resource.Schema { return s.schema }

// NodeCount implements discovery.System (physical nodes, not hub slots).
func (s *System) NodeCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.addrs)
}

// Register implements discovery.System: one insert, into the attribute's
// hub, keyed by the locality-preserving hash of the value.
func (s *System) Register(info resource.Info) (discovery.Cost, error) {
	return s.RegisterTraced(info, discovery.TraceContext{})
}

// RegisterTraced implements discovery.Traced: Register parented under the
// caller's trace context.
func (s *System) RegisterTraced(info resource.Info, tc discovery.TraceContext) (cost discovery.Cost, err error) {
	h := s.hubOf(info.Attr)
	if h < 0 {
		return cost, fmt.Errorf("mercury: unknown attribute %q", info.Attr)
	}
	hub := s.hubs[h]
	key := s.lph[h].Hash(info.Value)
	from, err := hub.NodeNear(info.Owner)
	if err != nil {
		return cost, err
	}
	op := s.fabric.BeginTraced(routing.OpRegister, info.Owner, tc)
	e := directory.Entry{Key: key, Info: info}
	route, err := hub.InsertOp(op, from, key, e)
	if err != nil {
		op.Finish()
		return cost, err
	}
	// Replication extension: copies go on the hub root's ring successors,
	// and a re-announce invalidates any hot-key promotion of the key-group.
	s.reps[h].Place(op, route.Root.ID, e)
	return op.Finish(), nil
}

// Discover implements discovery.System: each sub-query resolves in its own
// hub, in parallel, and the results join on the owner address.
func (s *System) Discover(q resource.Query) (*discovery.Result, error) {
	return s.DiscoverTraced(q, discovery.TraceContext{})
}

// DiscoverTraced implements discovery.Traced: Discover parented under the
// caller's trace context.
func (s *System) DiscoverTraced(q resource.Query, tc discovery.TraceContext) (*discovery.Result, error) {
	if err := q.Validate(s.schema); err != nil {
		return nil, err
	}
	op := s.fabric.BeginTraced(routing.OpDiscover, q.Requester, tc)
	defer op.Finish()
	res, err := discovery.RunSubs(q, func(sub resource.SubQuery) ([]resource.Info, error) {
		return s.resolveSub(op, q.Requester, sub)
	})
	if err != nil {
		return nil, err
	}
	res.Cost = op.Cost()
	return res, nil
}

func (s *System) resolveSub(op *routing.Op, requester string, sub resource.SubQuery) ([]resource.Info, error) {
	h := s.hubOf(sub.Attr)
	hub := s.hubs[h]
	loKey := s.lph[h].Hash(sub.Low)
	hiKey := s.lph[h].Hash(sub.High)

	from, err := hub.NodeNear(requester)
	if err != nil {
		return nil, err
	}

	// Replica-aware read: an exact sub-query on a hot-promoted key-group
	// routes to the power-of-two-choices holder instead of the hub root,
	// probing the losing candidate (one ReasonReplicaRead forward). Keys
	// without a promotion take the unmodified root-walk path below.
	if loKey == hiKey {
		if plan, ok := s.reps[h].PlanRead(loKey); ok {
			route, err := hub.LookupOp(op, from, plan.Target.Pos)
			if err != nil {
				return nil, err
			}
			op.Visit(route.Root.Addr, route.Root.ID)
			op.Forward(plan.Probe.Addr, plan.Probe.Pos, routing.ReasonReplicaRead)
			g := replication.NewGather()
			g.AddBatch(route.Root.Dir.MatchEntriesAppend(nil, sub.Attr, sub.Low, sub.High))
			return g.Infos(), nil
		}
	}

	route, err := hub.LookupOp(op, from, loKey)
	if err != nil {
		return nil, err
	}
	cur := route.Root
	op.Visit(cur.Addr, cur.ID)

	// With replicas in play the walk collects entries into a Gather that
	// suppresses replica copies per logical entry; otherwise matches append
	// straight into the result, allocation-light.
	var (
		matches []resource.Info
		g       *replication.Gather
		ebuf    []directory.Entry
	)
	if s.reps[h].Active() {
		g = replication.NewGather()
	}
	collect := func(n *chord.Node) {
		if g != nil {
			ebuf = n.Dir.MatchEntriesAppend(ebuf[:0], sub.Attr, sub.Low, sub.High)
			g.AddBatch(ebuf)
			return
		}
		matches = n.Dir.MatchAppend(matches, sub.Attr, sub.Low, sub.High)
	}
	collect(cur)

	// Range walk across the hub ring, tracking cumulative progress through
	// the key interval so wrapped intervals terminate correctly.
	space := hub.Space()
	target := space.Clockwise(loKey, hiKey)
	covered := space.Clockwise(loKey, cur.ID)
	for covered < target {
		next, ok := hub.NextNode(cur)
		if !ok || next == route.Root {
			break // full circle: every node already consulted
		}
		covered += space.Clockwise(cur.ID, next.ID)
		cur = next
		op.Forward(cur.Addr, cur.ID, routing.ReasonRangeWalk)
		op.Visit(cur.Addr, cur.ID)
		collect(cur)
	}
	if g != nil {
		return g.Infos(), nil
	}
	return matches, nil
}

// DirectorySizes implements discovery.System: a physical node's directory
// is the union of its per-hub directories.
func (s *System) DirectorySizes() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	totals := make(map[string]int, len(s.addrs))
	for addr := range s.addrs {
		totals[addr] = 0
	}
	for h := range s.hubs {
		for addr, n := range s.byAddr[h] {
			totals[addr] += n.Dir.Len()
		}
	}
	out := make([]int, 0, len(totals))
	for _, v := range totals {
		out = append(out, v)
	}
	return out
}

// OutlinkCounts implements discovery.System: a physical node maintains the
// union of its per-hub routing tables — the m·log n structure overhead of
// Theorem 4.1.
func (s *System) OutlinkCounts() []int {
	s.mu.RLock()
	hubs := append([]*chord.Ring(nil), s.hubs...)
	indexes := append([]map[string]*chord.Node(nil), s.byAddr...)
	addrs := make([]string, 0, len(s.addrs))
	for a := range s.addrs {
		addrs = append(addrs, a)
	}
	s.mu.RUnlock()

	out := make([]int, len(addrs))
	for i, addr := range addrs {
		total := 0
		for h, hub := range hubs {
			if n, ok := indexes[h][addr]; ok {
				total += hub.OutlinkCount(n)
			}
		}
		out[i] = total
	}
	return out
}

// AddNode implements discovery.Dynamic: the newcomer joins every hub.
func (s *System) AddNode(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.addrs[addr] {
		return fmt.Errorf("mercury: duplicate address %q", addr)
	}
	for h, hub := range s.hubs {
		n, err := hub.Join(addr)
		if err != nil {
			return err
		}
		s.byAddr[h][addr] = n
	}
	s.addrs[addr] = true
	return nil
}

// RemoveNode implements discovery.Dynamic: graceful departure from every hub.
func (s *System) RemoveNode(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.addrs[addr] {
		return fmt.Errorf("mercury: no node with address %q", addr)
	}
	for h, hub := range s.hubs {
		if n, ok := s.byAddr[h][addr]; ok {
			if err := hub.Leave(n); err != nil {
				return err
			}
			delete(s.byAddr[h], addr)
		}
	}
	delete(s.addrs, addr)
	return nil
}

// FailNode implements discovery.Crashable: the physical node vanishes from
// every hub at once — a machine crash takes all of its per-attribute
// directories with it. Lost entries are summed across hubs.
func (s *System) FailNode(addr string) (lostEntries int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.addrs[addr] {
		return 0, fmt.Errorf("mercury: no node with address %q", addr)
	}
	for h, hub := range s.hubs {
		n, ok := s.byAddr[h][addr]
		if !ok {
			continue
		}
		lost, err := hub.Fail(n)
		if err != nil {
			return lostEntries, err
		}
		lostEntries += lost
		delete(s.byAddr[h], addr)
	}
	delete(s.addrs, addr)
	return lostEntries, nil
}

// NodeAddrs implements discovery.Dynamic. The slice is sorted so victim
// selection in churn experiments is deterministic.
func (s *System) NodeAddrs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.addrs))
	for a := range s.addrs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Maintain implements discovery.Dynamic: one stabilization round per hub,
// followed by a replica-repair pass on hubs with replicas in play.
func (s *System) Maintain() {
	s.mu.RLock()
	hubs := append([]*chord.Ring(nil), s.hubs...)
	reps := append([]*replication.Replicator(nil), s.reps...)
	s.mu.RUnlock()
	for h, hub := range hubs {
		hub.Stabilize()
		hub.FixFingers(0)
		if reps[h].Active() {
			reps[h].Repair()
		}
	}
}

// Hub exposes one attribute's hub ring, for experiments and tests.
func (s *System) Hub(attr string) (*chord.Ring, bool) {
	h := s.hubOf(attr)
	if h < 0 {
		return nil, false
	}
	return s.hubs[h], true
}
