package tracing

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lorm/internal/discovery"
	"lorm/internal/metrics"
	"lorm/internal/routing"
)

// fakeClock is a hand-advanced routing.Clock for duration-sensitive tests.
type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

// opCycle runs one representative fabric operation: two forwards, one
// directory visit, finish.
func opCycle(f *routing.Fabric) {
	op := f.Begin(routing.OpDiscover, "bench")
	op.Forward("n1", 1, routing.ReasonFingerForward)
	op.Forward("n2", 2, routing.ReasonRangeWalk)
	op.Visit("n3", 3)
	op.Finish()
}

// TestZeroAllocWhenSamplingOff is the overhead contract: a fabric with a
// rate-0 tracer attached allocates exactly as much per op as one without.
func TestZeroAllocWhenSamplingOff(t *testing.T) {
	base := routing.NewFabric("lorm")
	base.Observe(routing.NewMetricsObserver(metrics.NewRegistry()))

	traced := routing.NewFabric("lorm")
	traced.Observe(routing.NewMetricsObserver(metrics.NewRegistry()))
	traced.Observe(New(Config{Registry: metrics.NewRegistry(), SampleRate: 0}))

	opCycle(base) // warm counter-handle caches outside the measurement
	opCycle(traced)
	baseAllocs := testing.AllocsPerRun(200, func() { opCycle(base) })
	tracedAllocs := testing.AllocsPerRun(200, func() { opCycle(traced) })
	if tracedAllocs > baseAllocs {
		t.Fatalf("rate-0 tracer adds allocations: %.1f/op with tracer, %.1f/op without",
			tracedAllocs, baseAllocs)
	}
}

// sampledTraces runs n op cycles through a fresh fabric observed by a tracer
// built from cfg and returns the set of sampled trace IDs.
func sampledTraces(cfg Config, n int) map[uint64]bool {
	tr := New(cfg)
	f := routing.NewFabric("lorm")
	f.Observe(tr)
	for i := 0; i < n; i++ {
		opCycle(f)
	}
	out := make(map[uint64]bool)
	for _, sp := range tr.Collector().Snapshot() {
		out[sp.Trace] = true
	}
	return out
}

// TestSamplingDeterminism: equal seeds over equal workloads sample the same
// trace IDs; a different seed samples a different set.
func TestSamplingDeterminism(t *testing.T) {
	const n = 400
	a := sampledTraces(Config{Registry: metrics.NewRegistry(), Seed: 42, SampleRate: 0.5}, n)
	b := sampledTraces(Config{Registry: metrics.NewRegistry(), Seed: 42, SampleRate: 0.5}, n)
	if len(a) == 0 || len(a) == n {
		t.Fatalf("rate 0.5 sampled %d of %d traces — cannot exercise determinism", len(a), n)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed sampled %d vs %d traces", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Fatalf("trace %016x sampled in run A but not run B", id)
		}
	}
	c := sampledTraces(Config{Registry: metrics.NewRegistry(), Seed: 43, SampleRate: 0.5}, n)
	same := 0
	for id := range a {
		if c[id] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sampled trace sets")
	}
}

// TestSampledPlusDroppedEqualsOps is the metricscheck -trace invariant at
// the unit level: every finished op lands in exactly one of the two
// counters.
func TestSampledPlusDroppedEqualsOps(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Registry: reg, Seed: 7, SampleRate: 0.3})
	f := routing.NewFabric("maan")
	f.Observe(routing.NewMetricsObserver(reg), tr)
	const n = 500
	for i := 0; i < n; i++ {
		opCycle(f)
	}
	snap := reg.Snapshot()
	total := func(name string) float64 {
		fam, ok := snap.Family(name)
		if !ok {
			t.Fatalf("family %s missing", name)
		}
		return fam.Total()
	}
	sampled := total("tracing_spans_sampled_total")
	dropped := total("tracing_spans_dropped_total")
	ops := total("lorm_ops_total")
	if sampled+dropped != ops || ops != n {
		t.Fatalf("sampled %v + dropped %v != ops %v (want %d)", sampled, dropped, ops, n)
	}
	if sampled == 0 || dropped == 0 {
		t.Fatalf("rate 0.3 over %d ops should both sample and drop (got %v/%v)", n, sampled, dropped)
	}
}

// TestRemoteContextHonored: an op begun under a wire-propagated context
// keeps the caller's trace ID and parents under the caller's span; an
// explicitly unsampled context suppresses spans entirely so traces are
// never partial.
func TestRemoteContextHonored(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Registry: reg, SampleRate: 0}) // local sampling off
	f := routing.NewFabric("sword")
	f.Observe(tr)

	remote := discovery.TraceContext{TraceID: 0xabcd, SpanID: 0x1234, Sampled: true}
	op := f.BeginTraced(routing.OpDiscover, "req", remote)
	op.Visit("n1", 1)
	op.Finish()

	spans := tr.Collector().Snapshot()
	var opSpan *Span
	for i := range spans {
		if spans[i].IsOp() {
			opSpan = &spans[i]
		}
	}
	if opSpan == nil {
		t.Fatal("sampled remote context produced no op span")
	}
	if opSpan.Trace != remote.TraceID || opSpan.Parent != remote.SpanID || !opSpan.Remote {
		t.Fatalf("op span %+v not parented under remote context %+v", opSpan, remote)
	}

	before := tr.Collector().Len()
	unsampled := discovery.TraceContext{TraceID: 0xbeef, Sampled: false}
	op = f.BeginTraced(routing.OpDiscover, "req", unsampled)
	op.Visit("n1", 1)
	op.Finish()
	if got := tr.Collector().Len(); got != before {
		t.Fatalf("unsampled remote context still published %d spans", got-before)
	}
}

// TestCollectorBounded: the collector never grows past capacity and counts
// evictions.
func TestCollectorBounded(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 10; i++ {
		c.Add(Span{Trace: uint64(i + 1), Span: uint64(i + 1), System: "lorm", Name: "x"})
	}
	if c.Len() != 4 || c.Cap() != 4 {
		t.Fatalf("Len/Cap = %d/%d, want 4/4", c.Len(), c.Cap())
	}
	if c.Evicted() != 6 {
		t.Fatalf("Evicted = %d, want 6", c.Evicted())
	}
	if got := len(c.Snapshot()); got != 4 {
		t.Fatalf("Snapshot returned %d spans, want 4", got)
	}
}

// TestJSONLRoundTrip: WriteJSONL output parses back via ReadSpans.
func TestJSONLRoundTrip(t *testing.T) {
	c := NewCollector(8)
	c.Add(Span{Trace: 1, Span: 2, System: "lorm", Kind: "discover", Name: "discover", Start: 10, Dur: 5})
	c.Add(Span{Trace: 1, Span: 3, Parent: 2, System: "lorm", Name: "finger-forward", Addr: "n7", Start: 12})
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("read %d spans, want 2", len(spans))
	}
	if !spans[0].IsOp() || spans[1].IsOp() {
		t.Fatalf("op/step classification lost in round trip: %+v", spans)
	}
	if spans[1].Parent != spans[0].Span {
		t.Fatal("parent link lost in round trip")
	}
}

// TestSlowOpDump: an op crossing the threshold (under a fake clock) writes
// exactly one dump with its steps, and the slow and dump counters advance
// together.
func TestSlowOpDump(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := &fakeClock{}
	var buf bytes.Buffer
	tr := New(Config{
		Registry: reg, Clock: clk, SampleRate: 1,
		SlowThreshold: 5 * time.Millisecond, SlowLog: &buf,
	})
	f := routing.NewFabric("mercury")
	f.Observe(tr)

	op := f.Begin(routing.OpDiscover, "slowpoke")
	clk.t = 0.002
	op.Forward("n1", 1, routing.ReasonFingerForward)
	clk.t = 0.010
	op.Finish()

	opCycle(f) // instantaneous under the fake clock: must NOT dump

	dump := buf.String()
	if n := strings.Count(dump, "SLOW "); n != 1 {
		t.Fatalf("want exactly 1 SLOW record, got %d:\n%s", n, dump)
	}
	if !strings.Contains(dump, "system=mercury") || !strings.Contains(dump, "tag=slowpoke") ||
		!strings.Contains(dump, "finger-forward") {
		t.Fatalf("dump missing op identity or steps:\n%s", dump)
	}
	snap := reg.Snapshot()
	slow, _ := snap.Family("tracing_slow_ops_total")
	dumps, _ := snap.Family("tracing_slow_op_dumps_total")
	if slow.Total() != 1 || dumps.Total() != 1 {
		t.Fatalf("slow/dump counters = %v/%v, want 1/1", slow.Total(), dumps.Total())
	}
}

// TestStartClient: the client root span carries the sampling decision on
// the wire context, and finish publishes the span only when sampled.
func TestStartClient(t *testing.T) {
	tr := New(Config{Registry: metrics.NewRegistry(), SampleRate: 1})
	tc, finish := tr.StartClient("discover")
	if !tc.Valid() || !tc.Sampled {
		t.Fatalf("full-rate client context not sampled: %+v", tc)
	}
	finish()
	spans := tr.Collector().Snapshot()
	if len(spans) != 1 || spans[0].Kind != ClientKind || spans[0].Trace != tc.TraceID {
		t.Fatalf("unexpected client span set: %+v", spans)
	}

	off := New(Config{Registry: metrics.NewRegistry(), SampleRate: 0})
	tc, finish = off.StartClient("discover")
	if !tc.Valid() || tc.Sampled {
		t.Fatalf("rate-0 client context should carry an unsampled identity: %+v", tc)
	}
	finish()
	if off.Collector().Len() != 0 {
		t.Fatal("rate-0 client finish published a span")
	}
}
