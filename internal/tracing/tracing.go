// Package tracing is the span-structured timing layer over the routing
// fabric: a Tracer observes every routing.Op, stamps the operation and each
// recorded step with times from a routing.Clock (virtual in simulations,
// wall under the transport), and publishes the resulting spans to a bounded
// lock-free Collector. Head sampling is deterministic — the decision is a
// hash of the trace ID, which is itself derived from a seed — so two runs
// with the same seed sample the same traces, and a sampled trace is always
// complete: the decision made at the root rides the wire inside
// discovery.TraceContext and every downstream participant honors it.
//
// The overhead contract: with sampling off (rate 0, or an unsampled
// incoming context) a traced fabric adds zero allocations and two atomic
// adds per finished op to the hot path — OpBegun leaves the Op's trace
// state nil, and every later hook exits on that nil check.
package tracing

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lorm/internal/discovery"
	"lorm/internal/metrics"
	"lorm/internal/routing"
)

// Span is one timed interval (an operation) or timed point (a routing
// step) of a trace. Op spans carry Kind, Tag and the final cost; step
// spans carry the step's reason as Name and the node address, parent under
// their op span, and have zero duration (a step is an instant: the moment
// the forward or visit was recorded).
type Span struct {
	Trace  uint64 `json:"trace"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"`

	System string `json:"system"`
	Kind   string `json:"kind,omitempty"` // op/client spans only; empty for steps
	Name   string `json:"name"`
	Tag    string `json:"tag,omitempty"`
	Addr   string `json:"addr,omitempty"` // step spans only

	Start int64 `json:"start_ns"`
	Dur   int64 `json:"dur_ns"`

	Hops    int  `json:"hops,omitempty"`
	Visited int  `json:"visited,omitempty"`
	Remote  bool `json:"remote,omitempty"` // op began under a wire-propagated context
}

// IsOp reports whether the span is an operation (or client root) span
// rather than a step instant.
func (s Span) IsOp() bool { return s.Kind != "" }

// ClientKind is the Kind of spans opened by StartClient — caller-side root
// spans that are not fabric operations.
const ClientKind = "client"

// Config parameterizes a Tracer. The zero value is usable: wall clock,
// process-default registry, sampling off (the zero-overhead mode),
// DefaultCapacity collector, no slow-op log.
type Config struct {
	// Clock supplies span timestamps; nil means a fresh WallClock.
	// Simulations pass their sim.Scheduler so spans carry virtual time.
	Clock routing.Clock
	// Registry receives the tracing counter families; nil means
	// metrics.Default().
	Registry *metrics.Registry
	// Seed makes trace IDs — and therefore sampling decisions —
	// deterministic. Two tracers with equal seeds over equal workloads
	// sample the same trace IDs.
	Seed int64
	// SampleRate is the head-sampling probability in [0, 1]. Values >= 1
	// sample everything; <= 0 samples nothing (the zero-overhead mode).
	SampleRate float64
	// Capacity bounds the collector (DefaultCapacity when <= 0).
	Capacity int
	// SlowThreshold, when positive, flags any op span of at least this
	// duration as slow: the slow-op counter increments and the full span
	// (with its steps) is dumped to SlowLog.
	SlowThreshold time.Duration
	// SlowLog receives slow-op dumps; nil means io.Discard (the counter
	// and dump counter still advance together).
	SlowLog io.Writer
}

// Tracer is the routing.Observer that turns fabric activity into spans.
// Attach one to each instrumented fabric (it is safe to share a single
// Tracer across all four systems' fabrics — spans carry the system name).
type Tracer struct {
	clock     routing.Clock
	collector *Collector

	seed      uint64
	seq       atomic.Uint64 // trace-ID sequence
	spanSeq   atomic.Uint64 // span-ID sequence
	sampleAll bool
	threshold uint64 // 53-bit comparison threshold; 0 samples nothing

	slowNS  int64
	slowMu  sync.Mutex
	slowLog io.Writer

	sampled *metrics.CounterVec
	dropped *metrics.CounterVec
	slow    *metrics.CounterVec
	dumps   *metrics.CounterVec

	mu      sync.RWMutex
	handles map[string]*sysHandles
}

// sysHandles caches one system's pre-resolved counters so the per-op hooks
// never pay the labeled lookup.
type sysHandles struct {
	sampled *metrics.Counter
	dropped *metrics.Counter
	slow    *metrics.Counter
	dumps   *metrics.Counter
}

// opState is the per-sampled-op span assembly hung on the Op's trace slot.
// Unsampled ops never allocate one — that nil is the whole fast path.
type opState struct {
	span Span

	mu    sync.Mutex
	steps []Span
}

// New creates a Tracer from cfg and registers the tracing counter families
// (idempotently) on the registry.
func New(cfg Config) *Tracer {
	clock := cfg.Clock
	if clock == nil {
		clock = NewWallClock()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	slowLog := cfg.SlowLog
	if slowLog == nil {
		slowLog = io.Discard
	}
	t := &Tracer{
		clock:     clock,
		collector: NewCollector(cfg.Capacity),
		seed:      splitmix64(uint64(cfg.Seed) + 0x9e3779b97f4a7c15),
		sampleAll: cfg.SampleRate >= 1,
		threshold: sampleThreshold(cfg.SampleRate),
		slowNS:    cfg.SlowThreshold.Nanoseconds(),
		slowLog:   slowLog,
		sampled:   reg.CounterVec("tracing_spans_sampled_total", "fabric operations sampled into op spans", "system"),
		dropped:   reg.CounterVec("tracing_spans_dropped_total", "fabric operations finished without a sampled span", "system"),
		slow:      reg.CounterVec("tracing_slow_ops_total", "sampled operations at or above the slow threshold", "system"),
		dumps:     reg.CounterVec("tracing_slow_op_dumps_total", "slow-op dumps written to the slow log", "system"),
		handles:   make(map[string]*sysHandles),
	}
	for _, sys := range routing.KnownSystems {
		t.handlesFor(sys)
	}
	return t
}

// sampleThreshold maps a probability to a 53-bit integer threshold for
// comparison against the top 53 bits of a hashed trace ID.
func sampleThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return 1 << 53
	}
	return uint64(math.Round(rate * (1 << 53)))
}

// Collector exposes the tracer's span sink (for flushing, /trace, tests).
func (t *Tracer) Collector() *Collector { return t.collector }

// NeedsPath reports false: the tracer receives steps through OpStep and
// never reads op.Path(), so attaching it does not force path recording.
func (t *Tracer) NeedsPath() bool { return false }

func (t *Tracer) handlesFor(system string) *sysHandles {
	t.mu.RLock()
	h, ok := t.handles[system]
	t.mu.RUnlock()
	if ok {
		return h
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok = t.handles[system]; ok {
		return h
	}
	h = &sysHandles{
		sampled: t.sampled.With(system),
		dropped: t.dropped.With(system),
		slow:    t.slow.With(system),
		dumps:   t.dumps.With(system),
	}
	t.handles[system] = h
	return h
}

// splitmix64 is the SplitMix64 finalizer: a cheap, high-quality bijection
// used both to derive trace IDs from the seeded sequence and to hash a
// trace ID into its sampling decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) newTraceID() uint64 {
	for {
		id := splitmix64(t.seed ^ t.seq.Add(1))
		if id != 0 {
			return id
		}
	}
}

func (t *Tracer) newSpanID() uint64 {
	for {
		id := splitmix64(t.seed ^ (t.spanSeq.Add(1) | 1<<63))
		if id != 0 {
			return id
		}
	}
}

// Sampled reports the head-sampling decision for a trace ID: a hash of the
// ID compared against the rate threshold, so the decision is a pure
// function of the ID — every participant that sees the same trace agrees.
func (t *Tracer) Sampled(traceID uint64) bool {
	if t.sampleAll {
		return true
	}
	if t.threshold == 0 {
		return false
	}
	return splitmix64(traceID)>>11 < t.threshold
}

func (t *Tracer) nowNS() int64 {
	return int64(t.clock.Now() * 1e9)
}

// OpBegun implements routing.BeginObserver: it makes the sampling decision
// and, for sampled ops, opens the op span and stamps the Op with its trace
// identity so downstream wire calls propagate it. Unsampled ops are left
// untouched — nil trace state is the zero-allocation fast path.
func (t *Tracer) OpBegun(op *routing.Op) {
	tc := op.Trace()
	var trace, parent uint64
	var remote bool
	switch {
	case tc.Valid() && !tc.Sampled:
		// A remote root decided not to sample this trace; honor it so
		// traces are never partial. The op still counts as dropped.
		return
	case tc.Valid():
		trace, parent, remote = tc.TraceID, tc.SpanID, true
	default:
		trace = t.newTraceID()
		if !t.Sampled(trace) {
			// The unsampled path must not reach the opState allocation
			// below — that is the zero-allocation contract.
			return
		}
	}
	st := &opState{}
	st.span.Trace = trace
	st.span.Parent = parent
	st.span.Remote = remote
	st.span.Span = t.newSpanID()
	st.span.System = op.System
	st.span.Kind = string(op.Kind)
	st.span.Name = string(op.Kind)
	st.span.Tag = op.Tag
	st.span.Start = t.nowNS()
	op.SetTrace(discovery.TraceContext{TraceID: st.span.Trace, SpanID: st.span.Span, Sampled: true})
	op.SetTraceState(st)
}

// OpStep implements routing.Observer: sampled ops get one instant span per
// recorded step, parented under the op span.
func (t *Tracer) OpStep(op *routing.Op, step routing.Step) {
	state := op.TraceState()
	if state == nil {
		return
	}
	st := state.(*opState)
	sp := Span{
		Trace:  st.span.Trace,
		Span:   t.newSpanID(),
		Parent: st.span.Span,
		System: st.span.System,
		Name:   step.Reason.String(),
		Addr:   step.Addr,
		Start:  t.nowNS(),
	}
	st.mu.Lock()
	st.steps = append(st.steps, sp)
	st.mu.Unlock()
}

// OpFinished implements routing.Observer: it closes the op span, publishes
// it (and its steps) to the collector, and runs the slow-op check. Every
// finished op increments exactly one of the sampled/dropped counters, so
// their sum equals the fabric op total — the invariant metricscheck -trace
// verifies.
func (t *Tracer) OpFinished(op *routing.Op, cost discovery.Cost) {
	h := t.handlesFor(op.System)
	state := op.TraceState()
	if state == nil {
		h.dropped.Inc()
		return
	}
	st := state.(*opState)
	st.span.Dur = t.nowNS() - st.span.Start
	st.span.Hops = cost.Hops
	st.span.Visited = cost.Visited
	h.sampled.Inc()
	st.mu.Lock()
	steps := st.steps
	st.steps = nil
	st.mu.Unlock()
	t.collector.Add(st.span)
	for _, sp := range steps {
		t.collector.Add(sp)
	}
	if t.slowNS > 0 && st.span.Dur >= t.slowNS {
		h.slow.Inc()
		t.dumpSlow(st.span, steps)
		h.dumps.Inc()
	}
}

// dumpSlow writes one slow-op record: the op line followed by its steps,
// indented — a self-contained text dump of the whole span tree.
func (t *Tracer) dumpSlow(op Span, steps []Span) {
	var b strings.Builder
	fmt.Fprintf(&b, "SLOW op=%s system=%s tag=%s trace=%016x span=%016x dur=%s hops=%d visited=%d remote=%v\n",
		op.Name, op.System, op.Tag, op.Trace, op.Span, time.Duration(op.Dur), op.Hops, op.Visited, op.Remote)
	for _, sp := range steps {
		fmt.Fprintf(&b, "  +%-12s %-15s addr=%s\n", time.Duration(sp.Start-op.Start), sp.Name, sp.Addr)
	}
	t.slowMu.Lock()
	io.WriteString(t.slowLog, b.String())
	t.slowMu.Unlock()
}

// StartClient opens a caller-side root span — the client half of a remote
// call, outside any fabric op. It returns the wire context to send with the
// request and a finish func that closes and publishes the span. When the
// trace is not sampled the context still carries the (unsampled) identity,
// so the remote side drops its spans too, and finish is a no-op.
func (t *Tracer) StartClient(name string) (discovery.TraceContext, func()) {
	traceID := t.newTraceID()
	if !t.Sampled(traceID) {
		return discovery.TraceContext{TraceID: traceID}, func() {}
	}
	sp := Span{
		Trace:  traceID,
		Span:   t.newSpanID(),
		System: ClientKind,
		Kind:   ClientKind,
		Name:   name,
		Start:  t.nowNS(),
	}
	tc := discovery.TraceContext{TraceID: traceID, SpanID: sp.Span, Sampled: true}
	return tc, func() {
		sp.Dur = t.nowNS() - sp.Start
		t.collector.Add(sp)
	}
}
