package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
)

// DefaultCapacity bounds a Collector when the Config does not choose one:
// 64k spans ≈ a few MB resident, enough for the quick-preset sweeps and a
// generous slow-op window in a long-running node.
const DefaultCapacity = 1 << 16

// Collector is a bounded, lock-free span sink. Writers reserve a slot with
// one atomic add and publish it with one atomic store; once the preallocated
// slots are exhausted further spans are counted as evicted and dropped —
// tracing must never be the thing that makes a hot path slow or unbounded.
//
// Snapshot observes the per-slot publish flags with acquire loads, so it
// sees fully written spans only (the flag store is the release barrier) and
// is safe to call while writers are active.
type Collector struct {
	slots   []Span
	ready   []atomic.Bool
	next    atomic.Uint64
	evicted atomic.Uint64
}

// NewCollector creates a collector holding at most capacity spans
// (DefaultCapacity when capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{
		slots: make([]Span, capacity),
		ready: make([]atomic.Bool, capacity),
	}
}

// Add stores one span; it reports false (and counts an eviction) when the
// collector is full.
func (c *Collector) Add(sp Span) bool {
	i := c.next.Add(1) - 1
	if i >= uint64(len(c.slots)) {
		c.evicted.Add(1)
		return false
	}
	c.slots[i] = sp
	c.ready[i].Store(true)
	return true
}

// Len returns the number of published spans.
func (c *Collector) Len() int {
	n := c.next.Load()
	if n > uint64(len(c.slots)) {
		n = uint64(len(c.slots))
	}
	count := 0
	for i := uint64(0); i < n; i++ {
		if c.ready[i].Load() {
			count++
		}
	}
	return count
}

// Cap returns the collector's span capacity.
func (c *Collector) Cap() int { return len(c.slots) }

// Evicted returns how many spans were dropped because the collector was
// full.
func (c *Collector) Evicted() uint64 { return c.evicted.Load() }

// Snapshot copies every published span, in arrival order.
func (c *Collector) Snapshot() []Span {
	n := c.next.Load()
	if n > uint64(len(c.slots)) {
		n = uint64(len(c.slots))
	}
	out := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		if c.ready[i].Load() {
			out = append(out, c.slots[i])
		}
	}
	return out
}

// WriteJSONL writes the current snapshot as one JSON object per line — the
// interchange format cmd/lormtrace ingests and `lormnode serve` streams from
// its /trace endpoint.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range c.Snapshot() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans decodes a span-JSONL stream (the WriteJSONL format); blank
// lines are skipped.
func ReadSpans(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(b, &sp); err != nil {
			return nil, fmt.Errorf("tracing: span line %d: %w", line, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracing: read spans: %w", err)
	}
	return spans, nil
}
