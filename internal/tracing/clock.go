package tracing

import "time"

// WallClock adapts real time to the routing.Clock seam. It reports seconds
// since its creation using the monotonic clock, so span durations are immune
// to wall-clock adjustments. This file is the only place in internal/routing
// and internal/tracing allowed to touch the system clock (CI greps for
// time.Now outside it); everything else reads time through routing.Clock, so
// simulations substitute virtual time and tests substitute fakes.
type WallClock struct {
	base time.Time
}

// NewWallClock creates a wall clock anchored at the current instant.
func NewWallClock() *WallClock {
	return &WallClock{base: time.Now()}
}

// Now implements routing.Clock: seconds elapsed since the clock was created.
func (w *WallClock) Now() float64 {
	return time.Since(w.base).Seconds()
}
