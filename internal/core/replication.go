package core

import (
	"fmt"

	"lorm/internal/cycloid"
	"lorm/internal/directory"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// Replication is a LORM extension beyond the paper's evaluation: the paper
// models graceful departures only (keys are handed over, nothing is ever
// lost), but a production registry must also survive crashes. With a
// replication factor r > 1 every resource-information piece is stored on
// its root AND the root's r-1 ring successors; after abrupt failures a
// Repair pass restores the invariant, so queries keep returning complete
// answers as long as fewer than r consecutive nodes crash between repairs.

// SetReplicas configures the replication factor (minimum 1 = the paper's
// unreplicated behavior). It affects subsequent Register calls; call
// Repair to bring previously stored entries up to the new factor.
func (s *System) SetReplicas(r int) error {
	if r < 1 {
		return fmt.Errorf("core: replication factor %d < 1", r)
	}
	if int(uint64(r)) > int(s.overlay.Capacity()) {
		return fmt.Errorf("core: replication factor %d exceeds overlay capacity", r)
	}
	s.replicas = r
	return nil
}

// Replicas returns the configured replication factor.
func (s *System) Replicas() int {
	if s.replicas < 1 {
		return 1
	}
	return s.replicas
}

// replicate stores e on up to r-1 distinct successors of root, recording
// each placement as a replicate-forward into op. Returns the number of
// copies placed.
func (s *System) replicate(op *routing.Op, root *cycloid.Node, e directory.Entry) int {
	placed := 0
	cur := root
	for i := 1; i < s.Replicas(); i++ {
		next, ok := s.overlay.NextNode(cur)
		if !ok || next == root {
			break // wrapped: fewer live nodes than replicas
		}
		cur = next
		cur.Dir.Add(e)
		op.Forward(cur.Addr, cur.Pos, routing.ReasonReplicate)
		placed++
	}
	return placed
}

// FailNode crashes a node abruptly (no handover, no repair) — the failure
// model the replication extension exists for. It returns the number of
// directory entries that vanished with the node; with replication ≥ 2 and
// a subsequent Maintain()+Repair(), queries lose nothing.
func (s *System) FailNode(addr string) (lostEntries int, err error) {
	n, ok := s.overlay.NodeByAddr(addr)
	if !ok {
		return 0, fmt.Errorf("core: no node with address %q", addr)
	}
	return s.overlay.Fail(n)
}

// entryIdent identifies one logical resource-information piece.
type entryIdent struct {
	key   uint64
	attr  string
	value float64
	owner string
}

func identOf(e directory.Entry) entryIdent {
	return entryIdent{key: e.Key, attr: e.Info.Attr, value: e.Info.Value, owner: e.Info.Owner}
}

// Repair restores the replica invariant after membership changes: every
// logical piece ends up on exactly its current root and the root's r-1
// successors — misplaced copies are moved, missing copies recreated,
// surplus copies dropped. It is idempotent and returns the number of
// copies added and removed.
func (s *System) Repair() (added, removed int) {
	r := s.Replicas()
	nodes := s.overlay.Nodes()

	// Inventory: which nodes hold which logical pieces.
	holders := make(map[entryIdent]map[*cycloid.Node]bool)
	entries := make(map[entryIdent]directory.Entry)
	for _, n := range nodes {
		for _, e := range n.Dir.Snapshot() {
			id := identOf(e)
			if holders[id] == nil {
				holders[id] = make(map[*cycloid.Node]bool)
			}
			holders[id][n] = true
			entries[id] = e
		}
	}

	for id, held := range holders {
		e := entries[id]
		// Desired holders: the key's root and its r-1 successors.
		root, err := s.overlay.OwnerOf(s.overlay.IDOf(e.Key))
		if err != nil {
			continue
		}
		desired := map[*cycloid.Node]bool{root: true}
		cur := root
		for i := 1; i < r; i++ {
			next, ok := s.overlay.NextNode(cur)
			if !ok || next == root {
				break
			}
			cur = next
			desired[cur] = true
		}
		for n := range desired {
			if !held[n] {
				n.Dir.Add(e)
				added++
			}
		}
		for n := range held {
			if !desired[n] {
				// Targeted removal: ident covers every Entry field, so Remove(e)
				// deletes exactly the copies of this logical piece; loop in case
				// the node somehow accumulated duplicates.
				for n.Dir.Remove(e) {
				}
				removed++
			}
		}
	}
	return added, removed
}

// dedupe collapses replica copies in a match list to one entry per logical
// piece; used by queries when replication is enabled.
func dedupe(matches []resource.Info) []resource.Info {
	seen := make(map[entryIdent]bool, len(matches))
	out := matches[:0]
	for _, in := range matches {
		id := entryIdent{attr: in.Attr, value: in.Value, owner: in.Owner}
		if !seen[id] {
			seen[id] = true
			out = append(out, in)
		}
	}
	return out
}
