package core

import (
	"fmt"

	"lorm/internal/discovery"
	"lorm/internal/replication"
)

// Replication is a LORM extension beyond the paper's evaluation: the paper
// models graceful departures only (keys are handed over, nothing is ever
// lost), but a production registry must also survive crashes. With a
// replication factor r > 1 every resource-information piece is stored on
// its root AND the root's r-1 ring successors; after abrupt failures a
// Repair pass restores the invariant, so queries keep returning complete
// answers as long as fewer than r consecutive nodes crash between repairs.
//
// The mechanics — placement, repair, dedupe, hot-key promotion and
// replica-aware reads — live in the shared internal/replication layer over
// the overlay's Placement view; this file is LORM's thin binding to it.

var _ discovery.Replicated = (*System)(nil)

// SetReplicas configures the replication factor (minimum 1 = the paper's
// unreplicated behavior). It affects subsequent Register calls; call
// Repair to bring previously stored entries up to the new factor.
func (s *System) SetReplicas(r int) error { return s.rep.SetFactor(r) }

// Replicas returns the configured replication factor.
func (s *System) Replicas() int { return s.rep.Factor() }

// Repair restores the replica invariant after membership changes: every
// logical piece ends up on exactly its current root and its successors up
// to the key's effective fan-out — missing copies are recreated, surplus
// and invalidated copies dropped. It is idempotent and returns the number
// of copies added and removed.
func (s *System) Repair() (added, removed int) { return s.rep.Repair() }

// PromoteHot promotes the hottest key-groups to replicated reads, driven
// by a traffic-ledger visit report; see replication.Replicator.PromoteHot.
func (s *System) PromoteHot(visits []discovery.NodeLoad, opts replication.HotKeyOptions) int {
	return s.rep.PromoteHot(visits, opts)
}

// Replicator exposes the replication layer for experiments and tests.
func (s *System) Replicator() *replication.Replicator { return s.rep }

// FailNode crashes a node abruptly (no handover, no repair) — the failure
// model the replication extension exists for. It returns the number of
// directory entries that vanished with the node; with replication ≥ 2 and
// a subsequent Maintain()+Repair(), queries lose nothing.
func (s *System) FailNode(addr string) (lostEntries int, err error) {
	n, ok := s.overlay.NodeByAddr(addr)
	if !ok {
		return 0, fmt.Errorf("core: no node with address %q", addr)
	}
	return s.overlay.Fail(n)
}
