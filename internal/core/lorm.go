// Package core implements LORM — the paper's primary contribution: a
// Low-Overhead Range-query Multi-attribute resource discovery service on a
// single hierarchical Cycloid DHT [9].
//
// LORM exploits Cycloid's two-level identifier space:
//
//   - the cubical index (which cluster) carries the consistent hash H of
//     the attribute name, so each cluster is the home of one attribute's
//     resource information;
//   - the cyclic index (which position inside the cluster) carries the
//     locality-preserving hash ℋ of the attribute value, so value order is
//     preserved inside the cluster and a range query resolves by walking a
//     handful of intra-cluster successors.
//
// A resource with attribute a and value δπ_a is announced under
// rescID = (ℋ(δπ_a), H(a)); a range query [π₁, π₂] routes to
// root(ℋ(π₁), H(a)) and walks successors until the node owning
// (ℋ(π₂), H(a)) answers — Proposition 3.1 guarantees every piece in the
// range lives on that contiguous run of nodes. Multi-attribute queries
// fan out sub-queries in parallel and join the answers on the owner
// address.
package core

import (
	"fmt"
	"log/slog"

	"lorm/internal/cycloid"
	"lorm/internal/directory"
	"lorm/internal/discovery"
	"lorm/internal/hashing"
	"lorm/internal/replication"
	"lorm/internal/resource"
	"lorm/internal/ring"
	"lorm/internal/routing"
)

// Config parameterizes a LORM deployment.
type Config struct {
	// D is the Cycloid dimension; the paper's operating point is 8
	// (capacity d·2^d = 2048 nodes).
	D int
	// Schema is the globally known attribute set.
	Schema *resource.Schema
	// Salt namespaces node identifiers when several overlays coexist.
	Salt string
	// Logger, when non-nil, receives structured replication lifecycle
	// events (hot-key promotion/demotion) at Debug level.
	Logger *slog.Logger
}

// System is a LORM deployment. It implements discovery.System and
// discovery.Dynamic.
type System struct {
	schema    *resource.Schema
	overlay   *cycloid.Overlay
	cubeSpace ring.Space // d-bit space: consistent hash of attribute → cluster
	rep       *replication.Replicator
	fabric    *routing.Fabric
}

var (
	_ discovery.System     = (*System)(nil)
	_ discovery.Dynamic    = (*System)(nil)
	_ discovery.Crashable  = (*System)(nil)
	_ routing.Instrumented = (*System)(nil)
)

// New creates an empty LORM system; populate it with AddNodes,
// PopulateComplete, or protocol AddNode calls.
func New(cfg Config) (*System, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("core: config needs a schema")
	}
	ov, err := cycloid.New(cycloid.Config{D: cfg.D, Salt: cfg.Salt})
	if err != nil {
		return nil, err
	}
	return &System{
		schema:    cfg.Schema,
		overlay:   ov,
		cubeSpace: ring.NewSpace(uint(cfg.D)),
		rep:       replication.NewReplicator(ov.Placement(), replication.WithLogger(cfg.Logger)),
		fabric:    routing.NewFabric("lorm"),
	}, nil
}

// RoutingFabric implements routing.Instrumented.
func (s *System) RoutingFabric() *routing.Fabric { return s.fabric }

// AddNodes bulk-populates the overlay with the given node addresses.
func (s *System) AddNodes(addrs []string) error { return s.overlay.AddBulk(addrs) }

// PopulateComplete fills every identifier slot — the paper's n = d·2^d
// operating point.
func (s *System) PopulateComplete() error { return s.overlay.AddComplete() }

// Overlay exposes the underlying Cycloid for experiments and diagnostics.
func (s *System) Overlay() *cycloid.Overlay { return s.overlay }

// Name implements discovery.System.
func (s *System) Name() string { return "lorm" }

// Schema implements discovery.System.
func (s *System) Schema() *resource.Schema { return s.schema }

// NodeCount implements discovery.System.
func (s *System) NodeCount() int { return s.overlay.Size() }

// clusterOf returns the cubical index H(attr) — the attribute's home
// cluster.
func (s *System) clusterOf(attr string) uint64 {
	return hashing.Consistent(s.cubeSpace, attr)
}

// cyclicOf returns the locality-preserving hash ℋ(value) quantized onto
// the cyclic index space [0, d): monotone in the value (so ranges map to
// runs of cyclic indices) and quantile-based when the attribute declares
// its value distribution (so cluster load stays balanced under skew).
func (s *System) cyclicOf(a resource.Attribute, v float64) int {
	k := int(a.Frac(v) * float64(s.overlay.D()))
	if k >= s.overlay.D() {
		k = s.overlay.D() - 1
	}
	return k
}

// RescID computes the two-level resource identifier (ℋ(value), H(attr))
// of Section III.
func (s *System) RescID(attr string, value float64) (cycloid.ID, error) {
	a, ok := s.schema.Lookup(attr)
	if !ok {
		return cycloid.ID{}, fmt.Errorf("core: unknown attribute %q", attr)
	}
	return cycloid.ID{K: s.cyclicOf(a, value), A: s.clusterOf(attr)}, nil
}

// Register implements discovery.System: it announces one piece of
// available-resource information via Insert(rescID, rescInfo), routing
// from the node nearest the announcing owner.
func (s *System) Register(info resource.Info) (discovery.Cost, error) {
	return s.RegisterTraced(info, discovery.TraceContext{})
}

// RegisterTraced implements discovery.Traced: Register parented under the
// caller's trace context.
func (s *System) RegisterTraced(info resource.Info, tc discovery.TraceContext) (cost discovery.Cost, err error) {
	key, err := s.RescID(info.Attr, info.Value)
	if err != nil {
		return cost, err
	}
	from, err := s.overlay.NodeNear(info.Owner)
	if err != nil {
		return cost, err
	}
	op := s.fabric.BeginTraced(routing.OpRegister, info.Owner, tc)
	e := directory.Entry{Key: s.overlay.Pos(key), Info: info}
	route, err := s.overlay.InsertOp(op, from, key, e)
	if err != nil {
		op.Finish()
		return cost, err
	}
	// Replication extension: place copies on the root's ring successors
	// (and invalidate any hot-key promotion of the re-announced key-group).
	s.rep.Place(op, route.Root.Pos, e)
	return op.Finish(), nil
}

// Discover implements discovery.System. Sub-queries run in parallel; each
// routes to the root of its lower bound and, for ranges, walks
// intra-cluster successors until the owner of the upper bound has been
// consulted.
func (s *System) Discover(q resource.Query) (*discovery.Result, error) {
	return s.DiscoverTraced(q, discovery.TraceContext{})
}

// DiscoverTraced implements discovery.Traced: Discover parented under the
// caller's trace context.
func (s *System) DiscoverTraced(q resource.Query, tc discovery.TraceContext) (*discovery.Result, error) {
	if err := q.Validate(s.schema); err != nil {
		return nil, err
	}
	from, err := s.overlay.NodeNear(q.Requester)
	if err != nil {
		return nil, err
	}
	op := s.fabric.BeginTraced(routing.OpDiscover, q.Requester, tc)
	defer op.Finish()
	res, err := discovery.RunSubs(q, func(sub resource.SubQuery) ([]resource.Info, error) {
		return s.resolveSub(op, from, sub)
	})
	if err != nil {
		return nil, err
	}
	res.Cost = op.Cost()
	return res, nil
}

// resolveSub resolves one sub-query from the given start node, recording
// forwards and directory visits into the shared per-query op.
func (s *System) resolveSub(op *routing.Op, from *cycloid.Node, sub resource.SubQuery) ([]resource.Info, error) {
	a, _ := s.schema.Lookup(sub.Attr) // validated by Discover
	cluster := s.clusterOf(sub.Attr)
	loKey := cycloid.ID{K: s.cyclicOf(a, sub.Low), A: cluster}
	hiKey := cycloid.ID{K: s.cyclicOf(a, sub.High), A: cluster}

	// Replica-aware read: a single-key sub-query whose key-group is
	// hot-promoted routes to the power-of-two-choices holder instead of the
	// root; the losing candidate is probed (one ReasonReplicaRead forward),
	// keeping Messages = Hops + Visited exact. Keys without a promotion —
	// including everything while replication is off — take the unmodified
	// root-walk path below.
	if loKey == hiKey {
		if plan, ok := s.rep.PlanRead(s.overlay.Pos(loKey)); ok {
			route, err := s.overlay.LookupOp(op, from, s.overlay.IDOf(plan.Target.Pos))
			if err != nil {
				return nil, err
			}
			op.Visit(route.Root.Addr, route.Root.Pos)
			op.Forward(plan.Probe.Addr, plan.Probe.Pos, routing.ReasonReplicaRead)
			g := replication.NewGather()
			g.AddBatch(route.Root.Dir.MatchEntriesAppend(nil, sub.Attr, sub.Low, sub.High))
			return g.Infos(), nil
		}
	}

	route, err := s.overlay.LookupOp(op, from, loKey)
	if err != nil {
		return nil, err
	}
	cur := route.Root
	op.Visit(cur.Addr, cur.Pos)

	// With replicas in play the walk collects entries (keys included) into
	// a Gather that suppresses replica copies per logical entry; otherwise
	// matches append straight into the result, allocation-light.
	var (
		matches []resource.Info
		g       *replication.Gather
		ebuf    []directory.Entry
	)
	if s.rep.Active() {
		g = replication.NewGather()
	}
	collect := func(n *cycloid.Node) {
		if g != nil {
			ebuf = n.Dir.MatchEntriesAppend(ebuf[:0], sub.Attr, sub.Low, sub.High)
			g.AddBatch(ebuf)
			return
		}
		matches = n.Dir.MatchAppend(matches, sub.Attr, sub.Low, sub.High)
	}
	collect(cur)

	// Range walk: forward along intra-cluster successors until the walk's
	// cumulative progress through the key space covers the upper bound
	// (Proposition 3.1: all matching pieces live on this contiguous run of
	// nodes). Progress is accumulated rather than compared against node
	// ownership so intervals whose two bounds resolve to the same wrapped
	// owner still visit the run in between.
	target := s.overlay.CwDist(s.overlay.Pos(loKey), s.overlay.Pos(hiKey))
	covered := s.overlay.CwDist(s.overlay.Pos(loKey), cur.Pos)
	for covered < target {
		next, ok := s.overlay.NextNode(cur)
		if !ok || next == route.Root {
			break // single node, or full circle: everything consulted
		}
		covered += s.overlay.CwDist(cur.Pos, next.Pos)
		cur = next
		op.Forward(cur.Addr, cur.Pos, routing.ReasonRangeWalk)
		op.Visit(cur.Addr, cur.Pos)
		collect(cur)
	}
	if g != nil {
		return g.Infos(), nil
	}
	return matches, nil
}

// DirectorySizes implements discovery.System.
func (s *System) DirectorySizes() []int { return s.overlay.DirectorySizes() }

// OutlinkCounts implements discovery.System.
func (s *System) OutlinkCounts() []int { return s.overlay.OutlinkCounts() }

// AddNode implements discovery.Dynamic via a Cycloid protocol join.
func (s *System) AddNode(addr string) error {
	_, err := s.overlay.Join(addr)
	return err
}

// RemoveNode implements discovery.Dynamic via a graceful departure.
func (s *System) RemoveNode(addr string) error {
	n, ok := s.overlay.NodeByAddr(addr)
	if !ok {
		return fmt.Errorf("core: no node with address %q", addr)
	}
	return s.overlay.Leave(n)
}

// NodeAddrs implements discovery.Dynamic.
func (s *System) NodeAddrs() []string { return s.overlay.Addrs() }

// Maintain implements discovery.Dynamic: one self-organization round,
// followed by a replica-repair pass when any replicas (base factor or
// hot-key promotions) are in play.
func (s *System) Maintain() {
	s.overlay.Stabilize()
	if s.rep.Active() {
		s.rep.Repair()
	}
}
