package core

import (
	"lorm/internal/discovery"
	"lorm/internal/loadbalance"
)

var _ discovery.Balancer = (*System)(nil)

var _ discovery.Traced = (*System)(nil)

// DirectoryLoads implements discovery.Balancer: per-node directory sizes in
// ring order along the linearized Cycloid positions.
func (s *System) DirectoryLoads() []discovery.NodeLoad {
	nodes := s.overlay.Nodes()
	out := make([]discovery.NodeLoad, len(nodes))
	for i, n := range nodes {
		out[i] = discovery.NodeLoad{Addr: n.Addr, Entries: n.Dir.Len()}
	}
	return out
}

// Rebalance implements discovery.Balancer: one neighbor item-migration
// pass over the Cycloid overlay. LORM's cluster hashing spreads each
// attribute over a 2^d-position cluster, so hotspot intervals contain many
// key-groups and migration can split them — but only while the overlay has
// free positions. At the paper's complete operating point (n = d·2^d)
// every slot is taken and every hotspot reports blocked; the load
// experiment deploys LORM sparse for exactly this reason.
func (s *System) Rebalance() (discovery.MigrationStats, error) {
	return loadbalance.RebalanceCycloid(s.overlay, loadbalance.Options{}), nil
}
