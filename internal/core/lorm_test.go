package core

import (
	"fmt"
	"testing"

	"lorm/internal/resource"
	"lorm/internal/workload"
)

func testSchema() *resource.Schema {
	return resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
		resource.Attribute{Name: "disk", Min: 1, Max: 2000},
	)
}

func buildLORM(t testing.TB, d int, complete bool, n int) *System {
	t.Helper()
	s, err := New(Config{D: d, Schema: testSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		if err := s.PopulateComplete(); err != nil {
			t.Fatal(err)
		}
	} else {
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("node-%04d", i)
		}
		if err := s.AddNodes(addrs); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{D: 8}); err == nil {
		t.Fatal("New without schema should error")
	}
	if _, err := New(Config{D: 0, Schema: testSchema()}); err == nil {
		t.Fatal("New with bad dimension should error")
	}
}

func TestRescIDStructure(t *testing.T) {
	s := buildLORM(t, 8, false, 64)
	id1, err := s.RescID("cpu", 500)
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := s.RescID("cpu", 3000)
	if id1.A != id2.A {
		t.Fatalf("same attribute mapped to different clusters: %v vs %v", id1, id2)
	}
	id3, _ := s.RescID("mem", 500)
	if id3.A == id1.A {
		t.Logf("cpu and mem share a cluster (possible hash collision): %v", id1.A)
	}
	if _, err := s.RescID("gpu", 1); err == nil {
		t.Fatal("RescID on unknown attribute should error")
	}
}

// The cyclic index must be monotone in the value (the locality-preserving
// property Proposition 3.1 relies on).
func TestRescIDMonotoneInValue(t *testing.T) {
	s := buildLORM(t, 8, false, 64)
	prev := -1
	for v := 100.0; v <= 3200; v += 25 {
		id, err := s.RescID("cpu", v)
		if err != nil {
			t.Fatal(err)
		}
		if id.K < prev {
			t.Fatalf("cyclic index not monotone at value %v: %d < %d", v, id.K, prev)
		}
		if id.K < 0 || id.K >= 8 {
			t.Fatalf("cyclic index %d out of range", id.K)
		}
		prev = id.K
	}
	// Domain endpoints hit the first and last cyclic positions.
	lo, _ := s.RescID("cpu", 100)
	hi, _ := s.RescID("cpu", 3200)
	if lo.K != 0 || hi.K != 7 {
		t.Fatalf("endpoint cyclic indices = %d, %d; want 0, 7", lo.K, hi.K)
	}
}

func TestRegisterAndExactDiscover(t *testing.T) {
	s := buildLORM(t, 6, true, 0)
	info := resource.Info{Attr: "cpu", Value: 1800, Owner: "10.0.0.1"}
	cost, err := s.Register(info)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Hops < 0 || cost.Hops > 8*6 {
		t.Fatalf("register hops = %d out of range", cost.Hops)
	}
	res, err := s.Discover(resource.Query{
		Subs:      []resource.SubQuery{{Attr: "cpu", Low: 1800, High: 1800}},
		Requester: "requester-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Owners) != 1 || res.Owners[0] != "10.0.0.1" {
		t.Fatalf("Owners = %v, want [10.0.0.1]", res.Owners)
	}
	if res.Cost.Visited != 1 {
		t.Fatalf("exact query visited %d nodes, want 1", res.Cost.Visited)
	}
}

func TestDiscoverValidates(t *testing.T) {
	s := buildLORM(t, 6, false, 32)
	if _, err := s.Discover(resource.Query{}); err == nil {
		t.Fatal("empty query should error")
	}
	q := resource.Query{Subs: []resource.SubQuery{{Attr: "gpu", Low: 1, High: 2}}}
	if _, err := s.Discover(q); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestRangeDiscoverComplete(t *testing.T) {
	s := buildLORM(t, 6, true, 0)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(11, 0)
	type reg struct {
		v     float64
		owner string
	}
	var regs []reg
	for i := 0; i < 300; i++ {
		a, _ := testSchema().Lookup("cpu")
		v := gen.Value(rng, a)
		owner := fmt.Sprintf("owner-%03d", i)
		if _, err := s.Register(resource.Info{Attr: "cpu", Value: v, Owner: owner}); err != nil {
			t.Fatal(err)
		}
		regs = append(regs, reg{v, owner})
	}
	lo, hi := 400.0, 1600.0
	res, err := s.Discover(resource.Query{
		Subs:      []resource.SubQuery{{Attr: "cpu", Low: lo, High: hi}},
		Requester: "r",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, r := range regs {
		if r.v >= lo && r.v <= hi {
			want[r.owner] = true
		}
	}
	got := map[string]bool{}
	for _, o := range res.Owners {
		got[o] = true
	}
	if len(got) != len(want) {
		t.Fatalf("range query returned %d owners, brute force says %d", len(got), len(want))
	}
	for o := range want {
		if !got[o] {
			t.Fatalf("missing owner %s", o)
		}
	}
	// The walk must stay inside one cluster: at most d visited nodes plus
	// the root.
	if res.Cost.Visited > 6+1 {
		t.Fatalf("range query visited %d nodes, want ≤ d+1 = 7", res.Cost.Visited)
	}
}

func TestMultiAttributeJoin(t *testing.T) {
	s := buildLORM(t, 6, true, 0)
	// node-a satisfies both attributes, node-b only one.
	for _, in := range []resource.Info{
		{Attr: "cpu", Value: 2000, Owner: "node-a"},
		{Attr: "mem", Value: 4096, Owner: "node-a"},
		{Attr: "cpu", Value: 2000, Owner: "node-b"},
		{Attr: "mem", Value: 128, Owner: "node-b"},
	} {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Discover(resource.Query{
		Subs: []resource.SubQuery{
			{Attr: "cpu", Low: 1500, High: 2500},
			{Attr: "mem", Low: 2048, High: 8192},
		},
		Requester: "r",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Owners) != 1 || res.Owners[0] != "node-a" {
		t.Fatalf("join = %v, want [node-a]", res.Owners)
	}
	if len(res.PerAttr["cpu"]) != 2 || len(res.PerAttr["mem"]) != 1 {
		t.Fatalf("per-attr sizes: cpu=%d mem=%d", len(res.PerAttr["cpu"]), len(res.PerAttr["mem"]))
	}
}

func TestDirectorySizesAccount(t *testing.T) {
	s := buildLORM(t, 6, false, 100)
	gen := workload.NewGenerator(testSchema(), 1.5)
	infos := gen.Announcements(workload.Split(12, 0), 40)
	for _, in := range infos {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, sz := range s.DirectorySizes() {
		total += sz
	}
	if total != len(infos) {
		t.Fatalf("stored %d pieces, registered %d", total, len(infos))
	}
}

func TestOutlinksConstant(t *testing.T) {
	s := buildLORM(t, 8, false, 500)
	for _, c := range s.OutlinkCounts() {
		if c > 7 {
			t.Fatalf("outlink count %d exceeds Cycloid's constant degree", c)
		}
	}
}

func TestDynamicChurn(t *testing.T) {
	s := buildLORM(t, 7, false, 120)
	gen := workload.NewGenerator(testSchema(), 1.5)
	infos := gen.Announcements(workload.Split(13, 0), 30)
	for _, in := range infos {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: joins and graceful departures with maintenance.
	for i := 0; i < 25; i++ {
		if err := s.AddNode(fmt.Sprintf("joiner-%03d", i)); err != nil {
			t.Fatal(err)
		}
		addrs := s.NodeAddrs()
		if err := s.RemoveNode(addrs[(i*37)%len(addrs)]); err != nil {
			t.Fatal(err)
		}
		s.Maintain()
	}
	if err := s.RemoveNode("not-there"); err == nil {
		t.Fatal("RemoveNode of unknown address should error")
	}
	// No information lost, queries still correct.
	total := 0
	for _, sz := range s.DirectorySizes() {
		total += sz
	}
	if total != len(infos) {
		t.Fatalf("churn lost information: %d stored, want %d", total, len(infos))
	}
	res, err := s.Discover(resource.Query{
		Subs:      []resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}},
		Requester: "r",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerAttr["cpu"]) != 30 {
		t.Fatalf("full-domain query found %d cpu pieces, want 30", len(res.PerAttr["cpu"]))
	}
}

func TestNameAndSchema(t *testing.T) {
	s := buildLORM(t, 6, false, 16)
	if s.Name() != "lorm" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Schema().Len() != 3 {
		t.Fatalf("Schema len = %d", s.Schema().Len())
	}
	if s.NodeCount() != 16 {
		t.Fatalf("NodeCount = %d", s.NodeCount())
	}
	if s.Overlay() == nil {
		t.Fatal("Overlay accessor returned nil")
	}
}

func BenchmarkRegister(b *testing.B) {
	s := buildLORM(b, 8, true, 0)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(1, 0)
	a, _ := testSchema().Lookup("cpu")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := resource.Info{Attr: "cpu", Value: gen.Value(rng, a), Owner: fmt.Sprintf("o%d", i)}
		if _, err := s.Register(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeDiscover(b *testing.B) {
	s := buildLORM(b, 8, true, 0)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(2, 0)
	for _, in := range gen.Announcements(rng, 200) {
		if _, err := s.Register(in); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := gen.RangeQuery(rng, 2, 0.5, fmt.Sprintf("r%d", i))
		if _, err := s.Discover(q); err != nil {
			b.Fatal(err)
		}
	}
}
