package core

import "lorm/internal/discovery"

var _ discovery.NetAware = (*System)(nil)

// SetReachability implements discovery.NetAware: every subsequent lookup
// and intra-cluster range walk consults the plane, so queries that would
// have to cross a partition or blackhole fail (or truncate) instead of
// resolving against nodes their messages cannot reach.
func (s *System) SetReachability(r discovery.Reachability) {
	s.overlay.SetReachability(r)
}
