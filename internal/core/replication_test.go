package core

import (
	"fmt"
	"testing"

	"lorm/internal/resource"
	"lorm/internal/workload"
)

func TestSetReplicasValidation(t *testing.T) {
	s := buildLORM(t, 6, false, 32)
	if err := s.SetReplicas(0); err == nil {
		t.Fatal("SetReplicas(0) should error")
	}
	if err := s.SetReplicas(1 << 20); err == nil {
		t.Fatal("absurd replication factor should error")
	}
	if err := s.SetReplicas(3); err != nil {
		t.Fatal(err)
	}
	if s.Replicas() != 3 {
		t.Fatalf("Replicas = %d", s.Replicas())
	}
}

func TestReplicationStoresCopies(t *testing.T) {
	s := buildLORM(t, 6, false, 64)
	if err := s.SetReplicas(3); err != nil {
		t.Fatal(err)
	}
	const pieces = 40
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(61, 0)
	for _, in := range gen.Announcements(rng, pieces/3+1)[:pieces] {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, sz := range s.DirectorySizes() {
		total += sz
	}
	if total != 3*pieces {
		t.Fatalf("stored %d copies, want %d (3 replicas × %d pieces)", total, 3*pieces, pieces)
	}
}

// Queries must not return duplicate matches despite the extra copies.
func TestReplicationQueriesDeduplicate(t *testing.T) {
	s := buildLORM(t, 6, true, 0)
	if err := s.SetReplicas(3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(resource.Info{Attr: "cpu", Value: 1600, Owner: "solo"}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Discover(resource.Query{
		Subs:      []resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}},
		Requester: "r",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerAttr["cpu"]) != 1 {
		t.Fatalf("matches = %v, want exactly one despite replication", res.PerAttr["cpu"])
	}
}

// The headline property: with r=2, an abrupt crash loses nothing the
// queries can observe after Maintain (stabilize + repair).
func TestCrashWithReplicationLosesNothing(t *testing.T) {
	s := buildLORM(t, 6, false, 80)
	if err := s.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	const pieces = 60
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(62, 0)
	for _, in := range gen.Announcements(rng, pieces/3)[:pieces] {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	// Crash 10 nodes, repairing between crashes (the invariant tolerates
	// < r consecutive losses per repair interval).
	for i := 0; i < 10; i++ {
		addrs := s.NodeAddrs()
		victim := addrs[(i*31)%len(addrs)]
		if _, err := s.FailNode(victim); err != nil {
			t.Fatal(err)
		}
		s.Maintain()
	}
	// Full-domain queries per attribute must still see every piece.
	found := 0
	for _, a := range testSchema().Attributes() {
		res, err := s.Discover(resource.Query{
			Subs:      []resource.SubQuery{{Attr: a.Name, Low: a.Min, High: a.Max}},
			Requester: "verifier",
		})
		if err != nil {
			t.Fatal(err)
		}
		found += len(res.PerAttr[a.Name])
	}
	if found != pieces {
		t.Fatalf("after crashes queries see %d pieces, want %d", found, pieces)
	}
}

// Control: without replication the same crash schedule DOES lose entries —
// the extension is doing real work.
func TestCrashWithoutReplicationLosesEntries(t *testing.T) {
	s := buildLORM(t, 6, false, 80)
	const pieces = 60
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(62, 0) // same seed as the replicated test
	for _, in := range gen.Announcements(rng, pieces/3)[:pieces] {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	lost := 0
	for i := 0; i < 10; i++ {
		addrs := s.NodeAddrs()
		victim := addrs[(i*31)%len(addrs)]
		n, err := s.FailNode(victim)
		if err != nil {
			t.Fatal(err)
		}
		lost += n
		s.Maintain()
	}
	if lost == 0 {
		t.Skip("crash schedule happened to hit only empty nodes; no loss to demonstrate")
	}
	total := 0
	for _, sz := range s.DirectorySizes() {
		total += sz
	}
	if total != pieces-lost {
		t.Fatalf("stored %d, want %d after losing %d", total, pieces-lost, lost)
	}
}

func TestRepairIdempotent(t *testing.T) {
	s := buildLORM(t, 6, false, 40)
	if err := s.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		in := resource.Info{Attr: "cpu", Value: float64(200 + i*100), Owner: fmt.Sprintf("o%d", i)}
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	if a, r := s.Repair(); a != 0 || r != 0 {
		t.Fatalf("repair on a clean system changed state: +%d -%d", a, r)
	}
	// Raising the factor and repairing adds exactly one copy per piece.
	if err := s.SetReplicas(3); err != nil {
		t.Fatal(err)
	}
	if a, r := s.Repair(); a != 20 || r != 0 {
		t.Fatalf("repair after raising factor: +%d -%d, want +20 -0", a, r)
	}
	if a, r := s.Repair(); a != 0 || r != 0 {
		t.Fatalf("second repair not idempotent: +%d -%d", a, r)
	}
	// Lowering it and repairing removes the surplus.
	if err := s.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	if a, r := s.Repair(); a != 0 || r != 20 {
		t.Fatalf("repair after lowering factor: +%d -%d, want +0 -20", a, r)
	}
}

func TestFailNodeErrors(t *testing.T) {
	s := buildLORM(t, 6, false, 4)
	if _, err := s.FailNode("ghost"); err == nil {
		t.Fatal("failing unknown node should error")
	}
}
