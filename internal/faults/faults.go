// Package faults models crash failures for the discovery systems: a
// deterministic, seedable plan of node departures arriving as a Poisson
// process over the sim virtual clock, each departure classified as an
// abrupt crash or a graceful leave by a configurable ratio.
//
// The paper's churn evaluation (Section V.C) models graceful departures
// only — keys are handed over and nothing is ever lost. A fault plan is the
// knob that breaks that assumption on purpose: the churn driver draws
// departure events from it and applies them through discovery.Crashable
// (crashes) or discovery.Dynamic (graceful leaves), so the same seeded run
// is reproducible event for event across systems and replication factors.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"lorm/internal/discovery"
)

// Kind classifies one departure event.
type Kind uint8

const (
	// Graceful is the paper's model: the node hands its keys to its
	// successor and neighbors repair their pointers immediately.
	Graceful Kind = iota
	// Crash is an abrupt failure: the node vanishes with its directory
	// contents; no handover, no repair.
	Crash
)

func (k Kind) String() string {
	if k == Crash {
		return "crash"
	}
	return "graceful"
}

// Config parameterizes a fault plan.
type Config struct {
	// Rate is the Poisson departure rate (events per virtual second),
	// covering crashes and graceful leaves together.
	Rate float64
	// CrashFraction is the probability that a departure is a crash rather
	// than a graceful leave, in [0, 1]. 0 reproduces the paper's
	// graceful-only model; 1 makes every departure abrupt.
	CrashFraction float64
	// Rng drives both the exponential inter-arrival draws and the kind
	// classification; required. Give the plan its own Split stream so its
	// draws never perturb the caller's.
	Rng *rand.Rand
}

// Event is one planned departure: the delay since the previous event and
// its kind.
type Event struct {
	After float64
	Kind  Kind
}

// Scheduled is one planned departure at an absolute virtual time.
type Scheduled struct {
	At   float64
	Kind Kind
}

// Plan is a deterministic stream of departure events. It is not safe for
// concurrent use; the discrete-event simulation is single-threaded.
type Plan struct {
	cfg Config
}

// New validates the configuration and returns a plan.
func New(cfg Config) (*Plan, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("faults: rate %v must be positive", cfg.Rate)
	}
	if cfg.CrashFraction < 0 || cfg.CrashFraction > 1 {
		return nil, fmt.Errorf("faults: crash fraction %v outside [0, 1]", cfg.CrashFraction)
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("faults: config needs an Rng")
	}
	return &Plan{cfg: cfg}, nil
}

// Rate returns the plan's departure rate.
func (p *Plan) Rate() float64 { return p.cfg.Rate }

// CrashFraction returns the plan's crash:graceful ratio.
func (p *Plan) CrashFraction() float64 { return p.cfg.CrashFraction }

// Next draws the next departure: an exponential inter-arrival delay and the
// event's kind. The kind draw is skipped at the degenerate fractions (0 and
// 1), so a graceful-only plan consumes exactly one random number per event.
func (p *Plan) Next() Event {
	u := p.cfg.Rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	ev := Event{After: -math.Log(u) / p.cfg.Rate}
	switch {
	case p.cfg.CrashFraction >= 1:
		ev.Kind = Crash
	case p.cfg.CrashFraction > 0 && p.cfg.Rng.Float64() < p.cfg.CrashFraction:
		ev.Kind = Crash
	}
	return ev
}

// Schedule pre-generates every departure with an arrival time within the
// horizon, for tests and offline inspection. It consumes the same draws
// Next would, so a schedule and a live run from identically seeded plans
// agree event for event.
func (p *Plan) Schedule(horizon float64) []Scheduled {
	var out []Scheduled
	at := 0.0
	for {
		ev := p.Next()
		at += ev.After
		if at > horizon {
			return out
		}
		out = append(out, Scheduled{At: at, Kind: ev.Kind})
	}
}

// Apply executes one departure of the given kind against the system: a
// crash through discovery.Crashable when the system supports it, a graceful
// RemoveNode otherwise. It returns the kind actually applied (a crash
// requested of a non-Crashable system degrades to graceful) and, for
// crashes, the number of directory entries lost with the node.
func Apply(sys discovery.Dynamic, kind Kind, victim string) (applied Kind, lostEntries int, err error) {
	if kind == Crash {
		if c, ok := sys.(discovery.Crashable); ok {
			lost, err := c.FailNode(victim)
			return Crash, lost, err
		}
	}
	return Graceful, 0, sys.RemoveNode(victim)
}
