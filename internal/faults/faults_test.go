package faults

import (
	"math/rand"
	"testing"
)

func TestPlanValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []Config{
		{Rate: 0, CrashFraction: 0.5, Rng: rng},
		{Rate: -1, CrashFraction: 0.5, Rng: rng},
		{Rate: 1, CrashFraction: -0.1, Rng: rng},
		{Rate: 1, CrashFraction: 1.1, Rng: rng},
		{Rate: 1, CrashFraction: 0.5},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	mk := func() *Plan {
		p, err := New(Config{Rate: 0.4, CrashFraction: 0.5, Rng: rand.New(rand.NewSource(7))})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk().Schedule(200), mk().Schedule(200)
	if len(a) == 0 {
		t.Fatal("empty schedule over a 200s horizon at rate 0.4")
	}
	if len(a) != len(b) {
		t.Fatalf("identically seeded plans differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPlanCrashFraction(t *testing.T) {
	cases := []struct {
		frac     float64
		min, max float64 // acceptable observed crash fraction
	}{
		{0, 0, 0},
		{1, 1, 1},
		{0.5, 0.4, 0.6},
	}
	for _, c := range cases {
		p, err := New(Config{Rate: 1, CrashFraction: c.frac, Rng: rand.New(rand.NewSource(11))})
		if err != nil {
			t.Fatal(err)
		}
		crashes, total := 0, 2000
		for i := 0; i < total; i++ {
			if p.Next().Kind == Crash {
				crashes++
			}
		}
		got := float64(crashes) / float64(total)
		if got < c.min || got > c.max {
			t.Errorf("CrashFraction=%v: observed %v crashes, want within [%v, %v]", c.frac, got, c.min, c.max)
		}
	}
}

func TestPlanInterArrivalMean(t *testing.T) {
	p, err := New(Config{Rate: 0.4, CrashFraction: 0, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 5000
	for i := 0; i < n; i++ {
		sum += p.Next().After
	}
	mean := sum / float64(n)
	if mean < 2.0 || mean > 3.0 { // expectation 1/0.4 = 2.5
		t.Errorf("mean inter-arrival %v, want ≈2.5", mean)
	}
}
