package hashing

import (
	"math"
	"testing"
	"testing/quick"

	"lorm/internal/resource"
	"lorm/internal/ring"
)

func TestConsistentDeterministic(t *testing.T) {
	s := ring.NewSpace(32)
	if Consistent(s, "cpu") != Consistent(s, "cpu") {
		t.Fatal("Consistent is not deterministic")
	}
	if Consistent(s, "cpu") == Consistent(s, "memory") {
		t.Fatal("distinct keys hash identically (vanishingly unlikely)")
	}
}

func TestConsistentInSpace(t *testing.T) {
	s := ring.NewSpace(11)
	for _, key := range []string{"cpu", "memory", "disk", "os", "bandwidth"} {
		if id := Consistent(s, key); !s.Contains(id) {
			t.Errorf("Consistent(%q) = %d outside 11-bit space", key, id)
		}
	}
}

// Consistent hashing must spread keys roughly uniformly: over 2000 keys into
// 16 buckets, each bucket should get 125 ± 60%.
func TestConsistentUniformity(t *testing.T) {
	s := ring.NewSpace(32)
	const keys, buckets = 2000, 16
	counts := make([]int, buckets)
	per := uint64(s.Size() / buckets)
	for i := 0; i < keys; i++ {
		id := ConsistentN(s, "attr", i)
		counts[id/per]++
	}
	for b, c := range counts {
		if c < keys/buckets*2/5 || c > keys/buckets*8/5 {
			t.Errorf("bucket %d has %d keys, want about %d", b, c, keys/buckets)
		}
	}
}

func TestConsistentNIndependent(t *testing.T) {
	s := ring.NewSpace(32)
	if ConsistentN(s, "node-1", 0) == ConsistentN(s, "node-1", 1) {
		t.Fatal("ConsistentN derived hashes should differ per index")
	}
}

func TestNewLocalityPanicsOnBadDomain(t *testing.T) {
	s := ring.NewSpace(16)
	for _, d := range []struct{ min, max float64 }{{1, 1}, {2, 1}, {math.NaN(), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLocality(%v, %v) did not panic", d.min, d.max)
				}
			}()
			NewLocality(s, d.min, d.max)
		}()
	}
}

func TestLocalityEndpoints(t *testing.T) {
	s := ring.NewSpace(11)
	l := NewLocality(s, 100, 3200) // e.g. CPU MHz
	if got := l.Hash(100); got != 0 {
		t.Errorf("Hash(min) = %d, want 0", got)
	}
	if got := l.Hash(3200); got != s.Size()-1 {
		t.Errorf("Hash(max) = %d, want %d", got, s.Size()-1)
	}
	if got := l.Hash(50); got != 0 {
		t.Errorf("Hash below min = %d, want clamped to 0", got)
	}
	if got := l.Hash(5000); got != s.Size()-1 {
		t.Errorf("Hash above max = %d, want clamped to top", got)
	}
}

// The defining property: the hash preserves order.
func TestLocalityMonotone(t *testing.T) {
	s := ring.NewSpace(24)
	l := NewLocality(s, 0, 1000)
	f := func(a, b uint16) bool {
		va, vb := float64(a%1000), float64(b%1000)
		if va > vb {
			va, vb = vb, va
		}
		return l.Hash(va) <= l.Hash(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Value() must invert Hash() to within one ring step of value resolution.
func TestLocalityRoundTrip(t *testing.T) {
	s := ring.NewSpace(24)
	l := NewLocality(s, -50, 450)
	step := (l.Max() - l.Min()) / float64(s.Size())
	f := func(raw uint16) bool {
		v := l.Min() + float64(raw)/65535*(l.Max()-l.Min())
		back := l.Value(l.Hash(v))
		return math.Abs(back-v) <= step*1.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalityAccessors(t *testing.T) {
	s := ring.NewSpace(8)
	l := NewLocality(s, 1, 2)
	if l.Min() != 1 || l.Max() != 2 || l.Space().Bits() != 8 {
		t.Fatalf("accessors wrong: min=%v max=%v bits=%d", l.Min(), l.Max(), l.Space().Bits())
	}
}

func BenchmarkConsistent(b *testing.B) {
	s := ring.NewSpace(32)
	for i := 0; i < b.N; i++ {
		Consistent(s, "available-memory")
	}
}

func BenchmarkLocalityHash(b *testing.B) {
	s := ring.NewSpace(32)
	l := NewLocality(s, 0, 4096)
	for i := 0; i < b.N; i++ {
		l.Hash(float64(i % 4096))
	}
}

// NewLocalityFrom with a CDF-declaring attribute must hash by quantile:
// the median of the distribution lands mid-ring.
func TestLocalityFromCDF(t *testing.T) {
	s := ring.NewSpace(20)
	a := resource.Attribute{
		Name: "p", Min: 0, Max: 100,
		CDF: func(v float64) float64 { return math.Sqrt(v / 100) },
	}
	l := NewLocalityFrom(s, a)
	// Median of sqrt-CDF is at v = 25.
	mid := l.Hash(25)
	if frac := float64(mid) / float64(s.Size()); math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Hash(median) at ring fraction %v, want 0.5", frac)
	}
	// Monotone and endpoint-exact.
	if l.Hash(0) != 0 || l.Hash(100) != s.Size()-1 {
		t.Fatalf("endpoints wrong: %d, %d", l.Hash(0), l.Hash(100))
	}
	// Value() inverts through the quantile.
	v := l.Value(mid)
	if math.Abs(v-25) > 0.1 {
		t.Fatalf("Value(Hash(25)) = %v", v)
	}
}

// Without a CDF, NewLocalityFrom behaves exactly like NewLocality.
func TestLocalityFromLinearFallback(t *testing.T) {
	s := ring.NewSpace(16)
	a := resource.Attribute{Name: "lin", Min: 0, Max: 100}
	lf := NewLocalityFrom(s, a)
	ll := NewLocality(s, 0, 100)
	for v := 0.0; v <= 100; v += 7 {
		if lf.Hash(v) != ll.Hash(v) {
			t.Fatalf("Hash(%v) differs: %d vs %d", v, lf.Hash(v), ll.Hash(v))
		}
	}
}
