// Package hashing implements the two hash functions the paper's systems are
// built on:
//
//   - H, a consistent hash (SHA-1 based, per Karger et al. [5]) used for
//     attribute names and node addresses. It spreads keys uniformly over an
//     identifier ring.
//   - ℋ (Locality), a locality-preserving hash (per MAAN [3]) used for
//     attribute values. It maps a value domain [min, max] linearly onto the
//     identifier space, so the numeric order of values is preserved by the
//     order of their identifiers — the property that makes successor walks
//     resolve range queries.
package hashing

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"

	"lorm/internal/resource"
	"lorm/internal/ring"
)

// Consistent hashes an arbitrary string key uniformly onto the given ring
// using SHA-1, the classic consistent-hashing construction. It is
// deterministic across runs and processes.
func Consistent(s ring.Space, key string) uint64 {
	sum := sha1.Sum([]byte(key))
	return s.Fold(binary.BigEndian.Uint64(sum[:8]))
}

// ConsistentN derives the i-th independent hash of key, used when one
// physical entity needs distinct identifiers in several hash spaces (for
// example a node joining every Mercury hub).
func ConsistentN(s ring.Space, key string, i int) uint64 {
	return Consistent(s, fmt.Sprintf("%s#%d", key, i))
}

// Locality is a locality-preserving hash for one attribute's value domain.
// Values at or below Min map to identifier 0, values at or above Max map to
// the top of the ring, and the mapping is monotone in between: linear by
// default, or quantile-based (MAAN's "uniform locality preserving hashing")
// when built from an attribute that declares its value distribution.
type Locality struct {
	space    ring.Space
	min, max float64
	frac     func(v float64) float64 // nil = linear
	quantile func(f float64) float64 // nil = linear
}

// NewLocality builds a locality-preserving hash over [min, max] on the given
// ring. It panics when min >= max: value domains are static attribute
// metadata, so an inverted domain is a configuration bug.
func NewLocality(s ring.Space, min, max float64) Locality {
	if !(min < max) {
		panic(fmt.Sprintf("hashing: invalid value domain [%v, %v]", min, max))
	}
	return Locality{space: s, min: min, max: max}
}

// Space returns the ring the hash maps into.
func (l Locality) Space() ring.Space { return l.space }

// Min returns the lower bound of the value domain.
func (l Locality) Min() float64 { return l.min }

// Max returns the upper bound of the value domain.
func (l Locality) Max() float64 { return l.max }

// NewLocalityFrom builds a locality hash for an attribute, honoring its
// distribution-aware CDF when one is declared (so storage load stays
// uniform under skewed value distributions) and falling back to the linear
// mapping otherwise.
func NewLocalityFrom(s ring.Space, a resource.Attribute) Locality {
	l := NewLocality(s, a.Min, a.Max)
	if a.CDF != nil {
		l.frac = a.Frac
		l.quantile = a.Quantile
	}
	return l
}

// Hash maps a value onto the ring, clamping to the domain bounds.
func (l Locality) Hash(v float64) uint64 {
	if l.frac != nil {
		return l.space.Scale(l.frac(v))
	}
	return l.space.Scale((v - l.min) / (l.max - l.min))
}

// Value approximately inverts Hash, mapping an identifier back to the value
// it represents. Useful for diagnostics and tests.
func (l Locality) Value(id uint64) float64 {
	f := l.space.Fraction(id)
	if l.quantile != nil {
		return l.quantile(f)
	}
	return l.min + f*(l.max-l.min)
}
