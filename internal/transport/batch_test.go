package transport

import (
	"fmt"
	"net"
	"testing"

	"lorm/internal/discovery"
	"lorm/internal/resource"
)

// A register batch and a discover batch must round-trip end-to-end, with
// results in item order and the batch ledger (ops accepted vs items
// dispatched) advancing in lockstep.
func TestBatchRoundTrip(t *testing.T) {
	_, cli := startPair(t)

	opsBefore := mBatchRegisterOps.Value() + mBatchDiscoverOps.Value()
	dispatchedBefore := mBatchRegisterDispatched.Value() + mBatchDiscoverDispatched.Value()

	infos := make([]resource.Info, 10)
	for i := range infos {
		infos[i] = resource.Info{Attr: "cpu", Value: 200 + float64(i*300), Owner: fmt.Sprintf("owner-%d", i)}
	}
	results, err := cli.RegisterBatch(infos)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(infos) {
		t.Fatalf("register batch returned %d results for %d items", len(results), len(infos))
	}
	for i, r := range results {
		if !r.OK {
			t.Fatalf("item %d failed: %s", i, r.Error)
		}
		if r.Cost.Messages == 0 {
			t.Fatalf("item %d reports zero routing cost", i)
		}
	}

	queries := []BatchQuery{
		{Subs: []resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}}, Requester: "req-a"},
		{Subs: []resource.SubQuery{{Attr: "cpu", Low: 200, High: 200}}, Requester: "req-b"},
	}
	qres, err := cli.DiscoverBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(qres) != len(queries) {
		t.Fatalf("discover batch returned %d results for %d items", len(qres), len(queries))
	}
	if !qres[0].OK || len(qres[0].Owners) == 0 {
		t.Fatalf("wide query found no owners: %+v", qres[0])
	}
	if !qres[1].OK {
		t.Fatalf("exact query failed: %s", qres[1].Error)
	}

	opsDelta := mBatchRegisterOps.Value() + mBatchDiscoverOps.Value() - opsBefore
	dispatchedDelta := mBatchRegisterDispatched.Value() + mBatchDiscoverDispatched.Value() - dispatchedBefore
	if want := uint64(len(infos) + len(queries)); opsDelta != want {
		t.Fatalf("batch ops counter moved by %d, want %d", opsDelta, want)
	}
	if opsDelta != dispatchedDelta {
		t.Fatalf("batch ops (%d) != batch dispatched (%d)", opsDelta, dispatchedDelta)
	}
}

// Items fail independently: a malformed item carries its own error while
// its neighbors in the same frame succeed.
func TestBatchItemsFailIndependently(t *testing.T) {
	_, cli := startPair(t)

	results, err := cli.RegisterBatch([]resource.Info{
		{Attr: "cpu", Value: 1000, Owner: "owner-good"},
		{Attr: "no-such-attr", Value: 1, Owner: "owner-bad"},
		{Attr: "mem", Value: 2048, Owner: "owner-good-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].OK || !results[2].OK {
		t.Fatalf("valid items failed: %+v", results)
	}
	if results[1].OK || results[1].Error == "" {
		t.Fatalf("invalid item did not carry its own error: %+v", results[1])
	}

	qres, err := cli.DiscoverBatch([]BatchQuery{
		{Subs: []resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}}, Requester: "req-a"},
		{Subs: nil, Requester: "req-empty"}, // no sub-queries: per-item error
	})
	if err != nil {
		t.Fatal(err)
	}
	if !qres[0].OK {
		t.Fatalf("valid query failed: %s", qres[0].Error)
	}
	if qres[1].OK || qres[1].Error == "" {
		t.Fatalf("empty query did not carry its own error: %+v", qres[1])
	}
}

// Empty batches are rejected client-side before touching the wire.
func TestEmptyBatchRejected(t *testing.T) {
	_, cli := startPair(t)
	if _, err := cli.RegisterBatch(nil); err == nil {
		t.Fatal("empty register batch accepted")
	}
	if _, err := cli.DiscoverBatch(nil); err == nil {
		t.Fatal("empty discover batch accepted")
	}
}

// Against a pre-batch gateway — one that answers batch verbs with the
// "unknown op" server error — the client must transparently fall back to
// per-item singles and still return one result per item.
func TestBatchFallbackToSingles(t *testing.T) {
	var singles int
	addr, _ := fakeGateway(t, func(conn net.Conn, n int) {
		for {
			var req Request
			if err := readFrame(conn, &req); err != nil {
				return
			}
			resp := &Response{Version: Version, ID: req.ID}
			switch req.Op {
			case OpRegister:
				singles++
				resp.OK = true
				resp.Cost = discovery.Cost{Hops: 1, Messages: 1}
			case OpDiscover:
				singles++
				resp.OK = true
				resp.Owners = []string{"owner-legacy"}
			default:
				// A seed-era gateway's exact rejection text.
				resp.Error = fmt.Sprintf("unknown op %q", req.Op)
			}
			if err := writeFrame(conn, resp); err != nil {
				return
			}
		}
	})
	cli, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	results, err := cli.RegisterBatch([]resource.Info{
		{Attr: "cpu", Value: 500, Owner: "owner-a"},
		{Attr: "cpu", Value: 700, Owner: "owner-b"},
	})
	if err != nil {
		t.Fatalf("fallback register batch: %v", err)
	}
	if len(results) != 2 || !results[0].OK || !results[1].OK {
		t.Fatalf("fallback register results: %+v", results)
	}

	qres, err := cli.DiscoverBatch([]BatchQuery{
		{Subs: []resource.SubQuery{{Attr: "cpu", Low: 0, High: 1000}}, Requester: "req-a"},
	})
	if err != nil {
		t.Fatalf("fallback discover batch: %v", err)
	}
	if len(qres) != 1 || !qres[0].OK || len(qres[0].Owners) != 1 {
		t.Fatalf("fallback discover results: %+v", qres)
	}
	if singles != 3 {
		t.Fatalf("legacy gateway served %d single verbs, want 3 (2 registers + 1 discover)", singles)
	}
}

// A batch frame carries one trace context applied to every item: the
// traced batch verbs must succeed end-to-end against a gateway whose
// system joins the caller's span per item.
func TestBatchCarriesTraceContext(t *testing.T) {
	_, cli := startPair(t)

	tc := discovery.TraceContext{TraceID: 0xabcd, SpanID: 0x1234, Sampled: true}
	infos := []resource.Info{
		{Attr: "cpu", Value: 500, Owner: "owner-t0"},
		{Attr: "cpu", Value: 900, Owner: "owner-t1"},
		{Attr: "mem", Value: 1024, Owner: "owner-t2"},
	}
	results, err := cli.RegisterBatchTraced(infos, tc)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.OK {
			t.Fatalf("traced item %d failed: %s", i, r.Error)
		}
	}
	qres, err := cli.DiscoverBatchTraced([]BatchQuery{
		{Subs: []resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}}, Requester: "req-t"},
	}, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !qres[0].OK {
		t.Fatalf("traced discover failed: %s", qres[0].Error)
	}
}

// Old servers must tolerate new-client frames and new servers old-client
// frames; the wire stays version 1. A raw old-style request (no batch
// fields) against the new server must work unchanged.
func TestBatchFieldsVersionTolerant(t *testing.T) {
	srv, err := NewServer(testSystem(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A seed-era client frame: version 1, no ID discipline, no batch fields.
	if err := writeFrame(conn, &Request{Version: 1, ID: 7, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.ID != 7 {
		t.Fatalf("old-style ping got %+v", resp)
	}
	if len(resp.Results) != 0 {
		t.Fatalf("non-batch response carries batch results: %+v", resp.Results)
	}
}
