package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// errPipelineBroken marks calls failed collaterally when their pipeline
// died: some other call's wire failure or deadline tore down the shared
// connection. The cause is carried in the message (not wrapped), so a
// collateral failure is never mistaken for the victim's own timeout.
var errPipelineBroken = errors.New("transport: pipeline failed")

// errClientClosed is returned by calls issued after Close.
var errClientClosed = errors.New("transport: client closed")

// callTimeoutError is the per-call deadline failure; it implements
// net.Error so isTimeout and the retry/accounting paths treat it exactly
// like a missed connection deadline.
type callTimeoutError struct{ after time.Duration }

func (e *callTimeoutError) Error() string {
	return fmt.Sprintf("transport: call timed out after %v", e.after)
}
func (e *callTimeoutError) Timeout() bool   { return true }
func (e *callTimeoutError) Temporary() bool { return true }

// pendingCall is one in-flight request on a pipe.
type pendingCall struct {
	req      *Request
	windowed bool // holds a window slot that resolve must release

	resp *Response
	err  error
	done chan struct{}
}

// pipe is one multiplexed connection. Callers register a pendingCall under
// a fresh connection-local ID, hand it to the writer goroutine through
// sendq, and wait; a single reader goroutine resolves responses back to
// their callers by ID. N concurrent callers therefore share one socket
// with up to `window` data-verb requests in flight, instead of serializing
// a full round trip each.
//
// A pipe dies exactly once (kill): the connection is closed, every
// outstanding call fails fast — the culprit with its own error, the rest
// with errPipelineBroken naming the cause — and the owning Client redials
// on next use.
type pipe struct {
	conn   net.Conn
	window int

	sendq chan *pendingCall
	sem   chan struct{} // window slots for data verbs
	dead  chan struct{} // closed by kill

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	next    uint64
	err     error // set once by kill

	wg sync.WaitGroup
}

// newPipe starts the writer and reader goroutines over conn.
func newPipe(conn net.Conn, window int) *pipe {
	p := &pipe{
		conn:    conn,
		window:  window,
		sendq:   make(chan *pendingCall, window),
		sem:     make(chan struct{}, window),
		dead:    make(chan struct{}),
		pending: make(map[uint64]*pendingCall),
	}
	trackPipelineWindow(window)
	p.wg.Add(2)
	go p.writeLoop()
	go p.readLoop()
	return p
}

// broken reports whether the pipe has died.
func (p *pipe) broken() bool {
	select {
	case <-p.dead:
		return true
	default:
		return false
	}
}

// kill tears the pipe down once: closes the connection (unblocking both
// loops), and fails every outstanding call. culprit, when non-nil, receives
// cause itself; every other call gets a distinct collateral error so the
// caller can tell its own failure from a neighbor's.
func (p *pipe) kill(cause error, culprit *pendingCall) {
	p.mu.Lock()
	if p.err != nil {
		p.mu.Unlock()
		return
	}
	p.err = cause
	close(p.dead)
	pending := p.pending
	p.pending = make(map[uint64]*pendingCall)
	p.mu.Unlock()

	p.conn.Close()
	collateral := fmt.Errorf("%w: %v", errPipelineBroken, cause)
	for _, pc := range pending {
		if pc == culprit {
			p.resolve(pc, nil, cause)
		} else {
			p.resolve(pc, nil, collateral)
		}
	}
	if !errors.Is(cause, errClientClosed) {
		// A deliberate Close is not a failure; the breaks counter tracks
		// wire faults and missed deadlines only.
		mPipelineBreaks.Inc()
	}
	untrackPipelineWindow(p.window)
}

// resolve completes one call exactly once: records the outcome, releases
// its window slot, and wakes the caller.
func (p *pipe) resolve(pc *pendingCall, resp *Response, err error) {
	pc.resp, pc.err = resp, err
	if pc.windowed {
		<-p.sem
		mPipelineInflight.Dec()
	}
	close(pc.done)
}

// writeLoop drains sendq onto the wire. Any write error kills the pipe —
// after a partial frame the stream cannot be trusted.
func (p *pipe) writeLoop() {
	defer p.wg.Done()
	for {
		select {
		case pc := <-p.sendq:
			if err := writeFrame(p.conn, pc.req); err != nil {
				p.kill(err, pc)
				return
			}
		case <-p.dead:
			return
		}
	}
}

// readLoop resolves responses to pending calls by connection-local ID. A
// read error kills the pipe; so does a response for an ID that was never
// pending — on a live pipe that is a protocol violation, because pending
// entries only leave the map through this loop or through kill.
func (p *pipe) readLoop() {
	defer p.wg.Done()
	for {
		var resp Response
		if err := readFrame(p.conn, &resp); err != nil {
			p.kill(err, nil)
			return
		}
		p.mu.Lock()
		pc, ok := p.pending[resp.ID]
		if ok {
			delete(p.pending, resp.ID)
		}
		p.mu.Unlock()
		if !ok {
			p.kill(fmt.Errorf("transport: response for unknown request id %d", resp.ID), nil)
			return
		}
		if !resp.OK {
			p.resolve(pc, nil, &serverError{msg: resp.Error})
			continue
		}
		p.resolve(pc, &resp, nil)
	}
}

// close kills the pipe with the client-closed error and reaps its goroutines.
func (p *pipe) close() {
	p.kill(errClientClosed, nil)
	p.wg.Wait()
}

// do runs one call through the pipe: acquire a window slot (data verbs
// only), register under a fresh ID, enqueue for the writer, and wait for
// the reader or the per-call deadline. A missed deadline kills the pipe —
// the conservative reading of a stalled stream — which both fails the call
// with a timeout error and forces the redial the legacy client performed.
func (p *pipe) do(pc *pendingCall, timeout time.Duration) (*Response, error) {
	if pc.windowed {
		select {
		case p.sem <- struct{}{}:
			mPipelineInflight.Inc()
			trackPipelineInflight()
		case <-p.dead:
			return nil, fmt.Errorf("%w: %v", errPipelineBroken, p.deathErr())
		}
	}

	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		if pc.windowed {
			<-p.sem
			mPipelineInflight.Dec()
		}
		return nil, fmt.Errorf("%w: %v", errPipelineBroken, err)
	}
	p.next++
	pc.req.ID = p.next
	pc.req.Version = Version
	p.pending[pc.req.ID] = pc
	p.mu.Unlock()
	mPipelineCalls.Inc()

	select {
	case p.sendq <- pc:
	case <-p.dead:
		// kill owns every registered call; wait for our resolution below.
	}

	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case <-pc.done:
	case <-timeoutC:
		p.kill(&callTimeoutError{after: timeout}, pc)
		<-pc.done // kill resolves every registered call, including pc
	}
	return pc.resp, pc.err
}

// deathErr returns the error the pipe died with (nil while alive).
func (p *pipe) deathErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// windowed reports whether op consumes an in-flight window slot. Control
// verbs bypass the window: a ping or stats probe must never queue behind a
// window full of slow batches.
func windowed(op Op) bool {
	switch op {
	case OpRegister, OpDiscover, OpRegisterBatch, OpDiscoverBatch:
		return true
	}
	return false
}
