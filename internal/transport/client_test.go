package transport

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts keeps retry tests snappy.
func fastOpts() Options {
	return Options{
		DialTimeout:  time.Second,
		CallTimeout:  2 * time.Second,
		Retries:      2,
		RetryBackoff: 5 * time.Millisecond,
	}
}

// fakeGateway runs a hand-rolled accept loop so tests can misbehave at the
// wire level. serve is invoked per connection with its 1-based index.
func fakeGateway(t *testing.T, serve func(conn net.Conn, n int)) (addr string, accepts *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepts = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := int(accepts.Add(1))
			go func() {
				defer conn.Close()
				serve(conn, n)
			}()
		}
	}()
	return ln.Addr().String(), accepts
}

// okPing reads one request and answers it correctly.
func okPing(conn net.Conn) bool {
	var req Request
	if err := readFrame(conn, &req); err != nil {
		return false
	}
	return writeFrame(conn, &Response{Version: Version, ID: req.ID, OK: true}) == nil
}

// A response carrying the wrong ID poisons the connection: the client must
// redial rather than keep reading a desynchronized stream, and an
// idempotent call must succeed on the fresh connection.
func TestMismatchedResponsePoisonsConnection(t *testing.T) {
	addr, accepts := fakeGateway(t, func(conn net.Conn, n int) {
		if n == 1 {
			var req Request
			if err := readFrame(conn, &req); err != nil {
				return
			}
			// Answer with a stale ID, then keep the connection open so a
			// client that does NOT redial would hang or misparse.
			writeFrame(conn, &Response{Version: Version, ID: req.ID + 1000, OK: true})
			time.Sleep(5 * time.Second)
			return
		}
		for okPing(conn) {
		}
	})
	cli, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping across poisoned connection: %v", err)
	}
	if got := accepts.Load(); got != 2 {
		t.Fatalf("gateway saw %d connections, want 2 (original + redial)", got)
	}
}

// A connection dropped mid-call is retried for idempotent operations.
func TestIdempotentCallRetriesAfterDrop(t *testing.T) {
	addr, accepts := fakeGateway(t, func(conn net.Conn, n int) {
		if n == 1 {
			var req Request
			readFrame(conn, &req)
			return // close without responding
		}
		for okPing(conn) {
		}
	})
	cli, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping should survive one dropped connection: %v", err)
	}
	if got := accepts.Load(); got != 2 {
		t.Fatalf("gateway saw %d connections, want 2", got)
	}
}

// A mutating operation whose request may already have been processed must
// NOT be replayed: the failure surfaces immediately on one connection.
func TestMutatingCallFailsFastAfterDrop(t *testing.T) {
	var reads atomic.Int64
	addr, accepts := fakeGateway(t, func(conn net.Conn, n int) {
		var req Request
		if err := readFrame(conn, &req); err == nil {
			reads.Add(1)
		}
		// close without responding, every time
	})
	cli, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.AddNode("peer-x"); err == nil {
		t.Fatal("addnode over a dropping gateway should fail")
	}
	if got := reads.Load(); got != 1 {
		t.Fatalf("gateway read the mutating request %d times, want exactly 1 (no replay)", got)
	}
	if got := accepts.Load(); got != 1 {
		t.Fatalf("gateway saw %d connections, want 1", got)
	}
}

// An application-level error in a well-formed response is definitive: no
// retry, and the connection stays usable.
func TestServerErrorDoesNotPoisonOrRetry(t *testing.T) {
	var reqs atomic.Int64
	addr, accepts := fakeGateway(t, func(conn net.Conn, n int) {
		for {
			var req Request
			if err := readFrame(conn, &req); err != nil {
				return
			}
			reqs.Add(1)
			ok := req.Op == OpPing
			writeFrame(conn, &Response{Version: Version, ID: req.ID, OK: ok, Error: "no such attribute"})
		}
	})
	cli, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, _, _, err := cli.Discover(nil, "r"); err == nil {
		t.Fatal("server-reported error should surface")
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("connection should stay usable after a server error: %v", err)
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("gateway handled %d requests, want 2 (no retry of the failed discover)", got)
	}
	if got := accepts.Load(); got != 1 {
		t.Fatalf("gateway saw %d connections, want 1 (no redial)", got)
	}
}

// A silent server trips the per-call deadline instead of hanging forever.
func TestCallTimeout(t *testing.T) {
	addr, _ := fakeGateway(t, func(conn net.Conn, n int) {
		time.Sleep(10 * time.Second) // accept, then say nothing
	})
	opts := fastOpts()
	opts.CallTimeout = 100 * time.Millisecond
	opts.Retries = -1 // disable retries: measure a single attempt
	cli, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	before := mClientTimeouts.Value()
	start := time.Now()
	if err := cli.Ping(); err == nil {
		t.Fatal("ping against a silent server should time out")
	} else if !isTimeout(err) {
		t.Fatalf("want a timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ≈100ms", elapsed)
	}
	if mClientTimeouts.Value() != before+1 {
		t.Fatal("transport_client_timeouts_total did not advance")
	}
}

// The server reclaims connections whose peers go silent past the read
// deadline.
func TestServerIdleDisconnect(t *testing.T) {
	oldRead := serverReadTimeout
	serverReadTimeout = 50 * time.Millisecond
	defer func() { serverReadTimeout = oldRead }()

	srv, err := NewServer(testSystem(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	before := mIdleDisconnects.Value()
	// Say nothing; the server must close the connection, observed as EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to close the idle connection")
	} else if isTimeout(err) {
		t.Fatal("server kept the idle connection past its read deadline")
	}
	if mIdleDisconnects.Value() != before+1 {
		t.Fatal("transport_server_idle_disconnects_total did not advance")
	}
}

// Redials are visible on the counter.
func TestRedialCounter(t *testing.T) {
	addr, _ := fakeGateway(t, func(conn net.Conn, n int) {
		if n == 1 {
			return // slam the door on the first connection
		}
		for okPing(conn) {
		}
	})
	cli, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	before := mClientRedials.Value()
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	if mClientRedials.Value() <= before {
		t.Fatal("transport_client_redials_total did not advance")
	}
}
