package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"lorm/internal/discovery"
	"lorm/internal/resource"
)

// Client is a synchronous connection to a gateway server. It is safe for
// concurrent use: calls are serialized over the single connection (the
// protocol is strict request/response per connection; open several clients
// for parallelism).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	next uint64
}

// Dial connects to a gateway with the given timeout.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one round trip.
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	req.Version = Version
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("transport: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		return nil, fmt.Errorf("transport: server error: %s", resp.Error)
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: OpPing})
	return err
}

// Register announces one piece of resource information.
func (c *Client) Register(info resource.Info) (cost discovery.Cost, err error) {
	resp, err := c.call(&Request{Op: OpRegister, Info: &info})
	if err != nil {
		return cost, err
	}
	return resp.Cost, nil
}

// Discover resolves a multi-attribute (range) query remotely.
func (c *Client) Discover(subs []resource.SubQuery, requester string) (owners []string, matches []resource.Info, cost discovery.Cost, err error) {
	resp, err := c.call(&Request{Op: OpDiscover, Subs: subs, Requester: requester})
	if err != nil {
		return nil, nil, cost, err
	}
	return resp.Owners, resp.Matches, resp.Cost, nil
}

// Stats fetches the gateway's deployment summary.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("transport: stats response without payload")
	}
	return *resp.Stats, nil
}

// AddNode joins a new node into the gateway's deployment.
func (c *Client) AddNode(addr string) error {
	_, err := c.call(&Request{Op: OpAddNode, Addr: addr})
	return err
}

// RemoveNode gracefully departs a node from the gateway's deployment.
func (c *Client) RemoveNode(addr string) error {
	_, err := c.call(&Request{Op: OpRemove, Addr: addr})
	return err
}
