package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"lorm/internal/discovery"
	"lorm/internal/resource"
)

// Options tunes a Client's failure handling. The zero value gets sane
// defaults from withDefaults; Dial keeps the legacy two-argument shape.
type Options struct {
	// DialTimeout bounds one TCP connect attempt (default 3s).
	DialTimeout time.Duration
	// CallTimeout is the per-call round-trip deadline covering both the
	// request write and the response read (default 15s; negative disables).
	CallTimeout time.Duration
	// Retries is how many additional attempts a failed dial or call gets
	// beyond the first (default 2; negative disables). Wire-level call
	// failures are only retried for idempotent operations — once a
	// register or membership change may have reached the server, it is
	// returned to the caller rather than replayed.
	Retries int
	// RetryBackoff is the base of the exponential backoff between attempts;
	// attempt k sleeps around RetryBackoff·2^(k-1) with ±50% jitter, capped
	// at one second (default 50ms).
	RetryBackoff time.Duration
	// Dialer, when non-nil, replaces net.DialTimeout for every connect and
	// reconnect — the seam fault-injection tests use to put a netfault
	// plane between the client and the gateway.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 15 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	return o
}

// Client is a synchronous connection to a gateway server. It is safe for
// concurrent use: calls are serialized over the single connection (the
// protocol is strict request/response per connection; open several clients
// for parallelism).
//
// The client survives transport faults: a call that fails at the wire
// level — write error, read error, per-call deadline, response-ID
// mismatch — poisons the connection, and the next attempt redials instead
// of reading from a desynchronized stream. Idempotent operations (ping,
// stats, discover) are retried with exponential backoff; mutating
// operations fail fast once the request may have been processed.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	conn   net.Conn
	broken bool
	next   uint64
}

// Dial connects to a gateway with the given dial timeout and default
// failure handling.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, Options{DialTimeout: timeout})
}

// DialOptions connects to a gateway, retrying the dial itself with backoff.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			mClientRetries.Inc()
			time.Sleep(backoff(c.opts.RetryBackoff, attempt))
		}
		c.mu.Lock()
		err := c.redialLocked()
		c.mu.Unlock()
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.broken = false
	return err
}

// redialLocked replaces the connection; callers hold c.mu.
func (c *Client) redialLocked() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		mClientRedials.Inc()
	}
	dial := c.opts.Dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.broken = false
	return nil
}

// serverError is an application-level failure relayed in a well-formed
// response: the connection is healthy and the request definitively
// processed, so it is never retried and never poisons the connection.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "transport: server error: " + e.msg }

// idempotent reports whether op can be safely replayed after the original
// request may already have been processed by the server.
func idempotent(op Op) bool {
	switch op {
	case OpPing, OpStats, OpDiscover:
		return true
	}
	return false
}

// isTimeout reports whether err is a network timeout (a missed deadline).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// backoff returns the sleep before retry attempt k ≥ 1: exponential in k
// with ±50% jitter, capped at one second so a retry burst stays bounded.
func backoff(base time.Duration, attempt int) time.Duration {
	d := base << uint(attempt-1)
	if d > time.Second {
		d = time.Second
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// call performs one round trip, redialing poisoned connections and
// retrying with backoff per the client options.
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > c.opts.Retries {
				return nil, lastErr
			}
			mClientRetries.Inc()
			time.Sleep(backoff(c.opts.RetryBackoff, attempt))
		}
		if c.conn == nil || c.broken {
			if err := c.redialLocked(); err != nil {
				lastErr = err // dial errors are retryable for every op
				continue
			}
		}
		resp, err := c.roundTrip(req)
		if err == nil {
			return resp, nil
		}
		var se *serverError
		if errors.As(err, &se) {
			return nil, err
		}
		// Wire-level failure: the stream can no longer be trusted to pair
		// requests with responses, so mark it for redial.
		c.broken = true
		lastErr = err
		if isTimeout(err) {
			mClientTimeouts.Inc()
		}
		if !idempotent(req.Op) {
			return nil, err // request may have been processed: don't replay
		}
	}
}

// roundTrip writes one request and reads its response on the current
// connection; callers hold c.mu.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.next++
	req.ID = c.next
	req.Version = Version
	if c.opts.CallTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.CallTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("transport: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		return nil, &serverError{msg: resp.Error}
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: OpPing})
	return err
}

// Register announces one piece of resource information.
func (c *Client) Register(info resource.Info) (discovery.Cost, error) {
	return c.RegisterTraced(info, discovery.TraceContext{})
}

// RegisterTraced is Register carrying the caller's trace context over the
// wire, so the gateway's server-side spans parent under the caller's span.
// A zero context sends no trace field at all (byte-identical to Register).
func (c *Client) RegisterTraced(info resource.Info, tc discovery.TraceContext) (cost discovery.Cost, err error) {
	resp, err := c.call(&Request{Op: OpRegister, Info: &info, Trace: wireTrace(tc)})
	if err != nil {
		return cost, err
	}
	return resp.Cost, nil
}

// Discover resolves a multi-attribute (range) query remotely.
func (c *Client) Discover(subs []resource.SubQuery, requester string) ([]string, []resource.Info, discovery.Cost, error) {
	return c.DiscoverTraced(subs, requester, discovery.TraceContext{})
}

// DiscoverTraced is Discover carrying the caller's trace context over the
// wire. A zero context sends no trace field at all.
func (c *Client) DiscoverTraced(subs []resource.SubQuery, requester string, tc discovery.TraceContext) (owners []string, matches []resource.Info, cost discovery.Cost, err error) {
	resp, err := c.call(&Request{Op: OpDiscover, Subs: subs, Requester: requester, Trace: wireTrace(tc)})
	if err != nil {
		return nil, nil, cost, err
	}
	return resp.Owners, resp.Matches, resp.Cost, nil
}

// wireTrace boxes a trace context for the wire; invalid contexts stay off
// the frame entirely so untraced traffic is unchanged on the wire.
func wireTrace(tc discovery.TraceContext) *discovery.TraceContext {
	if !tc.Valid() {
		return nil
	}
	return &tc
}

// Stats fetches the gateway's deployment summary.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("transport: stats response without payload")
	}
	return *resp.Stats, nil
}

// AddNode joins a new node into the gateway's deployment.
func (c *Client) AddNode(addr string) error {
	_, err := c.call(&Request{Op: OpAddNode, Addr: addr})
	return err
}

// RemoveNode gracefully departs a node from the gateway's deployment.
func (c *Client) RemoveNode(addr string) error {
	_, err := c.call(&Request{Op: OpRemove, Addr: addr})
	return err
}
