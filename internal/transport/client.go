package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"lorm/internal/discovery"
	"lorm/internal/resource"
)

// Options tunes a Client's failure handling. The zero value gets sane
// defaults from withDefaults; Dial keeps the legacy two-argument shape.
type Options struct {
	// DialTimeout bounds one TCP connect attempt (default 3s).
	DialTimeout time.Duration
	// CallTimeout is the per-call round-trip deadline covering both the
	// request write and the response read (default 15s; negative disables).
	CallTimeout time.Duration
	// Retries is how many additional attempts a failed dial or call gets
	// beyond the first (default 2; negative disables). Wire-level call
	// failures are only retried for idempotent operations — once a
	// register or membership change may have reached the server, it is
	// returned to the caller rather than replayed.
	Retries int
	// RetryBackoff is the base of the exponential backoff between attempts;
	// attempt k sleeps around RetryBackoff·2^(k-1) with ±50% jitter, capped
	// at one second (default 50ms).
	RetryBackoff time.Duration
	// Dialer, when non-nil, replaces net.DialTimeout for every connect and
	// reconnect — the seam fault-injection tests use to put a netfault
	// plane between the client and the gateway.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Window bounds how many data-verb calls (register/discover and their
	// batch forms) may be in flight on the multiplexed connection at once
	// (default 32). Window 1 restores one-request-per-round-trip behavior;
	// control verbs (ping/stats/membership) bypass the window so they can
	// never queue behind a saturating batch workload.
	Window int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 15 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 32
	}
	return o
}

// Client is a multiplexed connection to a gateway server, safe for
// concurrent use: N concurrent callers share one socket through a
// pipelined request/response pipe (see pipeline.go) with a bounded
// in-flight window, instead of serializing a full round trip each. Window
// 1 restores the legacy one-request-per-round-trip behavior.
//
// The client survives transport faults: a call that fails at the wire
// level — write error, read error, per-call deadline, response-ID
// mismatch — kills the pipe (failing all outstanding calls fast), and the
// next attempt redials instead of reading from a desynchronized stream.
// Idempotent operations (ping, stats, discover and discover batches) are
// retried with exponential backoff; mutating operations fail fast once
// the request may have been processed.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	p      *pipe
	closed bool
}

// Dial connects to a gateway with the given dial timeout and default
// failure handling.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, Options{DialTimeout: timeout})
}

// DialOptions connects to a gateway, retrying the dial itself with backoff.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			mClientRetries.Inc()
			time.Sleep(backoff(c.opts.RetryBackoff, attempt))
		}
		c.mu.Lock()
		_, err := c.pipeLocked()
		c.mu.Unlock()
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Close tears down the connection and fails any outstanding calls.
func (c *Client) Close() error {
	c.mu.Lock()
	p := c.p
	c.p = nil
	c.closed = true
	c.mu.Unlock()
	if p != nil {
		p.close()
	}
	return nil
}

// pipe returns a live pipe, redialing if the previous one died.
func (c *Client) pipe() (*pipe, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pipeLocked()
}

// pipeLocked replaces a dead pipe with a fresh connection; callers hold
// c.mu. A redial (as opposed to the first dial) is counted.
func (c *Client) pipeLocked() (*pipe, error) {
	if c.closed {
		return nil, errClientClosed
	}
	if c.p != nil {
		if !c.p.broken() {
			return c.p, nil
		}
		c.p = nil
		mClientRedials.Inc()
	}
	dial := c.opts.Dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.addr, err)
	}
	c.p = newPipe(conn, c.opts.Window)
	return c.p, nil
}

// serverError is an application-level failure relayed in a well-formed
// response: the connection is healthy and the request definitively
// processed, so it is never retried and never poisons the connection.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "transport: server error: " + e.msg }

// idempotent reports whether op can be safely replayed after the original
// request may already have been processed by the server. Register batches
// are mutating like their singular form; discover batches are read-only.
func idempotent(op Op) bool {
	switch op {
	case OpPing, OpStats, OpDiscover, OpDiscoverBatch:
		return true
	}
	return false
}

// isTimeout reports whether err is a network timeout (a missed deadline).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// backoff returns the sleep before retry attempt k ≥ 1: exponential in k
// with ±50% jitter, capped at one second so a retry burst stays bounded.
func backoff(base time.Duration, attempt int) time.Duration {
	d := base << uint(attempt-1)
	if d > time.Second {
		d = time.Second
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// call performs one pipelined exchange, redialing dead pipes and retrying
// with backoff per the client options. The client mutex is held only while
// resolving the pipe, never across the round trip, so concurrent callers —
// including control verbs issued alongside a saturating batch workload —
// proceed in parallel on the shared connection.
func (c *Client) call(req *Request) (*Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > c.opts.Retries {
				return nil, lastErr
			}
			mClientRetries.Inc()
			time.Sleep(backoff(c.opts.RetryBackoff, attempt))
		}
		p, err := c.pipe()
		if err != nil {
			if errors.Is(err, errClientClosed) {
				return nil, err
			}
			lastErr = err // dial errors are retryable for every op
			continue
		}
		// Each attempt gets its own Request copy: a dead pipe's writer may
		// still be encoding the previous attempt's frame when the retry
		// stamps a new connection-local ID. The payload slices are shared
		// read-only; only the header fields are written.
		attemptReq := *req
		pc := &pendingCall{req: &attemptReq, windowed: windowed(req.Op), done: make(chan struct{})}
		resp, err := p.do(pc, c.opts.CallTimeout)
		if err == nil {
			return resp, nil
		}
		var se *serverError
		if errors.As(err, &se) {
			return nil, err
		}
		// Wire-level failure: the pipe is already dead, the next attempt
		// redials. Only a call's own missed deadline counts as a timeout —
		// collateral errPipelineBroken failures carry the cause by message.
		lastErr = err
		if isTimeout(err) {
			mClientTimeouts.Inc()
		}
		if !idempotent(req.Op) {
			return nil, err // request may have been processed: don't replay
		}
	}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: OpPing})
	return err
}

// Register announces one piece of resource information.
func (c *Client) Register(info resource.Info) (discovery.Cost, error) {
	return c.RegisterTraced(info, discovery.TraceContext{})
}

// RegisterTraced is Register carrying the caller's trace context over the
// wire, so the gateway's server-side spans parent under the caller's span.
// A zero context sends no trace field at all (byte-identical to Register).
func (c *Client) RegisterTraced(info resource.Info, tc discovery.TraceContext) (cost discovery.Cost, err error) {
	resp, err := c.call(&Request{Op: OpRegister, Info: &info, Trace: wireTrace(tc)})
	if err != nil {
		return cost, err
	}
	return resp.Cost, nil
}

// Discover resolves a multi-attribute (range) query remotely.
func (c *Client) Discover(subs []resource.SubQuery, requester string) ([]string, []resource.Info, discovery.Cost, error) {
	return c.DiscoverTraced(subs, requester, discovery.TraceContext{})
}

// DiscoverTraced is Discover carrying the caller's trace context over the
// wire. A zero context sends no trace field at all.
func (c *Client) DiscoverTraced(subs []resource.SubQuery, requester string, tc discovery.TraceContext) (owners []string, matches []resource.Info, cost discovery.Cost, err error) {
	resp, err := c.call(&Request{Op: OpDiscover, Subs: subs, Requester: requester, Trace: wireTrace(tc)})
	if err != nil {
		return nil, nil, cost, err
	}
	return resp.Owners, resp.Matches, resp.Cost, nil
}

// wireTrace boxes a trace context for the wire; invalid contexts stay off
// the frame entirely so untraced traffic is unchanged on the wire.
func wireTrace(tc discovery.TraceContext) *discovery.TraceContext {
	if !tc.Valid() {
		return nil
	}
	return &tc
}

// Stats fetches the gateway's deployment summary.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("transport: stats response without payload")
	}
	return *resp.Stats, nil
}

// RegisterBatch announces many pieces in one frame, amortizing codec and
// syscall cost; items fail independently in the returned results. Against
// a pre-batch gateway it transparently falls back to per-item registers.
func (c *Client) RegisterBatch(infos []resource.Info) ([]BatchResult, error) {
	return c.RegisterBatchTraced(infos, discovery.TraceContext{})
}

// RegisterBatchTraced is RegisterBatch carrying the caller's trace context;
// every item's server-side spans parent under the same caller span.
func (c *Client) RegisterBatchTraced(infos []resource.Info, tc discovery.TraceContext) ([]BatchResult, error) {
	if len(infos) == 0 {
		return nil, fmt.Errorf("transport: empty register batch")
	}
	resp, err := c.call(&Request{Op: OpRegisterBatch, Infos: infos, Trace: wireTrace(tc)})
	if isUnknownOp(err) {
		results := make([]BatchResult, len(infos))
		for i, info := range infos {
			cost, err := c.RegisterTraced(info, tc)
			results[i] = singleResult(cost, nil, nil, err)
			if err != nil && !isServerError(err) {
				return nil, err // transport failure mid-fallback: give up
			}
		}
		return results, nil
	}
	if err != nil {
		return nil, err
	}
	return batchResults(resp, len(infos))
}

// DiscoverBatch resolves many multi-attribute queries in one frame; items
// fail independently in the returned results. Against a pre-batch gateway
// it transparently falls back to per-item discovers.
func (c *Client) DiscoverBatch(queries []BatchQuery) ([]BatchResult, error) {
	return c.DiscoverBatchTraced(queries, discovery.TraceContext{})
}

// DiscoverBatchTraced is DiscoverBatch carrying the caller's trace context.
func (c *Client) DiscoverBatchTraced(queries []BatchQuery, tc discovery.TraceContext) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("transport: empty discover batch")
	}
	resp, err := c.call(&Request{Op: OpDiscoverBatch, Queries: queries, Trace: wireTrace(tc)})
	if isUnknownOp(err) {
		results := make([]BatchResult, len(queries))
		for i, q := range queries {
			owners, matches, cost, err := c.DiscoverTraced(q.Subs, q.Requester, tc)
			results[i] = singleResult(cost, owners, matches, err)
			if err != nil && !isServerError(err) {
				return nil, err
			}
		}
		return results, nil
	}
	if err != nil {
		return nil, err
	}
	return batchResults(resp, len(queries))
}

// batchResults validates a batch response's shape: exactly one result per
// item, in order.
func batchResults(resp *Response, want int) ([]BatchResult, error) {
	if len(resp.Results) != want {
		return nil, fmt.Errorf("transport: batch response has %d results for %d items", len(resp.Results), want)
	}
	return resp.Results, nil
}

// singleResult boxes one fallback call's outcome as a batch item.
func singleResult(cost discovery.Cost, owners []string, matches []resource.Info, err error) BatchResult {
	if err != nil {
		return BatchResult{Error: err.Error()}
	}
	return BatchResult{OK: true, Cost: cost, Owners: owners, Matches: matches}
}

// isUnknownOp detects the definitive server-side rejection an old gateway
// gives a batch verb it does not know, the signal to fall back to singles.
func isUnknownOp(err error) bool {
	var se *serverError
	return errors.As(err, &se) && strings.Contains(se.msg, "unknown op")
}

// isServerError reports whether err is an application-level failure (the
// connection stayed healthy; per-item fallback can continue).
func isServerError(err error) bool {
	var se *serverError
	return errors.As(err, &se)
}

// AddNode joins a new node into the gateway's deployment.
func (c *Client) AddNode(addr string) error {
	_, err := c.call(&Request{Op: OpAddNode, Addr: addr})
	return err
}

// RemoveNode gracefully departs a node from the gateway's deployment.
func (c *Client) RemoveNode(addr string) error {
	_, err := c.call(&Request{Op: OpRemove, Addr: addr})
	return err
}
