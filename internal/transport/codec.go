// Package transport exposes a discovery system over real TCP (stdlib net):
// a length-prefixed JSON wire protocol, a concurrent server that fronts
// any discovery.System, and a client. A grid site runs one gateway process
// (cmd/lormnode) next to its LORM deployment; providers and requesters
// register and query over the network.
//
// The protocol is deliberately simple and version-tagged:
//
//	frame  := uint32 big-endian length | payload
//	payload:= JSON-encoded Request or Response
//
// Frames are capped at MaxFrame to bound memory under malformed input.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"lorm/internal/discovery"
	"lorm/internal/resource"
)

// Version is the protocol version; mismatches are rejected.
const Version = 1

// MaxFrame bounds a single frame's payload (16 MiB).
const MaxFrame = 16 << 20

// Op enumerates the remote operations.
type Op string

// Remote operations. The batch verbs amortize codec and syscall cost: one
// frame carries many registers or discovers, dispatched server-side into
// the same discovery.System calls as their singular forms. They are
// version-tolerant additions — the new Request/Response fields are
// omitempty, so old peers ignore them, and a new client talking to an old
// server gets a clean "unknown op" error it can fall back from.
const (
	OpPing          Op = "ping"
	OpRegister      Op = "register"
	OpDiscover      Op = "discover"
	OpRegisterBatch Op = "registerbatch"
	OpDiscoverBatch Op = "discoverbatch"
	OpStats         Op = "stats"
	OpAddNode       Op = "addnode"
	OpRemove        Op = "removenode"
)

// BatchQuery is one discover inside an OpDiscoverBatch frame.
type BatchQuery struct {
	Subs      []resource.SubQuery `json:"subs"`
	Requester string              `json:"requester,omitempty"`
}

// BatchResult is one item's outcome inside a batch response. Items fail
// independently: a malformed register does not poison its batch frame,
// it just carries its own error.
type BatchResult struct {
	OK      bool            `json:"ok"`
	Error   string          `json:"error,omitempty"`
	Cost    discovery.Cost  `json:"cost,omitempty"`
	Owners  []string        `json:"owners,omitempty"`  // discover items
	Matches []resource.Info `json:"matches,omitempty"` // discover items
}

// Request is the client→server message.
type Request struct {
	Version   int                 `json:"v"`
	ID        uint64              `json:"id"`
	Op        Op                  `json:"op"`
	Info      *resource.Info      `json:"info,omitempty"`      // register
	Subs      []resource.SubQuery `json:"subs,omitempty"`      // discover
	Requester string              `json:"requester,omitempty"` // discover
	Addr      string              `json:"addr,omitempty"`      // addnode / removenode
	Infos     []resource.Info     `json:"infos,omitempty"`     // registerbatch
	Queries   []BatchQuery        `json:"queries,omitempty"`   // discoverbatch
	// Trace carries the caller's distributed-trace context on register and
	// discover (and their batch forms, where every item parents under the
	// same caller span), so the server-side fabric spans parent under the
	// caller's span. Optional and version-tolerant: old clients omit it, old
	// servers ignore the unknown field, and behavior is identical either way.
	Trace *discovery.TraceContext `json:"trace,omitempty"`
}

// Stats is the server-state summary returned by OpStats.
type Stats struct {
	System      string  `json:"system"`
	Nodes       int     `json:"nodes"`
	Attributes  int     `json:"attributes"`
	TotalPieces int     `json:"total_pieces"`
	AvgDir      float64 `json:"avg_directory"`
	MaxDir      int     `json:"max_directory"`
	// Metrics is the gateway's metrics snapshot digest, present when the
	// served system routes through an instrumented fabric — remote clients
	// get headline observability without scraping the HTTP endpoint.
	Metrics *MetricsDigest `json:"metrics,omitempty"`
}

// MetricsDigest condenses the gateway's op metrics: the grand total plus
// per-system op counts and estimated hop quantiles, and the process
// failure-injection counters (detours around dead hops, exhausted lookups,
// crash events and the entries they destroyed) so remote clients see the
// gateway's fault history without scraping /metrics.
type MetricsDigest struct {
	TotalOps      uint64 `json:"total_ops"`
	LookupDetours uint64 `json:"lookup_detours,omitempty"`
	QueryFailures uint64 `json:"query_failures,omitempty"`
	Crashes       uint64 `json:"crashes,omitempty"`
	LostEntries   uint64 `json:"lost_entries,omitempty"`
	// Directory index activity: stored pieces, range matches served, and
	// entries migrated by churn handover, so remote clients see the
	// gateway's storage workload alongside its routing workload.
	DirAdds      uint64 `json:"dir_adds,omitempty"`
	DirMatches   uint64 `json:"dir_matches,omitempty"`
	DirHandovers uint64 `json:"dir_handovers,omitempty"`
	// Replication-layer activity: replica copies placed and dropped, reads
	// served by replica holders, and hot-key promotions/demotions.
	ReplicasPlaced   uint64 `json:"replicas_placed,omitempty"`
	ReplicasDropped  uint64 `json:"replicas_dropped,omitempty"`
	ReplicaReadHits  uint64 `json:"replica_read_hits,omitempty"`
	HotKeyPromotions uint64 `json:"hotkey_promotions,omitempty"`
	HotKeyDemotions  uint64 `json:"hotkey_demotions,omitempty"`
	// Membership and network-fault activity: failure-detector suspicions
	// opened/cleared/confirmed, partition sets formed and healed, and
	// messages blocked by partitions or blackholes.
	Suspicions        uint64 `json:"suspicions,omitempty"`
	SuspicionsCleared uint64 `json:"suspicions_cleared,omitempty"`
	FailuresConfirmed uint64 `json:"failures_confirmed,omitempty"`
	PartitionsStarted uint64 `json:"partitions_started,omitempty"`
	PartitionsHealed  uint64 `json:"partitions_healed,omitempty"`
	MessagesBlocked   uint64 `json:"messages_blocked,omitempty"`
	// Tracing activity: operations sampled into spans, operations finished
	// without a span, and slow-op detections, summed over systems.
	SpansSampled uint64 `json:"spans_sampled,omitempty"`
	SpansDropped uint64 `json:"spans_dropped,omitempty"`
	SlowOps      uint64 `json:"slow_ops,omitempty"`
	// Pipelined-transport activity: calls through multiplexed client pipes,
	// pipes torn down by wire failures, and the batch-verb ledger (items
	// carried in batch frames vs items individually executed — the two must
	// agree, metricscheck -transport enforces it). Client counters are
	// nonzero only in processes that also run clients.
	PipelineCalls   uint64 `json:"pipeline_calls,omitempty"`
	PipelineBreaks  uint64 `json:"pipeline_breaks,omitempty"`
	BatchOps        uint64 `json:"batch_ops,omitempty"`
	BatchDispatched uint64 `json:"batch_dispatched,omitempty"`
	// ART trie activity: trie-descent forwards, descents completed by the
	// ring fallback, and value-bucket splits — nonzero only in gateways
	// serving the art system.
	TrieDescents    uint64          `json:"trie_descents,omitempty"`
	TrieFallbacks   uint64          `json:"trie_fallbacks,omitempty"`
	TrieBucketSplit uint64          `json:"trie_bucket_splits,omitempty"`
	Systems         []SystemMetrics `json:"systems,omitempty"`
}

// SystemMetrics is one system's slice of the digest.
type SystemMetrics struct {
	System  string  `json:"system"`
	Ops     uint64  `json:"ops"`
	P50Hops float64 `json:"p50_hops"`
	P99Hops float64 `json:"p99_hops"`
}

// Response is the server→client message.
type Response struct {
	Version int             `json:"v"`
	ID      uint64          `json:"id"`
	OK      bool            `json:"ok"`
	Error   string          `json:"error,omitempty"`
	Cost    discovery.Cost  `json:"cost,omitempty"`
	Matches []resource.Info `json:"matches,omitempty"` // discover: flattened per-attr matches
	Owners  []string        `json:"owners,omitempty"`  // discover: joined owners
	Results []BatchResult   `json:"results,omitempty"` // registerbatch / discoverbatch
	Stats   *Stats          `json:"stats,omitempty"`   // stats
}

// encodeBuf pairs a reusable frame buffer with a JSON encoder bound to it,
// so the steady-state encode path allocates nothing but the JSON itself.
type encodeBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encodePool = sync.Pool{New: func() interface{} {
	e := &encodeBuf{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// payloadPool recycles readFrame payload slices. Oversized buffers are not
// repooled so a single huge frame cannot pin memory for the process life.
var payloadPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 4096)
	return &b
}}

const payloadPoolCap = 1 << 20

// writeFrame encodes v as JSON into a pooled buffer and writes header and
// payload as one length-prefixed frame in a single Write — one syscall per
// frame instead of two, and zero steady-state buffer allocations.
func writeFrame(w io.Writer, v interface{}) error {
	e := encodePool.Get().(*encodeBuf)
	e.buf.Reset()
	e.buf.Write([]byte{0, 0, 0, 0}) // header placeholder, patched below
	if err := e.enc.Encode(v); err != nil {
		// A json.Encoder remembers its first error; drop this one from the
		// pool rather than repool a poisoned encoder.
		return fmt.Errorf("transport: encode: %w", err)
	}
	frame := e.buf.Bytes()
	n := len(frame) - 4
	if n > MaxFrame {
		encodePool.Put(e)
		return fmt.Errorf("transport: frame of %d bytes exceeds cap", n)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(n))
	_, err := w.Write(frame)
	encodePool.Put(e)
	return err
}

// readFrame reads one length-prefixed frame into a pooled buffer and
// decodes it into v.
func readFrame(r io.Reader, v interface{}) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF signals orderly close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("transport: incoming frame of %d bytes exceeds cap", n)
	}
	bp := payloadPool.Get().(*[]byte)
	if uint32(cap(*bp)) < n {
		*bp = make([]byte, n)
	}
	payload := (*bp)[:n]
	defer func() {
		if cap(*bp) <= payloadPoolCap {
			payloadPool.Put(bp)
		}
	}()
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("transport: short frame: %w", err)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}
