package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lorm/internal/core"
	"lorm/internal/resource"
)

func testSystem(t testing.TB) *core.System {
	t.Helper()
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
	)
	sys, err := core.New(core.Config{D: 6, Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 48)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := sys.AddNodes(addrs); err != nil {
		t.Fatal(err)
	}
	return sys
}

func startPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(testSystem(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Version: 1, ID: 7, Op: OpPing}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Op != OpPing {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestFrameCapEnforced(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var req Request
	err := readFrame(bytes.NewReader(hdr[:]), &req)
	if err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("oversized frame accepted: %v", err)
	}
}

func TestPing(t *testing.T) {
	_, cli := startPair(t)
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAndDiscoverOverTCP(t *testing.T) {
	_, cli := startPair(t)
	for _, in := range []resource.Info{
		{Attr: "cpu", Value: 2000, Owner: "site-a"},
		{Attr: "mem", Value: 4096, Owner: "site-a"},
		{Attr: "cpu", Value: 900, Owner: "site-b"},
	} {
		if _, err := cli.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	owners, matches, cost, err := cli.Discover([]resource.SubQuery{
		{Attr: "cpu", Low: 1500, High: 3200},
		{Attr: "mem", Low: 2048, High: 8192},
	}, "remote-requester")
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || owners[0] != "site-a" {
		t.Fatalf("owners = %v, want [site-a]", owners)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v, want 2 pieces", matches)
	}
	if cost.Hops <= 0 {
		t.Fatalf("cost = %+v, want positive hops", cost)
	}
}

func TestStats(t *testing.T) {
	_, cli := startPair(t)
	if _, err := cli.Register(resource.Info{Attr: "cpu", Value: 1000, Owner: "x"}); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.System != "lorm" || st.Nodes != 48 || st.Attributes != 2 || st.TotalPieces != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMembershipOps(t *testing.T) {
	_, cli := startPair(t)
	if err := cli.AddNode("tcp-joiner"); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 49 {
		t.Fatalf("nodes = %d after join, want 49", st.Nodes)
	}
	if err := cli.RemoveNode("tcp-joiner"); err != nil {
		t.Fatal(err)
	}
	if err := cli.RemoveNode("ghost"); err == nil {
		t.Fatal("removing unknown node should error")
	}
}

func TestServerErrors(t *testing.T) {
	_, cli := startPair(t)
	if _, err := cli.Register(resource.Info{Attr: "gpu", Value: 1, Owner: "x"}); err == nil {
		t.Fatal("unknown attribute should round-trip as error")
	}
	if _, _, _, err := cli.Discover(nil, "r"); err == nil {
		t.Fatal("empty discover should error")
	}
	// Raw connection: wrong version and unknown op.
	srv, err := NewServer(testSystem(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &Request{Version: 99, ID: 1, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "version") {
		t.Fatalf("version mismatch accepted: %+v", resp)
	}
	if err := writeFrame(conn, &Request{Version: 1, ID: 2, Op: "nonsense"}); err != nil {
		t.Fatal(err)
	}
	if err := readFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Fatalf("unknown op accepted: %+v", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, err := NewServer(testSystem(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr(), time.Second)
			if err != nil {
				errc <- err
				return
			}
			defer cli.Close()
			for i := 0; i < 25; i++ {
				in := resource.Info{Attr: "cpu", Value: float64(500 + w*100 + i), Owner: fmt.Sprintf("w%d-%d", w, i)}
				if _, err := cli.Register(in); err != nil {
					errc <- err
					return
				}
				if _, _, _, err := cli.Discover([]resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}}, "r"); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalPieces != 8*25 {
		t.Fatalf("TotalPieces = %d, want 200", st.TotalPieces)
	}
}

func TestServerCloseTerminatesConnections(t *testing.T) {
	srv, cli := startPair(t)
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Ping(); err == nil {
		t.Fatal("ping after server close should fail")
	}
}
