package transport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"lorm/internal/art"
	"lorm/internal/resource"
)

func TestStatsReplyCarriesMetricsDigest(t *testing.T) {
	_, cli := startPair(t)

	// Drive some traffic through the fabric so the digest is non-trivial.
	const ops = 8
	for i := 0; i < ops; i++ {
		info := resource.Info{
			Attr:  "cpu",
			Value: 400 + float64(i)*100,
			Owner: fmt.Sprintf("owner-%d", i),
		}
		if _, err := cli.Register(info); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := cli.Discover([]resource.SubQuery{
		{Attr: "cpu", Low: 600, High: 600},
	}, "req-1"); err != nil {
		t.Fatal(err)
	}

	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Metrics == nil {
		t.Fatal("stats reply has no metrics digest for an instrumented system")
	}
	if st.Metrics.TotalOps < ops+1 {
		t.Fatalf("digest TotalOps = %d, want >= %d", st.Metrics.TotalOps, ops+1)
	}
	var found bool
	for _, sm := range st.Metrics.Systems {
		if sm.System == st.System {
			found = true
			if sm.Ops < ops+1 {
				t.Fatalf("system %s ops = %d, want >= %d", sm.System, sm.Ops, ops+1)
			}
			if sm.P99Hops < sm.P50Hops {
				t.Fatalf("p99 hops %v below p50 %v", sm.P99Hops, sm.P50Hops)
			}
		}
	}
	if !found {
		t.Fatalf("digest systems %+v missing served system %q", st.Metrics.Systems, st.System)
	}
}

func TestStatsDigestCarriesTrieCounters(t *testing.T) {
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
	)
	sys, err := art.New(art.Config{Bits: 16, Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 48)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := sys.AddNodes(addrs); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	before := mdARTDescents.Value()
	if _, err := cli.Register(resource.Info{Attr: "cpu", Value: 1800, Owner: "o1"}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cli.Discover([]resource.SubQuery{
		{Attr: "cpu", Low: 1800, High: 1800},
	}, "req-1"); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Metrics == nil {
		t.Fatal("stats reply has no metrics digest")
	}
	if st.Metrics.TrieDescents <= before {
		t.Fatalf("digest trie descents = %d, want > %d (counters are process-wide)",
			st.Metrics.TrieDescents, before)
	}
}

func TestServerCountsRequestsAndTraffic(t *testing.T) {
	beforeConns := mConnections.Value()
	beforePings := mRequests[OpPing].Value()
	beforeRead := mBytesRead.Value()
	beforeWritten := mBytesWritten.Value()

	srv, cli := startPair(t)
	for i := 0; i < 3; i++ {
		if err := cli.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	if got := mConnections.Value() - beforeConns; got < 1 {
		t.Fatalf("connections counted = %d, want >= 1", got)
	}
	if got := mRequests[OpPing].Value() - beforePings; got != 3 {
		t.Fatalf("ping requests counted = %d, want 3", got)
	}
	if mBytesRead.Value() == beforeRead || mBytesWritten.Value() == beforeWritten {
		t.Fatal("byte counters did not move")
	}
	// Close detaches the fabric observer; a second Close must not panic.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrorCounted(t *testing.T) {
	srv, err := NewServer(testSystem(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before := mDecodeErrors.Value()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A frame header claiming more than MaxFrame bytes is a decode error.
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The server goroutine counts the bad frame asynchronously; closing the
	// server instead would abort the pending read with net.ErrClosed.
	deadline := time.Now().Add(2 * time.Second)
	for mDecodeErrors.Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("decode error never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if got := mDecodeErrors.Value() - before; got != 1 {
		t.Fatalf("decode errors counted = %d, want 1", got)
	}
}
