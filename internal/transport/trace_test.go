package transport

import (
	"testing"
	"time"

	"lorm/internal/metrics"
	"lorm/internal/resource"
	"lorm/internal/tracing"
)

// TestTraceContextOverTCP is the end-to-end wire-propagation test: a
// client-side root span's context rides a real loopback round trip, the
// server-side fabric op parents under it, and the op's step spans parent
// under the op — one connected trace across two tracers.
func TestTraceContextOverTCP(t *testing.T) {
	sys := testSystem(t)
	serverTracer := tracing.New(tracing.Config{Registry: metrics.NewRegistry(), SampleRate: 1, Seed: 1})
	sys.RoutingFabric().Observe(serverTracer)

	srv, err := NewServer(sys, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	clientTracer := tracing.New(tracing.Config{Registry: metrics.NewRegistry(), SampleRate: 1, Seed: 2})

	tc, finish := clientTracer.StartClient("register")
	if _, err := cli.RegisterTraced(resource.Info{Attr: "cpu", Value: 2000, Owner: "site-a"}, tc); err != nil {
		t.Fatal(err)
	}
	finish()

	tc2, finish2 := clientTracer.StartClient("discover")
	subs := []resource.SubQuery{{Attr: "cpu", Low: 1000, High: 3000}}
	if _, _, _, err := cli.DiscoverTraced(subs, "req-1", tc2); err != nil {
		t.Fatal(err)
	}
	finish2()

	serverSpans := serverTracer.Collector().Snapshot()
	byTrace := map[uint64][]tracing.Span{}
	for _, sp := range serverSpans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}

	check := func(name string, traceID, parentSpan uint64, wantKind string) {
		t.Helper()
		spans := byTrace[traceID]
		if len(spans) == 0 {
			t.Fatalf("%s: no server spans under client trace %016x", name, traceID)
		}
		var op *tracing.Span
		for i := range spans {
			if spans[i].IsOp() {
				if op != nil {
					t.Fatalf("%s: multiple op spans in one trace", name)
				}
				op = &spans[i]
			}
		}
		if op == nil {
			t.Fatalf("%s: no op span under trace %016x", name, traceID)
		}
		if op.Parent != parentSpan {
			t.Fatalf("%s: op parent %016x != client span %016x", name, op.Parent, parentSpan)
		}
		if !op.Remote {
			t.Fatalf("%s: server op not marked remote", name)
		}
		if op.Kind != wantKind {
			t.Fatalf("%s: op kind %q, want %q", name, op.Kind, wantKind)
		}
		for _, sp := range spans {
			if sp.IsOp() {
				continue
			}
			if sp.Parent != op.Span {
				t.Fatalf("%s: step span %016x parented under %016x, want op span %016x",
					name, sp.Span, sp.Parent, op.Span)
			}
		}
	}
	check("register", tc.TraceID, tc.SpanID, "register")
	check("discover", tc2.TraceID, tc2.SpanID, "discover")
}

// TestUntracedRequestCarriesNoContext: a plain Register/Discover sends no
// trace field and the server starts no remote-parented span.
func TestUntracedRequestCarriesNoContext(t *testing.T) {
	sys := testSystem(t)
	serverTracer := tracing.New(tracing.Config{Registry: metrics.NewRegistry(), SampleRate: 1, Seed: 3})
	sys.RoutingFabric().Observe(serverTracer)

	srv, err := NewServer(sys, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	if _, err := cli.Register(resource.Info{Attr: "cpu", Value: 1500, Owner: "site-z"}); err != nil {
		t.Fatal(err)
	}
	for _, sp := range serverTracer.Collector().Snapshot() {
		if sp.Remote {
			t.Fatalf("untraced request produced a remote-parented span: %+v", sp)
		}
	}
}
