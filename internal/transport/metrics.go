package transport

import (
	"net"
	"sync/atomic"

	"lorm/internal/metrics"
)

// Process-wide gateway counters; every Server in the process records into
// the same families. Request counters are pre-resolved per verb so the
// request loop never pays a labeled lookup.
var (
	mConnections = metrics.Default().Counter("transport_connections_total",
		"TCP connections accepted by gateway servers")
	mActiveConns = metrics.Default().Gauge("transport_active_connections",
		"currently open gateway connections")
	mBytesRead = metrics.Default().Counter("transport_bytes_read_total",
		"bytes read from gateway connections")
	mBytesWritten = metrics.Default().Counter("transport_bytes_written_total",
		"bytes written to gateway connections")
	mDecodeErrors = metrics.Default().Counter("transport_decode_errors_total",
		"malformed or oversized frames received by gateway servers")
	mRequestVec = metrics.Default().CounterVec("transport_requests_total",
		"requests handled by gateway servers", "verb")
	mRequests = map[Op]*metrics.Counter{
		OpPing:          mRequestVec.With(string(OpPing)),
		OpRegister:      mRequestVec.With(string(OpRegister)),
		OpDiscover:      mRequestVec.With(string(OpDiscover)),
		OpRegisterBatch: mRequestVec.With(string(OpRegisterBatch)),
		OpDiscoverBatch: mRequestVec.With(string(OpDiscoverBatch)),
		OpStats:         mRequestVec.With(string(OpStats)),
		OpAddNode:       mRequestVec.With(string(OpAddNode)),
		OpRemove:        mRequestVec.With(string(OpRemove)),
	}
	mRequestsUnknown = mRequestVec.With("unknown")
	mIdleDisconnects = metrics.Default().Counter("transport_server_idle_disconnects_total",
		"connections closed by gateway servers after the read deadline expired")
)

// Client-side failure-handling counters (one process often runs both a
// gateway and remote clients, so these live in the same registry).
var (
	mClientRetries = metrics.Default().Counter("transport_client_retries_total",
		"client dial or call attempts retried after a transport failure")
	mClientTimeouts = metrics.Default().Counter("transport_client_timeouts_total",
		"client calls that missed their per-call deadline")
	mClientRedials = metrics.Default().Counter("transport_client_redials_total",
		"connections re-established after a broken or poisoned transport")
)

// Pipelined-client counters and gauges. The inflight gauge counts only
// windowed (data-verb) calls, the population the window bounds; the peak
// and window-slots gauges are monotone maxima — in-flight calls observed
// at once, and in-flight capacity (the sum of concurrently live pipes'
// windows) configured at once — so a snapshot can check
// inflight-peak ≤ window-slots after the fact (metricscheck -transport).
var (
	mPipelineCalls = metrics.Default().Counter("transport_pipeline_calls_total",
		"calls dispatched through multiplexed client pipelines")
	mPipelineBreaks = metrics.Default().Counter("transport_pipeline_breaks_total",
		"client pipelines torn down by a wire failure or missed deadline")
	mPipelineInflight = metrics.Default().Gauge("transport_pipeline_inflight",
		"data-verb calls currently in flight across client pipelines")
	mPipelineInflightPeak = metrics.Default().Gauge("transport_pipeline_inflight_peak",
		"highest observed in-flight data-verb call count")
	mPipelineWindowSlots = metrics.Default().Gauge("transport_pipeline_window_slots",
		"highest total in-flight window capacity across concurrently live client pipelines")
)

// pipelineLiveSlots sums the window sizes of currently live pipes; the
// slots gauge records its high-water mark, which bounds every in-flight
// peak the process can have observed.
var pipelineLiveSlots atomic.Int64

// trackPipelineWindow accounts a new pipe's window and raises the
// window-slots gauge if the live capacity hit a new max.
func trackPipelineWindow(w int) {
	cur := pipelineLiveSlots.Add(int64(w))
	for {
		prev := mPipelineWindowSlots.Value()
		if cur <= prev {
			return
		}
		// Gauge has no CAS; a concurrent larger Set can only raise the value
		// further, and this loop re-checks until the max is stable.
		mPipelineWindowSlots.Set(cur)
		if mPipelineWindowSlots.Value() >= cur {
			return
		}
	}
}

// untrackPipelineWindow releases a dead pipe's window capacity.
func untrackPipelineWindow(w int) {
	pipelineLiveSlots.Add(int64(-w))
}

// trackPipelineInflight raises the in-flight peak gauge to the current
// in-flight count if it is a new max.
func trackPipelineInflight() {
	cur := mPipelineInflight.Value()
	for {
		peak := mPipelineInflightPeak.Value()
		if cur <= peak {
			return
		}
		mPipelineInflightPeak.Set(cur)
	}
}

// Batch-verb accounting: ops-in-frames is bumped once per decoded batch
// frame with the item count, dispatched once per item actually executed
// against the discovery system — metricscheck -transport requires the two
// to agree exactly (no item silently skipped or double-run).
var (
	mBatchOpsVec = metrics.Default().CounterVec("transport_batch_ops_total",
		"operations carried inside batch frames accepted by gateway servers", "verb")
	mBatchDispatchedVec = metrics.Default().CounterVec("transport_batch_dispatched_total",
		"batch items individually executed (or rejected) by gateway servers", "verb")
	mBatchRegisterOps        = mBatchOpsVec.With(string(OpRegisterBatch))
	mBatchDiscoverOps        = mBatchOpsVec.With(string(OpDiscoverBatch))
	mBatchRegisterDispatched = mBatchDispatchedVec.With(string(OpRegisterBatch))
	mBatchDiscoverDispatched = mBatchDispatchedVec.With(string(OpDiscoverBatch))
)

// Failure-injection counters surfaced in the OpStats digest. Registration
// is idempotent, so these resolve the same process-wide families the chord,
// cycloid and churn packages record into; in a gateway that never links
// those packages the families simply stay at zero.
var (
	mdChordDetours = metrics.Default().Counter("chord_lookup_detours_total",
		"chord lookup hops that detoured around a dead preferred finger")
	mdCycloidDetours = metrics.Default().Counter("cycloid_lookup_detours_total",
		"cycloid lookup hops that detoured around a dead preferred link")
	mdChordFailures = metrics.Default().Counter("chord_query_failures_total",
		"chord lookups that failed to resolve a root")
	mdCycloidFailures = metrics.Default().Counter("cycloid_query_failures_total",
		"cycloid lookups that failed to resolve a root")
	mdCrashes = metrics.Default().Counter("churn_crashes_total",
		"abrupt crash failures injected by churn processes")
	mdLostEntries = metrics.Default().Counter("churn_lost_entries_total",
		"directory entries lost to crash failures injected by churn processes")
	mdDirAdds = metrics.Default().Counter("directory_adds_total",
		"Entries stored into node directories (Add and AddAll).")
	mdDirMatches = metrics.Default().Counter("directory_matches_total",
		"Range-match operations served by node directories (Match and MatchAppend).")
	mdDirHandovers = metrics.Default().Counter("directory_entries_handed_over_total",
		"Entries removed from a directory by handover paths (TakeRange, TakeIf, TakeAll).")
	mdReplicasPlaced = metrics.Default().Counter("replication_replicas_placed_total",
		"replica copies stored by placement, repair and hot-key promotion")
	mdReplicasDropped = metrics.Default().Counter("replication_replicas_dropped_total",
		"surplus or invalidated replica copies removed by repair")
	mdReplicaReadHits = metrics.Default().Counter("replication_replica_read_hits_total",
		"single-key reads served by a replica holder via power-of-two-choices")
	mdHotKeyPromotions = metrics.Default().Counter("replication_hotkey_promotions_total",
		"key-groups promoted to hot-key replication")
	mdHotKeyDemotions = metrics.Default().Counter("replication_hotkey_demotions_total",
		"hot-key promotions dropped by invalidation (re-announce) or demotion")
	mdMemberSuspicions = metrics.Default().Counter("membership_suspicions_total",
		"failure-detector suspicions opened")
	mdMemberCleared = metrics.Default().Counter("membership_suspicions_cleared_total",
		"failure-detector suspicions cleared by later contact")
	mdMemberConfirms = metrics.Default().Counter("membership_confirms_total",
		"failure-detector confirmations (suspicions promoted to failures)")
	mdNetPartitions = metrics.Default().Counter("netfault_partitions_started_total",
		"named network partition sets formed by fault planes")
	mdNetHealed = metrics.Default().Counter("netfault_partitions_healed_total",
		"named network partition sets healed by fault planes")
	mdNetBlocked = metrics.Default().Counter("netfault_blocked_messages_total",
		"messages blocked by an active partition or blackhole")
	mdARTDescents = metrics.Default().Counter("art_descent_steps_total",
		"trie-descent forwards taken by ART routing")
	mdARTFallbacks = metrics.Default().Counter("art_descent_fallbacks_total",
		"ART routes completed by the ring lookup after a stale or exhausted descent")
	mdARTBucketSplits = metrics.Default().Counter("art_bucket_splits_total",
		"value buckets split by a node join")
)

// countRequest bumps the per-verb request counter.
func countRequest(op Op) {
	if c, ok := mRequests[op]; ok {
		c.Inc()
		return
	}
	mRequestsUnknown.Inc()
}

// countingConn wraps a server-side connection and accounts its traffic.
type countingConn struct {
	net.Conn
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		mBytesRead.Add(uint64(n))
	}
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		mBytesWritten.Add(uint64(n))
	}
	return n, err
}
