package transport

import (
	"net"

	"lorm/internal/metrics"
)

// Process-wide gateway counters; every Server in the process records into
// the same families. Request counters are pre-resolved per verb so the
// request loop never pays a labeled lookup.
var (
	mConnections = metrics.Default().Counter("transport_connections_total",
		"TCP connections accepted by gateway servers")
	mActiveConns = metrics.Default().Gauge("transport_active_connections",
		"currently open gateway connections")
	mBytesRead = metrics.Default().Counter("transport_bytes_read_total",
		"bytes read from gateway connections")
	mBytesWritten = metrics.Default().Counter("transport_bytes_written_total",
		"bytes written to gateway connections")
	mDecodeErrors = metrics.Default().Counter("transport_decode_errors_total",
		"malformed or oversized frames received by gateway servers")
	mRequestVec = metrics.Default().CounterVec("transport_requests_total",
		"requests handled by gateway servers", "verb")
	mRequests = map[Op]*metrics.Counter{
		OpPing:     mRequestVec.With(string(OpPing)),
		OpRegister: mRequestVec.With(string(OpRegister)),
		OpDiscover: mRequestVec.With(string(OpDiscover)),
		OpStats:    mRequestVec.With(string(OpStats)),
		OpAddNode:  mRequestVec.With(string(OpAddNode)),
		OpRemove:   mRequestVec.With(string(OpRemove)),
	}
	mRequestsUnknown = mRequestVec.With("unknown")
	mIdleDisconnects = metrics.Default().Counter("transport_server_idle_disconnects_total",
		"connections closed by gateway servers after the read deadline expired")
)

// Client-side failure-handling counters (one process often runs both a
// gateway and remote clients, so these live in the same registry).
var (
	mClientRetries = metrics.Default().Counter("transport_client_retries_total",
		"client dial or call attempts retried after a transport failure")
	mClientTimeouts = metrics.Default().Counter("transport_client_timeouts_total",
		"client calls that missed their per-call deadline")
	mClientRedials = metrics.Default().Counter("transport_client_redials_total",
		"connections re-established after a broken or poisoned transport")
)

// Failure-injection counters surfaced in the OpStats digest. Registration
// is idempotent, so these resolve the same process-wide families the chord,
// cycloid and churn packages record into; in a gateway that never links
// those packages the families simply stay at zero.
var (
	mdChordDetours = metrics.Default().Counter("chord_lookup_detours_total",
		"chord lookup hops that detoured around a dead preferred finger")
	mdCycloidDetours = metrics.Default().Counter("cycloid_lookup_detours_total",
		"cycloid lookup hops that detoured around a dead preferred link")
	mdChordFailures = metrics.Default().Counter("chord_query_failures_total",
		"chord lookups that failed to resolve a root")
	mdCycloidFailures = metrics.Default().Counter("cycloid_query_failures_total",
		"cycloid lookups that failed to resolve a root")
	mdCrashes = metrics.Default().Counter("churn_crashes_total",
		"abrupt crash failures injected by churn processes")
	mdLostEntries = metrics.Default().Counter("churn_lost_entries_total",
		"directory entries lost to crash failures injected by churn processes")
	mdDirAdds = metrics.Default().Counter("directory_adds_total",
		"Entries stored into node directories (Add and AddAll).")
	mdDirMatches = metrics.Default().Counter("directory_matches_total",
		"Range-match operations served by node directories (Match and MatchAppend).")
	mdDirHandovers = metrics.Default().Counter("directory_entries_handed_over_total",
		"Entries removed from a directory by handover paths (TakeRange, TakeIf, TakeAll).")
	mdReplicasPlaced = metrics.Default().Counter("replication_replicas_placed_total",
		"replica copies stored by placement, repair and hot-key promotion")
	mdReplicasDropped = metrics.Default().Counter("replication_replicas_dropped_total",
		"surplus or invalidated replica copies removed by repair")
	mdReplicaReadHits = metrics.Default().Counter("replication_replica_read_hits_total",
		"single-key reads served by a replica holder via power-of-two-choices")
	mdHotKeyPromotions = metrics.Default().Counter("replication_hotkey_promotions_total",
		"key-groups promoted to hot-key replication")
	mdHotKeyDemotions = metrics.Default().Counter("replication_hotkey_demotions_total",
		"hot-key promotions dropped by invalidation (re-announce) or demotion")
	mdMemberSuspicions = metrics.Default().Counter("membership_suspicions_total",
		"failure-detector suspicions opened")
	mdMemberCleared = metrics.Default().Counter("membership_suspicions_cleared_total",
		"failure-detector suspicions cleared by later contact")
	mdMemberConfirms = metrics.Default().Counter("membership_confirms_total",
		"failure-detector confirmations (suspicions promoted to failures)")
	mdNetPartitions = metrics.Default().Counter("netfault_partitions_started_total",
		"named network partition sets formed by fault planes")
	mdNetHealed = metrics.Default().Counter("netfault_partitions_healed_total",
		"named network partition sets healed by fault planes")
	mdNetBlocked = metrics.Default().Counter("netfault_blocked_messages_total",
		"messages blocked by an active partition or blackhole")
)

// countRequest bumps the per-verb request counter.
func countRequest(op Op) {
	if c, ok := mRequests[op]; ok {
		c.Inc()
		return
	}
	mRequestsUnknown.Inc()
}

// countingConn wraps a server-side connection and accounts its traffic.
type countingConn struct {
	net.Conn
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		mBytesRead.Add(uint64(n))
	}
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		mBytesWritten.Add(uint64(n))
	}
	return n, err
}
