package transport

import (
	"net"

	"lorm/internal/metrics"
)

// Process-wide gateway counters; every Server in the process records into
// the same families. Request counters are pre-resolved per verb so the
// request loop never pays a labeled lookup.
var (
	mConnections = metrics.Default().Counter("transport_connections_total",
		"TCP connections accepted by gateway servers")
	mActiveConns = metrics.Default().Gauge("transport_active_connections",
		"currently open gateway connections")
	mBytesRead = metrics.Default().Counter("transport_bytes_read_total",
		"bytes read from gateway connections")
	mBytesWritten = metrics.Default().Counter("transport_bytes_written_total",
		"bytes written to gateway connections")
	mDecodeErrors = metrics.Default().Counter("transport_decode_errors_total",
		"malformed or oversized frames received by gateway servers")
	mRequestVec = metrics.Default().CounterVec("transport_requests_total",
		"requests handled by gateway servers", "verb")
	mRequests = map[Op]*metrics.Counter{
		OpPing:     mRequestVec.With(string(OpPing)),
		OpRegister: mRequestVec.With(string(OpRegister)),
		OpDiscover: mRequestVec.With(string(OpDiscover)),
		OpStats:    mRequestVec.With(string(OpStats)),
		OpAddNode:  mRequestVec.With(string(OpAddNode)),
		OpRemove:   mRequestVec.With(string(OpRemove)),
	}
	mRequestsUnknown = mRequestVec.With("unknown")
)

// countRequest bumps the per-verb request counter.
func countRequest(op Op) {
	if c, ok := mRequests[op]; ok {
		c.Inc()
		return
	}
	mRequestsUnknown.Inc()
}

// countingConn wraps a server-side connection and accounts its traffic.
type countingConn struct {
	net.Conn
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		mBytesRead.Add(uint64(n))
	}
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		mBytesWritten.Add(uint64(n))
	}
	return n, err
}
