package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"lorm/internal/resource"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must never
// panic or over-allocate, only return errors. (Runs its seed corpus under
// plain `go test`; use `go test -fuzz FuzzReadFrame` to explore.)
func FuzzReadFrame(f *testing.F) {
	// Seeds: a valid frame, a truncated frame, an oversized header, junk.
	var valid bytes.Buffer
	if err := writeFrame(&valid, &Request{Version: 1, ID: 1, Op: OpPing}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:5])
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrame+7)
	f.Add(huge[:])
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = readFrame(bytes.NewReader(data), &req) // must not panic
	})
}

// FuzzFrameRoundTrip: every encodable request must decode back equal in
// the fields the server dispatches on.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), "register", "cpu", 1800.0, "10.0.0.1")
	f.Add(uint64(999), "discover", "mem", -3.5, "")
	f.Fuzz(func(t *testing.T, id uint64, op, attr string, value float64, owner string) {
		in := Request{
			Version: Version,
			ID:      id,
			Op:      Op(op),
			Info:    &resource.Info{Attr: attr, Value: value, Owner: owner},
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, &in); err != nil {
			t.Skip() // un-encodable floats (NaN) are rejected by JSON: fine
		}
		var out Request
		if err := readFrame(&buf, &out); err != nil {
			t.Fatalf("decode of freshly encoded frame failed: %v", err)
		}
		if out.ID != in.ID || out.Op != in.Op || out.Info == nil ||
			out.Info.Attr != attr || out.Info.Owner != owner {
			t.Fatalf("round trip mangled request: %+v -> %+v", in, out)
		}
	})
}
