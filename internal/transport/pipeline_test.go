package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lorm/internal/netfault"
	"lorm/internal/resource"
)

// Concurrent callers on one client must multiplex over a single connection
// and all complete against a real gateway.
func TestPipelinedConcurrentCalls(t *testing.T) {
	srv, err := NewServer(testSystem(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	connsBefore := mConnections.Value()
	cli, err := DialOptions(srv.Addr(), Options{DialTimeout: time.Second, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const callers, each = 8, 20
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				owner := fmt.Sprintf("owner-%d-%d", c, i)
				if _, err := cli.Register(resource.Info{Attr: "cpu", Value: 100 + float64((c*each+i)%3100), Owner: owner}); err != nil {
					failures.Add(1)
					return
				}
				if _, _, _, err := cli.Discover([]resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}}, owner); err != nil {
					failures.Add(1)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d callers failed", n)
	}
	if got := mConnections.Value() - connsBefore; got != 1 {
		t.Fatalf("gateway saw %d connections for %d concurrent callers, want 1 (multiplexed)", got, callers)
	}
}

// The in-flight window must bound concurrent data verbs: with window=2 and
// a gateway that stalls until it has seen the window filled, a third
// discover must not reach the wire while two are outstanding.
func TestWindowBoundsInflight(t *testing.T) {
	inflight := new(atomic.Int64)
	peak := new(atomic.Int64)
	release := make(chan struct{})
	addr, _ := fakeGateway(t, func(conn net.Conn, n int) {
		var mu sync.Mutex // response writes
		var wg sync.WaitGroup
		defer wg.Wait()
		for {
			var req Request
			if err := readFrame(conn, &req); err != nil {
				return
			}
			cur := inflight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				<-release
				inflight.Add(-1)
				mu.Lock()
				defer mu.Unlock()
				writeFrame(conn, &Response{Version: Version, ID: req.ID, OK: true})
			}(req)
		}
	})
	opts := fastOpts()
	opts.Window = 2
	cli, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli.Discover([]resource.SubQuery{{Attr: "cpu", Low: 0, High: 1}}, fmt.Sprintf("req-%d", i))
		}(i)
	}
	// Give the callers time to saturate the window, then drain everything.
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("gateway observed %d concurrent data verbs, want ≤ window (2)", got)
	}
}

// Control verbs must bypass the window: a ping issued while the window is
// saturated by stalled discovers must complete.
func TestControlVerbBypassesWindow(t *testing.T) {
	release := make(chan struct{})
	addr, _ := fakeGateway(t, func(conn net.Conn, n int) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		defer wg.Wait()
		for {
			var req Request
			if err := readFrame(conn, &req); err != nil {
				return
			}
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				if req.Op != OpPing {
					<-release // stall data verbs until the ping has proven itself
				}
				mu.Lock()
				defer mu.Unlock()
				writeFrame(conn, &Response{Version: Version, ID: req.ID, OK: true})
			}(req)
		}
	})
	opts := fastOpts()
	opts.Window = 1
	cli, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli.Discover([]resource.SubQuery{{Attr: "cpu", Low: 0, High: 1}}, "saturator")
	}()
	time.Sleep(50 * time.Millisecond) // let the discover occupy the only slot

	done := make(chan error, 1)
	go func() { done <- cli.Ping() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ping behind a saturated window: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ping queued behind the saturated window")
	}
	close(release)
	wg.Wait()
}

// A blackhole dropped onto a pipe with calls in flight must fail them all
// fast — the victim with its own timeout, the rest with a distinct
// collateral error — and clearing the fault must let the same client
// recover over a fresh connection, with the retry/redial counters moving.
func TestPipelineBlackholeFailsInflightAndRecovers(t *testing.T) {
	addr, accepts := fakeGateway(t, func(conn net.Conn, n int) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		defer wg.Wait()
		for {
			var req Request
			if err := readFrame(conn, &req); err != nil {
				return
			}
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				// Slow data verbs widen the in-flight window the blackhole
				// catches; pings answer immediately.
				if req.Op != OpPing {
					time.Sleep(100 * time.Millisecond)
				}
				mu.Lock()
				defer mu.Unlock()
				writeFrame(conn, &Response{Version: Version, ID: req.ID, OK: true})
			}(req)
		}
	})

	plane := netfault.NewPlane(1)
	opts := fastOpts()
	opts.CallTimeout = 400 * time.Millisecond
	opts.Retries = -1 // fail straight back so the in-flight errors are visible
	opts.Window = 16
	opts.Dialer = plane.Dialer("client", nil)
	cli, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping over healthy link: %v", err)
	}

	// Launch a burst of discovers, then blackhole the client→gateway
	// direction while they are in flight: their responses never arrive (the
	// server sees requests written before the fault; later writes vanish),
	// so the first deadline kills the pipe and the rest fail collaterally.
	timeoutsBefore := mClientTimeouts.Value()
	breaksBefore := mPipelineBreaks.Value()
	plane.Blackhole("client", addr)
	const burst = 8
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		go func(i int) {
			_, _, _, err := cli.Discover([]resource.SubQuery{{Attr: "cpu", Low: 0, High: 1}}, fmt.Sprintf("req-%d", i))
			errs <- err
		}(i)
	}
	var timeouts, collateral int
	for i := 0; i < burst; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("discover succeeded through a blackhole")
		}
		switch {
		case isTimeout(err):
			timeouts++
		case errors.Is(err, errPipelineBroken):
			collateral++
		default:
			t.Fatalf("in-flight call failed with unclassified error: %v", err)
		}
	}
	if timeouts == 0 {
		t.Error("no call failed with its own timeout")
	}
	if collateral == 0 {
		t.Error("no call failed with the collateral pipeline error")
	}
	if got := mClientTimeouts.Value() - timeoutsBefore; got != uint64(timeouts) {
		t.Errorf("timeout counter moved by %d for %d timeout failures", got, timeouts)
	}
	if mPipelineBreaks.Value() == breaksBefore {
		t.Error("no pipeline break was counted")
	}

	// Heal and recover: the next calls redial a fresh pipe.
	redialsBefore := mClientRedials.Value()
	plane.ClearBlackhole("client", addr)
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping after clearing the blackhole: %v", err)
	}
	if mClientRedials.Value() <= redialsBefore {
		t.Error("recovery did not redial")
	}
	if accepts.Load() < 2 {
		t.Fatalf("gateway saw %d connections, want at least 2 (original + post-heal redial)", accepts.Load())
	}
}

// After Close, calls fail with the client-closed error and never dial.
func TestCallsAfterCloseFail(t *testing.T) {
	_, cli := startPair(t)
	cli.Close()
	if err := cli.Ping(); !errors.Is(err, errClientClosed) {
		t.Fatalf("ping after Close = %v, want errClientClosed", err)
	}
}

// The inflight gauge must return to zero once a burst drains, and the peak
// must stay within the largest configured window (the metricscheck
// -transport invariant).
func TestInflightGaugeSettlesAndPeakBounded(t *testing.T) {
	srv, err := NewServer(testSystem(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialOptions(srv.Addr(), Options{DialTimeout: time.Second, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli.Discover([]resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}}, fmt.Sprintf("req-%d", i))
		}(i)
	}
	wg.Wait()
	if got := mPipelineInflight.Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after the burst drained, want 0", got)
	}
	if peak, slots := mPipelineInflightPeak.Value(), mPipelineWindowSlots.Value(); peak > slots {
		t.Fatalf("inflight peak %d exceeds window slots %d", peak, slots)
	}
}
