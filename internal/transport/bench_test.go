package transport

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"lorm/internal/emulate"
	"lorm/internal/resource"
)

// benchDiscoverRequest is a representative mid-size frame: a two-attribute
// range query, the common shape on the cluster harness's wire.
func benchDiscoverRequest() *Request {
	return &Request{
		Version:   Version,
		ID:        42,
		Op:        OpDiscover,
		Requester: "bench-requester",
		Subs: []resource.SubQuery{
			{Attr: "cpu", Low: 1500, High: 3200},
			{Attr: "mem", Low: 2048, High: 8192},
		},
	}
}

// BenchmarkCodecRoundTrip measures one encode+decode cycle through the
// frame codec, allocation-counted — the per-message floor every verb pays.
func BenchmarkCodecRoundTrip(b *testing.B) {
	req := benchDiscoverRequest()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := writeFrame(&buf, req); err != nil {
			b.Fatal(err)
		}
		var out Request
		if err := readFrame(&buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecEncode isolates the write side (the sync.Pool'd buffer
// path); decode still allocates the output structures by nature of JSON.
func BenchmarkCodecEncode(b *testing.B) {
	req := benchDiscoverRequest()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := writeFrame(&buf, req); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClient measures closed-loop throughput of `workers` concurrent
// goroutines sharing one client against a real loopback-TCP gateway.
// perHop > 0 emulates wide-area forwarding delay per overlay message
// (emulate.WithHopLatency), the regime where pipelining pays: a serialized
// client is latency-bound at one op per service time while the pipelined
// client overlaps its window.
func benchClient(b *testing.B, window, workers int, perHop time.Duration) {
	srv, err := NewServer(emulate.WithHopLatency(testSystem(b), perHop), "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialOptions(srv.Addr(), Options{DialTimeout: time.Second, Window: window})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	subs := []resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}}
	if _, err := cli.Register(resource.Info{Attr: "cpu", Value: 1000, Owner: "bench"}); err != nil {
		b.Fatal(err)
	}
	var ops atomic.Int64
	start := time.Now()
	b.ResetTimer()
	// RunParallel spawns p*GOMAXPROCS goroutines; round up so `workers`
	// callers exist even on a single-core host.
	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((workers + procs - 1) / procs)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, _, err := cli.Discover(subs, "bench"); err != nil {
				b.Error(err)
				return
			}
			ops.Add(1)
		}
	})
	b.StopTimer()
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(ops.Load())/sec, "ops/sec")
	}
}

// BenchmarkClientWindow compares the serialized (window=1, the seed
// one-request-per-round-trip behavior) and pipelined (window=64) client at
// 8+ concurrent callers over loopback TCP, both at zero added latency
// (CPU-bound: the two converge on a single-core host) and with 100µs of
// emulated per-message wide-area delay (latency-bound: the pipelined
// client overlaps service times and wins by roughly the caller count).
// The committed BENCH_cluster.json baseline records the same comparison
// via cmd/lormcluster.
func BenchmarkClientWindow(b *testing.B) {
	for _, c := range []struct {
		name   string
		perHop time.Duration
	}{
		{"loopback", 0},
		{"wan100us", 100 * time.Microsecond},
	} {
		for _, w := range []int{1, 64} {
			b.Run(fmt.Sprintf("%s/window=%d/callers=8", c.name, w), func(b *testing.B) {
				benchClient(b, w, 8, c.perHop)
			})
		}
	}
}
