package transport

import (
	"net"
	"testing"
	"time"

	"lorm/internal/netfault"
)

// A one-way blackhole between client and gateway must surface as failed
// calls — the client's writes vanish in flight, every retry and redial
// runs into its deadline — and clearing the blackhole must let the same
// client recover over a fresh connection without outside help.
func TestClientRecoversAfterBlackholeClears(t *testing.T) {
	addr, accepts := fakeGateway(t, func(conn net.Conn, n int) {
		for okPing(conn) {
		}
	})

	plane := netfault.NewPlane(1)
	opts := fastOpts()
	opts.CallTimeout = 300 * time.Millisecond
	opts.Dialer = plane.Dialer("client", nil)
	cli, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping over healthy link: %v", err)
	}

	// Asymmetric fault: the client→gateway direction goes dark. New dials
	// are refused by the plane and in-flight writes are swallowed, so the
	// call must exhaust its retries and fail.
	plane.Blackhole("client", addr)
	redialsBefore := mClientRedials.Value()
	if err := cli.Ping(); err == nil {
		t.Fatal("ping succeeded through a client→gateway blackhole")
	}
	if mClientRetries.Value() == 0 {
		t.Error("no retry was counted while the blackhole was active")
	}

	plane.ClearBlackhole("client", addr)
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping after clearing the blackhole: %v", err)
	}
	if mClientRedials.Value() <= redialsBefore {
		t.Error("recovery did not redial: the poisoned connection was reused")
	}
	if accepts.Load() < 2 {
		t.Fatalf("gateway saw %d connections, want at least 2 (original + post-heal redial)", accepts.Load())
	}
}
