package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"lorm/internal/discovery"
	"lorm/internal/metrics"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// Server-side I/O deadlines. The read deadline is an idle cap — how long a
// connection may sit between requests before the server reclaims it — so it
// is generous; the write deadline bounds flushing one response to a stalled
// peer. Package variables rather than constants so tests can shrink them.
var (
	serverReadTimeout  = 2 * time.Minute
	serverWriteTimeout = 15 * time.Second
)

// serverConnConcurrency bounds how many requests one connection may have
// executing at once. Pipelined clients keep many requests in flight;
// handling them concurrently (responses matched by ID, written under a
// per-connection mutex, order irrelevant) means a cheap control verb is
// never stuck behind a slow batch on the same socket. Serial legacy
// clients have at most one outstanding request and never observe
// reordering. Package variable so tests can shrink it.
var serverConnConcurrency = 32

// Server fronts a discovery.System on a TCP listener. Each connection is
// served by its own goroutine; requests on one connection are handled
// sequentially (the protocol is request/response), while separate
// connections proceed concurrently — the System implementations are
// concurrency-safe by construction.
type Server struct {
	sys discovery.System
	ln  net.Listener
	log *slog.Logger
	// obs observes the served system's routing fabric when the system is
	// routing.Instrumented; it feeds the process /metrics families and the
	// OpStats digest. fabric keeps the handle for detaching on Close.
	obs    *routing.MetricsObserver
	fabric *routing.Fabric

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving sys on addr (e.g. "127.0.0.1:7400"); addr with
// port 0 picks a free port, available via Addr. logger receives leveled
// structured events (accept failures at Warn, per-request lines at Debug
// with verb/remote/duration and the trace ID when the request is sampled);
// nil discards everything.
func NewServer(sys discovery.System, addr string, logger *slog.Logger) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{sys: sys, ln: ln, log: logger, conns: make(map[net.Conn]bool)}
	if inst, ok := sys.(routing.Instrumented); ok {
		// Wrappers (emulate.HopLatency) report nil for an uninstrumented core.
		if f := inst.RoutingFabric(); f != nil {
			s.fabric = f
			s.obs = routing.NewMetricsObserver(metrics.Default())
			s.fabric.Observe(s.obs)
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and terminates open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if s.fabric != nil {
		s.fabric.Detach(s.obs)
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			s.log.Warn("accept failed", "err", err)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		mConnections.Inc()
		mActiveConns.Inc()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	// handlers tracks this connection's in-flight request goroutines; the
	// connection is closed only after they have all written (or failed).
	var handlers sync.WaitGroup
	defer func() {
		handlers.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		mActiveConns.Dec()
	}()
	cc := countingConn{Conn: conn}
	// writeMu serializes response frames from concurrent handlers.
	var writeMu sync.Mutex
	sem := make(chan struct{}, serverConnConcurrency)
	for {
		if serverReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(serverReadTimeout))
		}
		req := new(Request) // each in-flight handler owns its request
		if err := readFrame(cc, req); err != nil {
			switch {
			case isTimeout(err):
				// Half-open or abandoned peer: reclaim the goroutine and fd.
				mIdleDisconnects.Inc()
			case !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed):
				// EOF (and its torn-connection variants) is an orderly close;
				// anything else is a malformed frame worth counting.
				mDecodeErrors.Inc()
			}
			return // EOF, deadline or protocol error: drop the connection
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			defer func() { <-sem }()
			start := time.Now()
			resp := s.handle(req)
			if s.log.Enabled(context.Background(), slog.LevelDebug) {
				args := []any{
					"verb", string(req.Op),
					"remote", conn.RemoteAddr().String(),
					"dur", time.Since(start),
					"ok", resp.OK,
				}
				if req.Trace != nil && req.Trace.Sampled {
					args = append(args, "trace", fmt.Sprintf("%016x", req.Trace.TraceID))
				}
				s.log.Debug("request", args...)
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			if serverWriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
			}
			if err := writeFrame(cc, resp); err != nil {
				s.log.Warn("response write failed", "remote", conn.RemoteAddr().String(), "err", err)
				conn.Close() // wake the read loop; remaining handlers fail fast
			}
		}()
	}
}

// handle executes one request against the system.
func (s *Server) handle(req *Request) *Response {
	resp := &Response{Version: Version, ID: req.ID}
	fail := func(format string, args ...interface{}) *Response {
		resp.OK = false
		resp.Error = fmt.Sprintf(format, args...)
		return resp
	}
	if req.Version != Version {
		return fail("protocol version %d unsupported (want %d)", req.Version, Version)
	}
	countRequest(req.Op)
	switch req.Op {
	case OpPing:
		resp.OK = true

	case OpRegister:
		if req.Info == nil {
			return fail("register without info")
		}
		var cost discovery.Cost
		var err error
		if tr, ok := s.traced(req); ok {
			cost, err = tr.RegisterTraced(*req.Info, *req.Trace)
		} else {
			cost, err = s.sys.Register(*req.Info)
		}
		if err != nil {
			return fail("register: %v", err)
		}
		resp.OK = true
		resp.Cost = cost

	case OpDiscover:
		if len(req.Subs) == 0 {
			return fail("discover without sub-queries")
		}
		q := resource.Query{Subs: req.Subs, Requester: req.Requester}
		var res *discovery.Result
		var err error
		if tr, ok := s.traced(req); ok {
			res, err = tr.DiscoverTraced(q, *req.Trace)
		} else {
			res, err = s.sys.Discover(q)
		}
		if err != nil {
			return fail("discover: %v", err)
		}
		resp.OK = true
		resp.Cost = res.Cost
		resp.Owners = res.Owners
		for _, infos := range res.PerAttr {
			resp.Matches = append(resp.Matches, infos...)
		}

	case OpRegisterBatch:
		if len(req.Infos) == 0 {
			return fail("registerbatch without infos")
		}
		mBatchRegisterOps.Add(uint64(len(req.Infos)))
		tr, traced := s.traced(req)
		results := make([]BatchResult, len(req.Infos))
		for i := range req.Infos {
			var cost discovery.Cost
			var err error
			if traced {
				cost, err = tr.RegisterTraced(req.Infos[i], *req.Trace)
			} else {
				cost, err = s.sys.Register(req.Infos[i])
			}
			mBatchRegisterDispatched.Inc()
			if err != nil {
				results[i] = BatchResult{Error: err.Error()}
				continue
			}
			results[i] = BatchResult{OK: true, Cost: cost}
		}
		resp.OK = true
		resp.Results = results

	case OpDiscoverBatch:
		if len(req.Queries) == 0 {
			return fail("discoverbatch without queries")
		}
		mBatchDiscoverOps.Add(uint64(len(req.Queries)))
		tr, traced := s.traced(req)
		results := make([]BatchResult, len(req.Queries))
		for i, bq := range req.Queries {
			if len(bq.Subs) == 0 {
				mBatchDiscoverDispatched.Inc()
				results[i] = BatchResult{Error: "discover without sub-queries"}
				continue
			}
			q := resource.Query{Subs: bq.Subs, Requester: bq.Requester}
			var res *discovery.Result
			var err error
			if traced {
				res, err = tr.DiscoverTraced(q, *req.Trace)
			} else {
				res, err = s.sys.Discover(q)
			}
			mBatchDiscoverDispatched.Inc()
			if err != nil {
				results[i] = BatchResult{Error: err.Error()}
				continue
			}
			br := BatchResult{OK: true, Cost: res.Cost, Owners: res.Owners}
			for _, infos := range res.PerAttr {
				br.Matches = append(br.Matches, infos...)
			}
			results[i] = br
		}
		resp.OK = true
		resp.Results = results

	case OpStats:
		sizes := s.sys.DirectorySizes()
		total, max := 0, 0
		for _, sz := range sizes {
			total += sz
			if sz > max {
				max = sz
			}
		}
		avg := 0.0
		if len(sizes) > 0 {
			avg = float64(total) / float64(len(sizes))
		}
		resp.OK = true
		resp.Stats = &Stats{
			System:      s.sys.Name(),
			Nodes:       s.sys.NodeCount(),
			Attributes:  s.sys.Schema().Len(),
			TotalPieces: total,
			AvgDir:      avg,
			MaxDir:      max,
			Metrics:     s.metricsDigest(),
		}

	case OpAddNode:
		dyn, ok := s.sys.(discovery.Dynamic)
		if !ok {
			return fail("system %s does not support membership changes", s.sys.Name())
		}
		if req.Addr == "" {
			return fail("addnode without addr")
		}
		if err := dyn.AddNode(req.Addr); err != nil {
			return fail("addnode: %v", err)
		}
		resp.OK = true

	case OpRemove:
		dyn, ok := s.sys.(discovery.Dynamic)
		if !ok {
			return fail("system %s does not support membership changes", s.sys.Name())
		}
		if req.Addr == "" {
			return fail("removenode without addr")
		}
		if err := dyn.RemoveNode(req.Addr); err != nil {
			return fail("removenode: %v", err)
		}
		resp.OK = true

	default:
		return fail("unknown op %q", req.Op)
	}
	return resp
}

// traced reports whether the request carries a trace context the served
// system can join: old clients (no Trace field) and systems without the
// Traced interface fall back to the plain verbs, so the protocol stays
// version-tolerant in both directions.
func (s *Server) traced(req *Request) (discovery.Traced, bool) {
	if req.Trace == nil || !req.Trace.Valid() {
		return nil, false
	}
	tr, ok := s.sys.(discovery.Traced)
	return tr, ok
}

// metricsDigest condenses the fabric observer's view for the OpStats
// reply; nil when the served system is not instrumented.
func (s *Server) metricsDigest() *MetricsDigest {
	if s.obs == nil {
		return nil
	}
	total, systems := s.obs.Digest()
	d := &MetricsDigest{
		TotalOps:      total,
		LookupDetours: mdChordDetours.Value() + mdCycloidDetours.Value(),
		QueryFailures: mdChordFailures.Value() + mdCycloidFailures.Value(),
		Crashes:       mdCrashes.Value(),
		LostEntries:   mdLostEntries.Value(),
		DirAdds:       mdDirAdds.Value(),
		DirMatches:    mdDirMatches.Value(),
		DirHandovers:  mdDirHandovers.Value(),

		ReplicasPlaced:   mdReplicasPlaced.Value(),
		ReplicasDropped:  mdReplicasDropped.Value(),
		ReplicaReadHits:  mdReplicaReadHits.Value(),
		HotKeyPromotions: mdHotKeyPromotions.Value(),
		HotKeyDemotions:  mdHotKeyDemotions.Value(),

		Suspicions:        mdMemberSuspicions.Value(),
		SuspicionsCleared: mdMemberCleared.Value(),
		FailuresConfirmed: mdMemberConfirms.Value(),
		PartitionsStarted: mdNetPartitions.Value(),
		PartitionsHealed:  mdNetHealed.Value(),
		MessagesBlocked:   mdNetBlocked.Value(),

		PipelineCalls:   mPipelineCalls.Value(),
		PipelineBreaks:  mPipelineBreaks.Value(),
		BatchOps:        mBatchRegisterOps.Value() + mBatchDiscoverOps.Value(),
		BatchDispatched: mBatchRegisterDispatched.Value() + mBatchDiscoverDispatched.Value(),

		TrieDescents:    mdARTDescents.Value(),
		TrieFallbacks:   mdARTFallbacks.Value(),
		TrieBucketSplit: mdARTBucketSplits.Value(),
	}
	// Tracing families are labeled by system and owned by the tracer, so
	// the digest reads their totals from the process registry snapshot
	// instead of re-registering them with a different label shape.
	snap := metrics.Default().Snapshot()
	if f, ok := snap.Family("tracing_spans_sampled_total"); ok {
		d.SpansSampled = uint64(f.Total())
	}
	if f, ok := snap.Family("tracing_spans_dropped_total"); ok {
		d.SpansDropped = uint64(f.Total())
	}
	if f, ok := snap.Family("tracing_slow_ops_total"); ok {
		d.SlowOps = uint64(f.Total())
	}
	for _, sd := range systems {
		d.Systems = append(d.Systems, SystemMetrics{
			System:  sd.System,
			Ops:     sd.Ops,
			P50Hops: sd.P50Hops,
			P99Hops: sd.P99Hops,
		})
	}
	return d
}
