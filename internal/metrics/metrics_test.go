package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	g.Inc()
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("ops_total", "ops", "system").With("lorm")
	b := r.CounterVec("ops_total", "ops", "system").With("lorm")
	if a != b {
		t.Fatal("same family+labels must resolve to the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles must share state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type must panic")
		}
	}()
	r.GaugeVec("ops_total", "ops", "system")
}

func TestBucketIndexAndBounds(t *testing.T) {
	cases := []struct {
		v   float64
		idx int
		le  float64
	}{
		{0, 0, 0}, {1, 1, 1}, {2, 2, 3}, {3, 2, 3}, {4, 3, 7},
		{7, 3, 7}, {8, 4, 15}, {0.5, 1, 1}, {1.2, 2, 3}, {1023, 10, 1023}, {1024, 11, 2047},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.idx {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.idx)
		}
		if got := BucketUpperBound(c.idx); got != c.le {
			t.Errorf("BucketUpperBound(%d) = %v, want %v", c.idx, got, c.le)
		}
	}
	if !math.IsInf(BucketUpperBound(NumBuckets-1), 1) {
		t.Error("last bucket bound must be +Inf")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.ObserveInt(i)
	}
	hv := h.Value()
	if hv.Count != 100 {
		t.Fatalf("count = %d", hv.Count)
	}
	if hv.Sum != 5050 {
		t.Fatalf("sum = %v, want 5050 (exact integer accumulation)", hv.Sum)
	}
	if m := hv.Mean(); m != 50.5 {
		t.Fatalf("mean = %v", m)
	}
	// Bucketed quantiles are estimates; they must land in the right
	// power-of-two neighborhood.
	if q := hv.Quantile(0.5); q < 32 || q > 63 {
		t.Fatalf("p50 = %v, want within [32, 63]", q)
	}
	if q := hv.Quantile(0.99); q < 64 || q > 127 {
		t.Fatalf("p99 = %v, want within [64, 127]", q)
	}
	if q := (HistogramValue{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.ObserveInt(3)
		b.ObserveInt(12)
	}
	av, bv := a.Value(), b.Value()
	av.Merge(bv)
	if av.Count != 20 || av.Sum != 150 {
		t.Fatalf("merged = %+v", av)
	}
	if av.Buckets[2] != 10 || av.Buckets[4] != 10 {
		t.Fatalf("merged buckets = %v", av.Buckets[:8])
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("conc_total", "", "worker").With("w")
	h := r.HistogramVec("conc_hist", "", "worker").With("w")
	g := r.Gauge("conc_gauge", "")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.ObserveInt(i % 64)
				g.Inc()
				if i%2 == 0 {
					// Concurrent snapshots must not block or race writers.
					_ = h.Value()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	hv := h.Value()
	if hv.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", hv.Count, workers*per)
	}
	var perWorker int
	for i := 0; i < per; i++ {
		perWorker += i % 64
	}
	wantSum := float64(workers * perWorker)
	if hv.Sum != wantSum {
		t.Fatalf("histogram sum = %v, want %v", hv.Sum, wantSum)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestZeroAllocRecordPath(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("alloc_total", "", "system").With("lorm")
	h := r.HistogramVec("alloc_hist", "", "system").With("lorm")
	g := r.Gauge("alloc_gauge", "")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v bytes/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveInt(17) }); n != 0 {
		t.Fatalf("Histogram.ObserveInt allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op, want 0", n)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("req_total", "requests", "verb").With("get").Add(3)
	r.Gauge("temp", "temperature").Set(-2)
	h := r.HistogramVec("lat", "latency", "system").With(`o"dd\`)
	h.ObserveInt(1)
	h.ObserveInt(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{verb="get"} 3`,
		"# HELP temp temperature",
		"temp -2",
		"# TYPE lat histogram",
		`lat_bucket{system="o\"dd\\",le="1"} 1`,
		`lat_bucket{system="o\"dd\\",le="7"} 2`,
		`lat_bucket{system="o\"dd\\",le="+Inf"} 2`,
		`lat_sum{system="o\"dd\\"} 6`,
		`lat_count{system="o\"dd\\"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be `name{...} value` with a parseable value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("ops_total", "ops", "system", "kind").With("lorm", "discover").Add(9)
	r.HistogramVec("hops", "per-op hops", "system").With("lorm").ObserveInt(4)
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	f, ok := back.Family("ops_total")
	if !ok || f.Type != "counter" {
		t.Fatalf("ops_total family = %+v, %v", f, ok)
	}
	if f.Total() != 9 {
		t.Fatalf("ops_total total = %v", f.Total())
	}
	if f.Metrics[0].Labels["system"] != "lorm" || f.Metrics[0].Labels["kind"] != "discover" {
		t.Fatalf("labels = %v", f.Metrics[0].Labels)
	}
	hf, ok := back.Family("hops")
	if !ok || hf.Metrics[0].Count != 1 || hf.Metrics[0].Sum != 4 {
		t.Fatalf("hops family = %+v, %v", hf, ok)
	}
	if hf.Metrics[0].Buckets[len(hf.Metrics[0].Buckets)-1].Le != "+Inf" {
		t.Fatalf("buckets must end at +Inf: %+v", hf.Metrics[0].Buckets)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.CounterVec("ops_total", "ops", "system").With("lorm").Add(5)
	a.Counter("only_in_a_total", "").Add(3)
	ha := a.HistogramVec("lat", "latency", "op").With("query")
	ha.ObserveInt(1)
	ha.ObserveInt(100)

	b := NewRegistry()
	b.CounterVec("ops_total", "ops", "system").With("lorm").Add(7)
	b.CounterVec("ops_total", "ops", "system").With("maan").Add(2)
	b.Counter("only_in_b_total", "").Add(4)
	hb := b.HistogramVec("lat", "latency", "op").With("query")
	hb.ObserveInt(100000)

	merged := a.Snapshot().Merge(b.Snapshot())

	f, ok := merged.Family("ops_total")
	if !ok || f.Total() != 14 {
		t.Fatalf("merged ops_total = %+v (ok=%v), want total 14", f, ok)
	}
	bySystem := map[string]float64{}
	for _, m := range f.Metrics {
		bySystem[m.Labels["system"]] += m.Value
	}
	if bySystem["lorm"] != 12 || bySystem["maan"] != 2 {
		t.Fatalf("merged per-system values = %v", bySystem)
	}
	for _, name := range []string{"only_in_a_total", "only_in_b_total"} {
		if f, ok := merged.Family(name); !ok || f.Total() == 0 {
			t.Fatalf("one-sided family %s lost in merge: %+v (ok=%v)", name, f, ok)
		}
	}

	lat, ok := merged.Family("lat")
	if !ok {
		t.Fatal("merged lat family missing")
	}
	m := lat.Metrics[0]
	if m.Count != 3 || m.Sum != 100101 {
		t.Fatalf("merged histogram count=%d sum=%v, want 3 and 100101", m.Count, m.Sum)
	}
	last := m.Buckets[len(m.Buckets)-1]
	if last.Le != "+Inf" || last.Count != 3 {
		t.Fatalf("merged +Inf bucket = %+v, want count 3", last)
	}
	// Cumulative counts must never decrease across bounds.
	var prev uint64
	for _, bk := range m.Buckets {
		if bk.Count < prev {
			t.Fatalf("cumulative bucket counts decrease: %+v", m.Buckets)
		}
		prev = bk.Count
	}
	// The short side's trimmed tail must read as its total: bounds between
	// 100 and 100000 hold a's 2 observations.
	for _, bk := range m.Buckets[:len(m.Buckets)-1] {
		if bk.Le == "128" && bk.Count != 2 {
			t.Fatalf("bucket le=128 count = %d, want 2 (a's total)", bk.Count)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "up_total 1") {
		t.Fatalf("body = %q", b.String())
	}

	resp2, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Family("up_total"); !ok {
		t.Fatalf("json snapshot missing family: %+v", snap)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().CounterVec("bench_total", "", "system").With("lorm")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().HistogramVec("bench_hist", "", "system").With("lorm")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.ObserveInt(i & 1023)
			i++
		}
	})
}
