package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

func writeJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Snapshot is a structured, JSON-serializable copy of a registry's state.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one family with all of its label combinations.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    string           `json:"type"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one labeled series. Counters and gauges fill Value;
// histograms fill Count, Sum and the cumulative Buckets.
type MetricSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket: the count of
// observations at or below the bound Le.
type BucketSnapshot struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// Family returns the named family snapshot, if present.
func (s Snapshot) Family(name string) (FamilySnapshot, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// Total sums the family's sample values: counter/gauge values, or histogram
// sums.
func (f FamilySnapshot) Total() float64 {
	var t float64
	for _, m := range f.Metrics {
		if f.Type == TypeHistogram.String() {
			t += m.Sum
		} else {
			t += m.Value
		}
	}
	return t
}

// Merge combines another snapshot into a copy of this one, the tool for
// assembling a cluster-wide view from per-process /metrics documents
// (cmd/lormcluster). Families are matched by name and series by labels:
// counter and gauge values add, histogram counts, sums and per-bucket
// counts add (both sides share the registry's bucket scheme). Families or
// series present in only one side carry over unchanged.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	var out Snapshot
	seen := make(map[string]bool, len(s.Families))
	for _, f := range s.Families {
		seen[f.Name] = true
		if of, ok := o.Family(f.Name); ok && of.Type == f.Type {
			out.Families = append(out.Families, mergeFamily(f, of))
			continue
		}
		out.Families = append(out.Families, f)
	}
	for _, of := range o.Families {
		if !seen[of.Name] {
			out.Families = append(out.Families, of)
		}
	}
	return out
}

func mergeFamily(a, b FamilySnapshot) FamilySnapshot {
	out := FamilySnapshot{Name: a.Name, Help: a.Help, Type: a.Type}
	matched := make([]bool, len(b.Metrics))
	for _, m := range a.Metrics {
		merged := m
		for i, bm := range b.Metrics {
			if !matched[i] && labelsEqual(m.Labels, bm.Labels) {
				matched[i] = true
				merged = mergeMetric(m, bm)
				break
			}
		}
		out.Metrics = append(out.Metrics, merged)
	}
	for i, bm := range b.Metrics {
		if !matched[i] {
			out.Metrics = append(out.Metrics, bm)
		}
	}
	return out
}

func labelsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// mergeMetric adds two series of the same family. Histogram buckets are
// cumulative and trimmed after the highest non-empty bound, so the shorter
// side reads as its total count beyond its trimmed tail.
func mergeMetric(a, b MetricSnapshot) MetricSnapshot {
	out := MetricSnapshot{Labels: a.Labels, Value: a.Value + b.Value}
	if a.Count == 0 && b.Count == 0 && len(a.Buckets) == 0 && len(b.Buckets) == 0 {
		return out
	}
	out.Count = a.Count + b.Count
	out.Sum = a.Sum + b.Sum
	finite := len(a.Buckets) - 1 // bucket lists end with the +Inf tail
	if n := len(b.Buckets) - 1; n > finite {
		finite = n
	}
	cumAt := func(m MetricSnapshot, i int) uint64 {
		if i < len(m.Buckets)-1 {
			return m.Buckets[i].Count
		}
		return m.Count // beyond the trimmed tail every bound holds the total
	}
	for i := 0; i < finite; i++ {
		le := a.Buckets
		if len(b.Buckets) > len(a.Buckets) {
			le = b.Buckets
		}
		out.Buckets = append(out.Buckets, BucketSnapshot{
			Le:    le[i].Le,
			Count: cumAt(a, i) + cumAt(b, i),
		})
	}
	out.Buckets = append(out.Buckets, BucketSnapshot{Le: "+Inf", Count: out.Count})
	return out
}

// Snapshot captures every family of the registry. Writers are never
// blocked; the result is a momentary view.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for _, f := range r.sortedFamilies() {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ.String()}
		for _, c := range f.sortedChildren() {
			ms := MetricSnapshot{}
			if len(f.labelNames) > 0 {
				ms.Labels = make(map[string]string, len(f.labelNames))
				for i, n := range f.labelNames {
					ms.Labels[n] = c.values[i]
				}
			}
			switch m := c.metric.(type) {
			case *Counter:
				ms.Value = float64(m.Value())
			case *Gauge:
				ms.Value = float64(m.Value())
			case *Histogram:
				hv := m.Value()
				ms.Count, ms.Sum = hv.Count, hv.Sum
				ms.Buckets = cumulativeBuckets(hv)
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		s.Families = append(s.Families, fs)
	}
	return s
}

// WriteJSONSnapshot writes the registry's structured snapshot as indented
// JSON (the same document the HTTP handler serves for ?format=json).
func (r *Registry) WriteJSONSnapshot(w io.Writer) error {
	return writeJSON(w, r.Snapshot())
}

// cumulativeBuckets converts per-bucket counts to the cumulative le-bounded
// form, trimmed after the highest non-empty bucket (a trailing "+Inf"
// bucket always carries the total).
func cumulativeBuckets(hv HistogramValue) []BucketSnapshot {
	last := -1
	for i, n := range hv.Buckets {
		if n > 0 {
			last = i
		}
	}
	out := make([]BucketSnapshot, 0, last+2)
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += hv.Buckets[i]
		out = append(out, BucketSnapshot{Le: formatBound(BucketUpperBound(i)), Count: cum})
	}
	return append(out, BucketSnapshot{Le: "+Inf", Count: hv.Count})
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// labelString renders {k="v",...} with an optional extra label appended
// (used for histogram le labels); empty when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, quote and newline exactly as the Prometheus
		// text format requires.
		fmt.Fprintf(&b, `%s=%q`, n, values[i])
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range f.sortedChildren() {
			switch m := c.metric.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labelNames, c.values, "", ""), m.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labelNames, c.values, "", ""), m.Value())
			case *Histogram:
				hv := m.Value()
				for _, b := range cumulativeBuckets(hv) {
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						labelString(f.labelNames, c.values, "le", b.Le), b.Count)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name,
					labelString(f.labelNames, c.values, "", ""),
					strconv.FormatFloat(hv.Sum, 'g', -1, 64))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name,
					labelString(f.labelNames, c.values, "", ""), hv.Count)
			}
		}
	}
	return bw.Flush()
}

// Handler serves the registry as a Prometheus scrape target with
// `?format=json` selecting the structured snapshot instead.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
