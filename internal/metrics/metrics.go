// Package metrics is the process-wide observability layer: lock-free
// counters, gauges and power-of-two-bucketed histograms collected into a
// named Registry with labeled families, exposed as Prometheus text format
// (Registry.WritePrometheus, Registry.Handler) and as a structured JSON
// snapshot (Registry.Snapshot).
//
// The package is dependency-free (stdlib only) and designed around one
// invariant: the record path — Counter.Add, Gauge.Set, Histogram.Observe —
// performs only atomic operations on pre-resolved handles. No locks, no
// allocation, no map lookups. Instrumented hot paths (the snapshot-based
// overlay lookups, the transport read loop) therefore pay a few atomic adds
// per event and nothing else. Family and child creation (Registry.CounterVec,
// CounterVec.With) may lock and allocate; callers resolve handles once at
// setup and hold them.
//
// Histograms bucket by powers of two: bucket i counts observations v with
// ceil(v) in [2^(i-1), 2^i), so any non-negative value lands in one of 65
// fixed buckets via a single bit-length instruction. Buckets are plain
// atomic counters, which makes histograms mergeable by addition and the
// snapshot path wait-free with respect to writers.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; all methods are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down (active connections,
// live nodes). The zero value is ready to use; all methods are safe for
// concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NumBuckets is the fixed bucket count of every Histogram: one bucket per
// possible bit length of a uint64 observation (0..64).
const NumBuckets = 65

// bucketIndex maps a non-negative observation to its bucket: the bit length
// of ceil(v). Index 0 holds exact zeros; index i ≥ 1 holds values whose
// ceiling lies in [2^(i-1), 2^i).
func bucketIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	if float64(u) < v {
		u++ // ceil for fractional observations
	}
	return bits.Len64(u)
}

// BucketUpperBound returns the inclusive upper bound of bucket i — the
// largest integer observation the bucket admits — and +Inf for the last
// bucket. Bounds are 0, 1, 3, 7, 15, ... (2^i − 1).
func BucketUpperBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i) - 1)
}

// Histogram is a fixed-bucket power-of-two histogram. The zero value is
// ready to use; Observe is safe for concurrent use and allocation-free.
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one observation. Negative values are clamped to 0 (the
// domain here is counts: hops, bytes, nodes).
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveInt records one integer observation.
func (h *Histogram) ObserveInt(n int) { h.Observe(float64(n)) }

// Value captures the histogram's current state. Buckets are read without
// blocking writers, so under concurrent observation the copy is a momentary
// view, not a strict linearization — adequate for exposition and digests.
func (h *Histogram) Value() HistogramValue {
	var hv HistogramValue
	hv.Count = h.count.Load()
	hv.Sum = math.Float64frombits(h.sumBits.Load())
	for i := range h.buckets {
		hv.Buckets[i] = h.buckets[i].Load()
	}
	return hv
}

// HistogramValue is a plain-data copy of a histogram, mergeable by
// addition.
type HistogramValue struct {
	Count   uint64
	Sum     float64
	Buckets [NumBuckets]uint64
}

// Merge adds another histogram's observations into this one.
func (hv *HistogramValue) Merge(o HistogramValue) {
	hv.Count += o.Count
	hv.Sum += o.Sum
	for i := range hv.Buckets {
		hv.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the p-quantile (p in [0, 1]) by linear interpolation
// inside the bucket containing the rank. Zero observations yield 0.
func (hv HistogramValue) Quantile(p float64) float64 {
	if hv.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(hv.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range hv.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1)) // bucket i admits [2^(i-1), 2^i)
			}
			hi := BucketUpperBound(i)
			if math.IsInf(hi, 1) || hi < lo {
				return lo
			}
			frac := (rank - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return BucketUpperBound(NumBuckets - 1)
}

// Mean returns the average observation, 0 with no observations.
func (hv HistogramValue) Mean() float64 {
	if hv.Count == 0 {
		return 0
	}
	return hv.Sum / float64(hv.Count)
}
