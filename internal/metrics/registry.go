package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Type distinguishes the metric families a Registry holds.
type Type uint8

// Family types.
const (
	TypeCounter Type = iota
	TypeGauge
	TypeHistogram
)

func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry is a named collection of metric families. Family registration is
// idempotent: asking for an existing name returns the existing family, so
// independent subsystems (several transport servers, every chord ring in a
// Mercury deployment) share one set of process-wide series. Registration
// and child resolution lock; the returned handles never do.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level
// instrumentation (overlay maintenance, churn driver, transport server)
// records into. Tests that need isolation construct their own registries.
func Default() *Registry { return defaultRegistry }

// child pairs a metric with the label values it was created under.
type child struct {
	values []string
	metric interface{} // *Counter, *Gauge or *Histogram
}

// family is one named group of children differing only in label values.
type family struct {
	name       string
	help       string
	typ        Type
	labelNames []string

	mu       sync.RWMutex
	children map[string]*child
}

// labelKey joins label values into a map key; \x1f cannot appear in a
// reasonable label value and keeps the join unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register creates or fetches a family, panicking on a redefinition with a
// different shape — that is a programming error, caught at init in practice.
func (r *Registry) register(name, help string, typ Type, labelNames []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid family name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q in family %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || labelKey(f.labelNames) != labelKey(labelNames) {
			panic(fmt.Sprintf("metrics: family %s re-registered as %s%v (was %s%v)",
				name, typ, labelNames, f.typ, f.labelNames))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// resolve fetches or creates the child for the given label values.
func (f *family) resolve(values []string, make func() interface{}) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: family %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{values: append([]string(nil), values...), metric: make()}
	f.children[key] = c
	return c
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ fam *family }

// CounterVec creates or fetches the counter family with the given label
// names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, TypeCounter, labelNames)}
}

// With resolves the counter for the given label values, creating it on
// first use. Resolve once and hold the handle on hot paths.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.resolve(values, func() interface{} { return &Counter{} }).metric.(*Counter)
}

// Counter creates or fetches an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ fam *family }

// GaugeVec creates or fetches the gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, TypeGauge, labelNames)}
}

// With resolves the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.resolve(values, func() interface{} { return &Gauge{} }).metric.(*Gauge)
}

// Gauge creates or fetches an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ fam *family }

// HistogramVec creates or fetches the histogram family with the given label
// names.
func (r *Registry) HistogramVec(name, help string, labelNames ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, TypeHistogram, labelNames)}
}

// With resolves the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.resolve(values, func() interface{} { return &Histogram{} }).metric.(*Histogram)
}

// Histogram creates or fetches an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramVec(name, help).With()
}

// sortedFamilies returns the families ordered by name, each with its
// children ordered by label key, so exposition and snapshots are
// deterministic.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren returns the family's children ordered by label key.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	f.mu.RUnlock()
	return out
}
