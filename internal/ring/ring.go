// Package ring provides modular arithmetic on a circular identifier space
// of 2^bits points. Chord, MAAN, Mercury and SWORD all place nodes and keys
// on such a ring; the helpers here implement the distance and interval tests
// those protocols are defined in terms of.
//
// All identifiers are uint64 values; a Space restricts them to the low
// `bits` bits. The zero value is not useful: construct a Space with
// NewSpace.
package ring

import "fmt"

// MaxBits is the widest supported identifier space. Using 63 rather than 64
// keeps every distance representable in a signed 64-bit integer, which the
// experiment code uses for deltas.
const MaxBits = 63

// Space describes a circular identifier space with 2^Bits points.
type Space struct {
	bits uint
	mask uint64 // 2^bits - 1
}

// NewSpace returns a ring of 2^bits identifiers. It panics if bits is 0 or
// exceeds MaxBits; ring sizes are static configuration, so a bad value is a
// programming error rather than a runtime condition.
func NewSpace(bits uint) Space {
	if bits == 0 || bits > MaxBits {
		panic(fmt.Sprintf("ring: invalid bit width %d (want 1..%d)", bits, MaxBits))
	}
	return Space{bits: bits, mask: (uint64(1) << bits) - 1}
}

// Bits returns the configured identifier width.
func (s Space) Bits() uint { return s.bits }

// Size returns the number of points on the ring, 2^bits.
func (s Space) Size() uint64 { return s.mask + 1 }

// Contains reports whether id is a valid identifier in this space.
func (s Space) Contains(id uint64) bool { return id <= s.mask }

// Fold maps an arbitrary uint64 onto the ring by truncation.
func (s Space) Fold(id uint64) uint64 { return id & s.mask }

// Add returns (a + b) mod 2^bits.
func (s Space) Add(a, b uint64) uint64 { return (a + b) & s.mask }

// Sub returns (a - b) mod 2^bits.
func (s Space) Sub(a, b uint64) uint64 { return (a - b) & s.mask }

// Clockwise returns the clockwise (increasing-id) distance from a to b.
func (s Space) Clockwise(a, b uint64) uint64 { return s.Sub(b, a) }

// Distance returns the minimal circular distance between a and b,
// i.e. min(clockwise, counterclockwise).
func (s Space) Distance(a, b uint64) uint64 {
	cw := s.Clockwise(a, b)
	ccw := s.Clockwise(b, a)
	if cw < ccw {
		return cw
	}
	return ccw
}

// Between reports whether id lies on the open interval (from, to) walking
// clockwise. When from == to the interval covers the whole ring except the
// single point from, which is the convention Chord's lookup expects.
func (s Space) Between(id, from, to uint64) bool {
	if from == to {
		return id != from
	}
	return id != from && s.Clockwise(from, id) < s.Clockwise(from, to)
}

// BetweenIncl reports whether id lies on the half-open interval (from, to]
// walking clockwise. This is the "does key belong to successor" test.
func (s Space) BetweenIncl(id, from, to uint64) bool {
	if id == to {
		return true
	}
	return s.Between(id, from, to)
}

// Scale maps a fraction f in [0, 1] onto the ring: 0 → 0, 1 → last id.
// Fractions outside [0, 1] are clamped. It is the backbone of the
// locality-preserving hash.
func (s Space) Scale(f float64) uint64 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return s.mask
	}
	id := uint64(f * float64(s.mask+1))
	if id > s.mask {
		id = s.mask
	}
	return id
}

// Fraction is the inverse of Scale: it maps an identifier to its position
// in [0, 1) around the ring.
func (s Space) Fraction(id uint64) float64 {
	return float64(s.Fold(id)) / float64(s.mask+1)
}
