package ring

import (
	"testing"
	"testing/quick"
)

func TestNewSpacePanics(t *testing.T) {
	for _, bits := range []uint{0, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", bits)
				}
			}()
			NewSpace(bits)
		}()
	}
}

func TestSizeAndMask(t *testing.T) {
	s := NewSpace(11)
	if got, want := s.Size(), uint64(2048); got != want {
		t.Fatalf("Size() = %d, want %d", got, want)
	}
	if !s.Contains(2047) || s.Contains(2048) {
		t.Fatalf("Contains boundary wrong: Contains(2047)=%v Contains(2048)=%v",
			s.Contains(2047), s.Contains(2048))
	}
	if got := s.Fold(2048); got != 0 {
		t.Fatalf("Fold(2048) = %d, want 0", got)
	}
}

func TestAddSubWrap(t *testing.T) {
	s := NewSpace(8)
	if got := s.Add(200, 100); got != 44 {
		t.Fatalf("Add(200,100) = %d, want 44", got)
	}
	if got := s.Sub(10, 20); got != 246 {
		t.Fatalf("Sub(10,20) = %d, want 246", got)
	}
}

func TestClockwiseAndDistance(t *testing.T) {
	s := NewSpace(8)
	cases := []struct {
		a, b     uint64
		cw, dist uint64
	}{
		{0, 0, 0, 0},
		{0, 1, 1, 1},
		{1, 0, 255, 1},
		{10, 250, 240, 16},
		{250, 10, 16, 16},
		{0, 128, 128, 128},
	}
	for _, c := range cases {
		if got := s.Clockwise(c.a, c.b); got != c.cw {
			t.Errorf("Clockwise(%d,%d) = %d, want %d", c.a, c.b, got, c.cw)
		}
		if got := s.Distance(c.a, c.b); got != c.dist {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.dist)
		}
	}
}

func TestBetween(t *testing.T) {
	s := NewSpace(8)
	cases := []struct {
		id, from, to uint64
		open, incl   bool
	}{
		{5, 0, 10, true, true},
		{0, 0, 10, false, false},   // from excluded
		{10, 0, 10, false, true},   // to excluded from open, included in incl
		{11, 0, 10, false, false},  // outside
		{250, 240, 10, true, true}, // wrapping interval
		{5, 240, 10, true, true},   // wrapping interval, after zero
		{100, 240, 10, false, false},
		{7, 7, 7, false, true}, // full-ring convention: only `from` outside open
		{8, 7, 7, true, true},  // everything else inside
		{6, 7, 7, true, true},  // wraps almost all the way
	}
	for _, c := range cases {
		if got := s.Between(c.id, c.from, c.to); got != c.open {
			t.Errorf("Between(%d, %d, %d) = %v, want %v", c.id, c.from, c.to, got, c.open)
		}
		if got := s.BetweenIncl(c.id, c.from, c.to); got != c.incl {
			t.Errorf("BetweenIncl(%d, %d, %d) = %v, want %v", c.id, c.from, c.to, got, c.incl)
		}
	}
}

func TestScaleEndpoints(t *testing.T) {
	s := NewSpace(11)
	if got := s.Scale(0); got != 0 {
		t.Errorf("Scale(0) = %d, want 0", got)
	}
	if got := s.Scale(1); got != 2047 {
		t.Errorf("Scale(1) = %d, want 2047", got)
	}
	if got := s.Scale(-0.5); got != 0 {
		t.Errorf("Scale(-0.5) = %d, want 0 (clamped)", got)
	}
	if got := s.Scale(1.5); got != 2047 {
		t.Errorf("Scale(1.5) = %d, want 2047 (clamped)", got)
	}
	if got := s.Scale(0.5); got != 1024 {
		t.Errorf("Scale(0.5) = %d, want 1024", got)
	}
}

func TestScaleMonotone(t *testing.T) {
	s := NewSpace(16)
	prev := uint64(0)
	for i := 0; i <= 1000; i++ {
		f := float64(i) / 1000
		id := s.Scale(f)
		if id < prev {
			t.Fatalf("Scale not monotone at f=%v: %d < %d", f, id, prev)
		}
		prev = id
	}
}

// Property: distance is symmetric and bounded by half the ring size.
func TestDistanceProperties(t *testing.T) {
	s := NewSpace(20)
	f := func(a, b uint64) bool {
		a, b = s.Fold(a), s.Fold(b)
		d1, d2 := s.Distance(a, b), s.Distance(b, a)
		return d1 == d2 && d1 <= s.Size()/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add and Sub are inverses.
func TestAddSubInverse(t *testing.T) {
	s := NewSpace(32)
	f := func(a, b uint64) bool {
		a = s.Fold(a)
		return s.Sub(s.Add(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for any distinct from != to, exactly one of Between(id, from, to)
// and BetweenIncl(id, to, from) holds for ids other than the endpoints
// (the two arcs partition the ring).
func TestArcsPartitionRing(t *testing.T) {
	s := NewSpace(10)
	f := func(id, from, to uint64) bool {
		id, from, to = s.Fold(id), s.Fold(from), s.Fold(to)
		if from == to || id == from || id == to {
			return true // skip degenerate cases
		}
		a := s.Between(id, from, to)
		b := s.Between(id, to, from)
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fraction(Scale(f)) is within one ring-point of f.
func TestScaleFractionRoundTrip(t *testing.T) {
	s := NewSpace(24)
	step := 1 / float64(s.Size())
	f := func(raw uint16) bool {
		frac := float64(raw) / 65536
		got := s.Fraction(s.Scale(frac))
		diff := got - frac
		if diff < 0 {
			diff = -diff
		}
		return diff <= step
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkBetween(b *testing.B) {
	s := NewSpace(32)
	for i := 0; i < b.N; i++ {
		s.Between(uint64(i)*2654435761, 12345, 987654321)
	}
}
