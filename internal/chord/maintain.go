package chord

import (
	"fmt"

	"lorm/internal/directory"
)

// Join adds one node by protocol: the newcomer hashes itself onto the
// ring, routes to its own successor via an existing node, splices in
// between that successor and its predecessor, takes over the keys it is
// now responsible for, and builds its finger table by lookups. Existing
// nodes' fingers are not touched; FixFingers repairs them over time,
// exactly as in the protocol.
func (r *Ring) Join(addr string) (*Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("chord: empty address")
	}
	id := r.idFor(addr)
	n := &Node{ID: id, Addr: addr}

	if len(r.sorted) == 0 { // first node: a ring of one
		r.insertMember(n)
		r.rebuildNodeLocked(n)
		return n, nil
	}

	bootstrap := r.nodes[r.sorted[0]]
	route, err := r.lookupLocked(bootstrap, id)
	if err != nil {
		return nil, fmt.Errorf("chord: join lookup failed: %w", err)
	}
	succ := route.Root
	r.insertMember(n)

	// Splice pointers: n sits between succ's old predecessor and succ.
	if succ.hasPred {
		if p, alive := r.nodes[succ.pred]; alive {
			p.succs = prependSucc(p.succs, id, r.cfg.SuccListLen)
		}
		n.pred, n.hasPred = succ.pred, true
	}
	succ.pred, succ.hasPred = id, true
	n.succs = prependSucc(append([]uint64(nil), succ.succs...), succ.ID, r.cfg.SuccListLen)

	// Key handover: entries in (pred(n), n] now belong to n.
	if n.hasPred {
		pred := n.pred
		moved := succ.Dir.TakeIf(func(e directory.Entry) bool {
			return r.space.BetweenIncl(e.Key, pred, id)
		})
		n.Dir.AddAll(moved)
	}

	// Build the newcomer's fingers by routed lookups through the ring.
	n.fingers = make([]uint64, r.cfg.Bits)
	for i := uint(0); i < r.cfg.Bits; i++ {
		target := r.space.Add(id, uint64(1)<<i)
		rt, err := r.lookupLocked(succ, target)
		if err != nil {
			return nil, fmt.Errorf("chord: join fix finger %d: %w", i, err)
		}
		n.fingers[i] = rt.Root.ID
	}
	return n, nil
}

// Leave removes a node gracefully: its directory entries are handed to its
// successor and its neighbors' pointers are repaired immediately, matching
// the paper's churn model in which stored objects survive departures.
func (r *Ring) Leave(n *Node) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, alive := r.nodes[n.ID]; !alive {
		return fmt.Errorf("chord: leave of unknown node %s", n.Addr)
	}
	if len(r.sorted) == 1 {
		return fmt.Errorf("chord: refusing to remove the last node")
	}
	r.removeMember(n.ID)

	succID := r.oracleSuccessor(n.ID)
	succ := r.nodes[succID]
	succ.Dir.AddAll(n.Dir.TakeAll())

	// Repair immediate neighbors.
	if n.hasPred {
		if p, alive := r.nodes[n.pred]; alive {
			p.succs = prependSucc(removeID(p.succs, n.ID), succID, r.cfg.SuccListLen)
		}
		if succ.hasPred && succ.pred == n.ID {
			succ.pred = n.pred
		}
	} else if succ.hasPred && succ.pred == n.ID {
		succ.pred = r.oraclePredecessor(succID)
	}
	return nil
}

// Stabilize runs one stabilization round on every node: adopt the
// successor's predecessor when it falls between, refresh the successor
// list, and notify the successor. It repairs the pointer invariants that
// protocol joins leave eventually-consistent.
func (r *Ring) Stabilize() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range r.sorted {
		n := r.nodes[id]
		succID := r.successorLocked(n)
		if succID == n.ID {
			continue
		}
		succ := r.nodes[succID]
		if succ.hasPred {
			if p, alive := r.nodes[succ.pred]; alive && r.space.Between(p.ID, n.ID, succID) {
				succID, succ = p.ID, p
			}
		}
		// Refresh successor list from the successor's list.
		list := make([]uint64, 0, r.cfg.SuccListLen)
		list = append(list, succID)
		for _, s := range succ.succs {
			if len(list) >= r.cfg.SuccListLen {
				break
			}
			if _, alive := r.nodes[s]; alive && s != n.ID {
				list = append(list, s)
			}
		}
		n.succs = list
		// Notify.
		if !succ.hasPred || r.space.Between(n.ID, succ.pred, succID) || r.deadLocked(succ.pred) {
			succ.pred, succ.hasPred = n.ID, true
		}
	}
}

// FixFingers refreshes `perNode` finger entries on every node using routed
// lookups, cycling through the table. perNode <= 0 refreshes every entry.
func (r *Ring) FixFingers(perNode int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if perNode <= 0 || perNode > int(r.cfg.Bits) {
		perNode = int(r.cfg.Bits)
	}
	for _, id := range r.sorted {
		n := r.nodes[id]
		if n.fingers == nil {
			n.fingers = make([]uint64, r.cfg.Bits)
		}
		for j := 0; j < perNode; j++ {
			i := (n.nextFinger + j) % int(r.cfg.Bits)
			target := r.space.Add(n.ID, uint64(1)<<uint(i))
			// Oracle repair: periodic fix-fingers converges to ground truth
			// in the protocol; we jump straight there, which reproduces the
			// post-convergence state without simulating every probe.
			n.fingers[i] = r.oracleSuccessor(target)
		}
		n.nextFinger = (n.nextFinger + perNode) % int(r.cfg.Bits)
	}
}

func (r *Ring) deadLocked(id uint64) bool {
	_, alive := r.nodes[id]
	return !alive
}

// prependSucc puts id at the head of a successor list, dedups, and trims.
func prependSucc(list []uint64, id uint64, max int) []uint64 {
	out := make([]uint64, 0, max)
	out = append(out, id)
	for _, s := range list {
		if len(out) >= max {
			break
		}
		if s != id {
			out = append(out, s)
		}
	}
	return out
}

// removeID drops an ID from a successor list.
func removeID(list []uint64, id uint64) []uint64 {
	out := list[:0]
	for _, s := range list {
		if s != id {
			out = append(out, s)
		}
	}
	return out
}

// Fail removes a node abruptly: no key handover, no pointer repair — the
// node simply vanishes, as in a crash. Routing state heals through the
// alive-checks in lookups plus Stabilize/FixFingers; directory entries the
// node held are lost unless the application replicated them. Returns the
// number of entries lost with the node.
func (r *Ring) Fail(n *Node) (lostEntries int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[n.ID] != n {
		return 0, fmt.Errorf("chord: fail of unknown node %s", n.Addr)
	}
	if len(r.sorted) == 1 {
		return 0, fmt.Errorf("chord: refusing to fail the last node")
	}
	r.removeMember(n.ID)
	return n.Dir.Len(), nil
}
