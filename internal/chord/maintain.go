package chord

import (
	"fmt"
)

// Join adds one node by protocol: the newcomer hashes itself onto the
// ring, routes to its own successor via an existing node, splices in
// between that successor and its predecessor, takes over the keys it is
// now responsible for, and builds its finger table by lookups. Existing
// nodes' fingers are not touched; FixFingers repairs them over time,
// exactly as in the protocol. The whole join builds on a private draft and
// publishes with one pointer swap, so concurrent lookups see either the
// old ring or the fully spliced one.
func (r *Ring) Join(addr string) (*Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("chord: empty address")
	}
	d := r.beginDraft()
	id := r.idFor(d.s.members, addr)
	n := &Node{ID: id, Addr: addr}

	if len(d.s.sorted) == 0 { // first node: a ring of one
		d.insert(n)
		r.rebuildNode(d, n)
		r.publish(d)
		return n, nil
	}

	bootstrap := d.s.members[d.s.sorted[0]].node
	route, err := r.lookupOn(d.s, nil, bootstrap, id)
	if err != nil {
		return nil, fmt.Errorf("chord: join lookup failed: %w", err)
	}
	succ := route.Root
	d.insert(n)

	// Splice pointers: n sits between succ's old predecessor and succ.
	succSt := d.mutState(succ.ID)
	nSt := d.mutState(id)
	if succSt.hasPred {
		if aliveIn(d.s, succSt.pred) {
			pSt := d.mutState(succSt.pred)
			pSt.succs = prependSucc(pSt.succs, id, r.cfg.SuccListLen)
		}
		nSt.pred, nSt.hasPred = succSt.pred, true
	}
	nSt.succs = prependSucc(append([]uint64(nil), succSt.succs...), succ.ID, r.cfg.SuccListLen)
	succSt.pred, succSt.hasPred = id, true

	// Key handover: entries in (pred(n), n] now belong to n. The half-open
	// ring interval (pred, id] is the closed key range [pred+1, id], wrapped
	// when it crosses zero — extracted by binary search on the directory's
	// key-ordered view instead of a full predicate scan.
	if nSt.hasPred {
		lo := r.space.Add(nSt.pred, 1)
		n.Dir.AddAll(succ.Dir.TakeRange(lo, id, lo > id))
	}

	// Build the newcomer's fingers by routed lookups through the draft.
	nSt.fingers = make([]uint64, r.cfg.Bits)
	for i := uint(0); i < r.cfg.Bits; i++ {
		target := r.space.Add(id, uint64(1)<<i)
		rt, err := r.lookupOn(d.s, nil, succ, target)
		if err != nil {
			return nil, fmt.Errorf("chord: join fix finger %d: %w", i, err)
		}
		nSt.fingers[i] = rt.Root.ID
	}
	r.publish(d)
	return n, nil
}

// Leave removes a node gracefully: its directory entries are handed to its
// successor and its neighbors' pointers are repaired immediately, matching
// the paper's churn model in which stored objects survive departures.
func (r *Ring) Leave(n *Node) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.beginDraft()
	if !aliveIn(d.s, n.ID) {
		return fmt.Errorf("chord: leave of unknown node %s", n.Addr)
	}
	if len(d.s.sorted) == 1 {
		return fmt.Errorf("chord: refusing to remove the last node")
	}
	nSt := stateOf(d.s, n.ID)
	d.remove(n.ID)

	succID := r.oracleSuccessorIn(d.s, n.ID)
	succ := d.s.members[succID].node
	succ.Dir.AddAll(n.Dir.TakeAll())

	// Repair immediate neighbors.
	succSt := d.mutState(succID)
	if nSt.hasPred {
		if aliveIn(d.s, nSt.pred) {
			pSt := d.mutState(nSt.pred)
			pSt.succs = prependSucc(removeID(pSt.succs, n.ID), succID, r.cfg.SuccListLen)
		}
		if succSt.hasPred && succSt.pred == n.ID {
			succSt.pred = nSt.pred
		}
	} else if succSt.hasPred && succSt.pred == n.ID {
		succSt.pred = r.oraclePredecessorIn(d.s, succID)
	}
	r.publish(d)
	return nil
}

// Stabilize runs one stabilization round on every node: adopt the
// successor's predecessor when it falls between, refresh the successor
// list, and notify the successor. It repairs the pointer invariants that
// protocol joins leave eventually-consistent. The round runs on a draft
// and publishes once, so lookups never see a half-stabilized ring.
func (r *Ring) Stabilize() {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.beginDraft()
	for _, id := range d.s.sorted {
		n := d.s.members[id].node
		succID, _, _ := r.successorIn(d.s, d.s.members[id])
		if succID == n.ID {
			continue
		}
		succSt := stateOf(d.s, succID)
		if succSt.hasPred {
			if aliveIn(d.s, succSt.pred) && r.space.Between(succSt.pred, n.ID, succID) {
				succID = succSt.pred
				succSt = stateOf(d.s, succID)
			}
		}
		// Refresh successor list from the successor's list.
		list := make([]uint64, 0, r.cfg.SuccListLen)
		list = append(list, succID)
		for _, c := range succSt.succs {
			if len(list) >= r.cfg.SuccListLen {
				break
			}
			if aliveIn(d.s, c) && c != n.ID {
				list = append(list, c)
			}
		}
		d.mutState(id).succs = list
		// Notify.
		succMut := d.mutState(succID)
		if !succMut.hasPred || r.space.Between(n.ID, succMut.pred, succID) || !aliveIn(d.s, succMut.pred) {
			succMut.pred, succMut.hasPred = n.ID, true
		}
	}
	r.publish(d)
	mStabilizeRounds.Inc()
}

// FixFingers refreshes `perNode` finger entries on every node using routed
// lookups, cycling through the table. perNode <= 0 refreshes every entry.
func (r *Ring) FixFingers(perNode int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if perNode <= 0 || perNode > int(r.cfg.Bits) {
		perNode = int(r.cfg.Bits)
	}
	d := r.beginDraft()
	for _, id := range d.s.sorted {
		n := d.s.members[id].node
		st := d.mutState(id)
		if len(st.fingers) < int(r.cfg.Bits) {
			fingers := make([]uint64, r.cfg.Bits)
			copy(fingers, st.fingers)
			st.fingers = fingers
		}
		for j := 0; j < perNode; j++ {
			i := (n.nextFinger + j) % int(r.cfg.Bits)
			// Oracle repair: periodic fix-fingers converges to ground truth
			// in the protocol; we jump straight there, which reproduces the
			// post-convergence state without simulating every probe. Under
			// Config.FingerRng the converged-to entry is a fresh randomized
			// pick, so refreshes keep re-spreading the fingers.
			st.fingers[i] = r.fingerEntry(d.s, n.ID, uint(i))
		}
		n.nextFinger = (n.nextFinger + perNode) % int(r.cfg.Bits)
	}
	r.publish(d)
	mFingerFixes.Add(uint64(perNode) * uint64(len(d.s.sorted)))
}

// prependSucc puts id at the head of a successor list, dedups, and trims.
func prependSucc(list []uint64, id uint64, max int) []uint64 {
	out := make([]uint64, 0, max)
	out = append(out, id)
	for _, s := range list {
		if len(out) >= max {
			break
		}
		if s != id {
			out = append(out, s)
		}
	}
	return out
}

// removeID drops an ID from a successor list.
func removeID(list []uint64, id uint64) []uint64 {
	out := list[:0]
	for _, s := range list {
		if s != id {
			out = append(out, s)
		}
	}
	return out
}

// Fail removes a node abruptly: no key handover, no pointer repair — the
// node simply vanishes, as in a crash. Routing state heals through the
// alive-checks in lookups plus Stabilize/FixFingers; directory entries the
// node held are lost unless the application replicated them. Returns the
// number of entries lost with the node.
func (r *Ring) Fail(n *Node) (lostEntries int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.beginDraft()
	if d.s.members[n.ID].node != n {
		return 0, fmt.Errorf("chord: fail of unknown node %s", n.Addr)
	}
	if len(d.s.sorted) == 1 {
		return 0, fmt.Errorf("chord: refusing to fail the last node")
	}
	d.remove(n.ID)
	r.publish(d)
	mFailuresDetected.Inc()
	return n.Dir.Len(), nil
}
