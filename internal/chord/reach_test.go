package chord

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lorm/internal/netfault"
)

// buildRingCfg populates a ring with n addressed nodes under the given
// configuration.
func buildRingCfg(t *testing.T, n int, cfg Config) *Ring {
	t.Helper()
	r := New(cfg)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := r.AddBulk(addrs); err != nil {
		t.Fatal(err)
	}
	return r
}

// splitMinority returns the addresses of the first `k` nodes in ring order
// — a deterministic minority side for partition tests.
func splitMinority(r *Ring, k int) []string {
	nodes := r.Nodes()
	out := make([]string, 0, k)
	for _, n := range nodes[:k] {
		out = append(out, n.Addr)
	}
	return out
}

func TestLookupFailsAcrossPartitionAndHealsCleanly(t *testing.T) {
	r := buildRingCfg(t, 64, Config{Bits: 16})
	nodes := r.Nodes()
	minority := splitMinority(r, 16)
	inMinority := make(map[string]bool, len(minority))
	for _, a := range minority {
		inMinority[a] = true
	}

	plane := netfault.NewPlane(1)
	r.SetReachability(plane)
	if err := plane.StartPartition("cut", minority); err != nil {
		t.Fatal(err)
	}

	from := nodes[0] // minority side (ring order start)
	if !inMinority[from.Addr] {
		t.Fatalf("test setup: %s not in minority", from.Addr)
	}
	crossFails, sameSide := 0, 0
	for i := 0; i < 128; i++ {
		key := uint64(i) * 512
		owner, err := r.OwnerOf(key)
		if err != nil {
			t.Fatal(err)
		}
		route, err := r.Lookup(from, key)
		if inMinority[owner.Addr] {
			sameSide++
			// Same-side keys may still fail when the only route crosses the
			// cut, but a resolved root must never be wrong.
			if err == nil && route.Root != owner {
				t.Fatalf("key %d resolved to %s, oracle owner %s", key, route.Root.Addr, owner.Addr)
			}
			continue
		}
		// Cross-partition key: the final successor step cannot be taken and
		// no node on this side passes the ownership check, so the lookup
		// must fail rather than resolve a wrong root.
		if err == nil {
			t.Fatalf("lookup for far-side key %d resolved to %s during partition", key, route.Root.Addr)
		}
		if errors.Is(err, ErrUnreachable) {
			crossFails++
		}
	}
	if crossFails == 0 || sameSide == 0 {
		t.Fatalf("degenerate split: %d unreachable failures, %d same-side keys", crossFails, sameSide)
	}

	// A minority node whose true successor is across the cut truncates
	// range walks at the boundary.
	last := nodes[15]
	if next, ok := r.NextNode(last); ok {
		if !inMinority[next.Addr] {
			t.Fatalf("NextNode(%s) crossed the cut to %s", last.Addr, next.Addr)
		}
	}

	plane.Heal("cut")
	for i := 0; i < 128; i++ {
		key := uint64(i) * 512
		owner, _ := r.OwnerOf(key)
		route, err := r.Lookup(from, key)
		if err != nil {
			t.Fatalf("post-heal lookup for %d failed: %v", key, err)
		}
		if route.Root != owner {
			t.Fatalf("post-heal key %d resolved to %s, oracle owner %s", key, route.Root.Addr, owner.Addr)
		}
	}
}

func TestRandomizedFingersStayInIntervalAndResolve(t *testing.T) {
	det := buildRingCfg(t, 128, Config{Bits: 16})
	rnd := buildRingCfg(t, 128, Config{Bits: 16, FingerRng: rand.New(rand.NewSource(7))})
	rnd2 := buildRingCfg(t, 128, Config{Bits: 16, FingerRng: rand.New(rand.NewSource(7))})

	sDet, sRnd, sRnd2 := det.view(), rnd.view(), rnd2.view()
	differs := 0
	for _, id := range sRnd.sorted {
		stR, stR2, stD := sRnd.members[id].st(), sRnd2.members[id].st(), sDet.members[id].st()
		for i := range stR.fingers {
			if stR.fingers[i] != stR2.fingers[i] {
				t.Fatalf("same seed produced different finger %d on node %d", i, id)
			}
			if stR.fingers[i] != stD.fingers[i] {
				differs++
			}
			// The randomized entry must live in [id+2^i, id+2^(i+1)) when
			// that interval is populated, else equal the deterministic
			// successor fallback.
			lo := rnd.space.Add(id, uint64(1)<<uint(i))
			hi := rnd.space.Add(id, uint64(1)<<uint(i+1))
			f := stR.fingers[i]
			inInterval := f == lo || (f != hi && rnd.space.Between(f, lo, hi))
			if !inInterval && f != rnd.oracleSuccessorIn(sRnd, lo) {
				t.Fatalf("node %d finger %d = %d outside [%d, %d) and not the fallback", id, i, f, lo, hi)
			}
		}
	}
	if differs == 0 {
		t.Fatal("randomized fingers never diverged from deterministic ones")
	}

	from := rnd.Nodes()[0]
	for i := 0; i < 256; i++ {
		key := uint64(i) * 257
		owner, _ := rnd.OwnerOf(key)
		route, err := rnd.Lookup(from, key)
		if err != nil {
			t.Fatalf("randomized-finger lookup for %d failed: %v", key, err)
		}
		if route.Root != owner {
			t.Fatalf("randomized-finger key %d resolved to %s, owner %s", key, route.Root.Addr, owner.Addr)
		}
	}
}
