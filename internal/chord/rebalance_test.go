package chord

import (
	"math/rand"
	"testing"

	"lorm/internal/directory"
	"lorm/internal/resource"
)

func fillKeys(t *testing.T, r *Ring, n int, seed int64) []uint64 {
	t.Helper()
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() & (r.Space().Size() - 1)
		e := directory.Entry{Key: keys[i], Info: resource.Info{Attr: "a", Value: float64(i), Owner: "o"}}
		if _, err := r.Insert(nodes[0], keys[i], e); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func totalStored(r *Ring) int {
	total := 0
	for _, sz := range r.DirectorySizes() {
		total += sz
	}
	return total
}

func checkPlacement(t *testing.T, r *Ring, keys []uint64) {
	t.Helper()
	for _, k := range keys {
		owner, _ := r.OwnerOf(k)
		found := false
		for _, e := range owner.Dir.Snapshot() {
			if e.Key == k {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %d not on oracle owner after boundary move", k)
		}
	}
}

func TestAdvanceMovesBoundaryAndEntries(t *testing.T) {
	r := buildRing(t, 40)
	keys := fillKeys(t, r, 400, 11)
	nodes := r.Nodes()
	n := nodes[5]
	succ := nodes[6]
	// Advance half-way into the successor's interval.
	newID := n.ID + r.space.Clockwise(n.ID, succ.ID)/2
	if newID == n.ID {
		t.Skip("adjacent IDs, no room to advance")
	}
	before := totalStored(r)
	n2, moved, err := r.Advance(n, newID)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if n2.ID != newID || n2.Addr != n.Addr {
		t.Fatalf("replacement node = %d/%s, want %d/%s", n2.ID, n2.Addr, newID, n.Addr)
	}
	if moved < 0 {
		t.Fatalf("moved = %d", moved)
	}
	if got := totalStored(r); got != before {
		t.Fatalf("entries not conserved: %d -> %d", before, got)
	}
	// The old node object must be gone from membership.
	if got, ok := r.NodeByAddr(n.Addr); !ok || got != n2 {
		t.Fatalf("NodeByAddr(%s) = %v, %v, want replacement", n.Addr, got, ok)
	}
	checkPlacement(t, r, keys)
	// Lookups from every node still resolve to the oracle owner.
	rng := rand.New(rand.NewSource(12))
	cur := r.Nodes()
	for i := 0; i < 300; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		route, err := r.Lookup(cur[rng.Intn(len(cur))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := r.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-advance Lookup(%d) = %d, oracle %d", key, route.Root.ID, want.ID)
		}
	}
}

func TestRetreatMovesBoundaryAndEntries(t *testing.T) {
	r := buildRing(t, 40)
	keys := fillKeys(t, r, 400, 13)
	nodes := r.Nodes()
	n := nodes[9]
	pred := nodes[8]
	newID := pred.ID + r.space.Clockwise(pred.ID, n.ID)/2
	if newID == pred.ID || newID == n.ID {
		t.Skip("adjacent IDs, no room to retreat")
	}
	before := totalStored(r)
	n2, moved, err := r.Retreat(n, newID)
	if err != nil {
		t.Fatalf("Retreat: %v", err)
	}
	if n2.ID != newID {
		t.Fatalf("replacement ID = %d, want %d", n2.ID, newID)
	}
	if moved < 0 {
		t.Fatalf("moved = %d", moved)
	}
	if got := totalStored(r); got != before {
		t.Fatalf("entries not conserved: %d -> %d", before, got)
	}
	checkPlacement(t, r, keys)
	rng := rand.New(rand.NewSource(14))
	cur := r.Nodes()
	for i := 0; i < 300; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		route, err := r.Lookup(cur[rng.Intn(len(cur))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := r.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-retreat Lookup(%d) = %d, oracle %d", key, route.Root.ID, want.ID)
		}
	}
}

func TestAdvanceRetreatErrors(t *testing.T) {
	r := buildRing(t, 10)
	nodes := r.Nodes()
	n := nodes[3]
	succ := nodes[4]
	pred := nodes[2]
	// Target outside (n, succ) refused.
	if _, _, err := r.Advance(n, succ.ID); err == nil {
		t.Fatal("advance onto successor ID should error")
	}
	if _, _, err := r.Advance(n, n.ID); err == nil {
		t.Fatal("advance to own ID should error")
	}
	if _, _, err := r.Retreat(n, pred.ID); err == nil {
		t.Fatal("retreat onto predecessor ID should error")
	}
	if _, _, err := r.Retreat(n, n.ID); err == nil {
		t.Fatal("retreat to own ID should error")
	}
	// Unknown node refused.
	if _, _, err := r.Advance(&Node{ID: n.ID, Addr: "ghost"}, n.ID+1); err == nil {
		t.Fatal("advance of foreign node object should error")
	}
	// Stale node object (already replaced) refused.
	mid := n.ID + r.space.Clockwise(n.ID, succ.ID)/2
	if mid != n.ID {
		if _, _, err := r.Advance(n, mid); err != nil {
			t.Fatalf("Advance: %v", err)
		}
		if _, _, err := r.Advance(n, mid+1); err == nil {
			t.Fatal("advance of stale node object should error")
		}
	}
	// Singleton ring refused.
	single := New(Config{})
	only, err := single.Join("only")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := single.Advance(only, only.ID+1); err == nil {
		t.Fatal("advance on singleton should error")
	}
	if _, _, err := single.Retreat(only, only.ID-1); err == nil {
		t.Fatal("retreat on singleton should error")
	}
}

// Repeated random boundary moves must keep every entry on its oracle owner
// and keep the ring routable.
func TestBoundaryMoveChurn(t *testing.T) {
	r := buildRing(t, 30)
	keys := fillKeys(t, r, 300, 15)
	rng := rand.New(rand.NewSource(16))
	moves := 0
	for i := 0; i < 60; i++ {
		nodes := r.Nodes()
		n := nodes[rng.Intn(len(nodes))]
		next, _ := r.NextNode(n)
		gapFwd := r.space.Clockwise(n.ID, next.ID)
		if rng.Intn(2) == 0 && gapFwd > 1 {
			if _, _, err := r.Advance(n, r.space.Add(n.ID, 1+rng.Uint64()%(gapFwd-1))); err != nil {
				t.Fatalf("move %d advance: %v", i, err)
			}
			moves++
		} else {
			predID := r.oraclePredecessorIn(r.view(), n.ID)
			gapBack := r.space.Clockwise(predID, n.ID)
			if gapBack > 1 {
				if _, _, err := r.Retreat(n, r.space.Add(predID, 1+rng.Uint64()%(gapBack-1))); err != nil {
					t.Fatalf("move %d retreat: %v", i, err)
				}
				moves++
			}
		}
	}
	if moves == 0 {
		t.Fatal("no boundary moves exercised")
	}
	if totalStored(r) != 300 {
		t.Fatalf("entries not conserved over %d moves: %d", moves, totalStored(r))
	}
	checkPlacement(t, r, keys)
}
