package chord

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"lorm/internal/directory"
	"lorm/internal/resource"
)

func addrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%04d", i)
	}
	return out
}

func buildRing(t testing.TB, n int) *Ring {
	t.Helper()
	r := New(Config{Bits: 20, SuccListLen: 4})
	if err := r.AddBulk(addrs(n)); err != nil {
		t.Fatalf("AddBulk: %v", err)
	}
	return r
}

func TestAddBulkAndSize(t *testing.T) {
	r := buildRing(t, 64)
	if r.Size() != 64 {
		t.Fatalf("Size = %d, want 64", r.Size())
	}
	if err := r.AddBulk([]string{""}); err == nil {
		t.Fatal("AddBulk with empty address should error")
	}
}

func TestIDsAreUnique(t *testing.T) {
	r := buildRing(t, 2048)
	seen := map[uint64]bool{}
	for _, n := range r.Nodes() {
		if seen[n.ID] {
			t.Fatalf("duplicate node ID %d", n.ID)
		}
		seen[n.ID] = true
	}
}

// Every lookup must return the oracle successor of the key, from any start.
func TestLookupMatchesOracle(t *testing.T) {
	r := buildRing(t, 200)
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		from := nodes[rng.Intn(len(nodes))]
		route, err := r.Lookup(from, key)
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		want, _ := r.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("Lookup(%d) = node %d, oracle says %d", key, route.Root.ID, want.ID)
		}
	}
}

func TestLookupSelfIsZeroHops(t *testing.T) {
	r := buildRing(t, 50)
	for _, n := range r.Nodes()[:10] {
		route, err := r.Lookup(n, n.ID)
		if err != nil {
			t.Fatal(err)
		}
		if route.Root != n || route.Hops != 0 {
			t.Fatalf("Lookup(own ID) = root %d hops %d, want self/0", route.Root.ID, route.Hops)
		}
	}
}

func TestLookupEmptyRing(t *testing.T) {
	r := New(Config{})
	if _, err := r.Lookup(&Node{}, 1); err == nil {
		t.Fatal("lookup on empty ring should error")
	}
}

func TestLookupFromForeignNode(t *testing.T) {
	r := buildRing(t, 10)
	if _, err := r.Lookup(&Node{ID: 12345}, 1); err == nil {
		t.Fatal("lookup from non-member should error")
	}
}

// Average lookup path length should scale like (1/2)·log2(n), the constant
// Theorem 4.7 relies on.
func TestLookupHopsScaleLogarithmically(t *testing.T) {
	for _, n := range []int{128, 1024} {
		r := buildRing(t, n)
		nodes := r.Nodes()
		rng := rand.New(rand.NewSource(2))
		total, count := 0, 0
		for i := 0; i < 3000; i++ {
			key := rng.Uint64() & (r.Space().Size() - 1)
			route, err := r.Lookup(nodes[rng.Intn(len(nodes))], key)
			if err != nil {
				t.Fatal(err)
			}
			total += route.Hops
			count++
		}
		avg := float64(total) / float64(count)
		want := 0.5 * math.Log2(float64(n))
		if avg < want*0.7 || avg > want*1.4 {
			t.Errorf("n=%d: avg hops %.2f, want ≈ %.2f (0.5·log2 n)", n, avg, want)
		}
	}
}

func TestInsertPlacesOnOracleOwner(t *testing.T) {
	r := buildRing(t, 100)
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		e := directory.Entry{Key: key, Info: resource.Info{Attr: "cpu", Value: float64(i), Owner: "o"}}
		if _, err := r.Insert(nodes[rng.Intn(len(nodes))], key, e); err != nil {
			t.Fatal(err)
		}
		want, _ := r.OwnerOf(key)
		if want.Dir.CountAttr("cpu") == 0 {
			t.Fatalf("entry for key %d not on oracle owner", key)
		}
	}
	total := 0
	for _, sz := range r.DirectorySizes() {
		total += sz
	}
	if total != 500 {
		t.Fatalf("total stored = %d, want 500", total)
	}
}

func TestNextNodeWalksRingInOrder(t *testing.T) {
	r := buildRing(t, 32)
	nodes := r.Nodes()
	cur := nodes[0]
	for i := 1; i <= 32; i++ {
		next, ok := r.NextNode(cur)
		if !ok {
			t.Fatal("NextNode reported single-node ring")
		}
		want := nodes[i%32]
		if next != want {
			t.Fatalf("walk step %d: got %d, want %d", i, next.ID, want.ID)
		}
		cur = next
	}
	if cur != nodes[0] {
		t.Fatal("walking n steps did not return to start")
	}
}

func TestNextNodeSingle(t *testing.T) {
	r := New(Config{})
	n, err := r.Join("only")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.NextNode(n); ok {
		t.Fatal("single-node ring should report no next")
	}
}

func TestNodeNearDeterministic(t *testing.T) {
	r := buildRing(t, 64)
	a, err := r.NodeNear("requester-7")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.NodeNear("requester-7")
	if a != b {
		t.Fatal("NodeNear not deterministic")
	}
	if _, err := New(Config{}).NodeNear("x"); err == nil {
		t.Fatal("NodeNear on empty ring should error")
	}
}

func TestNodeByAddr(t *testing.T) {
	r := buildRing(t, 16)
	n, ok := r.NodeByAddr("node-0007")
	if !ok || n.Addr != "node-0007" {
		t.Fatalf("NodeByAddr = %v, %v", n, ok)
	}
	if _, ok := r.NodeByAddr("nope"); ok {
		t.Fatal("NodeByAddr should miss")
	}
}

func TestOutlinkCountsApproxLogN(t *testing.T) {
	r := buildRing(t, 1024)
	counts := r.OutlinkCounts()
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	avg := sum / float64(len(counts))
	// Distinct fingers ≈ log2(n) = 10, plus successor list tail.
	if avg < 8 || avg > 18 {
		t.Errorf("avg outlinks = %.1f, want ≈ log2(1024)+list", avg)
	}
}

// Protocol joins one at a time must produce a ring equivalent to bulk
// construction: every key's routed owner equals the oracle owner.
func TestJoinIncremental(t *testing.T) {
	r := New(Config{Bits: 20})
	for i := 0; i < 60; i++ {
		if _, err := r.Join(fmt.Sprintf("node-%04d", i)); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if r.Size() != 60 {
		t.Fatalf("Size = %d, want 60", r.Size())
	}
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		route, err := r.Lookup(nodes[rng.Intn(len(nodes))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := r.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-join Lookup(%d) = %d, oracle %d", key, route.Root.ID, want.ID)
		}
	}
}

// A join must take over exactly the keys in (pred, new] from its successor.
func TestJoinKeyHandover(t *testing.T) {
	r := buildRing(t, 20)
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = rng.Uint64() & (r.Space().Size() - 1)
		e := directory.Entry{Key: keys[i], Info: resource.Info{Attr: "a", Value: 1, Owner: "o"}}
		if _, err := r.Insert(nodes[0], keys[i], e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Join("newcomer"); err != nil {
		t.Fatal(err)
	}
	// Every key must now reside on its (new) oracle owner.
	for _, k := range keys {
		owner, _ := r.OwnerOf(k)
		found := false
		for _, e := range owner.Dir.Snapshot() {
			if e.Key == k {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %d not on oracle owner after join", k)
		}
	}
}

func TestLeaveTransfersKeysAndRepairs(t *testing.T) {
	r := buildRing(t, 30)
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = rng.Uint64() & (r.Space().Size() - 1)
		e := directory.Entry{Key: keys[i], Info: resource.Info{Attr: "a", Value: 1, Owner: "o"}}
		if _, err := r.Insert(nodes[0], keys[i], e); err != nil {
			t.Fatal(err)
		}
	}
	victim := nodes[7]
	if err := r.Leave(victim); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 29 {
		t.Fatalf("Size = %d after leave, want 29", r.Size())
	}
	if err := r.Leave(victim); err == nil {
		t.Fatal("double leave should error")
	}
	total := 0
	for _, sz := range r.DirectorySizes() {
		total += sz
	}
	if total != 200 {
		t.Fatalf("keys lost in departure: %d stored, want 200", total)
	}
	// Lookups still match oracle from any surviving node.
	survivors := r.Nodes()
	for i := 0; i < 300; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		route, err := r.Lookup(survivors[rng.Intn(len(survivors))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := r.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-leave Lookup(%d) = %d, oracle %d", key, route.Root.ID, want.ID)
		}
	}
}

func TestLeaveLastNodeRefused(t *testing.T) {
	r := New(Config{})
	n, err := r.Join("only")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Leave(n); err == nil {
		t.Fatal("removing the last node should be refused")
	}
}

// Sustained churn with stabilization: lookups keep matching the oracle.
func TestChurnWithStabilization(t *testing.T) {
	r := buildRing(t, 100)
	rng := rand.New(rand.NewSource(7))
	joined := 100
	for round := 0; round < 40; round++ {
		// One join and one departure per round (paper's churn model).
		if _, err := r.Join(fmt.Sprintf("churn-%04d", joined)); err != nil {
			t.Fatalf("round %d join: %v", round, err)
		}
		joined++
		nodes := r.Nodes()
		if err := r.Leave(nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatalf("round %d leave: %v", round, err)
		}
		r.Stabilize()
		r.FixFingers(4)

		nodes = r.Nodes()
		for i := 0; i < 20; i++ {
			key := rng.Uint64() & (r.Space().Size() - 1)
			route, err := r.Lookup(nodes[rng.Intn(len(nodes))], key)
			if err != nil {
				t.Fatalf("round %d lookup: %v", round, err)
			}
			want, _ := r.OwnerOf(key)
			if route.Root != want {
				t.Fatalf("round %d: Lookup(%d) = %d, oracle %d", round, key, route.Root.ID, want.ID)
			}
		}
	}
}

func TestConcurrentLookups(t *testing.T) {
	r := buildRing(t, 256)
	nodes := r.Nodes()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				key := rng.Uint64() & (r.Space().Size() - 1)
				if _, err := r.Lookup(nodes[rng.Intn(len(nodes))], key); err != nil {
					errc <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// Property: for random small rings, routed owner == oracle owner.
func TestLookupOracleProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64, nNodes uint8, keys [8]uint64) bool {
		n := int(nNodes%50) + 2
		r := New(Config{Bits: 16})
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("p%d-%d", seed, i)
		}
		if err := r.AddBulk(names); err != nil {
			return false
		}
		nodes := r.Nodes()
		for _, raw := range keys {
			key := raw & (r.Space().Size() - 1)
			route, err := r.Lookup(nodes[int(raw%uint64(len(nodes)))], key)
			if err != nil {
				return false
			}
			want, _ := r.OwnerOf(key)
			if route.Root != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup2048(b *testing.B) {
	r := buildRing(b, 2048)
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		if _, err := r.Lookup(nodes[i%len(nodes)], key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoin(b *testing.B) {
	r := buildRing(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Join(fmt.Sprintf("bench-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Abrupt failures: no handover, no repair — lookups must still converge to
// the (new) oracle owner via alive-checks and stabilization.
func TestFailAbruptThenLookupsRecover(t *testing.T) {
	r := buildRing(t, 80)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 15; i++ {
		nodes := r.Nodes()
		if _, err := r.Fail(nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	r.Stabilize()
	r.FixFingers(0)
	nodes := r.Nodes()
	if len(nodes) != 65 {
		t.Fatalf("size = %d after 15 failures, want 65", len(nodes))
	}
	for i := 0; i < 400; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		route, err := r.Lookup(nodes[rng.Intn(len(nodes))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := r.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-failure Lookup(%d) = %d, oracle %d", key, route.Root.ID, want.ID)
		}
	}
}

func TestFailErrors(t *testing.T) {
	r := New(Config{})
	n, err := r.Join("only")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fail(n); err == nil {
		t.Fatal("failing the last node should be refused")
	}
	if _, err := r.Fail(&Node{ID: 999}); err == nil {
		t.Fatal("failing a non-member should error")
	}
}
