package chord

import (
	"fmt"
)

// Advance and Retreat are the two ownership-boundary moves the
// load-balancing subsystem (internal/loadbalance) is built on. Chord's
// successor rule ties an entry's placement to the identifier of the node
// that owns its key, so migrating entries between neighbors without breaking
// exact lookups and range walks requires moving the boundary itself: the
// node's identifier changes and the key interval — with every entry stored
// under it — changes hands atomically with the membership update.
//
// Both operations follow the writer protocol of every other membership
// change: build a copy-on-write draft under Ring.mu, move the directory
// entries, rebuild routing state from authoritative membership (the
// post-convergence state Stabilize/FixFingers would reach), and publish with
// one pointer swap. Lookups never observe a half-moved boundary. Because a
// Node's ID is read lock-free by concurrent lookups, the node object is
// replaced rather than mutated; callers holding the old *Node must re-resolve
// it (NodeByAddr) after a successful call.

// Advance moves node n clockwise to newID, which must lie strictly between
// n.ID and its current successor's ID. n takes over the key interval
// (n.ID, newID] from its successor: the successor's entries in that interval
// migrate to n. This is the "predecessor advances" half of neighbor item
// migration — an overloaded node's predecessor advances toward it, relieving
// it of the bottom of its key interval. The replacement node object is
// returned; the moved-entry count is the number of entries that changed
// node (the advancing node's own directory travels with it and is not
// counted).
func (r *Ring) Advance(n *Node, newID uint64) (*Node, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.beginDraft()
	if m, ok := d.s.members[n.ID]; !ok || m.node != n {
		return nil, 0, fmt.Errorf("chord: advance of unknown node %s", n.Addr)
	}
	if len(d.s.sorted) < 2 {
		return nil, 0, fmt.Errorf("chord: advance needs at least 2 nodes")
	}
	succID := r.oracleSuccessorIn(d.s, r.space.Add(n.ID, 1))
	if !r.space.Between(newID, n.ID, succID) {
		return nil, 0, fmt.Errorf("chord: advance target %d not in (%d, %d)", newID, n.ID, succID)
	}
	succ := d.s.members[succID].node

	n2 := &Node{ID: newID, Addr: n.Addr, nextFinger: n.nextFinger}
	n2.Dir.AddAll(n.Dir.TakeAll())
	lo := r.space.Add(n.ID, 1)
	moved := succ.Dir.TakeRange(lo, newID, lo > newID)
	n2.Dir.AddAll(moved)

	d.remove(n.ID)
	d.insert(n2)
	for _, id := range d.s.sorted {
		r.rebuildNode(d, d.s.members[id].node)
	}
	r.publish(d)
	mBoundaryMoves.Inc()
	return n2, len(moved), nil
}

// Retreat moves node n counterclockwise to newID, which must lie strictly
// between its predecessor's ID and n.ID. n gives up the key interval
// (newID, n.ID] to its successor: its own entries in that interval migrate
// there. This is the "overloaded node retreats" half of neighbor item
// migration — shedding the top of its key interval downstream. The
// replacement node object and the moved-entry count are returned.
func (r *Ring) Retreat(n *Node, newID uint64) (*Node, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.beginDraft()
	if m, ok := d.s.members[n.ID]; !ok || m.node != n {
		return nil, 0, fmt.Errorf("chord: retreat of unknown node %s", n.Addr)
	}
	if len(d.s.sorted) < 2 {
		return nil, 0, fmt.Errorf("chord: retreat needs at least 2 nodes")
	}
	predID := r.oraclePredecessorIn(d.s, n.ID)
	if !r.space.Between(newID, predID, n.ID) {
		return nil, 0, fmt.Errorf("chord: retreat target %d not in (%d, %d)", newID, predID, n.ID)
	}
	succID := r.oracleSuccessorIn(d.s, r.space.Add(n.ID, 1))
	succ := d.s.members[succID].node

	lo := r.space.Add(newID, 1)
	moved := n.Dir.TakeRange(lo, n.ID, lo > n.ID)
	succ.Dir.AddAll(moved)
	n2 := &Node{ID: newID, Addr: n.Addr, nextFinger: n.nextFinger}
	n2.Dir.AddAll(n.Dir.TakeAll())

	d.remove(n.ID)
	d.insert(n2)
	for _, id := range d.s.sorted {
		r.rebuildNode(d, d.s.members[id].node)
	}
	r.publish(d)
	mBoundaryMoves.Inc()
	return n2, len(moved), nil
}
