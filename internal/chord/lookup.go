package chord

import (
	"fmt"

	"lorm/internal/directory"
	"lorm/internal/hashing"
)

// Route is the outcome of one lookup: the root node responsible for the
// key and the number of logical hops the query traversed to reach it.
type Route struct {
	Root *Node
	Hops int
}

// Lookup routes iteratively from the node `from` to the successor of key,
// following fingers exactly as the protocol prescribes and counting one
// logical hop per node-to-node forward. It takes the ring's read lock, so
// any number of lookups proceed concurrently; membership changes exclude
// them briefly.
func (r *Ring) Lookup(from *Node, key uint64) (Route, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lookupLocked(from, key)
}

func (r *Ring) lookupLocked(from *Node, key uint64) (Route, error) {
	if len(r.sorted) == 0 {
		return Route{}, ErrEmpty
	}
	if from == nil || r.nodes[from.ID] != from {
		return Route{}, fmt.Errorf("chord: lookup from a node that is not a live member")
	}
	cur := from
	hops := 0
	// 4×Bits forwards is far beyond any legitimate path (log2 n + slack);
	// exceeding it means routing state is corrupt.
	maxHops := int(4*r.cfg.Bits) + len(r.sorted)
	for ; hops <= maxHops; hops++ {
		// Does the key belong to cur itself?
		if cur.hasPred {
			if _, alive := r.nodes[cur.pred]; alive && r.space.BetweenIncl(key, cur.pred, cur.ID) {
				return Route{Root: cur, Hops: hops}, nil
			}
		}
		succ := r.successorLocked(cur)
		if succ == cur.ID { // single-node ring
			return Route{Root: cur, Hops: hops}, nil
		}
		// Key between cur and its successor: the successor is the root.
		if r.space.BetweenIncl(key, cur.ID, succ) {
			return Route{Root: r.nodes[succ], Hops: hops + 1}, nil
		}
		next := r.closestPrecedingLocked(cur, key)
		if next == cur.ID {
			// Stale tables offer no progress; step to the successor, which
			// always advances clockwise and therefore terminates.
			next = succ
		}
		cur = r.nodes[next]
	}
	return Route{}, fmt.Errorf("chord: lookup for %d exceeded %d hops", key, maxHops)
}

// Insert stores an info entry under key on the responsible node, routing
// from the given start node. It returns the route taken.
func (r *Ring) Insert(from *Node, key uint64, e directory.Entry) (Route, error) {
	route, err := r.Lookup(from, key)
	if err != nil {
		return Route{}, err
	}
	route.Root.Dir.Add(e)
	return route, nil
}

// NextNode returns the live node that immediately follows n in ring order
// — the "immediate successor" a range query walks to. The second return is
// false when n is the only node.
func (r *Ring) NextNode(n *Node) (*Node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	succ := r.successorLocked(n)
	if succ == n.ID {
		return n, false
	}
	return r.nodes[succ], true
}

// NodeByAddr finds a live node by address; O(n), intended for tests and
// the churn driver's victim selection.
func (r *Ring) NodeByAddr(addr string) (*Node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, n := range r.nodes {
		if n.Addr == addr {
			return n, true
		}
	}
	return nil, false
}

// NodeNear deterministically picks the live node whose ID succeeds
// hash(seed): the experiments use it to choose query start nodes and churn
// victims without keeping an external index.
func (r *Ring) NodeNear(seed string) (*Node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.sorted) == 0 {
		return nil, ErrEmpty
	}
	return r.nodes[r.oracleSuccessor(hashing.Consistent(r.space, seed))], nil
}

// OwnerOf returns the ground-truth root for a key (oracle, no routing).
func (r *Ring) OwnerOf(key uint64) (*Node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.sorted) == 0 {
		return nil, ErrEmpty
	}
	return r.nodes[r.oracleSuccessor(key)], nil
}

// Nodes returns a snapshot of all live nodes in ascending ID order.
func (r *Ring) Nodes() []*Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Node, len(r.sorted))
	for i, id := range r.sorted {
		out[i] = r.nodes[id]
	}
	return out
}

// Addrs returns the addresses of all live nodes in ascending ID order.
func (r *Ring) Addrs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.sorted))
	for i, id := range r.sorted {
		out[i] = r.nodes[id].Addr
	}
	return out
}

// DirectorySizes returns each live node's directory size, ascending ID
// order — the raw sample behind Figures 3(b)–(d).
func (r *Ring) DirectorySizes() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, len(r.sorted))
	for i, id := range r.sorted {
		out[i] = r.nodes[id].Dir.Len()
	}
	return out
}

// OutlinkCount returns the number of distinct live overlay neighbors
// (fingers ∪ successor list ∪ predecessor) a node maintains — the
// per-node structure maintenance overhead of Theorem 4.1 / Figure 3(a).
func (r *Ring) OutlinkCount(n *Node) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	distinct := make(map[uint64]bool, len(n.fingers)+len(n.succs)+1)
	add := func(id uint64) {
		if id == n.ID {
			return
		}
		if _, alive := r.nodes[id]; alive {
			distinct[id] = true
		}
	}
	for _, f := range n.fingers {
		add(f)
	}
	for _, s := range n.succs {
		add(s)
	}
	if n.hasPred {
		add(n.pred)
	}
	return len(distinct)
}

// OutlinkCounts returns OutlinkCount for every live node.
func (r *Ring) OutlinkCounts() []int {
	nodes := r.Nodes()
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = r.OutlinkCount(n)
	}
	return out
}

// Owns reports whether n is responsible for key: the node-local test a
// range walk uses to decide it has reached the end of the queried range.
func (r *Ring) Owns(n *Node, key uint64) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.sorted) == 1 {
		return true
	}
	pred := n.pred
	if !n.hasPred || r.deadLocked(pred) {
		pred = r.oraclePredecessor(n.ID)
	}
	return r.space.BetweenIncl(key, pred, n.ID)
}
