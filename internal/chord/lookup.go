package chord

import (
	"errors"
	"fmt"

	"lorm/internal/directory"
	"lorm/internal/hashing"
	"lorm/internal/routing"
)

// Route is the outcome of one lookup: the root node responsible for the
// key and the number of logical hops the query traversed to reach it.
type Route struct {
	Root *Node
	Hops int
}

// Lookup routes iteratively from the node `from` to the successor of key
// without accounting; overlay tests and internal maintenance use it.
func (r *Ring) Lookup(from *Node, key uint64) (Route, error) {
	return r.LookupOp(nil, from, key)
}

// LookupOp routes iteratively from the node `from` to the successor of key,
// following fingers exactly as the protocol prescribes, and records each
// node-to-node forward into op (nil op: count-free routing). Lookups are
// lock-free: the whole walk runs over one immutable snapshot, so concurrent
// membership changes can neither block it nor corrupt it. A node that
// failed before the lookup began is absent from the loaded snapshot (the
// failure's publish happens-before the snapshot load), so it can never be
// returned as root; if the root crashes mid-lookup, the resolved root is
// re-validated against a fresh view and the walk retried a bounded number
// of times on the newer snapshot.
func (r *Ring) LookupOp(op *routing.Op, from *Node, key uint64) (Route, error) {
	const attempts = 3
	var (
		route Route
		err   error
	)
	for i := 0; i < attempts; i++ {
		route, err = r.lookupOn(r.view(), op, from, key)
		if err != nil {
			return Route{}, err
		}
		if m, ok := r.view().members[route.Root.ID]; ok && m.node == route.Root {
			return route, nil
		}
		// Root crashed between snapshot load and now; route again on a view
		// that excludes it.
	}
	return route, err
}

// forwardReason classifies one routing forward, counting detour hops: a
// forward is a detour when the preferred next hop (best finger or first
// successor) was dead and the lookup routed around it.
func forwardReason(detoured bool) routing.Reason {
	if detoured {
		mLookupDetours.Inc()
		return routing.ReasonDetour
	}
	return routing.ReasonFingerForward
}

// ErrUnreachable marks a lookup that could not cross an injected network
// fault: the next required hop (the successor step, which Chord
// correctness cannot skip) sits on the far side of a partition or
// blackhole. The query fails rather than resolve a wrong root.
var ErrUnreachable = errors.New("chord: next hop unreachable")

func (r *Ring) lookupOn(s *snapshot, op *routing.Op, from *Node, key uint64) (Route, error) {
	if len(s.sorted) == 0 {
		return Route{}, ErrEmpty
	}
	if from == nil {
		return Route{}, fmt.Errorf("chord: lookup from a node that is not a live member")
	}
	cur, ok := s.members[from.ID]
	if !ok || cur.node != from {
		return Route{}, fmt.Errorf("chord: lookup from a node that is not a live member")
	}
	reach := r.reachOf()
	hops := 0
	// 4×Bits forwards is far beyond any legitimate path (log2 n + slack);
	// exceeding it means routing state is corrupt.
	maxHops := int(4*r.cfg.Bits) + len(s.sorted)
	for ; hops <= maxHops; hops++ {
		// Does the key belong to cur itself?
		st := cur.st()
		if st.hasPred {
			if _, alive := s.members[st.pred]; alive && r.space.BetweenIncl(key, st.pred, cur.node.ID) {
				return Route{Root: cur.node, Hops: hops}, nil
			}
		}
		succ, succM, succDetour := r.successorIn(s, cur)
		if succ == cur.node.ID { // single-node ring
			return Route{Root: cur.node, Hops: hops}, nil
		}
		// Key between cur and its successor: the successor is the root.
		// Unlike fingers, the successor step is the one hop correctness
		// cannot route around — if the plane has cut it off, the lookup
		// fails here instead of resolving a wrong root.
		if r.space.BetweenIncl(key, cur.node.ID, succ) {
			if unreachable(reach, cur.node, succM.node) {
				mQueryFailures.Inc()
				return Route{}, fmt.Errorf("%w: %s -> %s for key %d", ErrUnreachable, cur.node.Addr, succM.node.Addr, key)
			}
			op.Forward(succM.node.Addr, succ, forwardReason(succDetour))
			return Route{Root: succM.node, Hops: hops + 1}, nil
		}
		next, detour := succM, succDetour
		if _, m, ok, fDetour := r.closestPrecedingIn(s, reach, cur, key); ok {
			next, detour = m, fDetour
		} else {
			if fDetour {
				// Stale tables offer no progress; step to the successor, which
				// always advances clockwise and therefore terminates. Every
				// in-range finger was dead or cut off, so this successor step
				// is a detour.
				detour = true
			}
			if unreachable(reach, cur.node, succM.node) {
				mQueryFailures.Inc()
				return Route{}, fmt.Errorf("%w: %s -> %s for key %d", ErrUnreachable, cur.node.Addr, succM.node.Addr, key)
			}
		}
		cur = next
		op.Forward(cur.node.Addr, cur.node.ID, forwardReason(detour))
	}
	mQueryFailures.Inc()
	return Route{}, fmt.Errorf("chord: lookup for %d exceeded %d hops", key, maxHops)
}

// Insert stores an info entry under key on the responsible node without
// accounting; see InsertOp.
func (r *Ring) Insert(from *Node, key uint64, e directory.Entry) (Route, error) {
	return r.InsertOp(nil, from, key, e)
}

// InsertOp stores an info entry under key on the responsible node, routing
// from the given start node and recording the forwards into op. It returns
// the route taken.
func (r *Ring) InsertOp(op *routing.Op, from *Node, key uint64, e directory.Entry) (Route, error) {
	route, err := r.LookupOp(op, from, key)
	if err != nil {
		return Route{}, err
	}
	route.Root.Dir.Add(e)
	return route, nil
}

// NextNode returns the live node that immediately follows n in ring order
// — the "immediate successor" a range query walks to. The second return is
// false when n is the only node, or when an installed fault plane has cut
// n off from its successor: the walk truncates at the fault boundary, and
// the incomplete result is the caller's (oracle-visible) failure. Callers
// record the walk step into their own routing.Op (the reason — range walk
// versus replica placement — is theirs to know).
func (r *Ring) NextNode(n *Node) (*Node, bool) {
	s := r.view()
	succ, succM, _ := r.successorIn(s, memberOf(s, n))
	if succ == n.ID {
		return n, false
	}
	if unreachable(r.reachOf(), n, succM.node) {
		return n, false
	}
	return succM.node, true
}

// Alive reports whether n is a current live member: the same node object,
// not merely a node occupying the same identifier. Overlays layered on the
// ring (ART's trie descent) use it to validate stale routing-table entries
// before forwarding to them.
func (r *Ring) Alive(n *Node) bool {
	m, ok := r.view().members[n.ID]
	return ok && m.node == n
}

// Reachable reports whether the installed network-fault plane (if any)
// currently lets from talk to to. With no plane installed every pair is
// reachable.
func (r *Ring) Reachable(from, to *Node) bool {
	return !unreachable(r.reachOf(), from, to)
}

// NodeByAddr finds a live node by address; O(n), intended for tests and
// the churn driver's victim selection.
func (r *Ring) NodeByAddr(addr string) (*Node, bool) {
	for _, m := range r.view().members {
		if m.node.Addr == addr {
			return m.node, true
		}
	}
	return nil, false
}

// NodeNear deterministically picks the live node whose ID succeeds
// hash(seed): the experiments use it to choose query start nodes and churn
// victims without keeping an external index.
func (r *Ring) NodeNear(seed string) (*Node, error) {
	s := r.view()
	if len(s.sorted) == 0 {
		return nil, ErrEmpty
	}
	return s.members[r.oracleSuccessorIn(s, hashing.Consistent(r.space, seed))].node, nil
}

// OwnerOf returns the ground-truth root for a key (oracle, no routing).
func (r *Ring) OwnerOf(key uint64) (*Node, error) {
	s := r.view()
	if len(s.sorted) == 0 {
		return nil, ErrEmpty
	}
	return s.members[r.oracleSuccessorIn(s, key)].node, nil
}

// Nodes returns a snapshot of all live nodes in ascending ID order.
func (r *Ring) Nodes() []*Node {
	s := r.view()
	out := make([]*Node, len(s.sorted))
	for i, id := range s.sorted {
		out[i] = s.members[id].node
	}
	return out
}

// Addrs returns the addresses of all live nodes in ascending ID order.
func (r *Ring) Addrs() []string {
	s := r.view()
	out := make([]string, len(s.sorted))
	for i, id := range s.sorted {
		out[i] = s.members[id].node.Addr
	}
	return out
}

// DirectorySizes returns each live node's directory size, ascending ID
// order — the raw sample behind Figures 3(b)–(d).
func (r *Ring) DirectorySizes() []int {
	s := r.view()
	out := make([]int, len(s.sorted))
	for i, id := range s.sorted {
		out[i] = s.members[id].node.Dir.Len()
	}
	return out
}

// OutlinkCount returns the number of distinct live overlay neighbors
// (fingers ∪ successor list ∪ predecessor) a node maintains — the
// per-node structure maintenance overhead of Theorem 4.1 / Figure 3(a).
func (r *Ring) OutlinkCount(n *Node) int {
	s := r.view()
	st := stateOf(s, n.ID)
	distinct := make(map[uint64]bool, len(st.fingers)+len(st.succs)+1)
	add := func(id uint64) {
		if id == n.ID {
			return
		}
		if aliveIn(s, id) {
			distinct[id] = true
		}
	}
	for _, f := range st.fingers {
		add(f)
	}
	for _, c := range st.succs {
		add(c)
	}
	if st.hasPred {
		add(st.pred)
	}
	return len(distinct)
}

// OutlinkCounts returns OutlinkCount for every live node.
func (r *Ring) OutlinkCounts() []int {
	nodes := r.Nodes()
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = r.OutlinkCount(n)
	}
	return out
}

// Owns reports whether n is responsible for key: the node-local test a
// range walk uses to decide it has reached the end of the queried range.
func (r *Ring) Owns(n *Node, key uint64) bool {
	s := r.view()
	if len(s.sorted) <= 1 {
		return true
	}
	st := stateOf(s, n.ID)
	pred := st.pred
	if !st.hasPred || !aliveIn(s, pred) {
		pred = r.oraclePredecessorIn(s, n.ID)
	}
	return r.space.BetweenIncl(key, pred, n.ID)
}
