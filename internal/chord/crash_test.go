package chord

import (
	"math/rand"
	"testing"

	"lorm/internal/routing"
)

// failSome abruptly fails `k` deterministic victims and returns the set of
// failed addresses.
func failSome(t *testing.T, r *Ring, k int, seed int64) map[string]bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	failed := make(map[string]bool, k)
	for i := 0; i < k; i++ {
		nodes := r.Nodes()
		n := nodes[rng.Intn(len(nodes))]
		if _, err := r.Fail(n); err != nil {
			t.Fatalf("Fail(%s): %v", n.Addr, err)
		}
		failed[n.Addr] = true
	}
	return failed
}

// After abrupt crashes and NO stabilization, every lookup must still resolve
// to a live node — the stale fingers pointing at the dead nodes force
// detours, which must be recorded as ReasonDetour hops so the
// Messages = Hops + Visited invariant keeps holding under failures.
func TestCrashLookupDetoursAroundDeadFingers(t *testing.T) {
	r := buildRing(t, 128)
	failed := failSome(t, r, 16, 42)

	fab := routing.NewFabric("chord-test")
	rec := &routing.Recorder{}
	fab.Observe(rec)

	rng := rand.New(rand.NewSource(7))
	nodes := r.Nodes()
	for i := 0; i < 500; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		from := nodes[rng.Intn(len(nodes))]
		op := fab.Begin(routing.OpDiscover, "crash-test")
		route, err := r.LookupOp(op, from, key)
		op.Finish()
		if err != nil {
			t.Fatalf("lookup %d from %s: %v", key, from.Addr, err)
		}
		if failed[route.Root.Addr] {
			t.Fatalf("lookup %d returned dead node %s", key, route.Root.Addr)
		}
		if want, err := r.OwnerOf(key); err != nil || route.Root != want {
			t.Fatalf("lookup %d: root %s, oracle %s (err %v)", key, route.Root.Addr, want.Addr, err)
		}
	}

	detours := 0
	for _, rc := range rec.Records() {
		for _, st := range rc.Path {
			if st.Reason == routing.ReasonDetour {
				detours++
				if failed[st.Addr] {
					t.Fatalf("detour hop landed on dead node %s", st.Addr)
				}
			}
		}
		if got := routing.CostOfPath(rc.Path); got != rc.Cost {
			t.Fatalf("cost %+v disagrees with path-derived %+v", rc.Cost, got)
		}
	}
	if detours == 0 {
		t.Fatal("no detour hops recorded despite 16 unrepaired crashes")
	}
}

// Stabilization must heal the detours away: after enough maintenance
// rounds, lookups route on refreshed tables with no dead entries left.
func TestCrashStabilizeHealsDetours(t *testing.T) {
	r := buildRing(t, 96)
	failSome(t, r, 12, 9)
	for i := 0; i < 4; i++ {
		r.Stabilize()
		r.FixFingers(0)
	}

	fab := routing.NewFabric("chord-test")
	rec := &routing.Recorder{}
	fab.Observe(rec)
	rng := rand.New(rand.NewSource(5))
	nodes := r.Nodes()
	for i := 0; i < 300; i++ {
		key := rng.Uint64() & (r.Space().Size() - 1)
		op := fab.Begin(routing.OpDiscover, "healed")
		if _, err := r.LookupOp(op, nodes[rng.Intn(len(nodes))], key); err != nil {
			t.Fatalf("lookup after repair: %v", err)
		}
		op.Finish()
	}
	for _, rc := range rec.Records() {
		for _, st := range rc.Path {
			if st.Reason == routing.ReasonDetour {
				t.Fatalf("detour hop via %s after full repair", st.Addr)
			}
		}
	}
}
