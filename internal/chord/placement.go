package chord

import "lorm/internal/replication"

// Placement exposes the ring to the shared replication layer: holders are
// resolved against the current immutable snapshot, and the successor chain
// is the ring's own next-node relation (successor list with an oracle
// fallback), so replica placement matches what a range walk would route to.
func (r *Ring) Placement() replication.Placement { return ringPlacement{r} }

type ringPlacement struct{ r *Ring }

func holderFor(n *Node) replication.Holder {
	return replication.Holder{Addr: n.Addr, Pos: n.ID, Dir: &n.Dir}
}

// Capacity returns the number of ring positions, 2^Bits.
func (p ringPlacement) Capacity() uint64 { return p.r.space.Size() }

// HolderAt returns the live node with exactly the given identifier.
func (p ringPlacement) HolderAt(pos uint64) (replication.Holder, bool) {
	s := p.r.view()
	m, ok := s.members[pos]
	if !ok {
		return replication.Holder{}, false
	}
	return holderFor(m.node), true
}

// HolderOf returns the ground-truth root of the key.
func (p ringPlacement) HolderOf(key uint64) (replication.Holder, bool) {
	s := p.r.view()
	if len(s.sorted) == 0 {
		return replication.Holder{}, false
	}
	return holderFor(s.members[p.r.oracleSuccessorIn(s, key)].node), true
}

// SuccessorOf returns the live node following the given position: the
// node's first live successor-list entry when the position is occupied
// (NextNode semantics), the oracle successor of pos+1 otherwise.
func (p ringPlacement) SuccessorOf(pos uint64) (replication.Holder, bool) {
	s := p.r.view()
	if len(s.sorted) == 0 {
		return replication.Holder{}, false
	}
	cur, ok := s.members[pos]
	if !ok {
		succ := p.r.oracleSuccessorIn(s, p.r.space.Add(pos, 1))
		if succ == pos {
			return replication.Holder{}, false
		}
		return holderFor(s.members[succ].node), true
	}
	succ, succM, _ := p.r.successorIn(s, cur)
	if succ == pos {
		return replication.Holder{}, false
	}
	return holderFor(succM.node), true
}

// HolderRing returns every live node in ascending identifier order.
func (p ringPlacement) HolderRing() []replication.Holder {
	s := p.r.view()
	out := make([]replication.Holder, len(s.sorted))
	for i, id := range s.sorted {
		out[i] = holderFor(s.members[id].node)
	}
	return out
}
