// Package chord implements the Chord distributed hash table (Stoica et al.
// [12]): an m-bit identifier ring with finger tables, successor lists and
// predecessor pointers, iterative O(log n) lookups with hop accounting,
// protocol joins, graceful leaves with key handover, and the
// stabilize/fix-fingers maintenance loop.
//
// Chord is the substrate of the three baseline systems the paper compares
// LORM against: Mercury runs one Chord "hub" per attribute, SWORD and MAAN
// run a single Chord each. The ring also exposes oracle accessors (computed
// from authoritative membership) used by static table construction and by
// tests that verify the routed answer matches ground truth.
//
// Concurrency model: lookups are lock-free. All routing state lives in an
// immutable snapshot published through an atomic pointer; a lookup loads
// the pointer once and routes over one consistent view, so it can never
// observe a half-applied membership change and never contends with other
// lookups. Writers (join, leave, fail, stabilize, fix-fingers) serialize on
// a mutex, build a copy-on-write draft of the snapshot, and publish it with
// a single pointer swap.
package chord

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"lorm/internal/directory"
	"lorm/internal/discovery"
	"lorm/internal/hashing"
	"lorm/internal/ring"
)

// Config parameterizes a ring.
type Config struct {
	// Bits is the identifier-space width; 2^Bits points. The default 20
	// comfortably hosts the paper's 2048 nodes with negligible collision
	// probability while keeping finger tables small.
	Bits uint
	// SuccListLen is the successor-list length (default 4); the paper's
	// "log(n) neighbors" figure counts fingers, and the successor list adds
	// the constant-size tail every deployed Chord carries.
	SuccListLen int
	// Salt namespaces node identifiers, so the same physical addresses get
	// independent positions in each Mercury hub.
	Salt string
	// FingerRng, when non-nil, switches finger construction to ReCord-style
	// randomized successor selection: finger i points at a uniformly random
	// member of the interval [id+2^i, id+2^(i+1)) instead of its first
	// member. Any entry in the interval preserves the halving argument
	// (lookups stay O(log n)), and the spread-out fingers buy routing
	// diversity — fewer queries funnel through the same ranked successors.
	// Draws happen under the ring's writer mutex, so a seeded source
	// replays deterministically.
	FingerRng *rand.Rand
}

func (c Config) withDefaults() Config {
	if c.Bits == 0 {
		c.Bits = 20
	}
	if c.SuccListLen <= 0 {
		c.SuccListLen = 4
	}
	return c
}

// Node is one Chord peer: its stable identity plus its directory. Routing
// state (fingers, successor list, predecessor) lives in the ring's current
// snapshot, not on the node, so Node pointers stay valid across membership
// changes and lookups read consistent state without locking. The directory
// has its own internal lock because inserts run concurrently with lookups.
type Node struct {
	ID   uint64
	Addr string
	Dir  directory.Store

	nextFinger int // round-robin cursor for FixFingers; writer-only, under Ring.mu
}

// nodeState is one node's routing state inside a snapshot. It is immutable
// once the snapshot publishes; writers that need to change it clone it into
// their draft first.
type nodeState struct {
	fingers []uint64 // fingers[i] ≈ successor(ID + 2^i)
	succs   []uint64 // successor list, nearest first
	pred    uint64
	hasPred bool
}

var emptyState = &nodeState{}

// member pairs a node with its routing state so the lookup hot path fetches
// both with a single map access — alive-check, node and state in one probe.
type member struct {
	node  *Node
	state *nodeState
}

// st returns the member's routing state, tolerating entries whose state has
// not been built yet (a draft mid-join).
func (m member) st() *nodeState {
	if m.state == nil {
		return emptyState
	}
	return m.state
}

// snapshot is one immutable view of the ring: membership, node objects and
// per-node routing state. Lookups load it once and never see it change.
type snapshot struct {
	members map[uint64]member
	sorted  []uint64 // authoritative membership, ascending IDs
}

// stateOf returns a node's routing state in the snapshot, or an empty state
// for nodes the snapshot no longer contains (e.g. a range walk holding a
// *Node that failed mid-walk).
func stateOf(s *snapshot, id uint64) *nodeState {
	return s.members[id].st()
}

func aliveIn(s *snapshot, id uint64) bool {
	_, ok := s.members[id]
	return ok
}

// Ring is one Chord overlay instance.
type Ring struct {
	cfg   Config
	space ring.Space

	mu   sync.Mutex // serializes writers; lookups never take it
	snap atomic.Pointer[snapshot]

	// reach is the installed network-fault plane (nil box or nil plane:
	// fault-free). Lookups load it once per walk, like the snapshot.
	reach atomic.Pointer[reachBox]
}

// reachBox wraps the Reachability interface value for atomic publication.
type reachBox struct{ r discovery.Reachability }

// SetReachability installs (or, with nil, removes) the network-fault plane
// every subsequent lookup and range walk consults. Maintenance
// (Stabilize/FixFingers) deliberately ignores the plane: it models each
// side's local repair converging after the fault clears, and keeping it on
// ground truth means a healed partition needs no extra repair protocol.
func (r *Ring) SetReachability(p discovery.Reachability) {
	r.reach.Store(&reachBox{r: p})
}

// reachOf returns the installed fault plane, nil when routing is fault-free.
func (r *Ring) reachOf() discovery.Reachability {
	if b := r.reach.Load(); b != nil {
		return b.r
	}
	return nil
}

// unreachable reports that the from-node cannot currently reach the
// to-node's address under the installed plane.
func unreachable(reach discovery.Reachability, from, to *Node) bool {
	return reach != nil && !reach.Reachable(from.Addr, to.Addr)
}

// ErrEmpty is returned by operations that need at least one live node.
var ErrEmpty = errors.New("chord: ring has no nodes")

// New creates an empty ring.
func New(cfg Config) *Ring {
	cfg = cfg.withDefaults()
	r := &Ring{
		cfg:   cfg,
		space: ring.NewSpace(cfg.Bits),
	}
	r.snap.Store(&snapshot{members: make(map[uint64]member)})
	return r
}

// view returns the current immutable snapshot.
func (r *Ring) view() *snapshot { return r.snap.Load() }

// Space returns the identifier space of the ring.
func (r *Ring) Space() ring.Space { return r.space }

// Size returns the current number of nodes.
func (r *Ring) Size() int { return len(r.view().sorted) }

// idFor derives a collision-free identifier for an address. Collisions are
// resolved deterministically by re-hashing with an increasing salt index.
func (r *Ring) idFor(members map[uint64]member, addr string) uint64 {
	key := r.cfg.Salt + "|" + addr
	id := hashing.Consistent(r.space, key)
	for i := 1; ; i++ {
		if _, taken := members[id]; !taken {
			return id
		}
		id = hashing.ConsistentN(r.space, key, i)
	}
}

// draft is a writer's private copy-on-write working view. The member map
// is fresh (so inserts and deletes never touch the published snapshot) but
// nodeState values start shared with the parent snapshot and are cloned
// lazily on first mutation.
type draft struct {
	s       *snapshot
	mutated map[uint64]bool // state entries already private to this draft
}

// beginDraft snapshots the current view into a mutable draft (Ring.mu held).
func (r *Ring) beginDraft() *draft {
	cur := r.view()
	s := &snapshot{
		members: make(map[uint64]member, len(cur.members)+1),
		sorted:  append(make([]uint64, 0, len(cur.sorted)+1), cur.sorted...),
	}
	for id, m := range cur.members {
		s.members[id] = m
	}
	return &draft{s: s, mutated: make(map[uint64]bool)}
}

// mutState returns a state entry private to the draft, cloning the shared
// one on first touch.
func (d *draft) mutState(id uint64) *nodeState {
	m := d.s.members[id]
	if d.mutated[id] {
		return m.state
	}
	st := &nodeState{}
	if old := m.state; old != nil {
		st.fingers = append([]uint64(nil), old.fingers...)
		st.succs = append([]uint64(nil), old.succs...)
		st.pred = old.pred
		st.hasPred = old.hasPred
	}
	m.state = st
	d.s.members[id] = m
	d.mutated[id] = true
	return st
}

// setState replaces a member's routing state wholesale.
func (d *draft) setState(id uint64, st *nodeState) {
	m := d.s.members[id]
	m.state = st
	d.s.members[id] = m
	d.mutated[id] = true
}

// insert adds a node to the draft's membership.
func (d *draft) insert(n *Node) {
	i := sort.Search(len(d.s.sorted), func(i int) bool { return d.s.sorted[i] >= n.ID })
	d.s.sorted = append(d.s.sorted, 0)
	copy(d.s.sorted[i+1:], d.s.sorted[i:])
	d.s.sorted[i] = n.ID
	d.s.members[n.ID] = member{node: n}
}

// remove drops a node from the draft's membership and routing state.
func (d *draft) remove(id uint64) {
	i := sort.Search(len(d.s.sorted), func(i int) bool { return d.s.sorted[i] >= id })
	if i < len(d.s.sorted) && d.s.sorted[i] == id {
		d.s.sorted = append(d.s.sorted[:i], d.s.sorted[i+1:]...)
	}
	delete(d.s.members, id)
	delete(d.mutated, id)
}

// publish swaps the draft in as the ring's current snapshot (Ring.mu held).
func (r *Ring) publish(d *draft) {
	r.snap.Store(d.s)
	mSnapshotPublishes.Inc()
}

// oracleSuccessorIn returns the first member at or after key in ring order.
// This is ground truth from membership, not routed state.
func (r *Ring) oracleSuccessorIn(s *snapshot, key uint64) uint64 {
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= key })
	if i == len(s.sorted) {
		i = 0
	}
	return s.sorted[i]
}

// oraclePredecessorIn returns the last member strictly before key.
func (r *Ring) oraclePredecessorIn(s *snapshot, key uint64) uint64 {
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= key })
	if i == 0 {
		return s.sorted[len(s.sorted)-1]
	}
	return s.sorted[i-1]
}

// AddBulk hashes and inserts the given addresses and then rebuilds every
// node's routing state from authoritative membership. It is the fast path
// for constructing the large static overlays the experiments measure;
// protocol joins produce the same state one node at a time.
func (r *Ring) AddBulk(addrs []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.beginDraft()
	for _, addr := range addrs {
		if addr == "" {
			return fmt.Errorf("chord: empty address")
		}
		id := r.idFor(d.s.members, addr)
		d.insert(&Node{ID: id, Addr: addr})
	}
	for _, id := range d.s.sorted {
		r.rebuildNode(d, d.s.members[id].node)
	}
	r.publish(d)
	return nil
}

// rebuildNode recomputes one node's routing state from the draft's
// membership, replacing its state entry wholesale.
func (r *Ring) rebuildNode(d *draft, n *Node) {
	if len(d.s.sorted) == 0 {
		return
	}
	st := &nodeState{
		pred:    r.oraclePredecessorIn(d.s, n.ID),
		hasPred: true,
		fingers: make([]uint64, r.cfg.Bits),
	}
	next := n.ID
	for i := 0; i < r.cfg.SuccListLen; i++ {
		next = r.oracleSuccessorIn(d.s, r.space.Add(next, 1))
		st.succs = append(st.succs, next)
		if next == n.ID { // fewer nodes than list slots
			break
		}
	}
	for i := uint(0); i < r.cfg.Bits; i++ {
		st.fingers[i] = r.fingerEntry(d.s, n.ID, i)
	}
	d.setState(n.ID, st)
}

// fingerEntry computes finger i of node id from the draft's membership:
// the deterministic successor of id+2^i, or — under Config.FingerRng — a
// uniformly random member of the finger interval [id+2^i, id+2^(i+1)),
// ReCord's randomized successor selection. An empty interval falls back to
// the deterministic successor, exactly Chord's rule.
func (r *Ring) fingerEntry(s *snapshot, id uint64, i uint) uint64 {
	lo := r.space.Add(id, uint64(1)<<i)
	if r.cfg.FingerRng == nil || len(s.sorted) == 0 {
		return r.oracleSuccessorIn(s, lo)
	}
	hi := r.space.Add(id, uint64(1)<<(i+1)) // exclusive upper bound; wraps to id at i = Bits-1
	a := sort.Search(len(s.sorted), func(j int) bool { return s.sorted[j] >= lo })
	b := sort.Search(len(s.sorted), func(j int) bool { return s.sorted[j] >= hi })
	count := b - a
	if lo > hi { // interval wraps through zero
		count = len(s.sorted) - a + b
	}
	if count <= 0 {
		return r.oracleSuccessorIn(s, lo)
	}
	return s.sorted[(a+r.cfg.FingerRng.Intn(count))%len(s.sorted)]
}

// successorIn returns a node's first live successor in the given view,
// falling back to ground truth when the whole list is stale (extreme churn
// between stabilization rounds — a real deployment would rejoin). The
// second return is the successor's member entry; detoured reports that one
// or more dead successor-list entries were skipped (or the oracle fallback
// fired) to find it — the hop the caller takes is a failure detour, not the
// node's preferred neighbor.
func (r *Ring) successorIn(s *snapshot, cur member) (succ uint64, m member, detoured bool) {
	id := cur.node.ID
	for i, c := range cur.st().succs {
		if m, ok := s.members[c]; ok {
			return c, m, i > 0
		}
	}
	if len(s.sorted) == 0 {
		return id, cur, false
	}
	succ = r.oracleSuccessorIn(s, r.space.Add(id, 1))
	return succ, s.members[succ], len(cur.st().succs) > 0
}

// memberOf resolves a *Node held by a caller to its member entry in the
// given view. Nodes the view no longer contains resolve to a state-less
// member, which routes via oracle fallbacks.
func memberOf(s *snapshot, n *Node) member {
	if m, ok := s.members[n.ID]; ok && m.node == n {
		return m
	}
	return member{node: n}
}

// closestPrecedingIn returns the live, reachable routing-table entry of cur
// that most closely precedes key in the given view; ok is false when none
// does. detoured reports that a better-placed but dead (or cut-off) finger
// or successor was skipped on the way to the returned entry: the hop the
// caller takes routes around a failure rather than down the preferred
// finger.
func (r *Ring) closestPrecedingIn(s *snapshot, reach discovery.Reachability, cur member, key uint64) (id uint64, m member, ok, detoured bool) {
	st := cur.st()
	self := cur.node.ID
	for i := len(st.fingers) - 1; i >= 0; i-- {
		f := st.fingers[i]
		if !r.space.Between(f, self, key) {
			continue
		}
		if m, live := s.members[f]; live && !unreachable(reach, cur.node, m.node) {
			return f, m, true, detoured
		}
		detoured = true
	}
	for i := len(st.succs) - 1; i >= 0; i-- {
		c := st.succs[i]
		if !r.space.Between(c, self, key) {
			continue
		}
		if m, live := s.members[c]; live && !unreachable(reach, cur.node, m.node) {
			return c, m, true, detoured
		}
		detoured = true
	}
	return 0, member{}, false, detoured
}
