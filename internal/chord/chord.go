// Package chord implements the Chord distributed hash table (Stoica et al.
// [12]): an m-bit identifier ring with finger tables, successor lists and
// predecessor pointers, iterative O(log n) lookups with hop accounting,
// protocol joins, graceful leaves with key handover, and the
// stabilize/fix-fingers maintenance loop.
//
// Chord is the substrate of the three baseline systems the paper compares
// LORM against: Mercury runs one Chord "hub" per attribute, SWORD and MAAN
// run a single Chord each. The ring also exposes oracle accessors (computed
// from authoritative membership) used by static table construction and by
// tests that verify the routed answer matches ground truth.
package chord

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lorm/internal/directory"
	"lorm/internal/hashing"
	"lorm/internal/ring"
)

// Config parameterizes a ring.
type Config struct {
	// Bits is the identifier-space width; 2^Bits points. The default 20
	// comfortably hosts the paper's 2048 nodes with negligible collision
	// probability while keeping finger tables small.
	Bits uint
	// SuccListLen is the successor-list length (default 4); the paper's
	// "log(n) neighbors" figure counts fingers, and the successor list adds
	// the constant-size tail every deployed Chord carries.
	SuccListLen int
	// Salt namespaces node identifiers, so the same physical addresses get
	// independent positions in each Mercury hub.
	Salt string
}

func (c Config) withDefaults() Config {
	if c.Bits == 0 {
		c.Bits = 20
	}
	if c.SuccListLen <= 0 {
		c.SuccListLen = 4
	}
	return c
}

// Node is one Chord peer. All routing-state fields are guarded by the
// owning Ring's lock: mutations happen under the write lock, lookups under
// the read lock. The directory has its own internal lock because inserts
// run concurrently with lookups.
type Node struct {
	ID   uint64
	Addr string
	Dir  directory.Store

	fingers    []uint64 // fingers[i] ≈ successor(ID + 2^i)
	succs      []uint64 // successor list, nearest first
	pred       uint64
	hasPred    bool
	nextFinger int // round-robin cursor for incremental FixFingers
}

// Ring is one Chord overlay instance.
type Ring struct {
	cfg   Config
	space ring.Space

	mu     sync.RWMutex
	nodes  map[uint64]*Node
	sorted []uint64 // authoritative membership, ascending IDs
}

// ErrEmpty is returned by operations that need at least one live node.
var ErrEmpty = errors.New("chord: ring has no nodes")

// New creates an empty ring.
func New(cfg Config) *Ring {
	cfg = cfg.withDefaults()
	return &Ring{
		cfg:   cfg,
		space: ring.NewSpace(cfg.Bits),
		nodes: make(map[uint64]*Node),
	}
}

// Space returns the identifier space of the ring.
func (r *Ring) Space() ring.Space { return r.space }

// Size returns the current number of nodes.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sorted)
}

// idFor derives a collision-free identifier for an address. Collisions are
// resolved deterministically by re-hashing with an increasing salt index.
func (r *Ring) idFor(addr string) uint64 {
	key := r.cfg.Salt + "|" + addr
	id := hashing.Consistent(r.space, key)
	for i := 1; ; i++ {
		if _, taken := r.nodes[id]; !taken {
			return id
		}
		id = hashing.ConsistentN(r.space, key, i)
	}
}

// insertMember adds a node to the authoritative membership (lock held).
func (r *Ring) insertMember(n *Node) {
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] >= n.ID })
	r.sorted = append(r.sorted, 0)
	copy(r.sorted[i+1:], r.sorted[i:])
	r.sorted[i] = n.ID
	r.nodes[n.ID] = n
}

// removeMember drops a node from the authoritative membership (lock held).
func (r *Ring) removeMember(id uint64) {
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] >= id })
	if i < len(r.sorted) && r.sorted[i] == id {
		r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
	}
	delete(r.nodes, id)
}

// oracleSuccessor returns the first member at or after key in ring order
// (lock held). This is ground truth, not routed state.
func (r *Ring) oracleSuccessor(key uint64) uint64 {
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] >= key })
	if i == len(r.sorted) {
		i = 0
	}
	return r.sorted[i]
}

// oraclePredecessor returns the last member strictly before key (lock held).
func (r *Ring) oraclePredecessor(key uint64) uint64 {
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] >= key })
	if i == 0 {
		return r.sorted[len(r.sorted)-1]
	}
	return r.sorted[i-1]
}

// AddBulk hashes and inserts the given addresses and then rebuilds every
// node's routing state from authoritative membership. It is the fast path
// for constructing the large static overlays the experiments measure;
// protocol joins produce the same state one node at a time.
func (r *Ring) AddBulk(addrs []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, addr := range addrs {
		if addr == "" {
			return fmt.Errorf("chord: empty address")
		}
		id := r.idFor(addr)
		r.insertMember(&Node{ID: id, Addr: addr})
	}
	r.rebuildAllLocked()
	return nil
}

// rebuildAllLocked recomputes pred/succ/fingers for every node from the
// authoritative membership (lock held).
func (r *Ring) rebuildAllLocked() {
	for _, id := range r.sorted {
		r.rebuildNodeLocked(r.nodes[id])
	}
}

// rebuildNodeLocked recomputes one node's routing state (lock held).
func (r *Ring) rebuildNodeLocked(n *Node) {
	if len(r.sorted) == 0 {
		return
	}
	n.pred = r.oraclePredecessor(n.ID)
	n.hasPred = true
	n.succs = n.succs[:0]
	next := n.ID
	for i := 0; i < r.cfg.SuccListLen; i++ {
		next = r.oracleSuccessor(r.space.Add(next, 1))
		n.succs = append(n.succs, next)
		if next == n.ID { // fewer nodes than list slots
			break
		}
	}
	if n.fingers == nil {
		n.fingers = make([]uint64, r.cfg.Bits)
	}
	for i := uint(0); i < r.cfg.Bits; i++ {
		n.fingers[i] = r.oracleSuccessor(r.space.Add(n.ID, uint64(1)<<i))
	}
}

// successorLocked returns a node's first live successor, repairing the list
// head in place if the nominal successor has departed (lock held; callers
// doing repairs hold the write lock, read-only paths tolerate staleness).
func (r *Ring) successorLocked(n *Node) uint64 {
	for _, s := range n.succs {
		if _, alive := r.nodes[s]; alive {
			return s
		}
	}
	// Successor list entirely stale (can only happen under extreme churn
	// between stabilization rounds): fall back to ground truth, as a real
	// deployment would fall back to rejoining.
	if len(r.sorted) == 0 {
		return n.ID
	}
	return r.oracleSuccessor(r.space.Add(n.ID, 1))
}

// closestPrecedingLocked returns the live routing-table entry of n that
// most closely precedes key, or n.ID when none does (lock held).
func (r *Ring) closestPrecedingLocked(n *Node, key uint64) uint64 {
	for i := len(n.fingers) - 1; i >= 0; i-- {
		f := n.fingers[i]
		if _, alive := r.nodes[f]; !alive {
			continue
		}
		if r.space.Between(f, n.ID, key) {
			return f
		}
	}
	for i := len(n.succs) - 1; i >= 0; i-- {
		s := n.succs[i]
		if _, alive := r.nodes[s]; !alive {
			continue
		}
		if r.space.Between(s, n.ID, key) {
			return s
		}
	}
	return n.ID
}
