package chord

import "lorm/internal/metrics"

// Process-wide maintenance counters, aggregated across every ring in the
// process (a Mercury deployment runs one ring per attribute hub). Handles
// are resolved once at init; the increments on the maintenance paths are
// single atomic adds.
var (
	mStabilizeRounds = metrics.Default().Counter("chord_stabilize_rounds_total",
		"chord stabilization rounds executed")
	mFingerFixes = metrics.Default().Counter("chord_finger_fixes_total",
		"chord finger-table entries refreshed by FixFingers")
	mSnapshotPublishes = metrics.Default().Counter("chord_snapshot_publishes_total",
		"copy-on-write routing snapshots published by chord writers")
	mFailuresDetected = metrics.Default().Counter("chord_failures_detected_total",
		"abrupt chord node failures injected/detected")
	mLookupDetours = metrics.Default().Counter("chord_lookup_detours_total",
		"chord lookup hops that detoured around a dead preferred finger")
	mQueryFailures = metrics.Default().Counter("chord_query_failures_total",
		"chord lookups that failed to resolve a root")
	mBoundaryMoves = metrics.Default().Counter("chord_boundary_moves_total",
		"chord ownership-boundary moves (Advance/Retreat) during rebalancing")
)
