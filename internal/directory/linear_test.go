package directory

import (
	"sort"
	"sync"

	"lorm/internal/resource"
)

// linearStore is the seed implementation of the directory — an unordered
// slice scanned linearly under one RWMutex. It is kept as the comparison
// oracle: the property and fuzz tests replay every operation sequence
// against it and require identical multisets, and the benchmarks measure
// the ordered index against its scans.
type linearStore struct {
	mu      sync.RWMutex
	entries []Entry
}

func (s *linearStore) Add(e Entry) {
	s.mu.Lock()
	s.entries = append(s.entries, e)
	s.mu.Unlock()
}

func (s *linearStore) AddAll(es []Entry) {
	if len(es) == 0 {
		return
	}
	s.mu.Lock()
	s.entries = append(s.entries, es...)
	s.mu.Unlock()
}

func (s *linearStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

func (s *linearStore) Match(attr string, lo, hi float64) []resource.Info {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []resource.Info
	for _, e := range s.entries {
		if e.Info.Attr == attr && e.Info.Value >= lo && e.Info.Value <= hi {
			out = append(out, e.Info)
		}
	}
	return out
}

func (s *linearStore) CountAttr(attr string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.entries {
		if e.Info.Attr == attr {
			n++
		}
	}
	return n
}

func (s *linearStore) TakeIf(shouldMove func(Entry) bool) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var moved []Entry
	kept := s.entries[:0]
	for _, e := range s.entries {
		if shouldMove(e) {
			moved = append(moved, e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = Entry{}
	}
	s.entries = kept
	return moved
}

// TakeRange mirrors Store.TakeRange via the predicate scan the overlays
// used before the key-ordered view existed.
func (s *linearStore) TakeRange(keyLo, keyHi uint64, wrapped bool) []Entry {
	return s.TakeIf(func(e Entry) bool {
		if wrapped {
			return e.Key >= keyLo || e.Key <= keyHi
		}
		return e.Key >= keyLo && e.Key <= keyHi
	})
}

// Remove mirrors Store.Remove: delete one entry equal to e.
func (s *linearStore) Remove(e Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.entries {
		if s.entries[i] == e {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			return true
		}
	}
	return false
}

func (s *linearStore) TakeAll() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.entries
	s.entries = nil
	return all
}

func (s *linearStore) Snapshot() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Entry(nil), s.entries...)
}

// canonical sorts a copy of entries into one total order so two multisets
// compare equal iff they hold the same entries.
func canonical(es []Entry) []Entry {
	out := append([]Entry(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Info.Attr != b.Info.Attr {
			return a.Info.Attr < b.Info.Attr
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Info.Value != b.Info.Value {
			return a.Info.Value < b.Info.Value
		}
		return a.Info.Owner < b.Info.Owner
	})
	return out
}

// canonicalInfos sorts a copy of match results into one total order.
func canonicalInfos(is []resource.Info) []resource.Info {
	out := append([]resource.Info(nil), is...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Owner < b.Owner
	})
	return out
}
