package directory

import (
	"fmt"
	"sync"
	"testing"

	"lorm/internal/resource"
)

func entry(key uint64, attr string, v float64, owner string) Entry {
	return Entry{Key: key, Info: resource.Info{Attr: attr, Value: v, Owner: owner}}
}

func TestAddLenMatch(t *testing.T) {
	var s Store
	s.Add(entry(1, "cpu", 1800, "a"))
	s.Add(entry(2, "cpu", 2400, "b"))
	s.Add(entry(3, "mem", 2048, "c"))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := s.Match("cpu", 1000, 2000)
	if len(got) != 1 || got[0].Owner != "a" {
		t.Fatalf("Match = %v", got)
	}
	if got := s.Match("cpu", 1800, 2400); len(got) != 2 {
		t.Fatalf("inclusive bounds: got %v", got)
	}
	if got := s.Match("disk", 0, 1e9); got != nil {
		t.Fatalf("Match on absent attr = %v, want nil", got)
	}
}

func TestCountAttr(t *testing.T) {
	var s Store
	s.AddAll([]Entry{
		entry(1, "cpu", 1, "a"),
		entry(2, "cpu", 2, "b"),
		entry(3, "mem", 3, "c"),
	})
	if s.CountAttr("cpu") != 2 || s.CountAttr("mem") != 1 || s.CountAttr("x") != 0 {
		t.Fatalf("CountAttr wrong: cpu=%d mem=%d x=%d",
			s.CountAttr("cpu"), s.CountAttr("mem"), s.CountAttr("x"))
	}
}

func TestAddAllEmpty(t *testing.T) {
	var s Store
	s.AddAll(nil)
	if s.Len() != 0 {
		t.Fatal("AddAll(nil) changed the store")
	}
}

func TestTakeIf(t *testing.T) {
	var s Store
	for i := uint64(0); i < 10; i++ {
		s.Add(entry(i, "cpu", float64(i), fmt.Sprintf("o%d", i)))
	}
	moved := s.TakeIf(func(e Entry) bool { return e.Key < 4 })
	if len(moved) != 4 {
		t.Fatalf("moved %d entries, want 4", len(moved))
	}
	if s.Len() != 6 {
		t.Fatalf("kept %d entries, want 6", s.Len())
	}
	for _, e := range s.Snapshot() {
		if e.Key < 4 {
			t.Fatalf("entry %v should have moved", e)
		}
	}
}

func TestTakeAll(t *testing.T) {
	var s Store
	s.Add(entry(1, "cpu", 1, "a"))
	s.Add(entry(2, "cpu", 2, "b"))
	all := s.TakeAll()
	if len(all) != 2 || s.Len() != 0 {
		t.Fatalf("TakeAll = %d entries, store has %d", len(all), s.Len())
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	var s Store
	s.Add(entry(1, "cpu", 1, "a"))
	snap := s.Snapshot()
	snap[0].Info.Owner = "mutated"
	if s.Snapshot()[0].Info.Owner != "a" {
		t.Fatal("Snapshot aliases internal storage")
	}
}

func TestConcurrentAccess(t *testing.T) {
	var s Store
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(entry(uint64(w*1000+i), "cpu", float64(i), "o"))
				s.Match("cpu", 0, 100)
				s.Len()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d, want 1600", s.Len())
	}
}
