package directory

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The property tests drive the ordered index and the seed linear store
// through identical operation sequences and require that every observable
// — match results, extraction results, counts, final contents — agrees as
// a multiset. Only ordering may differ (the index returns sorted results;
// the linear store returns insertion order).

var propAttrs = []string{"cpu", "mem", "disk", "net"}

func randEntry(rng *rand.Rand) Entry {
	return entry(
		uint64(rng.Intn(1<<16)),
		propAttrs[rng.Intn(len(propAttrs))],
		float64(rng.Intn(1000)),
		fmt.Sprintf("o%d", rng.Intn(50)),
	)
}

// applyOp applies one random operation to both stores and fails the test
// on any observable divergence.
func applyOp(t *testing.T, rng *rand.Rand, s *Store, ref *linearStore) {
	t.Helper()
	switch rng.Intn(8) {
	case 0, 1: // Add (weighted: the common op)
		e := randEntry(rng)
		s.Add(e)
		ref.Add(e)
	case 2: // AddAll
		batch := make([]Entry, rng.Intn(200))
		for i := range batch {
			batch[i] = randEntry(rng)
		}
		s.AddAll(batch)
		ref.AddAll(batch)
	case 3: // Match + MatchAppend
		attr := propAttrs[rng.Intn(len(propAttrs))]
		lo := float64(rng.Intn(1000))
		hi := lo + float64(rng.Intn(300))
		got := canonicalInfos(s.Match(attr, lo, hi))
		want := canonicalInfos(ref.Match(attr, lo, hi))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Match(%s,%v,%v) diverged:\n got %v\nwant %v", attr, lo, hi, got, want)
		}
		appended := s.MatchAppend(nil, attr, lo, hi)
		if !reflect.DeepEqual(canonicalInfos(appended), want) {
			t.Fatalf("MatchAppend(%s,%v,%v) diverged from oracle", attr, lo, hi)
		}
	case 4: // TakeRange, sometimes wrapped
		lo := uint64(rng.Intn(1 << 16))
		hi := uint64(rng.Intn(1 << 16))
		wrapped := lo > hi
		if rng.Intn(4) == 0 { // force a wrapped interval with lo < hi too
			lo, hi = hi, lo
			wrapped = lo > hi
		}
		got := canonical(s.TakeRange(lo, hi, wrapped))
		want := canonical(ref.TakeRange(lo, hi, wrapped))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TakeRange(%d,%d,%v) diverged: got %d entries, want %d",
				lo, hi, wrapped, len(got), len(want))
		}
	case 5: // TakeIf on a value/attr predicate
		attr := propAttrs[rng.Intn(len(propAttrs))]
		cut := float64(rng.Intn(1000))
		pred := func(e Entry) bool { return e.Info.Attr == attr && e.Info.Value < cut }
		got := canonical(s.TakeIf(pred))
		want := canonical(ref.TakeIf(pred))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TakeIf diverged: got %d entries, want %d", len(got), len(want))
		}
	case 6: // Remove a (sometimes present) entry
		var e Entry
		if snap := ref.Snapshot(); len(snap) > 0 && rng.Intn(4) != 0 {
			e = snap[rng.Intn(len(snap))]
		} else {
			e = randEntry(rng)
		}
		if got, want := s.Remove(e), ref.Remove(e); got != want {
			t.Fatalf("Remove(%v) = %v, oracle %v", e, got, want)
		}
	case 7: // TakeAll, occasionally
		if rng.Intn(8) != 0 {
			return
		}
		got := canonical(s.TakeAll())
		want := canonical(ref.TakeAll())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TakeAll diverged: got %d entries, want %d", len(got), len(want))
		}
	}
}

// checkInvariants compares the two stores' full observable state.
func checkInvariants(t *testing.T, s *Store, ref *linearStore) {
	t.Helper()
	if s.Len() != ref.Len() {
		t.Fatalf("Len = %d, oracle %d", s.Len(), ref.Len())
	}
	for _, attr := range propAttrs {
		if s.CountAttr(attr) != ref.CountAttr(attr) {
			t.Fatalf("CountAttr(%s) = %d, oracle %d", attr, s.CountAttr(attr), ref.CountAttr(attr))
		}
	}
	got := canonical(s.Snapshot())
	want := canonical(ref.Snapshot())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Snapshot diverged: got %d entries, oracle %d", len(got), len(want))
	}
}

func TestPropertyVsLinearStore(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var s Store
			var ref linearStore
			for i := 0; i < 400; i++ {
				applyOp(t, rng, &s, &ref)
			}
			checkInvariants(t, &s, &ref)
		})
	}
}

// TestPropertyManyMerges uses long runs of Adds so the staging buffer
// merges into main many times, then checks range extraction still agrees.
func TestPropertyManyMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s Store
	var ref linearStore
	for i := 0; i < 5000; i++ {
		e := randEntry(rng)
		s.Add(e)
		ref.Add(e)
	}
	checkInvariants(t, &s, &ref)
	for i := 0; i < 50; i++ {
		lo, hi := uint64(rng.Intn(1<<16)), uint64(rng.Intn(1<<16))
		wrapped := lo > hi
		got := canonical(s.TakeRange(lo, hi, wrapped))
		want := canonical(ref.TakeRange(lo, hi, wrapped))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TakeRange(%d,%d,%v) diverged", lo, hi, wrapped)
		}
	}
	checkInvariants(t, &s, &ref)
}

// FuzzStoreOps decodes an arbitrary byte stream into an operation sequence
// and replays it against both stores. The fuzzer explores adversarial
// interleavings (wrapped ranges over empty partitions, removes of absent
// entries, TakeAll mid-stream) that the seeded property tests may miss.
func FuzzStoreOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{2, 255, 4, 0, 0, 4, 255, 255, 7, 7, 7})
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Store
		var ref linearStore
		// Derive a deterministic RNG from the data so operand choice is
		// reproducible, while the op codes come straight from the bytes.
		var h uint64 = 1469598103934665603
		for _, b := range data {
			h = (h ^ uint64(b)) * 1099511628211
		}
		rng := rand.New(rand.NewSource(int64(h)))
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 7
			arg := binary.LittleEndian.Uint16(data[i+1 : i+3])
			switch op {
			case 0:
				e := entry(uint64(arg), propAttrs[int(arg)%len(propAttrs)],
					float64(arg%997), fmt.Sprintf("o%d", arg%31))
				s.Add(e)
				ref.Add(e)
			case 1:
				n := int(arg % 64)
				batch := make([]Entry, n)
				for j := range batch {
					batch[j] = randEntry(rng)
				}
				s.AddAll(batch)
				ref.AddAll(batch)
			case 2:
				attr := propAttrs[int(arg)%len(propAttrs)]
				lo := float64(arg % 997)
				hi := lo + float64(arg%251)
				got := canonicalInfos(s.Match(attr, lo, hi))
				want := canonicalInfos(ref.Match(attr, lo, hi))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Match diverged at op %d", i)
				}
			case 3:
				lo := uint64(arg)
				hi := uint64(binary.LittleEndian.Uint16(append([]byte{data[i+2]}, data[i+1])))
				wrapped := lo > hi
				got := canonical(s.TakeRange(lo, hi, wrapped))
				want := canonical(ref.TakeRange(lo, hi, wrapped))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("TakeRange(%d,%d,%v) diverged at op %d", lo, hi, wrapped, i)
				}
			case 4:
				cut := float64(arg % 997)
				pred := func(e Entry) bool { return e.Info.Value < cut }
				got := canonical(s.TakeIf(pred))
				want := canonical(ref.TakeIf(pred))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("TakeIf diverged at op %d", i)
				}
			case 5:
				var e Entry
				if snap := ref.Snapshot(); len(snap) > 0 {
					e = snap[int(arg)%len(snap)]
				} else {
					e = randEntry(rng)
				}
				if got, want := s.Remove(e), ref.Remove(e); got != want {
					t.Fatalf("Remove diverged at op %d", i)
				}
			case 6:
				if arg%13 != 0 {
					continue
				}
				got := canonical(s.TakeAll())
				want := canonical(ref.TakeAll())
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("TakeAll diverged at op %d", i)
				}
			}
		}
		if s.Len() != ref.Len() {
			t.Fatalf("final Len = %d, oracle %d", s.Len(), ref.Len())
		}
		got := canonical(s.Snapshot())
		want := canonical(ref.Snapshot())
		if !reflect.DeepEqual(got, want) {
			t.Fatal("final Snapshot diverged")
		}
	})
}
