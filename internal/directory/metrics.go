package directory

import "lorm/internal/metrics"

// Process-wide directory counters, resolved once at init. Registration is
// idempotent, so other packages (the transport digest) may resolve the same
// families.
var (
	mAdds = metrics.Default().Counter(
		"directory_adds_total",
		"Entries stored into node directories (Add and AddAll).")
	mMatches = metrics.Default().Counter(
		"directory_matches_total",
		"Range-match operations served by node directories (Match and MatchAppend).")
	mMatchEntries = metrics.Default().Counter(
		"directory_match_entries_total",
		"Entries returned by directory range matches.")
	mStageMerges = metrics.Default().Counter(
		"directory_stage_merges_total",
		"Staging-run merges into main runs (amortized insertion maintenance).")
	mTakeRanges = metrics.Default().Counter(
		"directory_take_ranges_total",
		"Key-interval extraction operations (TakeRange) during churn handover.")
	mHandedOver = metrics.Default().Counter(
		"directory_entries_handed_over_total",
		"Entries removed from a directory by handover paths (TakeRange, TakeIf, TakeAll).")
)
