package directory

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"lorm/internal/resource"
)

// benchEntries builds n deterministic entries spread over a handful of
// attributes with uniform values in [0, 1e6).
func benchEntries(n int) []Entry {
	rng := rand.New(rand.NewSource(20090922))
	attrs := []string{"cpu", "mem", "disk", "net"}
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{
			Key: rng.Uint64() >> 1,
			Info: resource.Info{
				Attr:  attrs[i%len(attrs)],
				Value: rng.Float64() * 1e6,
				Owner: fmt.Sprintf("node%d", i%1024),
			},
		}
	}
	return es
}

// newBenchStore bulk-loads n entries (single sort+merge per attribute).
func newBenchStore(n int) *Store {
	var s Store
	s.AddAll(benchEntries(n))
	return &s
}

func newBenchLinear(n int) *linearStore {
	var s linearStore
	s.AddAll(benchEntries(n))
	return &s
}

// matchWindows precomputes query windows selecting roughly 1% of the value
// space so the measured cost is the search, not the copy-out.
func matchWindows(rng *rand.Rand, n int) [][2]float64 {
	ws := make([][2]float64, n)
	for i := range ws {
		lo := rng.Float64() * 0.99e6
		ws[i] = [2]float64{lo, lo + 1e4}
	}
	return ws
}

// BenchmarkDirMatch measures range matches against the ordered index at
// three directory sizes; BenchmarkDirMatchLinear is the seed linear scan
// at the acceptance-comparison size (10k).
func BenchmarkDirMatch(b *testing.B) {
	for _, n := range []int{100, 10_000, 1_000_000} {
		name := map[int]string{100: "100", 10_000: "10k", 1_000_000: "1M"}[n]
		b.Run(name, func(b *testing.B) {
			s := newBenchStore(n)
			ws := matchWindows(rand.New(rand.NewSource(7)), 1024)
			var dst []resource.Info
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ws[i&1023]
				dst = s.MatchAppend(dst[:0], "cpu", w[0], w[1])
			}
			sinkInfos = dst
		})
	}
}

// BenchmarkDirMatchInterp is BenchmarkDirMatch with the interpolation-search
// fast path enabled; the bench values are uniform, the distribution the
// O(log log n) probe bound holds for, so the delta against BenchmarkDirMatch
// in BENCH_directory.json is the honest headline number.
func BenchmarkDirMatchInterp(b *testing.B) {
	for _, n := range []int{100, 10_000, 1_000_000} {
		name := map[int]string{100: "100", 10_000: "10k", 1_000_000: "1M"}[n]
		b.Run(name, func(b *testing.B) {
			s := newBenchStore(n)
			s.Configure(WithInterpolation())
			ws := matchWindows(rand.New(rand.NewSource(7)), 1024)
			var dst []resource.Info
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ws[i&1023]
				dst = s.MatchAppend(dst[:0], "cpu", w[0], w[1])
			}
			sinkInfos = dst
		})
	}
}

func BenchmarkDirMatchLinear(b *testing.B) {
	for _, n := range []int{10_000} {
		b.Run("10k", func(b *testing.B) {
			s := newBenchLinear(n)
			ws := matchWindows(rand.New(rand.NewSource(7)), 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ws[i&1023]
				sinkInfos = s.Match("cpu", w[0], w[1])
			}
		})
	}
}

var (
	sinkInfos   []resource.Info
	sinkEntries []Entry
)

func BenchmarkDirAdd(b *testing.B) {
	es := benchEntries(1 << 16)
	var s Store
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(es[i&(1<<16-1)])
	}
}

// BenchmarkDirTakeRange measures churn handover: extract a random ~1% key
// interval from a 10k-entry directory and put it back (the put-back keeps
// the store populated across iterations and mirrors the real join path,
// where the extracted batch is AddAll'd into the joining node).
func BenchmarkDirTakeRange(b *testing.B) {
	s := newBenchStore(10_000)
	rng := rand.New(rand.NewSource(9))
	const width = uint64(1) << 56 // ~1.5% of the 63-bit key space
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Uint64() >> 1
		hi := lo + width
		moved := s.TakeRange(lo, hi, hi < lo)
		s.AddAll(moved)
		sinkEntries = moved
	}
}

// BenchmarkDirMixedParallel exercises the sharded locking: every worker
// mixes reads (90%) and writes (10%) across all four attributes.
func BenchmarkDirMixedParallel(b *testing.B) {
	s := newBenchStore(10_000)
	es := benchEntries(1 << 14)
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		attrs := []string{"cpu", "mem", "disk", "net"}
		rng := rand.New(rand.NewSource(int64(ctr.Add(1))))
		ws := matchWindows(rng, 128)
		var dst []resource.Info
		i := 0
		for pb.Next() {
			if i%10 == 9 {
				s.Add(es[rng.Intn(len(es))])
			} else {
				w := ws[i&127]
				dst = s.MatchAppend(dst[:0], attrs[i&3], w[0], w[1])
			}
			i++
		}
		sinkInfos = dst
	})
}

// TestMatchAppendZeroAlloc pins the acceptance criterion: the reused-buffer
// match path performs zero allocations per operation.
func TestMatchAppendZeroAlloc(t *testing.T) {
	s := newBenchStore(10_000)
	ws := matchWindows(rand.New(rand.NewSource(7)), 64)
	var dst []resource.Info
	// Warm the buffer to the largest window so no growth remains.
	for _, w := range ws {
		dst = s.MatchAppend(dst[:0], "cpu", w[0], w[1])
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, w := range ws {
			dst = s.MatchAppend(dst[:0], "cpu", w[0], w[1])
		}
	})
	if avg != 0 {
		t.Fatalf("MatchAppend allocates %.2f times per run, want 0", avg)
	}
}
