package directory

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// sortedVals builds a value-sorted run from the given values.
func sortedVals(vals []float64) []Entry {
	es := make([]Entry, len(vals))
	for i, v := range vals {
		es[i] = entry(uint64(i), "a", v, "o")
	}
	return es
}

// The guarded interpolation bounds must return the exact index the binary
// bounds return on every distribution, including the ones interpolation is
// bad at (constant runs, heavy clustering, infinities at the edges).
func TestInterpBoundsMatchBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	distros := map[string]func(n int) []float64{
		"uniform": func(n int) []float64 {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = rng.Float64() * 1e6
			}
			return vals
		},
		"clustered": func(n int) []float64 {
			vals := make([]float64, n)
			for i := range vals {
				// Almost everything at 0, a thin tail to 1e9.
				if rng.Intn(100) == 0 {
					vals[i] = rng.Float64() * 1e9
				}
			}
			return vals
		},
		"constant": func(n int) []float64 {
			return make([]float64, n)
		},
		"exponential": func(n int) []float64 {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = math.Exp(rng.Float64() * 20)
			}
			return vals
		},
		"duplicates": func(n int) []float64 {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(rng.Intn(10))
			}
			return vals
		},
	}
	for name, gen := range distros {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 31, 32, 1000, 20000} {
				vals := gen(n)
				s := sortedVals(vals)
				sortEntriesByValue(s)
				for q := 0; q < 500; q++ {
					var probe float64
					switch q % 3 {
					case 0:
						probe = rng.Float64() * 1e6
					case 1:
						if n > 0 {
							probe = s[rng.Intn(n)].Info.Value
						}
					case 2:
						probe = math.Exp(rng.Float64() * 20)
					}
					if got, want := lowerValInterp(s, probe), lowerVal(s, probe); got != want {
						t.Fatalf("n=%d lowerValInterp(%v) = %d, want %d", n, probe, got, want)
					}
					if got, want := upperValInterp(s, probe), upperVal(s, probe); got != want {
						t.Fatalf("n=%d upperValInterp(%v) = %d, want %d", n, probe, got, want)
					}
				}
			}
		})
	}
}

func sortEntriesByValue(s []Entry) {
	sort.Slice(s, func(i, j int) bool { return valueLess(s[i], s[j]) })
}

// An interpolation-enabled store must be observationally identical to the
// default store under the full random operation mix.
func TestInterpolationStoreEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rngA := rand.New(rand.NewSource(seed))
			rngB := rand.New(rand.NewSource(seed))
			var plain Store
			var interp Store
			interp.Configure(WithInterpolation())
			for i := 0; i < 300; i++ {
				// Drive both stores with identical operand streams.
				switch rngA.Intn(3) {
				case 0:
					e := randEntry(rngA)
					randEntry(rngB)
					plain.Add(e)
					interp.Add(e)
				case 1:
					batch := make([]Entry, rngA.Intn(150))
					rngB.Intn(150)
					for j := range batch {
						batch[j] = randEntry(rngA)
						randEntry(rngB)
					}
					plain.AddAll(batch)
					interp.AddAll(batch)
				case 2:
					attr := propAttrs[rngA.Intn(len(propAttrs))]
					lo := float64(rngA.Intn(1000))
					hi := lo + float64(rngA.Intn(300))
					rngB.Intn(len(propAttrs))
					rngB.Intn(1000)
					rngB.Intn(300)
					got := interp.Match(attr, lo, hi)
					want := plain.Match(attr, lo, hi)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("interp Match(%s,%v,%v) diverged: %d vs %d results",
							attr, lo, hi, len(got), len(want))
					}
				}
			}
			got := canonical(interp.Snapshot())
			want := canonical(plain.Snapshot())
			if !reflect.DeepEqual(got, want) {
				t.Fatal("final snapshots diverged")
			}
		})
	}
}

func TestKeyCounts(t *testing.T) {
	var s Store
	if kc := s.KeyCounts(); len(kc) != 0 {
		t.Fatalf("empty store KeyCounts = %v", kc)
	}
	// Keys deliberately span attributes: 7 holds cpu and mem entries.
	s.Add(entry(7, "cpu", 1, "a"))
	s.Add(entry(7, "mem", 2, "b"))
	s.Add(entry(3, "cpu", 3, "c"))
	s.Add(entry(9, "net", 4, "d"))
	s.Add(entry(7, "cpu", 5, "e"))
	got := s.KeyCounts()
	want := []KeyCount{{Key: 3, Count: 1}, {Key: 7, Count: 3}, {Key: 9, Count: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KeyCounts = %v, want %v", got, want)
	}
	total := 0
	for _, kc := range got {
		total += kc.Count
	}
	if total != s.Len() {
		t.Fatalf("KeyCounts total %d != Len %d", total, s.Len())
	}
	// The SWORD shape: every entry under one key is one indivisible group.
	var pool Store
	for i := 0; i < 50; i++ {
		pool.Add(entry(42, "cpu", float64(i), "o"))
	}
	if kc := pool.KeyCounts(); len(kc) != 1 || kc[0] != (KeyCount{Key: 42, Count: 50}) {
		t.Fatalf("single-key pool KeyCounts = %v", kc)
	}
}
