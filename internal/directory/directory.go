// Package directory implements a node's resource-information directory: the
// set of ⟨attribute, value, owner⟩ pieces a DHT node is responsible for,
// each remembered together with the overlay key it was stored under so that
// churn (node joins and departures) can hand the right entries over to a
// neighbor.
//
// # Layout
//
// The directory is an attribute-partitioned, ordered index. Every attribute
// owns a partition holding the same entries in two sort orders:
//
//   - a value-ordered view answering range queries: Match(attr, lo, hi) is
//     two binary searches plus one contiguous merge-copy, O(log n + k);
//   - a key-ordered view answering churn handover: TakeRange(keyLo, keyHi)
//     locates the departing key interval by binary search instead of
//     scanning the whole directory with a closure, O(log n + k) to find
//     (plus the slice compaction of the partitions it actually touches).
//
// Each view is a pair of sorted runs — a long merged `main` run and a small
// `stage` run bounded by an adaptive threshold. Add binary-inserts into the
// stage (cheap: the stage is small) and merges stage into main when the
// threshold is reached, so insertion is amortized O(log n) with a small
// constant and reads stay two binary searches per run. AddAll sorts its
// batch once and merges it in a single pass — the bulk path key transfer
// and replication repair ride on.
//
// Len and CountAttr are O(1) (an atomic total plus per-partition lengths).
//
// # Concurrency
//
// Locking is sharded per attribute: a store-level RWMutex guards only the
// partition table (read-locked for a map probe on every access), and each
// partition carries its own RWMutex. Concurrent queries on different
// attributes — the SWORD/MAAN pooled-directory hot path — touch different
// locks entirely. Operations spanning partitions (TakeRange, TakeIf,
// TakeAll, Snapshot) lock one partition at a time, so a concurrent reader
// may observe a cross-partition operation half-applied; single-partition
// operations are atomic. The zero value is ready to use.
//
// # Determinism
//
// All orders are total (value ties broken by owner then key; key ties by
// value then owner), so every query and snapshot is a pure function of the
// stored multiset — results do not depend on insertion order or on how the
// entries are currently split between runs. That keeps the experiment
// figures value-identical under the parallel registration workload.
package directory

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"lorm/internal/resource"
)

// Entry is one stored resource-information piece plus its placement key.
// Key is the overlay's linearized identifier (a Chord ring position, or a
// Cycloid position folded onto the cluster-major order); overlays use it to
// decide which entries migrate when the node set changes.
type Entry struct {
	Key  uint64
	Info resource.Info
}

// valueLess is the total order of the value view: Value, then Owner, then
// Key. Entries equal under it are identical in every field that matters to
// a query, so run boundaries never leak into results.
func valueLess(a, b Entry) bool {
	if a.Info.Value != b.Info.Value {
		return a.Info.Value < b.Info.Value
	}
	if a.Info.Owner != b.Info.Owner {
		return a.Info.Owner < b.Info.Owner
	}
	return a.Key < b.Key
}

// keyLess is the total order of the key view: Key, then Value, then Owner.
func keyLess(a, b Entry) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	if a.Info.Value != b.Info.Value {
		return a.Info.Value < b.Info.Value
	}
	return a.Info.Owner < b.Info.Owner
}

type lessFn func(a, b Entry) bool

// stageMax is the staging-run threshold for a main run of the given length:
// large enough that merges amortize to a small constant per insert, capped
// so a single stage insert never moves more than a few tens of KiB.
func stageMax(mainLen int) int {
	t := mainLen / 8
	if t < 64 {
		t = 64
	}
	if t > 1024 {
		t = 1024
	}
	return t
}

// runs is one sort order over a partition's entries: a long sorted main run
// plus a small sorted staging run.
type runs struct {
	main  []Entry
	stage []Entry
}

func (r *runs) len() int { return len(r.main) + len(r.stage) }

// insert binary-inserts e into the staging run, merging into main when the
// stage reaches its threshold.
func (r *runs) insert(e Entry, less lessFn) {
	s := r.stage
	// Upper bound: first index with e < s[i]; duplicates append after their
	// equals, which for a total order is indistinguishable.
	i, j := 0, len(s)
	for i < j {
		h := int(uint(i+j) >> 1)
		if less(e, s[h]) {
			j = h
		} else {
			i = h + 1
		}
	}
	s = append(s, Entry{})
	copy(s[i+1:], s[i:])
	s[i] = e
	r.stage = s
	if len(r.stage) >= stageMax(len(r.main)) {
		r.main = mergeRuns(r.main, r.stage, less)
		r.stage = nil
		mStageMerges.Inc()
	}
}

// bulk merges an already-sorted batch in. Small batches fold into the
// staging run; anything bigger merges straight into main.
func (r *runs) bulk(sorted []Entry, less lessFn) {
	if len(sorted) == 0 {
		return
	}
	if len(sorted)+len(r.stage) < stageMax(len(r.main)) {
		r.stage = mergeRuns(r.stage, sorted, less)
		return
	}
	r.main = mergeRuns(r.main, mergeRuns(r.stage, sorted, less), less)
	r.stage = nil
	mStageMerges.Inc()
}

// mergeRuns merges two sorted slices into a freshly allocated sorted slice.
func mergeRuns(a, b []Entry, less lessFn) []Entry {
	if len(a) == 0 {
		return append([]Entry(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Entry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// appendMerged appends both runs to dst in sorted order.
func (r *runs) appendMerged(dst []Entry, less lessFn) []Entry {
	a, b := r.main, r.stage
	for len(a) > 0 && len(b) > 0 {
		if less(b[0], a[0]) {
			dst = append(dst, b[0])
			b = b[1:]
		} else {
			dst = append(dst, a[0])
			a = a[1:]
		}
	}
	dst = append(dst, a...)
	return append(dst, b...)
}

// Hand-rolled bounds for the read hot path (no closure, no interface).

// lowerVal returns the first index with Value >= lo.
func lowerVal(s []Entry, lo float64) int {
	i, j := 0, len(s)
	for i < j {
		h := int(uint(i+j) >> 1)
		if s[h].Info.Value < lo {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// upperVal returns the first index with Value > hi.
func upperVal(s []Entry, hi float64) int {
	i, j := 0, len(s)
	for i < j {
		h := int(uint(i+j) >> 1)
		if s[h].Info.Value <= hi {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// Interpolation variants of the value bounds, used when the store was
// configured WithInterpolation. Each probe position is predicted from the
// value distribution of the remaining window instead of halving it; on
// near-uniform data (the Figure 3 uniform value model) that converges in
// O(log log n) probes. The probes are guarded — a bounded probe budget with
// a binary-search tail — so adversarial distributions degrade gracefully to
// O(log n) and the result index is always identical to lowerVal/upperVal.

// interpProbeBudget bounds the interpolation phase; log log n for any
// realistic n is < 6, so 8 guarded probes capture the win while capping the
// pathological case (heavily clustered values) at a constant.
const interpProbeBudget = 8

// interpMinWindow is the window size below which interpolation stops paying
// for its divisions and the binary tail finishes the search.
const interpMinWindow = 32

// lowerValInterp returns the first index with Value >= lo, equal to
// lowerVal(s, lo) for every input.
func lowerValInterp(s []Entry, lo float64) int {
	i, j := 0, len(s)
	for probe := 0; j-i > interpMinWindow && probe < interpProbeBudget; probe++ {
		a, b := s[i].Info.Value, s[j-1].Info.Value
		if a >= lo {
			return i // invariant: everything before i is < lo
		}
		if b < lo {
			return j // the whole window is < lo
		}
		if !(b > a) {
			break // flat or NaN window: interpolation is undefined
		}
		h := i + int((lo-a)/(b-a)*float64(j-1-i))
		if h <= i {
			h = i + 1
		} else if h >= j {
			h = j - 1
		}
		if s[h].Info.Value < lo {
			i = h + 1
		} else {
			j = h
		}
	}
	for i < j {
		h := int(uint(i+j) >> 1)
		if s[h].Info.Value < lo {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// upperValInterp returns the first index with Value > hi, equal to
// upperVal(s, hi) for every input.
func upperValInterp(s []Entry, hi float64) int {
	i, j := 0, len(s)
	for probe := 0; j-i > interpMinWindow && probe < interpProbeBudget; probe++ {
		a, b := s[i].Info.Value, s[j-1].Info.Value
		if a > hi {
			return i
		}
		if b <= hi {
			return j
		}
		if !(b > a) {
			break
		}
		h := i + int((hi-a)/(b-a)*float64(j-1-i))
		if h <= i {
			h = i + 1
		} else if h >= j {
			h = j - 1
		}
		if s[h].Info.Value <= hi {
			i = h + 1
		} else {
			j = h
		}
	}
	for i < j {
		h := int(uint(i+j) >> 1)
		if s[h].Info.Value <= hi {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// lowerKey returns the first index with Key >= k.
func lowerKey(s []Entry, k uint64) int {
	i, j := 0, len(s)
	for i < j {
		h := int(uint(i+j) >> 1)
		if s[h].Key < k {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// upperKey returns the first index with Key > k.
func upperKey(s []Entry, k uint64) int {
	i, j := 0, len(s)
	for i < j {
		h := int(uint(i+j) >> 1)
		if s[h].Key <= k {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// partition holds one attribute's entries in both sort orders under one
// lock shard.
type partition struct {
	mu   sync.RWMutex
	vals runs // value order: Match / MatchAppend
	keys runs // key order: TakeRange / Remove
}

// ident identifies one logical entry for multiset bookkeeping inside
// removal paths (the attribute is fixed per partition).
type ident struct {
	key   uint64
	value float64
	owner string
}

func identOf(e Entry) ident {
	return ident{key: e.Key, value: e.Info.Value, owner: e.Info.Owner}
}

// Store is a concurrency-safe directory. The zero value is ready to use.
type Store struct {
	mu     sync.RWMutex
	parts  map[string]*partition
	names  []string // sorted attribute names, for deterministic iteration
	count  atomic.Int64
	interp atomic.Bool // use interpolation search on the value views
}

// Option configures a Store in place.
type Option func(*Store)

// WithInterpolation switches the value-view bounds in Match/MatchAppend to
// guarded interpolation search (O(log log n) probes on near-uniform value
// distributions, binary-search tail otherwise). Results are bit-identical
// to the default binary search; only the probe sequence changes.
func WithInterpolation() Option {
	return func(s *Store) { s.interp.Store(true) }
}

// Configure applies options to the store. Safe to call at any time — the
// zero value starts with every option off, and options flip atomics, so
// concurrent readers observe either the old or the new configuration.
func (s *Store) Configure(opts ...Option) {
	for _, o := range opts {
		o(s)
	}
}

// part returns the attribute's partition, or nil.
func (s *Store) part(attr string) *partition {
	s.mu.RLock()
	p := s.parts[attr]
	s.mu.RUnlock()
	return p
}

// partCreate returns the attribute's partition, creating it on first use.
func (s *Store) partCreate(attr string) *partition {
	if p := s.part(attr); p != nil {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.parts == nil {
		s.parts = make(map[string]*partition)
	}
	if p := s.parts[attr]; p != nil {
		return p
	}
	p := &partition{}
	s.parts[attr] = p
	i := sort.SearchStrings(s.names, attr)
	s.names = append(s.names, "")
	copy(s.names[i+1:], s.names[i:])
	s.names[i] = attr
	return p
}

// partitions returns every partition in sorted attribute order.
func (s *Store) partitions() []*partition {
	s.mu.RLock()
	out := make([]*partition, len(s.names))
	for i, name := range s.names {
		out[i] = s.parts[name]
	}
	s.mu.RUnlock()
	return out
}

// Add stores one entry.
func (s *Store) Add(e Entry) {
	p := s.partCreate(e.Info.Attr)
	p.mu.Lock()
	p.vals.insert(e, valueLess)
	p.keys.insert(e, keyLess)
	p.mu.Unlock()
	s.count.Add(1)
	mAdds.Inc()
}

// AddAll stores a batch of entries (used by key transfer). The batch is
// grouped by attribute and each group merges into its partition in one
// pass, so bulk handover does not pay per-entry insertion.
func (s *Store) AddAll(es []Entry) {
	if len(es) == 0 {
		return
	}
	groups := make(map[string][]Entry)
	for _, e := range es {
		groups[e.Info.Attr] = append(groups[e.Info.Attr], e)
	}
	for attr, batch := range groups {
		p := s.partCreate(attr)
		sort.Slice(batch, func(i, j int) bool { return valueLess(batch[i], batch[j]) })
		p.mu.Lock()
		p.vals.bulk(batch, valueLess)
		byKey := append([]Entry(nil), batch...)
		sort.Slice(byKey, func(i, j int) bool { return keyLess(byKey[i], byKey[j]) })
		p.keys.bulk(byKey, keyLess)
		p.mu.Unlock()
	}
	s.count.Add(int64(len(es)))
	mAdds.Add(uint64(len(es)))
}

// Len returns the directory size in information pieces — the quantity the
// paper's Figures 3(b)–(d) aggregate per node. O(1).
func (s *Store) Len() int { return int(s.count.Load()) }

// CountAttr returns how many pieces the directory holds for one attribute.
// O(1).
func (s *Store) CountAttr(attr string) int {
	p := s.part(attr)
	if p == nil {
		return 0
	}
	p.mu.RLock()
	n := p.vals.len()
	p.mu.RUnlock()
	return n
}

// Match returns the stored pieces for the given attribute whose values fall
// in [lo, hi], in ascending value order.
func (s *Store) Match(attr string, lo, hi float64) []resource.Info {
	return s.MatchAppend(nil, attr, lo, hi)
}

// MatchAppend appends the pieces matching [lo, hi] to dst and returns the
// extended slice. It allocates only when dst lacks capacity (and then
// exactly once), so range walks that reuse a buffer run allocation-free:
// two binary searches per run plus one merge-copy of the k matches.
func (s *Store) MatchAppend(dst []resource.Info, attr string, lo, hi float64) []resource.Info {
	mMatches.Inc()
	p := s.part(attr)
	if p == nil {
		return dst
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	m, st := p.vals.main, p.vals.stage
	var i1, j1, i2, j2 int
	if s.interp.Load() {
		i1, j1 = lowerValInterp(m, lo), upperValInterp(m, hi)
		i2, j2 = lowerValInterp(st, lo), upperValInterp(st, hi)
	} else {
		i1, j1 = lowerVal(m, lo), upperVal(m, hi)
		i2, j2 = lowerVal(st, lo), upperVal(st, hi)
	}
	k := (j1 - i1) + (j2 - i2)
	if k == 0 {
		return dst
	}
	if cap(dst)-len(dst) < k {
		grown := make([]resource.Info, len(dst), len(dst)+k)
		copy(grown, dst)
		dst = grown
	}
	a, b := m[i1:j1], st[i2:j2]
	for len(a) > 0 && len(b) > 0 {
		if valueLess(b[0], a[0]) {
			dst = append(dst, b[0].Info)
			b = b[1:]
		} else {
			dst = append(dst, a[0].Info)
			a = a[1:]
		}
	}
	for i := range a {
		dst = append(dst, a[i].Info)
	}
	for i := range b {
		dst = append(dst, b[i].Info)
	}
	mMatchEntries.Add(uint64(k))
	return dst
}

// MatchEntriesAppend is MatchAppend at Entry granularity: it appends the
// stored entries (key included) matching [lo, hi] to dst in ascending value
// order. Replica-aware readers use it so replication-layer deduplication can
// distinguish two resources that agree on (attr, value, owner) but were
// stored under different keys.
func (s *Store) MatchEntriesAppend(dst []Entry, attr string, lo, hi float64) []Entry {
	mMatches.Inc()
	p := s.part(attr)
	if p == nil {
		return dst
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	m, st := p.vals.main, p.vals.stage
	var i1, j1, i2, j2 int
	if s.interp.Load() {
		i1, j1 = lowerValInterp(m, lo), upperValInterp(m, hi)
		i2, j2 = lowerValInterp(st, lo), upperValInterp(st, hi)
	} else {
		i1, j1 = lowerVal(m, lo), upperVal(m, hi)
		i2, j2 = lowerVal(st, lo), upperVal(st, hi)
	}
	k := (j1 - i1) + (j2 - i2)
	if k == 0 {
		return dst
	}
	if cap(dst)-len(dst) < k {
		grown := make([]Entry, len(dst), len(dst)+k)
		copy(grown, dst)
		dst = grown
	}
	a, b := m[i1:j1], st[i2:j2]
	for len(a) > 0 && len(b) > 0 {
		if valueLess(b[0], a[0]) {
			dst = append(dst, b[0])
			b = b[1:]
		} else {
			dst = append(dst, a[0])
			a = a[1:]
		}
	}
	dst = append(dst, a...)
	dst = append(dst, b...)
	mMatchEntries.Add(uint64(k))
	return dst
}

// AtKey returns every entry stored under the given overlay key, across all
// attributes, in attribute order and key order within an attribute — a pure
// function of the stored multiset, like every other read. Hot-key promotion
// uses it to copy one key-group wholesale.
func (s *Store) AtKey(key uint64) []Entry {
	var out []Entry
	for _, p := range s.partitions() {
		p.mu.RLock()
		start := len(out)
		for _, run := range [][]Entry{p.keys.main, p.keys.stage} {
			i, j := lowerKey(run, key), upperKey(run, key)
			out = append(out, run[i:j]...)
		}
		part := out[start:]
		sort.Slice(part, func(i, j int) bool { return keyLess(part[i], part[j]) })
		p.mu.RUnlock()
	}
	return out
}

// Contains reports whether the directory holds at least one entry equal to
// e (key, attribute, value and owner all matching). Promotion paths use it
// to avoid double-placing a copy a base-replication pass already stored.
func (s *Store) Contains(e Entry) bool {
	p := s.part(e.Info.Attr)
	if p == nil {
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, run := range [][]Entry{p.keys.main, p.keys.stage} {
		i := lowerKey(run, e.Key)
		for ; i < len(run) && run[i].Key == e.Key; i++ {
			if run[i] == e {
				return true
			}
		}
	}
	return false
}

// TakeRange removes and returns every entry whose key lies in the interval
// [keyLo, keyHi] — or, when wrapped, in [keyLo, max] ∪ [min, keyHi] (an
// interval crossing the ring's zero point). It is the churn-handover
// primitive: a joining node calls it on its successor with the key interval
// it now owns, located by binary search on the key-ordered view instead of
// a predicate scan of the whole directory.
func (s *Store) TakeRange(keyLo, keyHi uint64, wrapped bool) []Entry {
	var moved []Entry
	for _, p := range s.partitions() {
		moved = p.takeRange(moved, keyLo, keyHi, wrapped)
	}
	mTakeRanges.Inc()
	if n := len(moved); n > 0 {
		s.count.Add(-int64(n))
		mHandedOver.Add(uint64(n))
	}
	return moved
}

// takeRange extracts this partition's share of the key interval, appending
// the moved entries to dst.
func (p *partition) takeRange(dst []Entry, lo, hi uint64, wrapped bool) []Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.keys.len() == 0 {
		return dst
	}
	// Cheap reject: partition entirely outside the interval. The key view's
	// global bounds are the first of main/stage and the last of main/stage.
	if min, max, ok := p.keyBounds(); ok && !intervalOverlaps(lo, hi, wrapped, min, max) {
		return dst
	}
	start := len(dst)
	dst, p.keys.main = cutKeyRange(dst, p.keys.main, lo, hi, wrapped)
	dst, p.keys.stage = cutKeyRange(dst, p.keys.stage, lo, hi, wrapped)
	removed := dst[start:]
	if len(removed) == 0 {
		return dst
	}
	// Sort the moved entries into key order across the two runs so the
	// return order is a pure function of the stored multiset.
	sort.Slice(removed, func(i, j int) bool { return keyLess(removed[i], removed[j]) })
	// Remove the identical multiset from the value view, compacting only
	// the value window the moved entries span.
	need := make(map[ident]int, len(removed))
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, e := range removed {
		need[identOf(e)]++
		if e.Info.Value < minV {
			minV = e.Info.Value
		}
		if e.Info.Value > maxV {
			maxV = e.Info.Value
		}
	}
	p.vals.main = filterValueWindow(p.vals.main, minV, maxV, need)
	p.vals.stage = filterValueWindow(p.vals.stage, minV, maxV, need)
	return dst
}

// keyBounds returns the smallest and largest key in the partition.
func (p *partition) keyBounds() (min, max uint64, ok bool) {
	m, st := p.keys.main, p.keys.stage
	switch {
	case len(m) == 0 && len(st) == 0:
		return 0, 0, false
	case len(m) == 0:
		return st[0].Key, st[len(st)-1].Key, true
	case len(st) == 0:
		return m[0].Key, m[len(m)-1].Key, true
	}
	min, max = m[0].Key, m[len(m)-1].Key
	if st[0].Key < min {
		min = st[0].Key
	}
	if st[len(st)-1].Key > max {
		max = st[len(st)-1].Key
	}
	return min, max, true
}

// intervalOverlaps reports whether the (possibly wrapped) key interval
// intersects [min, max].
func intervalOverlaps(lo, hi uint64, wrapped bool, min, max uint64) bool {
	if wrapped {
		return max >= lo || min <= hi
	}
	return max >= lo && min <= hi
}

// cutKeyRange removes the key interval from one sorted-by-key run,
// appending the removed entries to dst and returning the compacted run.
func cutKeyRange(dst []Entry, s []Entry, lo, hi uint64, wrapped bool) ([]Entry, []Entry) {
	if !wrapped {
		i, j := lowerKey(s, lo), upperKey(s, hi)
		if i == j {
			return dst, s
		}
		dst = append(dst, s[i:j]...)
		w := i + copy(s[i:], s[j:])
		zeroTail(s, w)
		return dst, s[:w]
	}
	// Wrapped: prefix [0, j) has keys <= hi, suffix [i, len) has keys >= lo.
	j := upperKey(s, hi)
	i := lowerKey(s, lo)
	if i < j {
		// Degenerate wrapped interval covering everything.
		i = j
	}
	if j == 0 && i == len(s) {
		return dst, s
	}
	dst = append(dst, s[:j]...)
	dst = append(dst, s[i:]...)
	w := copy(s, s[j:i])
	zeroTail(s, w)
	return dst, s[:w]
}

// filterValueWindow removes entries matching the need multiset from one
// sorted-by-value run, touching only the [lo, hi] value window.
func filterValueWindow(s []Entry, lo, hi float64, need map[ident]int) []Entry {
	from, to := lowerVal(s, lo), upperVal(s, hi)
	w := from
	for i := from; i < to; i++ {
		id := identOf(s[i])
		if c := need[id]; c > 0 {
			need[id] = c - 1
			continue
		}
		s[w] = s[i]
		w++
	}
	w += copy(s[w:], s[to:])
	zeroTail(s, w)
	return s[:w]
}

// zeroTail clears s[w:] so removed entries do not linger in backing arrays.
func zeroTail(s []Entry, w int) {
	for i := w; i < len(s); i++ {
		s[i] = Entry{}
	}
}

// TakeIf removes and returns every entry for which shouldMove reports true.
// It is the general predicate fallback (TakeRange covers the key-interval
// case in O(log n + k)); the predicate must be pure — it is evaluated once
// per entry per view. Entries are scanned partition by partition in
// attribute order.
func (s *Store) TakeIf(shouldMove func(Entry) bool) []Entry {
	var moved []Entry
	for _, p := range s.partitions() {
		p.mu.Lock()
		start := len(moved)
		moved = filterPred(&p.vals.main, shouldMove, moved, true)
		moved = filterPred(&p.vals.stage, shouldMove, moved, true)
		if len(moved) > start {
			// Mirror the removal in the key view.
			filterPred(&p.keys.main, shouldMove, nil, false)
			filterPred(&p.keys.stage, shouldMove, nil, false)
		}
		p.mu.Unlock()
	}
	if n := len(moved); n > 0 {
		s.count.Add(-int64(n))
		mHandedOver.Add(uint64(n))
	}
	return moved
}

// filterPred compacts *sp, dropping entries matching pred; dropped entries
// are appended to collect when keep is set.
func filterPred(sp *[]Entry, pred func(Entry) bool, collect []Entry, keep bool) []Entry {
	s := *sp
	w := 0
	for i := range s {
		if pred(s[i]) {
			if keep {
				collect = append(collect, s[i])
			}
			continue
		}
		s[w] = s[i]
		w++
	}
	zeroTail(s, w)
	*sp = s[:w]
	return collect
}

// Remove deletes one entry equal to e (key, attribute, value and owner all
// matching) and reports whether one was found — the targeted primitive
// replica repair uses to drop a surplus copy without scanning.
func (s *Store) Remove(e Entry) bool {
	p := s.part(e.Info.Attr)
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !cutExact(&p.keys.main, e, keyLess) && !cutExact(&p.keys.stage, e, keyLess) {
		return false
	}
	if !cutExact(&p.vals.main, e, valueLess) {
		cutExact(&p.vals.stage, e, valueLess)
	}
	s.count.Add(-1)
	return true
}

// cutExact removes the first entry equal to e from the sorted run.
func cutExact(sp *[]Entry, e Entry, less lessFn) bool {
	s := *sp
	// Lower bound: first index with !(s[i] < e).
	i, j := 0, len(s)
	for i < j {
		h := int(uint(i+j) >> 1)
		if less(s[h], e) {
			i = h + 1
		} else {
			j = h
		}
	}
	if i < len(s) && s[i] == e {
		copy(s[i:], s[i+1:])
		s[len(s)-1] = Entry{}
		*sp = s[:len(s)-1]
		return true
	}
	return false
}

// TakeAll removes and returns everything (used by a departing node), in
// attribute order, each attribute's entries in value order.
func (s *Store) TakeAll() []Entry {
	var all []Entry
	for _, p := range s.partitions() {
		p.mu.Lock()
		all = p.vals.appendMerged(all, valueLess)
		p.vals = runs{}
		p.keys = runs{}
		p.mu.Unlock()
	}
	if n := len(all); n > 0 {
		s.count.Add(-int64(n))
		mHandedOver.Add(uint64(n))
	}
	return all
}

// Snapshot returns a copy of all entries, for tests and diagnostics, in
// attribute order, each attribute's entries in value order.
func (s *Store) Snapshot() []Entry {
	var all []Entry
	for _, p := range s.partitions() {
		p.mu.RLock()
		all = p.vals.appendMerged(all, valueLess)
		p.mu.RUnlock()
	}
	return all
}

// KeyCount is one key-group's population: how many entries the directory
// stores under a single overlay key.
type KeyCount struct {
	Key   uint64
	Count int
}

// KeyCounts returns the directory's key-groups in ascending key order with
// their entry counts. This is the granularity item migration plans at: all
// entries under one key are owned by whichever node the overlay maps that
// key to, so a shed interval can only split between key-groups, never
// inside one. A directory whose entries all share one key (SWORD's
// attribute pool) therefore reports a single indivisible group.
func (s *Store) KeyCounts() []KeyCount {
	counts := make(map[uint64]int)
	for _, p := range s.partitions() {
		p.mu.RLock()
		for i := range p.keys.main {
			counts[p.keys.main[i].Key]++
		}
		for i := range p.keys.stage {
			counts[p.keys.stage[i].Key]++
		}
		p.mu.RUnlock()
	}
	out := make([]KeyCount, 0, len(counts))
	for k, c := range counts {
		out = append(out, KeyCount{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
