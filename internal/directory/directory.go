// Package directory implements a node's resource-information directory: the
// set of ⟨attribute, value, owner⟩ pieces a DHT node is responsible for,
// each remembered together with the overlay key it was stored under so that
// churn (node joins and departures) can hand the right entries over to a
// neighbor.
package directory

import (
	"sync"

	"lorm/internal/resource"
)

// Entry is one stored resource-information piece plus its placement key.
// Key is the overlay's linearized identifier (a Chord ring position, or a
// Cycloid position folded onto the cluster-major order); overlays use it to
// decide which entries migrate when the node set changes.
type Entry struct {
	Key  uint64
	Info resource.Info
}

// Store is a concurrency-safe directory. The zero value is ready to use.
// Reads (range scans, size queries) take a shared lock so concurrent query
// workers do not serialize on each other.
type Store struct {
	mu      sync.RWMutex
	entries []Entry
}

// Add stores one entry.
func (s *Store) Add(e Entry) {
	s.mu.Lock()
	s.entries = append(s.entries, e)
	s.mu.Unlock()
}

// AddAll stores a batch of entries (used by key transfer).
func (s *Store) AddAll(es []Entry) {
	if len(es) == 0 {
		return
	}
	s.mu.Lock()
	s.entries = append(s.entries, es...)
	s.mu.Unlock()
}

// Len returns the directory size in information pieces — the quantity the
// paper's Figures 3(b)–(d) aggregate per node.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Match returns the stored pieces for the given attribute whose values fall
// in [lo, hi].
func (s *Store) Match(attr string, lo, hi float64) []resource.Info {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []resource.Info
	for _, e := range s.entries {
		if e.Info.Attr == attr && e.Info.Value >= lo && e.Info.Value <= hi {
			out = append(out, e.Info)
		}
	}
	return out
}

// CountAttr returns how many pieces the directory holds for one attribute.
func (s *Store) CountAttr(attr string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.entries {
		if e.Info.Attr == attr {
			n++
		}
	}
	return n
}

// TakeIf removes and returns every entry for which keep reports false —
// i.e. the entries that should move elsewhere. It is the primitive key
// transfer is built from: a joining node calls it on its successor with a
// predicate selecting the keys it now owns.
func (s *Store) TakeIf(shouldMove func(Entry) bool) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var moved []Entry
	kept := s.entries[:0]
	for _, e := range s.entries {
		if shouldMove(e) {
			moved = append(moved, e)
		} else {
			kept = append(kept, e)
		}
	}
	// Zero the tail so moved entries do not linger in the backing array.
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = Entry{}
	}
	s.entries = kept
	return moved
}

// TakeAll removes and returns everything (used by a departing node).
func (s *Store) TakeAll() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.entries
	s.entries = nil
	return all
}

// Snapshot returns a copy of all entries, for tests and diagnostics.
func (s *Store) Snapshot() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Entry(nil), s.entries...)
}
