// Package churn models the paper's dynamic environment (Section V.C): node
// joins and departures arrive as Poisson processes with rate R — "one
// resource join and one resource departure every 2.5 seconds with R=0.4" —
// while the system keeps answering queries. Departures are graceful and a
// periodic maintenance (stabilization) round repairs routing state, which
// reproduces the paper's observation of zero query failures under churn.
package churn

import (
	"fmt"
	"math"
	"math/rand"

	"lorm/internal/discovery"
	"lorm/internal/metrics"
	"lorm/internal/sim"
)

// Process-wide churn counters, aggregated across every churn process (the
// figure-6 sweep runs one per system per rate).
var (
	mJoins = metrics.Default().Counter("churn_joins_total",
		"successful node joins driven by churn processes")
	mDepartures = metrics.Default().Counter("churn_departures_total",
		"successful graceful departures driven by churn processes")
	mFailedOps = metrics.Default().Counter("churn_failed_ops_total",
		"churn-driven membership operations the system rejected")
	mMaintains = metrics.Default().Counter("churn_maintenance_rounds_total",
		"maintenance (stabilization) rounds triggered by churn processes")
)

// Config parameterizes a churn process.
type Config struct {
	// Rate is R: the expected joins per second AND departures per second.
	Rate float64
	// MaintainEvery is the virtual-time interval between stabilization
	// rounds (default 1s, mirroring Chord's periodic stabilization).
	MaintainEvery float64
	// Rng drives the exponential inter-arrival draws; required.
	Rng *rand.Rand
}

// Process wires a Dynamic system to a scheduler and keeps its membership
// churning: exponential inter-arrival joins and departures plus periodic
// maintenance.
type Process struct {
	cfg    Config
	sys    discovery.Dynamic
	sched  *sim.Scheduler
	joined int
	// Counters for reporting.
	Joins      int
	Departures int
	Maintains  int
	FailedOps  int // membership operations the system rejected
}

// New validates the configuration and attaches a churn process to the
// system and scheduler (no events are scheduled until Start).
func New(sys discovery.Dynamic, sched *sim.Scheduler, cfg Config) (*Process, error) {
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("churn: negative rate %v", cfg.Rate)
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("churn: config needs an Rng")
	}
	if cfg.MaintainEvery <= 0 {
		cfg.MaintainEvery = 1
	}
	return &Process{cfg: cfg, sys: sys, sched: sched}, nil
}

// exp draws an exponential inter-arrival time with the process rate.
func (p *Process) exp() float64 {
	u := p.cfg.Rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) / p.cfg.Rate
}

// Start schedules the first join, the first departure and the maintenance
// loop. With Rate == 0 only maintenance is scheduled.
func (p *Process) Start() {
	if p.cfg.Rate > 0 {
		p.sched.After(p.exp(), p.join)
		p.sched.After(p.exp(), p.depart)
	}
	p.sched.After(p.cfg.MaintainEvery, p.maintain)
}

func (p *Process) join() {
	addr := fmt.Sprintf("churn-%06d", p.joined)
	p.joined++
	if err := p.sys.AddNode(addr); err == nil {
		p.Joins++
		mJoins.Inc()
	} else {
		p.FailedOps++
		mFailedOps.Inc()
	}
	p.sched.After(p.exp(), p.join)
}

func (p *Process) depart() {
	addrs := p.sys.NodeAddrs()
	if len(addrs) > 1 {
		victim := addrs[p.cfg.Rng.Intn(len(addrs))]
		if err := p.sys.RemoveNode(victim); err == nil {
			p.Departures++
			mDepartures.Inc()
		} else {
			p.FailedOps++
			mFailedOps.Inc()
		}
	}
	p.sched.After(p.exp(), p.depart)
}

func (p *Process) maintain() {
	p.sys.Maintain()
	p.Maintains++
	mMaintains.Inc()
	p.sched.After(p.cfg.MaintainEvery, p.maintain)
}
