// Package churn models the paper's dynamic environment (Section V.C): node
// joins and departures arrive as Poisson processes with rate R — "one
// resource join and one resource departure every 2.5 seconds with R=0.4" —
// while the system keeps answering queries. Departures are graceful and a
// periodic maintenance (stabilization) round repairs routing state, which
// reproduces the paper's observation of zero query failures under churn.
//
// The crash extension replaces the graceful-departure stream with a
// faults.Plan: departure timing and kind (crash versus graceful) come from
// the plan, crashes lose the victim's directory entries abruptly, and an
// optional post-crash Repair hook (LORM replica repair) runs before the
// next query can observe the hole. Without a plan the process is draw-for-
// draw identical to the original graceful model, so figure-6 runs
// reproduce unchanged.
package churn

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"

	"lorm/internal/discovery"
	"lorm/internal/faults"
	"lorm/internal/metrics"
	"lorm/internal/sim"
)

// Process-wide churn counters, aggregated across every churn process (the
// figure-6 sweep runs one per system per rate).
var (
	mJoins = metrics.Default().Counter("churn_joins_total",
		"successful node joins driven by churn processes")
	mDepartures = metrics.Default().Counter("churn_departures_total",
		"successful graceful departures driven by churn processes")
	mFailedOps = metrics.Default().Counter("churn_failed_ops_total",
		"churn-driven membership operations the system rejected")
	mMaintains = metrics.Default().Counter("churn_maintenance_rounds_total",
		"maintenance (stabilization) rounds triggered by churn processes")
	mCrashes = metrics.Default().Counter("churn_crashes_total",
		"abrupt crash failures injected by churn processes")
	mLostEntries = metrics.Default().Counter("churn_lost_entries_total",
		"directory entries lost to crash failures injected by churn processes")
)

// Config parameterizes a churn process.
type Config struct {
	// Rate is R: the expected joins per second AND departures per second.
	Rate float64
	// MaintainEvery is the virtual-time interval between stabilization
	// rounds (default 1s, mirroring Chord's periodic stabilization).
	MaintainEvery float64
	// Rng drives the exponential inter-arrival draws; required.
	Rng *rand.Rand
	// Faults, when non-nil, replaces the graceful-departure stream: event
	// timing and kind (crash versus graceful) come from the plan's own
	// seeded stream, so a run with CrashFraction 0 still reproduces a
	// distinct trajectory from the legacy path only in its timing source,
	// never in the join stream or victim selection (both stay on Rng).
	Faults *faults.Plan
	// Repair, when non-nil, runs immediately after every applied crash —
	// the post-crash repair hook (LORM replica repair) that restores the
	// replication invariant before the next query can observe the hole.
	Repair func()
	// Membership, when non-nil, mirrors every membership event into a
	// gossip/failure-detection layer — and REROUTES crashes: instead of
	// applying FailNode omnisciently the instant the fault plan fires, the
	// crash is injected into the membership layer only. The overlay learns
	// about the failure when the detector confirms it and its OnConfirm
	// hook (wired by the experiment) applies FailNode, so detection latency
	// is part of the simulated trajectory. Joins and graceful departures
	// still apply to the system immediately and are mirrored to the hook.
	Membership Membership
	// Logger, when non-nil, receives a structured line per membership event:
	// joins and graceful departures at Debug, crashes (which lose data and
	// trigger repair) at Info. Nil disables event logging.
	Logger *slog.Logger
}

// Membership is the event surface of a peer-sampling/failure-detection
// layer (membership.Service implements it). Crash does not remove the
// node — it marks it unresponsive so the failure detector has to find it.
type Membership interface {
	Join(addr string)
	Leave(addr string)
	Crash(addr string)
}

// Process wires a Dynamic system to a scheduler and keeps its membership
// churning: exponential inter-arrival joins and departures plus periodic
// maintenance.
type Process struct {
	cfg    Config
	sys    discovery.Dynamic
	sched  *sim.Scheduler
	joined int
	// Counters for reporting. Crashes are counted separately from graceful
	// Departures — folding them together would hide the failure injection
	// the crash experiments sweep over.
	Joins       int
	Departures  int
	Crashes     int
	LostEntries int // directory entries lost to crashes
	Maintains   int
	FailedOps   int // membership operations the system rejected
}

// New validates the configuration and attaches a churn process to the
// system and scheduler (no events are scheduled until Start).
func New(sys discovery.Dynamic, sched *sim.Scheduler, cfg Config) (*Process, error) {
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("churn: negative rate %v", cfg.Rate)
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("churn: config needs an Rng")
	}
	if cfg.MaintainEvery <= 0 {
		cfg.MaintainEvery = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Process{cfg: cfg, sys: sys, sched: sched}, nil
}

// exp draws an exponential inter-arrival time with the process rate.
func (p *Process) exp() float64 {
	u := p.cfg.Rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) / p.cfg.Rate
}

// Start schedules the first join, the first departure (or fault-plan
// event) and the maintenance loop. With Rate == 0 and no fault plan, only
// maintenance is scheduled.
func (p *Process) Start() {
	if p.cfg.Rate > 0 {
		p.sched.After(p.exp(), p.join)
		if p.cfg.Faults == nil {
			p.sched.After(p.exp(), p.depart)
		}
	}
	if p.cfg.Faults != nil {
		ev := p.cfg.Faults.Next()
		p.sched.After(ev.After, func() { p.fail(ev.Kind) })
	}
	p.sched.After(p.cfg.MaintainEvery, p.maintain)
}

func (p *Process) join() {
	addr := fmt.Sprintf("churn-%06d", p.joined)
	p.joined++
	if err := p.sys.AddNode(addr); err == nil {
		p.Joins++
		mJoins.Inc()
		if p.cfg.Membership != nil {
			p.cfg.Membership.Join(addr)
		}
		p.cfg.Logger.Debug("churn join", "system", p.sys.Name(), "node", addr, "t", p.sched.Now())
	} else {
		p.FailedOps++
		mFailedOps.Inc()
		p.cfg.Logger.Debug("churn join rejected", "system", p.sys.Name(), "node", addr, "err", err)
	}
	p.sched.After(p.exp(), p.join)
}

func (p *Process) depart() {
	addrs := p.sys.NodeAddrs()
	if len(addrs) > 1 {
		victim := addrs[p.cfg.Rng.Intn(len(addrs))]
		if err := p.sys.RemoveNode(victim); err == nil {
			p.Departures++
			mDepartures.Inc()
			if p.cfg.Membership != nil {
				p.cfg.Membership.Leave(victim)
			}
			p.cfg.Logger.Debug("churn depart", "system", p.sys.Name(), "node", victim, "t", p.sched.Now())
		} else {
			p.FailedOps++
			mFailedOps.Inc()
			p.cfg.Logger.Debug("churn depart rejected", "system", p.sys.Name(), "node", victim, "err", err)
		}
	}
	p.sched.After(p.exp(), p.depart)
}

// fail applies one fault-plan event: a graceful departure or an abrupt
// crash (falling back to graceful when the system is not Crashable), then
// schedules the next plan event. Victim selection draws from cfg.Rng
// exactly like the legacy departure path.
func (p *Process) fail(kind faults.Kind) {
	addrs := p.sys.NodeAddrs()
	if len(addrs) > 1 {
		victim := addrs[p.cfg.Rng.Intn(len(addrs))]
		if kind == faults.Crash && p.cfg.Membership != nil {
			// Detector-mediated path: the crash reaches only the membership
			// layer here. FailNode (and the lost-entry accounting plus the
			// Repair hook) runs when the detector confirms the failure.
			p.Crashes++
			mCrashes.Inc()
			p.cfg.Membership.Crash(victim)
			p.cfg.Logger.Info("churn crash injected via membership",
				"system", p.sys.Name(), "node", victim, "t", p.sched.Now())
			ev := p.cfg.Faults.Next()
			p.sched.After(ev.After, func() { p.fail(ev.Kind) })
			return
		}
		applied, lost, err := faults.Apply(p.sys, kind, victim)
		switch {
		case err != nil:
			p.FailedOps++
			mFailedOps.Inc()
			p.cfg.Logger.Debug("churn fault rejected", "system", p.sys.Name(), "node", victim, "err", err)
		case applied == faults.Crash:
			p.Crashes++
			mCrashes.Inc()
			p.LostEntries += lost
			mLostEntries.Add(uint64(lost))
			p.cfg.Logger.Info("churn crash", "system", p.sys.Name(), "node", victim,
				"lost_entries", lost, "repair", p.cfg.Repair != nil, "t", p.sched.Now())
			if p.cfg.Repair != nil {
				p.cfg.Repair()
			}
		default:
			p.Departures++
			mDepartures.Inc()
			if p.cfg.Membership != nil {
				p.cfg.Membership.Leave(victim)
			}
			p.cfg.Logger.Debug("churn depart", "system", p.sys.Name(), "node", victim, "t", p.sched.Now())
		}
	}
	ev := p.cfg.Faults.Next()
	p.sched.After(ev.After, func() { p.fail(ev.Kind) })
}

func (p *Process) maintain() {
	p.sys.Maintain()
	p.Maintains++
	mMaintains.Inc()
	p.sched.After(p.cfg.MaintainEvery, p.maintain)
}
