package churn

import (
	"testing"

	"lorm/internal/faults"
	"lorm/internal/sim"
	"lorm/internal/workload"
)

// recorder implements the Membership hook and records every event.
type recorder struct {
	joins, leaves, crashes []string
}

func (r *recorder) Join(addr string)  { r.joins = append(r.joins, addr) }
func (r *recorder) Leave(addr string) { r.leaves = append(r.leaves, addr) }
func (r *recorder) Crash(addr string) { r.crashes = append(r.crashes, addr) }

// With a Membership hook installed, crash events must be rerouted: the
// system keeps every node (FailNode is the detector's job, not the fault
// plan's) while the hook sees the crash, and graceful joins/departures are
// both applied and mirrored.
func TestMembershipHookReroutesCrashes(t *testing.T) {
	sys := buildLORM(t, 100)
	before := sys.NodeCount()
	var sched sim.Scheduler
	plan, err := faults.New(faults.Config{
		Rate:          0.5,
		CrashFraction: 1, // every event is a crash
		Rng:           workload.Split(7, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	p, err := New(sys, &sched, Config{
		Rate:       0, // no joins: node count must stay exactly flat
		Rng:        workload.Split(7, 1),
		Faults:     plan,
		Membership: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	sched.RunUntil(100)

	if p.Crashes == 0 || len(rec.crashes) != p.Crashes {
		t.Fatalf("hook saw %d crashes, process counted %d (want equal, > 0)", len(rec.crashes), p.Crashes)
	}
	if got := sys.NodeCount(); got != before {
		t.Fatalf("node count changed %d -> %d: a crash reached the system without detector confirmation", before, got)
	}
	if p.LostEntries != 0 {
		t.Fatalf("%d entries lost without any FailNode call", p.LostEntries)
	}
}

// The hook mirrors the graceful path without changing its behavior.
func TestMembershipHookMirrorsJoinsAndLeaves(t *testing.T) {
	sys := buildLORM(t, 100)
	var sched sim.Scheduler
	rec := &recorder{}
	p, err := New(sys, &sched, Config{
		Rate:       0.4,
		Rng:        workload.Split(8, 0),
		Membership: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	sched.RunUntil(100)
	if p.Joins == 0 || len(rec.joins) != p.Joins {
		t.Fatalf("hook saw %d joins, process counted %d (want equal, > 0)", len(rec.joins), p.Joins)
	}
	if p.Departures == 0 || len(rec.leaves) != p.Departures {
		t.Fatalf("hook saw %d leaves, process counted %d (want equal, > 0)", len(rec.leaves), p.Departures)
	}
}
