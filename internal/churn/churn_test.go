package churn

import (
	"fmt"
	"math"
	"testing"

	"lorm/internal/core"
	"lorm/internal/faults"
	"lorm/internal/resource"
	"lorm/internal/sim"
	"lorm/internal/workload"
)

func buildLORM(t testing.TB, n int) *core.System {
	t.Helper()
	schema := resource.MustSchema(resource.Attribute{Name: "cpu", Min: 100, Max: 3200})
	s, err := core.New(core.Config{D: 7, Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := s.AddNodes(addrs); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	sys := buildLORM(t, 10)
	var sched sim.Scheduler
	if _, err := New(sys, &sched, Config{Rate: -1, Rng: workload.Split(1, 0)}); err == nil {
		t.Fatal("negative rate should error")
	}
	if _, err := New(sys, &sched, Config{Rate: 0.1}); err == nil {
		t.Fatal("missing rng should error")
	}
}

// The number of churn events over a horizon must track the Poisson rate.
func TestEventRateMatchesPoisson(t *testing.T) {
	sys := buildLORM(t, 100)
	var sched sim.Scheduler
	const rate, horizon = 0.4, 500.0
	p, err := New(sys, &sched, Config{Rate: rate, Rng: workload.Split(2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	sched.RunUntil(horizon)
	expected := rate * horizon // 200 joins, 200 departures
	for name, got := range map[string]int{"joins": p.Joins, "departures": p.Departures} {
		if math.Abs(float64(got)-expected) > 4*math.Sqrt(expected) {
			t.Errorf("%s = %d, want ≈ %v (Poisson, ±4σ)", name, got, expected)
		}
	}
	if p.Maintains != int(horizon) {
		t.Errorf("Maintains = %d, want %d (one per second)", p.Maintains, int(horizon))
	}
}

// Membership stays roughly constant: joins and departures have equal rate.
func TestMembershipStaysBalanced(t *testing.T) {
	sys := buildLORM(t, 120)
	var sched sim.Scheduler
	p, err := New(sys, &sched, Config{Rate: 0.5, Rng: workload.Split(3, 0)})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	sched.RunUntil(400)
	n := sys.NodeCount()
	if n < 60 || n > 200 {
		t.Fatalf("node count drifted to %d from 120", n)
	}
}

// Queries during churn never fail and never lose information — the
// paper's "there were no failures in all test cases".
func TestNoFailuresUnderChurn(t *testing.T) {
	sys := buildLORM(t, 100)
	gen := workload.NewGenerator(sys.Schema(), 1.5)
	rng := workload.Split(4, 0)
	const pieces = 50
	for _, in := range gen.Announcements(rng, pieces) {
		if _, err := sys.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	var sched sim.Scheduler
	p, err := New(sys, &sched, Config{Rate: 0.5, Rng: workload.Split(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()

	qrng := workload.Split(4, 2)
	failures, queries := 0, 0
	for i := 0; i < 100; i++ {
		sched.After(float64(i)*2, func() {
			q := gen.RangeQuery(qrng, 1, 0.5, fmt.Sprintf("r%d", queries))
			queries++
			if _, err := sys.Discover(q); err != nil {
				failures++
			}
		})
	}
	sched.RunUntil(250)
	if queries != 100 {
		t.Fatalf("ran %d queries, want 100", queries)
	}
	if failures != 0 {
		t.Fatalf("%d query failures under churn, want 0", failures)
	}
	total := 0
	for _, sz := range sys.DirectorySizes() {
		total += sz
	}
	if total != pieces {
		t.Fatalf("information lost under churn: %d stored, want %d", total, pieces)
	}
}

// With a fault plan attached, crashes are reported on their own counter —
// not folded into Departures — and the post-crash Repair hook fires once
// per applied crash.
func TestCrashModeCountsCrashesSeparately(t *testing.T) {
	sys := buildLORM(t, 150)
	var sched sim.Scheduler
	plan, err := faults.New(faults.Config{Rate: 0.4, CrashFraction: 0.5, Rng: workload.Split(6, 1)})
	if err != nil {
		t.Fatal(err)
	}
	repairs := 0
	p, err := New(sys, &sched, Config{
		Rate:   0.4,
		Rng:    workload.Split(6, 0),
		Faults: plan,
		Repair: func() { repairs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	const horizon = 400.0
	sched.RunUntil(horizon)

	if p.Crashes == 0 {
		t.Fatal("no crashes applied at CrashFraction 0.5")
	}
	if p.Departures == 0 {
		t.Fatal("no graceful departures applied at CrashFraction 0.5")
	}
	if repairs != p.Crashes {
		t.Fatalf("Repair ran %d times for %d crashes", repairs, p.Crashes)
	}
	events := float64(p.Crashes + p.Departures + p.FailedOps)
	expected := 0.4 * horizon
	if math.Abs(events-expected) > 4*math.Sqrt(expected) {
		t.Errorf("fault events = %v, want ≈ %v (Poisson, ±4σ)", events, expected)
	}
	// Crash fraction should track the plan's.
	frac := float64(p.Crashes) / events
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("observed crash fraction %v, want ≈ 0.5", frac)
	}
}

// A fault plan with CrashFraction 0 degenerates to graceful-only churn:
// zero crashes, zero lost entries, departures on the departure counter.
func TestCrashModeGracefulOnly(t *testing.T) {
	sys := buildLORM(t, 100)
	var sched sim.Scheduler
	plan, err := faults.New(faults.Config{Rate: 0.4, CrashFraction: 0, Rng: workload.Split(7, 1)})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(sys, &sched, Config{Rate: 0.4, Rng: workload.Split(7, 0), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	sched.RunUntil(300)
	if p.Crashes != 0 || p.LostEntries != 0 {
		t.Fatalf("graceful-only plan produced %d crashes, %d lost entries", p.Crashes, p.LostEntries)
	}
	if p.Departures == 0 {
		t.Fatal("no departures applied")
	}
}

func TestZeroRateOnlyMaintains(t *testing.T) {
	sys := buildLORM(t, 20)
	var sched sim.Scheduler
	p, err := New(sys, &sched, Config{Rate: 0, Rng: workload.Split(5, 0), MaintainEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	sched.RunUntil(10)
	if p.Joins != 0 || p.Departures != 0 {
		t.Fatalf("zero-rate process churned: %d joins %d departures", p.Joins, p.Departures)
	}
	if p.Maintains != 5 {
		t.Fatalf("Maintains = %d, want 5", p.Maintains)
	}
	if sys.NodeCount() != 20 {
		t.Fatalf("membership changed at zero rate")
	}
}
