package discovery

import (
	"sync"

	"lorm/internal/resource"
)

// Oracle is a centralized brute-force reference implementation: it stores
// every registered piece in one flat list and answers queries by linear
// scan. It costs nothing to route (Cost is always zero) and exists solely
// as ground truth — the equivalence tests require every DHT-based system
// to return exactly the Oracle's answer on identical workloads.
type Oracle struct {
	schema *resource.Schema
	mu     sync.RWMutex
	infos  []resource.Info
}

// NewOracle builds an empty oracle over the schema.
func NewOracle(schema *resource.Schema) *Oracle {
	return &Oracle{schema: schema}
}

// Name implements System.
func (o *Oracle) Name() string { return "oracle" }

// Schema implements System.
func (o *Oracle) Schema() *resource.Schema { return o.schema }

// NodeCount implements System; the oracle is a single logical node.
func (o *Oracle) NodeCount() int { return 1 }

// Register implements System.
func (o *Oracle) Register(info resource.Info) (Cost, error) {
	o.mu.Lock()
	o.infos = append(o.infos, info)
	o.mu.Unlock()
	return Cost{}, nil
}

// Discover implements System by exhaustive scan.
func (o *Oracle) Discover(q resource.Query) (*Result, error) {
	if err := q.Validate(o.schema); err != nil {
		return nil, err
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	res := &Result{PerAttr: make(map[string][]resource.Info, len(q.Subs))}
	for _, sub := range q.Subs {
		var matches []resource.Info
		for _, in := range o.infos {
			if in.Attr == sub.Attr && sub.Matches(in.Value) {
				matches = append(matches, in)
			}
		}
		res.PerAttr[sub.Attr] = matches
	}
	return Finish(res), nil
}

// DirectorySizes implements System.
func (o *Oracle) DirectorySizes() []int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return []int{len(o.infos)}
}

// OutlinkCounts implements System; the oracle has no overlay.
func (o *Oracle) OutlinkCounts() []int { return []int{0} }

var _ System = (*Oracle)(nil)
