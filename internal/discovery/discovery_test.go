package discovery

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"lorm/internal/resource"
)

func testSchema() *resource.Schema {
	return resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 0, Max: 100},
		resource.Attribute{Name: "mem", Min: 0, Max: 100},
	)
}

func TestCostAddAndString(t *testing.T) {
	c := Cost{Hops: 1, Visited: 2, Messages: 3}
	c.Add(Cost{Hops: 10, Visited: 20, Messages: 30})
	if c.Hops != 11 || c.Visited != 22 || c.Messages != 33 {
		t.Fatalf("Add wrong: %+v", c)
	}
	if s := c.String(); !strings.Contains(s, "hops=11") {
		t.Fatalf("String = %q", s)
	}
}

func TestOracleRegisterDiscover(t *testing.T) {
	o := NewOracle(testSchema())
	for _, in := range []resource.Info{
		{Attr: "cpu", Value: 50, Owner: "a"},
		{Attr: "cpu", Value: 80, Owner: "b"},
		{Attr: "mem", Value: 60, Owner: "a"},
	} {
		if _, err := o.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	res, err := o.Discover(resource.Query{Subs: []resource.SubQuery{
		{Attr: "cpu", Low: 40, High: 70},
		{Attr: "mem", Low: 50, High: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Owners, []string{"a"}) {
		t.Fatalf("Owners = %v, want [a]", res.Owners)
	}
	if res.Cost != (Cost{}) {
		t.Fatalf("oracle cost should be zero, got %+v", res.Cost)
	}
}

func TestOracleValidates(t *testing.T) {
	o := NewOracle(testSchema())
	if _, err := o.Discover(resource.Query{}); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestOracleMetadata(t *testing.T) {
	o := NewOracle(testSchema())
	if o.Name() != "oracle" || o.NodeCount() != 1 || o.Schema().Len() != 2 {
		t.Fatal("oracle metadata wrong")
	}
	if _, err := o.Register(resource.Info{Attr: "cpu", Value: 1, Owner: "x"}); err != nil {
		t.Fatal(err)
	}
	if got := o.DirectorySizes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DirectorySizes = %v", got)
	}
	if got := o.OutlinkCounts(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("OutlinkCounts = %v", got)
	}
}

func TestRunSubsMergesResults(t *testing.T) {
	q := resource.Query{Subs: []resource.SubQuery{
		{Attr: "cpu", Low: 1, High: 2},
		{Attr: "mem", Low: 3, High: 4},
	}}
	res, err := RunSubs(q, func(sub resource.SubQuery) ([]resource.Info, error) {
		return []resource.Info{{Attr: sub.Attr, Value: sub.Low, Owner: "shared"}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != (Cost{}) {
		t.Fatalf("RunSubs must not account cost (the routing op does), got %+v", res.Cost)
	}
	if !reflect.DeepEqual(res.Owners, []string{"shared"}) {
		t.Fatalf("Owners = %v", res.Owners)
	}
	if len(res.PerAttr) != 2 {
		t.Fatalf("PerAttr = %v", res.PerAttr)
	}
}

func TestRunSubsPropagatesError(t *testing.T) {
	q := resource.Query{Subs: []resource.SubQuery{
		{Attr: "cpu", Low: 1, High: 2},
		{Attr: "mem", Low: 3, High: 4},
	}}
	boom := errors.New("boom")
	_, err := RunSubs(q, func(sub resource.SubQuery) ([]resource.Info, error) {
		if sub.Attr == "mem" {
			return nil, boom
		}
		return nil, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestFinishJoins(t *testing.T) {
	res := &Result{PerAttr: map[string][]resource.Info{
		"cpu": {{Owner: "a"}, {Owner: "b"}},
		"mem": {{Owner: "b"}},
	}}
	Finish(res)
	if !reflect.DeepEqual(res.Owners, []string{"b"}) {
		t.Fatalf("Owners = %v", res.Owners)
	}
}
