// Package discovery defines the common interface of the four resource
// discovery systems the paper compares — LORM, Mercury, SWORD and MAAN —
// together with the cost accounting (logical hops, visited directory
// nodes, messages) every experiment measures.
//
// All four systems implement System; the experiment harness and the
// cross-system equivalence tests are written purely against it.
package discovery

import (
	"fmt"

	"lorm/internal/resource"
)

// Cost accounts for one operation's communication:
//
//   - Hops: logical routing hops, i.e. node-to-node forwards during DHT
//     lookups and range walks (Figures 4 and 6(a)).
//   - Visited: nodes that received the query and checked their directory
//     for matching resource information (Figures 5 and 6(b)).
//   - Messages: total messages, hops plus one reply per visited node.
type Cost struct {
	Hops     int
	Visited  int
	Messages int
}

// Add accumulates another operation's cost.
func (c *Cost) Add(o Cost) {
	c.Hops += o.Hops
	c.Visited += o.Visited
	c.Messages += o.Messages
}

func (c Cost) String() string {
	return fmt.Sprintf("hops=%d visited=%d msgs=%d", c.Hops, c.Visited, c.Messages)
}

// Result is the answer to a multi-attribute query.
type Result struct {
	// PerAttr holds each sub-query's matching resource information,
	// exactly as the directory nodes returned it.
	PerAttr map[string][]resource.Info
	// Owners is the database-like join on ip_addr: the addresses whose
	// resources satisfy every sub-query, sorted.
	Owners []string
	// Cost is the query's total communication cost across sub-queries.
	Cost Cost
}

// System is a DHT-based grid resource discovery service.
type System interface {
	// Name identifies the approach ("lorm", "mercury", "sword", "maan", "art").
	Name() string
	// Schema returns the globally known attribute types.
	Schema() *resource.Schema
	// NodeCount returns the number of live directory nodes.
	NodeCount() int
	// Register announces one piece of available-resource information,
	// routing it to its directory node(s). It reports the routing cost.
	Register(info resource.Info) (Cost, error)
	// Discover resolves a multi-attribute (possibly range) query: each
	// sub-query is routed to its root, range sub-queries additionally walk
	// neighboring directory nodes, and the per-attribute results are
	// joined on the owner address.
	Discover(q resource.Query) (*Result, error)
	// DirectorySizes samples every node's directory size (pieces of
	// resource information), the load-balance metric of Figures 3(b)-(d).
	DirectorySizes() []int
	// OutlinkCounts samples every node's distinct overlay neighbors, the
	// structure maintenance metric of Figure 3(a).
	OutlinkCounts() []int
}

// TraceContext identifies one distributed trace as it crosses process
// boundaries: the trace it belongs to, the caller-side span the callee's
// work should parent under, and the head-sampling decision made at the
// trace root. The zero value means "no incoming context" — the callee's
// tracer (if any) starts a fresh trace and makes its own sampling call.
type TraceContext struct {
	// TraceID identifies the whole end-to-end trace (nonzero when set).
	TraceID uint64 `json:"trace_id"`
	// SpanID is the caller-side span that should become the parent of the
	// callee's root span.
	SpanID uint64 `json:"span_id"`
	// Sampled carries the head-sampling decision: when the root sampled the
	// trace, every downstream participant records its spans too, so a trace
	// is always complete or absent — never partial.
	Sampled bool `json:"sampled"`
}

// Valid reports whether the context carries a real trace identity.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// Traced is implemented by systems whose Register/Discover can join a
// caller-provided trace: the variants behave identically to the System
// methods but parent their routing-fabric spans under ctx. All four
// systems implement it; transport servers use it to link server-side
// spans to the client that carried ctx over the wire.
type Traced interface {
	System
	// RegisterTraced is Register joined to the caller's trace context.
	RegisterTraced(info resource.Info, ctx TraceContext) (Cost, error)
	// DiscoverTraced is Discover joined to the caller's trace context.
	DiscoverTraced(q resource.Query, ctx TraceContext) (*Result, error)
}

// Dynamic is implemented by systems that support churn: node joins and
// graceful departures plus a periodic maintenance round.
type Dynamic interface {
	System
	// AddNode joins a new physical node under the given address.
	AddNode(addr string) error
	// RemoveNode gracefully departs the node with the given address.
	RemoveNode(addr string) error
	// NodeAddrs lists live node addresses (for victim selection).
	NodeAddrs() []string
	// Maintain runs one stabilization round.
	Maintain()
}

// Crashable is implemented by systems that additionally survive abrupt
// crash failures: the node vanishes with its directory contents — no key
// handover, no pointer repair — and routing state heals through subsequent
// lookups and Maintain rounds. This is the failure model the paper's churn
// evaluation (Section V.C) deliberately excludes; the crash experiments
// measure what its graceful-departure assumption hides.
type Crashable interface {
	Dynamic
	// FailNode crashes the node with the given address abruptly. It
	// returns the number of directory entries that vanished with the node
	// (replicas of those entries may survive elsewhere).
	FailNode(addr string) (lostEntries int, err error)
}

// Reachability is a directed link predicate over node addresses: can a
// message sent by `from` reach `to` right now? The zero answer for healthy
// networks is "always true"; internal/netfault implements this interface
// with named partitions and one-way blackholes. Implementations must be
// safe for concurrent use — overlay lookups consult them lock-free.
//
// The predicate models the network, not the process table: a node that is
// alive but on the far side of a partition is unreachable, while a crashed
// node is simply absent from the overlay. Directedness matters — asymmetric
// links (A reaches B, B cannot reach A) are representable and exercised by
// the blackhole tests.
type Reachability interface {
	Reachable(from, to string) bool
}

// NetAware is implemented by systems whose overlays can route around (and
// fail on) injected network faults: SetReachability installs the fault
// plane every subsequent lookup and range walk consults. A nil plane
// restores fault-free routing.
type NetAware interface {
	System
	SetReachability(r Reachability)
}

// Replicated is implemented by systems that keep redundant copies of
// directory entries on successor-set holders (the shared
// internal/replication layer). SetReplicas selects the base replication
// factor r: every entry is stored on its root plus up to r−1 distinct
// successors. Repair restores that holder invariant after churn — it adds
// missing copies, drops copies from nodes that should no longer hold them
// (including replicas invalidated by a re-announce), and is idempotent: a
// second immediate call reports (0, 0).
type Replicated interface {
	System
	// SetReplicas sets the base replication factor (r ≥ 1; r = 1 disables
	// replication). It rejects factors below 1 or beyond the overlay's
	// capacity.
	SetReplicas(r int) error
	// Replicas returns the configured base replication factor (≥ 1).
	Replicas() int
	// Repair re-establishes the holder invariant for every entry and
	// reports how many copies it added and removed.
	Repair() (added, removed int)
}

// NodeLoad is one node's storage load: how many pieces of resource
// information its directory holds. Unlike DirectorySizes it carries the
// node's address, so imbalance reports can name hotspots and migration
// plans can target them.
type NodeLoad struct {
	Addr    string
	Entries int
}

// MigrationStats summarizes one rebalance pass.
type MigrationStats struct {
	// Passes is the number of planner passes executed (≥ 1).
	Passes int
	// Migrations is the number of boundary moves performed.
	Migrations int
	// EntriesMoved is the total number of directory entries that changed
	// node across those migrations.
	EntriesMoved int
	// Blocked counts hotspots the planner could not shed anything from —
	// for key-partitioned systems an occasional single-key pileup, for
	// SWORD the structural common case (a whole attribute lives under one
	// key, and one key cannot be split between nodes).
	Blocked int
}

// Add accumulates another pass's stats.
func (m *MigrationStats) Add(o MigrationStats) {
	m.Passes += o.Passes
	m.Migrations += o.Migrations
	m.EntriesMoved += o.EntriesMoved
	m.Blocked += o.Blocked
}

func (m MigrationStats) String() string {
	return fmt.Sprintf("passes=%d migrations=%d moved=%d blocked=%d",
		m.Passes, m.Migrations, m.EntriesMoved, m.Blocked)
}

// Balancer is implemented by systems that expose per-node load and a
// neighbor item-migration pass. Rebalance must preserve query semantics
// exactly: every query returns the same result multiset before and after
// (entries only change which node stores them, never whether a range walk
// finds them). A system unable to shed anything (SWORD's one-key-per-
// attribute placement) still implements the interface — its Rebalance
// reports the blocked hotspots instead of moving entries, which is itself
// a measured result.
type Balancer interface {
	System
	// DirectoryLoads samples every node's directory size with its address,
	// in a deterministic order.
	DirectoryLoads() []NodeLoad
	// Rebalance runs one item-migration pass and reports what moved.
	Rebalance() (MigrationStats, error)
}

// Finish completes a Result: joins owners and validates invariants. The
// systems call it at the end of Discover so join semantics stay identical
// across implementations.
func Finish(res *Result) *Result {
	res.Owners = resource.JoinOwners(res.PerAttr)
	return res
}
