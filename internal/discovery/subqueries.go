package discovery

import (
	"lorm/internal/resource"
)

// RunSubs resolves a multi-attribute query by executing each sub-query
// concurrently — the paper's "multi-attribute query is composed of a set
// of sub-queries on each attribute, which are processed in parallel" — and
// merging the per-attribute matches. The first error aborts the query.
//
// Communication cost is not accumulated here: the systems thread one
// routing.Op through every sub-query (the Op is safe for concurrent use)
// and set Result.Cost from it after RunSubs returns, so cost derivation
// stays in the routing fabric.
//
// fn must be safe for concurrent use; every System implements it over
// lock-free snapshot lookups.
func RunSubs(q resource.Query, fn func(resource.SubQuery) ([]resource.Info, error)) (*Result, error) {
	type subResult struct {
		attr    string
		matches []resource.Info
		err     error
	}
	ch := make(chan subResult, len(q.Subs))
	for _, sub := range q.Subs {
		go func(sub resource.SubQuery) {
			matches, err := fn(sub)
			ch <- subResult{attr: sub.Attr, matches: matches, err: err}
		}(sub)
	}
	res := &Result{PerAttr: make(map[string][]resource.Info, len(q.Subs))}
	var firstErr error
	for range q.Subs {
		sr := <-ch
		if sr.err != nil {
			if firstErr == nil {
				firstErr = sr.err
			}
			continue
		}
		res.PerAttr[sr.attr] = sr.matches
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return Finish(res), nil
}
