package discovery

import (
	"lorm/internal/resource"
)

// RunSubs resolves a multi-attribute query by executing each sub-query
// concurrently — the paper's "multi-attribute query is composed of a set
// of sub-queries on each attribute, which are processed in parallel" — and
// merging the per-attribute matches and communication costs. The first
// error aborts the query.
//
// fn must be safe for concurrent use; every System implements it over
// overlay lookups that take read locks only.
func RunSubs(q resource.Query, fn func(resource.SubQuery) ([]resource.Info, Cost, error)) (*Result, error) {
	type subResult struct {
		attr    string
		matches []resource.Info
		cost    Cost
		err     error
	}
	ch := make(chan subResult, len(q.Subs))
	for _, sub := range q.Subs {
		go func(sub resource.SubQuery) {
			matches, cost, err := fn(sub)
			ch <- subResult{attr: sub.Attr, matches: matches, cost: cost, err: err}
		}(sub)
	}
	res := &Result{PerAttr: make(map[string][]resource.Info, len(q.Subs))}
	var firstErr error
	for range q.Subs {
		sr := <-ch
		if sr.err != nil {
			if firstErr == nil {
				firstErr = sr.err
			}
			continue
		}
		res.PerAttr[sr.attr] = sr.matches
		res.Cost.Add(sr.cost)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return Finish(res), nil
}
