package cycloid

import "lorm/internal/metrics"

// Process-wide maintenance counters, aggregated across every overlay in the
// process. Handles are resolved once at init; the increments on the
// maintenance paths are single atomic adds.
var (
	mStabilizeRounds = metrics.Default().Counter("cycloid_stabilize_rounds_total",
		"cycloid self-organization (stabilization) rounds executed")
	mNodeRebuilds = metrics.Default().Counter("cycloid_node_rebuilds_total",
		"cycloid per-node link-set rebuilds (the finger-fix analog)")
	mSnapshotPublishes = metrics.Default().Counter("cycloid_snapshot_publishes_total",
		"copy-on-write routing snapshots published by cycloid writers")
	mFailuresDetected = metrics.Default().Counter("cycloid_failures_detected_total",
		"abrupt cycloid node failures injected/detected")
)
