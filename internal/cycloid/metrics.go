package cycloid

import "lorm/internal/metrics"

// Process-wide maintenance counters, aggregated across every overlay in the
// process. Handles are resolved once at init; the increments on the
// maintenance paths are single atomic adds.
var (
	mStabilizeRounds = metrics.Default().Counter("cycloid_stabilize_rounds_total",
		"cycloid self-organization (stabilization) rounds executed")
	mNodeRebuilds = metrics.Default().Counter("cycloid_node_rebuilds_total",
		"cycloid per-node link-set rebuilds (the finger-fix analog)")
	mSnapshotPublishes = metrics.Default().Counter("cycloid_snapshot_publishes_total",
		"copy-on-write routing snapshots published by cycloid writers")
	mFailuresDetected = metrics.Default().Counter("cycloid_failures_detected_total",
		"abrupt cycloid node failures injected/detected")
	mLookupDetours = metrics.Default().Counter("cycloid_lookup_detours_total",
		"cycloid lookup hops that detoured around a dead preferred link")
	mQueryFailures = metrics.Default().Counter("cycloid_query_failures_total",
		"cycloid lookups that failed to resolve a root")
	mBoundaryMoves = metrics.Default().Counter("cycloid_boundary_moves_total",
		"cycloid ownership-boundary moves (Advance/Retreat) during rebalancing")
)
