package cycloid

import (
	"fmt"
	"testing"

	"lorm/internal/netfault"
)

func TestLookupFailsAcrossPartitionAndHealsCleanly(t *testing.T) {
	o := MustNew(Config{D: 5})
	addrs := make([]string, 100)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := o.AddBulk(addrs); err != nil {
		t.Fatal(err)
	}
	nodes := o.Nodes()
	// Minority: the first quarter of the linearized ring.
	inMinority := make(map[string]bool)
	var minority []string
	for _, n := range nodes[:len(nodes)/4] {
		minority = append(minority, n.Addr)
		inMinority[n.Addr] = true
	}
	plane := netfault.NewPlane(1)
	o.SetReachability(plane)
	if err := plane.StartPartition("cut", minority); err != nil {
		t.Fatal(err)
	}

	from := nodes[0]
	crossFails, crossTotal := 0, 0
	for i := 0; i < 128; i++ {
		key := ID{K: i % o.D(), A: uint64(i * 3)}
		owner, err := o.OwnerOf(key)
		if err != nil {
			t.Fatal(err)
		}
		route, lerr := o.Lookup(from, key)
		if inMinority[owner.Addr] {
			// Same-side keys may still fail when the only route crosses the
			// cut, but a resolved root must never be wrong.
			if lerr == nil && route.Root != owner {
				t.Fatalf("key %v resolved to %s, oracle owner %s", key, route.Root.Addr, owner.Addr)
			}
			continue
		}
		crossTotal++
		if lerr == nil {
			t.Fatalf("lookup for far-side key %v resolved to %s during partition", key, route.Root.Addr)
		}
		crossFails++
	}
	if crossFails == 0 {
		t.Fatalf("degenerate split: no cross-partition keys among %d", crossTotal)
	}

	// NextNode truncates a range walk at the fault boundary.
	boundary := nodes[len(nodes)/4-1]
	if next, ok := o.NextNode(boundary); ok && !inMinority[next.Addr] {
		t.Fatalf("NextNode(%s) crossed the cut to %s", boundary.Addr, next.Addr)
	}

	plane.Heal("cut")
	for i := 0; i < 128; i++ {
		key := ID{K: i % o.D(), A: uint64(i * 3)}
		owner, _ := o.OwnerOf(key)
		route, err := o.Lookup(from, key)
		if err != nil {
			t.Fatalf("post-heal lookup for %v failed: %v", key, err)
		}
		if route.Root != owner {
			t.Fatalf("post-heal key %v resolved to %s, oracle owner %s", key, route.Root.Addr, owner.Addr)
		}
	}
}
