package cycloid

import (
	"math/rand"
	"testing"

	"lorm/internal/routing"
)

// After abrupt crashes and NO stabilization, every lookup must still resolve
// to the oracle owner among live nodes, and hops routed around a dead
// preferred link must be recorded as ReasonDetour so path-derived costs
// keep matching reported costs under failures.
func TestCrashLookupDetoursAroundDeadLinks(t *testing.T) {
	o := buildComplete(t, 6) // 384 nodes
	rng := rand.New(rand.NewSource(21))
	failed := make(map[string]bool)
	for i := 0; i < 40; i++ {
		nodes := o.Nodes()
		n := nodes[rng.Intn(len(nodes))]
		if _, err := o.Fail(n); err != nil {
			t.Fatalf("Fail(%s): %v", n.Addr, err)
		}
		failed[n.Addr] = true
	}

	fab := routing.NewFabric("cycloid-test")
	rec := &routing.Recorder{}
	fab.Observe(rec)

	nodes := o.Nodes()
	for i := 0; i < 500; i++ {
		key := randomID(o, rng)
		from := nodes[rng.Intn(len(nodes))]
		op := fab.Begin(routing.OpDiscover, "crash-test")
		route, err := o.LookupOp(op, from, key)
		op.Finish()
		if err != nil {
			t.Fatalf("lookup %v from %s: %v", key, from.Addr, err)
		}
		if failed[route.Root.Addr] {
			t.Fatalf("lookup %v returned dead node %s", key, route.Root.Addr)
		}
		if want, err := o.OwnerOf(key); err != nil || route.Root != want {
			t.Fatalf("lookup %v: root %s, oracle %s (err %v)", key, route.Root.Addr, want.Addr, err)
		}
	}

	detours := 0
	for _, rc := range rec.Records() {
		for _, st := range rc.Path {
			if st.Reason == routing.ReasonDetour {
				detours++
				if failed[st.Addr] {
					t.Fatalf("detour hop landed on dead node %s", st.Addr)
				}
			}
		}
		if got := routing.CostOfPath(rc.Path); got != rc.Cost {
			t.Fatalf("cost %+v disagrees with path-derived %+v", rc.Cost, got)
		}
	}
	if detours == 0 {
		t.Fatal("no detour hops recorded despite 40 unrepaired crashes")
	}
}

// Stabilization rebuilds link sets from live membership, so after a round
// no lookup should need a detour any more.
func TestCrashStabilizeHealsDetours(t *testing.T) {
	o := buildComplete(t, 6)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 24; i++ {
		nodes := o.Nodes()
		if _, err := o.Fail(nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize()

	fab := routing.NewFabric("cycloid-test")
	rec := &routing.Recorder{}
	fab.Observe(rec)
	nodes := o.Nodes()
	for i := 0; i < 300; i++ {
		op := fab.Begin(routing.OpDiscover, "healed")
		if _, err := o.LookupOp(op, nodes[rng.Intn(len(nodes))], randomID(o, rng)); err != nil {
			t.Fatalf("lookup after repair: %v", err)
		}
		op.Finish()
	}
	for _, rc := range rec.Records() {
		for _, st := range rc.Path {
			if st.Reason == routing.ReasonDetour {
				t.Fatalf("detour hop via %s after stabilization", st.Addr)
			}
		}
	}
}
