package cycloid

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"lorm/internal/directory"
	"lorm/internal/resource"
)

func addrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%04d", i)
	}
	return out
}

func buildSparse(t testing.TB, d, n int) *Overlay {
	t.Helper()
	o := MustNew(Config{D: d})
	if err := o.AddBulk(addrs(n)); err != nil {
		t.Fatalf("AddBulk: %v", err)
	}
	return o
}

func buildComplete(t testing.TB, d int) *Overlay {
	t.Helper()
	o := MustNew(Config{D: d})
	if err := o.AddComplete(); err != nil {
		t.Fatalf("AddComplete: %v", err)
	}
	return o
}

func randomID(o *Overlay, rng *rand.Rand) ID {
	return o.IDOf(rng.Uint64() % o.Capacity())
}

func TestNewValidation(t *testing.T) {
	for _, d := range []int{0, 1, 21, -3} {
		if _, err := New(Config{D: d}); err == nil {
			t.Errorf("New(D=%d) should error", d)
		}
	}
	if _, err := New(Config{D: 8}); err != nil {
		t.Errorf("New(D=8): %v", err)
	}
}

func TestPosRoundTrip(t *testing.T) {
	o := MustNew(Config{D: 8})
	for pos := uint64(0); pos < o.Capacity(); pos += 7 {
		id := o.IDOf(pos)
		if id.K < 0 || id.K >= 8 || id.A >= 256 {
			t.Fatalf("IDOf(%d) = %v out of range", pos, id)
		}
		if back := o.Pos(id); back != pos {
			t.Fatalf("Pos(IDOf(%d)) = %d", pos, back)
		}
	}
}

func TestCapacity(t *testing.T) {
	o := MustNew(Config{D: 8})
	if o.Capacity() != 2048 {
		t.Fatalf("Capacity(d=8) = %d, want 2048", o.Capacity())
	}
	if o.D() != 8 {
		t.Fatalf("D() = %d", o.D())
	}
}

func TestAddCompleteFillsEverySlot(t *testing.T) {
	o := buildComplete(t, 6) // 384 nodes
	if o.Size() != 384 {
		t.Fatalf("Size = %d, want 384", o.Size())
	}
	if err := o.AddComplete(); err == nil {
		t.Fatal("second AddComplete should error")
	}
	// Every node owns exactly its own slot.
	for _, n := range o.Nodes() {
		owner, err := o.OwnerOf(n.ID)
		if err != nil || owner != n {
			t.Fatalf("OwnerOf(%v) = %v, %v, want self", n.ID, owner, err)
		}
	}
}

func TestAddBulkCapacityGuard(t *testing.T) {
	o := MustNew(Config{D: 2}) // capacity 8
	if err := o.AddBulk(addrs(8)); err != nil {
		t.Fatalf("filling to capacity: %v", err)
	}
	if err := o.AddBulk([]string{"overflow"}); err == nil {
		t.Fatal("exceeding capacity should error")
	}
	if _, err := o.Join("overflow"); err == nil {
		t.Fatal("join beyond capacity should error")
	}
}

func TestLookupMatchesOracleComplete(t *testing.T) {
	o := buildComplete(t, 6)
	nodes := o.Nodes()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		key := randomID(o, rng)
		from := nodes[rng.Intn(len(nodes))]
		route, err := o.Lookup(from, key)
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		want, _ := o.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("Lookup(%v) = %v, oracle %v", key, route.Root.ID, want.ID)
		}
	}
}

func TestLookupMatchesOracleSparse(t *testing.T) {
	for _, n := range []int{3, 17, 100, 300} {
		o := buildSparse(t, 7, n) // capacity 896, partially populated
		nodes := o.Nodes()
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < 1000; i++ {
			key := randomID(o, rng)
			route, err := o.Lookup(nodes[rng.Intn(len(nodes))], key)
			if err != nil {
				t.Fatalf("n=%d Lookup: %v", n, err)
			}
			want, _ := o.OwnerOf(key)
			if route.Root != want {
				t.Fatalf("n=%d: Lookup(%v) = %v, oracle %v", n, key, route.Root.ID, want.ID)
			}
		}
	}
}

func TestLookupSelfZeroHops(t *testing.T) {
	o := buildComplete(t, 5)
	for _, n := range o.Nodes()[:8] {
		route, err := o.Lookup(n, n.ID)
		if err != nil {
			t.Fatal(err)
		}
		if route.Root != n || route.Hops != 0 {
			t.Fatalf("Lookup(own ID): root %v hops %d", route.Root.ID, route.Hops)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	o := MustNew(Config{D: 4})
	if _, err := o.Lookup(&Node{}, ID{}); err == nil {
		t.Fatal("lookup on empty overlay should error")
	}
	if err := o.AddBulk(addrs(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Lookup(&Node{Pos: 1}, ID{}); err == nil {
		t.Fatal("lookup from non-member should error")
	}
}

// On the complete overlay, path lengths must be O(d): the constant-degree
// routing the paper's Theorem 4.7 relies on (≈ d hops on average).
func TestLookupHopsOrderD(t *testing.T) {
	o := buildComplete(t, 8) // the paper's operating point, 2048 nodes
	nodes := o.Nodes()
	rng := rand.New(rand.NewSource(2))
	total, worst := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		key := randomID(o, rng)
		route, err := o.Lookup(nodes[rng.Intn(len(nodes))], key)
		if err != nil {
			t.Fatal(err)
		}
		total += route.Hops
		if route.Hops > worst {
			worst = route.Hops
		}
	}
	avg := float64(total) / trials
	if avg < 2 || avg > 16 {
		t.Errorf("avg hops = %.2f, want O(d) ≈ 8", avg)
	}
	if worst > 8*8 {
		t.Errorf("worst-case hops = %d, want ≤ 8·d", worst)
	}
	t.Logf("complete d=8 overlay: avg %.2f hops, worst %d", avg, worst)
}

func TestInsertPlacesOnOracleOwner(t *testing.T) {
	o := buildSparse(t, 6, 100)
	nodes := o.Nodes()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		key := randomID(o, rng)
		e := directory.Entry{Key: o.Pos(key), Info: resource.Info{Attr: "cpu", Value: 1, Owner: "o"}}
		if _, err := o.Insert(nodes[rng.Intn(len(nodes))], key, e); err != nil {
			t.Fatal(err)
		}
		want, _ := o.OwnerOf(key)
		if want.Dir.Len() == 0 {
			t.Fatalf("entry for %v not on oracle owner", key)
		}
	}
	total := 0
	for _, sz := range o.DirectorySizes() {
		total += sz
	}
	if total != 500 {
		t.Fatalf("stored %d entries, want 500", total)
	}
}

func TestNextNodeWalksRing(t *testing.T) {
	o := buildSparse(t, 5, 40)
	nodes := o.Nodes()
	cur := nodes[0]
	for i := 1; i <= len(nodes); i++ {
		next, ok := o.NextNode(cur)
		if !ok {
			t.Fatal("NextNode reported singleton")
		}
		want := nodes[i%len(nodes)]
		if next != want {
			t.Fatalf("walk step %d: got %v, want %v", i, next.ID, want.ID)
		}
		cur = next
	}
}

func TestConstantDegree(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{6, 384}, {8, 500}, {8, 2048}} {
		var o *Overlay
		if tc.n == tc.d*(1<<uint(tc.d)) {
			o = buildComplete(t, tc.d)
		} else {
			o = buildSparse(t, tc.d, tc.n)
		}
		for _, c := range o.OutlinkCounts() {
			if c > 7 {
				t.Fatalf("d=%d n=%d: outlink count %d exceeds the constant degree 7", tc.d, tc.n, c)
			}
			if c < 1 {
				t.Fatalf("d=%d n=%d: node with no outlinks", tc.d, tc.n)
			}
		}
	}
}

func TestClusterOf(t *testing.T) {
	o := buildComplete(t, 5)
	cl := o.ClusterOf(3)
	if len(cl) != 5 {
		t.Fatalf("complete cluster size = %d, want 5", len(cl))
	}
	for k, n := range cl {
		if n.ID.K != k || n.ID.A != 3 {
			t.Fatalf("cluster member %d = %v", k, n.ID)
		}
	}
}

func TestNodeNearAndByAddr(t *testing.T) {
	o := buildSparse(t, 6, 50)
	a, err := o.NodeNear("req-1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := o.NodeNear("req-1")
	if a != b {
		t.Fatal("NodeNear not deterministic")
	}
	n, ok := o.NodeByAddr("node-0007")
	if !ok || n.Addr != "node-0007" {
		t.Fatalf("NodeByAddr = %v %v", n, ok)
	}
	if _, ok := o.NodeByAddr("missing"); ok {
		t.Fatal("NodeByAddr should miss")
	}
}

func TestJoinIncrementalMatchesOracle(t *testing.T) {
	o := MustNew(Config{D: 6})
	for i := 0; i < 80; i++ {
		if _, err := o.Join(fmt.Sprintf("node-%04d", i)); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if o.Size() != 80 {
		t.Fatalf("Size = %d, want 80", o.Size())
	}
	o.Stabilize()
	nodes := o.Nodes()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 800; i++ {
		key := randomID(o, rng)
		route, err := o.Lookup(nodes[rng.Intn(len(nodes))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := o.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("Lookup(%v) = %v, oracle %v", key, route.Root.ID, want.ID)
		}
	}
}

func TestJoinKeyHandover(t *testing.T) {
	o := buildSparse(t, 6, 30)
	nodes := o.Nodes()
	rng := rand.New(rand.NewSource(5))
	keys := make([]ID, 300)
	for i := range keys {
		keys[i] = randomID(o, rng)
		e := directory.Entry{Key: o.Pos(keys[i]), Info: resource.Info{Attr: "a", Value: 1, Owner: "o"}}
		if _, err := o.Insert(nodes[0], keys[i], e); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := o.Join(fmt.Sprintf("newcomer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		owner, _ := o.OwnerOf(k)
		found := false
		for _, e := range owner.Dir.Snapshot() {
			if e.Key == o.Pos(k) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %v not on oracle owner after joins", k)
		}
	}
}

func TestLeaveTransfersKeysAndRepairs(t *testing.T) {
	o := buildSparse(t, 6, 40)
	nodes := o.Nodes()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		key := randomID(o, rng)
		e := directory.Entry{Key: o.Pos(key), Info: resource.Info{Attr: "a", Value: 1, Owner: "o"}}
		if _, err := o.Insert(nodes[0], key, e); err != nil {
			t.Fatal(err)
		}
	}
	victim := nodes[11]
	if err := o.Leave(victim); err != nil {
		t.Fatal(err)
	}
	if err := o.Leave(victim); err == nil {
		t.Fatal("double leave should error")
	}
	total := 0
	for _, sz := range o.DirectorySizes() {
		total += sz
	}
	if total != 200 {
		t.Fatalf("entries lost on departure: %d, want 200", total)
	}
	survivors := o.Nodes()
	for i := 0; i < 500; i++ {
		key := randomID(o, rng)
		route, err := o.Lookup(survivors[rng.Intn(len(survivors))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := o.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-leave Lookup(%v) = %v, oracle %v", key, route.Root.ID, want.ID)
		}
	}
}

func TestLeaveLastNodeRefused(t *testing.T) {
	o := MustNew(Config{D: 4})
	n, err := o.Join("only")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Leave(n); err == nil {
		t.Fatal("removing the last node should be refused")
	}
	if _, ok := o.NextNode(n); ok {
		t.Fatal("singleton NextNode should report false")
	}
}

func TestChurnWithStabilization(t *testing.T) {
	o := buildSparse(t, 7, 120)
	rng := rand.New(rand.NewSource(7))
	joined := 120
	for round := 0; round < 40; round++ {
		if _, err := o.Join(fmt.Sprintf("churn-%04d", joined)); err != nil {
			t.Fatalf("round %d join: %v", round, err)
		}
		joined++
		nodes := o.Nodes()
		if err := o.Leave(nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatalf("round %d leave: %v", round, err)
		}
		o.Stabilize()
		nodes = o.Nodes()
		for i := 0; i < 20; i++ {
			key := randomID(o, rng)
			route, err := o.Lookup(nodes[rng.Intn(len(nodes))], key)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			want, _ := o.OwnerOf(key)
			if route.Root != want {
				t.Fatalf("round %d: Lookup(%v) = %v, oracle %v", round, key, route.Root.ID, want.ID)
			}
		}
	}
}

func TestConcurrentLookups(t *testing.T) {
	o := buildComplete(t, 6)
	nodes := o.Nodes()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				key := randomID(o, rng)
				if _, err := o.Lookup(nodes[rng.Intn(len(nodes))], key); err != nil {
					errc <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// Property: routed owner equals oracle owner on random sparse overlays.
func TestLookupOracleProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64, nRaw uint8, keys [6]uint64) bool {
		n := int(nRaw%60) + 2
		o := MustNew(Config{D: 6})
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("p%d-%d", seed, i)
		}
		if err := o.AddBulk(names); err != nil {
			return false
		}
		nodes := o.Nodes()
		for _, raw := range keys {
			key := o.IDOf(raw % o.Capacity())
			route, err := o.Lookup(nodes[int(raw%uint64(len(nodes)))], key)
			if err != nil {
				return false
			}
			want, _ := o.OwnerOf(key)
			if route.Root != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (Proposition 3.1 substrate): the key→owner mapping is monotone
// along the linearized ring, so ranges map to contiguous node runs.
func TestOwnerMonotone(t *testing.T) {
	o := buildSparse(t, 6, 50)
	var prevOwner uint64
	started := false
	firstOwner := uint64(0)
	wraps := 0
	for pos := uint64(0); pos < o.Capacity(); pos++ {
		owner, _ := o.OwnerOf(o.IDOf(pos))
		if !started {
			prevOwner, firstOwner = owner.Pos, owner.Pos
			started = true
			continue
		}
		if owner.Pos != prevOwner {
			// Owner changed: must move strictly forward (allowing one wrap).
			if owner.Pos < prevOwner {
				wraps++
				if wraps > 1 || owner.Pos > firstOwner {
					t.Fatalf("owner mapping not monotone at pos %d: %d -> %d", pos, prevOwner, owner.Pos)
				}
			}
			prevOwner = owner.Pos
		}
	}
}

func BenchmarkLookupComplete2048(b *testing.B) {
	o := buildComplete(b, 8)
	nodes := o.Nodes()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := randomID(o, rng)
		if _, err := o.Lookup(nodes[i%len(nodes)], key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoin(b *testing.B) {
	fresh := func() *Overlay {
		o := MustNew(Config{D: 10}) // capacity 10240
		if err := o.AddBulk(addrs(512)); err != nil {
			b.Fatal(err)
		}
		return o
	}
	o := fresh()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if uint64(o.Size()) >= o.Capacity()/2 {
			b.StopTimer()
			o = fresh() // keep density constant so joins stay comparable
			b.StartTimer()
		}
		if _, err := o.Join(fmt.Sprintf("bench-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Abrupt failures: lookups must still converge to the new oracle owner.
func TestFailAbruptThenLookupsRecover(t *testing.T) {
	o := buildSparse(t, 7, 100)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 15; i++ {
		nodes := o.Nodes()
		if _, err := o.Fail(nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize()
	nodes := o.Nodes()
	if len(nodes) != 85 {
		t.Fatalf("size = %d after 15 failures, want 85", len(nodes))
	}
	for i := 0; i < 400; i++ {
		key := randomID(o, rng)
		route, err := o.Lookup(nodes[rng.Intn(len(nodes))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := o.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-failure Lookup(%v) = %v, oracle %v", key, route.Root.ID, want.ID)
		}
	}
}

func TestFailErrors(t *testing.T) {
	o := MustNew(Config{D: 4})
	n, err := o.Join("only")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Fail(n); err == nil {
		t.Fatal("failing the last node should be refused")
	}
	if _, err := o.Fail(&Node{Pos: 3}); err == nil {
		t.Fatal("failing a non-member should error")
	}
}
