package cycloid

import (
	"math/rand"
	"testing"

	"lorm/internal/directory"
	"lorm/internal/resource"
)

func fillKeys(t *testing.T, o *Overlay, n int, seed int64) []ID {
	t.Helper()
	nodes := o.Nodes()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]ID, n)
	for i := range keys {
		keys[i] = randomID(o, rng)
		e := directory.Entry{Key: o.Pos(keys[i]), Info: resource.Info{Attr: "a", Value: float64(i), Owner: "o"}}
		if _, err := o.Insert(nodes[0], keys[i], e); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func totalStored(o *Overlay) int {
	total := 0
	for _, sz := range o.DirectorySizes() {
		total += sz
	}
	return total
}

func checkPlacement(t *testing.T, o *Overlay, keys []ID) {
	t.Helper()
	for _, k := range keys {
		owner, _ := o.OwnerOf(k)
		found := false
		for _, e := range owner.Dir.Snapshot() {
			if e.Key == o.Pos(k) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %v not on oracle owner after boundary move", k)
		}
	}
}

func TestAdvanceMovesBoundaryAndEntries(t *testing.T) {
	o := buildSparse(t, 6, 40) // capacity 384, plenty of free slots
	keys := fillKeys(t, o, 400, 21)
	nodes := o.Nodes()
	var n *Node
	var newPos uint64
	for _, cand := range nodes {
		next, _ := o.NextNode(cand)
		if gap := o.cwDist(cand.Pos, next.Pos); gap > 1 {
			n = cand
			newPos = (cand.Pos + 1 + gap/2) % o.capacity
			if newPos == next.Pos {
				newPos = (cand.Pos + 1) % o.capacity
			}
			break
		}
	}
	if n == nil {
		t.Fatal("no gap found in sparse overlay")
	}
	before := totalStored(o)
	n2, moved, err := o.Advance(n, newPos)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if n2.Pos != newPos || n2.Addr != n.Addr || n2.ID != o.IDOf(newPos) {
		t.Fatalf("replacement = pos %d id %v addr %s", n2.Pos, n2.ID, n2.Addr)
	}
	if moved < 0 {
		t.Fatalf("moved = %d", moved)
	}
	if got := totalStored(o); got != before {
		t.Fatalf("entries not conserved: %d -> %d", before, got)
	}
	if got, ok := o.NodeByAddr(n.Addr); !ok || got != n2 {
		t.Fatalf("NodeByAddr(%s) = %v, %v, want replacement", n.Addr, got, ok)
	}
	checkPlacement(t, o, keys)
	rng := rand.New(rand.NewSource(22))
	cur := o.Nodes()
	for i := 0; i < 300; i++ {
		key := randomID(o, rng)
		route, err := o.Lookup(cur[rng.Intn(len(cur))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := o.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-advance Lookup(%v) = %v, oracle %v", key, route.Root.ID, want.ID)
		}
	}
}

func TestRetreatMovesBoundaryAndEntries(t *testing.T) {
	o := buildSparse(t, 6, 40)
	keys := fillKeys(t, o, 400, 23)
	nodes := o.Nodes()
	var n *Node
	var newPos uint64
	for _, cand := range nodes {
		predPos := o.oraclePredecessorIn(o.view(), cand.Pos)
		if gap := o.cwDist(predPos, cand.Pos); gap > 1 {
			n = cand
			newPos = (predPos + 1 + (gap-1)/2) % o.capacity
			if newPos == cand.Pos {
				newPos = (predPos + 1) % o.capacity
			}
			break
		}
	}
	if n == nil {
		t.Fatal("no gap found in sparse overlay")
	}
	before := totalStored(o)
	n2, moved, err := o.Retreat(n, newPos)
	if err != nil {
		t.Fatalf("Retreat: %v", err)
	}
	if n2.Pos != newPos || n2.ID != o.IDOf(newPos) {
		t.Fatalf("replacement = pos %d id %v, want pos %d", n2.Pos, n2.ID, newPos)
	}
	if moved < 0 {
		t.Fatalf("moved = %d", moved)
	}
	if got := totalStored(o); got != before {
		t.Fatalf("entries not conserved: %d -> %d", before, got)
	}
	checkPlacement(t, o, keys)
	rng := rand.New(rand.NewSource(24))
	cur := o.Nodes()
	for i := 0; i < 300; i++ {
		key := randomID(o, rng)
		route, err := o.Lookup(cur[rng.Intn(len(cur))], key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := o.OwnerOf(key)
		if route.Root != want {
			t.Fatalf("post-retreat Lookup(%v) = %v, oracle %v", key, route.Root.ID, want.ID)
		}
	}
}

func TestAdvanceRetreatErrors(t *testing.T) {
	o := buildSparse(t, 5, 20)
	nodes := o.Nodes()
	n := nodes[3]
	next, _ := o.NextNode(n)
	predPos := o.oraclePredecessorIn(o.view(), n.Pos)
	if _, _, err := o.Advance(n, next.Pos); err == nil {
		t.Fatal("advance onto successor position should error")
	}
	if _, _, err := o.Advance(n, n.Pos); err == nil {
		t.Fatal("advance to own position should error")
	}
	if _, _, err := o.Advance(n, o.capacity); err == nil {
		t.Fatal("advance out of capacity should error")
	}
	if _, _, err := o.Retreat(n, predPos); err == nil {
		t.Fatal("retreat onto predecessor position should error")
	}
	if _, _, err := o.Retreat(n, n.Pos); err == nil {
		t.Fatal("retreat to own position should error")
	}
	if _, _, err := o.Advance(&Node{Pos: n.Pos, Addr: "ghost"}, n.Pos+1); err == nil {
		t.Fatal("advance of foreign node object should error")
	}
	// On a complete overlay every slot is taken: no move is ever legal.
	oc := buildComplete(t, 4)
	cn := oc.Nodes()[5]
	cnext, _ := oc.NextNode(cn)
	if _, _, err := oc.Advance(cn, cnext.Pos); err == nil {
		t.Fatal("advance on complete overlay should error")
	}
	// Singleton refused.
	os := MustNew(Config{D: 4})
	only, err := os.Join("only")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := os.Advance(only, (only.Pos+1)%os.capacity); err == nil {
		t.Fatal("advance on singleton should error")
	}
	if _, _, err := os.Retreat(only, (only.Pos+os.capacity-1)%os.capacity); err == nil {
		t.Fatal("retreat on singleton should error")
	}
}

func TestBoundaryMoveChurn(t *testing.T) {
	o := buildSparse(t, 6, 30)
	keys := fillKeys(t, o, 300, 25)
	rng := rand.New(rand.NewSource(26))
	moves := 0
	for i := 0; i < 60; i++ {
		nodes := o.Nodes()
		n := nodes[rng.Intn(len(nodes))]
		next, _ := o.NextNode(n)
		gapFwd := o.cwDist(n.Pos, next.Pos)
		if rng.Intn(2) == 0 && gapFwd > 1 {
			if _, _, err := o.Advance(n, (n.Pos+1+rng.Uint64()%(gapFwd-1))%o.capacity); err != nil {
				t.Fatalf("move %d advance: %v", i, err)
			}
			moves++
		} else {
			predPos := o.oraclePredecessorIn(o.view(), n.Pos)
			gapBack := o.cwDist(predPos, n.Pos)
			if gapBack > 1 {
				if _, _, err := o.Retreat(n, (predPos+1+rng.Uint64()%(gapBack-1))%o.capacity); err != nil {
					t.Fatalf("move %d retreat: %v", i, err)
				}
				moves++
			}
		}
	}
	if moves == 0 {
		t.Fatal("no boundary moves exercised")
	}
	if totalStored(o) != 300 {
		t.Fatalf("entries not conserved over %d moves: %d", moves, totalStored(o))
	}
	checkPlacement(t, o, keys)
}
