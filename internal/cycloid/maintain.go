package cycloid

import (
	"fmt"
)

// Join adds one node by protocol: the newcomer hashes itself to a free
// identifier slot, routes to the current owner of that slot through an
// existing node, splices into the leaf sets, takes over the keys it now
// owns, and resolves its constant-size link set. This is Cycloid's
// self-organization path; AddBulk produces the identical converged state.
// The join builds on a private draft and publishes with one pointer swap,
// so concurrent lookups see either the old overlay or the fully spliced
// one.
func (o *Overlay) Join(addr string) (*Node, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("cycloid: empty address")
	}
	d := o.beginDraft()
	id, err := o.idFor(d.s, addr)
	if err != nil {
		return nil, err
	}
	n := &Node{ID: id, Pos: o.Pos(id), Addr: addr}

	if len(d.s.sorted) == 0 {
		d.insert(n)
		o.rebuildNode(d, n)
		o.publish(d)
		return n, nil
	}

	bootstrap := d.s.members[d.s.sorted[0]].node
	route, err := o.lookupOn(d.s, nil, bootstrap, id)
	if err != nil {
		return nil, fmt.Errorf("cycloid: join lookup failed: %w", err)
	}
	succ := route.Root
	d.insert(n)

	// Key handover: entries in (pred(n), n] move from the old owner. The
	// half-open position interval (pred, pos] is the closed key range
	// [pred+1 mod capacity, pos], wrapped when it crosses zero — extracted
	// by binary search on the directory's key-ordered view instead of a
	// full predicate scan.
	pred := o.oraclePredecessorIn(d.s, n.Pos)
	lo := (pred + 1) % o.capacity
	n.Dir.AddAll(succ.Dir.TakeRange(lo, n.Pos, lo > n.Pos))

	// Resolve the newcomer's links and eagerly repair the leaf sets of the
	// immediate neighbors; remaining links converge via Stabilize.
	o.rebuildNode(d, n)
	if p := d.s.members[pred]; p.node != nil {
		o.rebuildNode(d, p.node)
	}
	o.rebuildNode(d, succ)
	o.publish(d)
	return n, nil
}

// Leave removes a node gracefully: its directory entries are handed to the
// node that inherits its sector and the neighbors' leaf sets are repaired
// immediately — Cycloid's self-organization on departure, matching the
// paper's churn model in which stored objects survive.
func (o *Overlay) Leave(n *Node) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	d := o.beginDraft()
	if d.s.members[n.Pos].node != n {
		return fmt.Errorf("cycloid: leave of unknown node %s", n.Addr)
	}
	if len(d.s.sorted) == 1 {
		return fmt.Errorf("cycloid: refusing to remove the last node")
	}
	d.remove(n.Pos)

	heirPos := o.oracleSuccessorIn(d.s, n.Pos)
	heir := d.s.members[heirPos].node
	heir.Dir.AddAll(n.Dir.TakeAll())

	if p := d.s.members[o.oraclePredecessorIn(d.s, n.Pos)]; p.node != nil {
		o.rebuildNode(d, p.node)
	}
	o.rebuildNode(d, heir)
	o.publish(d)
	return nil
}

// Stabilize repairs every node's link set to the converged state the
// protocol's periodic self-organization reaches: leaf sets from current
// membership, cubical and cyclic neighbors re-resolved. Like
// chord.FixFingers it jumps directly to the fixed point rather than
// simulating each probe message; the round rebuilds a draft and publishes
// once, so lookups never see a half-stabilized overlay.
func (o *Overlay) Stabilize() {
	o.mu.Lock()
	defer o.mu.Unlock()
	d := o.beginDraft()
	o.rebuildAll(d)
	o.publish(d)
	mStabilizeRounds.Inc()
}

// Fail removes a node abruptly: no key handover, no leaf-set repair — a
// crash. Lookups keep terminating through alive-checks and oracle
// fallbacks; Stabilize restores the converged link state. Directory
// entries the node held are lost unless replicated by the application.
// Returns the number of entries lost with the node.
func (o *Overlay) Fail(n *Node) (lostEntries int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d := o.beginDraft()
	if d.s.members[n.Pos].node != n {
		return 0, fmt.Errorf("cycloid: fail of unknown node %s", n.Addr)
	}
	if len(d.s.sorted) == 1 {
		return 0, fmt.Errorf("cycloid: refusing to fail the last node")
	}
	d.remove(n.Pos)
	o.publish(d)
	mFailuresDetected.Inc()
	return n.Dir.Len(), nil
}
