// Package cycloid implements the Cycloid overlay network (Shen, Xu, Chen
// [10]): a constant-degree DHT with capacity n = d·2^d nodes emulating a
// cube-connected-cycles graph. Each node carries a two-level identifier
// (k, a): a cyclic index k ∈ [0, d) locating it inside its cluster and a
// cubical index a ∈ [0, 2^d) locating the cluster on the large cycle.
//
// LORM exploits exactly this hierarchy: the cubical index addresses an
// attribute's cluster and the cyclic index addresses a value position
// inside the cluster, so one constant-degree DHT serves multi-attribute
// range discovery.
//
// Identifiers are linearized cluster-major (pos = a·d + k) onto a ring of
// d·2^d positions; a key is owned by the node whose position most closely
// succeeds it, the successor-rule reading of the paper's "closest ID"
// assignment (both produce contiguous per-node sectors and a monotone
// key→owner mapping, the properties Proposition 3.1 needs).
//
// Each node maintains the constant-size link set of the Cycloid paper —
// ring (inside leaf set) predecessor/successor, outside leaf set links to
// the adjacent clusters, one cubical neighbor, and two cyclic neighbors —
// seven links regardless of n, which is the constant maintenance overhead
// Theorem 4.1 compares against Mercury's m·log n.
package cycloid

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"lorm/internal/directory"
	"lorm/internal/hashing"
	"lorm/internal/ring"
)

// ID is a Cycloid identifier: cyclic index K in [0, d), cubical index A in
// [0, 2^d).
type ID struct {
	K int
	A uint64
}

func (id ID) String() string { return fmt.Sprintf("(%d,%d)", id.K, id.A) }

// noLink marks an absent neighbor.
const noLink = ^uint64(0)

// Node is one Cycloid peer. Link fields hold linearized positions and are
// guarded by the owning Overlay's lock (writes under the write lock, reads
// under the read lock). The directory has its own lock.
type Node struct {
	ID   ID
	Pos  uint64
	Addr string
	Dir  directory.Store

	ringPred    uint64 // immediate predecessor on the linearized ring (inside leaf set)
	ringSucc    uint64 // immediate successor on the linearized ring (inside leaf set)
	outsidePred uint64 // last node of the preceding non-empty cluster (outside leaf set)
	outsideSucc uint64 // first node of the succeeding non-empty cluster (outside leaf set)
	cubical     uint64 // owner of (K, A ^ 2^K): the hypercube dimension-K edge
	cyclicPred  uint64 // owner of (K-1 mod d, A-1): descending link, preceding cluster
	cyclicSucc  uint64 // owner of (K-1 mod d, A+1): descending link, succeeding cluster
}

// Config parameterizes an overlay.
type Config struct {
	// D is the Cycloid dimension; capacity is D·2^D nodes. The paper's
	// operating point is D = 8 (capacity 2048).
	D int
	// Salt namespaces node identifiers (parallel overlays in one process).
	Salt string
}

// Overlay is one Cycloid instance.
type Overlay struct {
	d        int
	capacity uint64
	cubes    uint64 // 2^d
	salt     string

	mu     sync.RWMutex
	nodes  map[uint64]*Node // by linearized position
	sorted []uint64         // positions ascending: authoritative membership
}

// New creates an empty overlay of dimension cfg.D.
func New(cfg Config) (*Overlay, error) {
	if cfg.D < 2 || cfg.D > 20 {
		return nil, fmt.Errorf("cycloid: dimension %d out of range [2, 20]", cfg.D)
	}
	cubes := uint64(1) << uint(cfg.D)
	return &Overlay{
		d:        cfg.D,
		capacity: uint64(cfg.D) * cubes,
		cubes:    cubes,
		salt:     cfg.Salt,
		nodes:    make(map[uint64]*Node),
	}, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Overlay {
	o, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return o
}

// D returns the overlay dimension.
func (o *Overlay) D() int { return o.d }

// Capacity returns the maximum node count d·2^d.
func (o *Overlay) Capacity() uint64 { return o.capacity }

// Size returns the current node count.
func (o *Overlay) Size() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.sorted)
}

// Pos linearizes an identifier cluster-major: pos = A·d + K.
func (o *Overlay) Pos(id ID) uint64 {
	return (id.A%o.cubes)*uint64(o.d) + uint64(id.K%o.d)
}

// IDOf unpacks a linearized position.
func (o *Overlay) IDOf(pos uint64) ID {
	pos %= o.capacity
	return ID{K: int(pos % uint64(o.d)), A: pos / uint64(o.d)}
}

// cwDist is the clockwise distance from a to b on the linearized ring.
func (o *Overlay) cwDist(a, b uint64) uint64 {
	return (b + o.capacity - a) % o.capacity
}

// betweenIncl reports whether pos lies in the clockwise half-open interval
// (from, to]; from == to denotes the full ring.
func (o *Overlay) betweenIncl(pos, from, to uint64) bool {
	if pos == to {
		return true
	}
	if from == to {
		return pos != from
	}
	return pos != from && o.cwDist(from, pos) < o.cwDist(from, to)
}

// idFor derives a collision-free identifier for an address, deterministic
// across runs.
func (o *Overlay) idFor(addr string) (ID, error) {
	if uint64(len(o.nodes)) >= o.capacity {
		return ID{}, fmt.Errorf("cycloid: overlay full at capacity %d", o.capacity)
	}
	key := o.salt + "|" + addr
	hashSpace := ring.NewSpace(63)
	for i := 0; ; i++ {
		h := hashing.ConsistentN(hashSpace, key, i)
		pos := h % o.capacity
		if _, taken := o.nodes[pos]; !taken {
			return o.IDOf(pos), nil
		}
	}
}

// insertMember adds a node to authoritative membership (lock held).
func (o *Overlay) insertMember(n *Node) {
	i := sort.Search(len(o.sorted), func(i int) bool { return o.sorted[i] >= n.Pos })
	o.sorted = append(o.sorted, 0)
	copy(o.sorted[i+1:], o.sorted[i:])
	o.sorted[i] = n.Pos
	o.nodes[n.Pos] = n
}

// removeMember drops a node (lock held).
func (o *Overlay) removeMember(pos uint64) {
	i := sort.Search(len(o.sorted), func(i int) bool { return o.sorted[i] >= pos })
	if i < len(o.sorted) && o.sorted[i] == pos {
		o.sorted = append(o.sorted[:i], o.sorted[i+1:]...)
	}
	delete(o.nodes, pos)
}

// oracleSuccessor returns the first member at or after pos, wrapping (lock
// held). This is the ground-truth owner of the key at pos.
func (o *Overlay) oracleSuccessor(pos uint64) uint64 {
	i := sort.Search(len(o.sorted), func(i int) bool { return o.sorted[i] >= pos })
	if i == len(o.sorted) {
		i = 0
	}
	return o.sorted[i]
}

// oraclePredecessor returns the last member strictly before pos (lock held).
func (o *Overlay) oraclePredecessor(pos uint64) uint64 {
	i := sort.Search(len(o.sorted), func(i int) bool { return o.sorted[i] >= pos })
	if i == 0 {
		return o.sorted[len(o.sorted)-1]
	}
	return o.sorted[i-1]
}

// AddBulk hashes and inserts the given addresses and rebuilds every node's
// links from authoritative membership — the fast static-construction path.
func (o *Overlay) AddBulk(addrs []string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, addr := range addrs {
		if addr == "" {
			return fmt.Errorf("cycloid: empty address")
		}
		id, err := o.idFor(addr)
		if err != nil {
			return err
		}
		n := &Node{ID: id, Pos: o.Pos(id), Addr: addr}
		o.insertMember(n)
	}
	o.rebuildAllLocked()
	return nil
}

// AddComplete populates every one of the d·2^d identifier slots, the
// paper's operating point (n = d·2^d = 2048 at d = 8). Addresses are
// generated as cyc-<pos>.
func (o *Overlay) AddComplete() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.sorted) != 0 {
		return fmt.Errorf("cycloid: AddComplete on a non-empty overlay")
	}
	for pos := uint64(0); pos < o.capacity; pos++ {
		id := o.IDOf(pos)
		n := &Node{ID: id, Pos: pos, Addr: fmt.Sprintf("cyc-%05d", pos)}
		o.insertMember(n)
	}
	o.rebuildAllLocked()
	return nil
}

// rebuildAllLocked recomputes links for every node (lock held).
func (o *Overlay) rebuildAllLocked() {
	for _, pos := range o.sorted {
		o.rebuildNodeLocked(o.nodes[pos])
	}
}

// rebuildNodeLocked recomputes one node's seven links from authoritative
// membership (lock held).
func (o *Overlay) rebuildNodeLocked(n *Node) {
	if len(o.sorted) < 2 {
		n.ringPred, n.ringSucc = n.Pos, n.Pos
		n.outsidePred, n.outsideSucc = noLink, noLink
		n.cubical, n.cyclicPred, n.cyclicSucc = noLink, noLink, noLink
		return
	}
	d := uint64(o.d)
	n.ringPred = o.oraclePredecessor(n.Pos)
	n.ringSucc = o.oracleSuccessor((n.Pos + 1) % o.capacity)
	// Outside leaf set: last node before own cluster, first node of the
	// region after it.
	clusterStart := n.ID.A * d
	clusterEnd := (n.ID.A + 1) % o.cubes * d
	n.outsidePred = o.oraclePredecessor(clusterStart)
	n.outsideSucc = o.oracleSuccessor(clusterEnd)
	// Cubical neighbor: flip bit K of the cubical index and step the cyclic
	// index down, the combined flip-and-descend edge of the original paper.
	cub := ID{K: (n.ID.K - 1 + o.d) % o.d, A: n.ID.A ^ (uint64(1) << uint(n.ID.K))}
	n.cubical = o.oracleSuccessor(o.Pos(cub))
	// Cyclic neighbors: cyclic index K-1 in the adjacent clusters.
	km1 := (n.ID.K - 1 + o.d) % o.d
	n.cyclicPred = o.oracleSuccessor(o.Pos(ID{K: km1, A: (n.ID.A + o.cubes - 1) % o.cubes}))
	n.cyclicSucc = o.oracleSuccessor(o.Pos(ID{K: km1, A: (n.ID.A + 1) % o.cubes}))
}

// links returns the node's live link positions (lock held).
func (o *Overlay) linksLocked(n *Node) []uint64 {
	all := [...]uint64{n.ringSucc, n.ringPred, n.cubical, n.cyclicPred, n.cyclicSucc, n.outsidePred, n.outsideSucc}
	out := make([]uint64, 0, len(all))
	for _, p := range all {
		if p == noLink || p == n.Pos {
			continue
		}
		if _, alive := o.nodes[p]; alive {
			out = append(out, p)
		}
	}
	return out
}

// msb returns the index of the highest set bit of x; x must be nonzero.
func msb(x uint64) int { return 63 - bits.LeadingZeros64(x) }

// CwDist exposes the clockwise distance from position a to position b on
// the linearized ring; range walks use it to track their progress through
// key space.
func (o *Overlay) CwDist(a, b uint64) uint64 { return o.cwDist(a, b) }
