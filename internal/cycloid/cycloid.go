// Package cycloid implements the Cycloid overlay network (Shen, Xu, Chen
// [10]): a constant-degree DHT with capacity n = d·2^d nodes emulating a
// cube-connected-cycles graph. Each node carries a two-level identifier
// (k, a): a cyclic index k ∈ [0, d) locating it inside its cluster and a
// cubical index a ∈ [0, 2^d) locating the cluster on the large cycle.
//
// LORM exploits exactly this hierarchy: the cubical index addresses an
// attribute's cluster and the cyclic index addresses a value position
// inside the cluster, so one constant-degree DHT serves multi-attribute
// range discovery.
//
// Identifiers are linearized cluster-major (pos = a·d + k) onto a ring of
// d·2^d positions; a key is owned by the node whose position most closely
// succeeds it, the successor-rule reading of the paper's "closest ID"
// assignment (both produce contiguous per-node sectors and a monotone
// key→owner mapping, the properties Proposition 3.1 needs).
//
// Each node maintains the constant-size link set of the Cycloid paper —
// ring (inside leaf set) predecessor/successor, outside leaf set links to
// the adjacent clusters, one cubical neighbor, and two cyclic neighbors —
// seven links regardless of n, which is the constant maintenance overhead
// Theorem 4.1 compares against Mercury's m·log n.
//
// Concurrency model: identical to chord. Link state lives in immutable
// snapshots behind an atomic pointer; lookups load one snapshot and route
// lock-free over it, writers serialize on a mutex, rebuild state in a
// private draft and publish with a pointer swap.
package cycloid

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"lorm/internal/directory"
	"lorm/internal/discovery"
	"lorm/internal/hashing"
	"lorm/internal/ring"
)

// ID is a Cycloid identifier: cyclic index K in [0, d), cubical index A in
// [0, 2^d).
type ID struct {
	K int
	A uint64
}

func (id ID) String() string { return fmt.Sprintf("(%d,%d)", id.K, id.A) }

// noLink marks an absent neighbor.
const noLink = ^uint64(0)

// Node is one Cycloid peer: stable identity plus its directory. The seven
// links live in the overlay's current snapshot, not on the node, so Node
// pointers stay valid across membership changes and lookups read them
// without locking. The directory has its own lock.
type Node struct {
	ID   ID
	Pos  uint64
	Addr string
	Dir  directory.Store
}

// nodeState is one node's link set inside a snapshot, immutable once the
// snapshot publishes. Writers always rebuild a node's links wholesale, so
// drafts replace entries rather than editing them.
type nodeState struct {
	ringPred    uint64 // immediate predecessor on the linearized ring (inside leaf set)
	ringSucc    uint64 // immediate successor on the linearized ring (inside leaf set)
	outsidePred uint64 // last node of the preceding non-empty cluster (outside leaf set)
	outsideSucc uint64 // first node of the succeeding non-empty cluster (outside leaf set)
	cubical     uint64 // owner of (K, A ^ 2^K): the hypercube dimension-K edge
	cyclicPred  uint64 // owner of (K-1 mod d, A-1): descending link, preceding cluster
	cyclicSucc  uint64 // owner of (K-1 mod d, A+1): descending link, succeeding cluster
}

var emptyState = &nodeState{
	ringPred: noLink, ringSucc: noLink,
	outsidePred: noLink, outsideSucc: noLink,
	cubical: noLink, cyclicPred: noLink, cyclicSucc: noLink,
}

// member pairs a node with its link state so the lookup hot path fetches
// both with a single map access — alive-check, node and state in one probe.
type member struct {
	node  *Node
	state *nodeState
}

// st returns the member's link state, tolerating entries whose state has
// not been built yet (a draft mid-join).
func (m member) st() *nodeState {
	if m.state == nil {
		return emptyState
	}
	return m.state
}

// snapshot is one immutable view of the overlay. The identifier space is
// dense (capacity = d·2^d positions), so membership is a flat slice indexed
// by linearized position — the lookup hot path is pure array indexing, no
// hashing. Cloning it per membership change is one memcpy of
// capacity × 16 bytes (32 KiB at the paper's d = 8).
type snapshot struct {
	members []member // indexed by position; node == nil marks an empty slot
	sorted  []uint64 // positions ascending: authoritative membership
}

// stateOf returns a node's link state in the snapshot, or a no-link state
// for nodes the snapshot no longer contains.
func stateOf(s *snapshot, pos uint64) *nodeState {
	if pos < uint64(len(s.members)) {
		return s.members[pos].st()
	}
	return emptyState
}

func aliveIn(s *snapshot, pos uint64) bool {
	return pos < uint64(len(s.members)) && s.members[pos].node != nil
}

// Config parameterizes an overlay.
type Config struct {
	// D is the Cycloid dimension; capacity is D·2^D nodes. The paper's
	// operating point is D = 8 (capacity 2048).
	D int
	// Salt namespaces node identifiers (parallel overlays in one process).
	Salt string
}

// Overlay is one Cycloid instance.
type Overlay struct {
	d        int
	capacity uint64
	cubes    uint64 // 2^d
	salt     string

	mu   sync.Mutex // serializes writers; lookups never take it
	snap atomic.Pointer[snapshot]

	// reach is the installed network-fault plane (nil box or nil plane:
	// fault-free). Lookups load it once per walk, like the snapshot.
	reach atomic.Pointer[reachBox]
}

// reachBox wraps the Reachability interface value for atomic publication.
type reachBox struct{ r discovery.Reachability }

// SetReachability installs (or, with nil, removes) the network-fault plane
// every subsequent lookup and range walk consults. Maintenance
// (Stabilize) deliberately ignores the plane: it models each side's local
// repair converging after the fault clears.
func (o *Overlay) SetReachability(p discovery.Reachability) {
	o.reach.Store(&reachBox{r: p})
}

// reachOf returns the installed fault plane, nil when routing is fault-free.
func (o *Overlay) reachOf() discovery.Reachability {
	if b := o.reach.Load(); b != nil {
		return b.r
	}
	return nil
}

// unreachable reports that the from-node cannot currently reach the node at
// position `to` under the installed plane.
func unreachable(s *snapshot, reach discovery.Reachability, from *Node, to uint64) bool {
	return reach != nil && !reach.Reachable(from.Addr, s.members[to].node.Addr)
}

// New creates an empty overlay of dimension cfg.D.
func New(cfg Config) (*Overlay, error) {
	if cfg.D < 2 || cfg.D > 20 {
		return nil, fmt.Errorf("cycloid: dimension %d out of range [2, 20]", cfg.D)
	}
	cubes := uint64(1) << uint(cfg.D)
	o := &Overlay{
		d:        cfg.D,
		capacity: uint64(cfg.D) * cubes,
		cubes:    cubes,
		salt:     cfg.Salt,
	}
	o.snap.Store(&snapshot{members: make([]member, o.capacity)})
	return o, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Overlay {
	o, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return o
}

// view returns the current immutable snapshot.
func (o *Overlay) view() *snapshot { return o.snap.Load() }

// D returns the overlay dimension.
func (o *Overlay) D() int { return o.d }

// Capacity returns the maximum node count d·2^d.
func (o *Overlay) Capacity() uint64 { return o.capacity }

// Size returns the current node count.
func (o *Overlay) Size() int { return len(o.view().sorted) }

// Pos linearizes an identifier cluster-major: pos = A·d + K.
func (o *Overlay) Pos(id ID) uint64 {
	return (id.A%o.cubes)*uint64(o.d) + uint64(id.K%o.d)
}

// IDOf unpacks a linearized position.
func (o *Overlay) IDOf(pos uint64) ID {
	pos %= o.capacity
	return ID{K: int(pos % uint64(o.d)), A: pos / uint64(o.d)}
}

// cwDist is the clockwise distance from a to b on the linearized ring.
func (o *Overlay) cwDist(a, b uint64) uint64 {
	return (b + o.capacity - a) % o.capacity
}

// betweenIncl reports whether pos lies in the clockwise half-open interval
// (from, to]; from == to denotes the full ring.
func (o *Overlay) betweenIncl(pos, from, to uint64) bool {
	if pos == to {
		return true
	}
	if from == to {
		return pos != from
	}
	return pos != from && o.cwDist(from, pos) < o.cwDist(from, to)
}

// idFor derives a collision-free identifier for an address, deterministic
// across runs.
func (o *Overlay) idFor(s *snapshot, addr string) (ID, error) {
	if uint64(len(s.sorted)) >= o.capacity {
		return ID{}, fmt.Errorf("cycloid: overlay full at capacity %d", o.capacity)
	}
	key := o.salt + "|" + addr
	hashSpace := ring.NewSpace(63)
	for i := 0; ; i++ {
		h := hashing.ConsistentN(hashSpace, key, i)
		pos := h % o.capacity
		if s.members[pos].node == nil {
			return o.IDOf(pos), nil
		}
	}
}

// draft is a writer's private copy-on-write working view.
type draft struct {
	s *snapshot
}

// beginDraft snapshots the current view into a mutable draft (Overlay.mu
// held). The member slice is a fresh copy; state values are replaced
// (never edited) by rebuildNode, so sharing them with the parent is safe.
func (o *Overlay) beginDraft() *draft {
	cur := o.view()
	s := &snapshot{
		members: append(make([]member, 0, len(cur.members)), cur.members...),
		sorted:  append(make([]uint64, 0, len(cur.sorted)+1), cur.sorted...),
	}
	return &draft{s: s}
}

// insert adds a node to the draft's membership.
func (d *draft) insert(n *Node) {
	i := sort.Search(len(d.s.sorted), func(i int) bool { return d.s.sorted[i] >= n.Pos })
	d.s.sorted = append(d.s.sorted, 0)
	copy(d.s.sorted[i+1:], d.s.sorted[i:])
	d.s.sorted[i] = n.Pos
	d.s.members[n.Pos] = member{node: n}
}

// remove drops a node from the draft's membership and link state.
func (d *draft) remove(pos uint64) {
	i := sort.Search(len(d.s.sorted), func(i int) bool { return d.s.sorted[i] >= pos })
	if i < len(d.s.sorted) && d.s.sorted[i] == pos {
		d.s.sorted = append(d.s.sorted[:i], d.s.sorted[i+1:]...)
	}
	d.s.members[pos] = member{}
}

// setState replaces a member's link state wholesale.
func (d *draft) setState(pos uint64, st *nodeState) {
	m := d.s.members[pos]
	m.state = st
	d.s.members[pos] = m
}

// publish swaps the draft in as the overlay's current snapshot (mu held).
func (o *Overlay) publish(d *draft) {
	o.snap.Store(d.s)
	mSnapshotPublishes.Inc()
}

// oracleSuccessorIn returns the first member at or after pos, wrapping.
// This is the ground-truth owner of the key at pos.
func (o *Overlay) oracleSuccessorIn(s *snapshot, pos uint64) uint64 {
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= pos })
	if i == len(s.sorted) {
		i = 0
	}
	return s.sorted[i]
}

// oraclePredecessorIn returns the last member strictly before pos.
func (o *Overlay) oraclePredecessorIn(s *snapshot, pos uint64) uint64 {
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= pos })
	if i == 0 {
		return s.sorted[len(s.sorted)-1]
	}
	return s.sorted[i-1]
}

// AddBulk hashes and inserts the given addresses and rebuilds every node's
// links from authoritative membership — the fast static-construction path.
func (o *Overlay) AddBulk(addrs []string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	d := o.beginDraft()
	for _, addr := range addrs {
		if addr == "" {
			return fmt.Errorf("cycloid: empty address")
		}
		id, err := o.idFor(d.s, addr)
		if err != nil {
			return err
		}
		d.insert(&Node{ID: id, Pos: o.Pos(id), Addr: addr})
	}
	o.rebuildAll(d)
	o.publish(d)
	return nil
}

// AddComplete populates every one of the d·2^d identifier slots, the
// paper's operating point (n = d·2^d = 2048 at d = 8). Addresses are
// generated as cyc-<pos>.
func (o *Overlay) AddComplete() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	d := o.beginDraft()
	if len(d.s.sorted) != 0 {
		return fmt.Errorf("cycloid: AddComplete on a non-empty overlay")
	}
	for pos := uint64(0); pos < o.capacity; pos++ {
		id := o.IDOf(pos)
		d.insert(&Node{ID: id, Pos: pos, Addr: fmt.Sprintf("cyc-%05d", pos)})
	}
	o.rebuildAll(d)
	o.publish(d)
	return nil
}

// rebuildAll recomputes links for every node in the draft.
func (o *Overlay) rebuildAll(d *draft) {
	for _, pos := range d.s.sorted {
		o.rebuildNode(d, d.s.members[pos].node)
	}
}

// rebuildNode recomputes one node's seven links from the draft's
// membership, replacing its state entry wholesale.
func (o *Overlay) rebuildNode(d *draft, n *Node) {
	mNodeRebuilds.Inc()
	if len(d.s.sorted) < 2 {
		d.setState(n.Pos, &nodeState{
			ringPred: n.Pos, ringSucc: n.Pos,
			outsidePred: noLink, outsideSucc: noLink,
			cubical: noLink, cyclicPred: noLink, cyclicSucc: noLink,
		})
		return
	}
	dd := uint64(o.d)
	st := &nodeState{}
	st.ringPred = o.oraclePredecessorIn(d.s, n.Pos)
	st.ringSucc = o.oracleSuccessorIn(d.s, (n.Pos+1)%o.capacity)
	// Outside leaf set: last node before own cluster, first node of the
	// region after it.
	clusterStart := n.ID.A * dd
	clusterEnd := (n.ID.A + 1) % o.cubes * dd
	st.outsidePred = o.oraclePredecessorIn(d.s, clusterStart)
	st.outsideSucc = o.oracleSuccessorIn(d.s, clusterEnd)
	// Cubical neighbor: flip bit K of the cubical index and step the cyclic
	// index down, the combined flip-and-descend edge of the original paper.
	cub := ID{K: (n.ID.K - 1 + o.d) % o.d, A: n.ID.A ^ (uint64(1) << uint(n.ID.K))}
	st.cubical = o.oracleSuccessorIn(d.s, o.Pos(cub))
	// Cyclic neighbors: cyclic index K-1 in the adjacent clusters.
	km1 := (n.ID.K - 1 + o.d) % o.d
	st.cyclicPred = o.oracleSuccessorIn(d.s, o.Pos(ID{K: km1, A: (n.ID.A + o.cubes - 1) % o.cubes}))
	st.cyclicSucc = o.oracleSuccessorIn(d.s, o.Pos(ID{K: km1, A: (n.ID.A + 1) % o.cubes}))
	d.setState(n.Pos, st)
}

// memberOf resolves a *Node held by a caller to its member entry in the
// given view. Nodes the view no longer contains resolve to a state-less
// member, which routes via oracle fallbacks.
func memberOf(s *snapshot, n *Node) member {
	if n.Pos < uint64(len(s.members)) {
		if m := s.members[n.Pos]; m.node == n {
			return m
		}
	}
	return member{node: n}
}

// linksIn returns the member's live link positions, dead or absent slots
// replaced by noLink. Returning a fixed-size array keeps the per-hop link
// scan allocation-free.
func (o *Overlay) linksIn(s *snapshot, m member) [7]uint64 {
	st := m.st()
	all := [7]uint64{st.ringSucc, st.ringPred, st.cubical, st.cyclicPred, st.cyclicSucc, st.outsidePred, st.outsideSucc}
	for i, p := range all {
		if p == m.node.Pos || !aliveIn(s, p) {
			all[i] = noLink
		}
	}
	return all
}

// linksRawIn returns the member's link positions with only self-links
// masked — dead neighbors stay visible, so the lookup can tell a detour
// (a dead link would have been the preferred hop) from plain greedy
// routing. linksIn is the live-only view for callers that never detour.
func linksRawIn(m member) [7]uint64 {
	st := m.st()
	all := [7]uint64{st.ringSucc, st.ringPred, st.cubical, st.cyclicPred, st.cyclicSucc, st.outsidePred, st.outsideSucc}
	for i, p := range all {
		if p == m.node.Pos {
			all[i] = noLink
		}
	}
	return all
}

// msb returns the index of the highest set bit of x; x must be nonzero.
func msb(x uint64) int { return 63 - bits.LeadingZeros64(x) }

// CwDist exposes the clockwise distance from position a to position b on
// the linearized ring; range walks use it to track their progress through
// key space.
func (o *Overlay) CwDist(a, b uint64) uint64 { return o.cwDist(a, b) }
