package cycloid

import (
	"fmt"
)

// Advance and Retreat move a node's linearized position so a key interval —
// and every directory entry stored under it — changes ownership atomically
// with the membership update. They are the Cycloid counterparts of the
// chord primitives internal/loadbalance migrates items with; see
// internal/chord/rebalance.go for the protocol rationale.
//
// Unlike Chord's 2^bits identifier ring, Cycloid's position space is dense
// (capacity d·2^d), so a move is only possible when a free slot exists in
// the open interval between the node and the neighbor it trades keys with.
// The complete overlay of the paper's operating point (n = d·2^d) has no
// free slots at all — rebalancing a complete LORM deployment is a no-op by
// construction, which the load experiment measures rather than hides.
//
// As in chord, a Node's position is read lock-free by concurrent lookups,
// so the node object is replaced rather than mutated; callers holding the
// old *Node must re-resolve it (NodeByAddr) after a successful call.

// Advance moves node n clockwise to the free slot newPos, strictly between
// n.Pos and its ring successor's position. n takes over the key interval
// (n.Pos, newPos] from the successor; the successor's entries in that
// interval migrate to n. Returns the replacement node object and the number
// of entries that changed node.
func (o *Overlay) Advance(n *Node, newPos uint64) (*Node, int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d := o.beginDraft()
	if !aliveIn(d.s, n.Pos) || d.s.members[n.Pos].node != n {
		return nil, 0, fmt.Errorf("cycloid: advance of unknown node %s", n.Addr)
	}
	if len(d.s.sorted) < 2 {
		return nil, 0, fmt.Errorf("cycloid: advance needs at least 2 nodes")
	}
	succPos := o.oracleSuccessorIn(d.s, (n.Pos+1)%o.capacity)
	if newPos >= o.capacity || newPos == succPos || !o.betweenIncl(newPos, n.Pos, succPos) {
		return nil, 0, fmt.Errorf("cycloid: advance target %d not in (%d, %d)", newPos, n.Pos, succPos)
	}
	succ := d.s.members[succPos].node

	n2 := &Node{ID: o.IDOf(newPos), Pos: newPos, Addr: n.Addr}
	n2.Dir.AddAll(n.Dir.TakeAll())
	lo := (n.Pos + 1) % o.capacity
	moved := succ.Dir.TakeRange(lo, newPos, lo > newPos)
	n2.Dir.AddAll(moved)

	d.remove(n.Pos)
	d.insert(n2)
	o.rebuildAll(d)
	o.publish(d)
	mBoundaryMoves.Inc()
	return n2, len(moved), nil
}

// Retreat moves node n counterclockwise to the free slot newPos, strictly
// between its ring predecessor's position and n.Pos. n gives up the key
// interval (newPos, n.Pos] to its ring successor; its own entries in that
// interval migrate there. Returns the replacement node object and the
// number of entries that changed node.
func (o *Overlay) Retreat(n *Node, newPos uint64) (*Node, int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d := o.beginDraft()
	if !aliveIn(d.s, n.Pos) || d.s.members[n.Pos].node != n {
		return nil, 0, fmt.Errorf("cycloid: retreat of unknown node %s", n.Addr)
	}
	if len(d.s.sorted) < 2 {
		return nil, 0, fmt.Errorf("cycloid: retreat needs at least 2 nodes")
	}
	predPos := o.oraclePredecessorIn(d.s, n.Pos)
	if newPos >= o.capacity || newPos == n.Pos || !o.betweenIncl(newPos, predPos, n.Pos) ||
		aliveIn(d.s, newPos) {
		return nil, 0, fmt.Errorf("cycloid: retreat target %d not in (%d, %d)", newPos, predPos, n.Pos)
	}
	succPos := o.oracleSuccessorIn(d.s, (n.Pos+1)%o.capacity)
	succ := d.s.members[succPos].node

	lo := (newPos + 1) % o.capacity
	moved := n.Dir.TakeRange(lo, n.Pos, lo > n.Pos)
	succ.Dir.AddAll(moved)
	n2 := &Node{ID: o.IDOf(newPos), Pos: newPos, Addr: n.Addr}
	n2.Dir.AddAll(n.Dir.TakeAll())

	d.remove(n.Pos)
	d.insert(n2)
	o.rebuildAll(d)
	o.publish(d)
	mBoundaryMoves.Inc()
	return n2, len(moved), nil
}
