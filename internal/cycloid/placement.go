package cycloid

import "lorm/internal/replication"

// Placement exposes the overlay to the shared replication layer: holders
// are resolved against the current immutable snapshot and the successor
// chain is the overlay's own next-node relation (ring successor link with
// an oracle fallback), so replica placement matches what a range walk
// would route to.
func (o *Overlay) Placement() replication.Placement { return overlayPlacement{o} }

type overlayPlacement struct{ o *Overlay }

func holderFor(n *Node) replication.Holder {
	return replication.Holder{Addr: n.Addr, Pos: n.Pos, Dir: &n.Dir}
}

// Capacity returns the number of linearized positions, d·2^d.
func (p overlayPlacement) Capacity() uint64 { return p.o.capacity }

// HolderAt returns the live node at exactly the given position.
func (p overlayPlacement) HolderAt(pos uint64) (replication.Holder, bool) {
	s := p.o.view()
	if !aliveIn(s, pos) {
		return replication.Holder{}, false
	}
	return holderFor(s.members[pos].node), true
}

// HolderOf returns the ground-truth owner of the key at the given
// linearized position.
func (p overlayPlacement) HolderOf(key uint64) (replication.Holder, bool) {
	s := p.o.view()
	if len(s.sorted) == 0 {
		return replication.Holder{}, false
	}
	return holderFor(s.members[p.o.oracleSuccessorIn(s, key%p.o.capacity)].node), true
}

// SuccessorOf returns the live node following the given position: the
// node's ring-successor link when the position is occupied (NextNode
// semantics), the oracle successor of pos+1 otherwise.
func (p overlayPlacement) SuccessorOf(pos uint64) (replication.Holder, bool) {
	s := p.o.view()
	if len(s.sorted) < 2 {
		return replication.Holder{}, false
	}
	succ := pos
	if aliveIn(s, pos) {
		succ = stateOf(s, pos).ringSucc
	}
	if !aliveIn(s, succ) || succ == pos {
		succ = p.o.oracleSuccessorIn(s, (pos+1)%p.o.capacity)
	}
	if succ == pos {
		return replication.Holder{}, false
	}
	return holderFor(s.members[succ].node), true
}

// HolderRing returns every live node in ascending position order.
func (p overlayPlacement) HolderRing() []replication.Holder {
	s := p.o.view()
	out := make([]replication.Holder, len(s.sorted))
	for i, pos := range s.sorted {
		out[i] = holderFor(s.members[pos].node)
	}
	return out
}
