package cycloid

import (
	"fmt"

	"lorm/internal/directory"
	"lorm/internal/hashing"
	"lorm/internal/ring"
)

// Route is the outcome of one lookup: the node responsible for the key and
// the number of logical hops traversed to reach it.
type Route struct {
	Root *Node
	Hops int
}

// measure is the routing potential: it encodes the ascend/descend/traverse
// phases of cube-connected-cycles routing as a single strictly decreasing
// scalar. Lexicographically it is (cubical XOR to the target, cyclic
// correction distance):
//
//   - While the cubical indices differ (x ≠ 0), progress means either
//     clearing the most significant differing bit (a cubical hop, shrinking
//     x) or moving the cyclic index toward that bit position (ascending or
//     descending inside the cluster, shrinking |K - msb(x)|).
//   - Once in the target cluster (x = 0), progress means closing the
//     circular cyclic distance to the key's cyclic index.
//
// Greedy descent on this measure reproduces the phase algorithm exactly on
// a dense Cycloid and degrades gracefully on sparse ones; when no link
// decreases it (possible when clusters are sparsely populated), routing
// falls back to a clockwise leaf-set walk, which always terminates.
func (o *Overlay) measure(pos uint64, key ID) uint64 {
	id := o.IDOf(pos)
	x := id.A ^ key.A
	width := uint64(2*o.d + 2)
	if x == 0 {
		// Linear (not circular) distance: the linearized leaf set has no
		// intra-cluster wrap link, so circular distance would report
		// progress no link can realize.
		dk := id.K - key.K
		if dk < 0 {
			dk = -dk
		}
		return uint64(dk)
	}
	// Lexicographic (most significant differing bit, cyclic correction
	// distance). Weighting the bit INDEX rather than the numeric XOR value
	// is essential: numeric weighting would reward ±1 cluster crawling via
	// the cyclic links, degenerating into an O(2^d) walk.
	j := msb(x)
	dj := id.K - j
	if dj < 0 {
		dj = -dj
	}
	return uint64(j+1)*width + uint64(dj) + uint64(o.d+1) // +d+1 keeps any x≠0 above every x=0 value
}

// Lookup routes from `from` to the owner of key, counting one logical hop
// per forward. It holds the overlay's read lock for the duration, so
// lookups run concurrently with each other.
func (o *Overlay) Lookup(from *Node, key ID) (Route, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.lookupLocked(from, key)
}

// ErrEmpty mirrors chord.ErrEmpty for the Cycloid overlay.
var ErrEmpty = fmt.Errorf("cycloid: overlay has no nodes")

func (o *Overlay) lookupLocked(from *Node, key ID) (Route, error) {
	if len(o.sorted) == 0 {
		return Route{}, ErrEmpty
	}
	if from == nil || o.nodes[from.Pos] != from {
		return Route{}, fmt.Errorf("cycloid: lookup from a node that is not a live member")
	}
	keyPos := o.Pos(key)
	cur := from
	hops := 0
	maxHops := 8*o.d + len(o.sorted) // phase budget plus a full fallback walk
	fallback := false
	for ; hops <= maxHops; hops++ {
		if o.ownsLocked(cur, keyPos) {
			return Route{Root: cur, Hops: hops}, nil
		}
		var next uint64 = noLink
		if !fallback && hops > 8*o.d {
			// Phase routing has overstayed its O(d) budget (deeply sparse
			// overlay); switch to the always-terminating leaf-set walk.
			fallback = true
		}
		if !fallback {
			cm := o.measure(cur.Pos, key)
			best := cm
			for _, l := range o.linksLocked(cur) {
				if m := o.measure(l, key); m < best {
					best, next = m, l
				}
			}
			if next == noLink {
				fallback = true // no link improves the potential: sparse region
			}
		}
		if fallback {
			// Greedy clockwise descent: any link that strictly shrinks the
			// clockwise distance to the key is progress (no overshooting —
			// wrapped distances are large and lose). The ring successor
			// always qualifies, so the walk cannot stall, and long links
			// skip sparse stretches instead of crawling them node by node.
			cd := o.cwDist(cur.Pos, keyPos)
			best := cd
			for _, l := range o.linksLocked(cur) {
				if d := o.cwDist(l, keyPos); d < best {
					best, next = d, l
				}
			}
			if next == noLink {
				succ := cur.ringSucc
				if _, alive := o.nodes[succ]; !alive || succ == cur.Pos {
					succ = o.oracleSuccessor((cur.Pos + 1) % o.capacity)
				}
				next = succ
			}
		}
		cur = o.nodes[next]
	}
	return Route{}, fmt.Errorf("cycloid: lookup for %v exceeded %d hops", key, maxHops)
}

// ownsLocked reports whether n is the successor-rule owner of keyPos, using
// n's leaf-set knowledge (lock held).
func (o *Overlay) ownsLocked(n *Node, keyPos uint64) bool {
	if len(o.sorted) == 1 {
		return true
	}
	pred := n.ringPred
	if _, alive := o.nodes[pred]; !alive {
		pred = o.oraclePredecessor(n.Pos)
	}
	return o.betweenIncl(keyPos, pred, n.Pos)
}

// Insert stores an entry under key on the responsible node, routing from
// the given start node.
func (o *Overlay) Insert(from *Node, key ID, e directory.Entry) (Route, error) {
	route, err := o.Lookup(from, key)
	if err != nil {
		return Route{}, err
	}
	route.Root.Dir.Add(e)
	return route, nil
}

// NextNode returns the live node immediately following n on the linearized
// ring — the "immediate successor in its own cluster" a LORM range query
// walks to (crossing a cluster boundary when the cluster is exhausted).
// The second return is false when n is the only node.
func (o *Overlay) NextNode(n *Node) (*Node, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(o.sorted) < 2 {
		return n, false
	}
	succ := n.ringSucc
	if _, alive := o.nodes[succ]; !alive || succ == n.Pos {
		succ = o.oracleSuccessor((n.Pos + 1) % o.capacity)
	}
	return o.nodes[succ], true
}

// OwnerOf returns the ground-truth owner of a key (oracle, no routing).
func (o *Overlay) OwnerOf(key ID) (*Node, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(o.sorted) == 0 {
		return nil, ErrEmpty
	}
	return o.nodes[o.oracleSuccessor(o.Pos(key))], nil
}

// NodeNear deterministically picks the live node owning hash(seed), used
// to choose query start nodes.
func (o *Overlay) NodeNear(seed string) (*Node, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(o.sorted) == 0 {
		return nil, ErrEmpty
	}
	h := hashing.Consistent(ring.NewSpace(63), seed) % o.capacity
	return o.nodes[o.oracleSuccessor(h)], nil
}

// NodeByAddr finds a live node by address (O(n), for tests and churn).
func (o *Overlay) NodeByAddr(addr string) (*Node, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, n := range o.nodes {
		if n.Addr == addr {
			return n, true
		}
	}
	return nil, false
}

// Nodes returns all live nodes in ascending position order.
func (o *Overlay) Nodes() []*Node {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]*Node, len(o.sorted))
	for i, pos := range o.sorted {
		out[i] = o.nodes[pos]
	}
	return out
}

// Addrs returns the addresses of all live nodes in position order.
func (o *Overlay) Addrs() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, len(o.sorted))
	for i, pos := range o.sorted {
		out[i] = o.nodes[pos].Addr
	}
	return out
}

// DirectorySizes returns each node's directory size in position order.
func (o *Overlay) DirectorySizes() []int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]int, len(o.sorted))
	for i, pos := range o.sorted {
		out[i] = o.nodes[pos].Dir.Len()
	}
	return out
}

// OutlinkCount returns the number of distinct live neighbors of n — at
// most seven, the constant degree of the overlay.
func (o *Overlay) OutlinkCount(n *Node) int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	distinct := make(map[uint64]bool, 7)
	for _, l := range o.linksLocked(n) {
		distinct[l] = true
	}
	return len(distinct)
}

// OutlinkCounts returns OutlinkCount for every node.
func (o *Overlay) OutlinkCounts() []int {
	nodes := o.Nodes()
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = o.OutlinkCount(n)
	}
	return out
}

// ClusterOf returns the live nodes of cluster a in cyclic-index order, for
// diagnostics and tests.
func (o *Overlay) ClusterOf(a uint64) []*Node {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []*Node
	start := (a % o.cubes) * uint64(o.d)
	for k := uint64(0); k < uint64(o.d); k++ {
		if n, ok := o.nodes[start+k]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Owns reports whether n is responsible for key: the node-local test a
// LORM range walk uses to decide it has reached the end of the queried
// value range within the cluster.
func (o *Overlay) Owns(n *Node, key ID) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.ownsLocked(n, o.Pos(key))
}
