package cycloid

import (
	"errors"
	"fmt"

	"lorm/internal/directory"
	"lorm/internal/hashing"
	"lorm/internal/ring"
	"lorm/internal/routing"
)

// Route is the outcome of one lookup: the node responsible for the key and
// the number of logical hops traversed to reach it.
type Route struct {
	Root *Node
	Hops int
}

// measure is the routing potential: it encodes the ascend/descend/traverse
// phases of cube-connected-cycles routing as a single strictly decreasing
// scalar. Lexicographically it is (cubical XOR to the target, cyclic
// correction distance):
//
//   - While the cubical indices differ (x ≠ 0), progress means either
//     clearing the most significant differing bit (a cubical hop, shrinking
//     x) or moving the cyclic index toward that bit position (ascending or
//     descending inside the cluster, shrinking |K - msb(x)|).
//   - Once in the target cluster (x = 0), progress means closing the
//     circular cyclic distance to the key's cyclic index.
//
// Greedy descent on this measure reproduces the phase algorithm exactly on
// a dense Cycloid and degrades gracefully on sparse ones; when no link
// decreases it (possible when clusters are sparsely populated), routing
// falls back to a clockwise leaf-set walk, which always terminates.
func (o *Overlay) measure(pos uint64, key ID) uint64 {
	id := o.IDOf(pos)
	x := id.A ^ key.A
	width := uint64(2*o.d + 2)
	if x == 0 {
		// Linear (not circular) distance: the linearized leaf set has no
		// intra-cluster wrap link, so circular distance would report
		// progress no link can realize.
		dk := id.K - key.K
		if dk < 0 {
			dk = -dk
		}
		return uint64(dk)
	}
	// Lexicographic (most significant differing bit, cyclic correction
	// distance). Weighting the bit INDEX rather than the numeric XOR value
	// is essential: numeric weighting would reward ±1 cluster crawling via
	// the cyclic links, degenerating into an O(2^d) walk.
	j := msb(x)
	dj := id.K - j
	if dj < 0 {
		dj = -dj
	}
	return uint64(j+1)*width + uint64(dj) + uint64(o.d+1) // +d+1 keeps any x≠0 above every x=0 value
}

// Lookup routes from `from` to the owner of key without accounting;
// overlay tests and internal maintenance use it.
func (o *Overlay) Lookup(from *Node, key ID) (Route, error) {
	return o.LookupOp(nil, from, key)
}

// LookupOp routes from `from` to the owner of key, counting one logical hop
// per forward and recording each forward into op (nil op: count-free
// routing). The walk is lock-free over one immutable snapshot. A node that
// failed before the lookup began is absent from the loaded snapshot, so it
// can never be returned as root; a root that crashes mid-lookup is caught
// by re-validation against a fresh view and the walk retried a bounded
// number of times on the newer snapshot.
func (o *Overlay) LookupOp(op *routing.Op, from *Node, key ID) (Route, error) {
	const attempts = 3
	var (
		route Route
		err   error
	)
	for i := 0; i < attempts; i++ {
		route, err = o.lookupOn(o.view(), op, from, key)
		if err != nil {
			return Route{}, err
		}
		if s := o.view(); route.Root.Pos < uint64(len(s.members)) && s.members[route.Root.Pos].node == route.Root {
			return route, nil
		}
	}
	return route, err
}

// forwardReason classifies one routing forward, counting detour hops: a
// forward is a detour when a dead link offered strictly better progress
// than the hop actually taken — the lookup is routing around a failure.
func forwardReason(detoured bool) routing.Reason {
	if detoured {
		mLookupDetours.Inc()
		return routing.ReasonDetour
	}
	return routing.ReasonFingerForward
}

// ErrEmpty mirrors chord.ErrEmpty for the Cycloid overlay.
var ErrEmpty = fmt.Errorf("cycloid: overlay has no nodes")

// ErrUnreachable marks a lookup that could not cross an injected network
// fault: the next required hop (the ring-successor step the fallback walk
// cannot skip) sits on the far side of a partition or blackhole.
var ErrUnreachable = errors.New("cycloid: next hop unreachable")

func (o *Overlay) lookupOn(s *snapshot, op *routing.Op, from *Node, key ID) (Route, error) {
	if len(s.sorted) == 0 {
		return Route{}, ErrEmpty
	}
	if from == nil {
		return Route{}, fmt.Errorf("cycloid: lookup from a node that is not a live member")
	}
	if from.Pos >= uint64(len(s.members)) {
		return Route{}, fmt.Errorf("cycloid: lookup from a node that is not a live member")
	}
	cur := s.members[from.Pos]
	if cur.node != from {
		return Route{}, fmt.Errorf("cycloid: lookup from a node that is not a live member")
	}
	reach := o.reachOf()
	keyPos := o.Pos(key)
	hops := 0
	maxHops := 8*o.d + len(s.sorted) // phase budget plus a full fallback walk
	fallback := false
	for ; hops <= maxHops; hops++ {
		if o.ownsIn(s, cur, keyPos) {
			return Route{Root: cur.node, Hops: hops}, nil
		}
		var next uint64 = noLink
		detour := false
		if !fallback && hops > 8*o.d {
			// Phase routing has overstayed its O(d) budget (deeply sparse
			// overlay); switch to the always-terminating leaf-set walk.
			fallback = true
		}
		if !fallback {
			cm := o.measure(cur.node.Pos, key)
			// best tracks the chosen live link; deadBest the best progress a
			// dead link would have offered — when the latter wins, the hop
			// actually taken is a detour around that failure. A live link the
			// fault plane has cut off counts as dead: the message would not
			// arrive.
			best, deadBest := cm, cm
			for _, l := range linksRawIn(cur) {
				if l == noLink {
					continue
				}
				m := o.measure(l, key)
				if aliveIn(s, l) && !unreachable(s, reach, cur.node, l) {
					if m < best {
						best, next = m, l
					}
				} else if m < deadBest {
					deadBest = m
				}
			}
			detour = deadBest < best
			if next == noLink {
				fallback = true // no live link improves the potential
			}
		}
		if fallback {
			// Greedy clockwise descent: any link that strictly shrinks the
			// clockwise distance to the key is progress (no overshooting —
			// wrapped distances are large and lose). The ring successor
			// always qualifies, so the walk cannot stall, and long links
			// skip sparse stretches instead of crawling them node by node.
			cd := o.cwDist(cur.node.Pos, keyPos)
			best, deadBest := cd, cd
			for _, l := range linksRawIn(cur) {
				if l == noLink {
					continue
				}
				dist := o.cwDist(l, keyPos)
				if aliveIn(s, l) && !unreachable(s, reach, cur.node, l) {
					if dist < best {
						best, next = dist, l
					}
				} else if dist < deadBest {
					deadBest = dist
				}
			}
			if deadBest < best {
				detour = true
			}
			if next == noLink {
				succ := cur.st().ringSucc
				if !aliveIn(s, succ) || succ == cur.node.Pos {
					if succ != cur.node.Pos && succ != noLink {
						detour = true // ring successor itself is dead
					}
					succ = o.oracleSuccessorIn(s, (cur.node.Pos+1)%o.capacity)
				}
				// The successor step is the one hop correctness cannot route
				// around — if the plane has cut it off, the lookup fails here
				// instead of wandering the far side's positions.
				if unreachable(s, reach, cur.node, succ) {
					mQueryFailures.Inc()
					return Route{}, fmt.Errorf("%w: %s -> %s for key %v",
						ErrUnreachable, cur.node.Addr, s.members[succ].node.Addr, key)
				}
				next = succ
			}
		}
		cur = s.members[next]
		op.Forward(cur.node.Addr, cur.node.Pos, forwardReason(detour))
	}
	mQueryFailures.Inc()
	return Route{}, fmt.Errorf("cycloid: lookup for %v exceeded %d hops", key, maxHops)
}

// ownsIn reports whether m is the successor-rule owner of keyPos, using
// its leaf-set knowledge in the given view.
func (o *Overlay) ownsIn(s *snapshot, m member, keyPos uint64) bool {
	if len(s.sorted) == 1 {
		return true
	}
	pred := m.st().ringPred
	if !aliveIn(s, pred) {
		pred = o.oraclePredecessorIn(s, m.node.Pos)
	}
	return o.betweenIncl(keyPos, pred, m.node.Pos)
}

// Insert stores an entry under key on the responsible node without
// accounting; see InsertOp.
func (o *Overlay) Insert(from *Node, key ID, e directory.Entry) (Route, error) {
	return o.InsertOp(nil, from, key, e)
}

// InsertOp stores an entry under key on the responsible node, routing from
// the given start node and recording the forwards into op.
func (o *Overlay) InsertOp(op *routing.Op, from *Node, key ID, e directory.Entry) (Route, error) {
	route, err := o.LookupOp(op, from, key)
	if err != nil {
		return Route{}, err
	}
	route.Root.Dir.Add(e)
	return route, nil
}

// NextNode returns the live node immediately following n on the linearized
// ring — the "immediate successor in its own cluster" a LORM range query
// walks to (crossing a cluster boundary when the cluster is exhausted).
// The second return is false when n is the only node. Callers record the
// walk step into their own routing.Op.
func (o *Overlay) NextNode(n *Node) (*Node, bool) {
	s := o.view()
	if len(s.sorted) < 2 {
		return n, false
	}
	succ := stateOf(s, n.Pos).ringSucc
	if !aliveIn(s, succ) || succ == n.Pos {
		succ = o.oracleSuccessorIn(s, (n.Pos+1)%o.capacity)
	}
	// An installed fault plane that cuts n off from its successor truncates
	// the walk at the fault boundary; the incomplete result is the caller's
	// (oracle-visible) failure.
	if unreachable(s, o.reachOf(), n, succ) {
		return n, false
	}
	return s.members[succ].node, true
}

// OwnerOf returns the ground-truth owner of a key (oracle, no routing).
func (o *Overlay) OwnerOf(key ID) (*Node, error) {
	s := o.view()
	if len(s.sorted) == 0 {
		return nil, ErrEmpty
	}
	return s.members[o.oracleSuccessorIn(s, o.Pos(key))].node, nil
}

// NodeNear deterministically picks the live node owning hash(seed), used
// to choose query start nodes.
func (o *Overlay) NodeNear(seed string) (*Node, error) {
	s := o.view()
	if len(s.sorted) == 0 {
		return nil, ErrEmpty
	}
	h := hashing.Consistent(ring.NewSpace(63), seed) % o.capacity
	return s.members[o.oracleSuccessorIn(s, h)].node, nil
}

// NodeByAddr finds a live node by address (O(n), for tests and churn).
func (o *Overlay) NodeByAddr(addr string) (*Node, bool) {
	for _, m := range o.view().members {
		if m.node != nil && m.node.Addr == addr {
			return m.node, true
		}
	}
	return nil, false
}

// Nodes returns all live nodes in ascending position order.
func (o *Overlay) Nodes() []*Node {
	s := o.view()
	out := make([]*Node, len(s.sorted))
	for i, pos := range s.sorted {
		out[i] = s.members[pos].node
	}
	return out
}

// Addrs returns the addresses of all live nodes in position order.
func (o *Overlay) Addrs() []string {
	s := o.view()
	out := make([]string, len(s.sorted))
	for i, pos := range s.sorted {
		out[i] = s.members[pos].node.Addr
	}
	return out
}

// DirectorySizes returns each node's directory size in position order.
func (o *Overlay) DirectorySizes() []int {
	s := o.view()
	out := make([]int, len(s.sorted))
	for i, pos := range s.sorted {
		out[i] = s.members[pos].node.Dir.Len()
	}
	return out
}

// OutlinkCount returns the number of distinct live neighbors of n — at
// most seven, the constant degree of the overlay.
func (o *Overlay) OutlinkCount(n *Node) int {
	s := o.view()
	distinct := make(map[uint64]bool, 7)
	for _, l := range o.linksIn(s, memberOf(s, n)) {
		if l != noLink {
			distinct[l] = true
		}
	}
	return len(distinct)
}

// OutlinkCounts returns OutlinkCount for every node.
func (o *Overlay) OutlinkCounts() []int {
	nodes := o.Nodes()
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = o.OutlinkCount(n)
	}
	return out
}

// ClusterOf returns the live nodes of cluster a in cyclic-index order, for
// diagnostics and tests.
func (o *Overlay) ClusterOf(a uint64) []*Node {
	s := o.view()
	var out []*Node
	start := (a % o.cubes) * uint64(o.d)
	for k := uint64(0); k < uint64(o.d); k++ {
		if m := s.members[start+k]; m.node != nil {
			out = append(out, m.node)
		}
	}
	return out
}

// Owns reports whether n is responsible for key: the node-local test a
// LORM range walk uses to decide it has reached the end of the queried
// value range within the cluster.
func (o *Overlay) Owns(n *Node, key ID) bool {
	s := o.view()
	return o.ownsIn(s, memberOf(s, n), o.Pos(key))
}
