package art

import (
	"lorm/internal/discovery"
	"lorm/internal/replication"
)

var _ discovery.Replicated = (*System)(nil)

// ART stores each piece once, under its value key, so one unfiltered
// replicator over the ring's Placement protects everything: a key's
// holders are its bucket root plus ring successors.

// SetReplicas configures the replication factor (minimum 1 =
// unreplicated). It affects subsequent Register calls; call Repair to
// bring previously stored entries up to the new factor.
func (s *System) SetReplicas(r int) error { return s.rep.SetFactor(r) }

// Replicas returns the configured replication factor.
func (s *System) Replicas() int { return s.rep.Factor() }

// Repair restores the replica invariant across all buckets. Idempotent.
func (s *System) Repair() (added, removed int) { return s.rep.Repair() }

// PromoteHot promotes the hottest key-groups by observed visit traffic.
func (s *System) PromoteHot(visits []discovery.NodeLoad, opts replication.HotKeyOptions) int {
	return s.rep.PromoteHot(visits, opts)
}

// Replicator exposes the replication layer, for experiments and tests.
func (s *System) Replicator() *replication.Replicator { return s.rep }
