package art

import (
	"lorm/internal/discovery"
	"lorm/internal/loadbalance"
)

var _ discovery.Balancer = (*System)(nil)

var _ discovery.Traced = (*System)(nil)

// DirectoryLoads implements discovery.Balancer: per-node bucket sizes in
// ring order.
func (s *System) DirectoryLoads() []discovery.NodeLoad {
	nodes := s.ring.Nodes()
	out := make([]discovery.NodeLoad, len(nodes))
	for i, n := range nodes {
		out[i] = discovery.NodeLoad{Addr: n.Addr, Entries: n.Dir.Len()}
	}
	return out
}

// Rebalance implements discovery.Balancer. ART spreads value-keyed entries
// like LORM's value index, so the ID-shift planner applies unchanged;
// boundary moves replace node objects, so the trie view is rebuilt
// afterwards — descent tables would otherwise point at retired nodes and
// every route would fall back.
func (s *System) Rebalance() (discovery.MigrationStats, error) {
	stats := loadbalance.RebalanceChord(s.ring, loadbalance.Options{})
	s.rebuildView()
	return stats, nil
}
