package art

import (
	"fmt"
	"testing"

	"lorm/internal/routing"
)

// FuzzGeometry checks the trie partition invariants for arbitrary
// identifier widths and key pairs: level widths tile the bit space,
// sharedDepth is symmetric and consistent with childLo, and the full-depth
// cluster of a key is the key itself.
func FuzzGeometry(f *testing.F) {
	f.Add(uint(18), uint64(0x2F00F), uint64(0x2F3FF))
	f.Add(uint(20), uint64(0), uint64(1)<<19)
	f.Add(uint(1), uint64(1), uint64(0))
	f.Add(uint(63), uint64(1)<<62, uint64(1)<<62-1)
	f.Fuzz(func(t *testing.T, bits uint, a, b uint64) {
		bits = bits%63 + 1
		mask := uint64(1)<<bits - 1
		a, b = a&mask, b&mask
		g := newGeometry(bits)
		var sum uint
		for _, w := range g.widths {
			if w == 0 || w > 8 {
				t.Fatalf("bits=%d widths=%v", bits, g.widths)
			}
			sum += w
		}
		if sum != bits || g.cum[g.levels()] != bits {
			t.Fatalf("bits=%d widths=%v cum=%v", bits, g.widths, g.cum)
		}
		d := g.sharedDepth(a, b)
		if d != g.sharedDepth(b, a) {
			t.Fatalf("sharedDepth not symmetric: %d vs %d", d, g.sharedDepth(b, a))
		}
		if g.childLo(a, d) != g.childLo(b, d) {
			t.Fatalf("depth-%d clusters differ: %#x vs %#x", d, g.childLo(a, d), g.childLo(b, d))
		}
		if d < g.levels() && g.childLo(a, d+1) == g.childLo(b, d+1) {
			t.Fatalf("sharedDepth %d not maximal for %#x/%#x", d, a, b)
		}
		if g.childLo(a, g.levels()) != a {
			t.Fatalf("full-depth cluster of %#x is %#x", a, g.childLo(a, g.levels()))
		}
		for tt := 1; tt <= g.levels(); tt++ {
			if lo := g.childLo(a, tt); lo > a {
				t.Fatalf("childLo(%#x, %d) = %#x above the key", a, tt, lo)
			}
		}
	})
}

// FuzzDescent drives the trie-descent and bucket-split codepaths: a small
// deployment routes an arbitrary key from an arbitrary start node — with
// and without an interleaved join (the split path) — and must always
// resolve to the fresh-view owner of the key.
func FuzzDescent(f *testing.F) {
	f.Add(uint8(12), uint64(0), false)
	f.Add(uint8(40), uint64(1)<<17, true)
	f.Add(uint8(3), uint64(123456), true)
	f.Fuzz(func(t *testing.T, n uint8, key uint64, join bool) {
		size := int(n)%48 + 2
		s, err := New(Config{Bits: 18, Schema: testSchema()})
		if err != nil {
			t.Fatal(err)
		}
		addrs := make([]string, size)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("node-%04d", i)
		}
		if err := s.AddNodes(addrs); err != nil {
			t.Fatal(err)
		}
		if join {
			// The joiner splits its successor's bucket and stays invisible
			// to the descent until the next rebuild.
			if err := s.AddNode(fmt.Sprintf("joiner-%d", key%7)); err != nil {
				t.Fatal(err)
			}
		}
		key &= uint64(1)<<18 - 1
		from := s.ring.Nodes()[int(key)%s.ring.Size()]
		op := s.fabric.Begin(routing.OpDiscover, "fuzz")
		got, err := s.route(op, from, key)
		cost := op.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !s.ring.Owns(got, key) {
			t.Fatalf("route(%d) = %s, does not own the key", key, got.Addr)
		}
		if cost.Messages != cost.Hops+cost.Visited {
			t.Fatalf("cost invariant broken: %+v", cost)
		}
	})
}
