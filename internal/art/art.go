// Package art implements ART (Sioutas et al.), the fifth system of the
// comparison and the only one off the paper's O(log n) frontier: a
// decentralized trie (LRT-style) over the attribute value space with
// sub-logarithmic range-query routing.
//
// The identifier ring is partitioned into a fixed trie: level t splits the
// space into clusters sharing their top cum[t] bits, with level widths
// doubling from 2 (capped at 8), so the trie bottoms out in O(log_b log K)
// levels. Every cluster has a representative — the ring successor of the
// cluster's low bound — and each node conceptually keeps, per level of its
// own root-to-leaf path, lateral links to the representatives of the
// sibling clusters. Routing a key descends the trie: each hop jumps to the
// representative of the next-deeper cluster containing the key, so a
// lookup takes at most L = O(log log K) trie hops instead of Chord's
// O(log n) finger halvings. Lateral ring successor links then resolve
// ranges exactly like the other value-spreading systems: walk successors
// until the queried key interval is covered.
//
// The descent routes over a deliberately STALE membership snapshot,
// rebuilt only on bulk population, Maintain and rebalance — exactly the
// currency a real trie's cached representative links would have. Every hop
// is validated against fresh membership (liveness and reachability) and
// ownership is confirmed at the terminal node; any staleness — a dead
// representative, a post-join ownership move, a post-rebalance boundary
// shift — falls back to the underlying Chord lookup, which handles
// detours, unreachability and crashed-root retries honestly. Trie-descent
// hops are recorded with routing.ReasonTrieDescent ('t' in trace lines),
// so Messages = Hops + Visited holds by construction and the
// sub-logarithmic hop count is visible per-reason in metrics and traces.
//
// Value placement uses per-attribute sectors: attribute i of m owns the
// contiguous key sector [i/m, (i+1)/m) of the ring and a value maps into
// the sector by its distribution quantile. Order is preserved within every
// attribute — the property range walks need — while attributes spread over
// disjoint sectors instead of interleaving over the whole ring.
package art

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sync/atomic"

	"lorm/internal/chord"
	"lorm/internal/directory"
	"lorm/internal/discovery"
	"lorm/internal/replication"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// Config parameterizes an ART deployment.
type Config struct {
	// Bits is the identifier width of the underlying ring (default 20).
	Bits uint
	// SuccListLen is the successor-list length.
	SuccListLen int
	// Schema is the globally known attribute set.
	Schema *resource.Schema
	// Logger, when non-nil, receives structured replication lifecycle
	// events (hot-key promotion/demotion) at Debug level.
	Logger *slog.Logger
	// FingerRng, when non-nil, enables ReCord-style randomized finger
	// selection on the fallback ring (see chord.Config.FingerRng). The trie
	// descent itself uses no fingers; the setting only affects lookups that
	// fall back.
	FingerRng *rand.Rand
}

// System is an ART deployment: a trie-descent router layered over one
// Chord ring, which provides membership, value buckets (per-node
// directories), successor links for range walks, crash semantics and
// replica placement.
type System struct {
	schema *resource.Schema
	ring   *chord.Ring
	fabric *routing.Fabric
	rep    *replication.Replicator
	geo    trieGeometry

	// view is the stale membership snapshot the trie descent routes over;
	// refreshed by rebuilds only, never by individual joins or crashes.
	view atomic.Pointer[trieView]
}

var (
	_ discovery.System     = (*System)(nil)
	_ discovery.Dynamic    = (*System)(nil)
	_ discovery.Crashable  = (*System)(nil)
	_ routing.Instrumented = (*System)(nil)
)

// New creates an empty ART system.
func New(cfg Config) (*System, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("art: config needs a schema")
	}
	r := chord.New(chord.Config{Bits: cfg.Bits, SuccListLen: cfg.SuccListLen, Salt: "art", FingerRng: cfg.FingerRng})
	s := &System{
		schema: cfg.Schema,
		ring:   r,
		fabric: routing.NewFabric("art"),
		geo:    newGeometry(r.Space().Bits()),
	}
	s.rep = replication.NewReplicator(r.Placement(), replication.WithLogger(cfg.Logger))
	return s, nil
}

// RoutingFabric implements routing.Instrumented.
func (s *System) RoutingFabric() *routing.Fabric { return s.fabric }

// AddNodes bulk-populates the ring and rebuilds the trie view.
func (s *System) AddNodes(addrs []string) error {
	if err := s.ring.AddBulk(addrs); err != nil {
		return err
	}
	s.rebuildView()
	return nil
}

// Ring exposes the underlying Chord ring for experiments and tests.
func (s *System) Ring() *chord.Ring { return s.ring }

// Geometry describes the trie levels, for tests and diagnostics: the
// per-level prefix widths in bits.
func (s *System) Geometry() []uint { return append([]uint(nil), s.geo.widths...) }

// rebuildView publishes a fresh trie membership snapshot.
func (s *System) rebuildView() {
	s.view.Store(&trieView{nodes: s.ring.Nodes()})
	mTrieRebuilds.Inc()
}

// Name implements discovery.System.
func (s *System) Name() string { return "art" }

// Schema implements discovery.System.
func (s *System) Schema() *resource.Schema { return s.schema }

// NodeCount implements discovery.System.
func (s *System) NodeCount() int { return s.ring.Size() }

// valueKey maps an attribute value into the attribute's key sector:
// attribute i of m owns [i/m, (i+1)/m) of the ring and the value lands at
// its distribution quantile within the sector. Monotone per attribute, so
// a value range is a contiguous (never wrapping) key interval.
func (s *System) valueKey(idx int, v float64) uint64 {
	m := s.schema.Len()
	f := (float64(idx) + s.schema.At(idx).Frac(v)) / float64(m)
	return s.ring.Space().Scale(f)
}

// route resolves the bucket node responsible for key: trie descent over the
// stale view, each hop validated against fresh membership, with the ring
// lookup as the staleness fallback. It returns a node that owned key in a
// fresh view at resolution time.
func (s *System) route(op *routing.Op, from *chord.Node, key uint64) (*chord.Node, error) {
	cur := from
	if view := s.view.Load(); view != nil {
		// The descent deepens the shared prefix by at least one level per
		// hop, so levels()+1 iterations suffice; anything longer means the
		// view is stale and the fallback finishes the job.
		for i := 0; i <= s.geo.levels(); i++ {
			if s.ring.Alive(cur) && s.ring.Owns(cur, key) {
				return cur, nil
			}
			d := s.geo.sharedDepth(cur.ID, key)
			if d >= s.geo.levels() {
				break
			}
			rep := view.successor(s.geo.childLo(key, d+1))
			if rep == nil || rep.ID == cur.ID || !s.ring.Alive(rep) || !s.ring.Reachable(cur, rep) {
				break
			}
			op.Forward(rep.Addr, rep.ID, routing.ReasonTrieDescent)
			mDescentSteps.Inc()
			cur = rep
		}
	}
	// Stale view could not complete the descent (dead representative,
	// moved ownership, or an empty/unbuilt view): the Chord lookup finishes
	// honestly, with detour accounting and crashed-root retries.
	mDescentFallbacks.Inc()
	if !s.ring.Alive(cur) {
		cur = from
	}
	route, err := s.ring.LookupOp(op, cur, key)
	if err != nil {
		return nil, err
	}
	return route.Root, nil
}

// Register implements discovery.System: one trie-routed insert under the
// value key, plus replica placement.
func (s *System) Register(info resource.Info) (discovery.Cost, error) {
	return s.RegisterTraced(info, discovery.TraceContext{})
}

// RegisterTraced implements discovery.Traced: Register parented under the
// caller's trace context.
func (s *System) RegisterTraced(info resource.Info, tc discovery.TraceContext) (cost discovery.Cost, err error) {
	idx := s.schema.Index(info.Attr)
	if idx < 0 {
		return cost, fmt.Errorf("art: unknown attribute %q", info.Attr)
	}
	from, err := s.ring.NodeNear(info.Owner)
	if err != nil {
		return cost, err
	}
	op := s.fabric.BeginTraced(routing.OpRegister, info.Owner, tc)
	key := s.valueKey(idx, info.Value)
	e := directory.Entry{Key: key, Info: info}
	owner, err := s.route(op, from, key)
	if err != nil {
		op.Finish()
		return cost, err
	}
	owner.Dir.Add(e)
	// Crash protection replicates the bucket entry onto the root's ring
	// successors (and invalidates any hot promotion of the key-group).
	s.rep.Place(op, owner.ID, e)
	return op.Finish(), nil
}

// Discover implements discovery.System: every sub-query descends the trie
// to the low end of its key interval and, for ranges, walks lateral
// successor links until the interval is covered.
func (s *System) Discover(q resource.Query) (*discovery.Result, error) {
	return s.DiscoverTraced(q, discovery.TraceContext{})
}

// DiscoverTraced implements discovery.Traced: Discover parented under the
// caller's trace context.
func (s *System) DiscoverTraced(q resource.Query, tc discovery.TraceContext) (*discovery.Result, error) {
	if err := q.Validate(s.schema); err != nil {
		return nil, err
	}
	op := s.fabric.BeginTraced(routing.OpDiscover, q.Requester, tc)
	defer op.Finish()
	res, err := discovery.RunSubs(q, func(sub resource.SubQuery) ([]resource.Info, error) {
		return s.resolveSub(op, q.Requester, sub)
	})
	if err != nil {
		return nil, err
	}
	res.Cost = op.Cost()
	return res, nil
}

func (s *System) resolveSub(op *routing.Op, requester string, sub resource.SubQuery) ([]resource.Info, error) {
	idx := s.schema.Index(sub.Attr)
	from, err := s.ring.NodeNear(requester)
	if err != nil {
		return nil, err
	}

	// Dedupe across replica holders (copies agree on owner and value);
	// scratch is reused across nodes so each bucket match is
	// allocation-free.
	seen := make(map[string]bool)
	var matches, scratch []resource.Info
	collect := func(n *chord.Node) {
		scratch = n.Dir.MatchAppend(scratch[:0], sub.Attr, sub.Low, sub.High)
		for _, in := range scratch {
			if k := in.Owner + "\x00" + fmt.Sprint(in.Value); !seen[k] {
				seen[k] = true
				matches = append(matches, in)
			}
		}
	}

	loKey := s.valueKey(idx, sub.Low)
	hiKey := s.valueKey(idx, sub.High)
	// An exact sub-query on a hot-promoted key-group reads replica-aware:
	// descend to the chosen holder, probe the loser power-of-two style.
	if loKey == hiKey {
		if plan, ok := s.rep.PlanRead(loKey); ok {
			n, err := s.route(op, from, plan.Target.Pos)
			if err != nil {
				return nil, err
			}
			op.Visit(n.Addr, n.ID)
			op.Forward(plan.Probe.Addr, plan.Probe.Pos, routing.ReasonReplicaRead)
			collect(n)
			return matches, nil
		}
	}
	root, err := s.route(op, from, loKey)
	if err != nil {
		return nil, err
	}
	op.Visit(root.Addr, root.ID)
	cur := root
	collect(cur)
	// Lateral range walk along successor links, terminating on cumulative
	// progress: the sector mapping keeps [loKey, hiKey] contiguous, so the
	// walk covers exactly the buckets of the queried value interval.
	space := s.ring.Space()
	target := space.Clockwise(loKey, hiKey)
	covered := space.Clockwise(loKey, cur.ID)
	for covered < target {
		next, ok := s.ring.NextNode(cur)
		if !ok || next == root {
			break // fault boundary or full circle: every bucket consulted
		}
		covered += space.Clockwise(cur.ID, next.ID)
		cur = next
		op.Forward(cur.Addr, cur.ID, routing.ReasonRangeWalk)
		op.Visit(cur.Addr, cur.ID)
		collect(cur)
	}
	return matches, nil
}

// DirectorySizes implements discovery.System: per-node bucket sizes.
func (s *System) DirectorySizes() []int { return s.ring.DirectorySizes() }

// OutlinkCounts implements discovery.System: the conceptual trie routing
// state per node — for every level of the node's own root-to-leaf path,
// the distinct live representatives of the sibling clusters at that level.
// This is the structure-maintenance overhead ART trades for its
// sub-logarithmic hops, measured the same way the other systems count
// fingers and hub links.
func (s *System) OutlinkCounts() []int {
	view := s.view.Load()
	nodes := s.ring.Nodes()
	out := make([]int, len(nodes))
	if view == nil {
		return out
	}
	for i, n := range nodes {
		distinct := make(map[uint64]bool)
		for t := 1; t <= s.geo.levels(); t++ {
			// Sibling clusters at level t share the node's depth-(t-1)
			// prefix and enumerate all 2^width values of the level-t bits.
			base := s.geo.childLo(n.ID, t-1)
			shift := s.geo.bits - s.geo.cum[t]
			for c := uint64(0); c < uint64(1)<<s.geo.widths[t-1]; c++ {
				rep := view.successor(base | c<<shift)
				if rep != nil && rep.ID != n.ID && s.ring.Alive(rep) {
					distinct[rep.ID] = true
				}
			}
		}
		out[i] = len(distinct)
	}
	return out
}

// AddNode implements discovery.Dynamic: a protocol join on the ring. The
// newcomer splits the bucket of its successor — the ring hands over the key
// interval the new node now owns — but stays invisible to the trie descent
// until the next Maintain rebuilds the view, exactly like a real trie's
// cached representative links.
func (s *System) AddNode(addr string) error {
	n, err := s.ring.Join(addr)
	if err != nil {
		return err
	}
	if n.Dir.Len() > 0 {
		// The join handed over a non-empty key interval: one bucket split,
		// executed as one handover. The decision site and the execution
		// site count separately and metricscheck -art asserts they agree.
		mBucketSplits.Inc()
		mBucketHandovers.Inc()
	}
	return nil
}

// RemoveNode implements discovery.Dynamic: a graceful leave; the departing
// node's bucket merges into its successor's.
func (s *System) RemoveNode(addr string) error {
	n, ok := s.ring.NodeByAddr(addr)
	if !ok {
		return fmt.Errorf("art: no node with address %q", addr)
	}
	return s.ring.Leave(n)
}

// FailNode implements discovery.Crashable: the node vanishes abruptly with
// its bucket. The trie view still lists it — descent hops detect the dead
// representative against fresh membership and fall back — until Maintain
// rebuilds.
func (s *System) FailNode(addr string) (lostEntries int, err error) {
	n, ok := s.ring.NodeByAddr(addr)
	if !ok {
		return 0, fmt.Errorf("art: no node with address %q", addr)
	}
	return s.ring.Fail(n)
}

// NodeAddrs implements discovery.Dynamic.
func (s *System) NodeAddrs() []string { return s.ring.Addrs() }

// Maintain implements discovery.Dynamic: one ring stabilization round,
// replica repair when replicas are in play, and a trie view rebuild — the
// point where joins and failures become visible to the descent.
func (s *System) Maintain() {
	s.ring.Stabilize()
	s.ring.FixFingers(0)
	if s.rep.Active() {
		s.rep.Repair()
	}
	s.rebuildView()
}
