package art

import "lorm/internal/metrics"

// ART-specific counters on the default registry. cmd/metricscheck -art
// cross-checks them against the shared op metrics: descent steps must equal
// the trie-descent step series and never exceed total hops, and every
// bucket split must execute as exactly one handover.
var (
	mDescentSteps = metrics.Default().Counter("art_descent_steps_total",
		"trie-descent forwards taken by ART routing")
	mDescentFallbacks = metrics.Default().Counter("art_descent_fallbacks_total",
		"ART routes completed by the ring lookup after a stale or exhausted descent")
	mTrieRebuilds = metrics.Default().Counter("art_trie_rebuilds_total",
		"trie view rebuilds (bulk add, Maintain, rebalance)")
	mBucketSplits = metrics.Default().Counter("art_bucket_splits_total",
		"value buckets split by a node join")
	mBucketHandovers = metrics.Default().Counter("art_bucket_handovers_total",
		"bucket handovers executed for splits")
)
