package art

import (
	"sort"

	"lorm/internal/chord"
)

// trieGeometry is the static shape of the decentralized trie over the
// identifier space: a fixed partition of the Bits-bit key into level
// prefixes. A depth-t cluster is the set of identifiers sharing their top
// cum[t] bits; level t splits every depth-(t-1) cluster into 2^width[t-1]
// children. Widths double from 2 and cap at 8 — the LRT recipe — so the
// trie reaches single-node clusters in O(log_b log K) levels for a key
// space of K identifiers, which is what makes the descent sub-logarithmic
// in n.
type trieGeometry struct {
	bits   uint
	widths []uint // per-level prefix widths, widths[0] is level 1
	cum    []uint // cum[t] = bits fixed by depth t; cum[0]=0, cum[L]=bits
}

// newGeometry partitions a Bits-bit identifier into doubling level widths.
func newGeometry(bits uint) trieGeometry {
	g := trieGeometry{bits: bits, cum: []uint{0}}
	w, rem := uint(2), bits
	for rem > 0 {
		if w > 8 {
			w = 8
		}
		if w > rem {
			w = rem
		}
		g.widths = append(g.widths, w)
		rem -= w
		g.cum = append(g.cum, bits-rem)
		if w < 8 {
			w *= 2
		}
	}
	return g
}

// levels returns the trie depth L; depth-L clusters are single identifiers.
func (g trieGeometry) levels() int { return len(g.widths) }

// sharedDepth returns the deepest t such that a and b lie in the same
// depth-t cluster (equal top cum[t] bits); 0 means they share only the
// root.
func (g trieGeometry) sharedDepth(a, b uint64) int {
	for t := g.levels(); t >= 1; t-- {
		shift := g.bits - g.cum[t]
		if a>>shift == b>>shift {
			return t
		}
	}
	return 0
}

// childLo returns the lowest identifier of key's depth-t cluster: key with
// everything below the cum[t]-bit prefix zeroed. The cluster representative
// is the ring successor of this bound.
func (g trieGeometry) childLo(key uint64, t int) uint64 {
	shift := g.bits - g.cum[t]
	return (key >> shift) << shift
}

// trieView is the stale membership snapshot the descent routes over: the
// node set as of the last trie rebuild, ascending by identifier. Per-node
// conceptual routing tables (each cluster-node's representative links into
// sibling clusters) are all derivable from this one view — the
// representative of a cluster is the successor of its low bound — so one
// shared sorted list stands in for n tables without changing any routed
// path. Staleness is deliberate: nodes that joined, failed or moved since
// the last rebuild are handled by per-hop liveness checks and the ring
// fallback, never by peeking at fresh membership.
type trieView struct {
	nodes []*chord.Node // ascending ID
}

// successor returns the first node at or after key in ring order (wrapping),
// or nil for an empty view.
func (v *trieView) successor(key uint64) *chord.Node {
	if v == nil || len(v.nodes) == 0 {
		return nil
	}
	i := sort.Search(len(v.nodes), func(i int) bool { return v.nodes[i].ID >= key })
	if i == len(v.nodes) {
		i = 0
	}
	return v.nodes[i]
}
