package art

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"lorm/internal/resource"
	"lorm/internal/routing"
	"lorm/internal/workload"
)

func testSchema() *resource.Schema {
	return resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
	)
}

func build(t testing.TB, n int) *System {
	t.Helper()
	s, err := New(Config{Bits: 18, Schema: testSchema()})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := s.AddNodes(addrs); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewNeedsSchema(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without schema should error")
	}
}

func TestGeometryShape(t *testing.T) {
	for _, bits := range []uint{1, 2, 3, 6, 14, 16, 18, 20, 40, 63} {
		g := newGeometry(bits)
		var sum uint
		for i, w := range g.widths {
			if w == 0 || w > 8 {
				t.Fatalf("bits=%d: width[%d]=%d outside (0,8]", bits, i, w)
			}
			sum += w
			if g.cum[i+1] != sum {
				t.Fatalf("bits=%d: cum[%d]=%d, want %d", bits, i+1, g.cum[i+1], sum)
			}
		}
		if sum != bits {
			t.Fatalf("bits=%d: widths sum to %d", bits, sum)
		}
		// Doubling from 2, capped at 8: the trie depth is O(log log K),
		// far below the bit count for realistic identifier widths.
		if bits >= 16 && g.levels() > int(bits/4)+1 {
			t.Fatalf("bits=%d: %d levels, not sub-logarithmic", bits, g.levels())
		}
	}
	g := newGeometry(18)
	want := []uint{2, 4, 8, 4}
	if len(g.widths) != len(want) {
		t.Fatalf("widths = %v, want %v", g.widths, want)
	}
	for i := range want {
		if g.widths[i] != want[i] {
			t.Fatalf("widths = %v, want %v", g.widths, want)
		}
	}
}

func TestGeometryDepthAndClusters(t *testing.T) {
	g := newGeometry(18)
	const a, b = 0x2F00F, 0x2F3FF
	d := g.sharedDepth(a, b)
	if d < 1 || d >= g.levels() {
		t.Fatalf("sharedDepth = %d, want interior", d)
	}
	if g.sharedDepth(a, a) != g.levels() {
		t.Fatalf("sharedDepth(a,a) = %d, want %d", g.sharedDepth(a, a), g.levels())
	}
	// childLo at depth t clears everything below the cum[t]-bit prefix,
	// and the full-depth cluster is the identifier itself.
	for tt := 0; tt <= g.levels(); tt++ {
		lo := g.childLo(a, tt)
		if g.sharedDepth(lo, a) < tt {
			t.Fatalf("childLo(%#x, %d) = %#x leaves the cluster", a, tt, lo)
		}
	}
	if g.childLo(a, g.levels()) != a {
		t.Fatalf("childLo at full depth = %#x, want %#x", g.childLo(a, g.levels()), a)
	}
}

func TestViewSuccessorMatchesLinearScan(t *testing.T) {
	s := build(t, 40)
	view := s.view.Load()
	if view == nil || len(view.nodes) != 40 {
		t.Fatal("view not built by AddNodes")
	}
	ids := make([]uint64, len(view.nodes))
	for i, n := range view.nodes {
		ids[i] = n.ID
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatal("view not sorted")
	}
	for _, key := range []uint64{0, ids[0], ids[0] + 1, ids[39], ids[39] + 1, 1 << 17} {
		want := ids[0]
		for _, id := range ids {
			if id >= key {
				want = id
				break
			}
		}
		if got := view.successor(key).ID; got != want {
			t.Fatalf("successor(%d) = %d, want %d", key, got, want)
		}
	}
}

// The headline property: with a current view, an exact lookup descends at
// most levels() trie hops — a bound independent of n, versus Chord's
// (1/2)·log2 n average.
func TestDescentHopsBounded(t *testing.T) {
	s := build(t, 256)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(41, 0)
	for _, in := range gen.Announcements(rng, 40) {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	qrng := workload.Split(41, 1)
	total := 0
	const queries = 100
	for i := 0; i < queries; i++ {
		q := gen.ExactQuery(qrng, 1, fmt.Sprintf("r%d", i))
		res, err := s.Discover(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost.Hops > s.geo.levels() {
			t.Fatalf("exact query took %d hops, want ≤ %d trie levels", res.Cost.Hops, s.geo.levels())
		}
		if res.Cost.Visited != 1 {
			t.Fatalf("exact query visited %d, want 1", res.Cost.Visited)
		}
		if res.Cost.Messages != res.Cost.Hops+res.Cost.Visited {
			t.Fatalf("cost invariant broken: %+v", res.Cost)
		}
		total += res.Cost.Hops
	}
	if mean := float64(total) / queries; mean >= 0.5*math.Log2(256) {
		t.Fatalf("mean hops %.2f, want below Chord's %.1f", mean, 0.5*math.Log2(256))
	}
}

func TestRangeQueryMatchesNaiveScan(t *testing.T) {
	s := build(t, 64)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(42, 0)
	anns := gen.Announcements(rng, 30)
	for _, in := range anns {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	qrng := workload.Split(42, 1)
	for i := 0; i < 30; i++ {
		q := gen.RangeQuery(qrng, 2, 0.2, fmt.Sprintf("r%d", i))
		res, err := s.Discover(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range q.Subs {
			want := 0
			for _, in := range anns {
				if in.Attr == sub.Attr && sub.Matches(in.Value) {
					want++
				}
			}
			if got := len(res.PerAttr[sub.Attr]); got != want {
				t.Fatalf("query %d attr %s: %d matches, want %d", i, sub.Attr, got, want)
			}
		}
	}
}

// Joins and failures stay invisible to the descent until Maintain rebuilds
// the view; queries must stay correct across both epochs via the per-hop
// liveness checks and the ring fallback.
func TestStaleViewSurvivesChurn(t *testing.T) {
	s := build(t, 64)
	if err := s.SetReplicas(2); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(43, 0)
	anns := gen.Announcements(rng, 40)
	for _, in := range anns {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	check := func(tag string) {
		t.Helper()
		qrng := workload.Split(43, 1)
		for i := 0; i < 20; i++ {
			q := gen.RangeQuery(qrng, 1, 0.15, fmt.Sprintf("%s-%d", tag, i))
			res, err := s.Discover(q)
			if err != nil {
				t.Fatal(err)
			}
			sub := q.Subs[0]
			want := 0
			for _, in := range anns {
				if in.Attr == sub.Attr && sub.Matches(in.Value) {
					want++
				}
			}
			if got := len(res.PerAttr[sub.Attr]); got != want {
				t.Fatalf("%s query %d: %d matches, want %d", tag, i, got, want)
			}
		}
	}
	check("fresh")
	for i := 0; i < 4; i++ {
		if err := s.AddNode(fmt.Sprintf("late-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	check("after-joins-before-rebuild")
	if _, err := s.FailNode(s.NodeAddrs()[10]); err != nil {
		t.Fatal(err)
	}
	check("after-crash-before-rebuild")
	s.Maintain()
	check("after-maintain")
}

func TestOutlinkCountsBounded(t *testing.T) {
	s := build(t, 48)
	counts := s.OutlinkCounts()
	if len(counts) != 48 {
		t.Fatalf("len = %d, want 48", len(counts))
	}
	// Per level t the node keeps at most 2^width[t-1] sibling links, so the
	// table is bounded by the geometry, not by n.
	max := 0
	for _, w := range s.geo.widths {
		max += 1 << w
	}
	for i, c := range counts {
		if c <= 0 || c > max {
			t.Fatalf("node %d keeps %d links, want within (0, %d]", i, c, max)
		}
	}
}

func TestMetadataAndDynamics(t *testing.T) {
	s := build(t, 20)
	if s.Name() != "art" || s.NodeCount() != 20 || s.Schema().Len() != 2 {
		t.Fatal("metadata wrong")
	}
	if s.Ring() == nil {
		t.Fatal("Ring accessor nil")
	}
	if got := len(s.Geometry()); got != s.geo.levels() {
		t.Fatalf("Geometry len = %d, want %d", got, s.geo.levels())
	}
	if err := s.AddNode("newbie"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode("newbie"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode("ghost"); err == nil {
		t.Fatal("removing unknown node should error")
	}
	if _, err := s.FailNode("ghost"); err == nil {
		t.Fatal("failing unknown node should error")
	}
	s.Maintain()
	if got := len(s.NodeAddrs()); got != 20 {
		t.Fatalf("NodeAddrs = %d, want 20", got)
	}
}

func TestRegisterUnknownAttribute(t *testing.T) {
	s := build(t, 8)
	if _, err := s.Register(resource.Info{Attr: "gpu", Value: 1, Owner: "x"}); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestDiscoverValidates(t *testing.T) {
	s := build(t, 8)
	if _, err := s.Discover(resource.Query{}); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestValueKeySectorsAreMonotone(t *testing.T) {
	s := build(t, 8)
	sc := testSchema()
	for idx := 0; idx < sc.Len(); idx++ {
		a := sc.At(idx)
		prev := uint64(0)
		for f := 0.0; f <= 1.0; f += 0.05 {
			v := a.Quantile(f)
			k := s.valueKey(idx, v)
			if k < prev {
				t.Fatalf("attr %s: valueKey not monotone at quantile %.2f", a.Name, f)
			}
			prev = k
		}
		// Sector bounds: attribute idx owns [idx/m, (idx+1)/m).
		lo := s.valueKey(idx, a.Min)
		space := s.ring.Space()
		if want := space.Scale(float64(idx) / float64(sc.Len())); lo != want {
			t.Fatalf("attr %s sector base = %d, want %d", a.Name, lo, want)
		}
	}
}

// The descent must resolve to a node that owns the key (fresh view, no
// faults), for keys across the whole space — including empty top clusters
// where the successor wraps.
func TestRouteResolvesOwner(t *testing.T) {
	s := build(t, 32)
	from := s.ring.Nodes()[0]
	for i := 0; i < 200; i++ {
		key := uint64(i) * (1 << 18) / 200
		op := s.fabric.Begin(routing.OpDiscover, "probe")
		got, err := s.route(op, from, key)
		op.Finish()
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.ring.OwnerOf(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("route(%d) = %s, oracle owner %s", key, got.Addr, want.Addr)
		}
	}
}
