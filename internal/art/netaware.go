package art

import "lorm/internal/discovery"

var _ discovery.NetAware = (*System)(nil)

// SetReachability implements discovery.NetAware: every subsequent descent
// hop, fallback lookup and lateral range walk consults the plane.
func (s *System) SetReachability(r discovery.Reachability) {
	s.ring.SetReachability(r)
}
