package replication

import "lorm/internal/metrics"

// Process-wide replication counters. cmd/metricscheck -replication
// cross-checks them against the fabric's reason-labeled step counts:
// replica read hits equal ReasonReplicaRead steps exactly (each planned
// read records exactly one probe forward), and replicas placed are at
// least the ReasonReplicate steps (Repair and hot-key promotion place
// copies without routing an operation).
var (
	mPlaced = metrics.Default().Counter("replication_replicas_placed_total",
		"replica copies stored by placement, repair and hot-key promotion")
	mDropped = metrics.Default().Counter("replication_replicas_dropped_total",
		"surplus or invalidated replica copies removed by repair")
	mReadHits = metrics.Default().Counter("replication_replica_read_hits_total",
		"single-key reads served by a replica holder via power-of-two-choices")
	mPromotions = metrics.Default().Counter("replication_hotkey_promotions_total",
		"key-groups promoted to hot-key replication")
	mDemotions = metrics.Default().Counter("replication_hotkey_demotions_total",
		"hot-key promotions dropped by invalidation (re-announce) or demotion")
)
