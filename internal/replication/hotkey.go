package replication

import (
	"sort"

	"lorm/internal/discovery"
)

// HotKeyOptions tunes one hot-key promotion pass.
type HotKeyOptions struct {
	// Fanout is the number of holders a promoted key-group is spread
	// across (root + Fanout−1 successors). Values below 2 make promotion a
	// no-op.
	Fanout int
	// Threshold marks a node hot when its visit load exceeds
	// Threshold × mean visit load. Values <= 0 default to 2.
	Threshold float64
	// MaxKeys caps how many keys one pass promotes; 0 means no cap.
	MaxKeys int
}

// PromoteHot replicates the hottest key-groups onto successor-list nodes.
// visits is the per-node traffic report (loadbalance.Ledger.VisitLoads):
// a node is hot when its visits exceed Threshold × mean. The replicator's
// own read tallies rank the keys; the most-read keys whose root is a hot
// node are promoted — each key-group's entries are copied from the root
// onto Fanout−1 successors (skipping copies base replication already
// placed) and subsequent reads of the key fan out over the holders via
// PlanRead. It returns the number of keys promoted.
func (r *Replicator) PromoteHot(visits []discovery.NodeLoad, opts HotKeyOptions) int {
	if opts.Fanout < 2 || len(visits) == 0 {
		return 0
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 2
	}
	total := 0
	for _, v := range visits {
		total += v.Entries
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(visits))
	hotAddr := make(map[string]bool)
	for _, v := range visits {
		if float64(v.Entries) > opts.Threshold*mean {
			hotAddr[v.Addr] = true
		}
	}
	if len(hotAddr) == 0 {
		return 0
	}

	// Rank keys by read tally, most-read first, ties by key for determinism.
	r.mu.Lock()
	keys := make([]uint64, 0, len(r.reads))
	for k := range r.reads {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if r.reads[keys[i]] != r.reads[keys[j]] {
			return r.reads[keys[i]] > r.reads[keys[j]]
		}
		return keys[i] < keys[j]
	})
	r.mu.Unlock()

	promoted := 0
	for _, key := range keys {
		if opts.MaxKeys > 0 && promoted >= opts.MaxKeys {
			break
		}
		r.mu.Lock()
		already := r.hot[key] >= opts.Fanout
		r.mu.Unlock()
		if already {
			continue
		}
		root, ok := r.p.HolderOf(key)
		if !ok || !hotAddr[root.Addr] {
			continue
		}
		if r.promoteKey(key, root, opts.Fanout) {
			promoted++
		}
	}
	return promoted
}

// promoteKey copies the key-group from its root onto fanout−1 successors
// and records the promoted fan-out. It reports false when the group is
// empty or no distinct successor exists.
func (r *Replicator) promoteKey(key uint64, root Holder, fanout int) bool {
	src := root.Dir.AtKey(key)
	if r.filter != nil {
		kept := src[:0]
		for _, e := range src {
			if r.filter(e) {
				kept = append(kept, e)
			}
		}
		src = kept
	}
	if len(src) == 0 {
		return false
	}
	holders := r.holdersFor(key, fanout)
	if len(holders) < 2 {
		return false
	}
	placed := 0
	for _, h := range holders[1:] {
		for _, e := range src {
			if h.Dir.Contains(e) {
				continue // base replication already holds this copy
			}
			h.Dir.Add(e)
			placed++
		}
	}
	r.mu.Lock()
	r.hot[key] = fanout
	r.mu.Unlock()
	if placed > 0 {
		mPlaced.Add(uint64(placed))
	}
	mPromotions.Inc()
	r.log.Debug("hotkey promoted", "key", key, "fanout", fanout,
		"copies_placed", placed, "root", holders[0].Addr)
	return true
}

// Invalidate drops a key's hot promotion, typically because the key-group
// changed (a re-announce). Reads revert to the root immediately — a stale
// promoted copy is never served — and the orphaned copies are removed by
// the next Repair pass. It reports whether the key was promoted.
func (r *Replicator) Invalidate(key uint64) bool {
	r.mu.Lock()
	_, was := r.hot[key]
	if was {
		delete(r.hot, key)
	}
	r.mu.Unlock()
	if was {
		mDemotions.Inc()
		r.log.Debug("hotkey demoted", "key", key)
	}
	return was
}

// HotKeys returns the promoted keys in ascending order (diagnostics and
// tests).
func (r *Replicator) HotKeys() []uint64 {
	r.mu.Lock()
	out := make([]uint64, 0, len(r.hot))
	for k := range r.hot {
		out = append(out, k)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadPlan is one replica-aware read decision: route the lookup to Target
// (a live replica holder) and send a load probe to Probe, the losing
// power-of-two-choices candidate. The caller records the probe as a
// ReasonReplicaRead forward, so Messages = Hops + Visited stays exact.
type ReadPlan struct {
	Target Holder
	Probe  Holder
}

// PlanRead plans a replica-aware read of one single-key sub-query. It
// always tallies the read (hot-key detection feeds on these tallies) and
// returns a plan only when the key is hot-promoted with at least two live
// holders: two rotating candidate holders are compared power-of-two-choices
// style on replica reads served so far, the less-loaded one becomes the
// read target and the other is probed. Keys without a promotion — including
// every key when replication is off — read at their root exactly as
// before.
func (r *Replicator) PlanRead(key uint64) (ReadPlan, bool) {
	r.mu.Lock()
	r.reads[key]++
	fanout := r.hot[key]
	if fanout < 2 {
		r.mu.Unlock()
		return ReadPlan{}, false
	}
	n := r.rr
	r.rr++
	r.mu.Unlock()
	holders := r.holdersFor(key, fanout)
	if len(holders) < 2 {
		return ReadPlan{}, false
	}
	r.mu.Lock()
	i := int(n % uint64(len(holders)))
	j := int((n + 1) % uint64(len(holders)))
	a, b := holders[i], holders[j]
	if r.served[b.Addr] < r.served[a.Addr] {
		a, b = b, a
	}
	r.served[a.Addr]++
	r.mu.Unlock()
	mReadHits.Inc()
	return ReadPlan{Target: a, Probe: b}, true
}
