package replication_test

import (
	"testing"

	"lorm/internal/directory"
	"lorm/internal/discovery"
	"lorm/internal/replication"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// fakeNode is one node of the fake overlay ring.
type fakeNode struct {
	addr string
	pos  uint64
	dir  directory.Store
}

// fakeRing implements replication.Placement over a fixed node list: the
// overlay semantics (oracle roots, next-node successors) without a real
// chord/cycloid instance.
type fakeRing struct {
	nodes []*fakeNode // ascending pos
}

func newFakeRing(poss ...uint64) *fakeRing {
	r := &fakeRing{}
	for i, p := range poss {
		r.nodes = append(r.nodes, &fakeNode{addr: string(rune('a' + i)), pos: p})
	}
	return r
}

func (r *fakeRing) holder(n *fakeNode) replication.Holder {
	return replication.Holder{Addr: n.addr, Pos: n.pos, Dir: &n.dir}
}

func (r *fakeRing) Capacity() uint64 { return 1 << 16 }

func (r *fakeRing) HolderAt(pos uint64) (replication.Holder, bool) {
	for _, n := range r.nodes {
		if n.pos == pos {
			return r.holder(n), true
		}
	}
	return replication.Holder{}, false
}

func (r *fakeRing) HolderOf(key uint64) (replication.Holder, bool) {
	if len(r.nodes) == 0 {
		return replication.Holder{}, false
	}
	key %= r.Capacity()
	for _, n := range r.nodes {
		if n.pos >= key {
			return r.holder(n), true
		}
	}
	return r.holder(r.nodes[0]), true
}

func (r *fakeRing) SuccessorOf(pos uint64) (replication.Holder, bool) {
	if len(r.nodes) < 2 {
		return replication.Holder{}, false
	}
	for _, n := range r.nodes {
		if n.pos > pos {
			return r.holder(n), true
		}
	}
	return r.holder(r.nodes[0]), true
}

func (r *fakeRing) HolderRing() []replication.Holder {
	out := make([]replication.Holder, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = r.holder(n)
	}
	return out
}

func entry(key uint64, attr string, value float64, owner string) directory.Entry {
	return directory.Entry{Key: key, Info: resource.Info{Attr: attr, Value: value, Owner: owner}}
}

func beginOp() *routing.Op {
	return routing.NewFabric("test").Begin(routing.OpRegister, "owner")
}

func countOf(n *fakeNode, e directory.Entry) int {
	count := 0
	for _, have := range n.dir.Snapshot() {
		if have.Key == e.Key && have.Info == e.Info {
			count++
		}
	}
	return count
}

func TestSetFactorValidation(t *testing.T) {
	rep := replication.NewReplicator(newFakeRing(10, 20, 30))
	if err := rep.SetFactor(0); err == nil {
		t.Fatal("factor 0 accepted")
	}
	if err := rep.SetFactor(1 << 20); err == nil {
		t.Fatal("factor beyond capacity accepted")
	}
	if err := rep.SetFactor(3); err != nil {
		t.Fatalf("factor 3 rejected: %v", err)
	}
	if got := rep.Factor(); got != 3 {
		t.Fatalf("Factor() = %d, want 3", got)
	}
	if !rep.Active() {
		t.Fatal("factor 3 should be Active")
	}
}

func TestPlaceStoresCopiesOnSuccessors(t *testing.T) {
	ring := newFakeRing(10, 20, 30, 40, 50)
	rep := replication.NewReplicator(ring)
	if err := rep.SetFactor(3); err != nil {
		t.Fatal(err)
	}
	e := entry(15, "cpu", 1.5, "owner-a")
	root := ring.nodes[1] // pos 20 owns key 15
	root.dir.Add(e)

	op := beginOp()
	if placed := rep.Place(op, root.pos, e); placed != 2 {
		t.Fatalf("Place placed %d copies, want 2", placed)
	}
	cost := op.Finish()
	if cost.Messages != cost.Hops+cost.Visited {
		t.Fatalf("cost identity broken: %+v", cost)
	}
	for _, i := range []int{2, 3} { // pos 30, 40: the two successors
		if countOf(ring.nodes[i], e) != 1 {
			t.Fatalf("successor %s missing its copy", ring.nodes[i].addr)
		}
	}
	if countOf(ring.nodes[4], e) != 0 {
		t.Fatal("copy beyond the factor's successor chain")
	}
}

func TestPlaceWrapsOnSmallRing(t *testing.T) {
	ring := newFakeRing(10, 20)
	rep := replication.NewReplicator(ring)
	if err := rep.SetFactor(4); err != nil {
		t.Fatal(err)
	}
	e := entry(5, "cpu", 1.0, "owner-a")
	ring.nodes[0].dir.Add(e)
	if placed := rep.Place(beginOp(), ring.nodes[0].pos, e); placed != 1 {
		t.Fatalf("Place on 2-node ring placed %d copies, want 1 (wrap)", placed)
	}
}

func TestPlaceRespectsFilter(t *testing.T) {
	ring := newFakeRing(10, 20, 30)
	rep := replication.NewReplicator(ring, replication.WithFilter(func(e directory.Entry) bool {
		return e.Info.Attr == "cpu"
	}))
	if err := rep.SetFactor(2); err != nil {
		t.Fatal(err)
	}
	if placed := rep.Place(beginOp(), 10, entry(5, "mem", 1.0, "o")); placed != 0 {
		t.Fatalf("filtered entry placed %d copies", placed)
	}
	if placed := rep.Place(beginOp(), 10, entry(5, "cpu", 1.0, "o")); placed != 1 {
		t.Fatalf("accepted entry placed %d copies, want 1", placed)
	}
}

func TestRepairRestoresAndIsIdempotent(t *testing.T) {
	ring := newFakeRing(10, 20, 30, 40)
	rep := replication.NewReplicator(ring)
	if err := rep.SetFactor(2); err != nil {
		t.Fatal(err)
	}
	e := entry(15, "cpu", 1.5, "owner-a")
	ring.nodes[1].dir.Add(e) // root only: successor copy missing
	stray := entry(35, "mem", 2.0, "owner-b")
	ring.nodes[0].dir.Add(stray) // on pos 10; root of key 35 is pos 40
	ring.nodes[3].dir.Add(stray)
	ring.nodes[0].dir.Add(stray) // a second stray copy on the same node

	added, removed := rep.Repair()
	// Missing: e's successor copy (pos 30) and stray's successor copy (pos
	// 10 is NOT a desired holder — root 40's successor wraps to 10... it is
	// desired; the two surplus copies there already satisfy it).
	if added == 0 {
		t.Fatalf("Repair added nothing (added=%d removed=%d)", added, removed)
	}
	if a2, r2 := rep.Repair(); a2 != 0 || r2 != 0 {
		t.Fatalf("second Repair not a no-op: (%d, %d)", a2, r2)
	}
	if countOf(ring.nodes[2], e) != 1 {
		t.Fatal("repair did not recreate the missing successor copy")
	}

	// Drop the factor to 1: every replica copy is now surplus.
	if err := rep.SetFactor(1); err != nil {
		t.Fatal(err)
	}
	if _, removed := rep.Repair(); removed == 0 {
		t.Fatal("Repair at factor 1 removed no surplus copies")
	}
	if a2, r2 := rep.Repair(); a2 != 0 || r2 != 0 {
		t.Fatalf("second Repair not a no-op after shrink: (%d, %d)", a2, r2)
	}
	if countOf(ring.nodes[2], e) != 0 {
		t.Fatal("surplus copy survived factor shrink")
	}
}

func promote(t *testing.T, rep *replication.Replicator, ring *fakeRing, key uint64, fanout int) {
	t.Helper()
	root, ok := ring.HolderOf(key)
	if !ok {
		t.Fatal("no root")
	}
	// Tally a read so the key ranks, then report the root as the only hot
	// node.
	rep.PlanRead(key)
	loads := make([]discovery.NodeLoad, 0, len(ring.nodes))
	for _, n := range ring.nodes {
		l := discovery.NodeLoad{Addr: n.addr}
		if n.addr == root.Addr {
			l.Entries = 100
		}
		loads = append(loads, l)
	}
	if n := rep.PromoteHot(loads, replication.HotKeyOptions{Fanout: fanout}); n != 1 {
		t.Fatalf("PromoteHot promoted %d keys, want 1", n)
	}
}

func TestHotKeyPromotionAndPlanRead(t *testing.T) {
	ring := newFakeRing(10, 20, 30, 40)
	rep := replication.NewReplicator(ring)
	const key = 15
	root := ring.nodes[1]
	group := []directory.Entry{
		entry(key, "cpu", 1.5, "owner-a"),
		entry(key, "cpu", 2.5, "owner-b"),
	}
	for _, e := range group {
		root.dir.Add(e)
	}

	if _, ok := rep.PlanRead(key); ok {
		t.Fatal("PlanRead planned a read with no promotion")
	}
	promote(t, rep, ring, key, 2)
	if got := rep.HotKeys(); len(got) != 1 || got[0] != key {
		t.Fatalf("HotKeys = %v, want [%d]", got, key)
	}
	for _, e := range group {
		if countOf(ring.nodes[2], e) != 1 {
			t.Fatal("promotion did not copy the key-group to the successor")
		}
	}

	// Power-of-two-choices over the two holders: both serve, no holder is
	// starved, and the probe is never the target.
	targets := map[string]int{}
	for i := 0; i < 20; i++ {
		plan, ok := rep.PlanRead(key)
		if !ok {
			t.Fatal("PlanRead refused a promoted key")
		}
		if plan.Target.Addr == plan.Probe.Addr {
			t.Fatal("target and probe are the same holder")
		}
		targets[plan.Target.Addr]++
	}
	if len(targets) != 2 || targets[root.addr] == 0 || targets[ring.nodes[2].addr] == 0 {
		t.Fatalf("reads not spread over both holders: %v", targets)
	}
}

// Regression for the old core-private dedupe, whose identity omitted the
// placement key: two distinct resources agreeing on (attr, value, owner)
// but stored under different keys were collapsed into one result.
func TestGatherKeyedIdentityRegression(t *testing.T) {
	g := replication.NewGather()
	g.AddBatch([]directory.Entry{
		entry(10, "cpu", 1.5, "owner-a"),
		entry(20, "cpu", 1.5, "owner-a"), // same info, different key: distinct
	})
	if got := g.Infos(); len(got) != 2 {
		t.Fatalf("distinct-key duplicates collapsed: got %d infos, want 2", len(got))
	}
}

func TestGatherSuppressesReplicasKeepsDuplicates(t *testing.T) {
	g := replication.NewGather()
	e := entry(10, "cpu", 1.5, "owner-a")
	g.AddBatch([]directory.Entry{e})    // root copy
	g.AddBatch([]directory.Entry{e, e}) // replica holder with a genuine duplicate
	g.AddBatch([]directory.Entry{e})    // second replica holder
	// Max per-node count is 2: one announce plus one genuine duplicate.
	if got := g.Infos(); len(got) != 2 {
		t.Fatalf("got %d infos, want 2 (replicas suppressed, duplicate kept)", len(got))
	}
}

func TestReannounceInvalidatesPromotion(t *testing.T) {
	ring := newFakeRing(10, 20, 30, 40)
	rep := replication.NewReplicator(ring)
	const key = 15
	root := ring.nodes[1]
	e := entry(key, "cpu", 1.5, "owner-a")
	root.dir.Add(e)
	promote(t, rep, ring, key, 3)

	// Re-announce the key: the promotion must drop immediately (reads
	// revert to the root) and the next Repair removes the orphaned copies.
	rep.Place(beginOp(), root.pos, e) // factor 1: invalidation only
	if got := rep.HotKeys(); len(got) != 0 {
		t.Fatalf("promotion survived a re-announce: %v", got)
	}
	if _, ok := rep.PlanRead(key); ok {
		t.Fatal("PlanRead served a stale promoted replica")
	}
	if _, removed := rep.Repair(); removed == 0 {
		t.Fatal("Repair dropped no orphaned promoted copies")
	}
	if countOf(ring.nodes[2], e) != 0 {
		t.Fatal("orphaned promoted copy survived Repair")
	}
}
