// Package replication is the shared successor-set replication layer the
// four discovery systems build on. It owns the placement contract (which
// nodes hold copies of an entry), the replica placement recorded on the
// routing fabric, the churn Repair pass that restores the holder invariant,
// hot-key promotion driven by traffic-ledger hotspot reports, and the
// power-of-two-choices replica-aware read planner.
//
// # Placement contract
//
// Every entry's holders are its root — the overlay node owning the entry's
// key — plus up to r−1 distinct successors along the overlay ring, where r
// is the per-key replication fan-out: the base factor set by SetFactor,
// raised per key-group by hot-key promotion. The successor chain follows
// the overlay's own next-node relation (successor lists with an oracle
// fallback), so placement under churn matches what the overlay would route
// to, not an idealized membership view.
//
// The overlays implement Placement (chord.Ring.Placement,
// cycloid.Overlay.Placement); this package is the only one that turns a
// Placement into replica holders, which a CI grep guard enforces.
package replication

import (
	"fmt"
	"io"
	"log/slog"
	"sync"

	"lorm/internal/directory"
	"lorm/internal/routing"
)

// Holder is one node able to hold replica copies: its address, linearized
// overlay position, and directory.
type Holder struct {
	Addr string
	Pos  uint64
	Dir  *directory.Store
}

// Placement is the overlay-side view replication needs: a way to resolve
// keys and positions to live nodes and to walk the successor chain. Both
// chord.Ring and cycloid.Overlay implement it.
type Placement interface {
	// Capacity returns the number of positions in the overlay's identifier
	// space; replication factors beyond it are rejected.
	Capacity() uint64
	// HolderAt returns the live node at exactly the given position.
	HolderAt(pos uint64) (Holder, bool)
	// HolderOf returns the live node owning the given key (its oracle
	// successor on the ring).
	HolderOf(key uint64) (Holder, bool)
	// SuccessorOf returns the live node following the given position on
	// the ring — the overlay's next-node relation, i.e. the node's
	// successor pointer when it is alive with an oracle fallback
	// otherwise. ok is false when there is no distinct successor.
	SuccessorOf(pos uint64) (Holder, bool)
	// HolderRing returns every live node in ring order.
	HolderRing() []Holder
}

// Option configures a Replicator.
type Option func(*Replicator)

// WithFilter restricts replication to entries the predicate accepts; other
// entries are neither placed nor touched by Repair. MAAN uses it to
// replicate only its value-keyed half of each dual-keyed registration.
func WithFilter(f func(directory.Entry) bool) Option {
	return func(r *Replicator) { r.filter = f }
}

// WithLogger routes structured hot-key lifecycle events (promotion,
// demotion) to the given logger at Debug level. Nil keeps logging off.
func WithLogger(l *slog.Logger) Option {
	return func(r *Replicator) {
		if l != nil {
			r.log = l
		}
	}
}

// Replicator manages replica copies over one overlay: base placement on
// register, churn repair, hot-key promotion and replica-aware read
// planning. One system owns one Replicator per overlay (Mercury: one per
// attribute hub).
type Replicator struct {
	p      Placement
	filter func(directory.Entry) bool
	log    *slog.Logger

	mu     sync.Mutex
	factor int               // base replication factor, >= 1
	hot    map[uint64]int    // per-key promoted fan-out (> 1)
	reads  map[uint64]uint64 // per-key single-key read tallies
	served map[string]uint64 // per-holder replica reads served (po2 choice)
	rr     uint64            // read-plan rotation counter
}

// NewReplicator returns a replicator over the placement with factor 1
// (replication off).
func NewReplicator(p Placement, opts ...Option) *Replicator {
	r := &Replicator{
		p:      p,
		log:    slog.New(slog.NewTextHandler(io.Discard, nil)),
		factor: 1,
		hot:    make(map[uint64]int),
		reads:  make(map[uint64]uint64),
		served: make(map[string]uint64),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// SetFactor sets the base replication factor: every filtered entry is kept
// on its root plus factor−1 successors.
func (r *Replicator) SetFactor(factor int) error {
	if factor < 1 {
		return fmt.Errorf("replication: factor %d < 1", factor)
	}
	if uint64(factor) > r.p.Capacity() {
		return fmt.Errorf("replication: factor %d exceeds overlay capacity %d", factor, r.p.Capacity())
	}
	r.mu.Lock()
	r.factor = factor
	r.mu.Unlock()
	return nil
}

// Factor returns the base replication factor (>= 1).
func (r *Replicator) Factor() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.factor
}

// Active reports whether any replicas can exist: base factor above 1 or at
// least one promoted hot key. Systems use it to keep the replication-off
// fast paths (no dedupe, no repair) byte-identical to the unreplicated
// code.
func (r *Replicator) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.factor > 1 || len(r.hot) > 0
}

// factorOf returns the effective fan-out for one key: the base factor,
// raised by hot-key promotion.
func (r *Replicator) factorOf(key uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.hot[key]; f > r.factor {
		return f
	}
	return r.factor
}

// Place stores factor−1 replica copies of a just-registered entry on the
// distinct successors of its root (the node at rootPos), recording one
// ReasonReplicate forward per copy on op. A re-announce of a hot-promoted
// key invalidates the promotion first (see Invalidate), so stale promoted
// copies are dropped by the next Repair rather than served to readers.
// It returns the number of copies placed.
func (r *Replicator) Place(op *routing.Op, rootPos uint64, e directory.Entry) int {
	if r.filter != nil && !r.filter(e) {
		return 0
	}
	r.Invalidate(e.Key)
	factor := r.Factor()
	if factor <= 1 {
		return 0
	}
	root, ok := r.p.HolderAt(rootPos)
	if !ok {
		return 0
	}
	placed := 0
	cur := root
	for i := 1; i < factor; i++ {
		next, ok := r.p.SuccessorOf(cur.Pos)
		if !ok || next.Pos == rootPos {
			break // wrapped around a small ring: no more distinct holders
		}
		cur = next
		cur.Dir.Add(e)
		op.Forward(cur.Addr, cur.Pos, routing.ReasonReplicate)
		placed++
	}
	if placed > 0 {
		mPlaced.Add(uint64(placed))
	}
	return placed
}

// holdersFor returns the desired holder set of one key: its root plus
// fanout−1 distinct successors, in chain order.
func (r *Replicator) holdersFor(key uint64, fanout int) []Holder {
	root, ok := r.p.HolderOf(key)
	if !ok {
		return nil
	}
	holders := make([]Holder, 1, fanout)
	holders[0] = root
	cur := root
	for i := 1; i < fanout; i++ {
		next, ok := r.p.SuccessorOf(cur.Pos)
		if !ok || next.Pos == root.Pos {
			break
		}
		cur = next
		holders = append(holders, cur)
	}
	return holders
}

// entryIdent identifies one logical entry across nodes. It includes the
// placement key: two distinct resources that agree on (attr, value, owner)
// but live under different keys are different entries and must never
// collapse (this was the latent dedupe bug in the old core-private layer).
type entryIdent struct {
	key   uint64
	attr  string
	value float64
	owner string
}

func identOf(e directory.Entry) entryIdent {
	return entryIdent{key: e.Key, attr: e.Info.Attr, value: e.Info.Value, owner: e.Info.Owner}
}

// Repair restores the holder invariant after churn: every filtered entry is
// stored on exactly its desired holders — root plus effective-fan-out−1
// successors. Copies missing from a desired holder are added; copies on
// nodes outside the desired set (including replicas orphaned by a
// re-announce invalidation or a demotion) are removed. The pass is a
// maintenance sweep over live directories, not a routed operation, so it
// records nothing on the fabric. It is idempotent: an immediate second call
// reports (0, 0).
func (r *Replicator) Repair() (added, removed int) {
	ring := r.p.HolderRing()
	byPos := make(map[uint64]Holder, len(ring))
	holders := make(map[entryIdent]map[uint64]bool)
	entries := make(map[entryIdent]directory.Entry)
	for _, h := range ring {
		byPos[h.Pos] = h
		for _, e := range h.Dir.Snapshot() {
			if r.filter != nil && !r.filter(e) {
				continue
			}
			id := identOf(e)
			set := holders[id]
			if set == nil {
				set = make(map[uint64]bool)
				holders[id] = set
				entries[id] = e
			}
			set[h.Pos] = true
		}
	}
	for id, held := range holders {
		e := entries[id]
		want := r.holdersFor(e.Key, r.factorOf(e.Key))
		if len(want) == 0 {
			continue // no live owner for the key right now
		}
		desired := make(map[uint64]bool, len(want))
		for _, h := range want {
			desired[h.Pos] = true
			if !held[h.Pos] {
				h.Dir.Add(e)
				added++
			}
		}
		for pos := range held {
			if desired[pos] {
				continue
			}
			h := byPos[pos]
			for h.Dir.Remove(e) {
			}
			removed++
		}
	}
	if added > 0 {
		mPlaced.Add(uint64(added))
	}
	if removed > 0 {
		mDropped.Add(uint64(removed))
	}
	return added, removed
}
