package replication

import (
	"lorm/internal/directory"
	"lorm/internal/resource"
)

// Gather collects sub-query matches across the nodes a walk visits,
// suppressing replica copies without suppressing genuine duplicates. The
// identity of an entry includes its placement key — two distinct resources
// that agree on (attr, value, owner) but were stored under different keys
// both survive, fixing the latent bug of the old core-private dedupe.
//
// Multiplicity rule: copies of one identity seen on different nodes are
// replicas (keep one), while copies co-resident on a single node are
// genuine duplicates (a resource announced twice — the directory stores
// duplicates). The gathered count of an identity is therefore the maximum
// per-node count, and output preserves first-seen order.
//
// Usage: call Node before appending each visited node's matches, Add per
// entry, Infos at the end. The zero value is not usable; call NewGather.
type Gather struct {
	emitted map[entryIdent]int
	node    map[entryIdent]int
	out     []resource.Info
}

// NewGather returns an empty collector.
func NewGather() *Gather {
	return &Gather{
		emitted: make(map[entryIdent]int),
		node:    make(map[entryIdent]int),
	}
}

// Node marks the start of a new visited node's match batch.
func (g *Gather) Node() {
	clear(g.node)
}

// Add records one matching entry from the current node.
func (g *Gather) Add(e directory.Entry) {
	id := identOf(e)
	g.node[id]++
	if g.node[id] > g.emitted[id] {
		g.emitted[id]++
		g.out = append(g.out, e.Info)
	}
}

// AddBatch records one node's whole match batch (Node + Add per entry).
func (g *Gather) AddBatch(es []directory.Entry) {
	g.Node()
	for _, e := range es {
		g.Add(e)
	}
}

// Infos returns the gathered results in first-seen order.
func (g *Gather) Infos() []resource.Info { return g.out }
