package workload

import (
	"math"
	"testing"
	"testing/quick"

	"lorm/internal/resource"
)

func TestNewBoundedParetoValidation(t *testing.T) {
	cases := []struct {
		l, h, a float64
		ok      bool
	}{
		{1, 10, 1.5, true},
		{0, 10, 1.5, false},
		{-1, 10, 1.5, false},
		{5, 5, 1.5, false},
		{10, 5, 1.5, false},
		{1, 10, 0, false},
		{1, 10, -2, false},
	}
	for _, c := range cases {
		_, err := NewBoundedPareto(c.l, c.h, c.a)
		if (err == nil) != c.ok {
			t.Errorf("NewBoundedPareto(%v,%v,%v) err=%v want ok=%v", c.l, c.h, c.a, err, c.ok)
		}
	}
}

func TestBoundedParetoSamplesInBounds(t *testing.T) {
	p, _ := NewBoundedPareto(1, 500, 1.5)
	rng := Split(42, 0)
	for i := 0; i < 10000; i++ {
		v := p.Sample(rng)
		if v < p.L || v > p.H {
			t.Fatalf("sample %v outside [%v, %v]", v, p.L, p.H)
		}
	}
}

// The empirical mean over many samples should approach the analytic mean.
func TestBoundedParetoMeanMatchesSamples(t *testing.T) {
	for _, alpha := range []float64{0.8, 1.5, 3.0} {
		p, _ := NewBoundedPareto(1, 500, alpha)
		rng := Split(7, 1)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += p.Sample(rng)
		}
		emp := sum / n
		ana := p.Mean()
		if math.Abs(emp-ana)/ana > 0.05 {
			t.Errorf("alpha=%v: empirical mean %v vs analytic %v", alpha, emp, ana)
		}
	}
}

func TestBoundedParetoMeanAlphaOne(t *testing.T) {
	p, _ := NewBoundedPareto(1, 100, 1)
	want := 100.0 / 99 * math.Log(100)
	if math.Abs(p.Mean()-want) > 1e-9 {
		t.Errorf("Mean(alpha=1) = %v, want %v", p.Mean(), want)
	}
}

func TestBoundedParetoCDF(t *testing.T) {
	p, _ := NewBoundedPareto(1, 500, 1.5)
	if p.CDF(0.5) != 0 || p.CDF(1) != 0 {
		t.Error("CDF below/at L should be 0")
	}
	if p.CDF(500) != 1 || p.CDF(1000) != 1 {
		t.Error("CDF at/above H should be 1")
	}
	if !(p.CDF(2) > 0 && p.CDF(2) < p.CDF(10) && p.CDF(10) < 1) {
		t.Error("CDF not increasing on the interior")
	}
	// Pareto with alpha=1.5 concentrates low: most mass below 5.
	if p.CDF(5) < 0.5 {
		t.Errorf("CDF(5) = %v, expected heavy concentration near L", p.CDF(5))
	}
}

// Property: CDF is monotone.
func TestBoundedParetoCDFMonotone(t *testing.T) {
	p, _ := NewBoundedPareto(1, 500, 1.5)
	f := func(a, b uint16) bool {
		x, y := float64(a)/65535*600, float64(b)/65535*600
		if x > y {
			x, y = y, x
		}
		return p.CDF(x) <= p.CDF(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	a1 := Split(99, 0)
	a2 := Split(99, 0)
	b := Split(99, 1)
	if a1.Uint64() != a2.Uint64() {
		t.Fatal("same (seed, stream) should reproduce")
	}
	// Different streams should diverge (overwhelmingly likely).
	same := 0
	for i := 0; i < 10; i++ {
		if a1.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 coincide %d/10 draws", same)
	}
}

func testSchema() *resource.Schema {
	return resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
		resource.Attribute{Name: "disk", Min: 1, Max: 2000},
	)
}

func TestGeneratorValueInDomain(t *testing.T) {
	g := NewGenerator(testSchema(), 1.5)
	rng := Split(1, 2)
	for _, a := range g.Schema().Attributes() {
		for i := 0; i < 2000; i++ {
			v := g.Value(rng, a)
			if v < a.Min || v > a.Max {
				t.Fatalf("value %v outside domain of %s", v, a.Name)
			}
		}
	}
}

func TestGeneratorZeroMinDomainShift(t *testing.T) {
	// mem has Min = 0, which plain Bounded Pareto cannot represent; the
	// generator must shift rather than panic.
	g := NewGenerator(testSchema(), 1.5)
	rng := Split(3, 0)
	a, _ := g.Schema().Lookup("mem")
	v := g.Value(rng, a)
	if v < 0 || v > 8192 {
		t.Fatalf("shifted value %v out of domain", v)
	}
}

func TestAnnouncements(t *testing.T) {
	g := NewGenerator(testSchema(), 1.5)
	infos := g.Announcements(Split(5, 0), 50)
	if len(infos) != 3*50 {
		t.Fatalf("got %d announcements, want 150", len(infos))
	}
	perAttr := map[string]int{}
	for _, in := range infos {
		perAttr[in.Attr]++
		if in.Owner == "" {
			t.Fatal("announcement with empty owner")
		}
	}
	for _, a := range g.Schema().Attributes() {
		if perAttr[a.Name] != 50 {
			t.Fatalf("attribute %s has %d pieces, want 50", a.Name, perAttr[a.Name])
		}
	}
}

func TestExactQueryShape(t *testing.T) {
	g := NewGenerator(testSchema(), 1.5)
	rng := Split(6, 0)
	q := g.ExactQuery(rng, 2, "requester")
	if len(q.Subs) != 2 {
		t.Fatalf("got %d sub-queries, want 2", len(q.Subs))
	}
	if q.IsRange() {
		t.Fatal("exact query must not be a range")
	}
	if err := q.Validate(g.Schema()); err != nil {
		t.Fatalf("generated query invalid: %v", err)
	}
	// Attribute count capped at m.
	q = g.ExactQuery(rng, 10, "requester")
	if len(q.Subs) != 3 {
		t.Fatalf("attrs should cap at schema size: got %d", len(q.Subs))
	}
	seen := map[string]bool{}
	for _, sub := range q.Subs {
		if seen[sub.Attr] {
			t.Fatalf("duplicate attribute %s in query", sub.Attr)
		}
		seen[sub.Attr] = true
	}
}

func TestRangeQueryShapeAndWidth(t *testing.T) {
	g := NewGenerator(testSchema(), 1.5)
	rng := Split(8, 0)
	var fracSum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		q := g.RangeQuery(rng, 1, 0.5, "r")
		sub := q.Subs[0]
		a, _ := g.Schema().Lookup(sub.Attr)
		if err := q.Validate(g.Schema()); err != nil {
			t.Fatalf("invalid range query: %v", err)
		}
		fracSum += (sub.High - sub.Low) / (a.Max - a.Min)
	}
	// Expected width fraction: 0.25 minus clamping losses at the domain
	// edges — empirically just under 0.25; assert the modeling window.
	mean := fracSum / trials
	if mean < 0.18 || mean > 0.27 {
		t.Fatalf("mean covered fraction = %v, want ≈ 1/4", mean)
	}
}

func TestRangeQueryBadWidthFallsBack(t *testing.T) {
	g := NewGenerator(testSchema(), 1.5)
	rng := Split(9, 0)
	for _, w := range []float64{-1, 0, 1.5} {
		q := g.RangeQuery(rng, 1, w, "r")
		if err := q.Validate(g.Schema()); err != nil {
			t.Fatalf("widthFrac=%v produced invalid query: %v", w, err)
		}
	}
}

func TestHalfOpenRangeQuery(t *testing.T) {
	g := NewGenerator(testSchema(), 1.5)
	rng := Split(10, 0)
	q := g.HalfOpenRangeQuery(rng, 3, "r")
	for _, sub := range q.Subs {
		a, _ := g.Schema().Lookup(sub.Attr)
		if sub.High != a.Max {
			t.Fatalf("half-open query upper bound %v, want domain max %v", sub.High, a.Max)
		}
	}
	if err := q.Validate(g.Schema()); err != nil {
		t.Fatalf("invalid half-open query: %v", err)
	}
}

func TestUniformValue(t *testing.T) {
	g := NewGenerator(testSchema(), 1.5)
	rng := Split(11, 0)
	a, _ := g.Schema().Lookup("cpu")
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := g.UniformValue(rng, a)
		if v < a.Min || v > a.Max {
			t.Fatalf("uniform value %v outside domain", v)
		}
		sum += v
	}
	mid := (a.Min + a.Max) / 2
	if math.Abs(sum/n-mid) > 50 {
		t.Fatalf("uniform mean %v, want ≈ %v", sum/n, mid)
	}
}

func BenchmarkBoundedParetoSample(b *testing.B) {
	p, _ := NewBoundedPareto(1, 500, 1.5)
	rng := Split(1, 0)
	for i := 0; i < b.N; i++ {
		p.Sample(rng)
	}
}

func TestParetoSchemaDeclaresCDF(t *testing.T) {
	s := ParetoSchema(5, 500, 1.5)
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	a := s.At(0)
	if a.CDF == nil {
		t.Fatal("ParetoSchema attribute without CDF")
	}
	if a.CDF(0) != 0 {
		t.Fatalf("CDF(min) = %v, want 0", a.CDF(0))
	}
	if got := a.CDF(500); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CDF(max) = %v, want 1", got)
	}
	// Heavy concentration near 0 for alpha = 1.5.
	if a.CDF(5) < 0.5 {
		t.Fatalf("CDF(5) = %v, expected Pareto concentration near the minimum", a.CDF(5))
	}
}

// The declared CDF must match the generator: quantiles of generated values
// should be approximately uniform.
func TestParetoSchemaMatchesGenerator(t *testing.T) {
	s := ParetoSchema(1, 500, 1.5)
	g := NewGenerator(s, 1.5)
	rng := Split(77, 0)
	a := s.At(0)
	buckets := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		f := a.Frac(g.Value(rng, a))
		b := int(f * 10)
		if b > 9 {
			b = 9
		}
		buckets[b]++
	}
	for b, c := range buckets {
		if c < n/10*7/10 || c > n/10*13/10 {
			t.Errorf("quantile bucket %d has %d samples, want ≈ %d (uniform)", b, c, n/10)
		}
	}
}

func TestParetoSchemaBadAlphaDefaults(t *testing.T) {
	s := ParetoSchema(2, 500, -1)
	if s.At(0).CDF == nil {
		t.Fatal("fallback alpha should still declare a CDF")
	}
}

func TestSkewedAnnouncementsTotalAndSkew(t *testing.T) {
	g := NewGenerator(ParetoSchema(20, 500, 1.5), 1.5)
	infos := g.SkewedAnnouncements(Split(7, 0), 50, 1.5)
	if len(infos) != 20*50 {
		t.Fatalf("got %d announcements, want %d (total must stay m*k)", len(infos), 20*50)
	}
	perAttr := map[string]int{}
	for _, in := range infos {
		perAttr[in.Attr]++
	}
	max := 0
	for _, c := range perAttr {
		if c > max {
			max = c
		}
	}
	// Bounded Pareto popularity must concentrate pieces well beyond the
	// uniform k-per-attribute split.
	if max <= 2*50 {
		t.Fatalf("heaviest attribute has %d pieces; popularity skew had no effect (uniform would be 50)", max)
	}

	again := g.SkewedAnnouncements(Split(7, 0), 50, 1.5)
	if len(again) != len(infos) {
		t.Fatal("skewed announcements are not deterministic")
	}
	for i := range infos {
		if infos[i] != again[i] {
			t.Fatalf("announcement %d differs between identical runs: %+v vs %+v", i, infos[i], again[i])
		}
	}
}

func TestSkewedAnnouncementsUniformFallback(t *testing.T) {
	g := NewGenerator(testSchema(), 1.5)
	infos := g.SkewedAnnouncements(Split(8, 0), 40, 0)
	if len(infos) != 3*40 {
		t.Fatalf("got %d announcements, want 120", len(infos))
	}
	perAttr := map[string]int{}
	for _, in := range infos {
		perAttr[in.Attr]++
	}
	for a, c := range perAttr {
		if c != 40 {
			t.Fatalf("skew <= 0 must fall back to uniform popularity; %s has %d pieces", a, c)
		}
	}
}
