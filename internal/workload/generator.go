package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"lorm/internal/resource"
)

// Generator produces resource announcements and queries over a schema.
// Values are Bounded Pareto over each attribute's domain, shifted so the
// distribution's positivity requirement holds for domains starting at 0.
type Generator struct {
	schema *resource.Schema
	alpha  float64
}

// NewGenerator returns a workload generator with the given Pareto shape.
// alpha <= 0 selects the paper-default 1.5.
func NewGenerator(schema *resource.Schema, alpha float64) *Generator {
	if alpha <= 0 {
		alpha = 1.5
	}
	return &Generator{schema: schema, alpha: alpha}
}

// Schema returns the schema the generator draws from.
func (g *Generator) Schema() *resource.Schema { return g.schema }

// pareto builds the value distribution for one attribute. Bounded Pareto
// requires L > 0, so domains that start at or below 0 are sampled on a
// shifted axis [1, 1+span] and mapped back.
func (g *Generator) pareto(a resource.Attribute) (BoundedPareto, float64) {
	shift := 0.0
	l, h := a.Min, a.Max
	if l <= 0 {
		shift = 1 - l
		l, h = l+shift, h+shift
	}
	p, err := NewBoundedPareto(l, h, g.alpha)
	if err != nil {
		panic(fmt.Sprintf("workload: internal domain error for %q: %v", a.Name, err))
	}
	return p, shift
}

// Value draws one attribute value from the Bounded Pareto distribution,
// clamped to the attribute's domain.
func (g *Generator) Value(rng *rand.Rand, a resource.Attribute) float64 {
	p, shift := g.pareto(a)
	return a.Clamp(p.Sample(rng) - shift)
}

// UniformValue draws a uniformly distributed value, used by the value-skew
// ablation as the no-skew baseline.
func (g *Generator) UniformValue(rng *rand.Rand, a resource.Attribute) float64 {
	return a.Min + rng.Float64()*(a.Max-a.Min)
}

// Announcements generates k pieces of resource information for every
// attribute in the schema — the paper's "each attribute had k = 500
// values". Owners are synthetic addresses owner0000..; each piece has an
// independent Bounded Pareto value. The result is ordered attribute-major
// so registration order is deterministic.
func (g *Generator) Announcements(rng *rand.Rand, k int) []resource.Info {
	attrs := g.schema.Attributes()
	infos := make([]resource.Info, 0, len(attrs)*k)
	for _, a := range attrs {
		for j := 0; j < k; j++ {
			infos = append(infos, resource.Info{
				Attr:  a.Name,
				Value: g.Value(rng, a),
				Owner: fmt.Sprintf("owner%04d", j),
			})
		}
	}
	return infos
}

// SkewedAnnouncements generates announcements with Bounded Pareto
// attribute popularity: per-attribute piece counts are proportional to
// weights sampled from BoundedPareto(1, m, skew) and scaled so the total
// stays m·k — the same announcement volume as Announcements, concentrated
// on few attributes instead of spread k-per-attribute. Values are drawn
// from the generator's usual per-attribute distribution. skew <= 0 falls
// back to uniform popularity.
func (g *Generator) SkewedAnnouncements(rng *rand.Rand, k int, skew float64) []resource.Info {
	attrs := g.schema.Attributes()
	m := len(attrs)
	if skew <= 0 || m < 2 {
		return g.Announcements(rng, k)
	}
	pop, err := NewBoundedPareto(1, float64(m), skew)
	if err != nil {
		panic(fmt.Sprintf("workload: popularity distribution: %v", err))
	}
	weights := make([]float64, m)
	var sum float64
	for i := range weights {
		weights[i] = pop.Sample(rng)
		sum += weights[i]
	}
	total := m * k
	counts := make([]int, m)
	assigned := 0
	for i, w := range weights {
		counts[i] = int(w / sum * float64(total))
		assigned += counts[i]
	}
	// Hand the rounding remainder to the heaviest attributes so the total
	// is exactly m·k.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	for r := 0; r < total-assigned; r++ {
		counts[order[r%m]]++
	}
	infos := make([]resource.Info, 0, total)
	for i, a := range attrs {
		for j := 0; j < counts[i]; j++ {
			infos = append(infos, resource.Info{
				Attr:  a.Name,
				Value: g.Value(rng, a),
				Owner: fmt.Sprintf("owner%04d", j),
			})
		}
	}
	return infos
}

// pickAttrs selects `count` distinct attribute indices uniformly at random
// ("the resource attributes in a node resource request were randomly
// generated").
func (g *Generator) pickAttrs(rng *rand.Rand, count int) []int {
	m := g.schema.Len()
	if count > m {
		count = m
	}
	idx := rng.Perm(m)[:count]
	return idx
}

// ExactQuery builds a non-range query over `attrs` randomly chosen
// attributes; each sub-query requests one sampled value exactly.
func (g *Generator) ExactQuery(rng *rand.Rand, attrs int, requester string) resource.Query {
	q := resource.Query{Requester: requester}
	for _, i := range g.pickAttrs(rng, attrs) {
		a := g.schema.At(i)
		v := g.Value(rng, a)
		q.Subs = append(q.Subs, resource.SubQuery{Attr: a.Name, Low: v, High: v})
	}
	return q
}

// RangeQuery builds a range query over `attrs` randomly chosen attributes.
// Each sub-query's range is generated in quantile space — a uniformly
// distributed center and a width uniform on (0, widthFrac] of the
// distribution's mass, mapped back to values through the attribute's
// quantile function. The experiments use widthFrac = 0.5, making the
// expected covered mass (and hence the expected fraction of value-keyed
// nodes probed) 1/4, the average-case constant of Theorem 4.9 (n/4 probed
// nodes system-wide, d/4 within a LORM cluster).
func (g *Generator) RangeQuery(rng *rand.Rand, attrs int, widthFrac float64, requester string) resource.Query {
	if widthFrac <= 0 || widthFrac > 1 {
		widthFrac = 0.5
	}
	q := resource.Query{Requester: requester}
	for _, i := range g.pickAttrs(rng, attrs) {
		a := g.schema.At(i)
		width := rng.Float64() * widthFrac
		center := rng.Float64()
		fLo, fHi := center-width/2, center+width/2
		if fLo < 0 {
			fLo = 0
		}
		if fHi > 1 {
			fHi = 1
		}
		lo, hi := a.Quantile(fLo), a.Quantile(fHi)
		if lo > hi {
			lo, hi = hi, lo
		}
		q.Subs = append(q.Subs, resource.SubQuery{Attr: a.Name, Low: lo, High: hi})
	}
	return q
}

// ParetoSchema generates m synthetic attributes like
// resource.SyntheticSchema but declares each attribute's Bounded Pareto
// CDF, enabling the distribution-aware ("uniform") locality-preserving
// hashing of MAAN [3] in every system. The workload generator must be
// built with the same alpha for the declared distribution to match the
// generated values.
func ParetoSchema(m int, span, alpha float64) *resource.Schema {
	if alpha <= 0 {
		alpha = 1.5
	}
	attrs := make([]resource.Attribute, m)
	for i := range attrs {
		a := resource.Attribute{Name: fmt.Sprintf("attr%03d", i), Min: 0, Max: span}
		// Domain starts at 0, so the distribution lives on the shifted axis
		// [1, 1+span], exactly as Generator.Value samples it.
		p, err := NewBoundedPareto(1, 1+span, alpha)
		if err != nil {
			panic(fmt.Sprintf("workload: pareto schema: %v", err))
		}
		a.CDF = func(v float64) float64 { return p.CDF(v + 1) }
		attrs[i] = a
	}
	return resource.MustSchema(attrs...)
}

// HalfOpenRangeQuery builds "attribute >= v" style queries ("CPU ≥ 1.8GHz"),
// the other range form the paper describes. The upper bound is the domain
// maximum.
func (g *Generator) HalfOpenRangeQuery(rng *rand.Rand, attrs int, requester string) resource.Query {
	q := resource.Query{Requester: requester}
	for _, i := range g.pickAttrs(rng, attrs) {
		a := g.schema.At(i)
		v := g.Value(rng, a)
		q.Subs = append(q.Subs, resource.SubQuery{Attr: a.Name, Low: v, High: a.Max})
	}
	return q
}
