// Package workload generates the paper's synthetic workload: resource
// values drawn from a Bounded Pareto distribution, resource announcements
// (k pieces of information per attribute), and multi-attribute exact and
// range queries with randomly chosen attributes.
//
// Every generator is driven by an explicit *rand.Rand so experiments are
// reproducible; Split derives independent deterministic sub-streams for
// each purpose (values, query attributes, churn arrivals).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// BoundedPareto is a Pareto distribution truncated to [L, H] with shape
// parameter Alpha, the distribution the paper uses "to generate resource
// values owned by a node and requested by a node". Smaller Alpha means a
// heavier tail (more mass near L on an inverted scale — concretely, samples
// concentrate near L and occasionally reach H).
type BoundedPareto struct {
	L, H  float64
	Alpha float64
}

// NewBoundedPareto validates the parameters and returns the distribution.
func NewBoundedPareto(l, h, alpha float64) (BoundedPareto, error) {
	if !(l > 0) || !(h > l) {
		return BoundedPareto{}, fmt.Errorf("workload: bounded pareto needs 0 < L < H, got L=%v H=%v", l, h)
	}
	if !(alpha > 0) {
		return BoundedPareto{}, fmt.Errorf("workload: bounded pareto needs alpha > 0, got %v", alpha)
	}
	return BoundedPareto{L: l, H: h, Alpha: alpha}, nil
}

// Sample draws one value in [L, H] by inverse-transform sampling:
//
//	F(x) = (1 - L^a x^-a) / (1 - (L/H)^a)
func (p BoundedPareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	la := math.Pow(p.L, p.Alpha)
	ha := math.Pow(p.H, p.Alpha)
	// Invert the CDF. The standard closed form:
	//   x = ( -(u*H^a - u*L^a - H^a) / (H^a * L^a) )^(-1/a)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	if x < p.L {
		x = p.L
	}
	if x > p.H {
		x = p.H
	}
	return x
}

// Mean returns the analytic mean of the distribution.
func (p BoundedPareto) Mean() float64 {
	a := p.Alpha
	if a == 1 {
		// lim a->1 of the general form.
		return p.L * p.H / (p.H - p.L) * math.Log(p.H/p.L)
	}
	la := math.Pow(p.L, a)
	return la / (1 - math.Pow(p.L/p.H, a)) * (a / (a - 1)) *
		(1/math.Pow(p.L, a-1) - 1/math.Pow(p.H, a-1))
}

// CDF returns P[X <= x].
func (p BoundedPareto) CDF(x float64) float64 {
	if x <= p.L {
		return 0
	}
	if x >= p.H {
		return 1
	}
	la := math.Pow(p.L, p.Alpha)
	return (1 - la*math.Pow(x, -p.Alpha)) / (1 - math.Pow(p.L/p.H, p.Alpha))
}

// Split derives the i-th independent deterministic PRNG stream from a base
// seed. Distinct purposes in an experiment (values, queries, churn) use
// distinct stream indices so adding draws to one stream does not perturb
// the others.
func Split(seed int64, i int) *rand.Rand {
	// SplitMix64-style avalanche over (seed, i) to decorrelate the streams.
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
