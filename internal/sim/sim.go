// Package sim provides a deterministic discrete-event simulator: a virtual
// clock and a priority queue of scheduled events. The churn experiments
// drive node joins, departures, stabilization rounds and query arrivals
// through it, so "one join and one departure every 2.5 seconds" costs no
// wall-clock time and every run is reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is one scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-break: insertion order, for determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Scheduler owns a virtual clock. The zero value is ready to use; it is
// not safe for concurrent use — events run sequentially, which is exactly
// what makes churn runs reproducible.
type Scheduler struct {
	now    float64
	seq    uint64
	events eventHeap
	ran    uint64
}

// Now returns the current virtual time (seconds).
func (s *Scheduler) Now() float64 { return s.now }

// Pending returns the number of scheduled events not yet run.
func (s *Scheduler) Pending() int { return len(s.events) }

// Ran returns the number of events executed so far.
func (s *Scheduler) Ran() uint64 { return s.ran }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Scheduler) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn d seconds from the current virtual time.
func (s *Scheduler) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Step runs the single earliest event, advancing the clock to it. It
// returns false when no events remain.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.ran++
	e.fn()
	return true
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// exactly t. Events scheduled by running events are honored if they fall
// within the horizon.
func (s *Scheduler) RunUntil(t float64) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Run executes every event until the queue drains. Self-perpetuating event
// chains (a churn process re-scheduling itself forever) must be bounded by
// the caller via RunUntil instead.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
