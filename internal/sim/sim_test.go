package sim

import (
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Scheduler
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
	if s.Ran() != 3 {
		t.Fatalf("Ran = %d", s.Ran())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	var s Scheduler
	var order []string
	s.At(1, func() { order = append(order, "first") })
	s.At(1, func() { order = append(order, "second") })
	s.Run()
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("same-time events reordered: %v", order)
	}
}

func TestAfterIsRelative(t *testing.T) {
	var s Scheduler
	var at []float64
	s.At(5, func() {
		s.After(2, func() { at = append(at, s.Now()) })
	})
	s.Run()
	if len(at) != 1 || at[0] != 7 {
		t.Fatalf("After fired at %v, want [7]", at)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	var s Scheduler
	fired := false
	s.After(-3, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatalf("negative After mishandled: fired=%v now=%v", fired, s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var s Scheduler
	s.At(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestRunUntilHorizon(t *testing.T) {
	var s Scheduler
	var ran []float64
	reschedule := func() {}
	reschedule = func() {
		ran = append(ran, s.Now())
		s.After(1, reschedule) // self-perpetuating chain
	}
	s.At(0, reschedule)
	s.RunUntil(4.5)
	if len(ran) != 5 { // t = 0,1,2,3,4
		t.Fatalf("ran %d events, want 5 (%v)", len(ran), ran)
	}
	if s.Now() != 4.5 {
		t.Fatalf("Now = %v, want 4.5", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestStepEmpty(t *testing.T) {
	var s Scheduler
	if s.Step() {
		t.Fatal("Step on empty scheduler returned true")
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Scheduler
	total := 0
	s.At(1, func() {
		total++
		s.At(s.Now(), func() { total++ }) // same-time nested event
	})
	s.Run()
	if total != 2 {
		t.Fatalf("total = %d, want 2", total)
	}
}
