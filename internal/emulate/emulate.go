// Package emulate adapts an in-process discovery deployment to wide-area
// timing. The simulated systems resolve every overlay hop at CPU speed; a
// real grid pays a network round trip per message. WithHopLatency restores
// that cost at the serving boundary: each operation sleeps for its measured
// message count times a per-hop delay, so a gateway fronting the wrapped
// system exhibits the latency profile the paper's deployments would see —
// and transport-level techniques (pipelining, batching) can be measured
// against realistic service times instead of microsecond stubs.
package emulate

import (
	"fmt"
	"time"

	"lorm/internal/discovery"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// HopLatency wraps a discovery.System so every Register/Discover sleeps
// Cost.Messages × PerHop after the in-process resolution, emulating the
// sequential wide-area forwarding a real deployment pays. The wrapper
// passes through the Traced, Dynamic and routing.Instrumented faces of the
// underlying system so gateways keep tracing, membership and metrics
// behavior.
type HopLatency struct {
	discovery.System
	PerHop time.Duration
}

// WithHopLatency returns sys emulating perHop of one-way delay per overlay
// message; perHop ≤ 0 returns sys unchanged.
func WithHopLatency(sys discovery.System, perHop time.Duration) discovery.System {
	if perHop <= 0 {
		return sys
	}
	return &HopLatency{System: sys, PerHop: perHop}
}

// sleep charges one operation's wide-area time: its message count (hops
// plus directory visits, each one network message in a real deployment)
// times the per-hop delay. Failed operations still traveled their partial
// path, so the charge applies regardless of error.
func (h *HopLatency) sleep(c discovery.Cost) {
	if n := c.Messages; n > 0 {
		time.Sleep(time.Duration(n) * h.PerHop)
	}
}

// Register announces one piece and charges its wide-area cost.
func (h *HopLatency) Register(info resource.Info) (discovery.Cost, error) {
	cost, err := h.System.Register(info)
	h.sleep(cost)
	return cost, err
}

// Discover resolves a query and charges its wide-area cost.
func (h *HopLatency) Discover(q resource.Query) (*discovery.Result, error) {
	res, err := h.System.Discover(q)
	if res != nil {
		h.sleep(res.Cost)
	}
	return res, err
}

// RegisterTraced joins the caller's trace context when the underlying
// system supports tracing, falling back to the plain verb otherwise.
func (h *HopLatency) RegisterTraced(info resource.Info, tc discovery.TraceContext) (discovery.Cost, error) {
	tr, ok := h.System.(discovery.Traced)
	if !ok {
		return h.Register(info)
	}
	cost, err := tr.RegisterTraced(info, tc)
	h.sleep(cost)
	return cost, err
}

// DiscoverTraced joins the caller's trace context when the underlying
// system supports tracing, falling back to the plain verb otherwise.
func (h *HopLatency) DiscoverTraced(q resource.Query, tc discovery.TraceContext) (*discovery.Result, error) {
	tr, ok := h.System.(discovery.Traced)
	if !ok {
		return h.Discover(q)
	}
	res, err := tr.DiscoverTraced(q, tc)
	if res != nil {
		h.sleep(res.Cost)
	}
	return res, err
}

// AddNode passes a join through to a dynamic underlying system.
func (h *HopLatency) AddNode(addr string) error {
	dyn, ok := h.System.(discovery.Dynamic)
	if !ok {
		return fmt.Errorf("system %s does not support membership changes", h.Name())
	}
	return dyn.AddNode(addr)
}

// RemoveNode passes a graceful departure through to a dynamic underlying
// system.
func (h *HopLatency) RemoveNode(addr string) error {
	dyn, ok := h.System.(discovery.Dynamic)
	if !ok {
		return fmt.Errorf("system %s does not support membership changes", h.Name())
	}
	return dyn.RemoveNode(addr)
}

// NodeAddrs lists live node addresses of a dynamic underlying system.
func (h *HopLatency) NodeAddrs() []string {
	if dyn, ok := h.System.(discovery.Dynamic); ok {
		return dyn.NodeAddrs()
	}
	return nil
}

// Maintain runs one stabilization round of a dynamic underlying system.
func (h *HopLatency) Maintain() {
	if dyn, ok := h.System.(discovery.Dynamic); ok {
		dyn.Maintain()
	}
}

// RoutingFabric exposes the underlying system's fabric for observers; nil
// when the underlying system is not instrumented (callers must check).
func (h *HopLatency) RoutingFabric() *routing.Fabric {
	if inst, ok := h.System.(routing.Instrumented); ok {
		return inst.RoutingFabric()
	}
	return nil
}
