package emulate

import (
	"fmt"
	"testing"
	"time"

	"lorm/internal/core"
	"lorm/internal/discovery"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

func testSystem(t *testing.T) *core.System {
	t.Helper()
	schema := resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
	)
	sys, err := core.New(core.Config{D: 4, Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 16)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%02d", i)
	}
	if err := sys.AddNodes(addrs); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestZeroLatencyReturnsUnwrapped(t *testing.T) {
	sys := testSystem(t)
	if got := WithHopLatency(sys, 0); got != discovery.System(sys) {
		t.Fatalf("WithHopLatency(sys, 0) = %T, want the original system", got)
	}
}

func TestHopLatencyChargesMessages(t *testing.T) {
	sys := testSystem(t)
	wrapped := WithHopLatency(sys, time.Millisecond)

	start := time.Now()
	cost, err := wrapped.Register(resource.Info{Attr: "cpu", Value: 1000, Owner: "owner-a"})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if cost.Messages <= 0 {
		t.Fatalf("register cost has no messages: %v", cost)
	}
	if want := time.Duration(cost.Messages) * time.Millisecond; elapsed < want {
		t.Fatalf("register took %v, want at least %v (%d messages × 1ms)", elapsed, want, cost.Messages)
	}

	start = time.Now()
	res, err := wrapped.Discover(resource.Query{
		Subs:      []resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}},
		Requester: "req-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed = time.Since(start)
	if want := time.Duration(res.Cost.Messages) * time.Millisecond; elapsed < want {
		t.Fatalf("discover took %v, want at least %v (%d messages × 1ms)", elapsed, want, res.Cost.Messages)
	}
}

func TestHopLatencyPreservesFaces(t *testing.T) {
	sys := testSystem(t)
	wrapped := WithHopLatency(sys, time.Microsecond)

	inst, ok := wrapped.(routing.Instrumented)
	if !ok {
		t.Fatal("wrapper lost the Instrumented face")
	}
	if inst.RoutingFabric() != sys.RoutingFabric() {
		t.Fatal("wrapper does not expose the underlying fabric")
	}
	if _, ok := wrapped.(discovery.Traced); !ok {
		t.Fatal("wrapper lost the Traced face")
	}
	dyn, ok := wrapped.(discovery.Dynamic)
	if !ok {
		t.Fatal("wrapper lost the Dynamic face")
	}
	before := wrapped.NodeCount()
	if err := dyn.AddNode("node-new"); err != nil {
		t.Fatal(err)
	}
	if got := wrapped.NodeCount(); got != before+1 {
		t.Fatalf("node count after join = %d, want %d", got, before+1)
	}
	if len(dyn.NodeAddrs()) != before+1 {
		t.Fatalf("NodeAddrs length = %d, want %d", len(dyn.NodeAddrs()), before+1)
	}
}
