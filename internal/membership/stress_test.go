package membership

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentChurnStress hammers the service with concurrent shuffle
// ticks, joins, leaves, crashes and read-side queries. Run with -race:
// the point is that the shuffle exchange holds its locking discipline
// under churn, not any particular outcome.
func TestConcurrentChurnStress(t *testing.T) {
	s := newService(t, 9, Config{CacheSize: 10, ShuffleLen: 5, ConfirmAfter: 5})
	s.Bootstrap(addrs(64))
	s.OnConfirm(func(string) {})

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			s.Tick(float64(i + 1))
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < rounds; i++ {
			s.Join(fmt.Sprintf("joiner-%03d", i))
			if i%3 == 0 {
				s.Leave(fmt.Sprintf("joiner-%03d", rng.Intn(i+1)))
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			s.Crash(fmt.Sprintf("node-%04d", i%16))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			_ = s.Members()
			_ = s.Stats()
			_ = s.SuspectCount()
			_ = s.Sample(fmt.Sprintf("node-%04d", 20+i%16), 4)
			_ = s.KnownBy("node-0030")
			_ = s.Fingerprint()
		}
	}()
	wg.Wait()

	// Invariants survive the storm: counters are consistent and every
	// surviving cache respects its bound.
	st := s.Stats()
	if st.Replies > st.Shuffles {
		t.Fatalf("replies %d exceed shuffles %d", st.Replies, st.Shuffles)
	}
	if st.Cleared+st.Confirms > st.Suspicions { // every close consumed an open case
		t.Fatalf("inconsistent detector ledger: %+v", st)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for a, v := range s.views {
		if len(v.cache) > s.cfg.CacheSize {
			t.Fatalf("%s cache grew to %d entries under churn", a, len(v.cache))
		}
	}
}
