package membership

import (
	"encoding/binary"
	"fmt"
)

// Wire format for gossip shuffle messages. The simulated exchange encodes
// and decodes every sample through this codec so the bytes a real
// deployment would put on the wire are exercised continuously, and the
// fuzz harness covers the same decoder the protocol runs on.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   [2]byte  0xg7 'G','S'  (fixed)
//	version byte     1
//	kind    byte     1=request 2=reply
//	from    uvarint length + bytes
//	count   uvarint
//	peers   count × (uvarint length + addr bytes, uvarint age)
const (
	codecVersion = 1

	// KindRequest is the shuffle-initiator half of an exchange.
	KindRequest = 1
	// KindReply is the responder half.
	KindReply = 2

	// maxAddrLen bounds a single address; anything longer is a corrupt or
	// hostile frame.
	maxAddrLen = 256
	// maxPeers bounds the descriptor list; shuffles carry at most a cache's
	// worth of peers, so anything larger is rejected before allocation.
	maxPeers = 1024
)

var codecMagic = [2]byte{'G', 'S'}

// Message is one decoded shuffle frame.
type Message struct {
	Kind  byte
	From  string
	Peers []Peer
}

// Append encodes the message onto buf and returns the extended slice.
func (m Message) Append(buf []byte) []byte {
	buf = append(buf, codecMagic[0], codecMagic[1], codecVersion, m.Kind)
	buf = binary.AppendUvarint(buf, uint64(len(m.From)))
	buf = append(buf, m.From...)
	buf = binary.AppendUvarint(buf, uint64(len(m.Peers)))
	for _, p := range m.Peers {
		buf = binary.AppendUvarint(buf, uint64(len(p.Addr)))
		buf = append(buf, p.Addr...)
		buf = binary.AppendUvarint(buf, uint64(p.Age))
	}
	return buf
}

// Decode parses one shuffle frame. It never panics on arbitrary input and
// refuses to allocate more than the declared, bounds-checked sizes.
func Decode(data []byte) (Message, error) {
	var m Message
	if len(data) < 4 {
		return m, fmt.Errorf("membership: frame too short (%d bytes)", len(data))
	}
	if data[0] != codecMagic[0] || data[1] != codecMagic[1] {
		return m, fmt.Errorf("membership: bad magic %q", data[:2])
	}
	if data[2] != codecVersion {
		return m, fmt.Errorf("membership: unsupported version %d", data[2])
	}
	m.Kind = data[3]
	if m.Kind != KindRequest && m.Kind != KindReply {
		return m, fmt.Errorf("membership: unknown message kind %d", m.Kind)
	}
	rest := data[4:]
	from, rest, err := readString(rest, "from")
	if err != nil {
		return m, err
	}
	m.From = from
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return m, fmt.Errorf("membership: truncated peer count")
	}
	if count > maxPeers {
		return m, fmt.Errorf("membership: peer count %d exceeds limit %d", count, maxPeers)
	}
	rest = rest[n:]
	if count > 0 {
		m.Peers = make([]Peer, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		var addr string
		addr, rest, err = readString(rest, "peer addr")
		if err != nil {
			return m, err
		}
		age, n := binary.Uvarint(rest)
		if n <= 0 {
			return m, fmt.Errorf("membership: truncated age for peer %d", i)
		}
		if age > 1<<32-1 {
			return m, fmt.Errorf("membership: peer age %d overflows uint32", age)
		}
		rest = rest[n:]
		m.Peers = append(m.Peers, Peer{Addr: addr, Age: uint32(age)})
	}
	if len(rest) != 0 {
		return m, fmt.Errorf("membership: %d trailing bytes after frame", len(rest))
	}
	return m, nil
}

// readString reads one uvarint-prefixed string with bounds checks.
func readString(data []byte, what string) (string, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 {
		return "", nil, fmt.Errorf("membership: truncated %s length", what)
	}
	if l > maxAddrLen {
		return "", nil, fmt.Errorf("membership: %s length %d exceeds limit %d", what, l, maxAddrLen)
	}
	data = data[n:]
	if uint64(len(data)) < l {
		return "", nil, fmt.Errorf("membership: %s truncated (want %d bytes, have %d)", what, l, len(data))
	}
	return string(data[:l]), data[l:], nil
}
