package membership

import "lorm/internal/metrics"

// Process-wide gossip counters, aggregated across every Service in the
// process. metricscheck -membership reconciles these invariants: replies
// never exceed shuffles, confirms never exceed suspicions, cleared never
// exceeds suspicions.
var (
	mShuffles = metrics.Default().Counter("membership_shuffles_total",
		"gossip shuffle exchanges initiated")
	mShuffleReplies = metrics.Default().Counter("membership_shuffle_replies_total",
		"gossip shuffle exchanges that completed with a reply")
	mShuffleTimeouts = metrics.Default().Counter("membership_shuffle_timeouts_total",
		"gossip shuffle exchanges that timed out")
	mSuspicions = metrics.Default().Counter("membership_suspicions_total",
		"failure-detector suspicions opened")
	mSuspicionsCleared = metrics.Default().Counter("membership_suspicions_cleared_total",
		"failure-detector suspicions cleared by later contact")
	mConfirms = metrics.Default().Counter("membership_confirms_total",
		"failure-detector confirmations (suspicions promoted to failures)")
	mJoins = metrics.Default().Counter("membership_joins_total",
		"nodes admitted to the membership layer")
	mLeaves = metrics.Default().Counter("membership_leaves_total",
		"graceful departures processed by the membership layer")
	mCrashes = metrics.Default().Counter("membership_crashes_injected_total",
		"crash events injected into the membership layer")
	mEvictions = metrics.Default().Counter("membership_cache_evictions_total",
		"peer-cache descriptors evicted by age on overflow")
)
