package membership

import (
	"fmt"
	"math/rand"
	"testing"

	"lorm/internal/netfault"
)

func addrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%04d", i)
	}
	return out
}

func newService(t *testing.T, seed int64, cfg Config) *Service {
	t.Helper()
	cfg.Rng = rand.New(rand.NewSource(seed))
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A crashed node must be suspected via failed shuffles, stay suspected,
// and be confirmed (firing OnConfirm exactly once) after ConfirmAfter.
func TestCrashDetectedAndConfirmed(t *testing.T) {
	s := newService(t, 1, Config{ConfirmAfter: 10})
	s.Bootstrap(addrs(40))
	var confirmed []string
	s.OnConfirm(func(a string) { confirmed = append(confirmed, a) })

	s.Crash("node-0007")
	now := 0.0
	for i := 0; i < 60 && len(confirmed) == 0; i++ {
		now++
		s.Tick(now)
	}
	if len(confirmed) != 1 || confirmed[0] != "node-0007" {
		t.Fatalf("expected exactly one confirmation of node-0007, got %v", confirmed)
	}
	st := s.Stats()
	if st.Confirms != 1 {
		t.Fatalf("Confirms = %d, want 1", st.Confirms)
	}
	if st.Suspicions == 0 || st.Timeouts == 0 {
		t.Fatalf("crash produced no suspicions/timeouts: %+v", st)
	}
	// A crash detection is a true suspicion (at least the confirming one).
	if st.FalseSuspicions >= st.Suspicions {
		t.Fatalf("all %d suspicions were false despite a real crash", st.Suspicions)
	}
	// The confirmed node is gone from every view.
	for _, a := range s.Members() {
		if a == "node-0007" {
			t.Fatal("confirmed node still listed as member")
		}
	}
	if n := s.KnownBy("node-0007"); n != 0 {
		t.Fatalf("confirmed node still cached by %d peers", n)
	}
	// Running longer never re-confirms.
	for i := 0; i < 20; i++ {
		now++
		s.Tick(now)
	}
	if len(confirmed) != 1 {
		t.Fatalf("node confirmed more than once: %v", confirmed)
	}
}

// A partition shorter than ConfirmAfter produces only false suspicions,
// all of which clear after the heal; no confirmation ever fires.
func TestPartitionFalseSuspicionsClearAfterHeal(t *testing.T) {
	s := newService(t, 2, Config{ConfirmAfter: 30})
	plane := netfault.NewPlane(2)
	s.cfg.Net = plane
	s.Bootstrap(addrs(60))
	var confirmed []string
	s.OnConfirm(func(a string) { confirmed = append(confirmed, a) })

	now := 0.0
	for i := 0; i < 5; i++ { // settle
		now++
		s.Tick(now)
	}
	minority := addrs(60)[:15]
	if err := plane.StartPartition("cut", minority); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ { // well under ConfirmAfter
		now++
		s.Tick(now)
	}
	st := s.Stats()
	if st.Suspicions == 0 || st.FalseSuspicions != st.Suspicions {
		t.Fatalf("partition of live nodes: want all suspicions false, got %d/%d",
			st.FalseSuspicions, st.Suspicions)
	}
	if s.OpenFalseSuspicions() == 0 {
		t.Fatal("no open false suspicions during the partition")
	}
	plane.Heal("cut")
	for i := 0; i < 40 && s.SuspectCount() > 0; i++ {
		now++
		s.Tick(now)
	}
	if n := s.OpenFalseSuspicions(); n != 0 {
		t.Fatalf("%d false suspicions still open after heal", n)
	}
	if s.SuspectCount() != 0 {
		t.Fatalf("%d suspicions still open after heal", s.SuspectCount())
	}
	st = s.Stats()
	if st.FalseCleared != st.FalseSuspicions {
		t.Fatalf("cleared %d of %d false suspicions", st.FalseCleared, st.FalseSuspicions)
	}
	if len(confirmed) != 0 {
		t.Fatalf("short partition confirmed live nodes: %v", confirmed)
	}
}

// Join introduces a newcomer through one contact and gossip spreads its
// descriptor; Leave removes every trace.
func TestJoinSpreadsAndLeaveForgets(t *testing.T) {
	s := newService(t, 3, Config{})
	s.Bootstrap(addrs(30))
	s.Join("newcomer")
	if got := s.KnownBy("newcomer"); got != 1 {
		t.Fatalf("right after join, newcomer known by %d nodes, want 1", got)
	}
	now := 0.0
	for i := 0; i < 25; i++ {
		now++
		s.Tick(now)
	}
	if got := s.KnownBy("newcomer"); got < 3 {
		t.Fatalf("after 25 rounds newcomer only known by %d nodes", got)
	}
	if sample := s.Sample("newcomer", 4); len(sample) == 0 {
		t.Fatal("newcomer's cache is empty after gossip rounds")
	}
	s.Leave("newcomer")
	if got := s.KnownBy("newcomer"); got != 0 {
		t.Fatalf("after leave, newcomer still known by %d nodes", got)
	}
	st := s.Stats()
	if st.Joins != 1 || st.Leaves != 1 {
		t.Fatalf("joins/leaves = %d/%d, want 1/1", st.Joins, st.Leaves)
	}
}

// Identical seeds must replay identical views tick for tick — the
// deterministic-replay guarantee the experiments rely on.
func TestReplayIdenticalViews(t *testing.T) {
	run := func() (*Service, []uint64) {
		s := newService(t, 42, Config{CacheSize: 12, ShuffleLen: 6})
		plane := netfault.NewPlane(42)
		s.cfg.Net = plane
		s.Bootstrap(addrs(50))
		var prints []uint64
		now := 0.0
		for i := 0; i < 30; i++ {
			now++
			if i == 5 {
				plane.StartPartition("cut", addrs(50)[:10])
				s.Crash("node-0033")
			}
			if i == 15 {
				plane.Heal("cut")
				s.Join("late-joiner")
			}
			s.Tick(now)
			prints = append(prints, s.Fingerprint())
		}
		return s, prints
	}
	a, pa := run()
	b, pb := run()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("replay diverged at tick %d: %x vs %x", i, pa[i], pb[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("replay stats diverged:\n%+v\n%+v", a.Stats(), b.Stats())
	}
	// Sanity: different seeds actually produce different histories.
	c := newService(t, 43, Config{CacheSize: 12, ShuffleLen: 6})
	c.Bootstrap(addrs(50))
	for i := 0; i < 30; i++ {
		c.Tick(float64(i + 1))
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

// Cache sizes stay bounded and descriptors of departed peers wash out by
// age rather than lingering forever.
func TestCacheBoundedAndStaleWashout(t *testing.T) {
	s := newService(t, 4, Config{CacheSize: 8, ShuffleLen: 4})
	s.Bootstrap(addrs(40))
	now := 0.0
	for i := 0; i < 50; i++ {
		now++
		s.Tick(now)
	}
	s.mu.Lock()
	for a, v := range s.views {
		if len(v.cache) > 8 {
			s.mu.Unlock()
			t.Fatalf("%s cache grew to %d entries (bound 8)", a, len(v.cache))
		}
	}
	s.mu.Unlock()
}
