// Package membership is a Cyclon-style peer-sampling service with a
// heartbeat failure detector — the gossip substrate under both overlays.
//
// Every node keeps a bounded cache of peer descriptors {addr, age}. Once
// per shuffle period it ages its cache, picks the oldest descriptor, and
// exchanges a small sample with that peer; fresh descriptors displace the
// oldest ones, so unresponsive peers wash out of caches by age while
// information about live peers keeps mixing epidemically. Shuffle requests
// and replies travel through an optional Network predicate — plug in a
// netfault.Plane and partitions, blackholes and message drop act on the
// gossip exactly as they act on queries.
//
// Failure detection is driven by contact, not by a global table: a shuffle
// that goes unanswered makes the initiator suspect the target; suspects
// are probed every round, a successful probe clears the suspicion (a
// cleared suspicion of a live node is a false suspicion — the detector's
// measured error rate), and a suspicion that stays unanswered for
// ConfirmAfter is confirmed. Confirmation fires the OnConfirm hook exactly
// once per node — the experiments wire it to discovery.Crashable.FailNode,
// so overlay-level failure handling happens only when the gossip layer has
// actually detected the failure, never from the omniscient fault plan. A
// partition that outlasts ConfirmAfter therefore produces split-brain
// confirmations of live nodes, exactly the tradeoff a real deployment
// tunes ConfirmAfter against.
//
// The service is deterministic: one seeded RNG drives every draw, nodes
// tick in a stable order, and identical seeds replay identical views (see
// TestReplayIdenticalViews). All public methods are safe for concurrent
// use; simulation runs drive Tick from a sim.Scheduler while churn
// processes call Join/Leave/Crash from scheduled events.
package membership

import (
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math/rand"
	"sort"
	"sync"

	"lorm/internal/sim"
)

// Network decides message delivery between nodes; netfault.Plane
// implements it. A nil Network delivers everything.
type Network interface {
	Deliver(from, to string) bool
}

// Config parameterizes a Service.
type Config struct {
	// CacheSize bounds each node's peer cache (default 16).
	CacheSize int
	// ShuffleLen is the number of descriptors exchanged per shuffle
	// (default 8, capped at CacheSize).
	ShuffleLen int
	// ShuffleEvery is the virtual-time shuffle period (default 1s).
	ShuffleEvery float64
	// ConfirmAfter is how long a suspicion must stay unanswered before the
	// detector confirms the failure and fires OnConfirm (default 30s).
	// Partitions shorter than this heal into cleared false suspicions;
	// longer ones produce split-brain confirmations of live nodes.
	ConfirmAfter float64
	// Rng drives every random draw; required (seed it for replays).
	Rng *rand.Rand
	// Net filters shuffle and probe messages; nil delivers everything.
	Net Network
	// Logger, when non-nil, receives structured detector events:
	// suspicions and clears at Debug, confirmations at Info.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.ShuffleLen <= 0 {
		c.ShuffleLen = 8
	}
	if c.ShuffleLen > c.CacheSize {
		c.ShuffleLen = c.CacheSize
	}
	if c.ShuffleEvery <= 0 {
		c.ShuffleEvery = 1
	}
	if c.ConfirmAfter <= 0 {
		c.ConfirmAfter = 30
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Peer is one cache descriptor: a peer address and the age (in shuffle
// rounds) since the descriptor was created.
type Peer struct {
	Addr string
	Age  uint32
}

// suspicion is one monitor's open case against a target.
type suspicion struct {
	since    float64 // when the failed contact was observed
	wasFalse bool    // target was actually alive when suspected
}

// view is one node's gossip state.
type view struct {
	cache    []Peer
	suspects map[string]suspicion
	// stopped marks a crashed node: it stays in the address space (and in
	// other caches) but neither initiates nor answers shuffles, so the
	// detector has to find it the hard way.
	stopped bool
}

// Stats is the service's cumulative detector ledger.
type Stats struct {
	Shuffles, Replies, Timeouts   uint64
	Suspicions, Cleared           uint64
	FalseSuspicions, FalseCleared uint64
	Confirms                      uint64
	Joins, Leaves, Crashes        uint64
}

// Service simulates the peer-sampling layer of one deployment: every
// node's cache plus the shared failure detector.
type Service struct {
	cfg Config

	mu        sync.Mutex
	views     map[string]*view
	order     []string // deterministic tick order (insertion order)
	confirmed map[string]bool
	onConfirm func(addr string)
	stats     Stats
	now       float64
}

// New validates the configuration and creates an empty service.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.Rng == nil {
		return nil, fmt.Errorf("membership: config needs an Rng")
	}
	return &Service{
		cfg:       cfg,
		views:     make(map[string]*view),
		confirmed: make(map[string]bool),
	}, nil
}

// OnConfirm installs the confirmation hook: called exactly once per
// confirmed node, outside the service lock, in deterministic order. The
// experiments point it at discovery.Crashable.FailNode.
func (s *Service) OnConfirm(fn func(addr string)) {
	s.mu.Lock()
	s.onConfirm = fn
	s.mu.Unlock()
}

// Bootstrap creates a view for every address and seeds each cache with
// CacheSize random other members — the converged state a long-running
// gossip reaches, matching the experiments' pre-built overlays.
func (s *Service) Bootstrap(addrs []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range addrs {
		if s.views[a] == nil {
			s.views[a] = &view{suspects: make(map[string]suspicion)}
			s.order = append(s.order, a)
		}
	}
	for _, a := range addrs {
		v := s.views[a]
		want := s.cfg.CacheSize
		if want > len(s.order)-1 {
			want = len(s.order) - 1
		}
		seen := map[string]bool{a: true}
		for len(v.cache) < want {
			p := s.order[s.cfg.Rng.Intn(len(s.order))]
			if seen[p] {
				continue
			}
			seen[p] = true
			v.cache = append(v.cache, Peer{Addr: p})
		}
	}
}

// Start schedules the periodic tick loop on the scheduler.
func (s *Service) Start(sched *sim.Scheduler) {
	var loop func()
	loop = func() {
		s.Tick(sched.Now())
		sched.After(s.cfg.ShuffleEvery, loop)
	}
	sched.After(s.cfg.ShuffleEvery, loop)
}

// Members returns the live (non-crashed) addresses in tick order.
func (s *Service) Members() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.order))
	for _, a := range s.order {
		if v := s.views[a]; v != nil && !v.stopped {
			out = append(out, a)
		}
	}
	return out
}

// Join admits a newcomer: it learns one seeded-random live contact, and
// that contact learns it — the minimal introduction a join protocol
// provides; gossip spreads the descriptor from there.
func (s *Service) Join(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.views[addr] != nil || s.confirmed[addr] {
		return
	}
	v := &view{suspects: make(map[string]suspicion)}
	// Deterministic contact selection: a bounded number of draws over the
	// tick order, skipping crashed nodes.
	for tries := 0; tries < 8 && len(s.order) > 0; tries++ {
		c := s.order[s.cfg.Rng.Intn(len(s.order))]
		if cv := s.views[c]; cv != nil && !cv.stopped {
			v.cache = append(v.cache, Peer{Addr: c})
			cv.cache = s.insert(cv.cache, Peer{Addr: addr})
			break
		}
	}
	s.views[addr] = v
	s.order = append(s.order, addr)
	s.stats.Joins++
	mJoins.Inc()
	s.cfg.Logger.Debug("membership join", "node", addr, "t", s.now)
}

// Leave removes a node gracefully. The departure announcement propagates
// reliably (the graceful model of the paper), so every cache and open
// suspicion referencing the node is dropped.
func (s *Service) Leave(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.views[addr] == nil {
		return
	}
	s.removeEverywhere(addr)
	s.stats.Leaves++
	mLeaves.Inc()
	s.cfg.Logger.Debug("membership leave", "node", addr, "t", s.now)
}

// Crash marks a node unresponsive without removing it: it stops answering
// shuffles and probes, and stays in peer caches until the detector
// suspects and confirms it. This is the seam the churn layer's crash
// events use instead of calling FailNode directly.
func (s *Service) Crash(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.views[addr]
	if v == nil || v.stopped {
		return
	}
	v.stopped = true
	s.stats.Crashes++
	mCrashes.Inc()
	s.cfg.Logger.Debug("membership crash injected", "node", addr, "t", s.now)
}

// removeEverywhere drops every trace of addr (view, cache entries, open
// suspicions); the caller holds s.mu.
func (s *Service) removeEverywhere(addr string) {
	delete(s.views, addr)
	for i, a := range s.order {
		if a == addr {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	for _, a := range s.order {
		v := s.views[a]
		if v == nil {
			continue
		}
		for i := 0; i < len(v.cache); i++ {
			if v.cache[i].Addr == addr {
				v.cache = append(v.cache[:i], v.cache[i+1:]...)
				i--
			}
		}
		delete(v.suspects, addr)
	}
}

// insert adds a descriptor to a cache, deduplicating by address (younger
// age wins) and evicting the oldest entry when the cache overflows.
func (s *Service) insert(cache []Peer, p Peer) []Peer {
	for i := range cache {
		if cache[i].Addr == p.Addr {
			if p.Age < cache[i].Age {
				cache[i].Age = p.Age
			}
			return cache
		}
	}
	cache = append(cache, p)
	if len(cache) > s.cfg.CacheSize {
		oldest := 0
		for i := range cache {
			if cache[i].Age > cache[oldest].Age {
				oldest = i
			}
		}
		cache = append(cache[:oldest], cache[oldest+1:]...)
		mEvictions.Inc()
	}
	return cache
}

// deliver asks the network (if any) whether a message arrives.
func (s *Service) deliver(from, to string) bool {
	return s.cfg.Net == nil || s.cfg.Net.Deliver(from, to)
}

// responsive reports whether the node at addr would answer a message.
func (s *Service) responsive(addr string) bool {
	v := s.views[addr]
	return v != nil && !v.stopped
}

// reachableBothWays models one request/response exchange: the request must
// arrive, the peer must be up, and the response must come back.
func (s *Service) reachableBothWays(from, to string) bool {
	return s.deliver(from, to) && s.responsive(to) && s.deliver(to, from)
}

// Tick runs one shuffle round for every live node at virtual time `now`:
// probe open suspicions, age the cache, shuffle with the oldest peer, and
// suspect peers that fail to answer. Confirmation hooks collected during
// the round fire after the lock is released, in deterministic order.
func (s *Service) Tick(now float64) {
	s.mu.Lock()
	s.now = now
	var confirmedNow []string
	// s.order grows only at the tail (joins during hooks run later), so a
	// plain index loop over the starting length is stable.
	n := len(s.order)
	for i := 0; i < n && i < len(s.order); i++ {
		addr := s.order[i]
		v := s.views[addr]
		if v == nil || v.stopped {
			continue
		}
		confirmedNow = append(confirmedNow, s.probeSuspects(addr, v, now)...)
		s.shuffle(addr, v, now)
	}
	hook := s.onConfirm
	s.mu.Unlock()
	if hook != nil {
		for _, addr := range confirmedNow {
			hook(addr)
		}
	}
}

// probeSuspects sends one direct heartbeat per open suspicion and returns
// the nodes whose failure this round confirmed; the caller holds s.mu.
func (s *Service) probeSuspects(addr string, v *view, now float64) (confirmed []string) {
	if len(v.suspects) == 0 {
		return nil
	}
	targets := make([]string, 0, len(v.suspects))
	for q := range v.suspects {
		targets = append(targets, q)
	}
	sort.Strings(targets) // map order is random; probes must replay
	for _, q := range targets {
		sus := v.suspects[q]
		if s.views[q] == nil {
			delete(v.suspects, q) // target already confirmed or departed
			continue
		}
		if s.reachableBothWays(addr, q) {
			delete(v.suspects, q)
			v.cache = s.insert(v.cache, Peer{Addr: q})
			s.stats.Cleared++
			mSuspicionsCleared.Inc()
			if sus.wasFalse {
				s.stats.FalseCleared++
			}
			s.cfg.Logger.Debug("membership suspicion cleared",
				"monitor", addr, "node", q, "t", now, "suspected_for", now-sus.since)
			continue
		}
		if now-sus.since >= s.cfg.ConfirmAfter && !s.confirmed[q] {
			s.confirmed[q] = true
			s.stats.Confirms++
			mConfirms.Inc()
			s.cfg.Logger.Info("membership failure confirmed",
				"monitor", addr, "node", q, "t", now, "suspected_for", now-sus.since)
			s.removeEverywhere(q)
			confirmed = append(confirmed, q)
		}
	}
	return confirmed
}

// shuffle runs one Cyclon exchange for addr; the caller holds s.mu.
func (s *Service) shuffle(addr string, v *view, now float64) {
	for i := range v.cache {
		v.cache[i].Age++
	}
	if len(v.cache) == 0 {
		return
	}
	// Cyclon: shuffle with the oldest descriptor, removing it from the
	// cache up front — if the peer is gone it has just washed out.
	oldest := 0
	for i := range v.cache {
		if v.cache[i].Age > v.cache[oldest].Age {
			oldest = i
		}
	}
	q := v.cache[oldest]
	v.cache = append(v.cache[:oldest], v.cache[oldest+1:]...)
	if s.views[q.Addr] == nil {
		return // stale descriptor of a confirmed/departed node: drop silently
	}

	// The request sample travels through the wire codec — the same bytes a
	// real deployment would gossip — so the codec is exercised by every
	// simulated exchange, not just its unit tests.
	req := Message{Kind: KindRequest, From: addr,
		Peers: s.sampleLocked(v, q.Addr, s.cfg.ShuffleLen-1)}
	req.Peers = append(req.Peers, Peer{Addr: addr}) // self, age 0
	s.stats.Shuffles++
	mShuffles.Inc()

	decoded, err := Decode(req.Append(nil))
	if err != nil || !s.reachableBothWays(addr, q.Addr) {
		s.stats.Timeouts++
		mShuffleTimeouts.Inc()
		if _, open := v.suspects[q.Addr]; !open {
			wasFalse := s.responsive(q.Addr)
			v.suspects[q.Addr] = suspicion{since: now, wasFalse: wasFalse}
			s.stats.Suspicions++
			mSuspicions.Inc()
			if wasFalse {
				s.stats.FalseSuspicions++
			}
			s.cfg.Logger.Debug("membership suspicion",
				"monitor", addr, "node", q.Addr, "alive", wasFalse, "t", now)
		}
		return
	}
	qv := s.views[q.Addr]
	reply := Message{Kind: KindReply, From: q.Addr,
		Peers: s.sampleLocked(qv, addr, s.cfg.ShuffleLen)}
	replyDecoded, err := Decode(reply.Append(nil))
	if err != nil {
		s.stats.Timeouts++
		mShuffleTimeouts.Inc()
		return
	}
	s.stats.Replies++
	mShuffleReplies.Inc()
	for _, p := range decoded.Peers {
		if p.Addr != q.Addr && s.views[p.Addr] != nil {
			qv.cache = s.insert(qv.cache, p)
		}
	}
	for _, p := range replyDecoded.Peers {
		if p.Addr != addr && s.views[p.Addr] != nil {
			v.cache = s.insert(v.cache, p)
		}
	}
	// Contact succeeded both ways: any open suspicions between the pair
	// are cleared by the exchange itself.
	s.clearSuspicion(v, addr, q.Addr, now)
	s.clearSuspicion(qv, q.Addr, addr, now)
}

// clearSuspicion closes monitor's open case against target after a
// successful contact; the caller holds s.mu.
func (s *Service) clearSuspicion(monitorView *view, monitor, target string, now float64) {
	sus, open := monitorView.suspects[target]
	if !open {
		return
	}
	delete(monitorView.suspects, target)
	s.stats.Cleared++
	mSuspicionsCleared.Inc()
	if sus.wasFalse {
		s.stats.FalseCleared++
	}
	s.cfg.Logger.Debug("membership suspicion cleared",
		"monitor", monitor, "node", target, "t", now, "suspected_for", now-sus.since)
}

// sampleLocked draws up to k distinct descriptors from a view's cache;
// the caller holds s.mu.
func (s *Service) sampleLocked(v *view, exclude string, k int) []Peer {
	if k <= 0 || len(v.cache) == 0 {
		return nil
	}
	idx := s.cfg.Rng.Perm(len(v.cache))
	out := make([]Peer, 0, k)
	for _, i := range idx {
		if len(out) >= k {
			break
		}
		if v.cache[i].Addr == exclude {
			continue
		}
		out = append(out, v.cache[i])
	}
	return out
}

// Sample returns up to k peer addresses from a node's current cache — the
// peer-sampling answer other layers (e.g. randomized neighbor selection)
// build on.
func (s *Service) Sample(addr string, k int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.views[addr]
	if v == nil {
		return nil
	}
	peers := s.sampleLocked(v, addr, k)
	out := make([]string, len(peers))
	for i, p := range peers {
		out[i] = p.Addr
	}
	return out
}

// Stats returns the cumulative detector ledger.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SuspectCount returns the number of open suspicion edges across all
// monitors.
func (s *Service) SuspectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.order {
		if v := s.views[a]; v != nil {
			n += len(v.suspects)
		}
	}
	return n
}

// OpenFalseSuspicions returns the number of open suspicion edges whose
// target is actually alive — the detector's standing error. A healed run
// must drive this to zero.
func (s *Service) OpenFalseSuspicions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.order {
		v := s.views[a]
		if v == nil {
			continue
		}
		for q := range v.suspects {
			if s.responsive(q) {
				n++
			}
		}
	}
	return n
}

// KnownBy returns how many other nodes currently hold addr in their cache
// — the flash-crowd experiment's integration measure for newcomers.
func (s *Service) KnownBy(addr string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.order {
		if a == addr {
			continue
		}
		v := s.views[a]
		if v == nil {
			continue
		}
		for _, p := range v.cache {
			if p.Addr == addr {
				n++
				break
			}
		}
	}
	return n
}

// Fingerprint hashes every view (address, cache descriptors in order, open
// suspicions) into one value — the replay test's equality check.
func (s *Service) Fingerprint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	addrs := append([]string(nil), s.order...)
	sort.Strings(addrs)
	h := fnv.New64a()
	for _, a := range addrs {
		v := s.views[a]
		if v == nil {
			continue
		}
		fmt.Fprintf(h, "%s|%v|", a, v.stopped)
		for _, p := range v.cache {
			fmt.Fprintf(h, "%s@%d,", p.Addr, p.Age)
		}
		sus := make([]string, 0, len(v.suspects))
		for q := range v.suspects {
			sus = append(sus, q)
		}
		sort.Strings(sus)
		for _, q := range sus {
			fmt.Fprintf(h, "!%s@%g", q, v.suspects[q].since)
		}
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}
