package membership

import (
	"reflect"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		{Kind: KindRequest, From: "node-0001"},
		{Kind: KindReply, From: "node-0002", Peers: []Peer{
			{Addr: "node-0003", Age: 0},
			{Addr: "node-0004", Age: 17},
			{Addr: "a-much-longer-address.example:9000", Age: 1<<32 - 1},
		}},
	}
	for _, in := range msgs {
		out, err := Decode(in.Append(nil))
		if err != nil {
			t.Fatalf("decode of freshly encoded %+v failed: %v", in, err)
		}
		if out.Kind != in.Kind || out.From != in.From || !reflect.DeepEqual(out.Peers, in.Peers) {
			t.Fatalf("round trip mangled message: %+v -> %+v", in, out)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := Message{Kind: KindRequest, From: "n1",
		Peers: []Peer{{Addr: "n2", Age: 3}}}.Append(nil)
	cases := map[string][]byte{
		"empty":          {},
		"short":          valid[:3],
		"bad magic":      append([]byte{'X', 'Y'}, valid[2:]...),
		"bad version":    append([]byte{'G', 'S', 99}, valid[3:]...),
		"bad kind":       append([]byte{'G', 'S', codecVersion, 9}, valid[4:]...),
		"truncated body": valid[:len(valid)-2],
		"trailing junk":  append(append([]byte{}, valid...), 0xff),
		// Declares 500 peers but carries none: must error, not allocate.
		"lying count": append(append([]byte{}, valid[:6]...), 0xf4, 0x03),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted malformed frame", name)
		}
	}
}
