package membership

import "testing"

// FuzzDecodeShuffle feeds arbitrary bytes to the gossip frame decoder: it
// must never panic or over-allocate, only return errors. (Runs its seed
// corpus — f.Add plus testdata/fuzz — under plain `go test`; use
// `go test -fuzz FuzzDecodeShuffle` to explore.)
func FuzzDecodeShuffle(f *testing.F) {
	valid := Message{Kind: KindReply, From: "node-0001", Peers: []Peer{
		{Addr: "node-0002", Age: 4}, {Addr: "node-0003", Age: 0},
	}}.Append(nil)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{'G', 'S', codecVersion, KindRequest})
	f.Add([]byte("not a gossip frame"))
	// Header that declares maxPeers+1 descriptors.
	f.Add(append([]byte{'G', 'S', codecVersion, KindRequest, 0}, 0x81, 0x08))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data) // must not panic
		if err == nil {
			// Whatever decodes must re-encode and decode back identically.
			again, err2 := Decode(m.Append(nil))
			if err2 != nil {
				t.Fatalf("re-decode of valid frame failed: %v", err2)
			}
			if again.Kind != m.Kind || again.From != m.From || len(again.Peers) != len(m.Peers) {
				t.Fatalf("re-encode changed frame: %+v -> %+v", m, again)
			}
		}
	})
}

// FuzzShuffleRoundTrip: every encodable message must decode back equal.
func FuzzShuffleRoundTrip(f *testing.F) {
	f.Add(byte(KindRequest), "node-0001", "node-0002", uint32(0))
	f.Add(byte(KindReply), "n", "", uint32(1<<32-1))
	f.Fuzz(func(t *testing.T, kind byte, from, peer string, age uint32) {
		if kind != KindRequest && kind != KindReply {
			kind = KindRequest
		}
		if len(from) > maxAddrLen {
			from = from[:maxAddrLen]
		}
		if len(peer) > maxAddrLen {
			peer = peer[:maxAddrLen]
		}
		in := Message{Kind: kind, From: from}
		if peer != "" {
			in.Peers = []Peer{{Addr: peer, Age: age}}
		}
		out, err := Decode(in.Append(nil))
		if err != nil {
			t.Fatalf("decode of freshly encoded frame failed: %v", err)
		}
		if out.Kind != in.Kind || out.From != in.From || len(out.Peers) != len(in.Peers) {
			t.Fatalf("round trip mangled message: %+v -> %+v", in, out)
		}
		for i := range in.Peers {
			if out.Peers[i] != in.Peers[i] {
				t.Fatalf("peer %d mangled: %+v -> %+v", i, in.Peers[i], out.Peers[i])
			}
		}
	})
}
