// Package sword implements the single-DHT-based centralized baseline of
// the paper, modeled on SWORD (Oppenheimer et al. [6], with Chord standing
// in for Bamboo per the paper's comparative setup): a single DHT in which
// the consistent hash of the attribute name is the key, so one node pools
// ALL resource information of a given attribute.
//
// Range queries are answered entirely by that attribute root — no
// successor walking, hence the m visited nodes of Theorem 4.9 — at the
// price of the worst load balance in the comparison: k pieces concentrate
// on a single directory node (Theorem 4.4).
package sword

import (
	"fmt"
	"log/slog"
	"math/rand"

	"lorm/internal/chord"
	"lorm/internal/directory"
	"lorm/internal/discovery"
	"lorm/internal/hashing"
	"lorm/internal/replication"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// Config parameterizes a SWORD deployment.
type Config struct {
	// Bits is the identifier width of the ring (default 20).
	Bits uint
	// SuccListLen is the successor-list length.
	SuccListLen int
	// Schema is the globally known attribute set.
	Schema *resource.Schema
	// Logger, when non-nil, receives structured replication lifecycle
	// events (hot-key promotion/demotion) at Debug level.
	Logger *slog.Logger
	// FingerRng, when non-nil, enables ReCord-style randomized finger
	// selection on the ring (see chord.Config.FingerRng); seeded sources
	// replay deterministically.
	FingerRng *rand.Rand
}

// System is a SWORD deployment: one Chord ring, attribute-keyed placement.
type System struct {
	schema *resource.Schema
	ring   *chord.Ring
	rep    *replication.Replicator
	fabric *routing.Fabric
}

var (
	_ discovery.System     = (*System)(nil)
	_ discovery.Dynamic    = (*System)(nil)
	_ discovery.Crashable  = (*System)(nil)
	_ routing.Instrumented = (*System)(nil)
)

// New creates an empty SWORD system.
func New(cfg Config) (*System, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("sword: config needs a schema")
	}
	r := chord.New(chord.Config{Bits: cfg.Bits, SuccListLen: cfg.SuccListLen, Salt: "sword", FingerRng: cfg.FingerRng})
	return &System{
		schema: cfg.Schema,
		ring:   r,
		rep:    replication.NewReplicator(r.Placement(), replication.WithLogger(cfg.Logger)),
		fabric: routing.NewFabric("sword"),
	}, nil
}

// RoutingFabric implements routing.Instrumented.
func (s *System) RoutingFabric() *routing.Fabric { return s.fabric }

// AddNodes bulk-populates the ring.
func (s *System) AddNodes(addrs []string) error { return s.ring.AddBulk(addrs) }

// Ring exposes the underlying Chord ring for experiments and tests.
func (s *System) Ring() *chord.Ring { return s.ring }

// Name implements discovery.System.
func (s *System) Name() string { return "sword" }

// Schema implements discovery.System.
func (s *System) Schema() *resource.Schema { return s.schema }

// NodeCount implements discovery.System.
func (s *System) NodeCount() int { return s.ring.Size() }

// attrKey returns the ring key of an attribute: H(attr).
func (s *System) attrKey(attr string) uint64 {
	return hashing.Consistent(s.ring.Space(), attr)
}

// Register implements discovery.System: one insert under H(attr); the
// attribute root accumulates every piece of the attribute.
func (s *System) Register(info resource.Info) (discovery.Cost, error) {
	return s.RegisterTraced(info, discovery.TraceContext{})
}

// RegisterTraced implements discovery.Traced: Register parented under the
// caller's trace context.
func (s *System) RegisterTraced(info resource.Info, tc discovery.TraceContext) (cost discovery.Cost, err error) {
	if _, ok := s.schema.Lookup(info.Attr); !ok {
		return cost, fmt.Errorf("sword: unknown attribute %q", info.Attr)
	}
	key := s.attrKey(info.Attr)
	from, err := s.ring.NodeNear(info.Owner)
	if err != nil {
		return cost, err
	}
	op := s.fabric.BeginTraced(routing.OpRegister, info.Owner, tc)
	e := directory.Entry{Key: key, Info: info}
	route, err := s.ring.InsertOp(op, from, key, e)
	if err != nil {
		op.Finish()
		return cost, err
	}
	// Replication extension: the attribute pool's copies go on the root's
	// ring successors, and a re-announce invalidates any hot-key promotion
	// of the pool.
	s.rep.Place(op, route.Root.ID, e)
	return op.Finish(), nil
}

// Discover implements discovery.System: each sub-query is one lookup; the
// attribute root scans its pooled directory for the value range and the
// search stops there ("in SWORD, the resource searching stops").
func (s *System) Discover(q resource.Query) (*discovery.Result, error) {
	return s.DiscoverTraced(q, discovery.TraceContext{})
}

// DiscoverTraced implements discovery.Traced: Discover parented under the
// caller's trace context.
func (s *System) DiscoverTraced(q resource.Query, tc discovery.TraceContext) (*discovery.Result, error) {
	if err := q.Validate(s.schema); err != nil {
		return nil, err
	}
	op := s.fabric.BeginTraced(routing.OpDiscover, q.Requester, tc)
	defer op.Finish()
	res, err := discovery.RunSubs(q, func(sub resource.SubQuery) ([]resource.Info, error) {
		from, err := s.ring.NodeNear(q.Requester)
		if err != nil {
			return nil, err
		}
		// Replica-aware read: every SWORD sub-query — range or exact — is a
		// single-key read of the H(attr) pool, so when the pool is
		// hot-promoted any sub-query can fan out over the wholesale pool
		// copies power-of-two-choices style, probing the losing candidate.
		key := s.attrKey(sub.Attr)
		if plan, ok := s.rep.PlanRead(key); ok {
			route, err := s.ring.LookupOp(op, from, plan.Target.Pos)
			if err != nil {
				return nil, err
			}
			op.Visit(route.Root.Addr, route.Root.ID)
			op.Forward(plan.Probe.Addr, plan.Probe.Pos, routing.ReasonReplicaRead)
			return route.Root.Dir.Match(sub.Attr, sub.Low, sub.High), nil
		}
		route, err := s.ring.LookupOp(op, from, key)
		if err != nil {
			return nil, err
		}
		op.Visit(route.Root.Addr, route.Root.ID)
		return route.Root.Dir.Match(sub.Attr, sub.Low, sub.High), nil
	})
	if err != nil {
		return nil, err
	}
	res.Cost = op.Cost()
	return res, nil
}

// DirectorySizes implements discovery.System.
func (s *System) DirectorySizes() []int { return s.ring.DirectorySizes() }

// OutlinkCounts implements discovery.System.
func (s *System) OutlinkCounts() []int { return s.ring.OutlinkCounts() }

// AddNode implements discovery.Dynamic.
func (s *System) AddNode(addr string) error {
	_, err := s.ring.Join(addr)
	return err
}

// RemoveNode implements discovery.Dynamic.
func (s *System) RemoveNode(addr string) error {
	n, ok := s.ring.NodeByAddr(addr)
	if !ok {
		return fmt.Errorf("sword: no node with address %q", addr)
	}
	return s.ring.Leave(n)
}

// FailNode implements discovery.Crashable: the node vanishes abruptly with
// its pooled attribute directories — no handover, no repair.
func (s *System) FailNode(addr string) (lostEntries int, err error) {
	n, ok := s.ring.NodeByAddr(addr)
	if !ok {
		return 0, fmt.Errorf("sword: no node with address %q", addr)
	}
	return s.ring.Fail(n)
}

// NodeAddrs implements discovery.Dynamic.
func (s *System) NodeAddrs() []string { return s.ring.Addrs() }

// Maintain implements discovery.Dynamic: one stabilization round, followed
// by a replica-repair pass when any replicas are in play.
func (s *System) Maintain() {
	s.ring.Stabilize()
	s.ring.FixFingers(0)
	if s.rep.Active() {
		s.rep.Repair()
	}
}
