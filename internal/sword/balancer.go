package sword

import (
	"lorm/internal/chord"
	"lorm/internal/discovery"
	"lorm/internal/loadbalance"
)

var _ discovery.Balancer = (*System)(nil)

var _ discovery.Traced = (*System)(nil)

// DirectoryLoads implements discovery.Balancer: per-node directory sizes in
// ring order.
func (s *System) DirectoryLoads() []discovery.NodeLoad {
	return nodeLoads(s.ring)
}

func nodeLoads(r *chord.Ring) []discovery.NodeLoad {
	nodes := r.Nodes()
	out := make([]discovery.NodeLoad, len(nodes))
	for i, n := range nodes {
		out[i] = discovery.NodeLoad{Addr: n.Addr, Entries: n.Dir.Len()}
	}
	return out
}

// Rebalance implements discovery.Balancer — and measures the paper's
// "centralized" verdict on SWORD rather than fixing it. Every piece of
// resource information for an attribute is stored under the single key
// H(attr), so a hotspot node's directory is one indivisible key-group: the
// migration planner can move a boundary only between key-groups, never
// through one, and shedding the whole pool to a neighbor would exceed any
// load-improving budget (the neighbor would simply become the new hotspot).
// The pass therefore typically performs zero migrations and reports the
// attribute roots as blocked hotspots; a node that happens to own several
// attribute pools can still shed whole pools when that improves balance.
func (s *System) Rebalance() (discovery.MigrationStats, error) {
	return loadbalance.RebalanceChord(s.ring, loadbalance.Options{}), nil
}
