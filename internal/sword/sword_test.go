package sword

import (
	"fmt"
	"testing"

	"lorm/internal/resource"
	"lorm/internal/workload"
)

func testSchema() *resource.Schema {
	return resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
	)
}

func build(t testing.TB, n int) *System {
	t.Helper()
	s, err := New(Config{Bits: 18, Schema: testSchema()})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := s.AddNodes(addrs); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewNeedsSchema(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without schema should error")
	}
}

// SWORD's defining property: ALL information of one attribute pools on a
// single node — the attribute root.
func TestAttributePooling(t *testing.T) {
	s := build(t, 100)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(21, 0)
	a, _ := testSchema().Lookup("cpu")
	for i := 0; i < 80; i++ {
		in := resource.Info{Attr: "cpu", Value: gen.Value(rng, a), Owner: fmt.Sprintf("o%02d", i)}
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	root, err := s.ring.OwnerOf(s.attrKey("cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if root.Dir.CountAttr("cpu") != 80 {
		t.Fatalf("attribute root holds %d cpu pieces, want all 80", root.Dir.CountAttr("cpu"))
	}
	nonZero := 0
	for _, sz := range s.DirectorySizes() {
		if sz > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Fatalf("%d nodes hold cpu information, want exactly 1", nonZero)
	}
}

// Range queries stop at the root: exactly one visited node per attribute.
func TestRangeQueryVisitsOneNodePerAttribute(t *testing.T) {
	s := build(t, 100)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(22, 0)
	for _, in := range gen.Announcements(rng, 30) {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	qrng := workload.Split(22, 1)
	for i := 0; i < 20; i++ {
		q := gen.RangeQuery(qrng, 2, 0.5, fmt.Sprintf("r%d", i))
		res, err := s.Discover(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost.Visited != 2 {
			t.Fatalf("visited %d nodes for a 2-attribute range query, want 2", res.Cost.Visited)
		}
	}
}

func TestRegisterUnknownAttribute(t *testing.T) {
	s := build(t, 10)
	if _, err := s.Register(resource.Info{Attr: "gpu", Value: 1, Owner: "x"}); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestDiscoverValidates(t *testing.T) {
	s := build(t, 10)
	if _, err := s.Discover(resource.Query{}); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestMetadataAndDynamics(t *testing.T) {
	s := build(t, 20)
	if s.Name() != "sword" || s.NodeCount() != 20 || s.Schema().Len() != 2 {
		t.Fatal("metadata wrong")
	}
	if s.Ring() == nil {
		t.Fatal("Ring accessor nil")
	}
	if err := s.AddNode("newbie"); err != nil {
		t.Fatal(err)
	}
	if s.NodeCount() != 21 {
		t.Fatalf("NodeCount after join = %d", s.NodeCount())
	}
	if err := s.RemoveNode("newbie"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode("ghost"); err == nil {
		t.Fatal("removing unknown node should error")
	}
	s.Maintain()
	if got := len(s.NodeAddrs()); got != 20 {
		t.Fatalf("NodeAddrs = %d entries, want 20", got)
	}
}
