package sword

import "lorm/internal/discovery"

var _ discovery.NetAware = (*System)(nil)

// SetReachability implements discovery.NetAware: every subsequent lookup
// on the attribute-keyed ring consults the plane.
func (s *System) SetReachability(r discovery.Reachability) {
	s.ring.SetReachability(r)
}
