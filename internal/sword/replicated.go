package sword

import (
	"lorm/internal/discovery"
	"lorm/internal/replication"
)

// SWORD's placement unit is the whole attribute pool: H(attr) maps every
// piece of an attribute to one key, so the pool's root holds all k of them
// and a replica holder necessarily holds all k of them too — per-piece
// replication would shred the one property SWORD buys with its terrible
// load balance, namely that a range query is answered by a single
// directory node. Replicating wholesale keeps that property on every
// holder: a replica answers any range over the attribute exactly as the
// root would, which is also why SWORD's replica-aware reads cover range
// sub-queries, not just exact ones. The cost is symmetric — a crash loses
// whole pools, a repair re-copies whole pools — and the directory
// concentration of Theorem 4.4 is simply multiplied by the factor.

var _ discovery.Replicated = (*System)(nil)

// SetReplicas configures the replication factor (minimum 1 =
// unreplicated). It affects subsequent Register calls; call Repair to
// bring previously stored pools up to the new factor.
func (s *System) SetReplicas(r int) error { return s.rep.SetFactor(r) }

// Replicas returns the configured replication factor.
func (s *System) Replicas() int { return s.rep.Factor() }

// Repair restores the replica invariant: every attribute pool on exactly
// its root plus effective-fan-out−1 successors. It is idempotent.
func (s *System) Repair() (added, removed int) { return s.rep.Repair() }

// PromoteHot promotes the hottest attribute pools to replicated reads,
// driven by a traffic-ledger visit report.
func (s *System) PromoteHot(visits []discovery.NodeLoad, opts replication.HotKeyOptions) int {
	return s.rep.PromoteHot(visits, opts)
}

// Replicator exposes the replication layer for experiments and tests.
func (s *System) Replicator() *replication.Replicator { return s.rep }
