package maan

import "lorm/internal/discovery"

var _ discovery.NetAware = (*System)(nil)

// SetReachability implements discovery.NetAware: every subsequent lookup
// and value-keyed range walk consults the plane.
func (s *System) SetReachability(r discovery.Reachability) {
	s.ring.SetReachability(r)
}
