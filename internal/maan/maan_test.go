package maan

import (
	"fmt"
	"testing"

	"lorm/internal/resource"
	"lorm/internal/workload"
)

func testSchema() *resource.Schema {
	return resource.MustSchema(
		resource.Attribute{Name: "cpu", Min: 100, Max: 3200},
		resource.Attribute{Name: "mem", Min: 0, Max: 8192},
	)
}

func build(t testing.TB, n int) *System {
	t.Helper()
	s, err := New(Config{Bits: 18, Schema: testSchema()})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%04d", i)
	}
	if err := s.AddNodes(addrs); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewNeedsSchema(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without schema should error")
	}
}

// MAAN's defining property: dual registration. Every piece is stored twice
// — once under the attribute index, once under the value index.
func TestDualRegistration(t *testing.T) {
	s := build(t, 64)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(31, 0)
	a, _ := testSchema().Lookup("cpu")
	const pieces = 50
	for i := 0; i < pieces; i++ {
		in := resource.Info{Attr: "cpu", Value: gen.Value(rng, a), Owner: fmt.Sprintf("o%02d", i)}
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, sz := range s.DirectorySizes() {
		total += sz
	}
	if total != 2*pieces {
		t.Fatalf("stored %d entries, want %d (dual registration)", total, 2*pieces)
	}
	// The attribute root pools one full copy.
	root, err := s.ring.OwnerOf(s.attrKey("cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Dir.CountAttr("cpu"); got < pieces {
		t.Fatalf("attribute root holds %d pieces, want ≥ %d", got, pieces)
	}
}

// Exact queries visit two nodes per attribute (attribute root and value
// root) — the factor-of-two of Theorem 4.8.
func TestExactQueryVisitsTwoNodes(t *testing.T) {
	s := build(t, 64)
	gen := workload.NewGenerator(testSchema(), 1.5)
	rng := workload.Split(32, 0)
	for _, in := range gen.Announcements(rng, 30) {
		if _, err := s.Register(in); err != nil {
			t.Fatal(err)
		}
	}
	qrng := workload.Split(32, 1)
	for i := 0; i < 20; i++ {
		q := gen.ExactQuery(qrng, 2, fmt.Sprintf("r%d", i))
		res, err := s.Discover(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost.Visited != 4 {
			t.Fatalf("visited %d nodes for a 2-attribute exact query, want 4", res.Cost.Visited)
		}
	}
}

// Results must not contain duplicates even though both indices can surface
// the same piece.
func TestNoDuplicateMatches(t *testing.T) {
	s := build(t, 32)
	in := resource.Info{Attr: "cpu", Value: 1600, Owner: "solo"}
	if _, err := s.Register(in); err != nil {
		t.Fatal(err)
	}
	res, err := s.Discover(resource.Query{
		Subs:      []resource.SubQuery{{Attr: "cpu", Low: 100, High: 3200}},
		Requester: "r",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerAttr["cpu"]) != 1 {
		t.Fatalf("matches = %v, want exactly one", res.PerAttr["cpu"])
	}
	if len(res.Owners) != 1 || res.Owners[0] != "solo" {
		t.Fatalf("Owners = %v", res.Owners)
	}
}

func TestRegisterUnknownAttribute(t *testing.T) {
	s := build(t, 8)
	if _, err := s.Register(resource.Info{Attr: "gpu", Value: 1, Owner: "x"}); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestDiscoverValidates(t *testing.T) {
	s := build(t, 8)
	if _, err := s.Discover(resource.Query{}); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestMetadataAndDynamics(t *testing.T) {
	s := build(t, 20)
	if s.Name() != "maan" || s.NodeCount() != 20 || s.Schema().Len() != 2 {
		t.Fatal("metadata wrong")
	}
	if s.Ring() == nil {
		t.Fatal("Ring accessor nil")
	}
	if err := s.AddNode("newbie"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode("newbie"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode("ghost"); err == nil {
		t.Fatal("removing unknown node should error")
	}
	s.Maintain()
	if got := len(s.NodeAddrs()); got != 20 {
		t.Fatalf("NodeAddrs = %d, want 20", got)
	}
}
