// Package maan implements the single-DHT-based decentralized baseline of
// the paper, modeled on MAAN (Cai, Frank et al. [3]): a single Chord ring
// in which every piece of resource information is registered TWICE —
// once under the consistent hash of its attribute name and once under the
// locality-preserving hash of its value — and every sub-query performs two
// lookups, one per index.
//
// The dual registration doubles the total resource-information volume
// (Theorem 4.2) and the attribute-keyed copies concentrate k pieces on one
// node per attribute; the value-keyed copies spread over the whole ring,
// so range queries walk about n/4 successors on average in addition to the
// two lookups (Theorem 4.9's m(2 + n/4)).
package maan

import (
	"fmt"
	"log/slog"
	"math/rand"

	"lorm/internal/chord"
	"lorm/internal/directory"
	"lorm/internal/discovery"
	"lorm/internal/hashing"
	"lorm/internal/replication"
	"lorm/internal/resource"
	"lorm/internal/routing"
)

// Config parameterizes a MAAN deployment.
type Config struct {
	// Bits is the identifier width of the ring (default 20).
	Bits uint
	// SuccListLen is the successor-list length.
	SuccListLen int
	// Schema is the globally known attribute set.
	Schema *resource.Schema
	// Logger, when non-nil, receives structured replication lifecycle
	// events (hot-key promotion/demotion) at Debug level.
	Logger *slog.Logger
	// FingerRng, when non-nil, enables ReCord-style randomized finger
	// selection on the ring (see chord.Config.FingerRng); seeded sources
	// replay deterministically.
	FingerRng *rand.Rand
}

// System is a MAAN deployment: one Chord ring, dual-keyed placement.
type System struct {
	schema *resource.Schema
	ring   *chord.Ring
	lph    []hashing.Locality // per-attribute value hash over the full ring
	fabric *routing.Fabric

	// Replication covers the two indices separately (see replicated.go):
	// repValue crash-protects the value-keyed half, repAttr hot-key
	// replicates the per-attribute pools.
	repValue *replication.Replicator
	repAttr  *replication.Replicator
}

var (
	_ discovery.System     = (*System)(nil)
	_ discovery.Dynamic    = (*System)(nil)
	_ discovery.Crashable  = (*System)(nil)
	_ routing.Instrumented = (*System)(nil)
)

// New creates an empty MAAN system.
func New(cfg Config) (*System, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("maan: config needs a schema")
	}
	r := chord.New(chord.Config{Bits: cfg.Bits, SuccListLen: cfg.SuccListLen, Salt: "maan", FingerRng: cfg.FingerRng})
	s := &System{schema: cfg.Schema, ring: r, fabric: routing.NewFabric("maan")}
	for _, a := range cfg.Schema.Attributes() {
		s.lph = append(s.lph, hashing.NewLocalityFrom(r.Space(), a))
	}
	s.repValue = replication.NewReplicator(r.Placement(), replication.WithFilter(s.isValueKeyed), replication.WithLogger(cfg.Logger))
	s.repAttr = replication.NewReplicator(r.Placement(), replication.WithFilter(s.isAttrKeyed), replication.WithLogger(cfg.Logger))
	return s, nil
}

// isValueKeyed reports whether an entry is the value-index copy of its
// piece: stored under ℋ(value) rather than H(attr).
func (s *System) isValueKeyed(e directory.Entry) bool {
	idx := s.schema.Index(e.Info.Attr)
	return idx >= 0 && e.Key == s.valueKey(idx, e.Info.Value)
}

// isAttrKeyed reports whether an entry is the attribute-index copy of its
// piece: stored under H(attr).
func (s *System) isAttrKeyed(e directory.Entry) bool {
	return e.Key == s.attrKey(e.Info.Attr)
}

// RoutingFabric implements routing.Instrumented.
func (s *System) RoutingFabric() *routing.Fabric { return s.fabric }

// AddNodes bulk-populates the ring.
func (s *System) AddNodes(addrs []string) error { return s.ring.AddBulk(addrs) }

// Ring exposes the underlying Chord ring for experiments and tests.
func (s *System) Ring() *chord.Ring { return s.ring }

// Name implements discovery.System.
func (s *System) Name() string { return "maan" }

// Schema implements discovery.System.
func (s *System) Schema() *resource.Schema { return s.schema }

// NodeCount implements discovery.System.
func (s *System) NodeCount() int { return s.ring.Size() }

// attrKey returns H(attr), the attribute-index key.
func (s *System) attrKey(attr string) uint64 {
	return hashing.Consistent(s.ring.Space(), attr)
}

// valueKey returns ℋ(value) for the attribute, the value-index key.
func (s *System) valueKey(idx int, v float64) uint64 {
	return s.lph[idx].Hash(v)
}

// Register implements discovery.System: the information piece is split and
// stored under both indices — two routed inserts.
func (s *System) Register(info resource.Info) (discovery.Cost, error) {
	return s.RegisterTraced(info, discovery.TraceContext{})
}

// RegisterTraced implements discovery.Traced: Register parented under the
// caller's trace context.
func (s *System) RegisterTraced(info resource.Info, tc discovery.TraceContext) (cost discovery.Cost, err error) {
	idx := s.schema.Index(info.Attr)
	if idx < 0 {
		return cost, fmt.Errorf("maan: unknown attribute %q", info.Attr)
	}
	from, err := s.ring.NodeNear(info.Owner)
	if err != nil {
		return cost, err
	}
	op := s.fabric.BeginTraced(routing.OpRegister, info.Owner, tc)
	akey := s.attrKey(info.Attr)
	ae := directory.Entry{Key: akey, Info: info}
	ra, err := s.ring.InsertOp(op, from, akey, ae)
	if err != nil {
		op.Finish()
		return cost, err
	}
	// repAttr's factor is pinned at 1, so this only invalidates a hot-key
	// promotion of the re-announced attribute pool (no copies placed).
	s.repAttr.Place(op, ra.Root.ID, ae)
	vkey := s.valueKey(idx, info.Value)
	ve := directory.Entry{Key: vkey, Info: info}
	rv, err := s.ring.InsertOp(op, from, vkey, ve)
	if err != nil {
		op.Finish()
		return cost, err
	}
	// Crash protection replicates the value-keyed copy onto the root's ring
	// successors (and invalidates any hot promotion of the key-group).
	s.repValue.Place(op, rv.Root.ID, ve)
	return op.Finish(), nil
}

// Discover implements discovery.System: every sub-query performs the two
// lookups of the MAAN design — one on the attribute index and one on the
// value index (the latter walking successors for ranges) — and merges the
// answers.
func (s *System) Discover(q resource.Query) (*discovery.Result, error) {
	return s.DiscoverTraced(q, discovery.TraceContext{})
}

// DiscoverTraced implements discovery.Traced: Discover parented under the
// caller's trace context.
func (s *System) DiscoverTraced(q resource.Query, tc discovery.TraceContext) (*discovery.Result, error) {
	if err := q.Validate(s.schema); err != nil {
		return nil, err
	}
	op := s.fabric.BeginTraced(routing.OpDiscover, q.Requester, tc)
	defer op.Finish()
	res, err := discovery.RunSubs(q, func(sub resource.SubQuery) ([]resource.Info, error) {
		return s.resolveSub(op, q.Requester, sub)
	})
	if err != nil {
		return nil, err
	}
	res.Cost = op.Cost()
	return res, nil
}

func (s *System) resolveSub(op *routing.Op, requester string, sub resource.SubQuery) ([]resource.Info, error) {
	idx := s.schema.Index(sub.Attr)
	from, err := s.ring.NodeNear(requester)
	if err != nil {
		return nil, err
	}

	// Dedupe across the attribute-keyed and value-keyed copies (and, with
	// replication on, across replica holders — copies agree on owner and
	// value); scratch is reused across nodes so each directory match is
	// allocation-free.
	seen := make(map[string]bool)
	var matches, scratch []resource.Info
	collect := func(n *chord.Node) {
		scratch = n.Dir.MatchAppend(scratch[:0], sub.Attr, sub.Low, sub.High)
		for _, in := range scratch {
			if k := in.Owner + "\x00" + fmt.Sprint(in.Value); !seen[k] {
				seen[k] = true
				matches = append(matches, in)
			}
		}
	}

	// Lookup 1: attribute index. The attribute root pools the
	// attribute-keyed copy of every piece and answers from it — unless the
	// pool is hot-promoted, in which case the read fans out over the
	// replica holders power-of-two-choices style, probing the loser.
	akey := s.attrKey(sub.Attr)
	if plan, ok := s.repAttr.PlanRead(akey); ok {
		r1, err := s.ring.LookupOp(op, from, plan.Target.Pos)
		if err != nil {
			return nil, err
		}
		op.Visit(r1.Root.Addr, r1.Root.ID)
		op.Forward(plan.Probe.Addr, plan.Probe.Pos, routing.ReasonReplicaRead)
		collect(r1.Root)
	} else {
		r1, err := s.ring.LookupOp(op, from, akey)
		if err != nil {
			return nil, err
		}
		op.Visit(r1.Root.Addr, r1.Root.ID)
		collect(r1.Root)
	}

	// Lookup 2: value index, walking the ring for range queries; an exact
	// sub-query on a hot-promoted value key-group is replica-aware too.
	loKey := s.valueKey(idx, sub.Low)
	hiKey := s.valueKey(idx, sub.High)
	if loKey == hiKey {
		if plan, ok := s.repValue.PlanRead(loKey); ok {
			r2, err := s.ring.LookupOp(op, from, plan.Target.Pos)
			if err != nil {
				return nil, err
			}
			op.Visit(r2.Root.Addr, r2.Root.ID)
			op.Forward(plan.Probe.Addr, plan.Probe.Pos, routing.ReasonReplicaRead)
			collect(r2.Root)
			return matches, nil
		}
	}
	r2, err := s.ring.LookupOp(op, from, loKey)
	if err != nil {
		return nil, err
	}
	op.Visit(r2.Root.Addr, r2.Root.ID)
	cur := r2.Root
	collect(cur)
	// Cumulative-progress walk, as in Mercury: terminate once the visited
	// sectors cover the key interval, robust to wrapped intervals.
	space := s.ring.Space()
	target := space.Clockwise(loKey, hiKey)
	covered := space.Clockwise(loKey, cur.ID)
	for covered < target {
		next, ok := s.ring.NextNode(cur)
		if !ok || next == r2.Root {
			break // full circle: every node already consulted
		}
		covered += space.Clockwise(cur.ID, next.ID)
		cur = next
		op.Forward(cur.Addr, cur.ID, routing.ReasonRangeWalk)
		op.Visit(cur.Addr, cur.ID)
		collect(cur)
	}
	return matches, nil
}

// DirectorySizes implements discovery.System. Sizes include both copies of
// every piece, reflecting MAAN's doubled information volume.
func (s *System) DirectorySizes() []int { return s.ring.DirectorySizes() }

// OutlinkCounts implements discovery.System.
func (s *System) OutlinkCounts() []int { return s.ring.OutlinkCounts() }

// AddNode implements discovery.Dynamic.
func (s *System) AddNode(addr string) error {
	_, err := s.ring.Join(addr)
	return err
}

// RemoveNode implements discovery.Dynamic.
func (s *System) RemoveNode(addr string) error {
	n, ok := s.ring.NodeByAddr(addr)
	if !ok {
		return fmt.Errorf("maan: no node with address %q", addr)
	}
	return s.ring.Leave(n)
}

// FailNode implements discovery.Crashable: the node vanishes abruptly.
// Both index copies of the entries it held are lost (the attribute-keyed
// and value-keyed copies of one logical piece live on different nodes, so a
// single crash usually leaves the other copy answerable).
func (s *System) FailNode(addr string) (lostEntries int, err error) {
	n, ok := s.ring.NodeByAddr(addr)
	if !ok {
		return 0, fmt.Errorf("maan: no node with address %q", addr)
	}
	return s.ring.Fail(n)
}

// NodeAddrs implements discovery.Dynamic.
func (s *System) NodeAddrs() []string { return s.ring.Addrs() }

// Maintain implements discovery.Dynamic: one stabilization round, followed
// by replica repair on whichever indices have replicas in play.
func (s *System) Maintain() {
	s.ring.Stabilize()
	s.ring.FixFingers(0)
	if s.repValue.Active() {
		s.repValue.Repair()
	}
	if s.repAttr.Active() {
		s.repAttr.Repair()
	}
}
