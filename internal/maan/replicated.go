package maan

import (
	"lorm/internal/discovery"
	"lorm/internal/replication"
)

// MAAN registers every piece twice, and the two copies need different
// replication treatment:
//
//   - The VALUE-keyed copies spread over the whole ring, so a crash loses a
//     near-random slice of them. repValue replicates exactly this half (a
//     WithFilter replicator keyed on ℋ(value)) — it is what SetReplicas
//     configures and what the crash-churn experiment exercises.
//   - The ATTRIBUTE-keyed copies pool k pieces on one node per attribute
//     (Theorem 4.2's concentration). Crash-replicating them too would
//     double write traffic for copies the value index already protects, so
//     repAttr's base factor stays pinned at 1; it exists for hot-key
//     promotion only, because under skewed read traffic the attribute
//     pool's single root is MAAN's hottest node.
//
// Both replicators share the ring's Placement, so a key's holders are
// always its root plus ring successors regardless of which index owns it.

var _ discovery.Replicated = (*System)(nil)

// SetReplicas configures the replication factor of the value index
// (minimum 1 = unreplicated). It affects subsequent Register calls; call
// Repair to bring previously stored entries up to the new factor.
func (s *System) SetReplicas(r int) error { return s.repValue.SetFactor(r) }

// Replicas returns the configured replication factor of the value index.
func (s *System) Replicas() int { return s.repValue.Factor() }

// Repair restores the replica invariant on both indices, summing the
// copies added and removed. It is idempotent.
func (s *System) Repair() (added, removed int) {
	a1, r1 := s.repValue.Repair()
	a2, r2 := s.repAttr.Repair()
	return a1 + a2, r1 + r2
}

// PromoteHot promotes the hottest key-groups of both indices, driven by
// one traffic report: attribute pools promote through repAttr, value
// key-groups through repValue. It returns the total keys promoted.
func (s *System) PromoteHot(visits []discovery.NodeLoad, opts replication.HotKeyOptions) int {
	return s.repAttr.PromoteHot(visits, opts) + s.repValue.PromoteHot(visits, opts)
}

// ValueReplicator exposes the value-index replication layer, for
// experiments and tests.
func (s *System) ValueReplicator() *replication.Replicator { return s.repValue }

// AttrReplicator exposes the attribute-index replication layer, for
// experiments and tests.
func (s *System) AttrReplicator() *replication.Replicator { return s.repAttr }
