package maan

import (
	"lorm/internal/discovery"
	"lorm/internal/loadbalance"
)

var _ discovery.Balancer = (*System)(nil)

var _ discovery.Traced = (*System)(nil)

// DirectoryLoads implements discovery.Balancer: per-node directory sizes in
// ring order.
func (s *System) DirectoryLoads() []discovery.NodeLoad {
	nodes := s.ring.Nodes()
	out := make([]discovery.NodeLoad, len(nodes))
	for i, n := range nodes {
		out[i] = discovery.NodeLoad{Addr: n.Addr, Entries: n.Dir.Len()}
	}
	return out
}

// Rebalance implements discovery.Balancer. MAAN registers every piece
// twice — once under H(attr) like SWORD, once under a value-derived key
// spread over the ring — so a hotspot's directory mixes one indivisible
// attribute pool with many small value-keyed groups. The planner sheds the
// splittable value-keyed side (usually backward, by retreating the hotspot
// away from its pool) and reports the pool itself blocked when it alone
// keeps the node above threshold.
func (s *System) Rebalance() (discovery.MigrationStats, error) {
	return loadbalance.RebalanceChord(s.ring, loadbalance.Options{}), nil
}
