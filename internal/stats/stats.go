// Package stats provides the small statistical toolkit the experiment
// harness reports with: means, exact percentiles (the paper plots the 1st
// and 99th), distribution summaries, and accumulation helpers that are safe
// to use from concurrent query workers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Summary condenses a sample of observations the way the paper's figures
// do: average plus 1st/99th percentiles, with min/max and stddev for good
// measure.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P01    float64 // 1st percentile
	P50    float64
	P99    float64 // 99th percentile
}

// Summarize computes a Summary over the sample. An empty sample yields the
// zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	n := float64(len(sorted))
	mean := sum / n
	// Two-pass mean-centered variance: the textbook E[x²]−E[x]² form
	// cancels catastrophically when the mean dwarfs the spread (e.g.
	// timestamp-like samples), which the old `variance < 0` clamp only
	// papered over. Centering first keeps every term small; the result can
	// never go negative.
	var m2 float64
	for _, v := range sorted {
		d := v - mean
		m2 += d * d
	}
	variance := m2 / n
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P01:    percentileSorted(sorted, 0.01),
		P50:    percentileSorted(sorted, 0.50),
		P99:    percentileSorted(sorted, 0.99),
	}
}

// SummarizeInts is Summarize for integer observations (hop counts,
// directory sizes).
func SummarizeInts(sample []int) Summary {
	fs := make([]float64, len(sample))
	for i, v := range sample {
		fs[i] = float64(v)
	}
	return Summarize(fs)
}

// Percentile returns the p-quantile (p in [0, 1]) of the sample using
// nearest-rank interpolation. It copies and sorts the input.
func Percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes a linearly interpolated quantile over an
// already sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, 0 for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p01=%.2f p50=%.2f p99=%.2f min=%.0f max=%.0f",
		s.N, s.Mean, s.P01, s.P50, s.P99, s.Min, s.Max)
}

// Collector accumulates float64 observations from concurrent goroutines.
// The zero value is ready to use.
type Collector struct {
	mu     sync.Mutex
	sample []float64
	sum    float64
}

// Add records one observation.
func (c *Collector) Add(v float64) {
	c.mu.Lock()
	c.sample = append(c.sample, v)
	c.sum += v
	c.mu.Unlock()
}

// AddInt records one integer observation.
func (c *Collector) AddInt(v int) { c.Add(float64(v)) }

// Len returns the number of recorded observations.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sample)
}

// Sum returns the total of all observations in O(1) from the running sum.
func (c *Collector) Sum() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sum
}

// Summary summarizes the observations collected so far.
func (c *Collector) Summary() Summary {
	c.mu.Lock()
	sample := append([]float64(nil), c.sample...)
	c.mu.Unlock()
	return Summarize(sample)
}

// Quantile returns the p-quantile (p in [0, 1]) of the observations
// collected so far, linearly interpolated; 0 for an empty collector.
func (c *Collector) Quantile(p float64) float64 {
	c.mu.Lock()
	sample := append([]float64(nil), c.sample...)
	c.mu.Unlock()
	return Percentile(sample, p)
}
