package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented result table, the common output format
// of every experiment driver. It renders either as aligned text (for the
// terminal) or CSV (for plotting), always with the same rows/series the
// paper's figure reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]float64
	// Notes holds free-form caption lines (workload parameters, units).
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; the number of cells must match the header.
func (t *Table) AddRow(cells ...float64) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Column returns the values of the named column, or nil if absent.
func (t *Table) Column(name string) []float64 {
	for i, c := range t.Columns {
		if c == name {
			col := make([]float64, len(t.Rows))
			for r, row := range t.Rows {
				col[r] = row[i]
			}
			return col
		}
	}
	return nil
}

// Text renders the table as aligned, human-readable text.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   %s\n", n)
	}
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = formatCell(v)
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(formatCell(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatCell prints integers without a decimal point and everything else
// with limited precision, keeping tables readable.
func formatCell(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}
