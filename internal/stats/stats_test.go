package stats

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEqual(s.Stddev, math.Sqrt(2), 1e-9) {
		t.Fatalf("stddev = %v, want sqrt(2)", s.Stddev)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{10, 20, 30})
	if s.Mean != 20 || s.N != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPercentileKnownValues(t *testing.T) {
	sample := make([]float64, 101) // 0..100
	for i := range sample {
		sample[i] = float64(i)
	}
	cases := map[float64]float64{0: 0, 0.01: 1, 0.5: 50, 0.99: 99, 1: 100}
	for p, want := range cases {
		if got := Percentile(sample, p); !almostEqual(got, want, 1e-9) {
			t.Errorf("Percentile(p=%v) = %v, want %v", p, got, want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	if got := Percentile([]float64{0, 10}, 0.25); !almostEqual(got, 2.5, 1e-9) {
		t.Errorf("Percentile = %v, want 2.5", got)
	}
	if got := Percentile([]float64{7}, 0.5); got != 7 {
		t.Errorf("single-element percentile = %v, want 7", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = float64(v)
		}
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		prev := sorted[0] - 1
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Percentile(sample, p)
			if q < prev || q < sorted[0] || q > sorted[len(sorted)-1] {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	const workers, per = 8, 250
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddInt(1)
			}
		}()
	}
	wg.Wait()
	if c.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", c.Len(), workers*per)
	}
	if c.Sum() != workers*per {
		t.Fatalf("Sum = %v, want %d", c.Sum(), workers*per)
	}
	if s := c.Summary(); s.Mean != 1 {
		t.Fatalf("Mean = %v, want 1", s.Mean)
	}
}

func TestCollectorQuantile(t *testing.T) {
	var c Collector
	if got := c.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		c.AddInt(i)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{0.5, 50.5},
		{0.95, 95.05},
		{0.99, 99.01},
		{1, 100},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Must agree with the package-level Percentile on the same sample.
	if got, want := c.Quantile(0.25), Percentile(c.sample, 0.25); got != want {
		t.Errorf("Quantile(0.25) = %v, Percentile = %v", got, want)
	}
}

func TestCollectorQuantileConcurrent(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.AddInt(i)
				_ = c.Quantile(0.99)
			}
		}()
	}
	wg.Wait()
	if got := c.Quantile(1); got != 99 {
		t.Fatalf("max = %v, want 99", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); !strings.Contains(got, "n=3") || !strings.Contains(got, "mean=2.00") {
		t.Errorf("String() = %q", got)
	}
}

func TestTableTextAndCSV(t *testing.T) {
	tbl := NewTable("Fig X", "n", "lorm", "mercury")
	tbl.Notes = append(tbl.Notes, "m=200 k=500")
	tbl.AddRow(2048, 7, 2600.5)
	text := tbl.Text()
	if !strings.Contains(text, "Fig X") || !strings.Contains(text, "m=200 k=500") {
		t.Errorf("Text missing title/notes:\n%s", text)
	}
	if !strings.Contains(text, "2600.500") {
		t.Errorf("Text missing float cell:\n%s", text)
	}
	csv := tbl.CSV()
	want := "n,lorm,mercury\n2048,7,2600.500\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestTableColumn(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow(1, 2)
	tbl.AddRow(3, 4)
	b := tbl.Column("b")
	if len(b) != 2 || b[0] != 2 || b[1] != 4 {
		t.Fatalf("Column(b) = %v", b)
	}
	if tbl.Column("zz") != nil {
		t.Fatal("Column(zz) should be nil")
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow with wrong arity did not panic")
		}
	}()
	tbl.AddRow(1)
}

func TestSummarizeLargeOffsetVariance(t *testing.T) {
	// Regression: with a mean around 1e9 the old sum-of-squares variance
	// (E[x²]−E[x]²) cancels catastrophically — the true variance (~0.67)
	// drowns in the ~1e18 squared terms and came back 0 (after the
	// negative clamp) or garbage. The two-pass mean-centered form must
	// recover it to full precision.
	const offset = 1e9
	sample := []float64{offset + 1, offset + 2, offset + 3}
	s := Summarize(sample)
	want := math.Sqrt(2.0 / 3.0) // population stddev of {1,2,3}
	if !almostEqual(s.Stddev, want, 1e-6) {
		t.Fatalf("stddev = %v, want %v (catastrophic cancellation?)", s.Stddev, want)
	}
	if !almostEqual(s.Mean, offset+2, 1e-3) {
		t.Fatalf("mean = %v", s.Mean)
	}

	// Constant samples at a large offset must report exactly zero spread.
	flat := Summarize([]float64{offset, offset, offset, offset})
	if flat.Stddev != 0 {
		t.Fatalf("constant-sample stddev = %v, want 0", flat.Stddev)
	}
}

func TestCollectorRunningSum(t *testing.T) {
	var c Collector
	if c.Sum() != 0 {
		t.Fatalf("empty sum = %v", c.Sum())
	}
	var want float64
	for i := 1; i <= 1000; i++ {
		c.AddInt(i)
		want += float64(i)
	}
	if c.Sum() != want {
		t.Fatalf("sum = %v, want %v", c.Sum(), want)
	}
	// The running sum must agree with a recompute over the sample.
	var recompute float64
	for _, v := range c.sample {
		recompute += v
	}
	if c.Sum() != recompute {
		t.Fatalf("running sum %v diverged from sample sum %v", c.Sum(), recompute)
	}
}
