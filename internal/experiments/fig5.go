package experiments

import (
	"fmt"

	"lorm/internal/analysis"
	"lorm/internal/resource"
	"lorm/internal/stats"
	"lorm/internal/workload"
)

// Fig5 regenerates Figures 5(a) and 5(b): the number of visited nodes for
// multi-attribute RANGE queries versus the number of attributes per query.
// Figure 5(a) contrasts the system-wide probers (Mercury, MAAN) with LORM
// and SWORD on a log scale; Figure 5(b) is the SWORD-vs-LORM close-up —
// both come from the same table.
//
// Ranges have a uniformly distributed center and width uniform on
// (0, domain/2], so the expected covered fraction is 1/4, matching the
// average-case constants of Theorem 4.9: per attribute Mercury visits
// 1+n/4 nodes, MAAN 2+n/4, LORM 1+d/4, SWORD 1. The analysis series are
// those closed forms.
func Fig5(env *Env) (total, avg *stats.Table, err error) {
	p := env.P
	ap := env.AnalysisParams()
	names := systemNames()
	cols := append([]string{"attrs"}, names...)
	for _, name := range names {
		cols = append(cols, "analysis_"+name)
	}
	total = stats.NewTable("Figure 5(a): total visited nodes for all range queries vs attributes", cols...)
	avg = stats.NewTable("Figure 5(b): average visited nodes per range query vs attributes", cols...)
	for _, t := range []*stats.Table{total, avg} {
		t.Notes = append(t.Notes,
			fmt.Sprintf("n=%d, %d range queries per point, expected range width = 1/4 domain", p.N, p.RangeQueries),
			"analysis per attribute: mercury 1+n/4, maan 2+n/4, lorm 1+d/4, sword 1 (Thm 4.9); art 1+n/4m (sector extension)")
	}

	for mq := 1; mq <= p.MaxAttrs; mq++ {
		qrng := workload.Split(p.Seed, 200+mq)
		queries := make([]resource.Query, 0, p.RangeQueries)
		for j := 0; j < p.RangeQueries; j++ {
			queries = append(queries, env.Gen.RangeQuery(qrng, mq, 0.5, fmt.Sprintf("requester-%04d", j)))
		}

		means := map[string]float64{}
		sums := map[string]float64{}
		for name, sys := range env.systemsByName() {
			_, visited, err := runQueries(sys, queries, p.Workers)
			if err != nil {
				return nil, nil, err
			}
			means[name] = visited.Summary().Mean
			sums[name] = visited.Sum()
		}
		totalRow := []float64{float64(mq)}
		avgRow := []float64{float64(mq)}
		for _, name := range names {
			totalRow = append(totalRow, sums[name])
			avgRow = append(avgRow, means[name])
		}
		for _, name := range names {
			ana := analysis.RangeVisitedNodes(ap, name, mq)
			totalRow = append(totalRow, ana*float64(p.RangeQueries))
			avgRow = append(avgRow, ana)
		}
		total.AddRow(totalRow...)
		avg.AddRow(avgRow...)
	}
	return total, avg, nil
}
