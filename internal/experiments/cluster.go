package experiments

import (
	"fmt"
	"time"
)

// ClusterParams bundles the knobs of the many-process cluster benchmark
// (cmd/lormcluster): N gateway processes over loopback TCP, M concurrent
// driver clients issuing an open-loop announce/query mix through the
// pipelined transport. Unlike Params — which drives in-process simulations
// — these govern real sockets, real processes and wall-clock time.
type ClusterParams struct {
	// Nodes is how many lormnode gateway processes to spawn.
	Nodes int
	// Peers is the simulated peer count inside each gateway's deployment.
	Peers int
	// System is the discovery system each gateway serves.
	System string
	// Clients is how many concurrent driver clients share the load; each
	// holds one pipelined connection per gateway.
	Clients int
	// Window is the pipelined client's in-flight window.
	Window int
	// Rate is the open-loop arrival rate in operations per second across
	// the whole driver; operations are scheduled on a fixed timetable
	// regardless of completions, so measured latency includes queueing
	// (no coordinated omission).
	Rate float64
	// Duration is how long the open-loop phase runs.
	Duration time.Duration
	// AnnounceFrac is the fraction of operations that are announces
	// (registers); the rest are range queries.
	AnnounceFrac float64
	// BatchSize is the number of operations carried per batch frame; 1
	// issues singular verbs.
	BatchSize int
	// HopLatency is the per-overlay-message wide-area delay each gateway
	// emulates (lormnode -hop-latency); 0 leaves gateways at CPU speed.
	HopLatency time.Duration
	// Seed fixes the workload's value/query randomness.
	Seed int64
}

// DefaultCluster is the committed-baseline configuration: 8 gateways, 64
// clients, 2000 ops/s for 10 seconds, a 30% announce mix, and 200µs of
// emulated per-message wide-area delay so transport pipelining is measured
// against realistic service times. The rate is chosen to keep the offered
// load below a small host's saturation point, so the recorded quantiles
// reflect service latency rather than unbounded open-loop queueing.
func DefaultCluster() ClusterParams {
	return ClusterParams{
		Nodes:        8,
		Peers:        64,
		System:       "lorm",
		Clients:      64,
		Window:       64,
		Rate:         2000,
		Duration:     10 * time.Second,
		AnnounceFrac: 0.3,
		BatchSize:    8,
		HopLatency:   200 * time.Microsecond,
		Seed:         1,
	}
}

// Validate rejects configurations the harness cannot run.
func (p ClusterParams) Validate() error {
	switch {
	case p.Nodes < 1:
		return fmt.Errorf("cluster: need at least 1 node, got %d", p.Nodes)
	case p.Peers < 2:
		return fmt.Errorf("cluster: need at least 2 simulated peers per gateway, got %d", p.Peers)
	case p.Clients < 1:
		return fmt.Errorf("cluster: need at least 1 client, got %d", p.Clients)
	case p.Window < 1:
		return fmt.Errorf("cluster: window must be at least 1, got %d", p.Window)
	case p.Rate <= 0:
		return fmt.Errorf("cluster: rate must be positive, got %g", p.Rate)
	case p.Duration <= 0:
		return fmt.Errorf("cluster: duration must be positive, got %v", p.Duration)
	case p.AnnounceFrac < 0 || p.AnnounceFrac > 1:
		return fmt.Errorf("cluster: announce fraction %g outside [0,1]", p.AnnounceFrac)
	case p.BatchSize < 1:
		return fmt.Errorf("cluster: batch size must be at least 1, got %d", p.BatchSize)
	case p.HopLatency < 0:
		return fmt.Errorf("cluster: hop latency must be non-negative, got %v", p.HopLatency)
	}
	switch p.System {
	case "lorm", "mercury", "sword", "maan", "art":
	default:
		return fmt.Errorf("cluster: unknown system %q", p.System)
	}
	return nil
}
