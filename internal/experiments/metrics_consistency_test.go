package experiments

import (
	"fmt"
	"testing"

	"lorm/internal/metrics"
	"lorm/internal/resource"
	"lorm/internal/routing"
	"lorm/internal/workload"
)

// findSeries picks the labeled series for one (system, kind) out of a
// family snapshot.
func findSeries(t *testing.T, snap metrics.Snapshot, family, system, kind string) metrics.MetricSnapshot {
	t.Helper()
	fam, ok := snap.Family(family)
	if !ok {
		t.Fatalf("family %s missing from snapshot", family)
	}
	for _, m := range fam.Metrics {
		if m.Labels["system"] == system && m.Labels["kind"] == kind {
			return m
		}
	}
	t.Fatalf("family %s has no series for system=%s kind=%s", family, system, kind)
	return metrics.MetricSnapshot{}
}

// TestMetricsMatchFabricCosts is the end-to-end consistency check of the
// observability pipeline: the hop and visited-node totals accumulated in
// the metrics histograms must EXACTLY equal the costs the discovery calls
// themselves report (which runQueries collects), for every system. Any
// drift would mean the metrics path observes different ops than the
// fabric accounts.
func TestMetricsMatchFabricCosts(t *testing.T) {
	p := Quick()
	reg := metrics.NewRegistry()
	obs := routing.NewMetricsObserver(reg)
	p.MetricsObserver = obs

	env, err := NewEnv(p)
	if err != nil {
		t.Fatal(err)
	}

	// The same pre-generated query set Fig4 uses for its mq=3 point.
	const mq = 3
	qrng := workload.Split(p.Seed, 100+mq)
	qs := make([]resource.Query, 0, p.Requesters*p.QueriesPerRequester)
	for r := 0; r < p.Requesters; r++ {
		requester := fmt.Sprintf("requester-%03d", r)
		for j := 0; j < p.QueriesPerRequester; j++ {
			qs = append(qs, env.Gen.ExactQuery(qrng, mq, requester))
		}
	}

	type fabricTotals struct {
		hops, visited float64
	}
	got := make(map[string]fabricTotals)
	for name, sys := range env.systemsByName() {
		hops, visited, err := runQueries(sys, qs, p.Workers)
		if err != nil {
			t.Fatal(err)
		}
		got[name] = fabricTotals{hops: hops.Sum(), visited: visited.Sum()}
	}

	snap := reg.Snapshot()
	kind := string(routing.OpDiscover)
	for name, want := range got {
		hopsSeries := findSeries(t, snap, "lorm_op_hops", name, kind)
		if hopsSeries.Count != uint64(len(qs)) {
			t.Errorf("%s: hops histogram count = %d, want %d queries", name, hopsSeries.Count, len(qs))
		}
		if hopsSeries.Sum != want.hops {
			t.Errorf("%s: metrics hops sum = %v, fabric reported %v", name, hopsSeries.Sum, want.hops)
		}
		visSeries := findSeries(t, snap, "lorm_op_visited", name, kind)
		if visSeries.Count != uint64(len(qs)) {
			t.Errorf("%s: visited histogram count = %d, want %d", name, visSeries.Count, len(qs))
		}
		if visSeries.Sum != want.visited {
			t.Errorf("%s: metrics visited sum = %v, fabric reported %v", name, visSeries.Sum, want.visited)
		}
		msgSeries := findSeries(t, snap, "lorm_op_messages", name, kind)
		if msgSeries.Count != uint64(len(qs)) || msgSeries.Sum <= 0 {
			t.Errorf("%s: messages histogram count=%d sum=%v, want count=%d and positive sum",
				name, msgSeries.Count, msgSeries.Sum, len(qs))
		}
		opsSeries := findSeries(t, snap, "lorm_ops_total", name, kind)
		if opsSeries.Value != float64(len(qs)) {
			t.Errorf("%s: ops counter = %v, want %d", name, opsSeries.Value, len(qs))
		}
	}

	// Registrations from NewEnv must have landed under the register kind,
	// not polluted the discover series above.
	for name := range got {
		regSeries := findSeries(t, snap, "lorm_ops_total", name, string(routing.OpRegister))
		if regSeries.Value == 0 {
			t.Errorf("%s: no register ops recorded despite registerAll", name)
		}
	}
}
